package calendar_test

import (
	"testing"

	warr "github.com/dslab-epfl/warr"
	"github.com/dslab-epfl/warr/apps/calendar"
)

// TestRecordReplayCreateEvent runs the paper's Fig. 1 loop over the
// plugin app: record the create-event session in one environment,
// replay the trace in a brand-new one, and require the scenario's
// oracle to pass against the replay environment.
func TestRecordReplayCreateEvent(t *testing.T) {
	sc := calendar.CreateEventScenario()
	tr, err := warr.RecordSession(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Commands) == 0 {
		t.Fatal("recorder produced no commands")
	}

	env := warr.NewDemoEnv(warr.DeveloperMode)
	res, tab, err := warr.Replay(env.Browser, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("replay incomplete: played %d, failed %d", res.Played, res.Failed)
	}
	if err := sc.Verify(env, tab); err != nil {
		t.Errorf("replay did not reproduce the session: %v", err)
	}
}

// TestCalendarIsRegistered asserts importing the package was enough to
// make the app and workload resolvable everywhere the tools look.
func TestCalendarIsRegistered(t *testing.T) {
	if _, err := warr.LookupApp(calendar.Name); err != nil {
		t.Fatalf("app not registered: %v", err)
	}
	sc, err := warr.LookupScenario("create-event")
	if err != nil {
		t.Fatalf("scenario not registered: %v", err)
	}
	if sc.App != calendar.Name || sc.StartURL != calendar.URL {
		t.Errorf("scenario resolves to %s @ %s", sc.App, sc.StartURL)
	}
}

// TestCalendarOnlyEnv hosts the calendar alone via WithApps: the
// environment serves it, and none of the demo applications.
func TestCalendarOnlyEnv(t *testing.T) {
	env, err := warr.NewEnv(warr.UserMode, warr.WithApps(calendar.App{}))
	if err != nil {
		t.Fatal(err)
	}
	tab := env.Browser.NewTab()
	if err := tab.Navigate(calendar.URL); err != nil {
		t.Fatal(err)
	}
	if err := tab.Navigate(warr.SitesURL); err == nil {
		t.Error("demo app reachable in a WithApps(calendar) environment")
	}
	st := calendar.StateIn(env)
	if st == nil {
		t.Fatal("calendar state missing")
	}
	if got := len(st.Events()); got != 0 {
		t.Fatalf("fresh calendar has %d events", got)
	}
}

// TestResetEmptiesAgenda pins the plugin's reset semantics.
func TestResetEmptiesAgenda(t *testing.T) {
	sc := calendar.CreateEventScenario()
	rec, err := warr.RecordScenario(sc, warr.RecordOptions{VerifyLive: true})
	if err != nil {
		t.Fatal(err)
	}
	st := calendar.StateIn(rec.Env)
	if len(st.Events()) != 1 {
		t.Fatalf("events = %d, want 1", len(st.Events()))
	}
	st.Reset()
	if len(st.Events()) != 0 {
		t.Error("Reset left events behind")
	}
}
