// Package calendar is a demo web application built entirely on WaRR's
// public plugin surface — no internal packages, no edits to the library.
// It exists to prove the environment API is genuinely open: importing
// this package registers the "Calendar" application and its
// "create-event" workload in the default registry, after which the app
// is recordable by warr-record, replayable by warr-replay,
// campaign-testable by weberr, and covered by the golden-trace corpus,
// exactly like the five paper applications.
//
// The application is a small agenda: clicking "New event" reveals an
// entry form (the GMail-compose interaction shape — a scripted click
// listener, not a plain HTML form), typing fills the title and day
// fields, and the scripted Save control submits via a generated URL.
package calendar

import (
	"encoding/json"
	"fmt"
	"sync"

	warr "github.com/dslab-epfl/warr"
)

// Network identity of the application.
const (
	// Name is the registered application name.
	Name = "Calendar"
	// Host is the network host the calendar serves.
	Host = "calendar.test"
	// URL is the start page of recorded sessions.
	URL = "http://" + Host + "/"
)

func init() {
	warr.MustRegisterApp(App{})
	warr.MustRegisterScenario("create-event", CreateEventScenario)
}

// App is the calendar plugin. It is stateless — every environment gets
// a fresh *State from NewState.
type App struct{}

// Name implements warr.App.
func (App) Name() string { return Name }

// Host implements warr.App.
func (App) Host() string { return Host }

// StartURL implements warr.App.
func (App) StartURL() string { return URL }

// NewState implements warr.App.
func (App) NewState() warr.AppState { return NewState() }

// Event is one agenda entry.
type Event struct {
	Day   string
	Title string
}

// State is one environment's calendar: its stored events and the server
// rendering them.
type State struct {
	srv *warr.WebServer

	mu     sync.Mutex
	events []Event
}

// NewState returns an empty calendar server.
func NewState() *State {
	s := &State{}
	srv := warr.NewWebServer("calendar")
	srv.Handle("/", s.agenda)
	srv.Handle("/add", s.add)
	s.srv = srv
	return s
}

// Handler implements warr.AppState.
func (s *State) Handler() warr.WebHandler { return s.srv }

// Snapshot implements warr.AppSnapshotter, making calendar-hosting
// environments forkable (and its campaigns prefix-shareable): the copy
// carries the same events and the same issued sessions.
func (s *State) Snapshot() warr.AppState {
	dup := NewState()
	s.mu.Lock()
	dup.events = append([]Event(nil), s.events...)
	s.mu.Unlock()
	dup.srv.CopySessionsFrom(s.srv)
	return dup
}

// calendarImage is the serialized form of a State.
type calendarImage struct {
	Events   []Event                `json:"events"`
	Sessions *warr.WebSessionsImage `json:"sessions"`
}

// MarshalImage implements warr.AppImageMarshaler, making
// calendar-hosting environments imageable: the bytes carry the same
// events and issued sessions Snapshot copies, so the app participates
// in distributed campaigns exactly like the built-in applications.
func (s *State) MarshalImage() ([]byte, error) {
	s.mu.Lock()
	events := append([]Event(nil), s.events...)
	s.mu.Unlock()
	return json.Marshal(calendarImage{Events: events, Sessions: s.srv.ExportSessions()})
}

// UnmarshalImage implements warr.AppImageMarshaler.
func (s *State) UnmarshalImage(data []byte) error {
	var img calendarImage
	if err := json.Unmarshal(data, &img); err != nil {
		return err
	}
	s.mu.Lock()
	s.events = img.Events
	s.mu.Unlock()
	if img.Sessions != nil {
		s.srv.ImportSessions(img.Sessions)
	}
	return nil
}

// CoverageMarks implements warr.AppCoverageSource: one mark per stored
// event, derived purely from the current state — so the fuzzing
// campaigns' coverage feedback sees calendar state transitions exactly
// like the built-in applications'.
func (s *State) CoverageMarks() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	marks := make([]uint64, 0, len(s.events))
	for _, e := range s.events {
		// FNV-1a over "calendar.event", day, title with NUL separators.
		h := uint64(14695981039346656037)
		for _, part := range []string{"calendar.event", e.Day, e.Title} {
			for i := 0; i < len(part); i++ {
				h ^= uint64(part[i])
				h *= 1099511628211
			}
			h *= 1099511628211
		}
		marks = append(marks, h)
	}
	return marks
}

// Reset implements warr.AppState: it empties the agenda.
func (s *State) Reset() {
	s.mu.Lock()
	s.events = nil
	s.mu.Unlock()
	s.srv.ResetSessions()
}

// Events returns a copy of the stored events, in creation order.
func (s *State) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// agenda renders the event list with the entry form hidden; the "New
// event" control reveals it through a scripted click listener — the
// interaction shape page-level recorders miss.
func (s *State) agenda(req *warr.WebRequest, sess *warr.WebSession) *warr.WebResponse {
	s.mu.Lock()
	events := append([]Event(nil), s.events...)
	s.mu.Unlock()

	list := `<div class="empty">No events yet.</div>`
	if len(events) > 0 {
		list = ""
		for i, e := range events {
			list += fmt.Sprintf(`<div class="event" id="ev%d">%s: %s</div>`,
				i+1, warr.HTMLEscape(e.Day), warr.HTMLEscape(e.Title))
		}
	}

	body := fmt.Sprintf(`
<div id="hdr"><div id="new">New event</div></div>
<div id="form" style="display:none">
<div>Title <input id="title" name="title"></div>
<div>Day <input id="day" name="day"></div>
<div id="save" name="save">Save</div>
</div>
<div id="agenda">%s</div>`, list)

	script := `
document.getElementById("new").addEventListener("click", function(e) {
	document.getElementById("form").style = "";
	document.getElementById("title").focus();
});
document.getElementById("save").addEventListener("click", function(e) {
	var title = document.getElementById("title").value;
	var day = document.getElementById("day").value;
	window.location = "/add?title=" + encodeURIComponent(title) +
		"&day=" + encodeURIComponent(day);
});
`
	return warr.WebOK(warr.WebPage("Calendar", body, script))
}

// add stores one event and returns to the agenda.
func (s *State) add(req *warr.WebRequest, sess *warr.WebSession) *warr.WebResponse {
	e := Event{
		Day:   req.Form.Get("day"),
		Title: req.Form.Get("title"),
	}
	if e.Title == "" {
		return warr.WebRedirect("/")
	}
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
	return warr.WebRedirect("/")
}

// StateIn returns the environment's calendar instance.
func StateIn(env *warr.Env) *State {
	st, ok := env.State(Name)
	if !ok {
		return nil
	}
	return st.(*State)
}

// CreateEventScenario is the calendar workload: open the entry form,
// type a title and a day, and save. Its oracle checks the event was
// stored server-side.
func CreateEventScenario() warr.Scenario {
	want := Event{Day: "Fri", Title: "Standup"}
	return warr.NewScenario(App{}, "Create event").
		ClickID("new").
		Pause().
		Type(want.Title).
		Pause().
		ClickID("day").
		Type(want.Day).
		Pause().
		ClickName("save").
		Verify(func(env *warr.Env, tab *warr.Tab) error {
			st := StateIn(env)
			if st == nil {
				return fmt.Errorf("calendar: app not hosted in this environment")
			}
			events := st.Events()
			if len(events) != 1 {
				return fmt.Errorf("calendar: %d events stored, want 1", len(events))
			}
			if events[0] != want {
				return fmt.Errorf("calendar: stored %+v, want %+v", events[0], want)
			}
			return nil
		}).
		MustBuild()
}
