package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: github.com/dslab-epfl/warr
cpu: some CPU
BenchmarkReplayGMailWithRelaxation-8   	     355	    335849 ns/op	        19.00 relaxed-steps/replay
BenchmarkNavigationCampaignSequential-8	      50	   2400000 ns/op
BenchmarkNavigationCampaignParallel-8  	      60	   2000000 ns/op
BenchmarkWebErrCampaignPruning-8       	     100	   1000000 ns/op
BenchmarkXPathEvaluateIndexed-8        	  500000	       250 ns/op
PASS
ok  	github.com/dslab-epfl/warr	2.951s
`

func parseFixture(t *testing.T) *Snapshot {
	t.Helper()
	snap, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestParseBenchKeepsMinOfRuns(t *testing.T) {
	// With -count>1 the same benchmark reports several result lines;
	// the snapshot keeps the per-unit minimum.
	out := `BenchmarkReplayGMailWithRelaxation-8 100 300000 ns/op
BenchmarkReplayGMailWithRelaxation-8 100 280000 ns/op
BenchmarkReplayGMailWithRelaxation-8 100 310000 ns/op
`
	snap, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Benchmarks["BenchmarkReplayGMailWithRelaxation"]["ns/op"]; got != 280000 {
		t.Errorf("ns/op = %v, want min-of-runs 280000", got)
	}
}

func TestParseBench(t *testing.T) {
	snap := parseFixture(t)
	if len(snap.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5: %v", len(snap.Benchmarks), snap.Benchmarks)
	}
	m := snap.Benchmarks["BenchmarkReplayGMailWithRelaxation"]
	if m == nil {
		t.Fatal("CPU suffix not stripped from benchmark name")
	}
	if m["ns/op"] != 335849 {
		t.Errorf("ns/op = %v, want 335849", m["ns/op"])
	}
	if m["relaxed-steps/replay"] != 19 {
		t.Errorf("custom metric = %v, want 19", m["relaxed-steps/replay"])
	}
}

func TestCompareGate(t *testing.T) {
	base := parseFixture(t)
	gates := []string{"BenchmarkReplayGMailWithRelaxation", "BenchmarkNavigationCampaign*", "BenchmarkWebErrCampaign*"}

	// Identical runs pass.
	if _, regs, err := compare(base, parseFixture(t), 0.20, 0.20, gates); err != nil || len(regs) != 0 {
		t.Fatalf("identical snapshots: regs=%v err=%v", regs, err)
	}

	// A regression within tolerance passes; beyond tolerance fails.
	within := parseFixture(t)
	within.Benchmarks["BenchmarkReplayGMailWithRelaxation"]["ns/op"] *= 1.15
	if _, regs, err := compare(base, within, 0.20, 0.20, gates); err != nil || len(regs) != 0 {
		t.Fatalf("within-tolerance regression flagged: regs=%v err=%v", regs, err)
	}
	beyond := parseFixture(t)
	beyond.Benchmarks["BenchmarkReplayGMailWithRelaxation"]["ns/op"] *= 1.30
	if _, regs, _ := compare(base, beyond, 0.20, 0.20, gates); len(regs) != 1 {
		t.Fatalf("beyond-tolerance regression not flagged: regs=%v", regs)
	}

	// An ungated benchmark may regress freely.
	ungated := parseFixture(t)
	ungated.Benchmarks["BenchmarkXPathEvaluateIndexed"]["ns/op"] *= 10
	if _, regs, _ := compare(base, ungated, 0.20, 0.20, gates); len(regs) != 0 {
		t.Fatalf("ungated regression flagged: %v", regs)
	}

	// A gated benchmark disappearing from the PR run fails.
	missing := parseFixture(t)
	delete(missing.Benchmarks, "BenchmarkWebErrCampaignPruning")
	if _, regs, _ := compare(base, missing, 0.20, 0.20, gates); len(regs) != 1 {
		t.Fatalf("missing gated benchmark not flagged: %v", regs)
	}

	// The gate fails closed: a gated entry with no ns/op metric (on
	// either side) is a lost guard, not a pass.
	noNs := parseFixture(t)
	delete(noNs.Benchmarks["BenchmarkWebErrCampaignPruning"], "ns/op")
	if _, regs, _ := compare(base, noNs, 0.20, 0.20, gates); len(regs) != 1 {
		t.Fatalf("gated PR entry without ns/op not flagged: %v", regs)
	}
	baseNoNs := parseFixture(t)
	delete(baseNoNs.Benchmarks["BenchmarkWebErrCampaignPruning"], "ns/op")
	if _, regs, _ := compare(baseNoNs, parseFixture(t), 0.20, 0.20, gates); len(regs) != 1 {
		t.Fatalf("gated baseline entry without ns/op not flagged: %v", regs)
	}

	// Gate patterns that match nothing are a configuration error.
	if _, _, err := compare(base, parseFixture(t), 0.20, 0.20, []string{"BenchmarkNope*"}); err == nil {
		t.Fatal("dead gate pattern not reported")
	}

	// A benchmark only in the PR run is listed in the report (so an
	// unguarded gated name is visible) but cannot regress the gate.
	novel := parseFixture(t)
	novel.Benchmarks["BenchmarkNavigationCampaignHuge"] = Metrics{"ns/op": 9e9}
	rep, regs, err := compare(base, novel, 0.20, 0.20, gates)
	if err != nil || len(regs) != 0 {
		t.Fatalf("PR-only benchmark: regs=%v err=%v", regs, err)
	}
	found := false
	for _, line := range rep {
		if strings.Contains(line, "BenchmarkNavigationCampaignHuge") && strings.Contains(line, "not in baseline") {
			found = true
		}
	}
	if !found {
		t.Fatalf("PR-only benchmark missing from report:\n%s", strings.Join(rep, "\n"))
	}
}

// snapWith builds a one-benchmark snapshot inline.
func snapWith(name string, metrics Metrics) *Snapshot {
	return &Snapshot{Benchmarks: map[string]Metrics{name: metrics}}
}

func TestCompareGatesAllocs(t *testing.T) {
	gates := []string{"BenchmarkCampaignSharedPrefix"}
	base := snapWith("BenchmarkCampaignSharedPrefix", Metrics{"ns/op": 1000000, "allocs/op": 10000})

	// Within tolerance on both axes: pass.
	ok := snapWith("BenchmarkCampaignSharedPrefix", Metrics{"ns/op": 1100000, "allocs/op": 11500})
	if _, regs, err := compare(base, ok, 0.20, 0.20, gates); err != nil || len(regs) != 0 {
		t.Fatalf("within tolerance: regs=%v err=%v", regs, err)
	}

	// Flat wall-clock but a >20% allocation regression: fail.
	churn := snapWith("BenchmarkCampaignSharedPrefix", Metrics{"ns/op": 1000000, "allocs/op": 12500})
	if _, regs, _ := compare(base, churn, 0.20, 0.20, gates); len(regs) != 1 {
		t.Fatalf("alloc regression not caught: %v", regs)
	}

	// Baseline guards allocs but this run didn't report them: fail closed.
	silent := snapWith("BenchmarkCampaignSharedPrefix", Metrics{"ns/op": 1000000})
	if _, regs, _ := compare(base, silent, 0.20, 0.20, gates); len(regs) != 1 {
		t.Fatalf("missing allocs/op not caught: %v", regs)
	}

	// A baseline without allocs/op gates on ns/op only.
	nsOnly := snapWith("BenchmarkCampaignSharedPrefix", Metrics{"ns/op": 1000000})
	if _, regs, err := compare(nsOnly, churn, 0.20, 0.20, gates); err != nil || len(regs) != 0 {
		t.Fatalf("ns-only baseline: regs=%v err=%v", regs, err)
	}

	// The alloc tolerance is its own knob.
	if _, regs, _ := compare(base, ok, 0.20, 0.10, gates); len(regs) != 1 {
		t.Fatalf("tight alloc tolerance not enforced: %v", regs)
	}
}
