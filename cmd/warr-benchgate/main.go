// Command warr-benchgate turns `go test -bench` output into a JSON
// snapshot and gates pull requests on performance regressions against a
// committed baseline.
//
// CI runs it in two steps:
//
//	go test -bench=. -benchtime=200ms -count=3 -run=NONE . | warr-benchgate -parse -o BENCH_PR.json
//	warr-benchgate -baseline BENCH_BASELINE.json -pr BENCH_PR.json \
//	    -tolerance 0.20 -gate 'BenchmarkReplayGMailWithRelaxation,BenchmarkNavigationCampaign*,BenchmarkWebErrCampaign*'
//
// BENCH_PR.json is uploaded as a build artifact; a gated benchmark whose
// ns/op exceeds the baseline by more than the tolerance fails the build.
// Refreshing the baseline is deliberate: copy the artifact over
// BENCH_BASELINE.json and commit it with the change that justifies it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the JSON shape of one benchmark run.
type Snapshot struct {
	// Benchmarks maps the benchmark name (CPU suffix stripped) to its
	// metrics; "ns/op" is the gated one.
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// Metrics holds one benchmark's reported values by unit.
type Metrics map[string]float64

func main() {
	parse := flag.Bool("parse", false, "parse `go test -bench` output on stdin into a JSON snapshot")
	out := flag.String("o", "", "output file for -parse (default stdout)")
	baseline := flag.String("baseline", "", "committed baseline snapshot to compare against")
	pr := flag.String("pr", "", "snapshot of this change's benchmark run")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression before failing")
	allocTolerance := flag.Float64("alloc-tolerance", 0.20,
		"allowed fractional allocs/op regression before failing, for gated benchmarks whose baseline reports it")
	gate := flag.String("gate", "", "comma-separated benchmark name patterns to enforce (path.Match globs)")
	flag.Parse()

	var err error
	switch {
	case *parse:
		err = runParse(os.Stdin, *out)
	case *baseline != "" && *pr != "":
		err = runCompare(*baseline, *pr, *tolerance, *allocTolerance, *gate)
	default:
		fmt.Fprintln(os.Stderr, "warr-benchgate: need either -parse or both -baseline and -pr")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "warr-benchgate:", err)
		os.Exit(1)
	}
}

func runParse(r io.Reader, out string) error {
	snap, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}

// parseBench extracts benchmark result lines from `go test -bench`
// output: name-CPUs, iteration count, then value/unit pairs.
func parseBench(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: make(map[string]Metrics)}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the GOMAXPROCS suffix ("-8") so snapshots from
		// different machines name benchmarks identically.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: not a result line
		}
		m := make(Metrics)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			m[fields[i+1]] = v
		}
		if len(m) == 0 {
			continue
		}
		// With -count>1 the same benchmark reports several times; keep
		// the per-unit minimum — the least-noisy estimate for a gate.
		if prev, ok := snap.Benchmarks[name]; ok {
			for unit, v := range m {
				if pv, ok := prev[unit]; !ok || v < pv {
					prev[unit] = v
				}
			}
		} else {
			snap.Benchmarks[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

func readSnapshot(p string) (*Snapshot, error) {
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", p, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: snapshot has no benchmarks", p)
	}
	return &s, nil
}

// compare evaluates the gated benchmarks of pr against base. It returns
// the human-readable report lines and the regressions found. Beyond
// ns/op, gated benchmarks whose baseline entry reports allocs/op are
// also gated on it (allocTolerance): a change can keep wall-clock flat
// while quietly re-introducing allocation churn on a hot path, and the
// allocation count is the far less noisy signal on shared CI runners.
// Baselines without allocs/op gate on ns/op only, so adoption rides
// the normal baseline-refresh flow.
func compare(base, pr *Snapshot, tolerance, allocTolerance float64, gates []string) (report, regressions []string, err error) {
	gated := func(name string) bool {
		for _, g := range gates {
			ok, err := path.Match(g, name)
			if err == nil && ok {
				return true
			}
		}
		return false
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	sawGate := false
	for _, name := range names {
		baseNs, ok := base.Benchmarks[name]["ns/op"]
		if !ok {
			// The gate must fail closed: a gated name that cannot be
			// compared is a lost guard, not a pass.
			if gated(name) {
				regressions = append(regressions,
					fmt.Sprintf("%s: baseline entry has no ns/op metric", name))
				sawGate = true
			}
			continue
		}
		prM, ok := pr.Benchmarks[name]
		if !ok {
			if gated(name) {
				regressions = append(regressions,
					fmt.Sprintf("%s: present in baseline but missing from this run", name))
				sawGate = true
			}
			continue
		}
		prNs, ok := prM["ns/op"]
		if !ok {
			if gated(name) {
				regressions = append(regressions,
					fmt.Sprintf("%s: this run's entry has no ns/op metric", name))
				sawGate = true
			}
			continue
		}
		ratio := prNs / baseNs
		mark := " "
		if gated(name) {
			sawGate = true
			mark = "*"
			if ratio > 1+tolerance {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
						name, prNs, baseNs, 100*(ratio-1), 100*tolerance))
			}
			if baseAllocs, ok := base.Benchmarks[name]["allocs/op"]; ok && baseAllocs > 0 {
				prAllocs, ok := prM["allocs/op"]
				if !ok {
					// Fail closed, as for a missing ns/op: a gated
					// allocation guard that cannot be compared is lost.
					regressions = append(regressions,
						fmt.Sprintf("%s: baseline reports allocs/op but this run does not (run with -benchmem or b.ReportAllocs)", name))
				} else if aratio := prAllocs / baseAllocs; aratio > 1+allocTolerance {
					regressions = append(regressions,
						fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f allocs/op (%+.1f%%, tolerance %.0f%%)",
							name, prAllocs, baseAllocs, 100*(aratio-1), 100*allocTolerance))
				}
			}
		}
		report = append(report,
			fmt.Sprintf("%s %-45s %12.0f -> %12.0f ns/op  (%+.1f%%)", mark, name, baseNs, prNs, 100*(ratio-1)))
	}
	// Benchmarks present only in this run have no baseline to gate
	// against; list them so an unguarded gated name is visible and the
	// baseline refresh is not forgotten.
	var added []string
	for name := range pr.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		mark := " "
		if gated(name) {
			mark = "*"
		}
		report = append(report,
			fmt.Sprintf("%s %-45s %12s -> %12.0f ns/op  (new: not in baseline, not gated — refresh BENCH_BASELINE.json to guard it)",
				mark, name, "—", pr.Benchmarks[name]["ns/op"]))
	}
	if len(gates) > 0 && !sawGate {
		return report, regressions, fmt.Errorf("no baseline benchmark matches the gate patterns %v", gates)
	}
	return report, regressions, nil
}

func runCompare(basePath, prPath string, tolerance, allocTolerance float64, gate string) error {
	base, err := readSnapshot(basePath)
	if err != nil {
		return err
	}
	pr, err := readSnapshot(prPath)
	if err != nil {
		return err
	}
	var gates []string
	for _, g := range strings.Split(gate, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gates = append(gates, g)
		}
	}
	report, regressions, err := compare(base, pr, tolerance, allocTolerance, gates)
	if err != nil {
		return err
	}
	fmt.Println("benchmark comparison (* = gated):")
	for _, line := range report {
		fmt.Println(line)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d gated benchmark(s) regressed beyond tolerance:\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		fmt.Fprintln(os.Stderr, "If this cost is justified, refresh BENCH_BASELINE.json from the BENCH_PR.json artifact and commit it with the explanation.")
		os.Exit(1)
	}
	fmt.Println("bench gate green: no gated benchmark regressed beyond tolerance")
	return nil
}
