// Command warr-load generates deterministic multi-user load: N virtual
// users partitioned into shared worlds, each world one application
// environment serving per-user browsers and cookie jars, every
// interleaving an explicit schedule value on the virtual clock. The
// interleaving explorer perturbs schedules (seeded, bounded, deduped)
// to surface contention-only findings — lost updates, stale reads,
// session collisions — that no single-user campaign can reach.
//
// Everything runs on virtual time, so a million users cost CPU, not
// wall-clock, and the findings report is byte-identical for a fixed
// (seed, budget) at any -parallel, with or without -no-share, and
// across -workers distributed execution.
//
// Usage:
//
//	warr-load -list
//	warr-load -workload sites-notes -users 8 -seed 1
//	warr-load -users 1000000 -duration 10m -seed 7
//	warr-load -workload docs-tally -users 64 -parallel 8
//	warr-load -workload mixed -users 96 -workers 4
//	warr-load -workload sites-notes -users 8 -no-share   # sharing ablation
//
// The canonical findings report goes to stdout; progress and fleet
// notes go to stderr. Exit status 3 means the explorer found
// interference bugs.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	warr "github.com/dslab-epfl/warr"
	"github.com/dslab-epfl/warr/internal/distrib"
)

func main() {
	workload := flag.String("workload", "mixed",
		"multi-user workload to run: "+strings.Join(warr.LoadWorkloadNames(), ", "))
	users := flag.Int("users", 8, "virtual user count (worlds of -cohort users each)")
	cohort := flag.Int("cohort", 0, "users per shared world (0 = default)")
	budget := flag.Int("budget", 0, "schedules explored per world shape (0 = default)")
	seed := flag.Int64("seed", 1, "seed for the deterministic interleaving explorer")
	duration := flag.Duration("duration", 0, "virtual-time budget (0 = unbounded; wall-clock is unaffected)")
	parallel := flag.Int("parallel", 0, "worlds absorbed concurrently (0 = serial; findings are identical)")
	noShare := flag.Bool("no-share", false, "ablation: re-execute duplicate world shapes instead of sharing results")
	workers := flag.Int("workers", 0, "distribute schedule shards across this many workers over localhost HTTP (0 = in-process)")
	progress := flag.Bool("progress", false, "print world-absorption progress to stderr")
	metrics := flag.Bool("metrics", false, "dump the engine's /metrics text after the report")
	list := flag.Bool("list", false, "list registered workloads, then exit")
	flag.Parse()

	if *list {
		fmt.Println("registered workloads (runnable with -workload):")
		for _, wl := range warr.LoadWorkloads() {
			fmt.Printf("  %-16s %s\n", wl.Name, wl.Desc)
		}
		return
	}
	if err := run(runOptions{
		workload: *workload, users: *users, cohort: *cohort, budget: *budget,
		seed: *seed, duration: *duration, parallel: *parallel, noShare: *noShare,
		workers: *workers, progress: *progress, metrics: *metrics,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "warr-load:", err)
		os.Exit(1)
	}
}

// runOptions carry the parsed flags into run.
type runOptions struct {
	workload          string
	users             int
	cohort, budget    int
	seed              int64
	duration          time.Duration
	parallel          int
	noShare           bool
	workers           int
	progress, metrics bool
}

// startWorkerPool brings up the distributed fleet: a coordinator pool
// behind a loopback HTTP listener and n workers polling it — the same
// wire protocol warr-worker speaks against warr-serve, collapsed into
// one process. Load shards are self-describing schedule jobs, so no
// world image crosses the wire.
func startWorkerPool(n int) (*distrib.Pool, func(), error) {
	pool := distrib.NewPool(distrib.PoolOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("starting coordinator: %w", err)
	}
	hs := &http.Server{Handler: pool.Handler()}
	go func() { _ = hs.Serve(ln) }()
	ctx, cancel := context.WithCancel(context.Background())
	coordinator := "http://" + ln.Addr().String()
	for i := 0; i < n; i++ {
		w := distrib.NewWorker(distrib.WorkerOptions{
			Coordinator:  coordinator,
			PollInterval: 10 * time.Millisecond,
		})
		go func() { _ = w.Run(ctx) }()
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := pool.WaitForWorkers(wctx, n); err != nil {
		cancel()
		_ = hs.Close()
		return nil, nil, err
	}
	stop := func() {
		cancel()
		_ = hs.Close()
	}
	fmt.Fprintf(os.Stderr, "distributing schedule shards across %d workers via %s\n", n, coordinator)
	return pool, stop, nil
}

func run(o runOptions) error {
	// The campaign runs as a job on the shared engine — the same
	// execution path a warr-serve daemon drives for submitted
	// load-campaign requests.
	engineOpts := warr.JobEngineOptions{Workers: 1, QueueDepth: 2}
	if o.workers > 0 {
		pool, stop, err := startWorkerPool(o.workers)
		if err != nil {
			return err
		}
		defer stop()
		engineOpts.Distributor = pool
	}
	engine := warr.NewJobEngine(engineOpts)
	defer engine.Close()

	job, err := engine.Submit(warr.JobSpec{
		Kind:               warr.JobLoadCampaign,
		Workload:           o.workload,
		Users:              o.users,
		Cohort:             o.cohort,
		ScheduleBudget:     o.budget,
		ScheduleSeed:       o.seed,
		Duration:           o.duration,
		Parallelism:        o.parallel,
		DisableLoadSharing: o.noShare,
	})
	if err != nil {
		return err
	}
	var drained chan struct{}
	if o.progress {
		events, cancel := job.Events().Subscribe(0)
		defer cancel()
		drained = make(chan struct{})
		go func() {
			defer close(drained)
			// The engine closes the bus at job completion, ending the
			// range — so waiting on drained flushes every line.
			for ev := range events {
				if p, ok := ev.(warr.LoadProgressEvent); ok {
					fmt.Fprintf(os.Stderr, "  %s: %d/%d worlds (%d schedules executed, %d shared)\n",
						p.Workload, p.WorldsDone, p.Worlds, p.Executed, p.Shared)
				}
			}
		}()
	}
	_ = job.Wait(nil)
	if drained != nil {
		<-drained
	}
	if err := job.Err(); err != nil {
		return err
	}
	rep := job.LoadReport()
	fmt.Print(rep.Render())
	if o.metrics {
		fmt.Println()
		if err := engine.WriteMetrics(os.Stdout); err != nil {
			return err
		}
	}
	if len(rep.Findings) > 0 {
		os.Exit(3)
	}
	return nil
}
