// Command warr-bench regenerates every table and figure of the paper's
// evaluation from the simulated substrate:
//
//	warr-bench -experiment all
//	warr-bench -experiment table1      # Table I: typo detection rates
//	warr-bench -experiment table2      # Table II: recording completeness
//	warr-bench -experiment fig3        # Fig. 3: click-handling stack trace
//	warr-bench -experiment fig4        # Fig. 4: edit-site command trace
//	warr-bench -experiment fig6        # Fig. 6: inferred task tree
//	warr-bench -experiment grammar     # the grammar behind Fig. 6
//	warr-bench -experiment overhead    # §VI: recorder logging overhead
//	warr-bench -experiment sitesbug    # §V-C: the Google Sites timing bug
//	warr-bench -experiment campaign    # WebErr campaigns: sequential vs concurrent executor
//
// The campaign experiment honours -parallel (default 8): the number of
// concurrent replay sessions the executor fans each campaign out to.
//
// EXPERIMENTS.md records the paper-reported values next to the outputs
// of this command.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	// Linking the calendar plugin keeps the hosted world identical
	// across all the tools, plugins included.
	_ "github.com/dslab-epfl/warr/apps/calendar"
	"github.com/dslab-epfl/warr/internal/experiments"
)

// experimentOrder is the -experiment=all sequence.
var experimentOrder = []string{"fig3", "fig4", "fig6", "grammar", "table1", "table2", "overhead", "sitesbug", "campaign"}

func main() {
	exp := flag.String("experiment", "all",
		"experiment to run: all, "+strings.Join(experimentOrder, ", "))
	seed := flag.Int64("seed", 2011, "random seed for typo injection (Table I)")
	full := flag.Bool("full-pipeline", false,
		"route Table I through full record-and-replay instead of live sessions")
	parallel := flag.Int("parallel", 8, "concurrent replay sessions for the campaign experiment")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to `file`")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after the run to `file`")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "warr-bench: creating cpu profile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "warr-bench: starting cpu profile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	names := experimentOrder
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if err := run(strings.TrimSpace(name), *seed, *full, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "warr-bench:", err)
			os.Exit(1)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "warr-bench: creating mem profile:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live retention
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "warr-bench: writing mem profile:", err)
			os.Exit(1)
		}
	}
}

func run(name string, seed int64, fullPipeline bool, parallel int) error {
	switch name {
	case "fig3":
		stack, err := experiments.Fig3Stack()
		if err != nil {
			return err
		}
		fmt.Println("Fig. 3: stack trace fragment when handling a mouse click")
		for _, frame := range stack {
			fmt.Printf("  %s\n", frame)
		}
	case "fig4":
		tr, err := experiments.Fig4Trace()
		if err != nil {
			return err
		}
		fmt.Println("Fig. 4: WaRR Commands recorded while editing a Google Sites page")
		fmt.Print(tr.CommandsText())
	case "fig6":
		tree, err := experiments.Fig6Tree()
		if err != nil {
			return err
		}
		fmt.Println("Fig. 6: task tree inferred for the edit-site session")
		fmt.Print(tree.String())
	case "grammar":
		g, err := experiments.Fig6Grammar()
		if err != nil {
			return err
		}
		fmt.Println("User-interaction grammar derived from the Fig. 6 task tree")
		fmt.Print(g.String())
	case "table1":
		rows, err := experiments.Table1(experiments.Table1Options{Seed: seed, FullPipeline: fullPipeline})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable1(rows))
		fmt.Println("(paper: Google 100%, Bing 59.1%, Yahoo! 84.4%)")
	case "table2":
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable2(rows))
		fmt.Println("(paper: WaRR C,C,C,C; Selenium IDE P,P,C,P)")
	case "overhead":
		r, err := experiments.Overhead()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatOverhead(r))
	case "sitesbug":
		r, err := experiments.SitesBug()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSitesBug(r))
	case "campaign":
		rows, err := experiments.CampaignAll(parallel)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCampaign(rows))
	default:
		return fmt.Errorf("unknown experiment %q (want all, %s)",
			name, strings.Join(experimentOrder, ", "))
	}
	return nil
}
