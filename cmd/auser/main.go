// Command auser demonstrates AUsER, the automatic user experience
// reporting flow (paper §VI): a user hits the Google Sites timing bug,
// presses the report button, and an encrypted report — redacted trace,
// bug description, console output, partial page snapshot — is produced
// for the application's developers, who decrypt and read it.
//
// Usage:
//
//	auser                         # full flow, report printed after decryption
//	auser -envelope report.bin    # also write the sealed envelope
//	auser -redact all             # redact every keystroke (default: passwords)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	warr "github.com/dslab-epfl/warr"
	// Linking the calendar plugin keeps the hosted world identical
	// across all the tools, plugins included.
	_ "github.com/dslab-epfl/warr/apps/calendar"
)

func main() {
	envelopePath := flag.String("envelope", "", "write the sealed report to this file")
	redact := flag.String("redact", "passwords", "trace redaction: none, passwords, all")
	flag.Parse()

	if err := run(*envelopePath, *redact); err != nil {
		fmt.Fprintln(os.Stderr, "auser:", err)
		os.Exit(1)
	}
}

func run(envelopePath, redact string) error {
	var redactor func(warr.Trace) warr.Trace
	switch redact {
	case "none":
	case "passwords":
		redactor = warr.RedactMatching("pass")
	case "all":
		redactor = warr.RedactAllTyped
	default:
		return fmt.Errorf("unknown -redact %q (want none, passwords, all)", redact)
	}

	// --- the user's side ---
	fmt.Println("user session: editing a Google Sites page, impatiently")
	env := warr.NewDemoEnv(warr.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(warr.SitesURL); err != nil {
		return err
	}
	rec := warr.NewRecorder(env.Clock)
	rec.Attach(tab)
	// Detach on every path: the recorder must not keep logging into the
	// reported trace while the report is assembled from the same tab.
	defer rec.Detach()

	// The user clicks Edit and saves immediately — before the editor's
	// asynchronously loaded module arrives (§V-C).
	doc := tab.MainFrame().Doc()
	x, y := tab.Layout().Center(doc.GetElementByID("start"))
	tab.Click(x, y)
	for _, d := range doc.Root().ElementsByTag("div") {
		if strings.TrimSpace(d.TextContent()) == "Save" {
			sx, sy := tab.Layout().Center(d)
			tab.Click(sx, sy)
			break
		}
	}
	if errs := tab.ConsoleErrors(); len(errs) > 0 {
		fmt.Printf("bug manifests: %s\n", errs[0].Message)
	}

	rec.Detach()
	fmt.Println("user presses the AUsER report button")
	report, err := warr.NewUserReport(
		"I clicked Save but my changes were not saved.",
		rec.Trace(), tab, warr.ReportOptions{
			Redact:        redactor,
			SnapshotXPath: `//table[@id="editor"]`, // only the editor, not the whole page
		})
	if err != nil {
		return err
	}

	key, err := warr.GenerateDeveloperKey(2048)
	if err != nil {
		return err
	}
	sealed, err := warr.SealReport(report, &key.PublicKey)
	if err != nil {
		return err
	}
	encoded, err := sealed.Encode()
	if err != nil {
		return err
	}
	fmt.Printf("report sealed for the developers (%d bytes)\n", len(encoded))
	if envelopePath != "" {
		if err := os.WriteFile(envelopePath, encoded, 0o600); err != nil {
			return err
		}
		fmt.Printf("envelope written to %s\n", envelopePath)
	}

	// --- the developers' side ---
	fmt.Println("\ndevelopers decrypt the report:")
	opened, err := warr.OpenReport(sealed, key)
	if err != nil {
		return err
	}
	fmt.Println(opened.Text())

	// Ingest the report on the shared job engine — the same replay →
	// minimize → classify pipeline a warr-serve daemon runs when the
	// report is POSTed to /api/reports.
	fmt.Println("developers ingest the report (replay, minimize, classify):")
	engine := warr.NewJobEngine(warr.JobEngineOptions{Workers: 1, QueueDepth: 1})
	defer engine.Close()
	job, err := engine.Submit(warr.JobSpec{
		Kind:        warr.JobReport,
		Trace:       opened.Trace,
		Description: opened.Description,
	})
	if err != nil {
		return err
	}
	_ = job.Wait(nil)
	if err := job.Err(); err != nil {
		return err
	}
	cls := job.Classification()
	fmt.Printf("  verdict: %s\n", cls.Verdict)
	if cls.Signal != "" {
		fmt.Printf("  signal: %s\n", cls.Signal)
	}
	fmt.Printf("  minimized: %d of %d commands reproduce it (%d replays spent)\n",
		len(cls.Minimized.Commands), len(opened.Trace.Commands), cls.Replays)
	return nil
}
