// Command warr-corpus maintains and verifies the golden-trace
// regression corpus under testdata/corpus/: one versioned trace archive
// per recordable scenario, each paired with a golden JSON outcome.
//
// CI runs `warr-corpus -verify` on every change: each archive is
// replayed through a fresh environment and its observed outcome (step
// counts, relaxation counts, indexed-vs-walker XPath agreement,
// inferred grammar fingerprint, WebErr campaign findings) is diffed
// against the committed golden. Any drift fails the build; deliberate
// drift is committed with `warr-corpus -update` so the diff is visible
// in review.
//
// Usage:
//
//	warr-corpus -verify               # replay all archives + images, diff against goldens (CI gate)
//	warr-corpus -update               # regenerate goldens after a deliberate behavior change
//	warr-corpus -record               # re-record all archives (and world images) from their scenarios
//	warr-corpus -run edit-site.warr   # print one archive's outcome JSON
//	warr-corpus -run edit-site.image  # print one world image's restore outcome JSON
//
// Besides trace archives the corpus pins committed WARR-IMAGE world
// images — the durable forked-world format the distributed campaign
// coordinator ships to warr-worker processes. -verify decodes the
// committed bytes (checksum and version validation), checks their
// content digest against the golden, and resumes the restored session
// to completion, so images stay restorable across builds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	// Linking the calendar plugin registers its app and create-event
	// scenario, so the corpus covers it like any other workload.
	_ "github.com/dslab-epfl/warr/apps/calendar"
	"github.com/dslab-epfl/warr/internal/trace"
)

func main() {
	dir := flag.String("corpus", "testdata/corpus", "corpus directory")
	verify := flag.Bool("verify", false, "replay every archive and diff outcomes against goldens; non-zero exit on drift")
	update := flag.Bool("update", false, "regenerate goldens from current behavior (commit the diff)")
	record := flag.Bool("record", false, "re-record every archive from its scenario (then run -update)")
	runOne := flag.String("run", "", "replay one archive file and print its outcome JSON")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*verify, *update, *record, *runOne != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "warr-corpus: exactly one of -verify, -update, -record, -run is required")
		flag.Usage()
		os.Exit(2)
	}

	if err := run(*dir, *verify, *update, *record, *runOne); err != nil {
		fmt.Fprintln(os.Stderr, "warr-corpus:", err)
		os.Exit(1)
	}
}

func run(dir string, verify, update, record bool, runOne string) error {
	switch {
	case runOne != "":
		var b []byte
		var err error
		if strings.HasSuffix(runOne, trace.ImageExt) {
			out, rerr := trace.RunImage(runOne)
			if rerr != nil {
				return rerr
			}
			b, err = trace.MarshalImageOutcome(out)
		} else {
			out, rerr := trace.RunArchive(runOne)
			if rerr != nil {
				return rerr
			}
			b, err = trace.MarshalOutcome(out)
		}
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
		return nil

	case record:
		names, err := trace.RecordDir(dir)
		for _, n := range names {
			fmt.Printf("recorded %s\n", n)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%d archives written to %s; run warr-corpus -update to refresh goldens\n", len(names), dir)
		return nil

	case update:
		changed, err := trace.UpdateDir(dir)
		if err != nil {
			return err
		}
		if len(changed) == 0 {
			fmt.Println("goldens already match current behavior")
			return nil
		}
		for _, n := range changed {
			fmt.Printf("updated %s%s\n", n, trace.GoldenExt)
		}
		fmt.Printf("%d golden(s) regenerated — review and commit the diff\n", len(changed))
		return nil

	default: // verify
		mismatches, err := trace.VerifyDir(dir)
		if err != nil {
			return err
		}
		if len(mismatches) == 0 {
			fmt.Printf("corpus green: every archive in %s replays to its golden outcome\n", dir)
			return nil
		}
		for _, m := range mismatches {
			fmt.Fprintf(os.Stderr, "DRIFT %s:\n%s\n\n", m.Name, indent(m.Diff))
		}
		fmt.Fprintf(os.Stderr, "%d corpus entries drifted from their goldens\n", len(mismatches))
		fmt.Fprintln(os.Stderr, "If this change is intended, run `go run ./cmd/warr-corpus -update` and commit the golden diff.")
		os.Exit(1)
		return nil
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
