// warr-worker is the executing half of a distributed campaign: a
// process that polls a coordinator (warr-serve's /api/distrib
// endpoints, or the loopback coordinator weberr -workers starts) for
// shard leases, restores each lease's branch-point world image into a
// fresh environment, continues the subtree through the standard
// campaign scheduler, and reports outcomes in the shared jobs event
// vocabulary.
//
// Workers are stateless and disposable. One that dies mid-shard simply
// stops heartbeating; the coordinator re-queues its leases and the
// survivors pick them up, with findings identical to a single-process
// run. Start as many as the machine has cores to spare:
//
//	warr-worker -coordinator http://127.0.0.1:8731/api/distrib
//	warr-worker -coordinator http://127.0.0.1:8731/api/distrib -id worker-a
//
// The worker links the same application registry the other CLIs do
// (paper workloads plus the calendar plugin), so any campaign the
// coordinator plans can be executed here.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	// Linking the calendar plugin registers its app, matching the
	// worlds weberr and warr-serve build.
	_ "github.com/dslab-epfl/warr/apps/calendar"
	"github.com/dslab-epfl/warr/internal/distrib"
)

func main() {
	coordinator := flag.String("coordinator", "http://127.0.0.1:8731/api/distrib",
		"base URL of the coordinator's distrib endpoints")
	id := flag.String("id", "", "worker identity (default worker-<pid>-<n>)")
	poll := flag.Duration("poll", 100*time.Millisecond, "idle lease re-poll interval")
	flag.Parse()

	w := distrib.NewWorker(distrib.WorkerOptions{
		Coordinator:  *coordinator,
		ID:           *id,
		PollInterval: *poll,
		Logf:         log.Printf,
	})
	log.Printf("warr-worker %s polling %s", w.ID(), *coordinator)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := w.Run(ctx)
	switch {
	case errors.Is(err, distrib.ErrCrashed):
		// A coordinator running with -faults killed us on purpose; die
		// with a distinct status so chaos harnesses can tell an injected
		// crash from a real failure.
		log.Printf("warr-worker %s: %v", w.ID(), err)
		os.Exit(7)
	case err != nil && !errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "warr-worker:", err)
		os.Exit(1)
	}
	log.Printf("warr-worker %s stopped", w.ID())
}
