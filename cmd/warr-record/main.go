// Command warr-record records a user session against one of the
// simulated web applications and writes the resulting WaRR Command trace
// (Fig. 1, steps 1-2).
//
// Usage:
//
//	warr-record -scenario edit-site -o edit.warr
//	warr-record -scenario edit-site -o edit.txt -format text
//	warr-record -scenario compose-email -print
//	warr-record -scenario edit-site -nondet -o edit.warr
//
// By default -o writes a versioned trace archive: a plaintext header
// (format version, scenario, app, recorder, creation time) over a
// gzip-compressed body in the paper's Fig. 4 text format. warr-replay
// and weberr read both archives and the legacy bare text dump, which
// `-format text` still writes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	warr "github.com/dslab-epfl/warr"
)

func main() {
	scenario := flag.String("scenario", "edit-site",
		"session to record: "+strings.Join(warr.ScenarioNames(), ", "))
	out := flag.String("o", "", "trace output file (default: stdout summary only)")
	format := flag.String("format", "archive",
		"output format for -o: archive (versioned, compressed, validated) or text (legacy bare dump)")
	print := flag.Bool("print", false, "print the recorded commands (Fig. 4 style)")
	nondet := flag.Bool("nondet", false,
		"also log nondeterminism sources (timers, network) and print the annotated trace")
	flag.Parse()

	if err := run(*scenario, *out, *format, *print, *nondet); err != nil {
		fmt.Fprintln(os.Stderr, "warr-record:", err)
		os.Exit(1)
	}
}

func run(scenario, out, format string, print, nondet bool) error {
	if format != "archive" && format != "text" {
		return fmt.Errorf("unknown -format %q (want archive or text)", format)
	}
	sc, ok := warr.ScenarioByName(scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q (want one of %s)",
			scenario, strings.Join(warr.ScenarioNames(), ", "))
	}

	var tr warr.Trace
	var annotated string // nondet-annotated body, when -nondet
	var err error
	if nondet {
		// Record with the nondeterminism extension attached: the
		// annotated trace shows what the application did between the
		// user's actions (timer firings, AJAX completions).
		env := warr.NewDemoEnv(warr.UserMode)
		log := warr.NewNondetLog(env)
		tab := env.Browser.NewTab()
		if err := tab.Navigate(sc.StartURL); err != nil {
			return err
		}
		rec := warr.NewRecorder(env.Clock)
		rec.Attach(tab)
		start := env.Clock.Now()
		if err := sc.Run(env, tab); err != nil {
			return err
		}
		rec.Detach()
		tr = rec.Trace()
		annotated = log.Annotate(tr, start)
		fmt.Printf("recorded %q against %s: %d commands, %d nondeterminism events\n",
			sc.Name, sc.App, len(tr.Commands), len(log.Events()))
		fmt.Print(annotated)
	} else {
		tr, err = warr.RecordSession(sc)
		if err != nil {
			return err
		}
		fmt.Printf("recorded %q against %s: %d commands, %s of interaction\n",
			sc.Name, sc.App, len(tr.Commands), tr.Duration())
	}

	if print && !nondet {
		fmt.Print(tr.CommandsText())
	}
	if out != "" {
		if err := writeTrace(out, format, sc, tr, annotated); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%s format)\n", out, format)
	}
	return nil
}

// writeTrace persists the recording: a versioned archive by default, or
// the legacy bare text dump under -format text. A nondet-annotated body
// is preserved comment lines and all in either format.
func writeTrace(path, format string, sc warr.Scenario, tr warr.Trace, annotated string) error {
	var err error
	if format == "archive" {
		h := warr.TraceArchiveHeader{
			Scenario: sc.Name,
			App:      sc.App,
			Recorder: "warr-record",
			Created:  time.Now().UTC().Format(time.RFC3339),
		}
		if annotated != "" {
			err = warr.WriteTraceArchiveTextFile(path, h, annotated)
		} else {
			err = warr.WriteTraceArchiveFile(path, h, tr)
		}
	} else { // text
		err = writeTextDump(path, tr, annotated)
	}
	if err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	return nil
}

// writeTextDump writes the legacy bare text format.
func writeTextDump(path string, tr warr.Trace, annotated string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if annotated != "" {
		_, err = f.WriteString(annotated)
	} else {
		_, err = tr.WriteTo(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
