// Command warr-record records a user session against a registered web
// application and writes the resulting WaRR Command trace (Fig. 1,
// steps 1-2). Any scenario registered through the public plugin API —
// the paper's Table II workloads, the calendar demo plugin, or your
// own — is recordable by name; -list shows what this build knows.
//
// Usage:
//
//	warr-record -list
//	warr-record -scenario edit-site -o edit.warr
//	warr-record -scenario create-event -o event.warr
//	warr-record -scenario edit-site -o edit.txt -format text
//	warr-record -scenario compose-email -print
//	warr-record -scenario edit-site -nondet -o edit.warr
//
// By default -o writes a versioned trace archive: a plaintext header
// (format version, scenario, app, recorder, creation time) over a
// gzip-compressed body in the paper's Fig. 4 text format. warr-replay
// and weberr read both archives and the legacy bare text dump, which
// `-format text` still writes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	warr "github.com/dslab-epfl/warr"
	// Linking the calendar plugin registers its app and create-event
	// scenario — the proof any app can ride the public surface.
	_ "github.com/dslab-epfl/warr/apps/calendar"
	"github.com/dslab-epfl/warr/internal/cliutil"
)

func main() {
	scenario := flag.String("scenario", "edit-site",
		"session to record: "+strings.Join(warr.ScenarioNames(), ", "))
	list := flag.Bool("list", false, "list registered applications and scenarios, then exit")
	out := flag.String("o", "", "trace output file (default: stdout summary only)")
	format := flag.String("format", "archive",
		"output format for -o: archive (versioned, compressed, validated) or text (legacy bare dump)")
	print := flag.Bool("print", false, "print the recorded commands (Fig. 4 style)")
	nondet := flag.Bool("nondet", false,
		"also log nondeterminism sources (timers, network) and print the annotated trace")
	flag.Parse()

	if *list {
		cliutil.PrintApps(os.Stdout, "registered applications:")
		cliutil.PrintScenarios(os.Stdout, "\nregistered scenarios:", true)
		return
	}
	if err := run(*scenario, *out, *format, *print, *nondet); err != nil {
		fmt.Fprintln(os.Stderr, "warr-record:", err)
		os.Exit(1)
	}
}

func run(scenario, out, format string, print, nondet bool) error {
	if format != "archive" && format != "text" {
		return fmt.Errorf("unknown -format %q (want archive or text)", format)
	}
	sc, err := warr.LookupScenario(scenario)
	if err != nil {
		return err
	}

	// One shared record path for both flavors; -nondet additionally
	// attaches the nondeterminism log and prints the annotated trace.
	rec, err := warr.RecordScenario(sc, warr.RecordOptions{Nondet: nondet})
	if err != nil {
		return err
	}
	tr, annotated := rec.Trace, rec.Annotated()
	if nondet {
		fmt.Printf("recorded %q against %s: %d commands, %d nondeterminism events\n",
			sc.Name, sc.App, len(tr.Commands), len(rec.Nondet.Events()))
		fmt.Print(annotated)
	} else {
		fmt.Printf("recorded %q against %s: %d commands, %s of interaction\n",
			sc.Name, sc.App, len(tr.Commands), tr.Duration())
	}

	if print && !nondet {
		fmt.Print(tr.CommandsText())
	}
	if out != "" {
		if err := writeTrace(out, format, sc, tr, annotated); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%s format)\n", out, format)
	}
	return nil
}

// writeTrace persists the recording: a versioned archive by default, or
// the legacy bare text dump under -format text. A nondet-annotated body
// is preserved comment lines and all in either format.
func writeTrace(path, format string, sc warr.Scenario, tr warr.Trace, annotated string) error {
	var err error
	if format == "archive" {
		h := warr.TraceArchiveHeader{
			Scenario: sc.Name,
			App:      sc.App,
			Recorder: "warr-record",
			Created:  time.Now().UTC().Format(time.RFC3339),
		}
		if annotated != "" {
			err = warr.WriteTraceArchiveTextFile(path, h, annotated)
		} else {
			err = warr.WriteTraceArchiveFile(path, h, tr)
		}
	} else { // text
		err = writeTextDump(path, tr, annotated)
	}
	if err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	return nil
}

// writeTextDump writes the legacy bare text format.
func writeTextDump(path string, tr warr.Trace, annotated string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if annotated != "" {
		_, err = f.WriteString(annotated)
	} else {
		_, err = tr.WriteTo(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
