// Command warr-record records a user session against one of the
// simulated web applications and writes the resulting WaRR Command trace
// (Fig. 1, steps 1-2).
//
// Usage:
//
//	warr-record -scenario edit-site -o edit.warr
//	warr-record -scenario compose-email -print
//
// The trace file is the text format of the paper's Fig. 4 and is
// consumed by warr-replay and weberr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	warr "github.com/dslab-epfl/warr"
)

func main() {
	scenario := flag.String("scenario", "edit-site",
		"session to record: "+strings.Join(warr.ScenarioNames(), ", "))
	out := flag.String("o", "", "trace output file (default: stdout summary only)")
	print := flag.Bool("print", false, "print the recorded commands (Fig. 4 style)")
	nondet := flag.Bool("nondet", false,
		"also log nondeterminism sources (timers, network) and print the annotated trace")
	flag.Parse()

	if err := run(*scenario, *out, *print, *nondet); err != nil {
		fmt.Fprintln(os.Stderr, "warr-record:", err)
		os.Exit(1)
	}
}

func run(scenario, out string, print, nondet bool) error {
	sc, ok := warr.ScenarioByName(scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q (want one of %s)",
			scenario, strings.Join(warr.ScenarioNames(), ", "))
	}

	var tr warr.Trace
	var err error
	if nondet {
		// Record with the nondeterminism extension attached: the
		// annotated trace shows what the application did between the
		// user's actions (timer firings, AJAX completions).
		env := warr.NewDemoEnv(warr.UserMode)
		log := warr.NewNondetLog(env)
		tab := env.Browser.NewTab()
		if err := tab.Navigate(sc.StartURL); err != nil {
			return err
		}
		rec := warr.NewRecorder(env.Clock)
		rec.Attach(tab)
		start := env.Clock.Now()
		if err := sc.Run(env, tab); err != nil {
			return err
		}
		tr = rec.Trace()
		fmt.Printf("recorded %q against %s: %d commands, %d nondeterminism events\n",
			sc.Name, sc.App, len(tr.Commands), len(log.Events()))
		fmt.Print(log.Annotate(tr, start))
	} else {
		tr, err = warr.RecordSession(sc)
		if err != nil {
			return err
		}
		fmt.Printf("recorded %q against %s: %d commands, %s of interaction\n",
			sc.Name, sc.App, len(tr.Commands), tr.Duration())
	}

	if print && !nondet {
		fmt.Print(tr.CommandsText())
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := tr.WriteTo(f); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("trace written to %s\n", out)
	}
	return nil
}
