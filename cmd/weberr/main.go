// Command weberr tests a simulated web application against realistic
// human errors (paper §V, Fig. 5): it records a correct session, infers
// the user-interaction grammar, injects navigation errors (forget,
// reorder, substitute — confined to single grammar rules) and timing
// errors (no wait time), replays the erroneous traces in fresh
// environments, and reports what the oracle found.
//
// The correct trace may be recorded live from a named scenario, loaded
// from a trace file (versioned archive or legacy text, auto-detected)
// with -trace, and persisted as a versioned archive with -save — so a
// trace recorded once can be re-tested later, elsewhere.
//
// Any scenario registered through the public plugin API is testable by
// name — -list shows what this build knows.
//
// Usage:
//
//	weberr -list
//	weberr -scenario edit-site                 # both campaigns
//	weberr -scenario create-event              # a plugin app's workload
//	weberr -scenario edit-site -campaign timing
//	weberr -scenario compose-email -campaign navigation -show-tree
//	weberr -scenario edit-site -save edit.warr # archive the correct trace
//	weberr -trace edit.warr                    # re-test a stored trace
//	weberr -scenario edit-site -workers 4      # distributed campaign
//	weberr -scenario edit-site -fuzz -budget 64 # coverage-guided fuzzing
//
// With -workers N the campaigns run distributed: a coordinator plans
// the trace trie into shards, parks each branch-point world as a
// durable image, and N worker processes (in-process here, but speaking
// the same localhost HTTP/JSON protocol warr-worker uses against
// warr-serve) restore the images and execute the shards. Findings are
// identical to single-process execution at any worker count.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	warr "github.com/dslab-epfl/warr"
	// Linking the calendar plugin registers its app and create-event
	// scenario, making them campaign-testable like the paper workloads.
	_ "github.com/dslab-epfl/warr/apps/calendar"
	"github.com/dslab-epfl/warr/internal/cliutil"
	"github.com/dslab-epfl/warr/internal/distrib"
	"github.com/dslab-epfl/warr/internal/faults"
)

func main() {
	scenario := flag.String("scenario", "edit-site",
		"session to test: "+strings.Join(warr.ScenarioNames(), ", "))
	traceFile := flag.String("trace", "",
		"load the correct trace from this file instead of recording a scenario")
	save := flag.String("save", "", "archive the correct trace to this file")
	campaign := flag.String("campaign", "both", "navigation, timing, or both")
	showTree := flag.Bool("show-tree", false, "print the inferred task tree (Fig. 6)")
	showGrammar := flag.Bool("show-grammar", false, "print the inferred grammar")
	maxTraces := flag.Int("max-traces", 0, "bound the navigation campaign (0 = all mutants)")
	fuzz := flag.Bool("fuzz", false, "run the coverage-guided error-model fuzzing campaign instead of the enumerated ones")
	budget := flag.Int("budget", 0, "fuzzing replay budget (0 = engine default)")
	fuzzSeed := flag.Int64("fuzz-seed", 1, "seed for the fuzzer's deterministic mutation stream")
	workers := flag.Int("workers", 0, "distribute campaigns across this many workers over localhost HTTP (0 = in-process)")
	faultSched := flag.String("faults", "", "fault schedule injected into the worker pool's wire protocol, e.g. drop:lease/2;crash:worker1@shard3 (requires -workers)")
	list := flag.Bool("list", false, "list registered applications and scenarios, then exit")
	flag.Parse()

	if *list {
		cliutil.PrintApps(os.Stdout, "registered applications:")
		cliutil.PrintScenarios(os.Stdout, "\nregistered scenarios (testable with -scenario):", false)
		return
	}
	if *fuzz {
		*campaign = "fuzz"
	}
	if err := run(runOptions{
		scenario: *scenario, traceFile: *traceFile, save: *save, campaign: *campaign,
		showTree: *showTree, showGrammar: *showGrammar, maxTraces: *maxTraces,
		fuzzBudget: *budget, fuzzSeed: *fuzzSeed, workers: *workers, faults: *faultSched,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "weberr:", err)
		os.Exit(1)
	}
}

// correctTrace obtains the correct interaction: recorded live from the
// named scenario, or read back from a stored trace file. For a loaded
// archive it also returns the exact body text, so -save re-archives
// losslessly — nondeterminism annotation comments included.
func correctTrace(scenario, traceFile string) (tr warr.Trace, h warr.TraceArchiveHeader, body string, err error) {
	if traceFile != "" {
		data, err := os.ReadFile(traceFile)
		if err != nil {
			return warr.Trace{}, h, "", err
		}
		if warr.IsTraceArchive(data) {
			rd, err := warr.NewTraceArchiveReader(bytes.NewReader(data))
			if err != nil {
				return warr.Trace{}, h, "", err
			}
			rd.KeepBody()
			if tr, err = rd.Trace(); err != nil {
				return warr.Trace{}, h, "", err
			}
			h = rd.Header()
			body = strings.Join(rd.BodyLines(), "\n") + "\n"
		} else {
			if tr, err = warr.ParseTrace(string(data)); err != nil {
				return warr.Trace{}, h, "", err
			}
			// A legacy dump in the canonical text layout is itself a
			// valid archive body; keep it so -save preserves comments.
			if strings.HasPrefix(string(data), warr.TraceBodyMagic+"\n") {
				body = string(data)
			}
		}
		name, app := h.Scenario, h.App
		if name == "" {
			name, app = "stored trace", traceFile
		}
		fmt.Printf("loaded correct interaction: %s / %s (%d commands)\n", app, name, len(tr.Commands))
		return tr, h, body, nil
	}
	sc, err := warr.LookupScenario(scenario)
	if err != nil {
		return warr.Trace{}, h, "", err
	}
	fmt.Printf("recording correct interaction: %s / %s\n", sc.App, sc.Name)
	tr, err = warr.RecordSession(sc)
	if err != nil {
		return warr.Trace{}, h, "", err
	}
	fmt.Printf("  %d commands\n", len(tr.Commands))
	return tr, warr.TraceArchiveHeader{Scenario: sc.Name, App: sc.App}, "", nil
}

// startWorkerPool brings up the distributed-campaign fleet: a
// coordinator pool behind a loopback HTTP listener and n workers
// polling it — the same wire protocol warr-worker speaks against
// warr-serve, collapsed into one process.
func startWorkerPool(n int, faultSched string) (*distrib.Pool, func(), error) {
	popts := distrib.PoolOptions{}
	if faultSched != "" {
		sched, err := faults.Parse(faultSched)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing -faults: %w", err)
		}
		popts.Faults = faults.NewInjector(sched, func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		})
		fmt.Printf("injecting faults: %s\n", sched)
	}
	pool := distrib.NewPool(popts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("starting coordinator: %w", err)
	}
	hs := &http.Server{Handler: pool.Handler()}
	go func() { _ = hs.Serve(ln) }()
	ctx, cancel := context.WithCancel(context.Background())
	coordinator := "http://" + ln.Addr().String()
	for i := 0; i < n; i++ {
		w := distrib.NewWorker(distrib.WorkerOptions{
			Coordinator:  coordinator,
			PollInterval: 10 * time.Millisecond,
		})
		go func() { _ = w.Run(ctx) }()
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := pool.WaitForWorkers(wctx, n); err != nil {
		cancel()
		_ = hs.Close()
		return nil, nil, err
	}
	stop := func() {
		cancel()
		_ = hs.Close()
	}
	fmt.Printf("distributing campaigns across %d workers via %s\n", n, coordinator)
	return pool, stop, nil
}

// runOptions carry the parsed flags into run.
type runOptions struct {
	scenario, traceFile, save, campaign string
	showTree, showGrammar               bool
	maxTraces                           int
	fuzzBudget                          int
	fuzzSeed                            int64
	workers                             int
	faults                              string
}

func run(o runOptions) error {
	scenario, traceFile, save, campaign := o.scenario, o.traceFile, o.save, o.campaign
	showTree, showGrammar := o.showTree, o.showGrammar
	maxTraces, workers := o.maxTraces, o.workers
	switch campaign {
	case "navigation", "timing", "both", "fuzz":
	default:
		return fmt.Errorf("unknown -campaign %q (want navigation, timing, both, or fuzz)", campaign)
	}
	tr, header, body, err := correctTrace(scenario, traceFile)
	if err != nil {
		return err
	}
	if save != "" {
		h := header
		h.Version = 0 // re-stamp with the version this build writes
		h.Recorder = "weberr"
		h.Created = time.Now().UTC().Format(time.RFC3339)
		if body != "" {
			err = warr.WriteTraceArchiveTextFile(save, h, body)
		} else {
			err = warr.WriteTraceArchiveFile(save, h, tr)
		}
		if err != nil {
			return fmt.Errorf("archiving trace: %w", err)
		}
		fmt.Printf("correct trace archived to %s\n", save)
	}

	// Both campaigns run as jobs on the shared engine — the same
	// execution path a warr-serve daemon drives for submitted campaigns.
	engineOpts := warr.JobEngineOptions{Workers: 1, QueueDepth: 2}
	if workers > 0 {
		pool, stop, err := startWorkerPool(workers, o.faults)
		if err != nil {
			return err
		}
		defer stop()
		engineOpts.Distributor = pool
	}
	engine := warr.NewJobEngine(engineOpts)
	defer engine.Close()

	bugs := 0
	if campaign == "navigation" || campaign == "both" {
		job, err := engine.Submit(warr.JobSpec{
			Kind:      warr.JobNavigationCampaign,
			Trace:     tr,
			TraceName: header.Scenario,
			MaxTraces: maxTraces,
		})
		if err != nil {
			return err
		}
		_ = job.Wait(nil)
		if err := job.Err(); err != nil {
			return err
		}
		if showTree {
			fmt.Println("\ninferred task tree (Fig. 6):")
			fmt.Print(job.TaskTree().String())
		}
		if showGrammar {
			fmt.Println("\ninferred interaction grammar:")
			fmt.Print(job.Grammar().String())
		}

		fmt.Println("\nnavigation-error campaign (forget / reorder / substitute):")
		bugs += printReport(job.Report())
	}

	if campaign == "timing" || campaign == "both" {
		job, err := engine.Submit(warr.JobSpec{
			Kind:      warr.JobTimingCampaign,
			Trace:     tr,
			TraceName: header.Scenario,
		})
		if err != nil {
			return err
		}
		_ = job.Wait(nil)
		if err := job.Err(); err != nil {
			return err
		}
		fmt.Println("\ntiming-error campaign (impatient users):")
		bugs += printReport(job.Report())
	}

	if campaign == "fuzz" {
		job, err := engine.Submit(warr.JobSpec{
			Kind:       warr.JobFuzzCampaign,
			Trace:      tr,
			TraceName:  header.Scenario,
			FuzzBudget: o.fuzzBudget,
			FuzzSeed:   o.fuzzSeed,
		})
		if err != nil {
			return err
		}
		_ = job.Wait(nil)
		if err := job.Err(); err != nil {
			return err
		}
		fmt.Println("\ncoverage-guided error-model fuzzing campaign:")
		if st := job.FuzzStats(); st != nil {
			fmt.Printf("  candidates generated: %d, deduped: %d, pruned: %d, replayed: %d, replay failures: %d\n",
				st.Generated, st.Deduped, st.Pruned, st.Replayed, st.ReplayFailures)
			fmt.Printf("  coverage-novel: %d, corpus size: %d, coverage bits: %d (seed %d, budget spent %d)\n",
				st.Novel, st.CorpusSize, st.CoverageBits, o.fuzzSeed, st.Spent())
		}
		for _, f := range job.Report().Findings {
			fmt.Printf("  FINDING [%s]\n    %v\n", f.Injection, f.Observed)
		}
		bugs += len(job.Report().Findings)
	}

	if bugs > 0 {
		fmt.Printf("\n%d potential bug(s) found\n", bugs)
		os.Exit(3)
	}
	fmt.Println("\nno bugs found")
	return nil
}

func printReport(rep *warr.CampaignReport) int {
	fmt.Printf("  traces generated: %d, replayed: %d, pruned: %d, replay failures: %d\n",
		rep.Generated, rep.Replayed, rep.Pruned, rep.ReplayFailures)
	for _, f := range rep.Findings {
		fmt.Printf("  FINDING [%s]\n    %v\n", f.Injection, f.Observed)
	}
	return len(rep.Findings)
}
