// Command weberr tests a simulated web application against realistic
// human errors (paper §V, Fig. 5): it records a correct session, infers
// the user-interaction grammar, injects navigation errors (forget,
// reorder, substitute — confined to single grammar rules) and timing
// errors (no wait time), replays the erroneous traces in fresh
// environments, and reports what the oracle found.
//
// Usage:
//
//	weberr -scenario edit-site                 # both campaigns
//	weberr -scenario edit-site -campaign timing
//	weberr -scenario compose-email -campaign navigation -show-tree
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	warr "github.com/dslab-epfl/warr"
)

func main() {
	scenario := flag.String("scenario", "edit-site",
		"session to test: "+strings.Join(warr.ScenarioNames(), ", "))
	campaign := flag.String("campaign", "both", "navigation, timing, or both")
	showTree := flag.Bool("show-tree", false, "print the inferred task tree (Fig. 6)")
	showGrammar := flag.Bool("show-grammar", false, "print the inferred grammar")
	maxTraces := flag.Int("max-traces", 0, "bound the navigation campaign (0 = all mutants)")
	flag.Parse()

	if err := run(*scenario, *campaign, *showTree, *showGrammar, *maxTraces); err != nil {
		fmt.Fprintln(os.Stderr, "weberr:", err)
		os.Exit(1)
	}
}

func run(scenario, campaign string, showTree, showGrammar bool, maxTraces int) error {
	sc, ok := warr.ScenarioByName(scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q (want one of %s)",
			scenario, strings.Join(warr.ScenarioNames(), ", "))
	}
	fmt.Printf("recording correct interaction: %s / %s\n", sc.App, sc.Name)
	tr, err := warr.RecordSession(sc)
	if err != nil {
		return err
	}
	fmt.Printf("  %d commands\n", len(tr.Commands))

	fresh := func() *warr.Browser { return warr.NewDemoEnv(warr.DeveloperMode).Browser }

	bugs := 0
	if campaign == "navigation" || campaign == "both" {
		tree, err := warr.InferTaskTree(fresh, tr)
		if err != nil {
			return fmt.Errorf("inferring task tree: %w", err)
		}
		if showTree {
			fmt.Println("\ninferred task tree (Fig. 6):")
			fmt.Print(tree.String())
		}
		g := warr.GrammarFromTaskTree(tree)
		if showGrammar {
			fmt.Println("\ninferred interaction grammar:")
			fmt.Print(g.String())
		}

		fmt.Println("\nnavigation-error campaign (forget / reorder / substitute):")
		rep := warr.RunNavigationCampaign(fresh, g, warr.CampaignOptions{MaxTraces: maxTraces})
		bugs += printReport(rep)
	}

	if campaign == "timing" || campaign == "both" {
		fmt.Println("\ntiming-error campaign (impatient users):")
		rep := warr.RunTimingCampaign(fresh, tr, warr.CampaignOptions{})
		bugs += printReport(rep)
	}

	if bugs > 0 {
		fmt.Printf("\n%d potential bug(s) found\n", bugs)
		os.Exit(3)
	}
	fmt.Println("\nno bugs found")
	return nil
}

func printReport(rep *warr.CampaignReport) int {
	fmt.Printf("  traces generated: %d, replayed: %d, pruned: %d, replay failures: %d\n",
		rep.Generated, rep.Replayed, rep.Pruned, rep.ReplayFailures)
	for _, f := range rep.Findings {
		fmt.Printf("  FINDING [%s]\n    %v\n", f.Injection, f.Observed)
	}
	return len(rep.Findings)
}
