// Command warr-replay replays a recorded WaRR Command trace against a
// fresh instance of the simulated world (Fig. 1, step 3) and reports how
// each command resolved: direct XPath match, relaxation heuristic,
// coordinate fallback, or failure. Steps stream as they replay, through
// the session API.
//
// The -trace file may be either a versioned trace archive (the
// warr-record default) or a legacy bare text dump; the format is
// auto-detected.
//
// The environment a trace replays in hosts every registered
// application — the demo apps plus any plugin linked into this build
// (e.g. the calendar app); -list shows them.
//
// Usage:
//
//	warr-replay -list
//	warr-replay -trace edit.warr
//	warr-replay -trace edit.warr -json               # machine-readable per-step output
//	warr-replay -trace edit.warr -parallel 8         # 8 concurrent replicas in isolated envs
//	warr-replay -trace edit.warr -timeout 50ms       # cancel mid-replay, keep the partial result
//	warr-replay -trace edit.warr -pace none          # impatient-user stress (§V-B)
//	warr-replay -trace edit.warr -mode user          # degraded user-mode browser
//	warr-replay -trace edit.warr -no-relaxation      # ablation (§IV-C)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	warr "github.com/dslab-epfl/warr"
	// Linking the calendar plugin registers its app, so calendar traces
	// replay against a world that hosts it.
	_ "github.com/dslab-epfl/warr/apps/calendar"
	"github.com/dslab-epfl/warr/internal/cliutil"
)

type config struct {
	mode     warr.Mode
	opts     warr.ReplayOptions
	parallel int
	jsonOut  bool
	timeout  time.Duration
}

func main() {
	trace := flag.String("trace", "", "trace file recorded by warr-record (required)")
	mode := flag.String("mode", "developer", "browser build: developer or user")
	pace := flag.String("pace", "recorded", "command pacing: recorded or none")
	noRelax := flag.Bool("no-relaxation", false, "disable progressive XPath relaxation")
	noCoord := flag.Bool("no-coordinates", false, "disable the click-coordinate fallback")
	parallel := flag.Int("parallel", 1, "replay N concurrent replicas of the trace, each in an isolated environment")
	jsonOut := flag.Bool("json", false, "machine-readable JSON-lines output: one object per step, plus a summary; with -parallel > 1, one summary or skipped object per replica (no step objects)")
	timeout := flag.Duration("timeout", 0, "cancel the replay after this long (0 = no limit); the partial result is reported")
	list := flag.Bool("list", false, "list the applications and scenarios this build hosts, then exit")
	flag.Parse()

	if *list {
		cliutil.PrintApps(os.Stdout, "registered applications (hosted in every replay environment):")
		cliutil.PrintScenarios(os.Stdout, "\nregistered scenarios (recordable with warr-record):", false)
		return
	}
	if err := run(*trace, *mode, *pace, *noRelax, *noCoord, *parallel, *jsonOut, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "warr-replay:", err)
		os.Exit(1)
	}
}

func run(path, mode, pace string, noRelax, noCoord bool, parallel int, jsonOut bool, timeout time.Duration) error {
	if path == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Accept both on-disk formats: the versioned archive warr-record
	// writes by default, and the legacy bare text dump.
	header, tr, err := warr.ReadTraceAuto(f)
	if err != nil {
		return err
	}
	if header.Version != 0 && !jsonOut {
		fmt.Printf("archive v%d", header.Version)
		if header.Scenario != "" {
			fmt.Printf(": %q", header.Scenario)
		}
		if header.App != "" {
			fmt.Printf(" against %s", header.App)
		}
		if header.Recorder != "" {
			fmt.Printf(" (recorded by %s)", header.Recorder)
		}
		fmt.Println()
	}

	cfg := config{parallel: parallel, jsonOut: jsonOut, timeout: timeout}
	switch mode {
	case "developer":
		cfg.mode = warr.DeveloperMode
	case "user":
		cfg.mode = warr.UserMode
	default:
		return fmt.Errorf("unknown -mode %q (want developer or user)", mode)
	}
	cfg.opts = warr.ReplayOptions{
		DisableRelaxation:         noRelax,
		DisableCoordinateFallback: noCoord,
	}
	switch pace {
	case "recorded":
		cfg.opts.Pacing = warr.PaceRecorded
	case "none":
		cfg.opts.Pacing = warr.PaceNone
	default:
		return fmt.Errorf("unknown -pace %q (want recorded or none)", pace)
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if parallel > 1 {
		return runParallel(ctx, tr, cfg)
	}
	return runStreaming(ctx, tr, cfg)
}

// stepRecord is the JSON-lines shape of one replayed step.
type stepRecord struct {
	Type      string `json:"type"`
	Index     int    `json:"index"`
	Action    string `json:"action"`
	XPath     string `json:"xpath"`
	Status    string `json:"status"`
	UsedXPath string `json:"usedXPath,omitempty"`
	Heuristic string `json:"heuristic,omitempty"`
	Error     string `json:"error,omitempty"`
}

// summaryRecord is the JSON shape of a finished replay.
type summaryRecord struct {
	Type          string   `json:"type"`
	Replica       int      `json:"replica"`
	Commands      int      `json:"commands"`
	Played        int      `json:"played"`
	Failed        int      `json:"failed"`
	Halted        bool     `json:"halted"`
	Cancelled     bool     `json:"cancelled"`
	Complete      bool     `json:"complete"`
	FinalURL      string   `json:"finalURL,omitempty"`
	Title         string   `json:"title,omitempty"`
	ConsoleErrors []string `json:"consoleErrors,omitempty"`
}

func record(step warr.ReplayStep) stepRecord {
	r := stepRecord{
		Type:      "step",
		Index:     step.Index,
		Action:    step.Cmd.Action.String(),
		XPath:     step.Cmd.XPath,
		Status:    step.Status.String(),
		UsedXPath: step.UsedXPath,
		Heuristic: step.Heuristic,
	}
	if step.Err != nil {
		r.Error = step.Err.Error()
	}
	return r
}

func summarize(replica, commands int, res *warr.ReplayResult, tab *warr.Tab) summaryRecord {
	s := summaryRecord{
		Type:      "summary",
		Replica:   replica,
		Commands:  commands,
		Played:    res.Played,
		Failed:    res.Failed,
		Halted:    res.Halted,
		Cancelled: res.Cancelled,
		Complete:  res.Complete(),
	}
	if tab != nil {
		s.FinalURL = tab.URL()
		s.Title = tab.Title()
		for _, e := range tab.ConsoleErrors() {
			s.ConsoleErrors = append(s.ConsoleErrors, e.Message)
		}
	}
	return s
}

// runStreaming replays one session, reporting each step as it happens.
func runStreaming(ctx context.Context, tr warr.Trace, cfg config) error {
	env := warr.NewDemoEnv(cfg.mode)
	session, err := warr.NewReplaySession(ctx, env.Browser, tr, cfg.opts)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	for step := range session.Steps() {
		if cfg.jsonOut {
			if err := enc.Encode(record(step)); err != nil {
				return err
			}
			continue
		}
		switch step.Status {
		case warr.StepOK:
			fmt.Printf("  ok       %s\n", step.Cmd)
		case warr.StepRelaxed:
			fmt.Printf("  relaxed  %s  (%s -> %s)\n", step.Cmd, step.Heuristic, step.UsedXPath)
		case warr.StepByCoordinates:
			fmt.Printf("  coords   %s\n", step.Cmd)
		case warr.StepFailed:
			fmt.Printf("  FAILED   %s  (%v)\n", step.Cmd, step.Err)
		}
	}

	res, tab := session.Result(), session.Tab()
	if cfg.jsonOut {
		if err := enc.Encode(summarize(0, len(tr.Commands), res, tab)); err != nil {
			return err
		}
	} else {
		fmt.Printf("replayed %d/%d commands (%d failed", res.Played, len(tr.Commands), res.Failed)
		if res.Halted {
			fmt.Printf(", replay halted")
		}
		if res.Cancelled {
			fmt.Printf(", cancelled: %v", res.CancelCause)
		}
		fmt.Println(")")
		if errs := tab.ConsoleErrors(); len(errs) > 0 {
			fmt.Println("console errors observed during replay:")
			for _, e := range errs {
				fmt.Printf("  %s\n", e.Message)
			}
		}
		fmt.Printf("final page: %s (%s)\n", tab.URL(), tab.Title())
	}
	if !res.Complete() {
		os.Exit(2)
	}
	return nil
}

// runParallel replays N replicas of the trace concurrently, each in its
// own isolated environment, through the campaign executor — a quick
// determinism and robustness check for a recorded trace.
func runParallel(ctx context.Context, tr warr.Trace, cfg config) error {
	jobs := make([]warr.CampaignJob, cfg.parallel)
	for i := range jobs {
		jobs[i] = warr.CampaignJob{Trace: tr}
	}
	exec := warr.NewCampaignExecutor(
		warr.NewEnvFactory(cfg.mode),
		warr.ExecutorOptions{
			Parallelism: cfg.parallel,
			Replayer:    cfg.opts,
			// Replicas are identical; a failure must not prune the rest.
			DisablePruning: true,
		},
	)
	outcomes := exec.Execute(ctx, jobs)

	enc := json.NewEncoder(os.Stdout)
	allComplete := true
	divergent := false
	var baseline *warr.ReplayResult
	for i, out := range outcomes {
		if out.Skipped {
			allComplete = false
			if cfg.jsonOut {
				skip := struct {
					Type    string `json:"type"`
					Replica int    `json:"replica"`
				}{"skipped", i}
				if err := enc.Encode(skip); err != nil {
					return err
				}
			} else {
				fmt.Printf("replica %d: skipped (cancelled)\n", i)
			}
			continue
		}
		if !out.Result.Complete() {
			allComplete = false
		}
		// A timeout-cancelled partial stopped at an arbitrary command
		// index; comparing it would report divergence that is an
		// artifact of the deadline, not of the trace.
		if !out.Result.Cancelled {
			if baseline == nil {
				baseline = out.Result
			} else if out.Result.Played != baseline.Played || out.Result.Failed != baseline.Failed {
				divergent = true
			}
		}
		if cfg.jsonOut {
			s := summarize(i, len(tr.Commands), out.Result, nil)
			if err := enc.Encode(s); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("replica %d: replayed %d/%d commands (%d failed", i, out.Result.Played, len(tr.Commands), out.Result.Failed)
		if out.Result.Halted {
			fmt.Printf(", halted")
		}
		if out.Result.Cancelled {
			fmt.Printf(", cancelled")
		}
		fmt.Println(")")
	}
	if !cfg.jsonOut {
		if divergent {
			fmt.Println("WARNING: replicas diverged — the trace does not replay deterministically")
		} else {
			fmt.Printf("%d replicas, identical outcomes\n", len(outcomes))
		}
	}
	if !allComplete || divergent {
		os.Exit(2)
	}
	return nil
}
