// Command warr-replay replays a recorded WaRR Command trace against a
// fresh instance of the simulated world (Fig. 1, step 3) and reports how
// each command resolved: direct XPath match, relaxation heuristic,
// coordinate fallback, or failure.
//
// Usage:
//
//	warr-replay -trace edit.warr
//	warr-replay -trace edit.warr -pace none          # impatient-user stress (§V-B)
//	warr-replay -trace edit.warr -mode user          # degraded user-mode browser
//	warr-replay -trace edit.warr -no-relaxation      # ablation (§IV-C)
package main

import (
	"flag"
	"fmt"
	"os"

	warr "github.com/dslab-epfl/warr"
)

func main() {
	trace := flag.String("trace", "", "trace file recorded by warr-record (required)")
	mode := flag.String("mode", "developer", "browser build: developer or user")
	pace := flag.String("pace", "recorded", "command pacing: recorded or none")
	noRelax := flag.Bool("no-relaxation", false, "disable progressive XPath relaxation")
	noCoord := flag.Bool("no-coordinates", false, "disable the click-coordinate fallback")
	flag.Parse()

	if err := run(*trace, *mode, *pace, *noRelax, *noCoord); err != nil {
		fmt.Fprintln(os.Stderr, "warr-replay:", err)
		os.Exit(1)
	}
}

func run(path, mode, pace string, noRelax, noCoord bool) error {
	if path == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := warr.ReadTrace(f)
	if err != nil {
		return err
	}

	browserMode := warr.DeveloperMode
	switch mode {
	case "developer":
	case "user":
		browserMode = warr.UserMode
	default:
		return fmt.Errorf("unknown -mode %q (want developer or user)", mode)
	}
	opts := warr.ReplayOptions{
		DisableRelaxation:         noRelax,
		DisableCoordinateFallback: noCoord,
	}
	switch pace {
	case "recorded":
		opts.Pacing = warr.PaceRecorded
	case "none":
		opts.Pacing = warr.PaceNone
	default:
		return fmt.Errorf("unknown -pace %q (want recorded or none)", pace)
	}

	env := warr.NewDemoEnv(browserMode)
	res, tab, err := warr.NewReplayer(env.Browser, opts).Replay(tr)
	if err != nil {
		return err
	}

	for _, s := range res.Steps {
		switch s.Status {
		case warr.StepOK:
			fmt.Printf("  ok       %s\n", s.Cmd)
		case warr.StepRelaxed:
			fmt.Printf("  relaxed  %s  (%s -> %s)\n", s.Cmd, s.Heuristic, s.UsedXPath)
		case warr.StepByCoordinates:
			fmt.Printf("  coords   %s\n", s.Cmd)
		case warr.StepFailed:
			fmt.Printf("  FAILED   %s  (%v)\n", s.Cmd, s.Err)
		}
	}
	fmt.Printf("replayed %d/%d commands (%d failed", res.Played, len(tr.Commands), res.Failed)
	if res.Halted {
		fmt.Printf(", replay halted")
	}
	fmt.Println(")")

	if errs := tab.ConsoleErrors(); len(errs) > 0 {
		fmt.Println("console errors observed during replay:")
		for _, e := range errs {
			fmt.Printf("  %s\n", e.Message)
		}
	}
	fmt.Printf("final page: %s (%s)\n", tab.URL(), tab.Title())
	if !res.Complete() {
		os.Exit(2)
	}
	return nil
}
