// Command warr-replay replays a recorded WaRR Command trace against a
// fresh instance of the simulated world (Fig. 1, step 3) and reports how
// each command resolved: direct XPath match, relaxation heuristic,
// coordinate fallback, or failure. Steps stream as they replay.
//
// The tool is a thin client of the shared job engine (warr.NewJobEngine):
// it submits one replay job to an in-process engine and prints the job's
// event stream — the same events warr-serve publishes over SSE, encoded
// by the same encoder, so -json output here and a served job's stream
// are byte-for-byte the same format.
//
// The -trace file may be either a versioned trace archive (the
// warr-record default) or a legacy bare text dump; the format is
// auto-detected.
//
// The environment a trace replays in hosts every registered
// application — the demo apps plus any plugin linked into this build
// (e.g. the calendar app); -list shows them.
//
// Usage:
//
//	warr-replay -list
//	warr-replay -trace edit.warr
//	warr-replay -trace edit.warr -json               # machine-readable per-step output
//	warr-replay -trace edit.warr -parallel 8         # 8 concurrent replicas in isolated envs
//	warr-replay -trace edit.warr -timeout 50ms       # cancel mid-replay, keep the partial result
//	warr-replay -trace edit.warr -pace none          # impatient-user stress (§V-B)
//	warr-replay -trace edit.warr -mode user          # degraded user-mode browser
//	warr-replay -trace edit.warr -no-relaxation      # ablation (§IV-C)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	warr "github.com/dslab-epfl/warr"
	// Linking the calendar plugin registers its app, so calendar traces
	// replay against a world that hosts it.
	_ "github.com/dslab-epfl/warr/apps/calendar"
	"github.com/dslab-epfl/warr/internal/cliutil"
)

func main() {
	trace := flag.String("trace", "", "trace file recorded by warr-record (required)")
	mode := flag.String("mode", "developer", "browser build: developer or user")
	pace := flag.String("pace", "recorded", "command pacing: recorded or none")
	noRelax := flag.Bool("no-relaxation", false, "disable progressive XPath relaxation")
	noCoord := flag.Bool("no-coordinates", false, "disable the click-coordinate fallback")
	parallel := flag.Int("parallel", 1, "replay N concurrent replicas of the trace, each in an isolated environment")
	jsonOut := flag.Bool("json", false, "machine-readable JSON-lines output: one object per step, plus a summary; with -parallel > 1, one summary or skipped object per replica (no step objects)")
	timeout := flag.Duration("timeout", 0, "cancel the replay after this long (0 = no limit); the partial result is reported")
	list := flag.Bool("list", false, "list the applications and scenarios this build hosts, then exit")
	flag.Parse()

	if *list {
		cliutil.PrintApps(os.Stdout, "registered applications (hosted in every replay environment):")
		cliutil.PrintScenarios(os.Stdout, "\nregistered scenarios (recordable with warr-record):", false)
		return
	}
	if err := run(*trace, *mode, *pace, *noRelax, *noCoord, *parallel, *jsonOut, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "warr-replay:", err)
		os.Exit(1)
	}
}

func run(path, mode, pace string, noRelax, noCoord bool, parallel int, jsonOut bool, timeout time.Duration) error {
	if path == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Accept both on-disk formats: the versioned archive warr-record
	// writes by default, and the legacy bare text dump.
	header, tr, err := warr.ReadTraceAuto(f)
	if err != nil {
		return err
	}
	if header.Version != 0 && !jsonOut {
		fmt.Printf("archive v%d", header.Version)
		if header.Scenario != "" {
			fmt.Printf(": %q", header.Scenario)
		}
		if header.App != "" {
			fmt.Printf(" against %s", header.App)
		}
		if header.Recorder != "" {
			fmt.Printf(" (recorded by %s)", header.Recorder)
		}
		fmt.Println()
	}

	spec := warr.JobSpec{
		Kind:      warr.JobReplay,
		Trace:     tr,
		TraceName: header.Scenario,
	}
	switch mode {
	case "developer":
		spec.Mode = warr.DeveloperMode
	case "user":
		spec.Mode = warr.UserMode
	default:
		return fmt.Errorf("unknown -mode %q (want developer or user)", mode)
	}
	spec.Replayer = warr.ReplayOptions{
		DisableRelaxation:         noRelax,
		DisableCoordinateFallback: noCoord,
	}
	switch pace {
	case "recorded":
		spec.Replayer.Pacing = warr.PaceRecorded
	case "none":
		spec.Replayer.Pacing = warr.PaceNone
	default:
		return fmt.Errorf("unknown -pace %q (want recorded or none)", pace)
	}
	if parallel > 1 {
		spec.Replicas = parallel
	}

	// One worker, one queue slot: the CLI is a single-job client of the
	// same engine warr-serve runs.
	engine := warr.NewJobEngine(warr.JobEngineOptions{Workers: 1, QueueDepth: 1})
	defer engine.Close()
	job, err := engine.Submit(spec)
	if err != nil {
		return err
	}
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() {
			_ = engine.Cancel(job.ID, context.DeadlineExceeded)
		})
		defer t.Stop()
	}

	if err := printStream(job, tr, jsonOut); err != nil {
		return err
	}
	if err := job.Err(); err != nil {
		return err
	}
	if parallel > 1 {
		return finishParallel(job, tr, jsonOut)
	}
	return finishStreaming(job, tr, jsonOut)
}

// printStream follows the job's event bus to completion: in JSON mode
// it encodes the step/summary/skipped events exactly as published; in
// human mode it renders each step as it replays.
func printStream(job *warr.Job, tr warr.Trace, jsonOut bool) error {
	enc := warr.NewEventEncoder(os.Stdout)
	events, stop := job.Events().Subscribe(0)
	defer stop()
	for ev := range events {
		if jsonOut {
			switch ev.(type) {
			case warr.StepEvent, warr.SummaryEvent, warr.SkippedEvent:
				if err := enc.Encode(ev); err != nil {
					return err
				}
			}
			continue
		}
		step, ok := ev.(warr.StepEvent)
		if !ok || job.Spec.Replicas > 1 {
			continue
		}
		cmd := tr.Commands[step.Index]
		switch step.Status {
		case "ok":
			fmt.Printf("  ok       %s\n", cmd)
		case "relaxed":
			fmt.Printf("  relaxed  %s  (%s -> %s)\n", cmd, step.Heuristic, step.UsedXPath)
		case "by-coordinates":
			fmt.Printf("  coords   %s\n", cmd)
		case "failed":
			fmt.Printf("  FAILED   %s  (%s)\n", cmd, step.Error)
		}
	}
	return nil
}

// finishStreaming prints the single-session summary and sets the exit
// code.
func finishStreaming(job *warr.Job, tr warr.Trace, jsonOut bool) error {
	res, tab := job.Result(), job.Tab()
	if !jsonOut {
		fmt.Printf("replayed %d/%d commands (%d failed", res.Played, len(tr.Commands), res.Failed)
		if res.Halted {
			fmt.Printf(", replay halted")
		}
		if res.Cancelled {
			fmt.Printf(", cancelled: %v", res.CancelCause)
		}
		fmt.Println(")")
		if tab != nil {
			if errs := tab.ConsoleErrors(); len(errs) > 0 {
				fmt.Println("console errors observed during replay:")
				for _, e := range errs {
					fmt.Printf("  %s\n", e.Message)
				}
			}
			fmt.Printf("final page: %s (%s)\n", tab.URL(), tab.Title())
		}
	}
	if !res.Complete() {
		os.Exit(2)
	}
	return nil
}

// finishParallel prints the per-replica outcomes and the divergence
// verdict, and sets the exit code — a quick determinism and robustness
// check for a recorded trace.
func finishParallel(job *warr.Job, tr warr.Trace, jsonOut bool) error {
	outcomes := job.Outcomes()
	allComplete := true
	divergent := false
	var baseline *warr.ReplayResult
	for i, out := range outcomes {
		if out.Skipped {
			allComplete = false
			if !jsonOut {
				fmt.Printf("replica %d: skipped (cancelled)\n", i)
			}
			continue
		}
		if !out.Result.Complete() {
			allComplete = false
		}
		// A timeout-cancelled partial stopped at an arbitrary command
		// index; comparing it would report divergence that is an
		// artifact of the deadline, not of the trace.
		if !out.Result.Cancelled {
			if baseline == nil {
				baseline = out.Result
			} else if out.Result.Played != baseline.Played || out.Result.Failed != baseline.Failed {
				divergent = true
			}
		}
		if jsonOut {
			continue // the summary events already streamed
		}
		fmt.Printf("replica %d: replayed %d/%d commands (%d failed", i, out.Result.Played, len(tr.Commands), out.Result.Failed)
		if out.Result.Halted {
			fmt.Printf(", halted")
		}
		if out.Result.Cancelled {
			fmt.Printf(", cancelled")
		}
		fmt.Println(")")
	}
	if !jsonOut {
		if divergent {
			fmt.Println("WARNING: replicas diverged — the trace does not replay deterministically")
		} else {
			fmt.Printf("%d replicas, identical outcomes\n", len(outcomes))
		}
	}
	if !allComplete || divergent {
		os.Exit(2)
	}
	return nil
}
