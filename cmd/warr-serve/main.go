// warr-serve is replay as a service: the long-running daemon face of
// the shared job engine. It accepts trace uploads and job submissions
// over HTTP/JSON, streams step-by-step replay events over SSE, supports
// cancel and resume, ingests AUsER user experience reports (replay →
// minimize → classify), and exposes Prometheus-style metrics. SIGINT or
// SIGTERM triggers a graceful drain: queued and running jobs finish, or
// — past the drain timeout — are checkpointed resumable, never dropped.
//
// Usage:
//
//	warr-serve                                   # listen on :8731
//	warr-serve -addr :9000 -workers 4 -queue 128
//	warr-serve -bench BENCH_BASELINE.json        # export pinned bench counters
//	warr-serve -devkey developer_key.pem         # accept sealed AUsER reports
//	warr-serve -journal jobs.journal             # crash-safe: journaled jobs resume on reboot
//	warr-serve -faults drop:lease/2;crash:w1@shard3  # chaos-test the distrib protocol
//
// The API:
//
//	GET  /healthz                 ok | draining
//	GET  /metrics                 Prometheus text format
//	POST /api/traces?name=N       upload a trace archive
//	GET  /api/traces              list uploaded traces
//	POST /api/jobs                submit {"kind": ..., "trace": N, ...}
//	GET  /api/jobs                list jobs
//	GET  /api/jobs/{id}           job status
//	GET  /api/jobs/{id}/events    SSE stream of the job's JSON events
//	POST /api/jobs/{id}/cancel    stop at the next command boundary
//	POST /api/jobs/{id}/resume    continue a cancelled job as a new job
//	POST /api/reports             ingest an AUsER report (plain or sealed)
//	POST /api/distrib/lease       warr-worker shard lease poll
//	GET  /api/distrib/image/{d}   branch-point world image by digest
//	POST /api/distrib/complete    worker shard completion
//	POST /api/distrib/heartbeat   worker liveness
//
// The /api/distrib endpoints are the distributed-campaign coordinator:
// point warr-worker processes at this server and campaign jobs are
// sharded across them, falling back to in-process execution whenever no
// worker is connected.
package main

import (
	"context"
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/dslab-epfl/warr/internal/distrib"
	"github.com/dslab-epfl/warr/internal/faults"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8731", "listen address")
	workers := flag.Int("workers", 2, "job worker pool size")
	queue := flag.Int("queue", 64, "bounded job queue depth (full queue = HTTP 503)")
	bench := flag.String("bench", "", "BENCH_BASELINE.json to export on /metrics (optional)")
	devkey := flag.String("devkey", "", "PEM RSA private key for sealed AUsER reports (optional)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM; jobs still running after it are checkpointed resumable")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "distributed-campaign lease TTL; a warr-worker silent this long forfeits its shards")
	journal := flag.String("journal", "", "write-ahead job journal file; submissions are journaled before they run and a killed server resumes them on the next boot (optional)")
	faultSched := flag.String("faults", "", "fault schedule injected into the coordinator's distrib endpoints, e.g. drop:lease/2;delay:image/50ms;crash:w1@shard3 (testing)")
	flag.Parse()

	if err := run(*addr, *workers, *queue, *bench, *devkey, *journal, *faultSched, *drainTimeout, *leaseTTL); err != nil {
		fmt.Fprintln(os.Stderr, "warr-serve:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue int, bench, devkey, journal, faultSched string, drainTimeout, leaseTTL time.Duration) error {
	popts := distrib.PoolOptions{LeaseTTL: leaseTTL, Logf: log.Printf}
	if faultSched != "" {
		sched, err := faults.Parse(faultSched)
		if err != nil {
			return fmt.Errorf("parsing -faults: %w", err)
		}
		popts.Faults = faults.NewInjector(sched, log.Printf)
		log.Printf("warr-serve injecting faults: %s", sched)
	}
	pool := distrib.NewPool(popts)
	eopts := jobs.Options{Workers: workers, QueueDepth: queue, Distributor: pool}
	var recovered []jobs.RecoveredJob
	if journal != "" {
		j, rec, err := jobs.OpenJournal(journal, log.Printf)
		if err != nil {
			return err
		}
		defer j.Close()
		eopts.Journal = j
		recovered = rec
	}
	engine := jobs.New(eopts)
	if n := len(engine.Revive(recovered)); n > 0 {
		log.Printf("warr-serve revived %d journaled job(s)", n)
	}
	if bench != "" {
		baseline, err := jobs.LoadBenchBaseline(bench)
		if err != nil {
			return fmt.Errorf("loading bench baseline: %w", err)
		}
		engine.SetBenchBaseline(baseline)
	}
	var key *rsa.PrivateKey
	if devkey != "" {
		k, err := loadPrivateKey(devkey)
		if err != nil {
			return fmt.Errorf("loading developer key: %w", err)
		}
		key = k
	}
	srv := serve.New(serve.Options{Engine: engine, DeveloperKey: key, Distrib: pool})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("warr-serve listening on %s (%d workers, queue depth %d)", ln.Addr(), workers, queue)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("warr-serve draining (budget %s): finishing in-flight jobs", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := engine.Drain(drainCtx); err != nil {
		log.Printf("warr-serve drain budget exhausted: unfinished jobs checkpointed resumable")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("warr-serve stopped")
	return nil
}

// loadPrivateKey reads an RSA private key from a PEM file (PKCS#1 or
// PKCS#8).
func loadPrivateKey(path string) (*rsa.PrivateKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(data)
	if block == nil {
		return nil, fmt.Errorf("%s: no PEM block", path)
	}
	if k, err := x509.ParsePKCS1PrivateKey(block.Bytes); err == nil {
		return k, nil
	}
	k, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rk, ok := k.(*rsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("%s: not an RSA key", path)
	}
	return rk, nil
}
