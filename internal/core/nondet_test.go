package core

import (
	"strings"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// sitesLikePage loads functionality asynchronously, like the Google
// Sites editor: a click schedules an AJAX fetch whose completion flips
// a flag via a timer-driven callback.
const sitesLikePage = `<html><body>
<button id="go">Load</button><div id="status">idle</div>
<script>
document.getElementById("go").addEventListener("click", function(e) {
	httpGet("/module", function(body, st) {
		document.getElementById("status").textContent = "ready";
	});
});
</script>
</body></html>`

func newNondetEnv(t *testing.T) (*env, *NondetLog, *netsim.Network) {
	t.Helper()
	clock := vclock.New()
	network := netsim.New(clock)
	network.SetLatency(50 * time.Millisecond)
	network.Register("app.test", netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		switch req.Path() {
		case "/":
			return netsim.OK(sitesLikePage)
		case "/module":
			return netsim.OK("module-code")
		default:
			return netsim.NotFound()
		}
	}))
	log := NewNondetLog(clock)
	network.AddObserver(log)

	b := browser.New(clock, network, browser.UserMode)
	tab := b.NewTab()
	if err := tab.Navigate("http://app.test/"); err != nil {
		t.Fatal(err)
	}
	rec := New(clock)
	rec.Attach(tab)
	return &env{clock: clock, tab: tab, rec: rec}, log, network
}

func TestNondetLogCapturesTimerAndNetwork(t *testing.T) {
	e, log, _ := newNondetEnv(t)
	e.clickOn(t, "go")
	e.tab.AdvanceTime(100 * time.Millisecond) // AJAX latency elapses

	var timers, fetches int
	for _, ev := range log.Events() {
		switch ev.Kind {
		case TimerFired:
			timers++
		case NetworkExchange:
			fetches++
		}
	}
	if timers == 0 {
		t.Error("no timer firings logged (the AJAX delivery is timer-driven)")
	}
	if fetches < 2 {
		t.Errorf("logged %d network exchanges, want page load + module fetch", fetches)
	}
	if got := e.tab.MainFrame().Doc().GetElementByID("status").TextContent(); got != "ready" {
		t.Fatalf("module did not load: %q", got)
	}
}

func TestNondetAnnotateInterleavesAndStaysParseable(t *testing.T) {
	e, log, _ := newNondetEnv(t)
	start := e.clock.Now()
	e.clickOn(t, "go")
	e.tab.AdvanceTime(100 * time.Millisecond)
	e.clickOn(t, "go") // second click, after the module load

	annotated := log.Annotate(e.rec.Trace(), start)
	if !strings.Contains(annotated, "# nondet") {
		t.Fatalf("no annotations:\n%s", annotated)
	}
	// The module fetch must appear between the two clicks.
	first := strings.Index(annotated, "click")
	fetch := strings.Index(annotated, "/module")
	last := strings.LastIndex(annotated, "click")
	if !(first < fetch && fetch < last) {
		t.Errorf("module fetch not interleaved between clicks:\n%s", annotated)
	}
	// Annotations are comments: the text still parses to the same trace.
	parsed, err := command.Parse(annotated)
	if err != nil {
		t.Fatalf("annotated trace does not parse: %v", err)
	}
	if len(parsed.Commands) != len(e.rec.Trace().Commands) {
		t.Errorf("parsed %d commands, want %d", len(parsed.Commands), len(e.rec.Trace().Commands))
	}
}

func TestNondetLogReset(t *testing.T) {
	e, log, _ := newNondetEnv(t)
	e.clickOn(t, "go")
	e.tab.AdvanceTime(100 * time.Millisecond)
	if len(log.Events()) == 0 {
		t.Fatal("no events before reset")
	}
	log.Reset()
	if len(log.Events()) != 0 {
		t.Error("events survived reset")
	}
}
