// Package core implements the WaRR Recorder — the paper's primary
// contribution (§III-A, §IV-A). The recorder is embedded at the browser
// engine layer: it implements browser.RecorderHook, whose methods are
// called from the engine EventHandler's HandleMousePressEvent, HandleDrag,
// and KeyEvent — the same three WebCore::EventHandler methods the paper
// instruments ("The changes amount to less than 200 lines of C++ code").
//
// Design goals reproduced here (§III-A): high fidelity (every user action
// is recorded), lightweight (logging is a few map-free appends; the
// overhead benchmark in bench_test.go regenerates the §VI measurement),
// always-on (a bounded ring journal lets it run indefinitely), and no
// user setup (installing the hook is the browser's job, not the page's).
package core

import (
	"sync"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/vclock"
	"github.com/dslab-epfl/warr/internal/xpath"
)

// DefaultMaxCommands bounds the always-on journal; when full, the oldest
// commands are dropped (a user reporting a bug cares about the recent
// tail of the interaction).
const DefaultMaxCommands = 100_000

// Option configures a Recorder.
type Option func(*Recorder)

// WithMaxCommands overrides the journal bound.
func WithMaxCommands(n int) Option {
	return func(r *Recorder) {
		if n > 0 {
			r.maxCommands = n
		}
	}
}

// Stats reports the recorder's own cost, for the §VI overhead experiment:
// "The average required time is on the order of hundreds of microseconds
// and does not hinder user experience."
type Stats struct {
	// Actions is the number of user actions recorded.
	Actions int
	// Dropped counts commands evicted from the full journal.
	Dropped int
	// LoggingTime is the cumulative wall-clock time spent inside the
	// recorder's hook methods.
	LoggingTime time.Duration
}

// PerAction returns the average wall-clock logging cost per action.
func (s Stats) PerAction() time.Duration {
	if s.Actions == 0 {
		return 0
	}
	return s.LoggingTime / time.Duration(s.Actions)
}

// Recorder captures user actions as WaRR Commands. It is safe for
// concurrent use; in the simulated browser all hooks fire from the
// engine's dispatch goroutine.
type Recorder struct {
	clock       *vclock.Clock
	maxCommands int

	mu sync.Mutex
	// commands is a ring buffer: when full, head marks the oldest entry
	// and appends overwrite in place. A plain slice-shift eviction would
	// cost O(journal) per action at the always-on steady state — far too
	// much for a recorder whose point is staying attached forever.
	commands   []command.Command
	head       int
	full       bool
	startURL   string
	dropped    int
	last       time.Time
	hasLast    bool
	shiftArmed bool // saw a bare Shift keydown; awaiting the printable key
	attached   *browser.Tab
	logTime    time.Duration
	actions    int
}

var _ browser.RecorderHook = (*Recorder)(nil)

// New returns a recorder driven by the given virtual clock (used for the
// elapsed-time fields of commands).
func New(clock *vclock.Clock, opts ...Option) *Recorder {
	r := &Recorder{clock: clock, maxCommands: DefaultMaxCommands}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Attach installs the recorder into a tab's engine EventHandler and marks
// the current page as the trace's starting URL. The recorder stays
// attached — always-on — until Detach.
func (r *Recorder) Attach(tab *browser.Tab) {
	r.mu.Lock()
	r.attached = tab
	r.startURL = tab.URL()
	r.last = r.clock.Now()
	r.hasLast = true
	r.mu.Unlock()
	tab.EventHandler().SetRecorder(r)
}

// Detach removes the recorder from its tab.
func (r *Recorder) Detach() {
	r.mu.Lock()
	tab := r.attached
	r.attached = nil
	r.mu.Unlock()
	if tab != nil {
		tab.EventHandler().SetRecorder(nil)
	}
}

// Trace returns a copy of the recorded trace, oldest command first.
func (r *Recorder) Trace() command.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	var cmds []command.Command
	if r.full {
		cmds = make([]command.Command, 0, len(r.commands))
		cmds = append(cmds, r.commands[r.head:]...)
		cmds = append(cmds, r.commands[:r.head]...)
	} else {
		cmds = append(cmds, r.commands...)
	}
	return command.Trace{StartURL: r.startURL, Commands: cmds}
}

// Reset clears the journal and restarts elapsed-time accounting. The
// start URL is re-read from the attached tab, so Reset right before an
// interaction of interest scopes the trace to it.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.commands = nil
	r.head = 0
	r.full = false
	r.dropped = 0
	r.actions = 0
	r.logTime = 0
	r.shiftArmed = false
	r.last = r.clock.Now()
	r.hasLast = true
	if r.attached != nil {
		r.startURL = r.attached.URL()
	}
}

// Stats returns overhead counters.
func (r *Recorder) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{Actions: r.actions, Dropped: r.dropped, LoggingTime: r.logTime}
}

// OnMousePress implements browser.RecorderHook.
func (r *Recorder) OnMousePress(frame *browser.Frame, target *dom.Node, x, y, clickCount int) {
	start := time.Now()
	action := command.Click
	if clickCount >= 2 {
		action = command.DoubleClick
	}
	c := command.Command{
		Action: action,
		XPath:  xpath.GenerateString(target),
		X:      x,
		Y:      y,
	}
	r.mu.Lock()
	r.append(c)
	r.shiftArmed = false
	r.logTime += time.Since(start)
	r.mu.Unlock()
}

// OnKey implements browser.RecorderHook. Shift combining follows §IV-B:
// typing a capital letter registers two keystrokes (Shift, then the
// printable key); logging the Shift press is unnecessary, so only the
// combined effect is logged. Other control keys (Control, Alt, Enter, …)
// do not always produce characters, so they are logged with their codes.
func (r *Recorder) OnKey(frame *browser.Frame, target *dom.Node, key string, code int, mods browser.KeyMods) {
	start := time.Now()
	r.mu.Lock()
	defer func() {
		r.logTime += time.Since(start)
		r.mu.Unlock()
	}()

	if key == browser.KeyShift {
		// Suppress the bare Shift keystroke; the printable key that
		// follows carries the combined effect.
		r.shiftArmed = true
		return
	}
	r.shiftArmed = false
	r.append(command.Command{
		Action: command.Type,
		XPath:  xpath.GenerateString(target),
		Key:    key,
		Code:   code,
	})
}

// OnDrag implements browser.RecorderHook.
func (r *Recorder) OnDrag(frame *browser.Frame, target *dom.Node, dx, dy int) {
	start := time.Now()
	c := command.Command{
		Action: command.Drag,
		XPath:  xpath.GenerateString(target),
		DX:     dx,
		DY:     dy,
	}
	r.mu.Lock()
	r.append(c)
	r.shiftArmed = false
	r.logTime += time.Since(start)
	r.mu.Unlock()
}

// append stamps the elapsed field and stores the command, evicting the
// oldest entry when the journal is full. Callers hold r.mu.
func (r *Recorder) append(c command.Command) {
	now := r.clock.Now()
	if r.hasLast {
		c.Elapsed = int((now.Sub(r.last) + command.Tick/2) / command.Tick)
	}
	r.last = now
	r.hasLast = true
	r.actions++
	if r.full || len(r.commands) >= r.maxCommands {
		// Always-on steady state: overwrite the oldest entry in place —
		// O(1) per action regardless of the journal bound.
		r.full = true
		r.commands[r.head] = c
		r.head++
		if r.head == len(r.commands) {
			r.head = 0
		}
		r.dropped++
		return
	}
	r.commands = append(r.commands, c)
}
