package core

import (
	"strings"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// env is a browser wired to a one-host page set with a recorder attached.
type env struct {
	clock *vclock.Clock
	tab   *browser.Tab
	rec   *Recorder
}

func newEnv(t *testing.T, pages map[string]string) *env {
	t.Helper()
	clock := vclock.New()
	network := netsim.New(clock)
	network.Register("app.test", netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		if body, ok := pages[req.Path()]; ok {
			return netsim.OK(body)
		}
		return netsim.NotFound()
	}))
	b := browser.New(clock, network, browser.UserMode)
	tab := b.NewTab()
	if err := tab.Navigate("http://app.test/"); err != nil {
		t.Fatal(err)
	}
	rec := New(clock)
	rec.Attach(tab)
	return &env{clock: clock, tab: tab, rec: rec}
}

func (e *env) clickOn(t *testing.T, id string) {
	t.Helper()
	n := e.tab.MainFrame().Doc().GetElementByID(id)
	if n == nil {
		t.Fatalf("no element #%s", id)
	}
	x, y := e.tab.Layout().Center(n)
	e.tab.Click(x, y)
}

func TestRecordsClickWithXPathAndCoords(t *testing.T) {
	e := newEnv(t, map[string]string{"/": `<div><span id="start">go</span></div>`})
	e.clickOn(t, "start")
	tr := e.rec.Trace()
	if len(tr.Commands) != 1 {
		t.Fatalf("commands = %d", len(tr.Commands))
	}
	c := tr.Commands[0]
	if c.Action != command.Click {
		t.Errorf("action = %v", c.Action)
	}
	if c.XPath != `//div/span[@id="start"]` {
		t.Errorf("xpath = %q", c.XPath)
	}
	if c.X == 0 && c.Y == 0 {
		t.Error("click coordinates missing")
	}
	if tr.StartURL != "http://app.test/" {
		t.Errorf("start url = %q", tr.StartURL)
	}
}

func TestRecordsTypedText(t *testing.T) {
	e := newEnv(t, map[string]string{"/": `<table><tr><td><div id="content" contenteditable="true"></div></td></tr></table>`})
	e.clickOn(t, "content")
	e.tab.TypeText("He")
	tr := e.rec.Trace()
	if len(tr.Commands) != 3 { // click + 2 keystrokes
		t.Fatalf("commands = %d: %s", len(tr.Commands), tr.CommandsText())
	}
	k1, k2 := tr.Commands[1], tr.Commands[2]
	if k1.Action != command.Type || k1.Key != "H" || k1.Code != 72 {
		t.Errorf("first keystroke = %+v", k1)
	}
	if k2.Key != "e" || k2.Code != 69 {
		t.Errorf("second keystroke = %+v", k2)
	}
	if k1.XPath != `//td/div[@id="content"]` {
		t.Errorf("keystroke xpath = %q", k1.XPath)
	}
}

func TestShiftCombining(t *testing.T) {
	// Typing "H" sends Shift then H; the trace must contain only the
	// combined keystroke (paper §IV-B).
	e := newEnv(t, map[string]string{"/": `<div id="ed" contenteditable="true"></div>`})
	e.clickOn(t, "ed")
	e.tab.TypeText("H!")
	tr := e.rec.Trace()
	var keys []string
	for _, c := range tr.Commands {
		if c.Action == command.Type {
			keys = append(keys, c.Key)
		}
	}
	if strings.Join(keys, "") != "H!" {
		t.Fatalf("typed keys = %v (Shift must be suppressed)", keys)
	}
	// The '!' carries the '1' key's code, as in Fig. 4.
	last := tr.Commands[len(tr.Commands)-1]
	if last.Code != 49 {
		t.Errorf("'!' code = %d, want 49", last.Code)
	}
}

func TestControlKeyIsLogged(t *testing.T) {
	e := newEnv(t, map[string]string{"/": `<input id="q" type="text">`})
	e.clickOn(t, "q")
	e.tab.PressKey(browser.KeyControl, browser.CodeControl, browser.KeyMods{})
	tr := e.rec.Trace()
	last := tr.Commands[len(tr.Commands)-1]
	if last.Action != command.Type || last.Key != "Control" || last.Code != 17 {
		t.Fatalf("control key not logged: %+v", last)
	}
}

func TestRecordsDoubleClick(t *testing.T) {
	e := newEnv(t, map[string]string{"/": `<td><div id="cell">v</div></td>`})
	n := e.tab.MainFrame().Doc().GetElementByID("cell")
	x, y := e.tab.Layout().Center(n)
	e.tab.DoubleClick(x, y)
	tr := e.rec.Trace()
	if len(tr.Commands) != 1 || tr.Commands[0].Action != command.DoubleClick {
		t.Fatalf("trace = %s", tr.CommandsText())
	}
}

func TestRecordsDrag(t *testing.T) {
	e := newEnv(t, map[string]string{"/": `<div id="w">widget</div>`})
	n := e.tab.MainFrame().Doc().GetElementByID("w")
	x, y := e.tab.Layout().Center(n)
	e.tab.Drag(x, y, 25, -10)
	tr := e.rec.Trace()
	if len(tr.Commands) != 1 {
		t.Fatalf("commands = %d", len(tr.Commands))
	}
	c := tr.Commands[0]
	if c.Action != command.Drag || c.DX != 25 || c.DY != -10 {
		t.Fatalf("drag = %+v", c)
	}
}

func TestElapsedTicks(t *testing.T) {
	e := newEnv(t, map[string]string{"/": `<div id="a">x</div>`})
	e.clock.Advance(300 * time.Millisecond)
	e.clickOn(t, "a")
	e.clock.Advance(1200 * time.Millisecond)
	e.clickOn(t, "a")
	tr := e.rec.Trace()
	if tr.Commands[0].Elapsed != 3 {
		t.Errorf("first elapsed = %d, want 3", tr.Commands[0].Elapsed)
	}
	if tr.Commands[1].Elapsed != 12 {
		t.Errorf("second elapsed = %d, want 12", tr.Commands[1].Elapsed)
	}
}

func TestResetScopesTrace(t *testing.T) {
	e := newEnv(t, map[string]string{"/": `<div id="a">x</div>`})
	e.clickOn(t, "a")
	e.rec.Reset()
	e.clickOn(t, "a")
	tr := e.rec.Trace()
	if len(tr.Commands) != 1 {
		t.Fatalf("commands after reset = %d", len(tr.Commands))
	}
}

func TestDetachStopsRecording(t *testing.T) {
	e := newEnv(t, map[string]string{"/": `<div id="a">x</div>`})
	e.clickOn(t, "a")
	e.rec.Detach()
	e.clickOn(t, "a")
	if got := len(e.rec.Trace().Commands); got != 1 {
		t.Fatalf("commands = %d, want 1", got)
	}
}

func TestJournalBoundEvictsOldest(t *testing.T) {
	clock := vclock.New()
	network := netsim.New(clock)
	network.Register("app.test", netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		return netsim.OK(`<div id="a">x</div>`)
	}))
	b := browser.New(clock, network, browser.UserMode)
	tab := b.NewTab()
	if err := tab.Navigate("http://app.test/"); err != nil {
		t.Fatal(err)
	}
	rec := New(clock, WithMaxCommands(3))
	rec.Attach(tab)
	n := tab.MainFrame().Doc().GetElementByID("a")
	x, y := tab.Layout().Center(n)
	for i := 0; i < 5; i++ {
		clock.Advance(time.Duration(i+1) * 100 * time.Millisecond)
		tab.Click(x, y)
	}
	tr := rec.Trace()
	if len(tr.Commands) != 3 {
		t.Fatalf("journal = %d, want 3", len(tr.Commands))
	}
	stats := rec.Stats()
	if stats.Dropped != 2 || stats.Actions != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	// The survivors are the newest: elapsed fields 3, 4, 5 ticks.
	if tr.Commands[0].Elapsed != 3 || tr.Commands[2].Elapsed != 5 {
		t.Fatalf("survivors = %s", tr.CommandsText())
	}
}

func TestStatsPerAction(t *testing.T) {
	e := newEnv(t, map[string]string{"/": `<div id="a">x</div>`})
	e.clickOn(t, "a")
	e.clickOn(t, "a")
	s := e.rec.Stats()
	if s.Actions != 2 {
		t.Fatalf("actions = %d", s.Actions)
	}
	if s.PerAction() < 0 {
		t.Fatal("negative per-action time")
	}
	if (Stats{}).PerAction() != 0 {
		t.Fatal("zero-action PerAction should be 0")
	}
}

func TestRecordedTraceReplaysAsText(t *testing.T) {
	// End-to-end smoke: record → serialize → parse.
	e := newEnv(t, map[string]string{"/": `<div id="ed" contenteditable="true"></div>`})
	e.clickOn(t, "ed")
	e.tab.TypeText("hi")
	text := e.rec.Trace().Text()
	parsed, err := command.Parse(text)
	if err != nil {
		t.Fatalf("parse recorded trace: %v\n%s", err, text)
	}
	if len(parsed.Commands) != 3 {
		t.Fatalf("parsed commands = %d", len(parsed.Commands))
	}
}

func TestAlwaysOnAcrossNavigations(t *testing.T) {
	// The recorder keeps recording across page changes — the always-on
	// property: users never have to start it.
	e := newEnv(t, map[string]string{
		"/":       `<a id="go" href="/second">next</a>`,
		"/second": `<div id="b">second page</div>`,
	})
	e.clickOn(t, "go")
	// Now on the second page; the hook must still be installed.
	n := e.tab.MainFrame().Doc().GetElementByID("b")
	x, y := e.tab.Layout().Center(n)
	e.tab.Click(x, y)
	tr := e.rec.Trace()
	if len(tr.Commands) != 2 {
		t.Fatalf("commands across navigation = %d\n%s", len(tr.Commands), tr.CommandsText())
	}
}

func TestPopupClicksNotRecorded(t *testing.T) {
	// §IV-D: "WaRR cannot handle pop-ups because user interaction events
	// that happen on such widgets are not routed through to WebKit."
	e := newEnv(t, map[string]string{
		"/": `<html><body><button id="b" onclick="alert('hi')">Go</button></body></html>`,
	})
	e.clickOn(t, "b") // recorded: reaches the engine
	if _, open := e.tab.PopupText(); !open {
		t.Fatal("alert did not open a popup")
	}
	e.tab.Click(10, 10) // lands on the popup, never reaches the engine

	tr := e.rec.Trace()
	if got := len(tr.Commands); got != 1 {
		t.Fatalf("recorded %d commands, want only the pre-popup click:\n%s",
			got, tr.CommandsText())
	}
	if _, open := e.tab.PopupText(); open {
		t.Error("the click should have dismissed the popup")
	}
}
