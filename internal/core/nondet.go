package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// This file implements the nondeterminism-recording extension the paper
// sketches as an advantage of the engine-embedded design (§III-A: the
// recorder "can easily be extended to record various sources of
// nondeterminism (e.g., timers)").
//
// A NondetLog observes two nondeterminism sources alongside the user's
// actions: timer firings (setTimeout callbacks — the mechanism behind
// the asynchronously loaded Sites editor) and network exchanges (page
// loads and AJAX). Interleaved with a recorded trace, the log tells a
// developer *what the application was doing between user actions* —
// e.g. that the editor-module fetch completed before the keystrokes in
// a passing run, and after the Save click in a failing one.

// NondetKind classifies nondeterminism events.
type NondetKind int

// Nondeterminism sources.
const (
	// TimerFired is a setTimeout-style callback completing.
	TimerFired NondetKind = iota + 1
	// NetworkExchange is a request/response pair crossing the network
	// (navigation, iframe load, or AJAX).
	NetworkExchange
)

func (k NondetKind) String() string {
	switch k {
	case TimerFired:
		return "timer-fired"
	case NetworkExchange:
		return "network"
	default:
		return "unknown"
	}
}

// NondetEvent is one observed nondeterministic occurrence.
type NondetEvent struct {
	Kind NondetKind
	// At is the virtual time of the occurrence.
	At time.Time
	// Detail describes the event (timer deadline, or method+URL).
	Detail string
}

func (e NondetEvent) String() string {
	return fmt.Sprintf("%s %s %s", e.At.Format("15:04:05.000"), e.Kind, e.Detail)
}

// NondetLog records nondeterminism events from a clock and a network.
// It is safe for concurrent use.
type NondetLog struct {
	clock *vclock.Clock

	mu     sync.Mutex
	events []NondetEvent
}

var _ netsim.Observer = (*NondetLog)(nil)

// NewNondetLog attaches a log to the clock's timer firings; attach it
// to a network with network.AddObserver to also capture exchanges.
func NewNondetLog(clock *vclock.Clock) *NondetLog {
	l := &NondetLog{clock: clock}
	clock.AddFireObserver(func(deadline time.Time) {
		l.add(NondetEvent{
			Kind:   TimerFired,
			At:     clock.Now(),
			Detail: "deadline " + deadline.Format("15:04:05.000"),
		})
	})
	return l
}

// Observe implements netsim.Observer. HTTPS exchanges are logged with
// their redacted URL, like any other network observer sees them.
func (l *NondetLog) Observe(rec netsim.TrafficRecord) {
	l.add(NondetEvent{
		Kind:   NetworkExchange,
		At:     rec.Time,
		Detail: fmt.Sprintf("%s %s -> %d", rec.Method, rec.URL, rec.Status),
	})
}

func (l *NondetLog) add(e NondetEvent) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a copy of the log in observation order.
func (l *NondetLog) Events() []NondetEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]NondetEvent(nil), l.events...)
}

// Reset clears the log.
func (l *NondetLog) Reset() {
	l.mu.Lock()
	l.events = nil
	l.mu.Unlock()
}

// Annotate renders a recorded trace with the log's events interleaved
// as comment lines at their observed positions. start is the virtual
// time recording began (the trace's first command is start + its own
// elapsed field). The output remains a valid trace: annotation lines
// are comments, so command.Parse round-trips it.
func (l *NondetLog) Annotate(tr command.Trace, start time.Time) string {
	type line struct {
		at   time.Time
		text string
		// commands sort before events at the same instant: a user
		// action synchronously causes traffic (a Save click issues the
		// save request), so at equal timestamps the command is the
		// cause. Events at strictly earlier instants (the editor-module
		// fetch between click and first keystroke) order by time.
		isCommand bool
		seq       int
	}
	var lines []line

	at := start
	for i, c := range tr.Commands {
		at = at.Add(c.ElapsedDuration())
		lines = append(lines, line{at: at, text: c.String(), isCommand: true, seq: i})
	}
	for i, e := range l.Events() {
		lines = append(lines, line{at: e.At, text: "# nondet " + e.String(), seq: i})
	}
	sort.SliceStable(lines, func(i, j int) bool {
		if !lines[i].at.Equal(lines[j].at) {
			return lines[i].at.Before(lines[j].at)
		}
		if lines[i].isCommand != lines[j].isCommand {
			return lines[i].isCommand
		}
		return lines[i].seq < lines[j].seq
	})

	var b strings.Builder
	b.WriteString("# warr-trace v1\n")
	if tr.StartURL != "" {
		b.WriteString("# start " + tr.StartURL + "\n")
	}
	for _, ln := range lines {
		b.WriteString(ln.text)
		b.WriteByte('\n')
	}
	return b.String()
}
