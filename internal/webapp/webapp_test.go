package webapp

import (
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/netsim"
)

func TestRouting(t *testing.T) {
	s := NewServer("app")
	s.Handle("/", func(req *netsim.Request, sess *Session) *netsim.Response {
		return netsim.OK("home")
	})
	s.Handle("/about", func(req *netsim.Request, sess *Session) *netsim.Response {
		return netsim.OK("about")
	})
	if got := s.Serve(netsim.NewRequest("GET", "http://app.test/")).Body; got != "home" {
		t.Errorf("/ = %q", got)
	}
	if got := s.Serve(netsim.NewRequest("GET", "http://app.test/about")).Body; got != "about" {
		t.Errorf("/about = %q", got)
	}
	if got := s.Serve(netsim.NewRequest("GET", "http://app.test/ghost")).Status; got != 404 {
		t.Errorf("missing route status = %d", got)
	}
}

func TestNilPageFuncResponse(t *testing.T) {
	s := NewServer("app")
	s.Handle("/", func(req *netsim.Request, sess *Session) *netsim.Response { return nil })
	if got := s.Serve(netsim.NewRequest("GET", "http://app.test/")).Status; got != 404 {
		t.Errorf("nil response status = %d", got)
	}
}

func TestSessionCookieIssuedOnce(t *testing.T) {
	s := NewServer("app")
	s.Handle("/", func(req *netsim.Request, sess *Session) *netsim.Response {
		return netsim.OK(sess.ID)
	})

	r1 := s.Serve(netsim.NewRequest("GET", "http://app.test/"))
	cookie := r1.Header["Set-Cookie"]
	if !strings.HasPrefix(cookie, "sid=") {
		t.Fatalf("Set-Cookie = %q", cookie)
	}
	sid := strings.TrimPrefix(cookie, "sid=")

	req2 := netsim.NewRequest("GET", "http://app.test/")
	req2.SetHeader("Cookie", "sid="+sid)
	r2 := s.Serve(req2)
	if r2.Header["Set-Cookie"] != "" {
		t.Error("second request re-issued a cookie")
	}
	if r2.Body != sid {
		t.Errorf("session not resumed: %q vs %q", r2.Body, sid)
	}
}

func TestSessionStateSurvivesRequests(t *testing.T) {
	s := NewServer("app")
	s.Handle("/set", func(req *netsim.Request, sess *Session) *netsim.Response {
		sess.Set("user", req.Form.Get("u"))
		return netsim.OK("ok")
	})
	s.Handle("/get", func(req *netsim.Request, sess *Session) *netsim.Response {
		return netsim.OK("user=" + sess.Get("user"))
	})

	r1 := s.Serve(netsim.NewRequest("GET", "http://app.test/set?u=alice"))
	cookie := r1.Header["Set-Cookie"]
	req2 := netsim.NewRequest("GET", "http://app.test/get")
	req2.SetHeader("Cookie", cookie)
	if got := s.Serve(req2).Body; got != "user=alice" {
		t.Fatalf("session value = %q", got)
	}
}

func TestDistinctClientsGetDistinctSessions(t *testing.T) {
	s := NewServer("app")
	s.Handle("/", func(req *netsim.Request, sess *Session) *netsim.Response {
		return netsim.OK(sess.ID)
	})
	a := s.Serve(netsim.NewRequest("GET", "http://app.test/")).Body
	b := s.Serve(netsim.NewRequest("GET", "http://app.test/")).Body
	if a == b {
		t.Fatal("two cookie-less clients shared a session")
	}
}

func TestPageRendering(t *testing.T) {
	html := Page("My Title", "<div id=\"x\">hi</div>", "var a = 1;")
	for _, want := range []string{"<title>My Title</title>", `<div id="x">hi</div>`, "<script>var a = 1;</script>"} {
		if !strings.Contains(html, want) {
			t.Errorf("page missing %q in %q", want, html)
		}
	}
	noScript := Page("T", "body", "")
	if strings.Contains(noScript, "<script>") {
		t.Error("empty script rendered a script tag")
	}
}

func TestRedirect(t *testing.T) {
	r := Redirect("http://app.test/next")
	if r.Status != 302 || r.Header["Location"] != "http://app.test/next" {
		t.Fatalf("redirect = %+v", r)
	}
}

func TestBadFormIs400(t *testing.T) {
	s := NewServer("app")
	s.Handle("/", func(req *netsim.Request, sess *Session) *netsim.Response {
		return netsim.OK("ok")
	})
	req := netsim.NewRequest("POST", "http://app.test/")
	req.Body = "a=%zz" // invalid escape
	if got := s.Serve(req).Status; got != 400 {
		t.Fatalf("status = %d, want 400", got)
	}
}

func TestCookieParsing(t *testing.T) {
	if got := cookieValue("a=1; sid=xyz; b=2", "sid"); got != "xyz" {
		t.Errorf("cookieValue = %q", got)
	}
	if got := cookieValue("", "sid"); got != "" {
		t.Errorf("empty header = %q", got)
	}
	if got := cookieValue("sidecar=1", "sid"); got != "" {
		t.Errorf("prefix confusion = %q", got)
	}
}
