package webapp

import "sort"

// This file serializes a server's session state for durable world
// images (internal/image). Routes are code, reconstructed by the
// application's constructor; what an image must carry is exactly what
// CopySessionsFrom copies — the issued sessions, their values, and the
// sid counter, so a restored server recognizes imaged cookies and mints
// the same future sids a forked one would.

// SessionImage is one serialized session.
type SessionImage struct {
	ID   string            `json:"id"`
	Vals map[string]string `json:"vals,omitempty"`
}

// SessionsImage is a server's serialized session state.
type SessionsImage struct {
	NextSID  int            `json:"nextSID"`
	Sessions []SessionImage `json:"sessions,omitempty"`
}

// ExportSessions captures the server's sessions, sorted by id for
// deterministic encoding.
func (s *Server) ExportSessions() *SessionsImage {
	s.mu.Lock()
	defer s.mu.Unlock()
	img := &SessionsImage{NextSID: s.nextSID}
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sess := s.sessions[id]
		sess.mu.Lock()
		vals := make(map[string]string, len(sess.vals))
		for k, v := range sess.vals {
			vals[k] = v
		}
		sess.mu.Unlock()
		img.Sessions = append(img.Sessions, SessionImage{ID: id, Vals: vals})
	}
	return img
}

// ImportSessions replaces the server's sessions with the imaged ones.
func (s *Server) ImportSessions(img *SessionsImage) {
	sessions := make(map[string]*Session, len(img.Sessions))
	for _, si := range img.Sessions {
		vals := make(map[string]string, len(si.Vals))
		for k, v := range si.Vals {
			vals[k] = v
		}
		sessions[si.ID] = &Session{ID: si.ID, vals: vals}
	}
	s.mu.Lock()
	s.sessions = sessions
	s.nextSID = img.NextSID
	s.mu.Unlock()
}
