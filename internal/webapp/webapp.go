// Package webapp is the server-side application framework for the
// simulated web applications (Google Sites, GMail, the Yahoo portal,
// Google Docs, and the three search engines). It provides routing,
// cookie-based sessions, and page rendering over netsim — the moral
// equivalent of the servers the paper's evaluation ran against.
package webapp

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/dslab-epfl/warr/internal/netsim"
)

// htmlEscaper escapes text for safe inclusion in HTML content.
var htmlEscaper = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
)

// HTMLEscape escapes text for safe inclusion in HTML content — the
// escaping the demo applications (and external App plugins) render user
// input with.
func HTMLEscape(s string) string { return htmlEscaper.Replace(s) }

// Session is per-user server-side state, keyed by the sid cookie.
type Session struct {
	ID string

	mu   sync.Mutex
	vals map[string]string
}

// Get returns the session value for key ("" when absent).
func (s *Session) Get(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[key]
}

// Set stores a session value.
func (s *Session) Set(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[key] = value
}

// PageFunc handles one route.
type PageFunc func(req *netsim.Request, sess *Session) *netsim.Response

// Server is a netsim.Handler with routing and sessions.
type Server struct {
	// Name identifies the application in logs and reports.
	Name string

	mu       sync.Mutex
	routes   map[string]PageFunc
	sessions map[string]*Session
	nextSID  int
}

// NewServer returns an empty application server.
func NewServer(name string) *Server {
	return &Server{
		Name:     name,
		routes:   make(map[string]PageFunc),
		sessions: make(map[string]*Session),
	}
}

// Handle registers fn for the exact path.
func (s *Server) Handle(path string, fn PageFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.routes[path] = fn
}

// CopySessionsFrom deep-copies src's sessions (and its sid counter)
// into s, replacing whatever s held. It is the server-framework half of
// an application's Snapshot implementation: the snapshot recognizes
// exactly the sid cookies the original had issued, and future sids
// continue from the same counter in both, so a forked replay mints the
// same session ids a fresh replay of the full trace would.
func (s *Server) CopySessionsFrom(src *Server) {
	src.mu.Lock()
	sessions := make(map[string]*Session, len(src.sessions))
	for id, sess := range src.sessions {
		sess.mu.Lock()
		vals := make(map[string]string, len(sess.vals))
		for k, v := range sess.vals {
			vals[k] = v
		}
		sess.mu.Unlock()
		sessions[id] = &Session{ID: id, vals: vals}
	}
	nextSID := src.nextSID
	src.mu.Unlock()

	s.mu.Lock()
	s.sessions = sessions
	s.nextSID = nextSID
	s.mu.Unlock()
}

// SessionSnapshot is one session's identity and values, in a stable
// form: Values holds "key=value" pairs sorted by key.
type SessionSnapshot struct {
	ID     string
	Values []string
}

// SessionSnapshots returns every live session sorted by id — the
// deterministic view the per-session coverage lanes hash. Sids are
// minted in request order, so under a fixed schedule the snapshot is
// identical run to run.
func (s *Server) SessionSnapshots() []SessionSnapshot {
	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID < sessions[j].ID })
	out := make([]SessionSnapshot, 0, len(sessions))
	for _, sess := range sessions {
		sess.mu.Lock()
		vals := make([]string, 0, len(sess.vals))
		for k, v := range sess.vals {
			vals = append(vals, k+"="+v)
		}
		sess.mu.Unlock()
		sort.Strings(vals)
		out = append(out, SessionSnapshot{ID: sess.ID, Values: vals})
	}
	return out
}

// ResetSessions forgets every server-side session — part of an
// application's reset semantics: a reset server no longer recognizes
// previously issued sid cookies.
func (s *Server) ResetSessions() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions = make(map[string]*Session)
}

// Serve implements netsim.Handler.
func (s *Server) Serve(req *netsim.Request) *netsim.Response {
	if err := req.ParseForm(); err != nil {
		return &netsim.Response{Status: 400, ContentType: "text/html", Header: map[string]string{}, Body: "bad request"}
	}
	sess, isNew := s.session(req)

	s.mu.Lock()
	fn, ok := s.routes[req.Path()]
	s.mu.Unlock()
	if !ok {
		return netsim.NotFound()
	}
	resp := fn(req, sess)
	if resp == nil {
		resp = netsim.NotFound()
	}
	if resp.Header == nil {
		resp.Header = make(map[string]string)
	}
	if isNew {
		resp.Header["Set-Cookie"] = "sid=" + sess.ID
	}
	return resp
}

// session finds or creates the session for the request's sid cookie.
func (s *Server) session(req *netsim.Request) (sess *Session, isNew bool) {
	sid := cookieValue(req.Header["Cookie"], "sid")
	s.mu.Lock()
	defer s.mu.Unlock()
	if sid != "" {
		if sess, ok := s.sessions[sid]; ok {
			return sess, false
		}
	}
	s.nextSID++
	sess = &Session{ID: fmt.Sprintf("%s-%d", s.Name, s.nextSID), vals: make(map[string]string)}
	s.sessions[sess.ID] = sess
	return sess, true
}

func cookieValue(header, name string) string {
	for _, part := range strings.Split(header, ";") {
		part = strings.TrimSpace(part)
		if v, ok := strings.CutPrefix(part, name+"="); ok {
			return v
		}
	}
	return ""
}

// Page renders a complete HTML page with optional script code.
func Page(title, bodyHTML, scriptSrc string) string {
	var b strings.Builder
	b.WriteString("<html><head><title>")
	b.WriteString(title)
	b.WriteString("</title></head><body>")
	b.WriteString(bodyHTML)
	if scriptSrc != "" {
		b.WriteString("<script>")
		b.WriteString(scriptSrc)
		b.WriteString("</script>")
	}
	b.WriteString("</body></html>")
	return b.String()
}

// Redirect returns a 302 response to location. The simulated browser
// follows redirects during navigation.
func Redirect(location string) *netsim.Response {
	return &netsim.Response{
		Status:      302,
		ContentType: "text/html",
		Header:      map[string]string{"Location": location},
		Body:        "",
	}
}
