// Package dom implements the Document Object Model used by the simulated
// browser: element trees, attributes, mutation, serialization, and the
// structural shape-similarity metric that WebErr's grammar inference uses
// (paper §V-A: "Computing the similarity of web pages is based on their
// DOM shape, taking into account the type of the HTML elements and their
// id property").
package dom

import (
	"fmt"
	"strings"
)

// NodeType discriminates the kinds of nodes in a DOM tree.
type NodeType int

// Node types. Values mirror the DOM spec's numbering where it exists.
const (
	ElementNode NodeType = iota + 1
	TextNode
	CommentNode
	DocumentNode
)

func (t NodeType) String() string {
	switch t {
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case DocumentNode:
		return "document"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Attr is a single element attribute. Attribute order is preserved so that
// serialization is deterministic.
type Attr struct {
	Name  string
	Value string
}

// Listener is an event listener registered on a node. The Fn field is
// opaque to this package; the event package stores its handler type here.
// Keeping storage on the node (rather than a side table) means listeners
// follow the node through tree mutations, exactly as in a browser.
type Listener struct {
	Type    string // event type, e.g. "click"
	Capture bool   // fire during the capture phase
	Fn      any
}

// Node is a node in a DOM tree. The zero value is not useful; construct
// nodes with NewElement, NewText, NewComment, or NewDocument.
type Node struct {
	Type NodeType

	// Tag is the lowercase element name for ElementNode ("div", "input").
	Tag string

	// Data holds the text for TextNode and CommentNode.
	Data string

	attrs     []Attr
	parent    *Node
	children  []*Node
	listeners []Listener

	// qidx points to the QueryIndex of the indexed tree the node belongs
	// to, nil for nodes in unindexed (detached) trees. Mutation methods
	// keep the index in sync.
	qidx *QueryIndex

	// Value models the DOM "value" property of input/textarea elements.
	// It is a property, not an attribute: typing changes Value but not
	// the serialized value="..." attribute, as in real browsers. The
	// distinction matters for the paper's ChromeDriver text-input fix
	// (§IV-C): setting value on a <div> does nothing visible, which is
	// exactly the bug WaRR's replayer works around.
	Value string
}

// NewElement returns a new element node with the given tag (lowercased)
// and alternating name/value attribute pairs.
func NewElement(tag string, attrPairs ...string) *Node {
	if len(attrPairs)%2 != 0 {
		panic("dom.NewElement: odd number of attribute arguments")
	}
	n := &Node{Type: ElementNode, Tag: strings.ToLower(tag)}
	for i := 0; i < len(attrPairs); i += 2 {
		n.SetAttr(attrPairs[i], attrPairs[i+1])
	}
	return n
}

// NewText returns a new text node.
func NewText(data string) *Node { return &Node{Type: TextNode, Data: data} }

// NewComment returns a new comment node.
func NewComment(data string) *Node { return &Node{Type: CommentNode, Data: data} }

// NewDocumentNode returns a bare #document node.
func NewDocumentNode() *Node { return &Node{Type: DocumentNode, Tag: "#document"} }

// Parent returns the node's parent, or nil for a detached or root node.
func (n *Node) Parent() *Node { return n.parent }

// QueryIndex returns the index of the tree the node belongs to, or nil
// when the tree is not indexed (detached subtrees, bare NewElement trees).
func (n *Node) QueryIndex() *QueryIndex { return n.qidx }

// NoteEvent counts a dispatched event of the given type against the
// node's tree index. Dispatches to detached (unindexed) targets are
// not counted — coverage only tracks the live document.
func (n *Node) NoteEvent(typ string) {
	if n.qidx != nil {
		n.qidx.NoteEvent(EventKey{Type: typ, Tag: n.Tag, ID: n.AttrOr("id", "")})
	}
}

// Children returns the node's children. The returned slice is a copy; the
// tree can only be mutated through the mutation methods.
func (n *Node) Children() []*Node {
	out := make([]*Node, len(n.children))
	copy(out, n.children)
	return out
}

// NumChildren returns the number of children without copying.
func (n *Node) NumChildren() int { return len(n.children) }

// ChildAt returns the i'th child, or nil if out of range.
func (n *Node) ChildAt(i int) *Node {
	if i < 0 || i >= len(n.children) {
		return nil
	}
	return n.children[i]
}

// FirstChild returns the first child or nil.
func (n *Node) FirstChild() *Node { return n.ChildAt(0) }

// LastChild returns the last child or nil.
func (n *Node) LastChild() *Node { return n.ChildAt(len(n.children) - 1) }

// ChildElements returns the element children only.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.children {
		if c.Type == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// Index returns the node's position among its parent's children, or -1
// for a detached node.
func (n *Node) Index() int {
	if n.parent == nil {
		return -1
	}
	for i, c := range n.parent.children {
		if c == n {
			return i
		}
	}
	return -1
}

// ElementIndex returns the node's 1-based position among its parent's
// children that share its tag, as used by XPath positional predicates
// (e.g. div[2]). It returns 1 for a detached node.
func (n *Node) ElementIndex() int {
	if n.parent == nil {
		return 1
	}
	pos := 0
	for _, c := range n.parent.children {
		if c.Type == ElementNode && c.Tag == n.Tag {
			pos++
			if c == n {
				return pos
			}
		}
	}
	return 1
}

// NextSibling returns the following sibling or nil.
func (n *Node) NextSibling() *Node {
	i := n.Index()
	if i < 0 {
		return nil
	}
	return n.parent.ChildAt(i + 1)
}

// PrevSibling returns the preceding sibling or nil.
func (n *Node) PrevSibling() *Node {
	i := n.Index()
	if i < 0 {
		return nil
	}
	return n.parent.ChildAt(i - 1)
}

// AppendChild adds c as the last child of n, detaching c from any previous
// parent first.
func (n *Node) AppendChild(c *Node) {
	if c == nil {
		return
	}
	if c == n || c.Contains(n) {
		panic("dom: AppendChild would create a cycle")
	}
	c.Detach()
	c.parent = n
	n.children = append(n.children, c)
	if n.qidx != nil {
		n.qidx.addSubtree(c)
	}
}

// InsertBefore inserts c immediately before ref among n's children. A nil
// ref appends.
func (n *Node) InsertBefore(c, ref *Node) {
	if c == nil {
		return
	}
	if ref == nil {
		n.AppendChild(c)
		return
	}
	if ref.parent != n {
		panic("dom: InsertBefore reference is not a child")
	}
	if c == n || c.Contains(n) {
		panic("dom: InsertBefore would create a cycle")
	}
	c.Detach()
	i := ref.Index()
	c.parent = n
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	if n.qidx != nil {
		n.qidx.addSubtree(c)
	}
}

// RemoveChild removes c from n's children. It panics if c is not a child
// of n.
func (n *Node) RemoveChild(c *Node) {
	if c.parent != n {
		panic("dom: RemoveChild of a non-child")
	}
	c.Detach()
}

// Detach removes the node from its parent, if any.
func (n *Node) Detach() {
	p := n.parent
	if p == nil {
		return
	}
	if n.qidx != nil {
		n.qidx.removeSubtree(n)
	}
	i := n.Index()
	p.children = append(p.children[:i], p.children[i+1:]...)
	n.parent = nil
}

// RemoveChildren detaches all children.
func (n *Node) RemoveChildren() {
	for len(n.children) > 0 {
		n.children[len(n.children)-1].Detach()
	}
}

// ReplaceChild swaps old (a child of n) for c.
func (n *Node) ReplaceChild(c, old *Node) {
	if old.parent != n {
		panic("dom: ReplaceChild of a non-child")
	}
	n.InsertBefore(c, old)
	old.Detach()
}

// Contains reports whether other is n or a descendant of n.
func (n *Node) Contains(other *Node) bool {
	for cur := other; cur != nil; cur = cur.parent {
		if cur == n {
			return true
		}
	}
	return false
}

// Root returns the topmost ancestor of n (possibly n itself).
func (n *Node) Root() *Node {
	cur := n
	for cur.parent != nil {
		cur = cur.parent
	}
	return cur
}

// Depth returns the number of ancestors above n.
func (n *Node) Depth() int {
	d := 0
	for cur := n.parent; cur != nil; cur = cur.parent {
		d++
	}
	return d
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	name = strings.ToLower(name)
	for _, a := range n.attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute's value, or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// HasAttr reports whether the named attribute is present.
func (n *Node) HasAttr(name string) bool {
	_, ok := n.Attr(name)
	return ok
}

// SetAttr sets the named attribute, replacing any existing value.
func (n *Node) SetAttr(name, value string) {
	name = strings.ToLower(name)
	for i, a := range n.attrs {
		if a.Name == name {
			if a.Value != value {
				n.attrs[i].Value = value
				if n.qidx != nil && n.Type == ElementNode {
					n.qidx.attrChanged(n, name, a.Value, value)
				}
			}
			return
		}
	}
	n.attrs = append(n.attrs, Attr{Name: name, Value: value})
	if n.qidx != nil && n.Type == ElementNode {
		n.qidx.attrAdded(n, name, value)
	}
}

// RemoveAttr deletes the named attribute if present.
func (n *Node) RemoveAttr(name string) {
	name = strings.ToLower(name)
	for i, a := range n.attrs {
		if a.Name == name {
			n.attrs = append(n.attrs[:i], n.attrs[i+1:]...)
			if n.qidx != nil && n.Type == ElementNode {
				n.qidx.attrRemoved(n, name, a.Value)
			}
			return
		}
	}
}

// Attrs returns a copy of the attribute list in document order.
func (n *Node) Attrs() []Attr {
	out := make([]Attr, len(n.attrs))
	copy(out, n.attrs)
	return out
}

// ID returns the element's id attribute ("" when absent).
func (n *Node) ID() string { return n.AttrOr("id", "") }

// TextContent returns the concatenated text of all descendant text nodes.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n.Type == TextNode {
		b.WriteString(n.Data)
		return
	}
	for _, c := range n.children {
		c.appendText(b)
	}
}

// SetTextContent replaces all children with a single text node (or
// nothing, for the empty string).
func (n *Node) SetTextContent(s string) {
	n.RemoveChildren()
	if s != "" {
		n.AppendChild(NewText(s))
	}
}

// SetData replaces the node's character data (text or comment nodes),
// recording the mutation in the tree's query index generation. Prefer it
// over writing Data directly so index-generation-based caches see text
// edits.
func (n *Node) SetData(s string) {
	if n.Data == s {
		return
	}
	n.Data = s
	if n.qidx != nil {
		n.qidx.dataChanged()
	}
}

// AppendData appends to the node's character data (the per-keystroke text
// mutation path).
func (n *Node) AppendData(s string) {
	if s == "" {
		return
	}
	n.Data += s
	if n.qidx != nil {
		n.qidx.dataChanged()
	}
}

// SetValue sets the DOM value property, recording the mutation in the
// index generation — layout depends on input values, so generation-keyed
// caches must see value edits. Prefer it over writing Value directly.
func (n *Node) SetValue(s string) {
	if n.Value == s {
		return
	}
	n.Value = s
	if n.qidx != nil {
		n.qidx.dataChanged()
	}
}

// AppendValue appends to the DOM value property (the per-keystroke input
// mutation path).
func (n *Node) AppendValue(s string) {
	if s == "" {
		return
	}
	n.Value += s
	if n.qidx != nil {
		n.qidx.dataChanged()
	}
}

// OwnText returns the concatenated text of the node's direct text-node
// children only.
func (n *Node) OwnText() string {
	var b strings.Builder
	for _, c := range n.children {
		if c.Type == TextNode {
			b.WriteString(c.Data)
		}
	}
	return b.String()
}

// Walk visits n and every descendant in document order. Returning false
// from fn stops the walk.
func (n *Node) Walk(fn func(*Node) bool) {
	n.walk(fn)
}

func (n *Node) walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.children {
		if !c.walk(fn) {
			return false
		}
	}
	return true
}

// Find returns the first node in document order satisfying pred, or nil.
func (n *Node) Find(pred func(*Node) bool) *Node {
	var found *Node
	n.Walk(func(m *Node) bool {
		if pred(m) {
			found = m
			return false
		}
		return true
	})
	return found
}

// FindAll returns every node in document order satisfying pred.
func (n *Node) FindAll(pred func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if pred(m) {
			out = append(out, m)
		}
		return true
	})
	return out
}

// ElementsByTag returns all descendant elements with the given tag,
// excluding n itself (getElementsByTagName semantics).
func (n *Node) ElementsByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	return n.FindAll(func(m *Node) bool {
		return m != n && m.Type == ElementNode && m.Tag == tag
	})
}

// ByID returns the first descendant element whose id attribute equals id,
// or nil.
func (n *Node) ByID(id string) *Node {
	return n.Find(func(m *Node) bool {
		return m.Type == ElementNode && m.ID() == id
	})
}

// Clone returns a copy of the node. With deep set, descendants are copied
// too. Event listeners are not cloned, matching cloneNode semantics in
// real DOM implementations.
func (n *Node) Clone(deep bool) *Node {
	c := &Node{Type: n.Type, Tag: n.Tag, Data: n.Data, Value: n.Value}
	c.attrs = make([]Attr, len(n.attrs))
	copy(c.attrs, n.attrs)
	if deep {
		for _, child := range n.children {
			c.AppendChild(child.Clone(true))
		}
	}
	return c
}

// AddListener registers an event listener on the node.
func (n *Node) AddListener(l Listener) {
	n.listeners = append(n.listeners, l)
}

// RemoveListeners drops all listeners for the given event type (all types
// when typ is empty).
func (n *Node) RemoveListeners(typ string) {
	kept := n.listeners[:0]
	for _, l := range n.listeners {
		if typ != "" && l.Type != typ {
			kept = append(kept, l)
		}
	}
	n.listeners = kept
}

// Listeners returns the node's listener list in registration order.
// The returned slice is the node's own storage: callers must treat it
// as read-only and must not hold it across mutations. Event dispatch
// iterates it allocation-free.
func (n *Node) Listeners() []Listener { return n.listeners }

// ListenersFor returns the listeners registered for the given event type,
// in registration order.
func (n *Node) ListenersFor(typ string) []Listener {
	var out []Listener
	for _, l := range n.listeners {
		if l.Type == typ {
			out = append(out, l)
		}
	}
	return out
}

// HasListener reports whether any listener for the given type exists.
func (n *Node) HasListener(typ string) bool {
	for _, l := range n.listeners {
		if l.Type == typ {
			return true
		}
	}
	return false
}

// Path returns a human-readable ancestor path like
// "html/body/div#content/span", useful in error messages and tests.
func (n *Node) Path() string {
	var parts []string
	for cur := n; cur != nil && cur.Type == ElementNode; cur = cur.parent {
		p := cur.Tag
		if id := cur.ID(); id != "" {
			p += "#" + id
		}
		parts = append(parts, p)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// IsEditable reports whether the element accepts keystrokes: an input,
// a textarea, or an element with contenteditable="true" (or an ancestor
// with it). Modern web applications (GMail compose, Google Docs cells,
// Google Sites editor) rely on contenteditable containers, which is why
// page-level recorders miss keystrokes into them (paper Table II).
func (n *Node) IsEditable() bool {
	if n.Type != ElementNode {
		return false
	}
	if n.Tag == "input" || n.Tag == "textarea" {
		return true
	}
	for cur := n; cur != nil; cur = cur.parent {
		if v, ok := cur.Attr("contenteditable"); ok && (v == "" || strings.EqualFold(v, "true")) {
			return true
		}
	}
	return false
}
