package dom

// QueryIndex maintains persistent per-document lookup tables — elements
// by id, by tag, and by (attribute name, attribute value) — kept
// incrementally up to date by the tree mutation methods (AppendChild,
// InsertBefore, Detach, SetAttr, RemoveAttr, SetData, ...). The XPath
// evaluator anchors selective predicates on these tables, turning an
// `[@id=...]` step into an O(1) jump instead of a full-tree walk.
//
// A QueryIndex is owned by the tree hanging off one root node (normally a
// #document node). Every node in the tree carries a pointer to the index;
// detached subtrees carry none and are queried by the tree-walking
// fallback evaluator instead. Because the tables are maintained inline
// with every mutation, a lookup can never observe stale state; the
// generation counter additionally lets derived caches detect that the
// tree changed under them.
type QueryIndex struct {
	root *Node
	gen  uint64

	byID   map[string]map[*Node]struct{}
	byTag  map[string]map[*Node]struct{}
	byAttr map[attrKey]map[*Node]struct{}

	// events counts dispatched events per (type, target tag, target id)
	// — the event-handler lane of the replay coverage signal. Counters
	// are observational only: they never affect queries and do not bump
	// the generation counter, so layout caches stay valid across them.
	events map[EventKey]uint64
}

// EventKey identifies one event-dispatch counter: the event type plus
// the target element's tag and id attribute (either may be empty).
type EventKey struct {
	Type string
	Tag  string
	ID   string
}

// attrKey identifies one (attribute name, attribute value) bucket.
type attrKey struct {
	name  string
	value string
}

// buildIndex indexes the whole tree rooted at root and stamps every node
// with the new index.
func buildIndex(root *Node) *QueryIndex {
	ix := &QueryIndex{
		root:   root,
		byID:   make(map[string]map[*Node]struct{}),
		byTag:  make(map[string]map[*Node]struct{}),
		byAttr: make(map[attrKey]map[*Node]struct{}),
	}
	ix.addSubtree(root)
	return ix
}

// Root returns the root node the index covers.
func (ix *QueryIndex) Root() *Node { return ix.root }

// Generation returns the mutation counter. It increases on every indexed
// mutation of the tree (structure, attributes, character data), so any
// cache keyed on a generation value is invalidated by the next mutation.
func (ix *QueryIndex) Generation() uint64 { return ix.gen }

// CountTag returns how many elements carry the given tag.
func (ix *QueryIndex) CountTag(tag string) int { return len(ix.byTag[tag]) }

// NodesByTag returns the elements with the given tag, in no particular
// order.
func (ix *QueryIndex) NodesByTag(tag string) []*Node {
	return collect(ix.byTag[tag])
}

// CountAttr returns how many elements carry the attribute name=value.
func (ix *QueryIndex) CountAttr(name, value string) int {
	if name == "id" {
		return len(ix.byID[value])
	}
	return len(ix.byAttr[attrKey{name, value}])
}

// NodesByAttr returns the elements carrying the attribute name=value, in
// no particular order.
func (ix *QueryIndex) NodesByAttr(name, value string) []*Node {
	if name == "id" {
		return collect(ix.byID[value])
	}
	return collect(ix.byAttr[attrKey{name, value}])
}

// ByID returns the first element in document order whose id attribute
// equals id, or nil. Duplicate ids (invalid but common HTML) resolve the
// way getElementById does: the earliest element wins.
func (ix *QueryIndex) ByID(id string) *Node {
	var first *Node
	for n := range ix.byID[id] {
		if first == nil || CompareDocumentOrder(n, first) < 0 {
			first = n
		}
	}
	return first
}

func collect(bucket map[*Node]struct{}) []*Node {
	if len(bucket) == 0 {
		return nil
	}
	out := make([]*Node, 0, len(bucket))
	for n := range bucket {
		out = append(out, n)
	}
	return out
}

// addSubtree registers n and every descendant.
func (ix *QueryIndex) addSubtree(n *Node) {
	ix.gen++
	n.walk(func(m *Node) bool {
		m.qidx = ix
		if m.Type == ElementNode {
			ix.insert(m)
		}
		return true
	})
}

// removeSubtree deregisters n and every descendant.
func (ix *QueryIndex) removeSubtree(n *Node) {
	ix.gen++
	n.walk(func(m *Node) bool {
		if m.Type == ElementNode {
			ix.remove(m)
		}
		m.qidx = nil
		return true
	})
}

func (ix *QueryIndex) insert(n *Node) {
	addTo(ix.byTag, n.Tag, n)
	for _, a := range n.attrs {
		ix.insertAttr(n, a.Name, a.Value)
	}
}

func (ix *QueryIndex) remove(n *Node) {
	removeFrom(ix.byTag, n.Tag, n)
	for _, a := range n.attrs {
		ix.removeAttr(n, a.Name, a.Value)
	}
}

func (ix *QueryIndex) insertAttr(n *Node, name, value string) {
	if name == "id" {
		addTo(ix.byID, value, n)
		return
	}
	addTo(ix.byAttr, attrKey{name, value}, n)
}

func (ix *QueryIndex) removeAttr(n *Node, name, value string) {
	if name == "id" {
		removeFrom(ix.byID, value, n)
		return
	}
	removeFrom(ix.byAttr, attrKey{name, value}, n)
}

// attrChanged records an attribute value change on an indexed element.
func (ix *QueryIndex) attrChanged(n *Node, name, old, new string) {
	ix.gen++
	ix.removeAttr(n, name, old)
	ix.insertAttr(n, name, new)
}

// attrAdded records a newly set attribute on an indexed element.
func (ix *QueryIndex) attrAdded(n *Node, name, value string) {
	ix.gen++
	ix.insertAttr(n, name, value)
}

// attrRemoved records a deleted attribute on an indexed element.
func (ix *QueryIndex) attrRemoved(n *Node, name, value string) {
	ix.gen++
	ix.removeAttr(n, name, value)
}

// dataChanged records a character-data mutation (text or comment nodes).
func (ix *QueryIndex) dataChanged() { ix.gen++ }

// NoteEvent counts one dispatched event against the tree. The map is
// lazily allocated so documents that never see a dispatch pay nothing.
func (ix *QueryIndex) NoteEvent(k EventKey) {
	if ix.events == nil {
		ix.events = make(map[EventKey]uint64)
	}
	ix.events[k]++
}

// VisitEvents calls fn for every event-dispatch counter, in no
// particular order. Callers folding the counters into a coverage
// fingerprint must combine commutatively.
func (ix *QueryIndex) VisitEvents(fn func(k EventKey, count uint64)) {
	for k, c := range ix.events {
		fn(k, c)
	}
}

func addTo[K comparable](m map[K]map[*Node]struct{}, k K, n *Node) {
	b := m[k]
	if b == nil {
		b = make(map[*Node]struct{})
		m[k] = b
	}
	b[n] = struct{}{}
}

func removeFrom[K comparable](m map[K]map[*Node]struct{}, k K, n *Node) {
	b := m[k]
	if b == nil {
		return
	}
	delete(b, n)
	if len(b) == 0 {
		delete(m, k)
	}
}

// CompareDocumentOrder orders two nodes of the same tree by document
// order: negative when a precedes b, positive when it follows, zero when
// a == b. An ancestor precedes its descendants. Nodes of disjoint trees
// compare as equal.
func CompareDocumentOrder(a, b *Node) int {
	if a == b {
		return 0
	}
	ca := ancestorChain(a)
	cb := ancestorChain(b)
	n := len(ca)
	if len(cb) < n {
		n = len(cb)
	}
	for i := 0; i < n; i++ {
		if ca[i] != cb[i] {
			if i == 0 {
				return 0 // disjoint trees
			}
			return ca[i].Index() - cb[i].Index()
		}
	}
	// One chain is a prefix of the other: the ancestor comes first.
	return len(ca) - len(cb)
}

// ancestorChain returns the path from the root down to n, inclusive.
func ancestorChain(n *Node) []*Node {
	depth := n.Depth() + 1
	chain := make([]*Node, depth)
	for cur := n; cur != nil; cur = cur.parent {
		depth--
		chain[depth] = cur
	}
	return chain
}
