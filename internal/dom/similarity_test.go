package dom

import (
	"testing"
	"testing/quick"
)

func page(ids ...string) *Document {
	d := NewDocument("u")
	for _, id := range ids {
		d.Body().AppendChild(NewElement("div", "id", id))
	}
	return d
}

func TestIdenticalPagesSimilarityOne(t *testing.T) {
	a, b := page("x", "y"), page("x", "y")
	if got := Similarity(ShapeOfDocument(a), ShapeOfDocument(b)); got != 1 {
		t.Fatalf("Similarity = %v, want 1", got)
	}
}

func TestTextChangesDoNotAffectShape(t *testing.T) {
	a, b := page("x"), page("x")
	a.GetElementByID("x").SetTextContent("hello")
	b.GetElementByID("x").SetTextContent("completely different words")
	if got := Similarity(ShapeOfDocument(a), ShapeOfDocument(b)); got != 1 {
		t.Fatalf("Similarity = %v, want 1 (text must not matter)", got)
	}
}

func TestIDChangesAffectShape(t *testing.T) {
	a, b := page("x"), page("y")
	got := Similarity(ShapeOfDocument(a), ShapeOfDocument(b))
	if got >= 1 {
		t.Fatalf("Similarity = %v, want < 1 (ids must matter)", got)
	}
}

func TestDisjointShapesSimilarityLow(t *testing.T) {
	a := NewDocument("u")
	a.Body().AppendChild(NewElement("table"))
	b := NewDocument("u")
	b.Body().AppendChild(NewElement("form"))
	got := Similarity(ShapeOfDocument(a), ShapeOfDocument(b))
	// The html/head/body skeleton is shared, so similarity is positive but
	// must drop below 1.
	if got >= 1 || got <= 0 {
		t.Fatalf("Similarity = %v, want in (0,1)", got)
	}
}

func TestEmptyShapes(t *testing.T) {
	e := ShapeOf(NewText("x"))
	if e.Size() != 0 {
		t.Fatalf("Size = %d, want 0", e.Size())
	}
	if got := Similarity(e, e); got != 1 {
		t.Fatalf("empty/empty Similarity = %v, want 1", got)
	}
	if got := Similarity(e, ShapeOf(NewElement("div"))); got != 0 {
		t.Fatalf("empty/non-empty Similarity = %v, want 0", got)
	}
}

func TestShapeDepthRelative(t *testing.T) {
	// A subtree's shape must not depend on how deep the subtree sits.
	sub := NewElement("div", "id", "inner")
	sub.AppendChild(NewElement("span"))
	shallow := ShapeOf(sub)

	root := NewElement("html")
	body := NewElement("body")
	root.AppendChild(body)
	body.AppendChild(sub)
	deep := ShapeOf(sub)
	if got := Similarity(shallow, deep); got != 1 {
		t.Fatalf("Similarity = %v, want 1 (depth must be relative)", got)
	}
}

func TestShapeString(t *testing.T) {
	n := NewElement("div", "id", "a")
	n.AppendChild(NewElement("span"))
	n.AppendChild(NewElement("span"))
	got := ShapeOf(n).String()
	want := "0|div|a×1 1|span|×2"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// Properties of the similarity metric.
func TestSimilarityProperties(t *testing.T) {
	build := func(tags []uint8) Shape {
		root := NewElement("div")
		names := []string{"span", "p", "a", "td", "li"}
		for _, b := range tags {
			root.AppendChild(NewElement(names[int(b)%len(names)]))
		}
		return ShapeOf(root)
	}
	symmetric := func(x, y []uint8) bool {
		a, b := build(x), build(y)
		return Similarity(a, b) == Similarity(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("not symmetric: %v", err)
	}
	reflexive := func(x []uint8) bool {
		a := build(x)
		return Similarity(a, a) == 1
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Errorf("not reflexive: %v", err)
	}
	bounded := func(x, y []uint8) bool {
		s := Similarity(build(x), build(y))
		return s >= 0 && s <= 1
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("not bounded: %v", err)
	}
}
