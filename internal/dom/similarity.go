package dom

import (
	"fmt"
	"sort"
	"strings"
)

// Shape captures the structural signature of a DOM tree: the multiset of
// (depth, tag, id) triples over all elements. Two pages with the same
// element skeleton have identical shapes even if their text differs.
//
// Paper §V-A: "Computing the similarity of web pages is based on their DOM
// shape, taking into account the type of the HTML elements and their id
// property." WebErr uses Similarity to decide when one subtask ended and
// another began while reconstructing the user's task tree.
type Shape struct {
	counts map[string]int
	total  int
}

// ShapeOf computes the shape signature of the subtree rooted at n.
func ShapeOf(n *Node) Shape {
	s := Shape{counts: make(map[string]int)}
	base := n.Depth()
	n.Walk(func(m *Node) bool {
		if m.Type != ElementNode {
			return true
		}
		key := fmt.Sprintf("%d|%s|%s", m.Depth()-base, m.Tag, m.ID())
		s.counts[key]++
		s.total++
		return true
	})
	return s
}

// ShapeOfDocument computes the shape of a whole document.
func ShapeOfDocument(d *Document) Shape { return ShapeOf(d.Root()) }

// Size returns the number of elements contributing to the shape.
func (s Shape) Size() int { return s.total }

// Similarity returns the Dice coefficient between two shapes, in [0,1]:
// 1 means structurally identical element skeletons, 0 means no overlap.
// Two empty shapes are defined to be identical (1).
func Similarity(a, b Shape) float64 {
	if a.total == 0 && b.total == 0 {
		return 1
	}
	if a.total == 0 || b.total == 0 {
		return 0
	}
	inter := 0
	for k, ca := range a.counts {
		if cb, ok := b.counts[k]; ok {
			if ca < cb {
				inter += ca
			} else {
				inter += cb
			}
		}
	}
	return 2 * float64(inter) / float64(a.total+b.total)
}

// String renders the shape deterministically, for debugging and golden
// tests.
func (s Shape) String() string {
	keys := make([]string, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s×%d", k, s.counts[k])
	}
	return b.String()
}
