package dom

// CloneWithIndex deep-copies the document and returns the copy together
// with the old-node → new-node mapping. Unlike Clone, the copy's query
// index is not rebuilt by re-walking the tree: the original's index
// tables are translated bucket by bucket through the node mapping, and
// the generation counter carries over — so caches keyed on a generation
// value (frame layout) stay coherent across a fork, and restoring a
// checkpoint never pays an index reconstruction.
//
// Event listeners are not copied (cloneNode semantics); the browser
// re-registers them from its own listener log.
func (d *Document) CloneWithIndex() (*Document, map[*Node]*Node) {
	// Count first, then carve every clone out of three arenas — the
	// nodes, their attribute lists, and their child lists. Campaign
	// forking clones documents once per divergent suffix, and three
	// allocations per node dominated the checkpoint cost.
	nodes, attrs, kids := 0, 0, 0
	d.root.walk(func(n *Node) bool {
		nodes++
		attrs += len(n.attrs)
		kids += len(n.children)
		return true
	})
	arena := cloneArena{
		nodes: make([]Node, 0, nodes),
		attrs: make([]Attr, 0, attrs),
		kids:  make([]*Node, 0, kids),
	}
	nodeMap := make(map[*Node]*Node, nodes)
	root := arena.clone(d.root, nodeMap)

	if ix := d.root.qidx; ix != nil {
		dup := &QueryIndex{
			root:   root,
			gen:    ix.gen,
			byID:   translateBuckets(ix.byID, nodeMap),
			byTag:  translateBuckets(ix.byTag, nodeMap),
			byAttr: translateBuckets(ix.byAttr, nodeMap),
		}
		// Event-dispatch counters carry over so a forked session's
		// coverage fingerprint stays cumulative: clone-time counts plus
		// the suffix's own dispatches equal a flat replay's counts.
		if len(ix.events) > 0 {
			dup.events = make(map[EventKey]uint64, len(ix.events))
			for k, c := range ix.events {
				dup.events[k] = c
			}
		}
		for _, n := range nodeMap {
			n.qidx = dup
		}
	}
	return &Document{root: root, URL: d.URL}, nodeMap
}

// CloneMapped copies the (detached, unindexed) subtree rooted at n,
// recording every node pair in nodeMap. The browser's fork uses it for
// trees that live only in script variables — created by createElement
// and never attached — so aliases into such trees survive a fork.
func CloneMapped(n *Node, nodeMap map[*Node]*Node) *Node {
	return cloneMapped(n, nodeMap)
}

// cloneArena bulk-allocates clone storage. Nodes created here live and
// die together with the forked document, so slice-backed storage wastes
// nothing; a node later detached from the clone keeps the arena alive,
// which is fine for the fork lifetimes checkpointing creates.
type cloneArena struct {
	nodes []Node
	attrs []Attr
	kids  []*Node
}

func (a *cloneArena) clone(n *Node, nodeMap map[*Node]*Node) *Node {
	a.nodes = append(a.nodes, Node{Type: n.Type, Tag: n.Tag, Data: n.Data, Value: n.Value})
	c := &a.nodes[len(a.nodes)-1]
	if len(n.attrs) > 0 {
		start := len(a.attrs)
		a.attrs = append(a.attrs, n.attrs...)
		c.attrs = a.attrs[start : start+len(n.attrs) : start+len(n.attrs)]
	}
	nodeMap[n] = c
	if len(n.children) > 0 {
		start := len(a.kids)
		a.kids = a.kids[:start+len(n.children)]
		kids := a.kids[start : start+len(n.children) : start+len(n.children)]
		for i, child := range n.children {
			dup := a.clone(child, nodeMap)
			dup.parent = c
			kids[i] = dup
		}
		c.children = kids
	}
	return c
}

// cloneMapped copies the subtree rooted at n, recording every node pair
// in nodeMap. It writes fields directly instead of going through the
// mutation methods, so no index bookkeeping (and no generation bump)
// happens during the copy.
func cloneMapped(n *Node, nodeMap map[*Node]*Node) *Node {
	c := &Node{Type: n.Type, Tag: n.Tag, Data: n.Data, Value: n.Value}
	if len(n.attrs) > 0 {
		c.attrs = make([]Attr, len(n.attrs))
		copy(c.attrs, n.attrs)
	}
	nodeMap[n] = c
	if len(n.children) > 0 {
		c.children = make([]*Node, len(n.children))
		for i, child := range n.children {
			dup := cloneMapped(child, nodeMap)
			dup.parent = c
			c.children[i] = dup
		}
	}
	return c
}

// translateBuckets copies an index table, mapping every node through
// nodeMap. Buckets only ever hold attached nodes of the indexed tree,
// all of which the clone walk visited.
func translateBuckets[K comparable](src map[K]map[*Node]struct{}, nodeMap map[*Node]*Node) map[K]map[*Node]struct{} {
	dst := make(map[K]map[*Node]struct{}, len(src))
	for k, bucket := range src {
		nb := make(map[*Node]struct{}, len(bucket))
		for n := range bucket {
			nb[nodeMap[n]] = struct{}{}
		}
		dst[k] = nb
	}
	return dst
}
