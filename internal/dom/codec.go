package dom

import "fmt"

// This file serializes DOM trees for durable world images
// (internal/image). A tree encodes to a nested record mirroring the
// node structure — type, tag, character data, the value property,
// attributes in document order, children in document order — plus a
// deterministic pre-order numbering that lets the image reference
// individual nodes (element handles, focus, event targets) across the
// encode/decode boundary. Event listeners are never serialized: the
// browser replays its listener registration log after decoding, the
// same way forking does.

// EncodedNode is one serialized DOM node.
type EncodedNode struct {
	Type  NodeType       `json:"type"`
	Tag   string         `json:"tag,omitempty"`
	Data  string         `json:"data,omitempty"`
	Value string         `json:"value,omitempty"`
	Attrs []Attr         `json:"attrs,omitempty"`
	Kids  []*EncodedNode `json:"kids,omitempty"`
}

// EncodeTree serializes the tree rooted at root and returns the
// pre-order id of every node in it (ids start at 0 for root itself).
func EncodeTree(root *Node) (*EncodedNode, map[*Node]int) {
	ids := make(map[*Node]int)
	en := encodeNode(root, ids)
	return en, ids
}

func encodeNode(n *Node, ids map[*Node]int) *EncodedNode {
	ids[n] = len(ids)
	en := &EncodedNode{Type: n.Type, Tag: n.Tag, Data: n.Data, Value: n.Value}
	if len(n.attrs) > 0 {
		en.Attrs = make([]Attr, len(n.attrs))
		copy(en.Attrs, n.attrs)
	}
	if len(n.children) > 0 {
		en.Kids = make([]*EncodedNode, len(n.children))
		for i, c := range n.children {
			en.Kids[i] = encodeNode(c, ids)
		}
	}
	return en
}

// DecodeTree rebuilds a tree from its encoded form, returning the root
// and every node indexed by the same pre-order numbering EncodeTree
// produced. The tree is unindexed; wrap document roots with
// WrapDocument to build their query index.
func DecodeTree(en *EncodedNode) (*Node, []*Node, error) {
	if en == nil {
		return nil, nil, fmt.Errorf("dom: decoding a nil encoded tree")
	}
	var nodes []*Node
	root, err := decodeNode(en, &nodes)
	if err != nil {
		return nil, nil, err
	}
	return root, nodes, nil
}

func decodeNode(en *EncodedNode, nodes *[]*Node) (*Node, error) {
	switch en.Type {
	case ElementNode, TextNode, CommentNode, DocumentNode:
	default:
		return nil, fmt.Errorf("dom: encoded node has unknown type %d", int(en.Type))
	}
	n := &Node{Type: en.Type, Tag: en.Tag, Data: en.Data, Value: en.Value}
	*nodes = append(*nodes, n)
	if len(en.Attrs) > 0 {
		n.attrs = make([]Attr, len(en.Attrs))
		copy(n.attrs, en.Attrs)
	}
	if len(en.Kids) > 0 {
		n.children = make([]*Node, len(en.Kids))
		for i, kid := range en.Kids {
			if kid == nil {
				return nil, fmt.Errorf("dom: encoded node has a nil child")
			}
			c, err := decodeNode(kid, nodes)
			if err != nil {
				return nil, err
			}
			c.parent = n
			n.children[i] = c
		}
	}
	return n, nil
}
