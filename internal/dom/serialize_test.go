package dom

import (
	"strings"
	"testing"
)

func TestOuterHTMLBasic(t *testing.T) {
	div := NewElement("div", "id", "x", "class", "a b")
	div.AppendChild(NewText("hi"))
	want := `<div id="x" class="a b">hi</div>`
	if got := div.OuterHTML(); got != want {
		t.Fatalf("OuterHTML = %q, want %q", got, want)
	}
}

func TestInnerHTML(t *testing.T) {
	div := NewElement("div")
	div.AppendChild(NewElement("br"))
	div.AppendChild(NewText("x"))
	if got := div.InnerHTML(); got != "<br>x" {
		t.Fatalf("InnerHTML = %q", got)
	}
}

func TestVoidElementsNoClosingTag(t *testing.T) {
	img := NewElement("img", "src", "a.png")
	if got := img.OuterHTML(); got != `<img src="a.png">` {
		t.Fatalf("OuterHTML = %q", got)
	}
	if !IsVoidElement("BR") || IsVoidElement("div") {
		t.Fatal("IsVoidElement broken")
	}
}

func TestTextEscaping(t *testing.T) {
	div := NewElement("div")
	div.AppendChild(NewText(`a < b & c > d`))
	if got := div.OuterHTML(); got != "<div>a &lt; b &amp; c &gt; d</div>" {
		t.Fatalf("OuterHTML = %q", got)
	}
}

func TestAttrEscaping(t *testing.T) {
	div := NewElement("div", "title", `say "hi" & bye`)
	if got := div.OuterHTML(); !strings.Contains(got, `title="say &quot;hi&quot; &amp; bye"`) {
		t.Fatalf("OuterHTML = %q", got)
	}
}

func TestScriptTextNotEscaped(t *testing.T) {
	s := NewElement("script")
	s.AppendChild(NewText("if (a < b && c > d) {}"))
	if got := s.OuterHTML(); got != "<script>if (a < b && c > d) {}</script>" {
		t.Fatalf("OuterHTML = %q", got)
	}
}

func TestCommentSerialization(t *testing.T) {
	div := NewElement("div")
	div.AppendChild(NewComment(" note "))
	if got := div.OuterHTML(); got != "<div><!-- note --></div>" {
		t.Fatalf("OuterHTML = %q", got)
	}
}

func TestDocumentSerialization(t *testing.T) {
	d := NewDocument("https://example.test/")
	d.Body().AppendChild(NewText("hello"))
	want := "<html><head></head><body>hello</body></html>"
	if got := d.HTML(); got != want {
		t.Fatalf("HTML = %q, want %q", got, want)
	}
}

func TestDocumentAccessors(t *testing.T) {
	d := NewDocument("u")
	if d.DocumentElement() == nil || d.Head() == nil || d.Body() == nil {
		t.Fatal("document skeleton incomplete")
	}
	title := NewElement("title")
	title.AppendChild(NewText("  My Page "))
	d.Head().AppendChild(title)
	if got := d.Title(); got != "My Page" {
		t.Fatalf("Title = %q", got)
	}
	el := d.CreateElement("div")
	el.SetAttr("id", "z")
	d.Body().AppendChild(el)
	if d.GetElementByID("z") != el {
		t.Fatal("GetElementByID failed")
	}
	if len(d.ElementsByTag("div")) != 1 {
		t.Fatal("ElementsByTag failed")
	}
}

func TestWrapDocumentPanicsOnNonDocument(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	WrapDocument(NewElement("div"), "u")
}

func TestDocumentClone(t *testing.T) {
	d := NewDocument("u")
	d.Body().AppendChild(NewElement("div", "id", "a"))
	c := d.Clone()
	c.GetElementByID("a").SetAttr("id", "b")
	if d.GetElementByID("a") == nil {
		t.Fatal("clone mutated original")
	}
	if c.URL != "u" {
		t.Fatal("clone lost URL")
	}
}
