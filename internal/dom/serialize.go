package dom

import "strings"

// voidElements never have children and serialize without a closing tag.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// IsVoidElement reports whether tag is an HTML void element.
func IsVoidElement(tag string) bool { return voidElements[strings.ToLower(tag)] }

// rawTextElements hold raw (unescaped) text content.
var rawTextElements = map[string]bool{"script": true, "style": true}

// EscapeText escapes text-node content for HTML serialization.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes an attribute value for double-quoted serialization.
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", `"`, "&quot;")
	return r.Replace(s)
}

// OuterHTML serializes the node and its subtree as HTML.
func (n *Node) OuterHTML() string {
	var b strings.Builder
	n.serialize(&b)
	return b.String()
}

// InnerHTML serializes the node's children as HTML.
func (n *Node) InnerHTML() string {
	var b strings.Builder
	for _, c := range n.children {
		c.serialize(&b)
	}
	return b.String()
}

func (n *Node) serialize(b *strings.Builder) {
	switch n.Type {
	case TextNode:
		if n.parent != nil && n.parent.Type == ElementNode && rawTextElements[n.parent.Tag] {
			b.WriteString(n.Data)
		} else {
			b.WriteString(EscapeText(n.Data))
		}
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case DocumentNode:
		for _, c := range n.children {
			c.serialize(b)
		}
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(EscapeAttr(a.Value))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		if voidElements[n.Tag] {
			return
		}
		for _, c := range n.children {
			c.serialize(b)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}

// HTML serializes the whole document.
func (d *Document) HTML() string { return d.root.OuterHTML() }
