package dom

import "testing"

// testDoc builds a small indexed document:
//
//	<html><head></head><body>
//	  <div id="a" class="box"><span name="x">one</span></div>
//	  <div id="b" class="box"><span name="y">two</span></div>
//	</body></html>
func testDoc(t *testing.T) (*Document, *Node, *Node) {
	t.Helper()
	d := NewDocument("http://test/")
	divA := NewElement("div", "id", "a", "class", "box")
	divA.AppendChild(NewElement("span", "name", "x"))
	divA.FirstChild().AppendChild(NewText("one"))
	divB := NewElement("div", "id", "b", "class", "box")
	divB.AppendChild(NewElement("span", "name", "y"))
	divB.FirstChild().AppendChild(NewText("two"))
	d.Body().AppendChild(divA)
	d.Body().AppendChild(divB)
	return d, divA, divB
}

func TestIndexAnswersAfterBuild(t *testing.T) {
	d, divA, divB := testDoc(t)
	ix := d.Index()
	if ix == nil {
		t.Fatal("document has no index")
	}
	if got := ix.ByID("a"); got != divA {
		t.Errorf("ByID(a) = %v, want div#a", got)
	}
	if got := ix.CountTag("div"); got != 2 {
		t.Errorf("CountTag(div) = %d, want 2", got)
	}
	if got := ix.CountAttr("class", "box"); got != 2 {
		t.Errorf("CountAttr(class=box) = %d, want 2", got)
	}
	if got := ix.CountAttr("name", "y"); got != 1 {
		t.Errorf("CountAttr(name=y) = %d, want 1", got)
	}
	if got := d.GetElementByID("b"); got != divB {
		t.Errorf("GetElementByID(b) = %v, want div#b", got)
	}
}

func TestIndexMaintainedUnderAppendAndRemove(t *testing.T) {
	d, divA, _ := testDoc(t)
	ix := d.Index()

	// Appending a subtree registers every node in it.
	sub := NewElement("ul", "id", "list")
	sub.AppendChild(NewElement("li", "class", "item"))
	sub.AppendChild(NewElement("li", "class", "item"))
	divA.AppendChild(sub)
	if got := ix.ByID("list"); got != sub {
		t.Errorf("ByID(list) = %v after append, want the ul", got)
	}
	if got := ix.CountAttr("class", "item"); got != 2 {
		t.Errorf("CountAttr(class=item) = %d, want 2", got)
	}
	if sub.QueryIndex() != ix {
		t.Error("appended subtree not stamped with the index")
	}

	// Detaching deregisters the whole subtree.
	sub.Detach()
	if got := ix.ByID("list"); got != nil {
		t.Errorf("ByID(list) = %v after detach, want nil", got)
	}
	if got := ix.CountAttr("class", "item"); got != 0 {
		t.Errorf("CountAttr(class=item) = %d after detach, want 0", got)
	}
	if sub.QueryIndex() != nil {
		t.Error("detached subtree still stamped with the index")
	}

	// A detached subtree can be re-adopted, including by another document.
	other := NewDocument("http://other/")
	other.Body().AppendChild(sub)
	if got := other.Index().ByID("list"); got != sub {
		t.Errorf("other doc ByID(list) = %v, want the ul", got)
	}
	if got := ix.ByID("list"); got != nil {
		t.Errorf("original doc still resolves the moved ul")
	}
}

func TestIndexMaintainedUnderReID(t *testing.T) {
	d, divA, _ := testDoc(t)
	ix := d.Index()

	divA.SetAttr("id", "a2") // the GMail regenerated-id mutation
	if got := ix.ByID("a"); got != nil {
		t.Errorf("ByID(a) = %v after re-id, want nil", got)
	}
	if got := ix.ByID("a2"); got != divA {
		t.Errorf("ByID(a2) = %v after re-id, want div", got)
	}

	divA.RemoveAttr("class")
	if got := ix.CountAttr("class", "box"); got != 1 {
		t.Errorf("CountAttr(class=box) = %d after RemoveAttr, want 1", got)
	}
	divA.SetAttr("data-k", "v")
	if got := ix.CountAttr("data-k", "v"); got != 1 {
		t.Errorf("CountAttr(data-k=v) = %d after SetAttr, want 1", got)
	}
}

func TestGenerationCounterAdvancesOnEveryMutation(t *testing.T) {
	d, divA, divB := testDoc(t)
	ix := d.Index()

	last := ix.Generation()
	bumped := func(what string) {
		t.Helper()
		if g := ix.Generation(); g <= last {
			t.Errorf("generation did not advance after %s (still %d)", what, g)
		} else {
			last = g
		}
	}

	divA.AppendChild(NewElement("p"))
	bumped("AppendChild")
	divA.FirstChild().Detach()
	bumped("Detach")
	divA.SetAttr("id", "z")
	bumped("SetAttr change")
	divA.RemoveAttr("id")
	bumped("RemoveAttr")
	divB.SetTextContent("replaced")
	bumped("SetTextContent")
	divB.FirstChild().SetData("edited")
	bumped("SetData")
	divB.FirstChild().AppendData("!")
	bumped("AppendData")
	divB.SetValue("typed")
	bumped("SetValue")
	divB.AppendValue("x")
	bumped("AppendValue")

	// No-op writes must not invalidate caches.
	divB.SetValue("typedx")
	if g := ix.Generation(); g != last {
		t.Errorf("generation advanced on no-op SetValue: %d != %d", g, last)
	}
	divA.SetAttr("class", "box")
	if g := ix.Generation(); g != last {
		t.Errorf("generation advanced on no-op SetAttr: %d != %d", g, last)
	}
}

func TestCompareDocumentOrder(t *testing.T) {
	d, divA, divB := testDoc(t)
	spanA := divA.FirstChild()
	spanB := divB.FirstChild()

	cases := []struct {
		a, b *Node
		want int // sign
	}{
		{divA, divB, -1},
		{divB, divA, 1},
		{divA, spanA, -1}, // ancestor precedes descendant
		{spanA, divA, 1},
		{spanA, spanB, -1},
		{d.Body(), spanB, -1},
		{divA, divA, 0},
	}
	for _, c := range cases {
		got := CompareDocumentOrder(c.a, c.b)
		if sign(got) != c.want {
			t.Errorf("CompareDocumentOrder(%s, %s) = %d, want sign %d",
				c.a.Path(), c.b.Path(), got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestDocumentCloneGetsOwnIndex(t *testing.T) {
	d, divA, _ := testDoc(t)
	c := d.Clone()
	if c.Index() == nil || c.Index() == d.Index() {
		t.Fatal("clone must carry its own index")
	}
	got := c.Index().ByID("a")
	if got == nil || got == divA {
		t.Errorf("clone ByID(a) = %v, want the cloned div, not the original", got)
	}
	// Mutating the clone must not disturb the original's index.
	got.SetAttr("id", "c")
	if d.Index().ByID("a") != divA {
		t.Error("original index lost div#a after clone mutation")
	}
}
