package dom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewElementAttrs(t *testing.T) {
	n := NewElement("DIV", "id", "content", "class", "cell")
	if n.Tag != "div" {
		t.Errorf("Tag = %q, want div", n.Tag)
	}
	if got := n.ID(); got != "content" {
		t.Errorf("ID = %q, want content", got)
	}
	if got := n.AttrOr("class", ""); got != "cell" {
		t.Errorf("class = %q, want cell", got)
	}
}

func TestNewElementOddAttrsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for odd attribute count")
		}
	}()
	NewElement("div", "id")
}

func TestAppendChildSetsParent(t *testing.T) {
	p := NewElement("div")
	c := NewElement("span")
	p.AppendChild(c)
	if c.Parent() != p {
		t.Fatal("child parent not set")
	}
	if p.NumChildren() != 1 || p.FirstChild() != c {
		t.Fatal("child not appended")
	}
}

func TestAppendChildReparents(t *testing.T) {
	a := NewElement("div")
	b := NewElement("div")
	c := NewElement("span")
	a.AppendChild(c)
	b.AppendChild(c)
	if a.NumChildren() != 0 {
		t.Error("child still attached to old parent")
	}
	if c.Parent() != b {
		t.Error("child not reparented")
	}
}

func TestAppendChildCyclePanics(t *testing.T) {
	p := NewElement("div")
	c := NewElement("span")
	p.AppendChild(c)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on cycle")
		}
	}()
	c.AppendChild(p)
}

func TestInsertBefore(t *testing.T) {
	p := NewElement("ul")
	a := NewElement("li", "id", "a")
	b := NewElement("li", "id", "b")
	c := NewElement("li", "id", "c")
	p.AppendChild(a)
	p.AppendChild(c)
	p.InsertBefore(b, c)
	ids := make([]string, 0, 3)
	for _, ch := range p.Children() {
		ids = append(ids, ch.ID())
	}
	if strings.Join(ids, "") != "abc" {
		t.Fatalf("order = %v, want [a b c]", ids)
	}
}

func TestInsertBeforeNilRefAppends(t *testing.T) {
	p := NewElement("ul")
	a := NewElement("li")
	p.InsertBefore(a, nil)
	if p.LastChild() != a {
		t.Fatal("nil ref did not append")
	}
}

func TestSiblings(t *testing.T) {
	p := NewElement("div")
	a, b, c := NewText("a"), NewText("b"), NewText("c")
	p.AppendChild(a)
	p.AppendChild(b)
	p.AppendChild(c)
	if b.PrevSibling() != a || b.NextSibling() != c {
		t.Fatal("sibling navigation broken")
	}
	if a.PrevSibling() != nil || c.NextSibling() != nil {
		t.Fatal("edge siblings should be nil")
	}
}

func TestDetachAndIndex(t *testing.T) {
	p := NewElement("div")
	a := NewElement("span")
	b := NewElement("span")
	p.AppendChild(a)
	p.AppendChild(b)
	if a.Index() != 0 || b.Index() != 1 {
		t.Fatal("bad indices")
	}
	a.Detach()
	if a.Parent() != nil || a.Index() != -1 {
		t.Fatal("detach did not clear parent")
	}
	if b.Index() != 0 {
		t.Fatal("sibling index not updated after detach")
	}
}

func TestElementIndexCountsSameTagOnly(t *testing.T) {
	p := NewElement("tr")
	d1 := NewElement("td")
	s := NewElement("span")
	d2 := NewElement("td")
	p.AppendChild(d1)
	p.AppendChild(s)
	p.AppendChild(d2)
	if d1.ElementIndex() != 1 || d2.ElementIndex() != 2 {
		t.Fatalf("ElementIndex = %d,%d want 1,2", d1.ElementIndex(), d2.ElementIndex())
	}
	if s.ElementIndex() != 1 {
		t.Fatalf("span ElementIndex = %d, want 1", s.ElementIndex())
	}
}

func TestRemoveChildPanicsOnNonChild(t *testing.T) {
	p := NewElement("div")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.RemoveChild(NewElement("span"))
}

func TestReplaceChild(t *testing.T) {
	p := NewElement("div")
	old := NewElement("a")
	p.AppendChild(old)
	repl := NewElement("b")
	p.ReplaceChild(repl, old)
	if p.NumChildren() != 1 || p.FirstChild() != repl {
		t.Fatal("replace failed")
	}
	if old.Parent() != nil {
		t.Fatal("old child still attached")
	}
}

func TestContainsAndRoot(t *testing.T) {
	a := NewElement("html")
	b := NewElement("body")
	c := NewElement("div")
	a.AppendChild(b)
	b.AppendChild(c)
	if !a.Contains(c) || !a.Contains(a) {
		t.Fatal("Contains broken")
	}
	if c.Contains(a) {
		t.Fatal("Contains inverted")
	}
	if c.Root() != a {
		t.Fatal("Root broken")
	}
	if c.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", c.Depth())
	}
}

func TestAttrCaseInsensitive(t *testing.T) {
	n := NewElement("div")
	n.SetAttr("ID", "x")
	if v, ok := n.Attr("id"); !ok || v != "x" {
		t.Fatal("attribute names should be case-insensitive")
	}
	n.SetAttr("id", "y")
	if len(n.Attrs()) != 1 {
		t.Fatal("SetAttr created duplicate")
	}
	n.RemoveAttr("Id")
	if n.HasAttr("id") {
		t.Fatal("RemoveAttr failed")
	}
}

func TestTextContent(t *testing.T) {
	n := NewElement("div")
	n.AppendChild(NewText("Hello "))
	span := NewElement("span")
	span.AppendChild(NewText("world"))
	n.AppendChild(span)
	n.AppendChild(NewText("!"))
	if got := n.TextContent(); got != "Hello world!" {
		t.Fatalf("TextContent = %q", got)
	}
	if got := n.OwnText(); got != "Hello !" {
		t.Fatalf("OwnText = %q", got)
	}
}

func TestSetTextContent(t *testing.T) {
	n := NewElement("div")
	n.AppendChild(NewElement("span"))
	n.SetTextContent("plain")
	if n.NumChildren() != 1 || n.FirstChild().Type != TextNode {
		t.Fatal("SetTextContent did not replace children")
	}
	n.SetTextContent("")
	if n.NumChildren() != 0 {
		t.Fatal("empty SetTextContent should remove all children")
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	root := NewElement("a")
	b := NewElement("b")
	c := NewElement("c")
	root.AppendChild(b)
	b.AppendChild(c)
	root.AppendChild(NewElement("d"))
	var tags []string
	root.Walk(func(n *Node) bool {
		tags = append(tags, n.Tag)
		return true
	})
	if strings.Join(tags, "") != "abcd" {
		t.Fatalf("walk order = %v", tags)
	}
	tags = nil
	root.Walk(func(n *Node) bool {
		tags = append(tags, n.Tag)
		return n.Tag != "b"
	})
	if strings.Join(tags, "") != "ab" {
		t.Fatalf("early stop order = %v", tags)
	}
}

func TestFindAndByID(t *testing.T) {
	root := NewElement("div")
	target := NewElement("span", "id", "x")
	root.AppendChild(NewElement("span"))
	root.AppendChild(target)
	if root.ByID("x") != target {
		t.Fatal("ByID failed")
	}
	if root.ByID("missing") != nil {
		t.Fatal("ByID found a ghost")
	}
	all := root.FindAll(func(n *Node) bool { return n.Tag == "span" })
	if len(all) != 2 {
		t.Fatalf("FindAll = %d spans, want 2", len(all))
	}
}

func TestCloneDeepIndependence(t *testing.T) {
	root := NewElement("div", "id", "orig")
	child := NewElement("span")
	child.AppendChild(NewText("hi"))
	root.AppendChild(child)
	root.AddListener(Listener{Type: "click", Fn: 1})

	c := root.Clone(true)
	if c.OuterHTML() != root.OuterHTML() {
		t.Fatalf("clone differs: %q vs %q", c.OuterHTML(), root.OuterHTML())
	}
	if c.HasListener("click") {
		t.Fatal("listeners must not be cloned")
	}
	c.SetAttr("id", "copy")
	if root.ID() != "orig" {
		t.Fatal("clone shares attrs with original")
	}
	c.FirstChild().SetTextContent("bye")
	if root.TextContent() != "hi" {
		t.Fatal("clone shares children with original")
	}
}

func TestCloneShallow(t *testing.T) {
	root := NewElement("div")
	root.AppendChild(NewElement("span"))
	c := root.Clone(false)
	if c.NumChildren() != 0 {
		t.Fatal("shallow clone copied children")
	}
}

func TestListeners(t *testing.T) {
	n := NewElement("button")
	n.AddListener(Listener{Type: "click", Fn: "a"})
	n.AddListener(Listener{Type: "click", Capture: true, Fn: "b"})
	n.AddListener(Listener{Type: "keydown", Fn: "c"})
	if got := len(n.ListenersFor("click")); got != 2 {
		t.Fatalf("click listeners = %d, want 2", got)
	}
	if !n.HasListener("keydown") || n.HasListener("focus") {
		t.Fatal("HasListener broken")
	}
	n.RemoveListeners("click")
	if n.HasListener("click") || !n.HasListener("keydown") {
		t.Fatal("RemoveListeners(type) broken")
	}
	n.RemoveListeners("")
	if n.HasListener("keydown") {
		t.Fatal("RemoveListeners(all) broken")
	}
}

func TestPath(t *testing.T) {
	html := NewElement("html")
	body := NewElement("body")
	div := NewElement("div", "id", "content")
	span := NewElement("span")
	html.AppendChild(body)
	body.AppendChild(div)
	div.AppendChild(span)
	if got := span.Path(); got != "html/body/div#content/span" {
		t.Fatalf("Path = %q", got)
	}
}

func TestIsEditable(t *testing.T) {
	if !NewElement("input").IsEditable() {
		t.Error("input should be editable")
	}
	if !NewElement("textarea").IsEditable() {
		t.Error("textarea should be editable")
	}
	if NewElement("div").IsEditable() {
		t.Error("plain div should not be editable")
	}
	ce := NewElement("div", "contenteditable", "true")
	inner := NewElement("span")
	ce.AppendChild(inner)
	if !ce.IsEditable() || !inner.IsEditable() {
		t.Error("contenteditable should propagate to descendants")
	}
	if NewText("x").IsEditable() {
		t.Error("text node is not editable")
	}
}

func TestNodeTypeString(t *testing.T) {
	cases := map[NodeType]string{
		ElementNode:  "element",
		TextNode:     "text",
		CommentNode:  "comment",
		DocumentNode: "document",
		NodeType(99): "NodeType(99)",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

// Property: TextContent is invariant under wrapping text in extra spans.
func TestTextContentWrapInvariant(t *testing.T) {
	f := func(words []string) bool {
		flat := NewElement("div")
		nested := NewElement("div")
		for _, w := range words {
			flat.AppendChild(NewText(w))
			span := NewElement("span")
			span.AppendChild(NewText(w))
			nested.AppendChild(span)
		}
		return flat.TextContent() == nested.TextContent()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone(true) always produces an identical serialization.
func TestCloneSerializationProperty(t *testing.T) {
	f := func(ids []string, texts []string) bool {
		root := NewElement("div")
		cur := root
		for i, id := range ids {
			child := NewElement("span", "id", id)
			if i < len(texts) {
				child.AppendChild(NewText(texts[i]))
			}
			cur.AppendChild(child)
			cur = child
		}
		return root.Clone(true).OuterHTML() == root.OuterHTML()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
