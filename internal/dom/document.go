package dom

import "strings"

// Document wraps a #document node together with page-level metadata. The
// browser's Frame owns a Document; scripts address it through the
// interpreter's `document` binding.
type Document struct {
	root *Node
	// URL is the address the document was loaded from.
	URL string
}

// NewDocument returns an empty document (#document node with an <html>
// element containing <head> and <body>).
func NewDocument(url string) *Document {
	root := NewDocumentNode()
	html := NewElement("html")
	html.AppendChild(NewElement("head"))
	html.AppendChild(NewElement("body"))
	root.AppendChild(html)
	buildIndex(root)
	return &Document{root: root, URL: url}
}

// WrapDocument adopts an existing #document node (as produced by the HTML
// parser) into a Document, building its query index in one walk.
func WrapDocument(root *Node, url string) *Document {
	if root == nil || root.Type != DocumentNode {
		panic("dom: WrapDocument requires a #document node")
	}
	if root.qidx == nil {
		buildIndex(root)
	}
	return &Document{root: root, URL: url}
}

// Root returns the #document node.
func (d *Document) Root() *Node { return d.root }

// DocumentElement returns the <html> element, or nil.
func (d *Document) DocumentElement() *Node {
	for _, c := range d.root.ChildElements() {
		if c.Tag == "html" {
			return c
		}
	}
	return nil
}

// Head returns the <head> element, or nil.
func (d *Document) Head() *Node { return d.firstIn("head") }

// Body returns the <body> element, or nil.
func (d *Document) Body() *Node { return d.firstIn("body") }

func (d *Document) firstIn(tag string) *Node {
	html := d.DocumentElement()
	if html == nil {
		return nil
	}
	for _, c := range html.ChildElements() {
		if c.Tag == tag {
			return c
		}
	}
	return nil
}

// Title returns the text of the first <title> element.
func (d *Document) Title() string {
	t := d.root.Find(func(n *Node) bool {
		return n.Type == ElementNode && n.Tag == "title"
	})
	if t == nil {
		return ""
	}
	return strings.TrimSpace(t.TextContent())
}

// GetElementByID returns the first element with the given id, or nil.
// Indexed documents answer from the id table instead of walking the tree.
func (d *Document) GetElementByID(id string) *Node {
	// The walker treats a missing id attribute as "", so only non-empty
	// ids can be answered from the index's table of present attributes.
	if ix := d.root.qidx; ix != nil && id != "" {
		return ix.ByID(id)
	}
	return d.root.ByID(id)
}

// Index returns the document's query index.
func (d *Document) Index() *QueryIndex { return d.root.qidx }

// ElementsByTag returns all elements with the given tag.
func (d *Document) ElementsByTag(tag string) []*Node { return d.root.ElementsByTag(tag) }

// CreateElement returns a new detached element owned by this document.
func (d *Document) CreateElement(tag string) *Node { return NewElement(tag) }

// CreateTextNode returns a new detached text node.
func (d *Document) CreateTextNode(text string) *Node { return NewText(text) }

// Clone returns a deep copy of the document (listeners are not copied).
// The copy gets its own query index.
func (d *Document) Clone() *Document {
	root := d.root.Clone(true)
	buildIndex(root)
	return &Document{root: root, URL: d.URL}
}
