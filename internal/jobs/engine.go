package jobs

// The engine: a bounded work queue with backpressure, a worker pool,
// cancellation with causes, resumption of cancelled jobs, and graceful
// drain. Exactly one of these runs inside every face of the module —
// the one-shot CLIs build one, submit, subscribe, and print; warr-serve
// keeps one alive behind HTTP.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/image"
	"github.com/dslab-epfl/warr/internal/multiuser"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// Engine errors.
var (
	// ErrQueueFull is Submit's backpressure signal: the bounded queue
	// has no room. Callers retry later (HTTP clients see 503).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects submissions once a graceful drain began.
	ErrDraining = errors.New("jobs: engine draining")
	// ErrUnknownJob reports an id the engine never issued.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrJobFinished rejects cancelling a job already in a terminal
	// state.
	ErrJobFinished = errors.New("jobs: job already finished")
	// ErrNotResumable rejects resuming a job that is not cancelled.
	ErrNotResumable = errors.New("jobs: only a cancelled job can resume")
	// CauseDrained is the cancellation cause jobs checkpointed by a
	// deadline-bound drain carry; they resume like any cancelled job.
	CauseDrained = errors.New("jobs: checkpointed by engine drain")
)

// Options configure an Engine.
type Options struct {
	// Workers is the worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the queued-job backlog (default 64). A full
	// queue makes Submit fail with ErrQueueFull — backpressure, never
	// silent dropping.
	QueueDepth int
	// EnvFactory, when set, overrides how execution environments are
	// built per browser mode. The default builds fresh isolated
	// environments over the process's full app registry — the same
	// worlds every CLI has always used.
	EnvFactory func(mode browser.Mode) campaign.EnvFactory
	// Distributor, when set, is offered every campaign plan before it
	// executes in-process; internal/distrib implements it over a worker
	// pool. A refusal (or an in-process-only spec: custom oracle, replay
	// hooks, resumed job) falls back to the local executor — the engine
	// always has a single-process path.
	Distributor Distributor
	// Journal, when set, records every journalable submission and
	// terminal state to the write-ahead job journal, making the engine
	// crash-safe: open it with OpenJournal, hand the recovered jobs to
	// Revive, and a SIGKILL'd process resumes every journaled job on the
	// next boot. The engine does not close it.
	Journal *Journal
}

// DistSpec describes a campaign to a Distributor in wire-safe terms:
// everything a worker process needs to rebuild the exact executor the
// engine would run locally. Closures (custom oracles, hooks) cannot
// cross a process boundary, so specs carrying them are never offered.
type DistSpec struct {
	// Campaign is "navigation", "timing", or "fuzz" — it names the
	// oracle and executor shape the worker reconstructs.
	Campaign string
	// Mode is the browser build of the worker's environments.
	Mode browser.Mode
	// Replayer configures the worker's replay sessions.
	Replayer replayer.Options
	// DisablePruning is the §V-A heuristic-1 ablation.
	DisablePruning bool
	// Parallelism is the per-worker executor concurrency.
	Parallelism int
}

// Distributor executes a campaign plan across a worker pool. ok ==
// false means the plan was not distributed (no workers connected, the
// world cannot be imaged, a shared spine failed, ...) and the caller
// must execute locally; when ok, outcomes are complete and in job
// order, with findings identical to what flat local execution would
// produce.
type Distributor interface {
	DistributeCampaign(ctx context.Context, exec *campaign.Executor, plan []campaign.Job, spec DistSpec) ([]campaign.Outcome, bool)
}

// LoadDistributor is the optional capability a Distributor may add to
// execute multi-user load-campaign schedules across the worker pool.
// Schedule jobs are self-describing wire values (workload name, user
// count, schedule codec, mode, gap), so any worker can rebuild the
// exact shared world locally; ok == false falls back to in-process
// execution, and when ok the results must be complete and keyed by the
// jobs' indices — the campaign reassembles them deterministically.
type LoadDistributor interface {
	DistributeLoad(ctx context.Context, sjobs []multiuser.ScheduleJob) ([]multiuser.ScheduleResult, bool)
}

// Engine runs jobs over a bounded queue and a worker pool.
type Engine struct {
	opts Options

	queue chan *Job
	wg    sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []*Job
	factories map[browser.Mode]campaign.EnvFactory
	nextID    int
	draining  bool

	metrics metrics
}

// New starts an engine: the worker pool is live and Submit may be
// called immediately. Call Drain (or Close) to shut it down.
func New(opts Options) *Engine {
	if opts.Workers < 1 {
		opts.Workers = 2
	}
	if opts.QueueDepth < 1 {
		opts.QueueDepth = 64
	}
	if opts.EnvFactory == nil {
		opts.EnvFactory = func(mode browser.Mode) campaign.EnvFactory {
			return registry.BrowserFactory(mode)
		}
	}
	e := &Engine{
		opts:      opts,
		queue:     make(chan *Job, opts.QueueDepth),
		jobs:      make(map[string]*Job),
		factories: make(map[browser.Mode]campaign.EnvFactory),
	}
	for w := 0; w < opts.Workers; w++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for job := range e.queue {
				e.run(job)
			}
		}()
	}
	return e
}

// factory returns the (cached) environment factory for a browser mode.
func (e *Engine) factory(mode browser.Mode) campaign.EnvFactory {
	e.mu.Lock()
	defer e.mu.Unlock()
	f, ok := e.factories[mode]
	if !ok {
		f = e.opts.EnvFactory(mode)
		e.factories[mode] = f
	}
	return f
}

// Submit validates and enqueues a job. It fails fast with ErrQueueFull
// when the bounded queue is full and ErrDraining once a drain began —
// it never blocks the caller.
func (e *Engine) Submit(spec Spec) (*Job, error) {
	if spec.Kind.String() == "unknown" {
		return nil, fmt.Errorf("jobs: unknown job kind %d", spec.Kind)
	}
	if spec.Mode == 0 {
		spec.Mode = browser.DeveloperMode
	}
	return e.enqueue(spec, nil, nil)
}

// enqueue creates the Job record and offers it to the queue.
// resumeImage, when set, is an encoded checkpoint world the job's
// runner resumes from (journal revival).
func (e *Engine) enqueue(spec Spec, resumeFrom *Job, resumeImage []byte) (*Job, error) {
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil, ErrDraining
	}
	e.nextID++
	job := &Job{
		ID:          fmt.Sprintf("job-%d", e.nextID),
		Spec:        spec,
		bus:         NewBus(),
		engine:      e,
		doneCh:      make(chan struct{}),
		resumeFrom:  resumeFrom,
		resumeImage: resumeImage,
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	job.ctx, job.cancel = ctx, cancel
	job.created = now()
	job.state = StateQueued
	// The queue is buffered; a full buffer is backpressure, reported
	// synchronously while the engine lock still excludes Drain from
	// closing the channel underneath us.
	select {
	case e.queue <- job:
	default:
		e.mu.Unlock()
		cancel(ErrQueueFull)
		return nil, ErrQueueFull
	}
	e.jobs[job.ID] = job
	e.order = append(e.order, job)
	e.mu.Unlock()
	// Write-ahead: the accepted submission hits the journal before the
	// caller learns the job id, so an acknowledged job is a durable job.
	if j := e.opts.Journal; j != nil && journalable(spec) {
		si := imageSpec(spec)
		j.note(journalRecord{Rec: "submit", Job: job.ID, Spec: &si})
	}
	job.publishState()
	return job, nil
}

// Get returns a job by id.
func (e *Engine) Get(id string) (*Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	job, ok := e.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return job, nil
}

// Jobs lists every job the engine has seen, in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Job(nil), e.order...)
}

// Cancel requests cancellation of a job with the given cause (nil means
// context.Canceled). A running job stops at its next command boundary
// with a partial result; a queued job resolves to its cancelled state
// when a worker reaches it. Cancelling a finished job fails with
// ErrJobFinished.
func (e *Engine) Cancel(id string, cause error) error {
	job, err := e.Get(id)
	if err != nil {
		return err
	}
	job.mu.Lock()
	switch job.state {
	case StateDone, StateFailed, StateCancelled:
		job.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrJobFinished, id, job.state)
	}
	if cause != nil {
		job.cause = cause
	}
	job.mu.Unlock()
	job.cancel(cause)
	return nil
}

// Resume continues a cancelled job as a new job: replay jobs fork the
// retained session's world at the cancellation point and pick up at the
// next unreplayed command (falling back to a fresh full replay when the
// world cannot fork); campaign jobs re-execute only the traces that
// never reached a judgeable end and merge the rest from the cancelled
// run. The new job rides the normal queue — backpressure applies.
func (e *Engine) Resume(id string) (*Job, error) {
	job, err := e.Get(id)
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	if job.state != StateCancelled {
		state := job.state
		job.mu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s", ErrNotResumable, id, state)
	}
	if job.resumed != "" {
		resumed := job.resumed
		job.mu.Unlock()
		return nil, fmt.Errorf("jobs: %s already resumed as %s", id, resumed)
	}
	job.mu.Unlock()
	nj, err := e.enqueue(job.Spec, job, nil)
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	job.resumed = nj.ID
	job.mu.Unlock()
	// The resumed record keeps recovery from reviving the old job next
	// boot — its continuation is journaled under the new id.
	if j := e.opts.Journal; j != nil && journalable(job.Spec) {
		j.note(journalRecord{Rec: "resumed", Job: job.ID, As: nj.ID})
	}
	return nj, nil
}

// Revive resubmits journal-recovered jobs through the normal queue —
// call it once after New, with the jobs OpenJournal returned. A
// recovered replay job carrying a checkpoint image resumes from it;
// everything else re-runs whole (campaign specs are seeded, so a re-run
// reproduces the same findings — determinism is the checkpoint). Each
// revival is journaled, so a second crash never revives twice.
func (e *Engine) Revive(recovered []RecoveredJob) []*Job {
	j := e.opts.Journal
	var out []*Job
	for _, rj := range recovered {
		if rj.Spec.Kind == 0 {
			if j != nil {
				j.warnf("jobs: not reviving epoch %d %s: unknown kind", rj.Epoch, rj.ID)
			}
			continue
		}
		job, err := e.enqueue(rj.Spec, nil, rj.Image)
		if err != nil {
			if j != nil {
				j.warnf("jobs: reviving epoch %d %s: %v", rj.Epoch, rj.ID, err)
			}
			continue
		}
		if j != nil {
			j.note(journalRecord{Rec: "revived", OfEpoch: rj.Epoch, Job: rj.ID})
			j.warnf("jobs: revived epoch %d %s as %s", rj.Epoch, rj.ID, job.ID)
		}
		e.metrics.journalReplayed.Add(1)
		out = append(out, job)
	}
	return out
}

// Drain shuts the engine down gracefully: no new submissions, queued
// jobs still execute, running jobs finish — and if ctx expires first,
// every unfinished job is checkpointed (cancelled with CauseDrained, so
// its partial results are published and it remains resumable) rather
// than dropped. Drain returns once every worker has exited; it is safe
// to call more than once.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.queue)
	}
	e.mu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed: checkpoint everything still unfinished. Sessions
	// stop at their next command boundary, so the second wait is short.
	for _, job := range e.Jobs() {
		job.mu.Lock()
		terminal := job.state == StateDone || job.state == StateFailed || job.state == StateCancelled
		if !terminal && job.cause == nil {
			job.cause = CauseDrained
		}
		job.mu.Unlock()
		if !terminal {
			job.cancel(CauseDrained)
		}
	}
	<-done
	return ctx.Err()
}

// Close drains with immediate checkpointing: every unfinished job is
// cancelled with CauseDrained and the engine waits for the workers.
func (e *Engine) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = e.Drain(ctx)
}

// Draining reports whether a drain has begun.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// QueueDepth returns the current backlog and the queue's capacity.
func (e *Engine) QueueDepth() (depth, capacity int) {
	return len(e.queue), cap(e.queue)
}

// run executes one job on a worker goroutine.
func (e *Engine) run(job *Job) {
	job.setState(StateRunning)
	var err error
	switch job.Spec.Kind {
	case KindReplay:
		err = e.runReplay(job)
	case KindNavigationCampaign:
		err = e.runNavigationCampaign(job)
	case KindTimingCampaign:
		err = e.runTimingCampaign(job)
	case KindReport:
		err = e.runReport(job)
	case KindFuzzCampaign:
		err = e.runFuzzCampaign(job)
	case KindLoadCampaign:
		err = e.runLoadCampaign(job)
	default:
		err = fmt.Errorf("jobs: unknown job kind %d", job.Spec.Kind)
	}
	switch {
	case err != nil:
		job.mu.Lock()
		job.err = err
		job.mu.Unlock()
		job.setState(StateFailed)
	case context.Cause(job.ctx) != nil:
		job.mu.Lock()
		if job.cause == nil {
			job.cause = context.Cause(job.ctx)
		}
		job.mu.Unlock()
		job.setState(StateCancelled)
	default:
		job.setState(StateDone)
	}
	e.journalFinish(job)
	job.bus.Close()
}

// journalFinish records a job's terminal state in the write-ahead
// journal, first checkpointing a cancelled single-session replay's
// world so revival can resume mid-trace instead of re-running. A
// capture that fails only costs the checkpoint — the job still revives
// as a full re-run.
func (e *Engine) journalFinish(job *Job) {
	j := e.opts.Journal
	if j == nil || !journalable(job.Spec) {
		return
	}
	job.mu.Lock()
	state, cause, err := job.state, job.cause, job.err
	sess := job.session
	job.mu.Unlock()
	if state == StateCancelled && sess != nil && job.Spec.Kind == KindReplay {
		if img, cerr := image.CaptureSession(sess, image.Header{}); cerr != nil {
			j.warnf("jobs: checkpointing %s: %v", job.ID, cerr)
		} else if data, _, eerr := image.Encode(img); eerr != nil {
			j.warnf("jobs: encoding %s checkpoint: %v", job.ID, eerr)
		} else {
			j.note(journalRecord{Rec: "checkpoint", Job: job.ID, Image: data})
		}
	}
	rec := journalRecord{Rec: "state", Job: job.ID, State: state.String()}
	if cause != nil {
		rec.Cause = cause.Error()
	}
	if err != nil {
		rec.Error = err.Error()
	}
	j.note(rec)
}
