package jobs

// Write-ahead journal tests: the crash-safety contract. A SIGKILL'd
// engine is simulated by copying the journal file at the kill instant —
// appends are fsync'd, so the copy is byte-faithful to what a killed
// process would leave behind — and replaying the copy into a fresh
// engine, which must resume every journaled job with results identical
// to an uninterrupted run.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// copyJournal snapshots the journal file — the state a SIGKILL at this
// instant would leave on disk.
func copyJournal(t *testing.T, src string) string {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "killed.journal")
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

func engineMetric(t *testing.T, e *Engine, name string) string {
	t.Helper()
	var b strings.Builder
	if err := e.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return v
		}
	}
	t.Fatalf("metric %s not present in:\n%s", name, b.String())
	return ""
}

// TestJournalRevivesKilledJobs is the SIGKILL restart path: an engine
// with a running job and a queued backlog is "killed" (journal copied
// mid-flight), and a fresh engine booted from the copy must revive
// every journaled job — running and queued alike — and finish them
// with results identical to uninterrupted runs. Non-journalable
// submissions (in-process grammar closures) must stay out of the
// journal rather than revive broken.
func TestJournalRevivesKilledJobs(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	ctr := recordScenario(t, apps.EditSiteScenario())

	// Uninterrupted references.
	ref := New(Options{Workers: 1, QueueDepth: 8})
	refReplay, err := ref.Submit(Spec{Kind: KindReplay, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	refCampaign, err := ref.Submit(Spec{Kind: KindNavigationCampaign, Trace: ctr})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, refReplay)
	waitJob(t, refCampaign)
	ref.Close()

	path := filepath.Join(t.TempDir(), "jobs.journal")
	j1, recovered, err := OpenJournal(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j1.Close()
	if len(recovered) != 0 {
		t.Fatalf("fresh journal recovered %d jobs", len(recovered))
	}

	e1 := New(Options{Workers: 1, QueueDepth: 8, Journal: j1})
	defer e1.Close()

	// The running job blocks on its first step, pinning the queue.
	release := make(chan struct{})
	var once sync.Once
	blocker := Spec{Kind: KindReplay, Trace: tr, Replayer: replayer.Options{
		Hooks: []replayer.Hooks{{
			BeforeStep: func(idx int, cmd command.Command, tab *browser.Tab) {
				once.Do(func() { <-release })
			},
		}},
	}}
	if _, err := e1.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Submit(Spec{Kind: KindReplay, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Submit(Spec{Kind: KindNavigationCampaign, Trace: ctr}); err != nil {
		t.Fatal(err)
	}
	// A grammar-injected campaign cannot cross the process boundary and
	// must not be journaled.
	tree, err := weberr.InferTaskTree(apps.BrowserFactory(browser.DeveloperMode), ctr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Submit(Spec{Kind: KindNavigationCampaign, Grammar: weberr.FromTaskTree(tree)}); err != nil {
		t.Fatal(err)
	}

	killed := copyJournal(t, path) // SIGKILL happens here
	close(release)

	j2, recovered, err := OpenJournal(killed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recovered) != 3 {
		ids := make([]string, len(recovered))
		for i, rj := range recovered {
			ids[i] = fmt.Sprintf("epoch %d %s", rj.Epoch, rj.ID)
		}
		t.Fatalf("recovered %d jobs (%v), want the 3 journalable ones", len(recovered), ids)
	}

	e2 := New(Options{Workers: 1, QueueDepth: 8, Journal: j2})
	defer e2.Close()
	revived := e2.Revive(recovered)
	if len(revived) != 3 {
		t.Fatalf("revived %d jobs, want 3", len(revived))
	}
	for _, job := range revived {
		waitJob(t, job)
		if job.State() != StateDone {
			t.Fatalf("revived job %s ended %s (err %v)", job.ID, job.State(), job.Err())
		}
	}
	if got := engineMetric(t, e2, "warr_journal_replayed_jobs"); got != "3" {
		t.Errorf("warr_journal_replayed_jobs = %s, want 3", got)
	}

	// Revived replays (the blocker re-runs whole — hooks are observers
	// and never journaled) must match the uninterrupted reference.
	want := refReplay.Result()
	for _, job := range revived[:2] {
		res := job.Result()
		if res.Played != want.Played || res.Failed != want.Failed || len(res.Steps) != len(want.Steps) {
			t.Errorf("revived %s result (%d/%d, %d steps) diverged from uninterrupted (%d/%d, %d steps)",
				job.ID, res.Played, res.Failed, len(res.Steps), want.Played, want.Failed, len(want.Steps))
		}
	}
	// The revived campaign's final report must be unchanged.
	rep := revived[2].Report()
	if rep == nil {
		t.Fatal("revived campaign produced no report")
	}
	if !reflect.DeepEqual(findingKeys(refCampaign.Report()), findingKeys(rep)) {
		t.Errorf("revived campaign findings diverged\nuninterrupted: %v\nrevived:       %v",
			findingKeys(refCampaign.Report()), findingKeys(rep))
	}

	// A second crash never revives twice: rebooting from the same
	// journal after the revived jobs finished recovers nothing.
	j2.Close()
	j3, again, err := OpenJournal(killed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(again) != 0 {
		t.Fatalf("second boot recovered %d jobs, want 0", len(again))
	}
}

// TestJournalRevivesDrainCheckpointedReplay is the warr-serve shutdown
// contract: a replay interrupted by an exhausted drain is checkpointed
// (world image in the journal), and the next boot resumes it
// mid-trace to the same final result as an uninterrupted run.
func TestJournalRevivesDrainCheckpointedReplay(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	if len(tr.Commands) < 4 {
		t.Fatalf("scenario too short to interrupt: %d commands", len(tr.Commands))
	}

	ref := New(Options{Workers: 1, QueueDepth: 2})
	refJob, err := ref.Submit(Spec{Kind: KindReplay, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, refJob)
	want := refJob.Result()
	ref.Close()

	path := filepath.Join(t.TempDir(), "jobs.journal")
	j1, _, err := OpenJournal(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j1.Close()
	e1 := New(Options{Workers: 1, QueueDepth: 2, Journal: j1})

	// Slow replay: the drain must catch it mid-trace.
	stepped := make(chan struct{}, len(tr.Commands))
	slow := Spec{Kind: KindReplay, Trace: tr, Replayer: replayer.Options{
		Hooks: []replayer.Hooks{{
			AfterStep: func(step replayer.Step, tab *browser.Tab) {
				stepped <- struct{}{}
				time.Sleep(25 * time.Millisecond)
			},
		}},
	}}
	job, err := e1.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-stepped:
	case <-time.After(30 * time.Second):
		t.Fatal("the slow replay never started stepping")
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	_ = e1.Drain(expired)
	if job.State() != StateCancelled {
		t.Fatalf("drained job ended %s, want cancelled", job.State())
	}
	partial := len(job.Result().Steps)
	if partial == 0 || partial >= len(tr.Commands) {
		t.Fatalf("drain was not mid-trace: %d of %d steps", partial, len(tr.Commands))
	}

	killed := copyJournal(t, path)
	j2, recovered, err := OpenJournal(killed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recovered) != 1 {
		t.Fatalf("recovered %d jobs, want the drained one", len(recovered))
	}
	if len(recovered[0].Image) == 0 {
		t.Fatal("drained replay recovered without its checkpoint image")
	}

	e2 := New(Options{Workers: 1, QueueDepth: 2, Journal: j2})
	defer e2.Close()
	revived := e2.Revive(recovered)
	if len(revived) != 1 {
		t.Fatalf("revived %d jobs, want 1", len(revived))
	}
	waitJob(t, revived[0])
	if revived[0].State() != StateDone {
		t.Fatalf("revived job ended %s (err %v)", revived[0].State(), revived[0].Err())
	}
	res := revived[0].Result()
	if res.Cancelled || res.Played != want.Played || res.Failed != want.Failed || len(res.Steps) != len(want.Steps) {
		t.Fatalf("revived result (%d/%d, %d steps, cancelled=%v) diverged from uninterrupted (%d/%d, %d steps)",
			res.Played, res.Failed, len(res.Steps), res.Cancelled, want.Played, want.Failed, len(want.Steps))
	}
	for i := range res.Steps {
		if res.Steps[i].Status != want.Steps[i].Status {
			t.Errorf("step %d: revived %v, uninterrupted %v", i, res.Steps[i].Status, want.Steps[i].Status)
		}
	}
	// The revived stream re-publishes the checkpointed prefix, so a
	// subscriber sees every command exactly once.
	var steps int
	for _, ev := range drainEvents(t, revived[0]) {
		if _, ok := ev.(StepEvent); ok {
			steps++
		}
	}
	if steps != len(tr.Commands) {
		t.Errorf("revived stream carried %d step events, want %d", steps, len(tr.Commands))
	}
}

// TestJournalSkipsUserCancelledJobs pins the revival filter: a job the
// user cancelled on purpose reached its terminal state deliberately
// and must stay dead across reboots — only drain-checkpointed
// cancellations revive.
func TestJournalSkipsUserCancelledJobs(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j1, _, err := OpenJournal(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j1.Close()
	e1 := New(Options{Workers: 1, QueueDepth: 2, Journal: j1})
	defer e1.Close()

	stepped := make(chan struct{}, len(tr.Commands))
	slow := Spec{Kind: KindReplay, Trace: tr, Replayer: replayer.Options{
		Hooks: []replayer.Hooks{{
			AfterStep: func(step replayer.Step, tab *browser.Tab) {
				stepped <- struct{}{}
				time.Sleep(10 * time.Millisecond)
			},
		}},
	}}
	job, err := e1.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-stepped:
	case <-time.After(30 * time.Second):
		t.Fatal("the slow replay never started stepping")
	}
	if err := e1.Cancel(job.ID, nil); err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	if job.State() != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", job.State())
	}

	killed := copyJournal(t, path)
	j2, recovered, err := OpenJournal(killed, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recovered) != 0 {
		t.Fatalf("recovered %d jobs, want 0: user cancellation is deliberate", len(recovered))
	}
}

// TestJournalTornTailRecovery pins the corrupted-journal contract: the
// torn or garbled last write of a crash is detected, warned about, and
// truncated away — never a panic, and never poison for the records
// before it or after the next boot.
func TestJournalTornTailRecovery(t *testing.T) {
	si := imageSpec(Spec{Kind: KindReplay})
	cases := []struct {
		name string
		tail string
		warn string
	}{
		{"truncated", `{"rec":"state","job":"job-1","state":"done"`, "truncated record"},
		{"corrupted", "not json at all\x01\xff\n", "corrupted record"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "jobs.journal")
			j1, _, err := OpenJournal(path, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			j1.note(journalRecord{Rec: "submit", Job: "job-1", Spec: &si})
			j1.note(journalRecord{Rec: "submit", Job: "job-2", Spec: &si})
			if err := j1.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(c.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			var mu sync.Mutex
			var warnings []string
			logf := func(format string, args ...any) {
				mu.Lock()
				warnings = append(warnings, fmt.Sprintf(format, args...))
				mu.Unlock()
			}
			j2, recovered, err := OpenJournal(path, logf)
			if err != nil {
				t.Fatalf("reopening journal with a %s tail: %v", c.name, err)
			}
			if len(recovered) != 2 {
				t.Fatalf("recovered %d jobs, want both good submits", len(recovered))
			}
			warned := false
			for _, w := range warnings {
				if strings.Contains(w, c.warn) {
					warned = true
				}
			}
			if !warned {
				t.Errorf("no %q warning in %q", c.warn, warnings)
			}
			// New records append cleanly past the truncation point and
			// the next scan reads the whole history undisturbed: marking
			// epoch-1 job-1 revived (what Engine.Revive writes) must
			// keep it from recovering again.
			j2.note(journalRecord{Rec: "revived", OfEpoch: 1, Job: "job-1"})
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			j3, recovered, err := OpenJournal(path, func(format string, args ...any) {
				t.Errorf("clean reopen warned: "+format, args...)
			})
			if err != nil {
				t.Fatal(err)
			}
			defer j3.Close()
			if len(recovered) != 1 || recovered[0].ID != "job-2" || recovered[0].Epoch != 1 {
				t.Fatalf("final recovery %+v, want exactly epoch-1 job-2 (job-1 was revived after the repair)", recovered)
			}
		})
	}
}

// TestJournalForwardReadable pins forward compatibility: record kinds a
// newer build might write pass through an older scan without warnings,
// truncation, or recovery damage.
func TestJournalForwardReadable(t *testing.T) {
	si := imageSpec(Spec{Kind: KindReplay})
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j1, _, err := OpenJournal(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	j1.note(journalRecord{Rec: "submit", Job: "job-1", Spec: &si})
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"rec":"shiny-new-thing","payload":42}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recovered, err := OpenJournal(path, func(format string, args ...any) {
		t.Errorf("forward-compatible record warned: "+format, args...)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recovered) != 1 || recovered[0].ID != "job-1" {
		t.Fatalf("recovery %+v, want job-1 untouched by the unknown record", recovered)
	}
}
