package jobs

// Load-campaign jobs: the engine face of internal/multiuser. The
// contract under test — the engine's report is byte-identical to a
// direct multiuser.Run with the same options (one execution path), the
// event stream carries progress and a closing frame with the final
// counters, the report event renders findings as interleave
// injections, and the campaign counters land on /metrics.

import (
	"context"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/multiuser"
	"github.com/dslab-epfl/warr/internal/weberr"
)

func TestLoadCampaignJobMatchesDirectRun(t *testing.T) {
	spec := Spec{
		Kind:           KindLoadCampaign,
		Workload:       "sites-notes",
		Users:          2,
		Cohort:         2,
		ScheduleBudget: 4,
		ScheduleSeed:   1,
	}

	direct, err := multiuser.Run(context.Background(), multiuser.Options{
		Workload: spec.Workload,
		Users:    spec.Users,
		Cohort:   spec.Cohort,
		Budget:   spec.ScheduleBudget,
		Seed:     spec.ScheduleSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Findings) == 0 {
		t.Fatal("the reference run surfaced no findings; the test needs a contention bug")
	}

	e := New(Options{Workers: 1})
	defer e.Close()
	job, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	if got := job.State(); got != StateDone {
		t.Fatalf("job state = %s, want done", got)
	}

	rep := job.LoadReport()
	if rep == nil {
		t.Fatal("job retained no load report")
	}
	if rep.Render() != direct.Render() {
		t.Errorf("engine report differs from direct run:\n engine:\n%s direct:\n%s", rep.Render(), direct.Render())
	}

	var progress, closing []LoadEvent
	var reports []ReportEvent
	for _, ev := range drainEvents(t, job) {
		switch v := ev.(type) {
		case LoadEvent:
			if v.CoverageBits > 0 || v.Findings > 0 {
				closing = append(closing, v)
			} else {
				progress = append(progress, v)
			}
		case ReportEvent:
			reports = append(reports, v)
		}
	}
	if len(progress) == 0 {
		t.Error("no progress load events published")
	}
	if len(closing) != 1 {
		t.Fatalf("closing load events = %d, want 1", len(closing))
	}
	fin := closing[0]
	if fin.Workload != rep.Workload || fin.Users != rep.Users || fin.Worlds != rep.Worlds ||
		fin.WorldsDone != rep.Worlds || fin.Executed != rep.Executed || fin.Shared != rep.Shared ||
		fin.CoverageBits != rep.CoverageBits || fin.Findings != len(rep.Findings) {
		t.Errorf("closing frame %+v does not match report %+v", fin, rep)
	}
	if len(reports) != 1 {
		t.Fatalf("report events = %d, want 1", len(reports))
	}
	if reports[0].Campaign != "load" {
		t.Errorf("report campaign = %q, want load", reports[0].Campaign)
	}
	if len(reports[0].Findings) != len(rep.Findings) {
		t.Fatalf("report findings = %d, want %d", len(reports[0].Findings), len(rep.Findings))
	}
	wantInj := weberr.Injection{Kind: weberr.Interleave, Detail: rep.Findings[0].Schedule}.String()
	if got := reports[0].Findings[0].Injection; got != wantInj {
		t.Errorf("finding injection = %q, want %q", got, wantInj)
	}

	var metrics strings.Builder
	if err := e.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"warr_load_users_total 2",
		"warr_load_findings_total 2",
		"warr_load_last_users 2",
		`warr_jobs_total{kind="load-campaign",state="done"} 1`,
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}
}

func TestLoadCampaignJobRejectsUnknownWorkload(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	job, err := e.Submit(Spec{Kind: KindLoadCampaign, Workload: "no-such-workload"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	if got := job.State(); got != StateFailed {
		t.Fatalf("job state = %s, want failed", got)
	}
	if job.Err() == nil || !strings.Contains(job.Err().Error(), "no-such-workload") {
		t.Errorf("job error = %v, want unknown-workload", job.Err())
	}
}

// fakeLoadDistributor satisfies Distributor (trivially refusing) and
// LoadDistributor, executing schedule jobs out of order the way a
// remote pool completes them.
type fakeLoadDistributor struct {
	Distributor
	offered int
}

func (d *fakeLoadDistributor) DistributeLoad(ctx context.Context, sjobs []multiuser.ScheduleJob) ([]multiuser.ScheduleResult, bool) {
	d.offered += len(sjobs)
	results := make([]multiuser.ScheduleResult, len(sjobs))
	for i := len(sjobs) - 1; i >= 0; i-- {
		results[len(sjobs)-1-i] = multiuser.ExecuteScheduleJob(sjobs[i])
	}
	return results, true
}

func TestLoadCampaignThroughDistributorMatchesLocal(t *testing.T) {
	spec := Spec{
		Kind:           KindLoadCampaign,
		Workload:       "docs-tally",
		Users:          4,
		Cohort:         2,
		ScheduleBudget: 3,
		ScheduleSeed:   7,
	}

	local := New(Options{Workers: 1})
	defer local.Close()
	lj, err := local.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, lj)

	dist := &fakeLoadDistributor{}
	remote := New(Options{Workers: 1, Distributor: dist})
	defer remote.Close()
	rj, err := remote.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, rj)

	if lj.State() != StateDone || rj.State() != StateDone {
		t.Fatalf("states: local %s, remote %s, want done/done", lj.State(), rj.State())
	}
	if dist.offered == 0 {
		t.Fatal("the distributor was never offered the schedule jobs")
	}
	if lj.LoadReport().Render() != rj.LoadReport().Render() {
		t.Errorf("distributed report differs from local:\n local:\n%s remote:\n%s",
			lj.LoadReport().Render(), rj.LoadReport().Render())
	}
}
