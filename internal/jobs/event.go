// Package jobs is the shared job engine behind every face of this
// module: a typed job (one-shot replay, WebErr navigation/timing
// campaign, AUsER report ingestion) over the replayer.Session and
// campaign.Executor APIs, a bounded work queue with backpressure and
// graceful drain, a per-job event bus streaming step-by-step results,
// cancellation via context and resumption via Session forking, and
// Prometheus-style metrics. The command-line tools submit jobs to an
// in-process engine and print its events; warr-serve exposes the same
// engine over HTTP/SSE — so there is exactly one execution path no
// matter which face drives it.
package jobs

// This file defines the event vocabulary and its JSON-lines encoding.
// The step/summary/skipped shapes are the machine-readable per-step
// format warr-replay's -json flag has emitted since the session API
// landed; they moved here verbatim (field names, order, omitempty
// semantics — the encoding is pinned byte-for-byte by tests) so the CLI
// stdout stream, the SSE stream, and job logs all come from one
// encoder. The remaining shapes are service-level: job state
// transitions, per-trace campaign outcomes, campaign reports, and AUsER
// ingestion classifications.

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// Event is one entry in a job's event stream. Every concrete event is a
// flat JSON object whose "type" field names its shape.
type Event interface {
	// EventType returns the value of the event's "type" field.
	EventType() string
}

// StepEvent reports one replayed command — the machine-readable shape
// warr-replay -json prints per step.
type StepEvent struct {
	Type      string `json:"type"`
	Index     int    `json:"index"`
	Action    string `json:"action"`
	XPath     string `json:"xpath"`
	Status    string `json:"status"`
	UsedXPath string `json:"usedXPath,omitempty"`
	Heuristic string `json:"heuristic,omitempty"`
	Error     string `json:"error,omitempty"`
}

func (StepEvent) EventType() string { return "step" }

// NewStepEvent converts a replayed step into its event.
func NewStepEvent(step replayer.Step) StepEvent {
	ev := StepEvent{
		Type:      "step",
		Index:     step.Index,
		Action:    step.Cmd.Action.String(),
		XPath:     step.Cmd.XPath,
		Status:    step.Status.String(),
		UsedXPath: step.UsedXPath,
		Heuristic: step.Heuristic,
	}
	if step.Err != nil {
		ev.Error = step.Err.Error()
	}
	return ev
}

// SummaryEvent reports a finished replay (one per session; one per
// replica for replicated replays).
type SummaryEvent struct {
	Type          string   `json:"type"`
	Replica       int      `json:"replica"`
	Commands      int      `json:"commands"`
	Played        int      `json:"played"`
	Failed        int      `json:"failed"`
	Halted        bool     `json:"halted"`
	Cancelled     bool     `json:"cancelled"`
	Complete      bool     `json:"complete"`
	FinalURL      string   `json:"finalURL,omitempty"`
	Title         string   `json:"title,omitempty"`
	ConsoleErrors []string `json:"consoleErrors,omitempty"`
}

func (SummaryEvent) EventType() string { return "summary" }

// NewSummaryEvent summarizes a replay result. tab may be nil (replica
// summaries do not expose per-replica page state).
func NewSummaryEvent(replica, commands int, res *replayer.Result, tab *browser.Tab) SummaryEvent {
	ev := SummaryEvent{
		Type:      "summary",
		Replica:   replica,
		Commands:  commands,
		Played:    res.Played,
		Failed:    res.Failed,
		Halted:    res.Halted,
		Cancelled: res.Cancelled,
		Complete:  res.Complete(),
	}
	if tab != nil {
		ev.FinalURL = tab.URL()
		ev.Title = tab.Title()
		for _, e := range tab.ConsoleErrors() {
			ev.ConsoleErrors = append(ev.ConsoleErrors, e.Message)
		}
	}
	return ev
}

// SkippedEvent reports a replica whose replay never started because the
// job was cancelled first.
type SkippedEvent struct {
	Type    string `json:"type"`
	Replica int    `json:"replica"`
}

func (SkippedEvent) EventType() string { return "skipped" }

// StateEvent reports a job state transition.
type StateEvent struct {
	Type  string `json:"type"`
	Job   string `json:"job"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Cause records why a job was cancelled; Error records why it
	// failed.
	Cause string `json:"cause,omitempty"`
	Error string `json:"error,omitempty"`
}

func (StateEvent) EventType() string { return "state" }

// OutcomeEvent reports one campaign trace's fate, in job order.
type OutcomeEvent struct {
	Type      string `json:"type"`
	Index     int    `json:"index"`
	Injection string `json:"injection,omitempty"`
	// Status is replayed, pruned, skipped, or cancelled.
	Status  string `json:"status"`
	Played  int    `json:"played"`
	Failed  int    `json:"failed"`
	Finding bool   `json:"finding"`
	// Observed is the oracle's observation for findings.
	Observed string `json:"observed,omitempty"`
	// Coverage is the hex-encoded coverage fingerprint of the replay
	// (fuzz campaigns only; empty otherwise). It rides the same outcome
	// shape over the distrib wire so the coordinator can merge worker
	// coverage deterministically.
	Coverage string `json:"coverage,omitempty"`
}

func (OutcomeEvent) EventType() string { return "outcome" }

// FindingRecord is one campaign finding in a ReportEvent.
type FindingRecord struct {
	Injection string `json:"injection"`
	Observed  string `json:"observed"`
}

// ReportEvent summarizes a finished campaign.
type ReportEvent struct {
	Type string `json:"type"`
	// Campaign is navigation or timing.
	Campaign       string          `json:"campaign"`
	Generated      int             `json:"generated"`
	Replayed       int             `json:"replayed"`
	Pruned         int             `json:"pruned"`
	Skipped        int             `json:"skipped"`
	ReplayFailures int             `json:"replayFailures"`
	Findings       []FindingRecord `json:"findings,omitempty"`
}

func (ReportEvent) EventType() string { return "report" }

// FuzzEvent reports a fuzz campaign's running stats, published after
// every absorbed batch — the SSE progress lane of `weberr -fuzz` and
// warr-serve fuzz jobs.
type FuzzEvent struct {
	Type         string `json:"type"`
	Generated    int    `json:"generated"`
	Deduped      int    `json:"deduped"`
	Pruned       int    `json:"pruned"`
	Replayed     int    `json:"replayed"`
	Skipped      int    `json:"skipped"`
	Novel        int    `json:"novel"`
	CorpusSize   int    `json:"corpusSize"`
	CoverageBits int    `json:"coverageBits"`
	Findings     int    `json:"findings"`
	Budget       int    `json:"budget"`
	Spent        int    `json:"spent"`
}

func (FuzzEvent) EventType() string { return "fuzz" }

// LoadEvent reports a load campaign's running progress, published as
// worlds are absorbed — the SSE progress lane of warr-load and
// warr-serve load jobs. The closing frame carries the final counters.
type LoadEvent struct {
	Type     string `json:"type"`
	Workload string `json:"workload"`
	// Users is the campaign's total virtual user count.
	Users int `json:"users"`
	// Worlds and WorldsDone track shared-world absorption.
	Worlds     int `json:"worlds"`
	WorldsDone int `json:"worldsDone"`
	// Executed counts schedules actually run; Shared counts world
	// schedules served from an identical already-executed run.
	Executed int `json:"executed"`
	Shared   int `json:"shared"`
	// CoverageBits and Findings are only set on the closing frame.
	CoverageBits int `json:"coverageBits,omitempty"`
	Findings     int `json:"findings,omitempty"`
}

func (LoadEvent) EventType() string { return "load" }

// ClassificationEvent reports the outcome of AUsER report ingestion:
// the server-side replay → minimize → classify pipeline (Fig. 1).
type ClassificationEvent struct {
	Type string `json:"type"`
	// Verdict is console-error, replay-failure, replay-halted, or
	// no-repro.
	Verdict string `json:"verdict"`
	// Signal is the observation the classification rests on (first
	// console error, first failed command).
	Signal string `json:"signal,omitempty"`
	// Commands and MinimizedCommands compare the reported trace with
	// the minimized reproducer.
	Commands          int `json:"commands"`
	MinimizedCommands int `json:"minimizedCommands"`
	// Replays counts the replays the minimizer spent.
	Replays int `json:"replays"`
}

func (ClassificationEvent) EventType() string { return "classification" }

// Encoder writes events as JSON lines: one object per line, exactly the
// stream warr-replay -json prints and warr-serve's SSE data frames
// carry.
type Encoder struct {
	enc *json.Encoder
}

// NewEncoder returns an encoder writing JSON lines to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{enc: json.NewEncoder(w)} }

// Encode writes one event line.
func (e *Encoder) Encode(ev Event) error { return e.enc.Encode(ev) }

// EncodeEvent renders one event as its JSON line (trailing newline
// included).
func EncodeEvent(ev Event) ([]byte, error) {
	b, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeEvent parses one JSON event line into its typed event, keyed by
// the "type" field.
func DecodeEvent(line []byte) (Event, error) {
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return nil, fmt.Errorf("jobs: decoding event: %w", err)
	}
	var ev Event
	switch probe.Type {
	case "step":
		ev = &StepEvent{}
	case "summary":
		ev = &SummaryEvent{}
	case "skipped":
		ev = &SkippedEvent{}
	case "state":
		ev = &StateEvent{}
	case "outcome":
		ev = &OutcomeEvent{}
	case "report":
		ev = &ReportEvent{}
	case "fuzz":
		ev = &FuzzEvent{}
	case "load":
		ev = &LoadEvent{}
	case "classification":
		ev = &ClassificationEvent{}
	default:
		return nil, fmt.Errorf("jobs: unknown event type %q", probe.Type)
	}
	if err := json.Unmarshal(line, ev); err != nil {
		return nil, fmt.Errorf("jobs: decoding %s event: %w", probe.Type, err)
	}
	switch v := ev.(type) {
	case *StepEvent:
		return *v, nil
	case *SummaryEvent:
		return *v, nil
	case *SkippedEvent:
		return *v, nil
	case *StateEvent:
		return *v, nil
	case *OutcomeEvent:
		return *v, nil
	case *ReportEvent:
		return *v, nil
	case *FuzzEvent:
		return *v, nil
	case *LoadEvent:
		return *v, nil
	case *ClassificationEvent:
		return *v, nil
	}
	return nil, fmt.Errorf("jobs: unreachable event type %q", probe.Type)
}
