package jobs

// Prometheus-style metrics for the engine: queue depth, jobs by kind
// and state, live replay throughput counters (ns and allocations per
// replayed command), and — so an operator can compare the live numbers
// against the repo's pinned benchmarks — the BENCH_BASELINE.json
// counters re-exported as gauges. Everything is written in the
// Prometheus text exposition format; no client library is required (or
// permitted — this module has no dependencies).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the engine's live counters.
type metrics struct {
	// sessions counts replay sessions driven to an end; steps, ns and
	// allocs accumulate over their replayed commands.
	sessions atomic.Int64
	steps    atomic.Int64
	ns       atomic.Int64
	allocs   atomic.Int64

	// Fuzz-campaign counters, accumulated over every finished fuzz
	// campaign the engine ran.
	fuzzGenerated atomic.Int64
	fuzzDeduped   atomic.Int64
	fuzzNovel     atomic.Int64
	fuzzFindings  atomic.Int64

	// Load-campaign counters, accumulated over every finished load
	// campaign, plus the last campaign's user count as a gauge.
	loadUsers     atomic.Int64
	loadWorlds    atomic.Int64
	loadSchedules atomic.Int64
	loadShared    atomic.Int64
	loadFindings  atomic.Int64
	loadLastUsers atomic.Int64

	// journalReplayed counts jobs revived from the write-ahead journal
	// at boot.
	journalReplayed atomic.Int64

	mu       sync.Mutex
	baseline BenchBaseline
}

// observeLoad accumulates one finished load campaign's stats.
func (m *metrics) observeLoad(users, worlds, executed, shared, findings int) {
	m.loadUsers.Add(int64(users))
	m.loadWorlds.Add(int64(worlds))
	m.loadSchedules.Add(int64(executed))
	m.loadShared.Add(int64(shared))
	m.loadFindings.Add(int64(findings))
	m.loadLastUsers.Store(int64(users))
}

// observeFuzz accumulates one finished fuzz campaign's stats.
func (m *metrics) observeFuzz(generated, deduped, novel, findings int) {
	m.fuzzGenerated.Add(int64(generated))
	m.fuzzDeduped.Add(int64(deduped))
	m.fuzzNovel.Add(int64(novel))
	m.fuzzFindings.Add(int64(findings))
}

// observeReplay records one driven session: steps replayed, wall time,
// and allocations. The allocation delta is process-global (Go has no
// per-goroutine allocation counter), so with concurrent jobs it is an
// upper bound; on the benchmark-style single-job runs it matches the
// allocs/op the bench gate pins.
func (m *metrics) observeReplay(steps int, d time.Duration, allocs uint64) {
	m.sessions.Add(1)
	m.steps.Add(int64(steps))
	m.ns.Add(int64(d))
	m.allocs.Add(int64(allocs))
}

// readMallocs samples the process's cumulative allocation count.
func readMallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// BenchBaseline is the parsed shape of BENCH_BASELINE.json: benchmark
// name → unit ("ns/op", "allocs/op", "B/op", ...) → pinned value.
type BenchBaseline map[string]map[string]float64

// LoadBenchBaseline reads a BENCH_BASELINE.json file.
func LoadBenchBaseline(path string) (BenchBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var file struct {
		Benchmarks BenchBaseline `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("jobs: parsing bench baseline %s: %w", path, err)
	}
	return file.Benchmarks, nil
}

// SetBenchBaseline publishes pinned benchmark counters on /metrics as
// warr_bench_baseline gauges.
func (e *Engine) SetBenchBaseline(b BenchBaseline) {
	e.metrics.mu.Lock()
	e.metrics.baseline = b
	e.metrics.mu.Unlock()
}

// WriteMetrics writes the engine's metrics in the Prometheus text
// exposition format.
func (e *Engine) WriteMetrics(w io.Writer) error {
	depth, capacity := e.QueueDepth()
	byKindState := make(map[Kind]map[State]int)
	for _, job := range e.Jobs() {
		m := byKindState[job.Spec.Kind]
		if m == nil {
			m = make(map[State]int)
			byKindState[job.Spec.Kind] = m
		}
		m[job.State()]++
	}
	draining := 0
	if e.Draining() {
		draining = 1
	}

	var b []byte
	gauge := func(name, help string, value any) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, value)...)
	}
	gauge("warr_queue_depth", "Jobs waiting in the bounded queue.", depth)
	gauge("warr_queue_capacity", "Capacity of the bounded queue.", capacity)
	gauge("warr_workers", "Size of the worker pool.", e.opts.Workers)
	gauge("warr_engine_draining", "1 once a graceful drain has begun.", draining)

	b = append(b, "# HELP warr_jobs_total Jobs by kind and state.\n# TYPE warr_jobs_total gauge\n"...)
	for _, k := range Kinds() {
		for _, s := range States() {
			b = append(b, fmt.Sprintf("warr_jobs_total{kind=%q,state=%q} %d\n", k, s, byKindState[k][s])...)
		}
	}

	m := &e.metrics
	sessions := m.sessions.Load()
	steps := m.steps.Load()
	ns := m.ns.Load()
	allocs := m.allocs.Load()
	counter := func(name, help string, value int64) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, value)...)
	}
	counter("warr_replay_sessions_total", "Replay sessions driven to an end.", sessions)
	counter("warr_replay_steps_total", "Commands replayed across all sessions.", steps)
	counter("warr_replay_ns_total", "Wall nanoseconds spent replaying commands.", ns)
	counter("warr_replay_allocs_total", "Heap allocations during replay (process-global sample).", allocs)
	perStep := func(total int64) float64 {
		if steps == 0 {
			return 0
		}
		return float64(total) / float64(steps)
	}
	gauge("warr_replay_ns_per_step", "Mean wall nanoseconds per replayed command.", perStep(ns))
	gauge("warr_replay_allocs_per_step", "Mean heap allocations per replayed command.", perStep(allocs))

	counter("warr_fuzz_candidates_total", "Candidates generated by fuzz campaigns.", m.fuzzGenerated.Load())
	counter("warr_fuzz_deduped_total", "Fuzz candidates dropped by chained-digest dedupe.", m.fuzzDeduped.Load())
	counter("warr_fuzz_coverage_novel_total", "Fuzz replays that set a new coverage bit.", m.fuzzNovel.Load())
	counter("warr_fuzz_findings_total", "Oracle findings discovered by fuzz campaigns.", m.fuzzFindings.Load())

	counter("warr_load_users_total", "Virtual users hosted by load campaigns.", m.loadUsers.Load())
	counter("warr_load_worlds_total", "Shared worlds absorbed by load campaigns.", m.loadWorlds.Load())
	counter("warr_load_schedules_total", "Schedules executed by load campaigns.", m.loadSchedules.Load())
	counter("warr_load_shared_total", "World schedules served from shared results.", m.loadShared.Load())
	counter("warr_load_findings_total", "Interference findings discovered by load campaigns.", m.loadFindings.Load())
	gauge("warr_load_last_users", "Virtual user count of the most recent load campaign.", m.loadLastUsers.Load())

	counter("warr_journal_replayed_jobs", "Jobs revived from the write-ahead journal at boot.", m.journalReplayed.Load())

	m.mu.Lock()
	baseline := m.baseline
	m.mu.Unlock()
	if len(baseline) > 0 {
		b = append(b, "# HELP warr_bench_baseline Pinned benchmark counters from BENCH_BASELINE.json.\n# TYPE warr_bench_baseline gauge\n"...)
		names := make([]string, 0, len(baseline))
		for name := range baseline {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			units := make([]string, 0, len(baseline[name]))
			for unit := range baseline[name] {
				units = append(units, unit)
			}
			sort.Strings(units)
			for _, unit := range units {
				b = append(b, fmt.Sprintf("warr_bench_baseline{benchmark=%q,unit=%q} %v\n", name, unit, baseline[name][unit])...)
			}
		}
	}
	_, err := w.Write(b)
	return err
}

// Kinds lists every job kind — the metrics exporter enumerates it so
// jobs-by-kind series exist even at zero.
func Kinds() []Kind {
	return []Kind{KindReplay, KindNavigationCampaign, KindTimingCampaign, KindReport, KindFuzzCampaign, KindLoadCampaign}
}
