package jobs

// The per-job event bus. Every job owns one; the runner publishes into
// it and any number of subscribers — the CLI printing to stdout, SSE
// handlers, tests — stream the full history from the first event, then
// follow live publishes. History is retained for the job's lifetime, so
// a subscriber that arrives after completion still sees the whole
// stream (this is what makes SSE reconnects and the CLIs' print-at-end
// paths exact replicas of the live stream).

import "sync"

// Bus is a single-writer, multi-reader event stream with full-history
// replay. Publish and Close are called by the job runner; Subscribe and
// Snapshot may be called from any goroutine at any time.
type Bus struct {
	mu      sync.Mutex
	cond    *sync.Cond
	history []Event
	closed  bool
}

// NewBus returns an empty, open bus.
func NewBus() *Bus {
	b := &Bus{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Publish appends an event. Publishing on a closed bus is a no-op —
// the stream has already been declared complete.
func (b *Bus) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.history = append(b.history, ev)
	b.cond.Broadcast()
}

// Close marks the stream complete; subscriber channels close once they
// have drained the history.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// Closed reports whether the stream is complete.
func (b *Bus) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Snapshot returns the events published so far.
func (b *Bus) Snapshot() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.history...)
}

// Subscribe streams the bus from event index from (0 = the beginning):
// history first, then live events. The returned channel closes when the
// bus is closed and fully drained. stop unsubscribes early; it is
// idempotent and must be called (or the channel drained to close) to
// release the pump goroutine.
func (b *Bus) Subscribe(from int) (<-chan Event, func()) {
	ch := make(chan Event)
	quit := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			close(quit)
			// Wake the pump if it is waiting for new events.
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		})
	}
	if from < 0 {
		from = 0
	}
	go func() {
		defer close(ch)
		i := from
		for {
			b.mu.Lock()
			for i >= len(b.history) && !b.closed && !closedChan(quit) {
				b.cond.Wait()
			}
			if closedChan(quit) || (i >= len(b.history) && b.closed) {
				b.mu.Unlock()
				return
			}
			ev := b.history[i]
			i++
			b.mu.Unlock()
			select {
			case ch <- ev:
			case <-quit:
				return
			}
		}
	}()
	return ch, stop
}

// closedChan reports whether ch is closed, without blocking.
func closedChan(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
