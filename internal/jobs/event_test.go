package jobs

// The encoding contract: the step/summary/skipped JSON lines are the
// machine-readable format warr-replay -json has always printed. These
// tests pin it byte-for-byte — against literal lines and against the
// exact struct shapes the pre-engine CLI declared — and check that
// every event round-trips through EncodeEvent/DecodeEvent unchanged.

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// legacyStepRecord and legacySummaryRecord are verbatim copies of the
// JSON shapes cmd/warr-replay declared before the job engine existed.
// If a field is renamed, reordered, or re-tagged in the events package,
// the byte comparison below fails.
type legacyStepRecord struct {
	Type      string `json:"type"`
	Index     int    `json:"index"`
	Action    string `json:"action"`
	XPath     string `json:"xpath"`
	Status    string `json:"status"`
	UsedXPath string `json:"usedXPath,omitempty"`
	Heuristic string `json:"heuristic,omitempty"`
	Error     string `json:"error,omitempty"`
}

type legacySummaryRecord struct {
	Type          string   `json:"type"`
	Replica       int      `json:"replica"`
	Commands      int      `json:"commands"`
	Played        int      `json:"played"`
	Failed        int      `json:"failed"`
	Halted        bool     `json:"halted"`
	Cancelled     bool     `json:"cancelled"`
	Complete      bool     `json:"complete"`
	FinalURL      string   `json:"finalURL,omitempty"`
	Title         string   `json:"title,omitempty"`
	ConsoleErrors []string `json:"consoleErrors,omitempty"`
}

func TestStepEventMatchesLegacyJSONByteForByte(t *testing.T) {
	steps := []replayer.Step{
		{
			Index:  0,
			Cmd:    command.Command{Action: command.Click, XPath: `//form/input[@name="signin"]`},
			Status: replayer.StepOK,
		},
		{
			Index:     3,
			Cmd:       command.Command{Action: command.Type, XPath: `//div/input[@id="p"]`},
			Status:    replayer.StepRelaxed,
			UsedXPath: `//input[@id="p"]`,
			Heuristic: "anchor-suffix",
		},
		{
			Index:  7,
			Cmd:    command.Command{Action: command.Click, XPath: `//div[@id="gone"]`},
			Status: replayer.StepFailed,
			Err:    errors.New("element not found"),
		},
	}
	for _, step := range steps {
		legacy := legacyStepRecord{
			Type:      "step",
			Index:     step.Index,
			Action:    step.Cmd.Action.String(),
			XPath:     step.Cmd.XPath,
			Status:    step.Status.String(),
			UsedXPath: step.UsedXPath,
			Heuristic: step.Heuristic,
		}
		if step.Err != nil {
			legacy.Error = step.Err.Error()
		}
		want, err := json.Marshal(legacy)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EncodeEvent(NewStepEvent(step))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bytes.TrimSuffix(got, []byte("\n")), want) {
			t.Errorf("step %d line diverged from the legacy -json format:\n got %s\nwant %s",
				step.Index, got, want)
		}
	}
}

func TestSummaryEventMatchesLegacyJSONByteForByte(t *testing.T) {
	res := &replayer.Result{Played: 15, Failed: 2}
	legacy := legacySummaryRecord{
		Type:     "summary",
		Replica:  1,
		Commands: 17,
		Played:   res.Played,
		Failed:   res.Failed,
		Complete: res.Complete(),
	}
	want, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EncodeEvent(NewSummaryEvent(1, 17, res, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSuffix(got, []byte("\n")), want) {
		t.Errorf("summary line diverged from the legacy -json format:\n got %s\nwant %s", got, want)
	}
}

// TestEventLinesPinned pins one literal line per event type. These are
// the bytes on the wire — CLI stdout and SSE data frames — so any
// change here is a protocol change.
func TestEventLinesPinned(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{
			StepEvent{Type: "step", Index: 2, Action: "click", XPath: "//a", Status: "ok"},
			`{"type":"step","index":2,"action":"click","xpath":"//a","status":"ok"}`,
		},
		{
			SummaryEvent{Type: "summary", Commands: 3, Played: 3, Complete: true, FinalURL: "http://x.test/", Title: "X"},
			`{"type":"summary","replica":0,"commands":3,"played":3,"failed":0,"halted":false,"cancelled":false,"complete":true,"finalURL":"http://x.test/","title":"X"}`,
		},
		{
			SkippedEvent{Type: "skipped", Replica: 4},
			`{"type":"skipped","replica":4}`,
		},
		{
			StateEvent{Type: "state", Job: "job-1", Kind: "replay", State: "running"},
			`{"type":"state","job":"job-1","kind":"replay","state":"running"}`,
		},
		{
			OutcomeEvent{Type: "outcome", Index: 5, Injection: "skip task 1", Status: "replayed", Played: 9, Finding: true, Observed: "console errors: boom"},
			`{"type":"outcome","index":5,"injection":"skip task 1","status":"replayed","played":9,"failed":0,"finding":true,"observed":"console errors: boom"}`,
		},
		{
			ReportEvent{Type: "report", Campaign: "navigation", Generated: 12, Replayed: 8, Pruned: 4,
				Findings: []FindingRecord{{Injection: "skip task 1", Observed: "console errors: boom"}}},
			`{"type":"report","campaign":"navigation","generated":12,"replayed":8,"pruned":4,"skipped":0,"replayFailures":0,"findings":[{"injection":"skip task 1","observed":"console errors: boom"}]}`,
		},
		{
			ClassificationEvent{Type: "classification", Verdict: "console-error", Signal: "TypeError", Commands: 2, MinimizedCommands: 2, Replays: 3},
			`{"type":"classification","verdict":"console-error","signal":"TypeError","commands":2,"minimizedCommands":2,"replays":3}`,
		},
		{
			FuzzEvent{Type: "fuzz", Generated: 26, Deduped: 2, Replayed: 24, Novel: 14, CorpusSize: 14, CoverageBits: 50, Findings: 2, Budget: 24, Spent: 24},
			`{"type":"fuzz","generated":26,"deduped":2,"pruned":0,"replayed":24,"skipped":0,"novel":14,"corpusSize":14,"coverageBits":50,"findings":2,"budget":24,"spent":24}`,
		},
		{
			LoadEvent{Type: "load", Workload: "sites-notes", Users: 8, Worlds: 2, WorldsDone: 1, Executed: 3, Shared: 1},
			`{"type":"load","workload":"sites-notes","users":8,"worlds":2,"worldsDone":1,"executed":3,"shared":1}`,
		},
		{
			LoadEvent{Type: "load", Workload: "docs-tally", Users: 8, Worlds: 2, WorldsDone: 2, Executed: 4, Shared: 2, CoverageBits: 11, Findings: 1},
			`{"type":"load","workload":"docs-tally","users":8,"worlds":2,"worldsDone":2,"executed":4,"shared":2,"coverageBits":11,"findings":1}`,
		},
		{
			// The outcome line of a fuzz campaign: the injection is the
			// mutation program, and the coverage fingerprint rides along
			// as hex. Both fields are omitempty, so enumerated-campaign
			// outcome lines are unchanged.
			OutcomeEvent{Type: "outcome", Index: 1, Injection: "fuzz: pace:0/1", Status: "replayed", Played: 14, Finding: true, Observed: "console errors: boom", Coverage: "00ff"},
			`{"type":"outcome","index":1,"injection":"fuzz: pace:0/1","status":"replayed","played":14,"failed":0,"finding":true,"observed":"console errors: boom","coverage":"00ff"}`,
		},
	}
	for _, c := range cases {
		got, err := EncodeEvent(c.ev)
		if err != nil {
			t.Fatalf("%s: %v", c.ev.EventType(), err)
		}
		if string(got) != c.want+"\n" {
			t.Errorf("%s line changed:\n got %swant %s\n", c.ev.EventType(), got, c.want)
		}
	}
}

func TestEventRoundTrip(t *testing.T) {
	events := []Event{
		StepEvent{Type: "step", Index: 1, Action: "type", XPath: "//input", Status: "ok", UsedXPath: "//input", Heuristic: "h", Error: "e"},
		SummaryEvent{Type: "summary", Replica: 2, Commands: 5, Played: 4, Failed: 1, Halted: true, ConsoleErrors: []string{"a", "b"}},
		SkippedEvent{Type: "skipped", Replica: 3},
		StateEvent{Type: "state", Job: "job-9", Kind: "report", State: "cancelled", Cause: "because"},
		OutcomeEvent{Type: "outcome", Index: 7, Status: "pruned"},
		ReportEvent{Type: "report", Campaign: "timing", Generated: 3, Replayed: 3,
			Findings: []FindingRecord{{Injection: "i", Observed: "o"}}},
		ClassificationEvent{Type: "classification", Verdict: "no-repro", Commands: 4, MinimizedCommands: 4, Replays: 1},
		FuzzEvent{Type: "fuzz", Generated: 9, Deduped: 1, Pruned: 1, Replayed: 6, Skipped: 1, Novel: 3, CorpusSize: 3, CoverageBits: 17, Findings: 1, Budget: 8, Spent: 7},
		LoadEvent{Type: "load", Workload: "mixed", Users: 12, Worlds: 3, WorldsDone: 3, Executed: 6, Shared: 3, CoverageBits: 21, Findings: 2},
		OutcomeEvent{Type: "outcome", Index: 2, Injection: "fuzz: omit:3", Status: "replayed", Coverage: "deadbeef"},
	}
	for _, ev := range events {
		line, err := EncodeEvent(ev)
		if err != nil {
			t.Fatalf("%s: encode: %v", ev.EventType(), err)
		}
		back, err := DecodeEvent(line)
		if err != nil {
			t.Fatalf("%s: decode: %v", ev.EventType(), err)
		}
		if !reflect.DeepEqual(ev, back) {
			t.Errorf("%s did not round-trip:\n in  %#v\n out %#v", ev.EventType(), ev, back)
		}
	}
}

func TestDecodeEventRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"not json",
		`{"type":"martian"}`,
		`{"type":"step","index":"NaN"}`,
	} {
		if _, err := DecodeEvent([]byte(line)); err == nil {
			t.Errorf("DecodeEvent(%q) succeeded, want error", line)
		}
	}
}

func TestEncoderWritesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(SkippedEvent{Type: "skipped", Replica: 0}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(SkippedEvent{Type: "skipped", Replica: 1}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("encoder wrote %d lines, want 2: %q", len(lines), buf.String())
	}
	for i, line := range lines {
		ev, err := DecodeEvent([]byte(line))
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.(SkippedEvent).Replica != i {
			t.Errorf("line %d decoded replica %d", i, ev.(SkippedEvent).Replica)
		}
	}
}
