package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
)

func TestWriteMetricsExposesEngineState(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	e := New(Options{Workers: 3, QueueDepth: 7})
	defer e.Close()
	job, err := e.Submit(Spec{Kind: KindReplay, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)

	var b strings.Builder
	if err := e.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"warr_queue_capacity 7",
		"warr_workers 3",
		"warr_engine_draining 0",
		`warr_jobs_total{kind="replay",state="done"} 1`,
		"warr_replay_sessions_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Every kind×state series exists, even at zero — dashboards never
	// see a series appear out of nowhere.
	for _, k := range Kinds() {
		for _, s := range States() {
			series := `warr_jobs_total{kind="` + k.String() + `",state="` + s.String() + `"}`
			if !strings.Contains(out, series) {
				t.Errorf("metrics output missing series %s", series)
			}
		}
	}
	if !strings.Contains(out, "warr_replay_steps_total "+itoa(len(tr.Commands))) {
		t.Errorf("steps counter does not reflect the replay: want %d steps in\n%s", len(tr.Commands), out)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestBenchBaselineGauges(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_BASELINE.json")
	content := `{"benchmarks":{"BenchmarkSessionReplay":{"ns/op":123456,"allocs/op":42}}}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline, err := LoadBenchBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if baseline["BenchmarkSessionReplay"]["allocs/op"] != 42 {
		t.Fatalf("parsed baseline %v", baseline)
	}

	e := New(Options{Workers: 1, QueueDepth: 1})
	defer e.Close()
	e.SetBenchBaseline(baseline)
	var b strings.Builder
	if err := e.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`warr_bench_baseline{benchmark="BenchmarkSessionReplay",unit="allocs/op"} 42`,
		`warr_bench_baseline{benchmark="BenchmarkSessionReplay",unit="ns/op"} 123456`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics output missing %q in\n%s", want, b.String())
		}
	}
}

func TestLoadBenchBaselineRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchBaseline(path); err == nil {
		t.Error("LoadBenchBaseline accepted garbage")
	}
	if _, err := LoadBenchBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadBenchBaseline accepted a missing file")
	}
}

func TestLoadRepoBenchBaseline(t *testing.T) {
	// The repo's own pinned baseline must stay loadable — warr-serve
	// -bench reads it at boot.
	baseline, err := LoadBenchBaseline("../../BENCH_BASELINE.json")
	if err != nil {
		t.Fatalf("repo BENCH_BASELINE.json unreadable: %v", err)
	}
	if len(baseline) == 0 {
		t.Fatal("repo BENCH_BASELINE.json has no benchmarks")
	}
}
