package jobs

// The write-ahead job journal: warr-serve's crash safety. Every
// journalable submission is appended (fsync'd) to an append-only
// JSON-lines file before results exist, every terminal state follows
// it, and cancelled replay jobs append their checkpoint image — so a
// process killed without warning can, on the next boot, replay the
// journal and resume every job whose work was lost.
//
// Format: one JSON object per line, distinguished by "rec":
//
//	{"rec":"boot"}                                — an epoch boundary, appended at every Open
//	{"rec":"submit","job":"job-3","spec":{...}}   — an accepted journalable submission
//	{"rec":"checkpoint","job":"job-3","image":..} — base64 world image of a cancelled replay
//	{"rec":"state","job":"job-3","state":"done"}  — a terminal state (with cause/error)
//	{"rec":"resumed","job":"job-3","as":"job-7"}  — job-3 continues as job-7
//	{"rec":"revived","ofEpoch":2,"job":"job-3"}   — a prior epoch's job-3 was resubmitted
//
// Job ids restart at job-1 every boot, so jobs are keyed by
// (epoch, id): the epoch is the count of boot records preceding the
// submit. Recovery revives a job when it was submitted, never reached a
// terminal state (or was checkpointed by a drain), was not resumed as a
// newer job, and was not already revived by a previous boot.
//
// A truncated or corrupted tail — the torn last write of a crash — is
// detected, warned about, and truncated away; it never panics and never
// poisons the records before it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// SpecImage is the journal's serializable form of a job Spec: every
// wire-safe field, and nothing else. In-process-only fields (Oracle,
// Grammar, replay hooks) make a spec non-journalable or are dropped —
// hooks are observers, and a revived job replays to the same results
// without them.
type SpecImage struct {
	Kind                 string                `json:"kind"`
	Trace                command.Trace         `json:"trace,omitempty"`
	TraceName            string                `json:"traceName,omitempty"`
	Mode                 browser.Mode          `json:"mode,omitempty"`
	Replayer             replayer.OptionsImage `json:"replayer"`
	Replicas             int                   `json:"replicas,omitempty"`
	Parallelism          int                   `json:"parallelism,omitempty"`
	MaxTraces            int                   `json:"maxTraces,omitempty"`
	DisablePruning       bool                  `json:"disablePruning,omitempty"`
	DisablePrefixSharing bool                  `json:"disablePrefixSharing,omitempty"`
	FuzzBudget           int                   `json:"fuzzBudget,omitempty"`
	FuzzSeed             int64                 `json:"fuzzSeed,omitempty"`
	Description          string                `json:"description,omitempty"`
	Workload             string                `json:"workload,omitempty"`
	Users                int                   `json:"users,omitempty"`
	Cohort               int                   `json:"cohort,omitempty"`
	ScheduleBudget       int                   `json:"scheduleBudget,omitempty"`
	ScheduleSeed         int64                 `json:"scheduleSeed,omitempty"`
	DurationNanos        int64                 `json:"durationNanos,omitempty"`
	DisableLoadSharing   bool                  `json:"disableLoadSharing,omitempty"`
}

// journalable reports whether a spec survives the process boundary:
// custom oracles and injected grammars are closures-in-spirit and keep
// the job in-process only.
func journalable(spec Spec) bool {
	return spec.Oracle == nil && spec.Grammar == nil
}

// imageSpec converts a Spec to its journal form.
func imageSpec(spec Spec) SpecImage {
	o := spec.Replayer
	return SpecImage{
		Kind:      spec.Kind.String(),
		Trace:     spec.Trace,
		TraceName: spec.TraceName,
		Mode:      spec.Mode,
		Replayer: replayer.OptionsImage{
			Pacing:                    o.Pacing,
			DisableRelaxation:         o.DisableRelaxation,
			DisableCoordinateFallback: o.DisableCoordinateFallback,
			Driver:                    o.Driver,
		},
		Replicas:             spec.Replicas,
		Parallelism:          spec.Parallelism,
		MaxTraces:            spec.MaxTraces,
		DisablePruning:       spec.DisablePruning,
		DisablePrefixSharing: spec.DisablePrefixSharing,
		FuzzBudget:           spec.FuzzBudget,
		FuzzSeed:             spec.FuzzSeed,
		Description:          spec.Description,
		Workload:             spec.Workload,
		Users:                spec.Users,
		Cohort:               spec.Cohort,
		ScheduleBudget:       spec.ScheduleBudget,
		ScheduleSeed:         spec.ScheduleSeed,
		DurationNanos:        int64(spec.Duration),
		DisableLoadSharing:   spec.DisableLoadSharing,
	}
}

// Spec rebuilds the runnable spec from its journal form.
func (si SpecImage) Spec() Spec {
	return Spec{
		Kind:      ParseKind(si.Kind),
		Trace:     si.Trace,
		TraceName: si.TraceName,
		Mode:      si.Mode,
		Replayer: replayer.Options{
			Pacing:                    si.Replayer.Pacing,
			DisableRelaxation:         si.Replayer.DisableRelaxation,
			DisableCoordinateFallback: si.Replayer.DisableCoordinateFallback,
			Driver:                    si.Replayer.Driver,
		},
		Replicas:             si.Replicas,
		Parallelism:          si.Parallelism,
		MaxTraces:            si.MaxTraces,
		DisablePruning:       si.DisablePruning,
		DisablePrefixSharing: si.DisablePrefixSharing,
		FuzzBudget:           si.FuzzBudget,
		FuzzSeed:             si.FuzzSeed,
		Description:          si.Description,
		Workload:             si.Workload,
		Users:                si.Users,
		Cohort:               si.Cohort,
		ScheduleBudget:       si.ScheduleBudget,
		ScheduleSeed:         si.ScheduleSeed,
		Duration:             time.Duration(si.DurationNanos),
		DisableLoadSharing:   si.DisableLoadSharing,
	}
}

// journalRecord is one journal line; Rec selects which fields are set.
type journalRecord struct {
	Rec     string     `json:"rec"`
	Job     string     `json:"job,omitempty"`
	Spec    *SpecImage `json:"spec,omitempty"`
	Image   []byte     `json:"image,omitempty"`
	State   string     `json:"state,omitempty"`
	Cause   string     `json:"cause,omitempty"`
	Error   string     `json:"error,omitempty"`
	As      string     `json:"as,omitempty"`
	OfEpoch int        `json:"ofEpoch,omitempty"`
}

// RecoveredJob is one journal-recovered job awaiting revival: the epoch
// and id it had, its rebuilt spec, and — when the dying process managed
// to checkpoint it — the encoded world image to resume from.
type RecoveredJob struct {
	Epoch int
	ID    string
	Spec  Spec
	Image []byte
}

// Journal is an open write-ahead job journal. All appends are fsync'd:
// a record returned to the caller survives SIGKILL.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	epoch int
	logf  func(format string, args ...any)
}

// OpenJournal opens (creating if absent) the journal at path, replays
// its records, truncates any torn tail, appends the new epoch's boot
// record, and returns the journal plus the jobs recovery should revive,
// in their original submission order. Pass the recovered jobs to
// Engine.Revive once the engine is up.
func OpenJournal(path string, logf func(format string, args ...any)) (*Journal, []RecoveredJob, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	j := &Journal{f: f, path: path, logf: logf}
	recovered, good, err := j.scan()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		j.warnf("jobs: journal %s: dropping torn tail (%d bytes past offset %d)", path, fi.Size()-good, good)
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("jobs: truncating journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobs: seeking journal end: %w", err)
	}
	j.epoch++ // the epoch the boot record below begins
	if err := j.append(journalRecord{Rec: "boot"}); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, recovered, nil
}

// recState accumulates one (epoch, id)'s records during the scan.
type recState struct {
	epoch    int
	id       string
	spec     *SpecImage
	image    []byte
	terminal string
	cause    string
	resumed  bool
	revived  bool
}

// scan replays the journal from the start. It returns the revivable
// jobs and the byte offset after the last well-formed record; anything
// past that offset is a torn write to be truncated. Records are read
// with a raw line splitter, not bufio.Scanner — checkpoint images blow
// straight through Scanner's default token limit.
func (j *Journal) scan() ([]RecoveredJob, int64, error) {
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, 0, fmt.Errorf("jobs: reading journal: %w", err)
	}
	states := make(map[string]*recState)
	var order []*recState
	key := func(epoch int, id string) string { return fmt.Sprintf("%d/%s", epoch, id) }
	get := func(id string) *recState {
		k := key(j.epoch, id)
		st, ok := states[k]
		if !ok {
			st = &recState{epoch: j.epoch, id: id}
			states[k] = st
			order = append(order, st)
		}
		return st
	}
	var good int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			j.warnf("jobs: journal %s: truncated record at offset %d", j.path, off)
			break
		}
		line := data[off : off+nl]
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			j.warnf("jobs: journal %s: corrupted record at offset %d: %v", j.path, off, err)
			break
		}
		off += nl + 1
		good = int64(off)
		switch rec.Rec {
		case "boot":
			j.epoch++
		case "submit":
			st := get(rec.Job)
			st.spec = rec.Spec
		case "checkpoint":
			get(rec.Job).image = rec.Image
		case "state":
			st := get(rec.Job)
			st.terminal, st.cause = rec.State, rec.Cause
		case "resumed":
			get(rec.Job).resumed = true
		case "revived":
			if st, ok := states[key(rec.OfEpoch, rec.Job)]; ok {
				st.revived = true
			}
		default:
			// Unknown record kinds from a newer build pass through; the
			// journal is forward-readable.
		}
	}
	var recovered []RecoveredJob
	for _, st := range order {
		if st.spec == nil || st.resumed || st.revived {
			continue
		}
		// A job with no terminal record died with the process; one
		// checkpointed by a drain is explicitly parked to continue.
		if st.terminal != "" && !(st.terminal == StateCancelled.String() && st.cause == CauseDrained.Error()) {
			continue
		}
		recovered = append(recovered, RecoveredJob{
			Epoch: st.epoch,
			ID:    st.id,
			Spec:  st.spec.Spec(),
			Image: st.image,
		})
	}
	return recovered, good, nil
}

// append writes one record and fsyncs it; when append returns nil the
// record survives SIGKILL.
func (j *Journal) append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encoding journal record: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("jobs: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: syncing journal: %w", err)
	}
	return nil
}

// note appends a record, downgrading failure to a warning: a sick disk
// must degrade durability, never job execution.
func (j *Journal) note(rec journalRecord) {
	if err := j.append(rec); err != nil {
		j.warnf("%v", err)
	}
}

func (j *Journal) warnf(format string, args ...any) {
	if j.logf != nil {
		j.logf(format, args...)
	}
}

// Epoch returns the journal's current epoch (1-based; each Open begins
// a new one).
func (j *Journal) Epoch() int { return j.epoch }

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
