package jobs

// Engine tests: the one-execution-path contract (an engine replay is
// step-for-step the direct session replay), queue backpressure,
// cancellation parity with plain context cancellation, resumption,
// graceful drain (never dropping a job), and safety under concurrent
// enqueue/cancel/drain.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// recordScenario records a scenario's correct session.
func recordScenario(t *testing.T, sc apps.Scenario) command.Trace {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	if err := sc.Run(env, tab); err != nil {
		t.Fatal(err)
	}
	rec.Detach()
	return rec.Trace()
}

// recordSitesBug records the §V-C timing bug the way cmd/auser does:
// click Edit, save before the editor module arrives. The replayed trace
// reproduces a console TypeError.
func recordSitesBug(t *testing.T) command.Trace {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.SitesURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	doc := tab.MainFrame().Doc()
	x, y := tab.Layout().Center(doc.GetElementByID("start"))
	tab.Click(x, y)
	for _, d := range doc.Root().ElementsByTag("div") {
		if strings.TrimSpace(d.TextContent()) == "Save" {
			sx, sy := tab.Layout().Center(d)
			tab.Click(sx, sy)
			break
		}
	}
	rec.Detach()
	if len(tab.ConsoleErrors()) == 0 {
		t.Fatal("the recorded session did not hit the Sites bug")
	}
	return rec.Trace()
}

func waitJob(t *testing.T, job *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := job.Wait(ctx); err != nil {
		t.Fatalf("job %s did not finish: %v", job.ID, err)
	}
}

func drainEvents(t *testing.T, job *Job) []Event {
	t.Helper()
	ch, stop := job.Events().Subscribe(0)
	defer stop()
	var evs []Event
	timeout := time.After(60 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return evs
			}
			evs = append(evs, ev)
		case <-timeout:
			t.Fatal("event stream never completed")
		}
	}
}

func TestReplayJobMatchesDirectSession(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())

	// The reference: a session driven directly, outside the engine, in
	// the same kind of fresh registry world the engine's default factory
	// builds.
	ref, err := replayer.New(registry.BrowserFactory(browser.DeveloperMode)(), replayer.Options{}).
		NewSession(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	refRes := ref.Run()

	e := New(Options{Workers: 1, QueueDepth: 4})
	defer e.Close()
	job, err := e.Submit(Spec{Kind: KindReplay, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)

	if job.State() != StateDone {
		t.Fatalf("job state %s (err %v)", job.State(), job.Err())
	}
	res := job.Result()
	if res.Played != refRes.Played || res.Failed != refRes.Failed || len(res.Steps) != len(refRes.Steps) {
		t.Fatalf("engine replay (%d/%d, %d steps) diverged from direct session (%d/%d, %d steps)",
			res.Played, res.Failed, len(res.Steps), refRes.Played, refRes.Failed, len(refRes.Steps))
	}
	for i := range res.Steps {
		if res.Steps[i].Status != refRes.Steps[i].Status {
			t.Errorf("step %d: engine %v, direct %v", i, res.Steps[i].Status, refRes.Steps[i].Status)
		}
	}
	if job.Tab().URL() != ref.Tab().URL() {
		t.Errorf("final URL %q, direct session %q", job.Tab().URL(), ref.Tab().URL())
	}

	// The event stream: queued, running, one step per command, the
	// summary, done — in that order.
	evs := drainEvents(t, job)
	var states []string
	var steps, summaries int
	for _, ev := range evs {
		switch v := ev.(type) {
		case StateEvent:
			states = append(states, v.State)
		case StepEvent:
			steps++
		case SummaryEvent:
			summaries++
		}
	}
	if want := []string{"queued", "running", "done"}; strings.Join(states, ",") != strings.Join(want, ",") {
		t.Errorf("state transitions %v, want %v", states, want)
	}
	if steps != len(tr.Commands) || summaries != 1 {
		t.Errorf("stream carried %d steps and %d summaries, want %d and 1",
			steps, summaries, len(tr.Commands))
	}
	if last := evs[len(evs)-1].(StateEvent); last.State != "done" {
		t.Errorf("stream does not end with the terminal state event: %v", evs[len(evs)-1])
	}
}

func TestSubmitRejectsUnknownKind(t *testing.T) {
	e := New(Options{Workers: 1, QueueDepth: 1})
	defer e.Close()
	if _, err := e.Submit(Spec{Kind: Kind(42)}); err == nil {
		t.Fatal("Submit accepted an unknown kind")
	}
}

func TestQueueBackpressure(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	e := New(Options{Workers: 1, QueueDepth: 1})
	defer e.Close()

	// Job 1 blocks its worker until released.
	release := make(chan struct{})
	var once sync.Once
	blocking := Spec{Kind: KindReplay, Trace: tr, Replayer: replayer.Options{
		Hooks: []replayer.Hooks{{
			BeforeStep: func(idx int, cmd command.Command, tab *browser.Tab) {
				once.Do(func() { <-release })
			},
		}},
	}}
	j1, err := e.Submit(blocking)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked j1 up, so j2 really sits in the queue.
	for j1.State() == StateQueued {
		time.Sleep(time.Millisecond)
	}
	j2, err := e.Submit(Spec{Kind: KindReplay, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	// Queue full: the third submission fails fast, it does not block.
	if _, err := e.Submit(Spec{Kind: KindReplay, Trace: tr}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on a full queue: %v, want ErrQueueFull", err)
	}
	if depth, capacity := e.QueueDepth(); depth != 1 || capacity != 1 {
		t.Errorf("QueueDepth = %d/%d, want 1/1", depth, capacity)
	}
	close(release)
	waitJob(t, j1)
	waitJob(t, j2)
	// Capacity freed: submissions flow again.
	j3, err := e.Submit(Spec{Kind: KindReplay, Trace: tr})
	if err != nil {
		t.Fatalf("Submit after the queue drained: %v", err)
	}
	waitJob(t, j3)
	if j3.State() != StateDone {
		t.Errorf("job after backpressure ended %s", j3.State())
	}
}

func TestSubmitWhileDrainingFails(t *testing.T) {
	e := New(Options{Workers: 1, QueueDepth: 1})
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !e.Draining() {
		t.Error("Draining() false after Drain")
	}
	if _, err := e.Submit(Spec{Kind: KindReplay}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit on a draining engine: %v, want ErrDraining", err)
	}
}

// TestCancellationParityWithDirectContextCancel is the cancellation
// contract: cancelling a job through the engine API lands on the same
// context mechanism a direct caller uses, so both produce the same
// partial result — same steps, same counts, same cause.
func TestCancellationParityWithDirectContextCancel(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	errStop := errors.New("stop requested")
	const stopAfter = 2 // cancel once the step at this index has run

	// Direct path: context.WithCancelCause around a plain session.
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	direct, err := replayer.New(registry.BrowserFactory(browser.DeveloperMode)(), replayer.Options{
		Hooks: []replayer.Hooks{{
			AfterStep: func(step replayer.Step, tab *browser.Tab) {
				if step.Index == stopAfter {
					cancel(errStop)
				}
			},
		}},
	}).NewSession(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	directRes := direct.Run()
	if !directRes.Cancelled {
		t.Fatal("direct session was not cancelled")
	}

	// Engine path: the same hook calls Engine.Cancel instead.
	e := New(Options{Workers: 1, QueueDepth: 1})
	defer e.Close()
	var job *Job
	var jobMu sync.Mutex
	spec := Spec{Kind: KindReplay, Trace: tr, Replayer: replayer.Options{
		Hooks: []replayer.Hooks{{
			AfterStep: func(step replayer.Step, tab *browser.Tab) {
				if step.Index == stopAfter {
					jobMu.Lock()
					id := job.ID
					jobMu.Unlock()
					if err := e.Cancel(id, errStop); err != nil {
						t.Errorf("Cancel: %v", err)
					}
				}
			},
		}},
	}}
	jobMu.Lock()
	job, err = e.Submit(spec)
	jobMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)

	if job.State() != StateCancelled {
		t.Fatalf("job state %s, want cancelled", job.State())
	}
	if !errors.Is(job.CancelCause(), errStop) {
		t.Errorf("cancel cause %v, want errStop", job.CancelCause())
	}
	res := job.Result()
	if !res.Cancelled || !errors.Is(res.CancelCause, errStop) {
		t.Fatalf("engine partial result not marked cancelled with the cause: %+v", res)
	}
	if res.Played != directRes.Played || res.Failed != directRes.Failed || len(res.Steps) != len(directRes.Steps) {
		t.Fatalf("engine partial (%d/%d, %d steps) diverged from direct partial (%d/%d, %d steps)",
			res.Played, res.Failed, len(res.Steps),
			directRes.Played, directRes.Failed, len(directRes.Steps))
	}
	for i := range res.Steps {
		if res.Steps[i].Status != directRes.Steps[i].Status {
			t.Errorf("step %d: engine %v, direct %v", i, res.Steps[i].Status, directRes.Steps[i].Status)
		}
	}

	// Cancelling a finished job is an error, not a silent no-op.
	if err := e.Cancel(job.ID, nil); !errors.Is(err, ErrJobFinished) {
		t.Errorf("Cancel on a finished job: %v, want ErrJobFinished", err)
	}
}

// TestResumeReplayMatchesUninterrupted cancels a replay mid-trace,
// resumes it, and requires the resumed job's final result — and its
// step event stream — to be exactly what an uninterrupted replay
// produces.
func TestResumeReplayMatchesUninterrupted(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	if len(tr.Commands) < 4 {
		t.Fatalf("scenario too short to interrupt: %d commands", len(tr.Commands))
	}

	e := New(Options{Workers: 1, QueueDepth: 2})
	defer e.Close()

	// The uninterrupted reference, on the same engine.
	refJob, err := e.Submit(Spec{Kind: KindReplay, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, refJob)
	ref := refJob.Result()

	var cancelled atomic.Bool
	var job *Job
	var jobMu sync.Mutex
	spec := Spec{Kind: KindReplay, Trace: tr, Replayer: replayer.Options{
		Hooks: []replayer.Hooks{{
			AfterStep: func(step replayer.Step, tab *browser.Tab) {
				if step.Index == 1 && cancelled.CompareAndSwap(false, true) {
					jobMu.Lock()
					id := job.ID
					jobMu.Unlock()
					_ = e.Cancel(id, nil)
				}
			},
		}},
	}}
	jobMu.Lock()
	job, err = e.Submit(spec)
	jobMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	if job.State() != StateCancelled {
		t.Fatalf("job state %s, want cancelled", job.State())
	}
	partial := len(job.Result().Steps)
	if partial == 0 || partial >= len(tr.Commands) {
		t.Fatalf("cancellation was not mid-trace: %d of %d steps", partial, len(tr.Commands))
	}

	resumed, err := e.Resume(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.ResumedBy() != resumed.ID {
		t.Errorf("ResumedBy = %q, want %q", job.ResumedBy(), resumed.ID)
	}
	waitJob(t, resumed)
	if resumed.State() != StateDone {
		t.Fatalf("resumed job ended %s (err %v)", resumed.State(), resumed.Err())
	}
	res := resumed.Result()
	if res.Cancelled || res.Played != ref.Played || res.Failed != ref.Failed || len(res.Steps) != len(ref.Steps) {
		t.Fatalf("resumed result (%d/%d, %d steps, cancelled=%v) diverged from uninterrupted (%d/%d, %d steps)",
			res.Played, res.Failed, len(res.Steps), res.Cancelled, ref.Played, ref.Failed, len(ref.Steps))
	}
	for i := range res.Steps {
		if res.Steps[i].Status != ref.Steps[i].Status {
			t.Errorf("step %d: resumed %v, uninterrupted %v", i, res.Steps[i].Status, ref.Steps[i].Status)
		}
	}

	// The resumed job's stream re-publishes the already-replayed prefix,
	// so a subscriber sees every command exactly once.
	var steps int
	for _, ev := range drainEvents(t, resumed) {
		if _, ok := ev.(StepEvent); ok {
			steps++
		}
	}
	if steps != len(tr.Commands) {
		t.Errorf("resumed stream carried %d step events, want %d", steps, len(tr.Commands))
	}

	// A job resumes at most once.
	if _, err := e.Resume(job.ID); err == nil {
		t.Error("second Resume of the same job succeeded")
	}
	// Only cancelled jobs resume.
	if _, err := e.Resume(refJob.ID); !errors.Is(err, ErrNotResumable) {
		t.Errorf("Resume of a done job: %v, want ErrNotResumable", err)
	}
}

// TestResumeNavigationCampaignMergesFinishedOutcomes cancels a
// navigation campaign mid-run and resumes it: the resumed job must not
// re-replay finished traces, and its final findings must equal an
// uncancelled campaign's.
func TestResumeNavigationCampaignMergesFinishedOutcomes(t *testing.T) {
	tr := recordScenario(t, apps.EditSiteScenario())
	e := New(Options{Workers: 1, QueueDepth: 2})
	defer e.Close()

	ref, err := e.Submit(Spec{Kind: KindNavigationCampaign, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, ref)
	if ref.State() != StateDone {
		t.Fatalf("reference campaign ended %s (err %v)", ref.State(), ref.Err())
	}

	// Cancel after the second erroneous trace finished. The campaign
	// checks its context between traces, so the cut is at a trace
	// boundary.
	var replayed atomic.Int32
	var job *Job
	var jobMu sync.Mutex
	spec := Spec{
		Kind: KindNavigationCampaign, Trace: tr,
		Grammar: ref.Grammar(), // same plan as the reference
		Oracle: func(tab *browser.Tab, res *replayer.Result) error {
			if replayed.Add(1) == 2 {
				jobMu.Lock()
				id := job.ID
				jobMu.Unlock()
				_ = e.Cancel(id, nil)
			}
			return weberr.ConsoleOracle(tab, res)
		},
	}
	jobMu.Lock()
	job, err = e.Submit(spec)
	jobMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	if job.State() != StateCancelled {
		t.Skipf("campaign finished before the cancel landed (%s); nothing to resume", job.State())
	}
	skipped := job.Report().Skipped
	if skipped == 0 {
		t.Skip("every trace finished before the cancel landed; nothing to resume")
	}

	resumed, err := e.Resume(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, resumed)
	if resumed.State() != StateDone {
		t.Fatalf("resumed campaign ended %s (err %v)", resumed.State(), resumed.Err())
	}
	rep, refRep := resumed.Report(), ref.Report()
	if rep.Generated != refRep.Generated || rep.Skipped != 0 {
		t.Errorf("resumed report generated=%d skipped=%d, want generated=%d skipped=0",
			rep.Generated, rep.Skipped, refRep.Generated)
	}
	got, want := findingKeys(rep), findingKeys(refRep)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("resumed findings diverged:\n got %v\nwant %v", got, want)
	}
}

// findingKeys canonicalizes report findings for comparison.
func findingKeys(rep *weberr.Report) []string {
	keys := make([]string, len(rep.Findings))
	for i, f := range rep.Findings {
		keys[i] = f.Injection.String() + " => " + f.Observed.Error()
	}
	return keys
}

// TestDrainCheckpointsEveryJob is the never-drop contract: a drain
// whose deadline has already passed must leave every submitted job in a
// terminal state — running jobs checkpointed with partial results,
// queued jobs resolved as cancelled — with none lost.
func TestDrainCheckpointsEveryJob(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	e := New(Options{Workers: 1, QueueDepth: 8})

	// The running job replays slowly enough for the drain to interrupt.
	slow := Spec{Kind: KindReplay, Trace: tr, Replayer: replayer.Options{
		Hooks: []replayer.Hooks{{
			AfterStep: func(step replayer.Step, tab *browser.Tab) {
				time.Sleep(10 * time.Millisecond)
			},
		}},
	}}
	var jobs []*Job
	j, err := e.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, j)
	for i := 0; i < 3; i++ {
		j, err := e.Submit(Spec{Kind: KindReplay, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.Drain(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain with an expired context returned %v", err)
	}

	for i, job := range jobs {
		state := job.State()
		switch state {
		case StateDone:
			// Finished before the drain reached it — fine.
		case StateCancelled:
			if !errors.Is(job.CancelCause(), CauseDrained) {
				t.Errorf("job %d cancelled with cause %v, want CauseDrained", i, job.CancelCause())
			}
			if job.Result() == nil {
				t.Errorf("job %d checkpointed without a (partial) result", i)
			}
			if !job.Events().Closed() {
				t.Errorf("job %d event stream left open", i)
			}
		default:
			t.Errorf("job %d left in state %s — dropped by drain", i, state)
		}
	}
}

// TestConcurrentEnqueueCancelDrain exercises the engine under the race
// detector: submitters, cancellers, and a drain all at once, with every
// accepted job required to reach a terminal state.
func TestConcurrentEnqueueCancelDrain(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	e := New(Options{Workers: 4, QueueDepth: 64})

	var mu sync.Mutex
	var accepted []*Job
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				job, err := e.Submit(Spec{
					Kind: KindReplay, Trace: tr,
					Replayer: replayer.Options{Pacing: replayer.PaceNone},
				})
				if err != nil {
					// Backpressure or drain — both are legitimate outcomes.
					if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrDraining) {
						t.Errorf("Submit: %v", err)
					}
					continue
				}
				mu.Lock()
				accepted = append(accepted, job)
				mu.Unlock()
				if i%2 == 0 {
					// Cancel some jobs concurrently; finished ones report so.
					if err := e.Cancel(job.ID, nil); err != nil && !errors.Is(err, ErrJobFinished) {
						t.Errorf("Cancel: %v", err)
					}
				}
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, job := range accepted {
		switch job.State() {
		case StateDone, StateCancelled, StateFailed:
		default:
			t.Errorf("job %s left in state %s after drain", job.ID, job.State())
		}
		if !job.Events().Closed() {
			t.Errorf("job %s event stream left open", job.ID)
		}
	}
}

// TestReportIngestionClassifiesConsoleError drives the AUsER pipeline:
// a report of the Sites timing bug replays, minimizes, and classifies
// as a console error, with the minimized reproducer still a prefix.
func TestReportIngestionClassifiesConsoleError(t *testing.T) {
	tr := recordSitesBug(t)
	e := New(Options{Workers: 1, QueueDepth: 1})
	defer e.Close()
	job, err := e.Submit(Spec{Kind: KindReport, Trace: tr, Description: "save did nothing"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	if job.State() != StateDone {
		t.Fatalf("ingestion ended %s (err %v)", job.State(), job.Err())
	}
	cls := job.Classification()
	if cls == nil {
		t.Fatal("no classification stored")
	}
	if cls.Verdict != "console-error" {
		t.Fatalf("verdict %q, want console-error (signal %q)", cls.Verdict, cls.Signal)
	}
	if cls.Signal == "" {
		t.Error("console-error verdict with no signal")
	}
	if n := len(cls.Minimized.Commands); n == 0 || n > len(tr.Commands) {
		t.Errorf("minimized to %d commands of %d", n, len(tr.Commands))
	}
	if cls.Replays < 2 {
		t.Errorf("minimizer spent %d replays, expected at least the ingestion replay plus one probe", cls.Replays)
	}
	// The stream ends with the classification before the terminal state.
	evs := drainEvents(t, job)
	var sawClassification bool
	for _, ev := range evs {
		if c, ok := ev.(ClassificationEvent); ok {
			sawClassification = true
			if c.Verdict != cls.Verdict || c.MinimizedCommands != len(cls.Minimized.Commands) {
				t.Errorf("classification event %+v disagrees with stored classification %+v", c, cls)
			}
		}
	}
	if !sawClassification {
		t.Error("no classification event in the stream")
	}
}

// TestReplicatedReplaySummaries checks the warr-replay -parallel path:
// N replicas, N summary events, identical outcomes.
func TestReplicatedReplaySummaries(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	e := New(Options{Workers: 1, QueueDepth: 1})
	defer e.Close()
	job, err := e.Submit(Spec{Kind: KindReplay, Trace: tr, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, job)
	if job.State() != StateDone {
		t.Fatalf("job ended %s (err %v)", job.State(), job.Err())
	}
	outs := job.Outcomes()
	if len(outs) != 3 {
		t.Fatalf("%d outcomes, want 3", len(outs))
	}
	var summaries []SummaryEvent
	for _, ev := range drainEvents(t, job) {
		if s, ok := ev.(SummaryEvent); ok {
			summaries = append(summaries, s)
		}
	}
	if len(summaries) != 3 {
		t.Fatalf("%d summary events, want 3", len(summaries))
	}
	for i, s := range summaries {
		if s.Replica != i {
			t.Errorf("summary %d carries replica %d", i, s.Replica)
		}
		if s.Played != summaries[0].Played || s.Complete != summaries[0].Complete {
			t.Errorf("replica %d diverged: %+v vs %+v", i, s, summaries[0])
		}
	}
}
