package jobs

import (
	"testing"
	"time"
)

func collect(t *testing.T, ch <-chan Event, n int) []Event {
	t.Helper()
	var got []Event
	timeout := time.After(5 * time.Second)
	for len(got) < n {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("channel closed after %d of %d events", len(got), n)
			}
			got = append(got, ev)
		case <-timeout:
			t.Fatalf("timed out after %d of %d events", len(got), n)
		}
	}
	return got
}

func TestBusReplaysFullHistoryToLateSubscribers(t *testing.T) {
	b := NewBus()
	for i := 0; i < 3; i++ {
		b.Publish(SkippedEvent{Type: "skipped", Replica: i})
	}
	b.Close()

	ch, stop := b.Subscribe(0)
	defer stop()
	got := collect(t, ch, 3)
	for i, ev := range got {
		if ev.(SkippedEvent).Replica != i {
			t.Errorf("event %d: replica %d", i, ev.(SkippedEvent).Replica)
		}
	}
	if _, ok := <-ch; ok {
		t.Error("channel still open after history drained on a closed bus")
	}
}

func TestBusSubscribeFromOffset(t *testing.T) {
	b := NewBus()
	for i := 0; i < 5; i++ {
		b.Publish(SkippedEvent{Type: "skipped", Replica: i})
	}
	b.Close()
	ch, stop := b.Subscribe(3)
	defer stop()
	got := collect(t, ch, 2)
	if got[0].(SkippedEvent).Replica != 3 || got[1].(SkippedEvent).Replica != 4 {
		t.Errorf("offset subscription got %v", got)
	}
}

func TestBusLiveFollowThenClose(t *testing.T) {
	b := NewBus()
	b.Publish(SkippedEvent{Type: "skipped", Replica: 0})
	ch, stop := b.Subscribe(0)
	defer stop()
	if got := collect(t, ch, 1); got[0].(SkippedEvent).Replica != 0 {
		t.Fatalf("history event: %v", got[0])
	}
	// Publish after subscription: the live path.
	b.Publish(SkippedEvent{Type: "skipped", Replica: 1})
	if got := collect(t, ch, 1); got[0].(SkippedEvent).Replica != 1 {
		t.Fatalf("live event: %v", got[0])
	}
	b.Close()
	select {
	case _, ok := <-ch:
		if ok {
			t.Error("unexpected event after Close")
		}
	case <-time.After(5 * time.Second):
		t.Error("channel did not close after bus Close")
	}
}

func TestBusPublishAfterCloseIsNoOp(t *testing.T) {
	b := NewBus()
	b.Close()
	b.Publish(SkippedEvent{Type: "skipped"})
	if got := b.Snapshot(); len(got) != 0 {
		t.Errorf("closed bus accepted %d events", len(got))
	}
}

func TestBusStopReleasesSubscriber(t *testing.T) {
	b := NewBus()
	b.Publish(SkippedEvent{Type: "skipped"})
	ch, stop := b.Subscribe(0)
	stop()
	stop() // idempotent
	// The pump must exit; the channel closes without delivering more.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("subscriber channel never closed after stop")
		}
	}
}
