package jobs

// Job kinds, states, specifications, and the Job record itself.

import (
	"context"
	"sync"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/multiuser"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// Kind selects what a job does with its trace.
type Kind int

// Job kinds.
const (
	// KindReplay replays the trace once (or Replicas times concurrently)
	// and streams each step.
	KindReplay Kind = iota + 1
	// KindNavigationCampaign infers the trace's interaction grammar and
	// runs the WebErr navigation-error campaign over it (§V-A).
	KindNavigationCampaign
	// KindTimingCampaign runs the WebErr timing-error campaign over the
	// trace (§V-B).
	KindTimingCampaign
	// KindReport ingests an AUsER user experience report: the reported
	// trace is replayed, minimized to a shortest reproducer, and
	// classified (the paper's Fig. 1 server side).
	KindReport
	// KindFuzzCampaign runs the coverage-guided error-model fuzzing
	// campaign: candidates from the composable human-error DSL
	// (internal/errmodel), scheduled through the campaign executor with
	// replay-coverage feedback.
	KindFuzzCampaign
	// KindLoadCampaign runs the multi-user load campaign: Users virtual
	// users in shared worlds, interleavings explored per world by the
	// deterministic schedule explorer (internal/multiuser), surfacing
	// contention-only findings no single-user campaign can reach.
	KindLoadCampaign
)

func (k Kind) String() string {
	switch k {
	case KindReplay:
		return "replay"
	case KindNavigationCampaign:
		return "navigation-campaign"
	case KindTimingCampaign:
		return "timing-campaign"
	case KindReport:
		return "report"
	case KindFuzzCampaign:
		return "fuzz-campaign"
	case KindLoadCampaign:
		return "load-campaign"
	default:
		return "unknown"
	}
}

// ParseKind resolves a kind name ("replay", "navigation-campaign",
// "timing-campaign", "report", "fuzz-campaign", "load-campaign");
// unknown names return 0.
func ParseKind(s string) Kind {
	for _, k := range Kinds() {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// State is a job's lifecycle position.
type State int

// Job states. Queued → Running → one of Done / Failed / Cancelled; a
// cancelled job may be resumed as a new job.
const (
	StateQueued State = iota + 1
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// States lists every job state, in lifecycle order — the metrics
// exporter enumerates it so jobs-by-state series exist even at zero.
func States() []State {
	return []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}
}

// Spec is a typed job specification — everything a runner needs, and
// nothing it can discover on its own.
type Spec struct {
	// Kind selects the runner.
	Kind Kind
	// Trace is the input trace (the correct trace for campaigns, the
	// reported trace for report ingestion).
	Trace command.Trace
	// TraceName labels the trace in listings (scenario name, archive
	// id).
	TraceName string
	// Mode is the browser build of the execution environments; zero
	// means DeveloperMode, the replay-fidelity build every tool uses.
	Mode browser.Mode
	// Replayer configures the replay sessions. Hooks are in-process
	// only; attaching them disables campaign prefix sharing exactly as
	// it always has.
	Replayer replayer.Options
	// Replicas, for replay jobs, replays the trace N times concurrently
	// in isolated environments (warr-replay -parallel). 0 or 1 replays
	// once, streaming each step.
	Replicas int
	// Parallelism is the campaign executor's concurrency (0 or 1 =
	// sequential).
	Parallelism int
	// MaxTraces bounds a navigation campaign (0 = all mutants).
	MaxTraces int
	// DisablePruning and DisablePrefixSharing are the campaign
	// ablations.
	DisablePruning       bool
	DisablePrefixSharing bool
	// Oracle overrides the campaign oracle (default ConsoleOracle). In-
	// process only.
	Oracle weberr.Oracle
	// FuzzBudget, for fuzz campaigns, bounds how many replays the
	// campaign spends (0 = campaign.DefaultFuzzBudget).
	FuzzBudget int
	// FuzzSeed seeds the fuzz campaign's mutation stream; a fixed seed
	// and budget make the findings report byte-identical across runs.
	FuzzSeed int64
	// Grammar, for navigation campaigns, skips task-tree inference and
	// injects errors into this grammar directly — for callers that
	// already inferred it (the corpus runner fingerprints the grammar
	// before running campaigns). In-process only.
	Grammar *weberr.Grammar
	// Description, for report jobs, is the user's bug description.
	Description string
	// Workload, for load campaigns, names the multi-user workload (load
	// campaigns take a workload, not a trace).
	Workload string
	// Users is a load campaign's total virtual user count; Cohort is how
	// many share one world; ScheduleBudget bounds the interleavings
	// explored per world size (0s take the multiuser defaults).
	Users          int
	Cohort         int
	ScheduleBudget int
	// ScheduleSeed seeds the interleaving explorer; a fixed seed and
	// budget make the findings report byte-identical across runs.
	ScheduleSeed int64
	// Duration, for load campaigns, is each world's virtual time budget
	// (0 = default per-slot pacing).
	Duration time.Duration
	// LoadSharing disabled re-executes identical world schedules instead
	// of sharing their results — the load campaign's cost ablation.
	DisableLoadSharing bool
}

// Classification is the stored outcome of AUsER report ingestion.
type Classification struct {
	// Verdict is console-error, replay-failure, replay-halted, or
	// no-repro.
	Verdict string
	// Signal is the observation the verdict rests on.
	Signal string
	// Minimized is the shortest prefix of the reported trace that still
	// reproduces the signal (the full trace for no-repro).
	Minimized command.Trace
	// Replays counts the replays the minimizer spent.
	Replays int
}

// Job is one unit of engine work: its spec, lifecycle state, event bus,
// and — once finished — its results. All mutable fields are guarded;
// accessors return snapshots safe to use from any goroutine.
type Job struct {
	// ID is the engine-assigned identifier ("job-1", "job-2", ...).
	ID string
	// Spec is the submitted specification (read-only after submit).
	Spec Spec

	bus    *Bus
	engine *Engine

	ctx    context.Context
	cancel context.CancelCauseFunc
	doneCh chan struct{}

	// resumeFrom is the cancelled job this one continues (nil for fresh
	// jobs). resumeImage is the encoded checkpoint world a
	// journal-revived job resumes from instead (nil otherwise).
	resumeFrom  *Job
	resumeImage []byte

	mu       sync.Mutex
	state    State
	err      error // runner failure (StateFailed)
	cause    error // cancellation cause (StateCancelled)
	created  time.Time
	started  time.Time
	finished time.Time

	// Results, by kind.
	result   *replayer.Result    // replay: the (possibly partial) replay result
	tab      *browser.Tab        // replay: final page state (single-session jobs)
	session  *replayer.Session   // replay: retained for resume
	plan     []campaign.Job      // campaigns: the executed trace plan, kept for resume
	outcomes []campaign.Outcome  // replicas and campaigns
	report   *weberr.Report      // campaigns
	tree     *weberr.TaskTree    // navigation campaigns
	grammar  *weberr.Grammar     // navigation campaigns
	fuzz     *campaign.FuzzStats // fuzz campaigns
	load     *multiuser.Report   // load campaigns
	class    *Classification     // report ingestion
	resumed  string              // id of the job resuming this one
}

// Events returns the job's event bus.
func (j *Job) Events() *Bus { return j.bus }

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the runner failure for StateFailed jobs.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// CancelCause returns why a cancelled job was cancelled.
func (j *Job) CancelCause() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cause
}

// Result returns the replay result (nil for campaign jobs, partial for
// cancelled jobs).
func (j *Job) Result() *replayer.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Tab returns the final page of a single-session replay job, for
// oracles that inspect it. It is only safe to use after the job
// finished.
func (j *Job) Tab() *browser.Tab {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tab
}

// Outcomes returns the per-trace campaign outcomes (or per-replica
// outcomes for replicated replay jobs), in job order.
func (j *Job) Outcomes() []campaign.Outcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outcomes
}

// Report returns a campaign job's report.
func (j *Job) Report() *weberr.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// TaskTree and Grammar return a navigation campaign's inferred
// structures (nil until inference ran).
func (j *Job) TaskTree() *weberr.TaskTree {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tree
}

// Grammar returns the grammar a navigation campaign injected errors
// into.
func (j *Job) Grammar() *weberr.Grammar {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.grammar
}

// FuzzStats returns a fuzz campaign's aggregate stats (nil until the
// campaign ran).
func (j *Job) FuzzStats() *campaign.FuzzStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fuzz
}

// LoadReport returns a load campaign's report (nil until the campaign
// ran).
func (j *Job) LoadReport() *multiuser.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.load
}

// Classification returns a report job's ingestion outcome.
func (j *Job) Classification() *Classification {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.class
}

// ResumedBy returns the id of the job that resumed this one ("" if
// none).
func (j *Job) ResumedBy() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resumed
}

// Created, Started and Finished return the job's lifecycle timestamps
// (zero until reached).
func (j *Job) Created() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.created
}

// Started returns when a worker picked the job up.
func (j *Job) Started() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started
}

// Finished returns when the job reached a terminal state.
func (j *Job) Finished() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// Wait blocks until the job reaches a terminal state (or ctx expires).
func (j *Job) Wait(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// setState transitions the job and publishes the StateEvent; terminal
// states release Wait.
func (j *Job) setState(s State) {
	j.mu.Lock()
	j.state = s
	switch s {
	case StateRunning:
		j.started = now()
	case StateDone, StateFailed, StateCancelled:
		j.finished = now()
	}
	terminal := s == StateDone || s == StateFailed || s == StateCancelled
	j.mu.Unlock()
	j.publishState()
	if terminal {
		close(j.doneCh)
	}
}

// publishState emits a StateEvent for the job's current state.
func (j *Job) publishState() {
	j.mu.Lock()
	ev := StateEvent{Type: "state", Job: j.ID, Kind: j.Spec.Kind.String(), State: j.state.String()}
	if j.cause != nil {
		ev.Cause = j.cause.Error()
	}
	if j.err != nil {
		ev.Error = j.err.Error()
	}
	j.mu.Unlock()
	j.bus.Publish(ev)
}

// now is the engine's wall clock (jobs run on real time; the simulated
// worlds inside them keep their own virtual clocks).
func now() time.Time { return time.Now() }
