package jobs

// The per-kind job runners. Every runner executes on a worker
// goroutine, drives the existing replayer.Session / campaign.Executor
// APIs under the job's cancellable context, publishes its progress on
// the job's event bus, and stores its results on the Job. A runner
// returning a non-nil error fails the job; cancellation is not an
// error — the engine derives the Cancelled state from the job context
// afterwards.

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/errmodel"
	"github.com/dslab-epfl/warr/internal/image"
	"github.com/dslab-epfl/warr/internal/multiuser"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// ---- replay ----

// runReplay replays the spec trace once (streaming each step) or
// Replicas times concurrently (streaming per-replica summaries).
func (e *Engine) runReplay(job *Job) error {
	if job.Spec.Replicas > 1 {
		return e.runReplicated(job)
	}
	// Resuming: fork the retained session's world at the cancellation
	// point and replay only the remaining commands. The already-replayed
	// steps are re-published first, so a subscriber of the resumed job
	// sees the exact stream an uninterrupted replay would have produced.
	if rf := job.resumeFrom; rf != nil {
		rf.mu.Lock()
		prior := rf.session
		rf.mu.Unlock()
		if prior != nil {
			if resumed, err := prior.Resume(job.ctx); err == nil {
				for _, st := range resumed.Result().Steps {
					job.bus.Publish(NewStepEvent(st))
				}
				return e.driveSession(job, resumed)
			}
			// The world cannot fork (plugin state without a Snapshotter,
			// say): fall through to a fresh full replay — resumption must
			// never drop a job just because the cheap path is closed.
		}
	}
	// Journal revival: restore the checkpointed world and pick up at the
	// next unreplayed command, re-publishing the checkpointed steps so
	// subscribers see the stream an uninterrupted replay would produce.
	// Any restore failure falls through to a fresh full replay.
	if len(job.resumeImage) > 0 {
		if session, ok := e.loadCheckpoint(job); ok {
			for _, st := range session.Result().Steps {
				job.bus.Publish(NewStepEvent(st))
			}
			return e.driveSession(job, session)
		}
	}
	if cause := context.Cause(job.ctx); cause != nil {
		// Cancelled before any command: publish the same empty partial
		// result an unstarted session reports on its first Next.
		res := &replayer.Result{Cancelled: true, CancelCause: cause}
		job.mu.Lock()
		job.result = res
		job.mu.Unlock()
		job.bus.Publish(NewSummaryEvent(0, len(job.Spec.Trace.Commands), res, nil))
		return nil
	}
	b := e.factory(job.Spec.Mode)()
	session, err := replayer.New(b, job.Spec.Replayer).NewSession(job.ctx, job.Spec.Trace)
	if err != nil {
		return err
	}
	return e.driveSession(job, session)
}

// loadCheckpoint rebuilds the world and session of a revived job's
// checkpoint image. Failures are warned about, never fatal — the caller
// falls back to a fresh full replay.
func (e *Engine) loadCheckpoint(job *Job) (*replayer.Session, bool) {
	warnf := func(format string, args ...any) {
		if j := e.opts.Journal; j != nil {
			j.warnf(format, args...)
		}
	}
	img, _, err := image.Decode(job.resumeImage)
	if err != nil {
		warnf("jobs: decoding %s checkpoint: %v", job.ID, err)
		return nil, false
	}
	_, session, err := image.LoadSession(img, job.ctx, nil)
	if err != nil {
		warnf("jobs: restoring %s checkpoint: %v", job.ID, err)
		return nil, false
	}
	if session.Result().Cancelled {
		// The checkpoint froze a cancelled session; Resume clears the
		// final mark (forking the freshly restored world) so Next picks
		// up at the first unreplayed command.
		resumed, err := session.Resume(job.ctx)
		if err != nil {
			warnf("jobs: resuming %s checkpoint: %v", job.ID, err)
			return nil, false
		}
		session = resumed
	}
	return session, true
}

// driveSession replays the session's remaining commands, streaming one
// StepEvent per command and a closing SummaryEvent.
func (e *Engine) driveSession(job *Job, session *replayer.Session) error {
	already := len(session.Result().Steps)
	start := time.Now()
	allocs0 := readMallocs()
	for {
		step, ok := session.Next()
		if !ok {
			break
		}
		job.bus.Publish(NewStepEvent(step))
	}
	res := session.Result()
	e.metrics.observeReplay(len(res.Steps)-already, time.Since(start), readMallocs()-allocs0)
	job.mu.Lock()
	job.result = res
	job.tab = session.Tab()
	job.session = session
	job.mu.Unlock()
	job.bus.Publish(NewSummaryEvent(0, len(session.Trace().Commands), res, session.Tab()))
	return nil
}

// runReplicated replays the trace Replicas times concurrently over
// isolated environments — warr-replay's -parallel determinism check.
func (e *Engine) runReplicated(job *Job) error {
	spec := job.Spec
	plan := make([]campaign.Job, spec.Replicas)
	for i := range plan {
		plan[i] = campaign.Job{Trace: spec.Trace}
	}
	exec := campaign.New(e.factory(spec.Mode), campaign.Options{
		Parallelism: spec.Replicas,
		Replayer:    spec.Replayer,
		// Replicas are identical; a failure must not prune the rest.
		DisablePruning: true,
	})
	outcomes := e.executePlan(job, exec, plan)
	job.mu.Lock()
	job.plan = plan
	job.outcomes = outcomes
	job.mu.Unlock()
	for i, out := range outcomes {
		if out.Skipped {
			job.bus.Publish(SkippedEvent{Type: "skipped", Replica: i})
			continue
		}
		job.bus.Publish(NewSummaryEvent(i, len(spec.Trace.Commands), out.Result, nil))
	}
	return nil
}

// ---- campaigns ----

// campaignOptions translates a job spec into weberr campaign options.
func campaignOptions(spec Spec) weberr.CampaignOptions {
	return weberr.CampaignOptions{
		Oracle:               spec.Oracle,
		Replayer:             spec.Replayer,
		DisablePruning:       spec.DisablePruning,
		DisablePrefixSharing: spec.DisablePrefixSharing,
		MaxTraces:            spec.MaxTraces,
		Parallelism:          spec.Parallelism,
	}
}

// runNavigationCampaign infers the grammar and runs the WebErr
// navigation-error campaign over it — the same plan → executor →
// report path RunNavigationCampaign wraps.
func (e *Engine) runNavigationCampaign(job *Job) error {
	spec := job.Spec
	copts := campaignOptions(spec)
	newEnv := e.factory(spec.Mode)
	plan := job.priorPlan()
	if plan == nil {
		g := spec.Grammar
		if g == nil {
			tree, err := weberr.InferTaskTree(newEnv, spec.Trace)
			if err != nil {
				return fmt.Errorf("jobs: inferring task tree: %w", err)
			}
			g = weberr.FromTaskTree(tree)
			job.mu.Lock()
			job.tree = tree
			job.mu.Unlock()
		}
		job.mu.Lock()
		job.grammar = g
		job.mu.Unlock()
		plan = weberr.NavigationPlan(g, copts)
	}
	exec := weberr.NavigationExecutor(newEnv, copts)
	outcomes, ok := e.distribute(job, exec, plan, "navigation")
	if !ok {
		outcomes = e.executePlan(job, exec, plan)
	}
	e.finishCampaign(job, "navigation", plan, outcomes)
	return nil
}

// runTimingCampaign runs the WebErr timing-error campaign over the
// trace.
func (e *Engine) runTimingCampaign(job *Job) error {
	spec := job.Spec
	copts := campaignOptions(spec)
	plan := job.priorPlan()
	if plan == nil {
		plan = weberr.TimingPlan(spec.Trace)
	}
	exec := weberr.TimingExecutor(e.factory(spec.Mode), copts)
	outcomes, ok := e.distribute(job, exec, plan, "timing")
	if !ok {
		outcomes = e.executePlan(job, exec, plan)
	}
	e.finishCampaign(job, "timing", plan, outcomes)
	return nil
}

// distribute offers a campaign plan to the configured Distributor.
// Fresh jobs with the default oracle are eligible; resumed jobs carry
// partial outcomes only the local merge path understands, and closures
// (custom oracles) cannot cross a process boundary.
func (e *Engine) distribute(job *Job, exec *campaign.Executor, plan []campaign.Job, kind string) ([]campaign.Outcome, bool) {
	d := e.opts.Distributor
	if d == nil || job.resumeFrom != nil || job.Spec.Oracle != nil {
		return nil, false
	}
	return d.DistributeCampaign(job.ctx, exec, plan, DistSpec{
		Campaign:       kind,
		Mode:           job.Spec.Mode,
		Replayer:       job.Spec.Replayer,
		DisablePruning: job.Spec.DisablePruning,
		Parallelism:    job.Spec.Parallelism,
	})
}

// priorPlan returns the plan (and, for navigation campaigns, the
// inferred structures) carried over from the job this one resumes, or
// nil when the job is fresh or the cancelled run never got that far.
func (j *Job) priorPlan() []campaign.Job {
	rf := j.resumeFrom
	if rf == nil {
		return nil
	}
	rf.mu.Lock()
	plan, tree, g := rf.plan, rf.tree, rf.grammar
	rf.mu.Unlock()
	j.mu.Lock()
	j.tree, j.grammar = tree, g
	j.mu.Unlock()
	return plan
}

// executePlan runs the plan on the executor. When the job resumes a
// cancelled one whose outcomes partially exist, only the traces that
// never reached a judgeable end (skipped, or cancelled mid-replay) are
// re-executed; finished outcomes — replayed, pruned, failed — are
// merged from the cancelled run, so no replay is spent twice.
func (e *Engine) executePlan(job *Job, exec *campaign.Executor, plan []campaign.Job) []campaign.Outcome {
	var prior []campaign.Outcome
	if rf := job.resumeFrom; rf != nil {
		rf.mu.Lock()
		prior = rf.outcomes
		rf.mu.Unlock()
	}
	if len(prior) != len(plan) {
		return exec.Execute(job.ctx, plan)
	}
	merged := append([]campaign.Outcome(nil), prior...)
	var idxs []int
	for i, out := range prior {
		if out.Skipped || (out.Result != nil && out.Result.Cancelled) {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return merged
	}
	sub := make([]campaign.Job, len(idxs))
	for k, i := range idxs {
		sub[k] = plan[i]
	}
	outs := exec.Execute(job.ctx, sub)
	for k, out := range outs {
		out.Index = idxs[k]
		merged[idxs[k]] = out
	}
	return merged
}

// finishCampaign stores the campaign results and publishes the outcome
// stream: one OutcomeEvent per trace in plan order, then the
// ReportEvent.
func (e *Engine) finishCampaign(job *Job, kind string, plan []campaign.Job, outcomes []campaign.Outcome) {
	rep := weberr.ReportOutcomes(outcomes)
	job.mu.Lock()
	job.plan = plan
	job.outcomes = outcomes
	job.report = rep
	job.mu.Unlock()
	for _, out := range outcomes {
		job.bus.Publish(newOutcomeEvent(out))
	}
	job.bus.Publish(newReportEvent(kind, rep))
}

// newOutcomeEvent converts one executor outcome into its event.
func newOutcomeEvent(out campaign.Outcome) OutcomeEvent {
	ev := OutcomeEvent{Type: "outcome", Index: out.Index}
	switch m := out.Job.Meta.(type) {
	case weberr.Injection:
		ev.Injection = m.String()
	case campaign.FuzzCandidate:
		ev.Injection = weberr.Injection{Kind: weberr.Fuzz, Detail: m.Program}.String()
	}
	if len(out.Coverage) > 0 {
		ev.Coverage = hex.EncodeToString(out.Coverage)
	}
	switch {
	case out.Skipped:
		ev.Status = "skipped"
	case out.Pruned:
		ev.Status = "pruned"
	case out.Result != nil && out.Result.Cancelled:
		ev.Status = "cancelled"
	default:
		ev.Status = "replayed"
	}
	if out.Result != nil {
		ev.Played = out.Result.Played
		ev.Failed = out.Result.Failed
	}
	if ev.Status == "replayed" && out.Verdict != nil {
		ev.Finding = true
		ev.Observed = out.Verdict.Error()
	}
	return ev
}

// newReportEvent converts a campaign report into its event.
func newReportEvent(kind string, rep *weberr.Report) ReportEvent {
	ev := ReportEvent{
		Type:           "report",
		Campaign:       kind,
		Generated:      rep.Generated,
		Replayed:       rep.Replayed,
		Pruned:         rep.Pruned,
		Skipped:        rep.Skipped,
		ReplayFailures: rep.ReplayFailures,
	}
	for _, f := range rep.Findings {
		ev.Findings = append(ev.Findings, FindingRecord{
			Injection: f.Injection.String(),
			Observed:  f.Observed.Error(),
		})
	}
	return ev
}

// ---- fuzz campaign ----

// runFuzzCampaign runs the coverage-guided error-model fuzzing loop:
// candidates from the composable human-error DSL over the spec trace,
// scheduled in batches through the campaign executor, with replay
// coverage feeding the mutation corpus. With a fixed FuzzSeed and
// FuzzBudget the findings report is byte-identical across runs, so a
// resumed fuzz job simply re-runs from scratch — determinism is the
// checkpoint.
func (e *Engine) runFuzzCampaign(job *Job) error {
	spec := job.Spec
	oracle := spec.Oracle
	if oracle == nil {
		oracle = weberr.ConsoleOracle
	}
	budget := spec.FuzzBudget
	if budget <= 0 {
		budget = campaign.DefaultFuzzBudget
	}
	fopts := campaign.FuzzOptions{
		Budget:               budget,
		Parallelism:          spec.Parallelism,
		Replayer:             spec.Replayer,
		DisablePrefixSharing: spec.DisablePrefixSharing,
		// Same gating as the navigation campaign: a trace broken by its
		// own injected error is a replay failure, not an app bug, and a
		// cancelled partial replay must not be judged.
		Inspect: func(cj campaign.Job, res *replayer.Result, tab *browser.Tab) error {
			if res.Failed > 0 || res.Cancelled {
				return nil
			}
			return oracle(tab, res)
		},
		Coverage: errmodel.CampaignCoverage,
	}
	// Offer each batch to the distributor under the same eligibility
	// rules as enumerated campaigns; a refusal falls back to the local
	// executor mid-loop.
	if d := e.opts.Distributor; d != nil && spec.Oracle == nil && job.resumeFrom == nil {
		dspec := DistSpec{
			Campaign: "fuzz",
			Mode:     spec.Mode,
			Replayer: spec.Replayer,
			// The fuzz loop owns pruning (determinism contract); workers
			// must not prune on their own.
			DisablePruning: true,
			Parallelism:    spec.Parallelism,
		}
		fopts.Execute = func(ctx context.Context, exec *campaign.Executor, batch []campaign.Job) []campaign.Outcome {
			if outs, ok := d.DistributeCampaign(ctx, exec, batch, dspec); ok {
				return outs
			}
			return exec.Execute(ctx, batch)
		}
	}
	fx := campaign.NewFuzzExecutor(e.factory(spec.Mode), fopts)
	fx.OnBatch = func(st campaign.FuzzStats) {
		job.bus.Publish(newFuzzEvent(st, budget))
	}
	src := errmodel.NewMutator(spec.Trace, spec.FuzzSeed, apps.QueryDictionary())
	stats := fx.Run(job.ctx, src)
	rep := fuzzReport(stats)
	outcomes := fx.Outcomes()
	job.mu.Lock()
	job.outcomes = outcomes
	job.report = rep
	job.fuzz = stats
	job.mu.Unlock()
	e.metrics.observeFuzz(stats.Generated, stats.Deduped, stats.Novel, len(stats.Findings))
	for _, out := range outcomes {
		job.bus.Publish(newOutcomeEvent(out))
	}
	job.bus.Publish(newFuzzEvent(*stats, budget))
	job.bus.Publish(newReportEvent("fuzz", rep))
	return nil
}

// newFuzzEvent renders the campaign's running stats as an event frame.
func newFuzzEvent(st campaign.FuzzStats, budget int) FuzzEvent {
	return FuzzEvent{
		Type:         "fuzz",
		Generated:    st.Generated,
		Deduped:      st.Deduped,
		Pruned:       st.Pruned,
		Replayed:     st.Replayed,
		Skipped:      st.Skipped,
		Novel:        st.Novel,
		CorpusSize:   st.CorpusSize,
		CoverageBits: st.CoverageBits,
		Findings:     len(st.Findings),
		Budget:       budget,
		Spent:        st.Spent(),
	}
}

// fuzzReport translates the fuzz campaign's stats into the shared
// weberr report shape: each finding's injection is the Fuzz kind
// carrying its serialized mutation program.
func fuzzReport(st *campaign.FuzzStats) *weberr.Report {
	rep := &weberr.Report{
		Generated:      st.Generated,
		Replayed:       st.Replayed,
		Pruned:         st.Pruned,
		Skipped:        st.Skipped,
		ReplayFailures: st.ReplayFailures,
	}
	for _, f := range st.Findings {
		rep.Findings = append(rep.Findings, weberr.Finding{
			Injection: weberr.Injection{Kind: weberr.Fuzz, Detail: f.Program},
			Trace:     f.Trace,
			Observed:  errors.New(f.Observed),
		})
	}
	return rep
}

// ---- load campaign ----

// runLoadCampaign runs the multi-user shared-world load campaign: the
// interleaving explorer perturbs per-world schedules, worlds execute
// them over shared environments, and violations aggregate into
// interference findings. With a fixed seed the findings report is
// byte-identical across runs, parallelism, and sharing modes, so a
// resumed load job simply re-runs from scratch — determinism is the
// checkpoint (same contract as the fuzz campaign).
func (e *Engine) runLoadCampaign(job *Job) error {
	spec := job.Spec
	o := multiuser.Options{
		Workload:       spec.Workload,
		Users:          spec.Users,
		Cohort:         spec.Cohort,
		Budget:         spec.ScheduleBudget,
		Seed:           spec.ScheduleSeed,
		Duration:       spec.Duration,
		Mode:           spec.Mode,
		Parallelism:    spec.Parallelism,
		DisableSharing: spec.DisableLoadSharing,
		OnProgress: func(p multiuser.Progress) {
			// The bus retains full history; a million-user campaign
			// absorbs hundreds of thousands of worlds, so progress
			// frames publish at ~1% granularity (the closing frame
			// always carries the final counters).
			step := p.Worlds / 100
			if step < 1 {
				step = 1
			}
			if p.WorldsDone%step != 0 && p.WorldsDone != p.Worlds {
				return
			}
			job.bus.Publish(LoadEvent{
				Type:       "load",
				Workload:   spec.Workload,
				Users:      p.Users,
				Worlds:     p.Worlds,
				WorldsDone: p.WorldsDone,
				Executed:   p.Executed,
				Shared:     p.Shared,
			})
		},
	}
	// Offer the deduplicated schedule jobs to the distributor when it
	// speaks the load capability; schedules are wire-safe values, so the
	// only ineligible jobs are resumed ones (local-only by convention
	// with the other campaigns).
	if d, ok := e.opts.Distributor.(LoadDistributor); ok && job.resumeFrom == nil {
		o.Execute = func(ctx context.Context, sjobs []multiuser.ScheduleJob) ([]multiuser.ScheduleResult, bool) {
			return d.DistributeLoad(ctx, sjobs)
		}
	}
	rep, err := multiuser.Run(job.ctx, o)
	if err != nil {
		return err
	}
	wrep := loadReport(rep)
	job.mu.Lock()
	job.load = rep
	job.report = wrep
	job.mu.Unlock()
	e.metrics.observeLoad(rep.Users, rep.Worlds, rep.Executed, rep.Shared, len(rep.Findings))
	job.bus.Publish(LoadEvent{
		Type:         "load",
		Workload:     rep.Workload,
		Users:        rep.Users,
		Worlds:       rep.Worlds,
		WorldsDone:   rep.Worlds,
		Executed:     rep.Executed,
		Shared:       rep.Shared,
		CoverageBits: rep.CoverageBits,
		Findings:     len(rep.Findings),
	})
	job.bus.Publish(newReportEvent("load", wrep))
	return nil
}

// loadReport translates a load-campaign report into the shared weberr
// report shape: each finding's injection is the Interleave kind
// carrying the reproducing schedule.
func loadReport(rep *multiuser.Report) *weberr.Report {
	w := &weberr.Report{
		Generated: rep.Executed + rep.Shared,
		Replayed:  rep.Executed,
	}
	for _, f := range rep.Findings {
		w.Findings = append(w.Findings, weberr.Finding{
			Injection: weberr.Injection{Kind: weberr.Interleave, Detail: f.Schedule},
			Observed:  fmt.Errorf("[%s] %s", f.Kind, f.Detail),
		})
	}
	return w
}

// ---- AUsER report ingestion ----

// runReport is the server side of the paper's Fig. 1: a user error
// report arrives, its trace is replayed (streamed step by step),
// minimized to a shortest reproducer of the observed signal, and
// classified. A cancelled ingestion resumes as a fresh full run.
func (e *Engine) runReport(job *Job) error {
	spec := job.Spec
	if cause := context.Cause(job.ctx); cause != nil {
		res := &replayer.Result{Cancelled: true, CancelCause: cause}
		job.mu.Lock()
		job.result = res
		job.mu.Unlock()
		job.bus.Publish(NewSummaryEvent(0, len(spec.Trace.Commands), res, nil))
		return nil
	}
	b := e.factory(spec.Mode)()
	session, err := replayer.New(b, spec.Replayer).NewSession(job.ctx, spec.Trace)
	if err != nil {
		return err
	}
	if err := e.driveSession(job, session); err != nil {
		return err
	}
	res := session.Result()
	if res.Cancelled {
		return nil
	}
	cls := e.classify(job, res, session)
	if cls == nil {
		return nil // cancelled mid-minimization
	}
	job.mu.Lock()
	job.class = cls
	job.mu.Unlock()
	job.bus.Publish(ClassificationEvent{
		Type:              "classification",
		Verdict:           cls.Verdict,
		Signal:            cls.Signal,
		Commands:          len(spec.Trace.Commands),
		MinimizedCommands: len(cls.Minimized.Commands),
		Replays:           cls.Replays,
	})
	return nil
}

// classify derives the ingestion verdict from the full replay and
// minimizes the trace to the shortest prefix still showing the signal.
// It returns nil when the job was cancelled mid-minimization.
func (e *Engine) classify(job *Job, res *replayer.Result, session *replayer.Session) *Classification {
	spec := job.Spec
	tab := session.Tab()
	replays := 1 // the ingestion replay itself
	var verdict, signal string
	var reproduces func(*replayer.Result, *replayer.Session) bool
	switch {
	case len(tab.ConsoleErrors()) > 0:
		verdict, signal = "console-error", tab.ConsoleErrors()[0].Message
		reproduces = func(r *replayer.Result, s *replayer.Session) bool {
			return len(s.Tab().ConsoleErrors()) > 0
		}
	case res.Halted:
		verdict, signal = "replay-halted", firstFailure(res)
		reproduces = func(r *replayer.Result, s *replayer.Session) bool { return r.Halted }
	case res.Failed > 0:
		verdict, signal = "replay-failure", firstFailure(res)
		reproduces = func(r *replayer.Result, s *replayer.Session) bool { return r.Failed > 0 }
	default:
		return &Classification{Verdict: "no-repro", Minimized: spec.Trace, Replays: replays}
	}

	// Binary search the shortest prefix reproducing the signal. The
	// invariants: hi always reproduces (the full trace did), lo never
	// does (lo == -1 is the vacuous floor). Console errors and replay
	// failures accumulate — once a prefix shows them, every longer
	// prefix does too — so the predicate is monotone over prefix length.
	lo, hi := -1, len(spec.Trace.Commands)
	for hi-lo > 1 {
		if context.Cause(job.ctx) != nil {
			return nil
		}
		mid := (lo + hi) / 2
		r, s, err := e.replayPrefix(job, mid)
		replays++
		if err == nil && r.Cancelled {
			return nil
		}
		if err == nil && reproduces(r, s) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return &Classification{
		Verdict:   verdict,
		Signal:    signal,
		Minimized: command.Trace{StartURL: spec.Trace.StartURL, Commands: spec.Trace.Commands[:hi]},
		Replays:   replays,
	}
}

// replayPrefix replays the first n commands of the job's trace in a
// fresh environment.
func (e *Engine) replayPrefix(job *Job, n int) (*replayer.Result, *replayer.Session, error) {
	spec := job.Spec
	sub := command.Trace{StartURL: spec.Trace.StartURL, Commands: spec.Trace.Commands[:n]}
	b := e.factory(spec.Mode)()
	s, err := replayer.New(b, spec.Replayer).NewSession(job.ctx, sub)
	if err != nil {
		return nil, nil, err
	}
	return s.Run(), s, nil
}

// firstFailure describes the first failed step of a result.
func firstFailure(res *replayer.Result) string {
	for _, s := range res.Steps {
		if s.Status == replayer.StepFailed {
			return fmt.Sprintf("command %d (%s) failed: %v", s.Index, s.Cmd.Action, s.Err)
		}
	}
	return ""
}
