package faults

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport is the client-side injection shim: an http.RoundTripper
// that classifies each outgoing request by its distrib wire path and
// applies the injector's verdict — delay before sending, drop instead
// of sending, corrupt the transferred body. POST bodies (completions)
// are corrupted on the way out; GET bodies (image downloads) on the
// way back — either way the receiver's strict decoding must catch it.
// Requests on paths the classifier does not recognize pass through
// untouched, as does everything when Injector is nil.
type Transport struct {
	// Base performs the real round trip (default http.DefaultTransport).
	Base http.RoundTripper
	// Injector decides the faults. nil injects nothing.
	Injector *Injector
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	p, ok := Classify(req.URL.Path)
	if !ok {
		return base.RoundTrip(req)
	}
	act := t.Injector.Request(p)
	if act.Zero() {
		return base.RoundTrip(req)
	}
	if act.Delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(time.Duration(act.Delay)):
		}
	}
	if act.Drop {
		// The request never reaches the wire; drain the body so the
		// caller's connection bookkeeping stays clean.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, &Error{Path: p}
	}
	if act.Corrupt && req.Body != nil {
		data, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		data = CorruptBody(data)
		req.Body = io.NopCloser(bytes.NewReader(data))
		req.ContentLength = int64(len(data))
		act.Corrupt = false // the outbound transfer took the hit
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !act.Corrupt {
		return resp, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(bytes.NewReader(CorruptBody(data)))
	resp.ContentLength = int64(len(data))
	return resp, nil
}

// Classify maps a request URL path to its distrib wire path: the last
// segments of the coordinator mount ("…/lease", "…/image/{digest}",
// "…/complete", "…/heartbeat"). ok is false for anything else.
func Classify(urlPath string) (Path, bool) {
	switch {
	case strings.HasSuffix(urlPath, "/lease"):
		return PathLease, true
	case strings.Contains(urlPath, "/image/"):
		return PathImage, true
	case strings.HasSuffix(urlPath, "/complete"):
		return PathComplete, true
	case strings.HasSuffix(urlPath, "/heartbeat"):
		return PathHeartbeat, true
	}
	return "", false
}
