package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"drop:lease/1",
		"drop:heartbeat/4096",
		"delay:image/50ms",
		"delay:complete/1.5s",
		"corrupt:complete/1",
		"corrupt:image/2",
		"crash:worker1@shard3",
		"crash:chaos-a.1_x@shard1",
		"drop:lease/2;delay:image/50ms;crash:worker1@shard3;corrupt:complete/1",
	}
	for _, s := range cases {
		sched, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if got := sched.String(); got != s {
			t.Errorf("round trip changed %q -> %q", s, got)
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := []string{
		"",
		"id",                // errmodel's identity, not ours
		"drop:lease/0",      // ordinals are 1-based
		"drop:lease/+1",     // non-canonical number
		"drop:lease/007",    // non-canonical number
		"drop:lease/4097",   // over MaxOrdinal
		"drop:queue/1",      // unknown path
		"drop:lease",        // missing ordinal
		"delay:image/0s",    // non-positive delay
		"delay:image/11s",   // over MaxDelay
		"delay:image/0.05s", // non-canonical duration (50ms)
		"delay:image/50",    // unitless duration
		"crash:@shard1",     // empty worker
		"crash:w1",          // missing @shardN
		"crash:w;x@shard1",  // metacharacter in name (split first)
		"crash:a b@shard1",  // space in name
		"crash:" + strings.Repeat("w", 65) + "@shard1", // overlong name
		"explode:lease/1", // unknown op
		strings.Repeat("drop:lease/1;", MaxOps) + "drop:lease/1", // overlong schedule
	}
	for _, s := range cases {
		if sched, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted: %v", s, sched)
		}
	}
}

func TestInjectorOrdinalsAreDeterministic(t *testing.T) {
	sched, err := Parse("drop:lease/2;corrupt:image/1;delay:complete/1ms")
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		in := NewInjector(sched, nil)
		if act := in.Request(PathLease); !act.Zero() {
			t.Fatalf("run %d: 1st lease request got %+v, want nothing", run, act)
		}
		if act := in.Request(PathLease); !act.Drop {
			t.Fatalf("run %d: 2nd lease request not dropped", run)
		}
		if act := in.Request(PathLease); !act.Zero() {
			t.Fatalf("run %d: 3rd lease request got %+v, want nothing", run, act)
		}
		if act := in.Request(PathImage); !act.Corrupt {
			t.Fatalf("run %d: 1st image request not corrupted", run)
		}
		if act := in.Request(PathComplete); time.Duration(act.Delay) != time.Millisecond {
			t.Fatalf("run %d: complete delay = %v, want 1ms", run, time.Duration(act.Delay))
		}
		if got := in.Total(); got != 3 {
			t.Fatalf("run %d: Total = %d, want 3", run, got)
		}
		fired := in.Fired()
		if fired["drop"] != 1 || fired["corrupt"] != 1 || fired["delay"] != 1 {
			t.Fatalf("run %d: Fired = %v", run, fired)
		}
	}
}

func TestInjectorCrashOnGrant(t *testing.T) {
	sched, err := Parse("crash:w1@shard2")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(sched, nil)
	if in.OnGrant("w1") {
		t.Fatal("crashed on 1st grant, want 2nd")
	}
	if in.OnGrant("w2") {
		t.Fatal("crashed the wrong worker")
	}
	if !in.OnGrant("w1") {
		t.Fatal("did not crash on w1's 2nd grant")
	}
	if in.OnGrant("w1") {
		t.Fatal("crashed again on w1's 3rd grant")
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if act := in.Request(PathLease); !act.Zero() {
		t.Fatalf("nil injector returned %+v", act)
	}
	if in.OnGrant("w") {
		t.Fatal("nil injector crashed a worker")
	}
	if in.Total() != 0 || in.Fired() != nil || in.Schedule() != nil {
		t.Fatal("nil injector reported injections")
	}
}

func TestGenerateRoundTripsAndReproduces(t *testing.T) {
	workers := []string{"w1", "w2", "w3"}
	for seed := int64(0); seed < 64; seed++ {
		sched := Generate(seed, GenOptions{Workers: workers})
		if len(sched) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		s := sched.String()
		again := Generate(seed, GenOptions{Workers: workers})
		if again.String() != s {
			t.Fatalf("seed %d not reproducible: %q vs %q", seed, s, again.String())
		}
		parsed, err := Parse(s)
		if err != nil {
			t.Fatalf("seed %d: generated schedule %q does not parse: %v", seed, s, err)
		}
		if parsed.String() != s {
			t.Fatalf("seed %d: round trip changed %q -> %q", seed, s, parsed.String())
		}
	}
	// Without workers, no crash ops appear (a client-side transport
	// cannot observe lease grants).
	for seed := int64(0); seed < 64; seed++ {
		for _, op := range Generate(seed, GenOptions{}) {
			if _, ok := op.(Crash); ok {
				t.Fatalf("seed %d generated a crash op with no workers", seed)
			}
		}
	}
}

func TestTransportInjects(t *testing.T) {
	var served int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, "payload-bytes")
	}))
	defer ts.Close()

	sched, err := Parse("drop:lease/1;corrupt:image/1;delay:heartbeat/1ms")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(sched, nil)
	client := &http.Client{Transport: &Transport{Injector: in}}

	// Dropped: the server never sees the request.
	_, err = client.Get(ts.URL + "/api/distrib/lease")
	var fe *Error
	if !errors.As(err, &fe) || fe.Path != PathLease {
		t.Fatalf("dropped lease request returned %v, want *faults.Error", err)
	}
	if served != 0 {
		t.Fatalf("dropped request reached the server")
	}
	// Second lease request passes through.
	resp, err := client.Get(ts.URL + "/api/distrib/lease")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Corrupted: body differs from what the server sent.
	resp, err = client.Get(ts.URL + "/api/distrib/image/abc123")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) == "payload-bytes" {
		t.Fatal("corrupted image body arrived intact")
	}
	if len(body) != len("payload-bytes") {
		t.Fatalf("corruption changed the body length: %d", len(body))
	}

	// Delayed but served.
	start := time.Now()
	resp, err = client.Post(ts.URL+"/api/distrib/heartbeat", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if time.Since(start) < time.Millisecond {
		t.Fatal("heartbeat was not delayed")
	}

	// Unclassified paths pass through untouched.
	resp, err = client.Get(ts.URL + "/api/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "payload-bytes" {
		t.Fatalf("unclassified request body altered: %q", body)
	}
}
