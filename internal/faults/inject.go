package faults

import (
	"fmt"
	"sync"
)

// Action is the injector's verdict for one wire request: apply Delay,
// then — when Drop — fail the request without serving it, otherwise
// serve it and — when Corrupt — flip a byte in the transferred body.
type Action struct {
	Drop    bool
	Delay   int64 // nanoseconds, summed over matching delay ops
	Corrupt bool
}

// Zero reports whether the action injects nothing.
func (a Action) Zero() bool { return !a.Drop && !a.Corrupt && a.Delay == 0 }

// Injector arms a schedule and answers, per wire request and per lease
// grant, which faults fire. Decisions are a pure function of the
// schedule and the per-path request ordinals (and per-worker grant
// ordinals for crashes), so one schedule misbehaves identically on
// every run with the same request ordering. All methods are safe for
// concurrent use and safe on a nil receiver — a nil *Injector injects
// nothing, which is what keeps the unarmed hot path at a single nil
// check.
type Injector struct {
	mu      sync.Mutex
	sched   Schedule
	seen    map[Path]int   // requests observed per path (1-based ordinals)
	granted map[string]int // leases granted per worker
	fired   map[string]int64
	total   int64
	logf    func(format string, args ...any)
}

// NewInjector arms a schedule. logf, when non-nil, receives one notice
// per injected fault.
func NewInjector(sched Schedule, logf func(format string, args ...any)) *Injector {
	return &Injector{
		sched:   sched,
		seen:    make(map[Path]int),
		granted: make(map[string]int),
		fired:   make(map[string]int64),
		logf:    logf,
	}
}

// Schedule returns the armed schedule (nil for a nil injector).
func (in *Injector) Schedule() Schedule {
	if in == nil {
		return nil
	}
	return in.sched
}

// Request records one wire request on a path and returns the faults to
// apply to it.
func (in *Injector) Request(p Path) Action {
	if in == nil {
		return Action{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seen[p]++
	ord := in.seen[p]
	var act Action
	for _, op := range in.sched {
		switch op := op.(type) {
		case Drop:
			if op.Path == p && op.N == ord {
				act.Drop = true
				in.firedLocked("drop", op)
			}
		case Delay:
			if op.Path == p {
				act.Delay += int64(op.Dur)
				in.firedLocked("delay", op)
			}
		case Corrupt:
			if op.Path == p && op.N == ord {
				act.Corrupt = true
				in.firedLocked("corrupt", op)
			}
		}
	}
	return act
}

// OnGrant records one lease grant to a worker and reports whether a
// crash op fires: the caller must direct the worker to die without
// executing or reporting the shard.
func (in *Injector) OnGrant(worker string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.granted[worker]++
	ord := in.granted[worker]
	crash := false
	for _, op := range in.sched {
		if op, ok := op.(Crash); ok && op.Worker == worker && op.N == ord {
			crash = true
			in.firedLocked("crash", op)
		}
	}
	return crash
}

func (in *Injector) firedLocked(kind string, op Op) {
	in.fired[kind]++
	in.total++
	if in.logf != nil {
		in.logf("faults: injected %s", op)
	}
}

// Total counts every fault injected so far (0 for a nil injector).
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Fired returns the per-kind injection counts ("drop", "delay",
// "corrupt", "crash").
func (in *Injector) Fired() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.fired))
	for k, v := range in.fired {
		out[k] = v
	}
	return out
}

// CorruptBody flips one byte of a transferred body in place — enough
// for any digest or strict decoder to reject it, deterministic in
// where it bites. Empty bodies are returned unchanged.
func CorruptBody(data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	data[len(data)/2] ^= 0xFF
	return data
}

// Error is the failure a dropped request reports.
type Error struct {
	Path Path
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected drop of %s request", e.Path)
}
