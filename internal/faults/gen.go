package faults

import (
	"math/rand"
	"time"
)

// GenOptions shape a generated schedule.
type GenOptions struct {
	// Workers are the worker names crash ops may target; empty disables
	// crash ops (client-side transports cannot observe lease grants).
	Workers []string
	// MaxDelay caps generated delay durations (default 5ms — generated
	// schedules are property-test fodder and must stay fast; pin longer
	// delays by hand when you want them).
	MaxDelay time.Duration
	// Ops bounds the op count (default 4, max MaxOps).
	Ops int
}

// Generate derives a deterministic fault schedule from a seed: a mix of
// drops, delays, and corruptions over the wire paths, plus worker
// crashes when opts.Workers is non-empty. The result always satisfies
// the codec — Parse(Generate(seed, o).String()) round-trips — and the
// same seed always yields the same schedule, so a failing corpus entry
// reproduces from its seed alone.
func Generate(seed int64, opts GenOptions) Schedule {
	rng := rand.New(rand.NewSource(seed))
	maxDelay := opts.MaxDelay
	if maxDelay < time.Millisecond {
		maxDelay = 5 * time.Millisecond
	}
	if maxDelay > MaxDelay {
		maxDelay = MaxDelay
	}
	nops := opts.Ops
	if nops <= 0 {
		nops = 4
	}
	if nops > MaxOps {
		nops = MaxOps
	}
	paths := Paths()
	kinds := 3
	if len(opts.Workers) > 0 {
		kinds = 4
	}
	sched := make(Schedule, 0, nops)
	// 1 + rng.Intn(nops) ops: never empty — the empty schedule is the
	// baseline every other corpus entry is compared against.
	for i, n := 0, 1+rng.Intn(nops); i < n; i++ {
		p := paths[rng.Intn(len(paths))]
		switch rng.Intn(kinds) {
		case 0:
			sched = append(sched, Drop{Path: p, N: 1 + rng.Intn(4)})
		case 1:
			// Milliseconds only: time.Duration's String spelling of a
			// whole-millisecond value is canonical by construction.
			d := time.Duration(1+rng.Int63n(int64(maxDelay/time.Millisecond))) * time.Millisecond
			sched = append(sched, Delay{Path: p, Dur: d})
		case 2:
			sched = append(sched, Corrupt{Path: p, N: 1 + rng.Intn(4)})
		case 3:
			w := opts.Workers[rng.Intn(len(opts.Workers))]
			sched = append(sched, Crash{Worker: w, N: 1 + rng.Intn(3)})
		}
	}
	return sched
}
