package faults

import (
	"testing"
	"time"
)

// FuzzFaultSchedule drives arbitrary strings through the schedule
// codec and an armed injector. The invariants the chaos harness rests
// on:
//
//   - any accepted schedule round-trips byte-identically through String
//   - an armed injector never blocks: every Request/OnGrant decision
//     returns immediately and within the schedule's own bounds
//   - drop/corrupt ops fire at most once, delays on every request
//
// The committed seeds under testdata/fuzz include the pinned schedule
// CI's chaos-smoke runs and the canonical rejection shapes.
func FuzzFaultSchedule(f *testing.F) {
	for _, seed := range []string{
		"none",
		"drop:lease/2",
		"delay:image/50ms",
		"corrupt:complete/1",
		"crash:worker1@shard3",
		"drop:lease/2;delay:image/50ms;crash:worker1@shard3;corrupt:complete/1",
		"crash:chaos-a@shard2;drop:lease/3;corrupt:image/1;delay:lease/5ms",
		"drop:lease/0",      // rejected: 1-based ordinals
		"drop:lease/+1",     // rejected: non-canonical
		"delay:image/0.05s", // rejected: non-canonical duration
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, prog string) {
		sched, err := Parse(prog)
		if err != nil {
			return // rejected schedule: nothing to arm
		}
		s := sched.String()
		again, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse accepted %q, but its String %q does not re-parse: %v", prog, s, err)
		}
		if again.String() != s {
			t.Fatalf("schedule round trip changed: %q -> %q", s, again.String())
		}

		// Injection must terminate and stay within the schedule's own
		// bounds: total delay per request can't exceed the sum of delay
		// ops, and one-shot ops fire at most once across any request
		// sequence.
		in := NewInjector(sched, nil)
		var maxDelay int64
		oneShot := 0
		for _, op := range sched {
			switch op := op.(type) {
			case Delay:
				maxDelay += int64(op.Dur)
			case Drop:
				oneShot++
			case Corrupt:
				oneShot++
			case Crash:
				oneShot++
			}
		}
		fired := 0
		for i := 0; i < 2*MaxOrdinal && i < 64; i++ {
			for _, p := range Paths() {
				act := in.Request(p)
				if act.Delay > maxDelay {
					t.Fatalf("request delay %v exceeds schedule total %v", time.Duration(act.Delay), time.Duration(maxDelay))
				}
				if act.Drop {
					fired++
				}
				if act.Corrupt {
					fired++
				}
			}
			if in.OnGrant("worker1") {
				fired++
			}
			if in.OnGrant("chaos-a") {
				fired++
			}
		}
		if fired > oneShot {
			t.Fatalf("one-shot ops fired %d times, schedule holds %d", fired, oneShot)
		}
	})
}
