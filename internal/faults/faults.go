// Package faults is the deterministic fault-injection subsystem for
// distributed campaigns: a seeded, strictly-codec'd schedule DSL whose
// programs inject partial failures at the distrib wire boundary —
// dropped requests, delivery delays, corrupted transfers, and worker
// crashes — so the coordinator/worker protocol can be proven
// convergent under any schedule, not just in the absence of faults.
//
// A schedule is a ";"-separated list of ops over the four wire paths
// (lease, image, complete, heartbeat):
//
//	drop:lease/2            fail the 2nd lease request outright
//	delay:image/50ms        delay every image transfer by 50ms
//	corrupt:complete/1      flip a byte in the 1st completion transfer
//	crash:worker1@shard3    kill worker1 when it is granted its 3rd lease
//
// The codec is strict and canonical exactly like internal/errmodel and
// internal/multiuser schedules: Parse(p.String()) round-trips
// byte-identically, non-canonical spellings ("+1", "007", "0.05s") are
// rejected, and the empty schedule spells "none". Schedules arrive as
// CLI flags, native-fuzz inputs, and generated property-test corpora,
// and all three must agree on the same bytes.
//
// Injection is delivered two ways, both driven by one Injector:
// client-side by wrapping the worker's http.RoundTripper in a
// Transport, and server-side by arming distrib.PoolOptions.Faults so
// the coordinator's handlers consult the injector before serving.
// Either way the fault decision is a pure function of the schedule and
// the per-path request ordinals, so a given schedule misbehaves the
// same way on every run.
package faults

import (
	"fmt"
	"strings"
	"time"
)

// Bounds of the codec. Overlong schedules, out-of-range ordinals, and
// marathon delays are errors, never silently clamped.
const (
	// MaxOps bounds a schedule's op count.
	MaxOps = 16
	// MaxOrdinal bounds drop/corrupt request ordinals and crash shard
	// ordinals.
	MaxOrdinal = 4096
	// MaxDelay bounds a delay op's duration.
	MaxDelay = 10 * time.Second
	// MaxWorkerName bounds a crash op's worker-name length.
	MaxWorkerName = 64
)

// Identity is the canonical spelling of the empty schedule.
const Identity = "none"

// Path names one of the four distrib wire paths faults can land on.
type Path string

// The injectable wire paths.
const (
	PathLease     Path = "lease"
	PathImage     Path = "image"
	PathComplete  Path = "complete"
	PathHeartbeat Path = "heartbeat"
)

// Paths lists every injectable wire path, in protocol order.
func Paths() []Path {
	return []Path{PathLease, PathImage, PathComplete, PathHeartbeat}
}

func validPath(p Path) bool {
	switch p {
	case PathLease, PathImage, PathComplete, PathHeartbeat:
		return true
	}
	return false
}

// Op is one fault in a schedule.
type Op interface {
	fmt.Stringer
	isOp()
}

// Drop fails the N-th request on a wire path outright: the client sees
// a transport error (or a 503 when injected coordinator-side) and must
// recover through its retry policy or the lease TTL.
type Drop struct {
	Path Path
	N    int
}

func (d Drop) String() string { return fmt.Sprintf("drop:%s/%d", d.Path, d.N) }
func (Drop) isOp()            {}

// Delay holds every request on a wire path for Dur before it is
// served — skewed heartbeats, slow image transfers, raced completions.
type Delay struct {
	Path Path
	Dur  time.Duration
}

func (d Delay) String() string { return fmt.Sprintf("delay:%s/%s", d.Path, d.Dur) }
func (Delay) isOp()            {}

// Corrupt flips a byte in the N-th transfer on a wire path: a truncated
// or mangled image download, a garbled completion body. The receiver
// must detect the damage (content digests, strict decoding) and recover
// by retrying or re-queueing — never by merging garbage.
type Corrupt struct {
	Path Path
	N    int
}

func (c Corrupt) String() string { return fmt.Sprintf("corrupt:%s/%d", c.Path, c.N) }
func (Corrupt) isOp()            {}

// Crash kills the named worker when the coordinator grants it its N-th
// lease: the worker stops executing and heartbeating without reporting,
// so the shard must come back through lease-TTL reaping.
type Crash struct {
	Worker string
	N      int
}

func (c Crash) String() string { return fmt.Sprintf("crash:%s@shard%d", c.Worker, c.N) }
func (Crash) isOp()            {}

// Schedule is a parsed fault program: the ops fire independently as
// their trigger ordinals come up.
type Schedule []Op

// String renders the schedule canonically; Parse(s.String()) returns an
// equal schedule for every valid s, byte-identically.
func (s Schedule) String() string {
	if len(s) == 0 {
		return Identity
	}
	parts := make([]string, len(s))
	for i, op := range s {
		parts[i] = op.String()
	}
	return strings.Join(parts, ";")
}
