package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse decodes a schedule from its textual form: ";"-separated ops
// ("drop:lease/2;crash:worker1@shard3"), or "none" for the empty
// schedule. The codec is strict — unknown ops, unknown paths, missing
// operands, out-of-range ordinals, and non-canonical spellings are
// errors, never silently clamped — because the same strings arrive as
// CLI flags, native-fuzz inputs, and generated corpora, and all must
// round-trip through String unchanged.
func Parse(s string) (Schedule, error) {
	if s == Identity {
		return nil, nil
	}
	if s == "" {
		return nil, fmt.Errorf("faults: empty schedule (the empty schedule spells %q)", Identity)
	}
	parts := strings.Split(s, ";")
	if len(parts) > MaxOps {
		return nil, fmt.Errorf("faults: schedule has %d ops, max %d", len(parts), MaxOps)
	}
	sched := make(Schedule, 0, len(parts))
	for _, part := range parts {
		op, err := parseOp(part)
		if err != nil {
			return nil, err
		}
		sched = append(sched, op)
	}
	return sched, nil
}

// parseOp decodes one "name:operands" op.
func parseOp(s string) (Op, error) {
	name, rest, _ := strings.Cut(s, ":")
	switch name {
	case "drop":
		p, n, err := parsePathOrdinal(rest)
		if err != nil {
			return nil, fmt.Errorf("faults: drop: %w", err)
		}
		return Drop{Path: p, N: n}, nil
	case "corrupt":
		p, n, err := parsePathOrdinal(rest)
		if err != nil {
			return nil, fmt.Errorf("faults: corrupt: %w", err)
		}
		return Corrupt{Path: p, N: n}, nil
	case "delay":
		path, durs, ok := strings.Cut(rest, "/")
		if !ok {
			return nil, fmt.Errorf("faults: delay wants path/duration, got %q", rest)
		}
		p := Path(path)
		if !validPath(p) {
			return nil, fmt.Errorf("faults: delay: unknown path %q", path)
		}
		d, err := parseDuration(durs)
		if err != nil {
			return nil, fmt.Errorf("faults: delay: %w", err)
		}
		return Delay{Path: p, Dur: d}, nil
	case "crash":
		worker, shard, ok := strings.Cut(rest, "@shard")
		if !ok {
			return nil, fmt.Errorf("faults: crash wants worker@shardN, got %q", rest)
		}
		if err := validWorkerName(worker); err != nil {
			return nil, fmt.Errorf("faults: crash: %w", err)
		}
		n, err := parseOrdinal(shard)
		if err != nil {
			return nil, fmt.Errorf("faults: crash shard: %w", err)
		}
		return Crash{Worker: worker, N: n}, nil
	default:
		return nil, fmt.Errorf("faults: unknown op %q", name)
	}
}

// parsePathOrdinal decodes the "path/N" operand shape shared by drop
// and corrupt.
func parsePathOrdinal(s string) (Path, int, error) {
	path, ord, ok := strings.Cut(s, "/")
	if !ok {
		return "", 0, fmt.Errorf("wants path/N, got %q", s)
	}
	p := Path(path)
	if !validPath(p) {
		return "", 0, fmt.Errorf("unknown path %q", path)
	}
	n, err := parseOrdinal(ord)
	if err != nil {
		return "", 0, err
	}
	return p, n, nil
}

// parseOrdinal decodes a canonical positive decimal within MaxOrdinal.
// Ordinals are 1-based: "the 1st request", never "the 0th".
func parseOrdinal(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if n < 1 || n > MaxOrdinal {
		return 0, fmt.Errorf("ordinal %d out of range [1,%d]", n, MaxOrdinal)
	}
	// Reject non-canonical spellings ("+1", "007") so every accepted
	// schedule round-trips byte-identically through String.
	if s != strconv.Itoa(n) {
		return 0, fmt.Errorf("non-canonical number %q", s)
	}
	return n, nil
}

// parseDuration decodes a canonical positive duration within MaxDelay.
// Canonical means time.Duration's own String spelling ("50ms", "1.5s"),
// so delays round-trip byte-identically too.
func parseDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if d <= 0 || d > MaxDelay {
		return 0, fmt.Errorf("delay %s out of range (0,%s]", d, MaxDelay)
	}
	if s != d.String() {
		return 0, fmt.Errorf("non-canonical duration %q (canonical: %q)", s, d)
	}
	return d, nil
}

// validWorkerName bounds crash targets to names that survive the codec:
// non-empty, within MaxWorkerName, and free of the DSL's own
// metacharacters.
func validWorkerName(s string) error {
	if s == "" {
		return fmt.Errorf("empty worker name")
	}
	if len(s) > MaxWorkerName {
		return fmt.Errorf("worker name %d bytes long, max %d", len(s), MaxWorkerName)
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("worker name %q contains %q (allowed: letters, digits, '-', '_', '.')", s, r)
		}
	}
	return nil
}
