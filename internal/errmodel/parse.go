package errmodel

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/dslab-epfl/warr/internal/humanerr"
)

// Parse decodes a program from its textual form: ";"-separated ops
// ("omit:3;pace:1/2"), or "id" for the identity program. The codec is
// strict — unknown ops, missing operands, out-of-range numbers, and
// overlong programs are errors, never silently clamped — because the
// same strings arrive as native-fuzz inputs and as corpus archives,
// and both must round-trip through String unchanged.
func Parse(s string) (Program, error) {
	if s == "id" {
		return Program{}, nil
	}
	if s == "" {
		return nil, fmt.Errorf("errmodel: empty program (the identity program spells \"id\")")
	}
	parts := strings.Split(s, ";")
	if len(parts) > MaxOps {
		return nil, fmt.Errorf("errmodel: program has %d ops, max %d", len(parts), MaxOps)
	}
	p := make(Program, 0, len(parts))
	for _, part := range parts {
		op, err := parseOp(part)
		if err != nil {
			return nil, err
		}
		p = append(p, op)
	}
	return p, nil
}

// parseOp decodes one "name:operands" op.
func parseOp(s string) (Op, error) {
	name, rest, _ := strings.Cut(s, ":")
	switch name {
	case "omit":
		i, err := parseIndex(rest)
		if err != nil {
			return nil, fmt.Errorf("errmodel: omit: %w", err)
		}
		return Omit{Index: i}, nil
	case "swap":
		i, err := parseIndex(rest)
		if err != nil {
			return nil, fmt.Errorf("errmodel: swap: %w", err)
		}
		return Swap{Index: i}, nil
	case "double":
		i, err := parseIndex(rest)
		if err != nil {
			return nil, fmt.Errorf("errmodel: double: %w", err)
		}
		return Double{Index: i}, nil
	case "typo":
		fields := strings.Split(rest, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("errmodel: typo wants word:kind:alt, got %q", rest)
		}
		w, err := parseIndex(fields[0])
		if err != nil {
			return nil, fmt.Errorf("errmodel: typo word: %w", err)
		}
		kind, err := parseTypoKind(fields[1])
		if err != nil {
			return nil, err
		}
		alt, err := parseIndex(fields[2])
		if err != nil {
			return nil, fmt.Errorf("errmodel: typo alt: %w", err)
		}
		return Typo{Word: w, Kind: kind, Alt: alt}, nil
	case "pace":
		num, den, ok := strings.Cut(rest, "/")
		if !ok {
			return nil, fmt.Errorf("errmodel: pace wants num/den, got %q", rest)
		}
		n, err := parseIndex(num)
		if err != nil {
			return nil, fmt.Errorf("errmodel: pace numerator: %w", err)
		}
		d, err := parseIndex(den)
		if err != nil {
			return nil, fmt.Errorf("errmodel: pace denominator: %w", err)
		}
		if n > maxPace || d < 1 || d > maxPace {
			return nil, fmt.Errorf("errmodel: pace %d/%d out of range [0,%d]/[1,%d]", n, d, maxPace, maxPace)
		}
		return Pace{Num: n, Den: d}, nil
	default:
		return nil, fmt.Errorf("errmodel: unknown op %q", name)
	}
}

// parseIndex decodes a canonical non-negative decimal within maxIndex.
func parseIndex(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if n < 0 || n > maxIndex {
		return 0, fmt.Errorf("number %d out of range [0,%d]", n, maxIndex)
	}
	// Reject non-canonical spellings ("+1", "007") so every accepted
	// program round-trips byte-identically through String.
	if s != strconv.Itoa(n) {
		return 0, fmt.Errorf("non-canonical number %q", s)
	}
	return n, nil
}

// parseTypoKind decodes a humanerr.TypoKind from its String form.
func parseTypoKind(s string) (humanerr.TypoKind, error) {
	for _, k := range []humanerr.TypoKind{
		humanerr.Substitution, humanerr.Omission, humanerr.Insertion, humanerr.Transposition,
	} {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("errmodel: unknown typo kind %q", s)
}
