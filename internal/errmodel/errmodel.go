// Package errmodel generalizes the paper's §V human-error model into a
// composable mutation DSL over recorded traces. Where WebErr enumerates
// a fixed grammar of navigation and timing mistakes (forget, reorder,
// substitute, no-wait), errmodel expresses the same Table I/II error
// classes as typed, serializable operators — omissions, reorderings,
// double-submits, keyboard typos, and timing perturbations on the
// virtual clock — that compose into programs. A program applied to the
// correct trace yields a candidate erroneous trace; a seeded Mutator
// enumerates and recombines programs deterministically, so a fuzzing
// campaign with a fixed seed and budget replays byte-identically.
//
// Programs have a strict textual form ("omit:3;pace:1/2") that doubles
// as the native-fuzz input format: FuzzErrorModel feeds arbitrary
// program strings through Parse and Apply, and the committed seed
// corpus under testdata/fuzz is exactly the interesting programs a
// coverage-guided campaign discovered.
package errmodel

import (
	"fmt"
	"strings"

	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/humanerr"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// Limits keeping programs (and fuzz inputs) bounded.
const (
	// MaxOps bounds a program's length: realistic human error chains
	// are short, and short programs keep mutated traces close to the
	// correct one — where the oracle-relevant behavior lives.
	MaxOps = 8
	// maxIndex bounds any index operand at parse time, far above any
	// recorded trace length.
	maxIndex = 4096
	// maxPace bounds pace numerators and denominators.
	maxPace = 16
)

// Op is one typed trace mutator. The concrete types — Omit, Swap,
// Double, Typo, Pace — are the Table I/II error classes; apply is
// unexported, so the op set is closed and Parse can rely on it.
type Op interface {
	// String renders the op in the program codec.
	String() string
	// apply mutates a private copy of the trace, or reports why the op
	// does not fit it (index out of range, no typo-able word, ...).
	apply(tr command.Trace) (command.Trace, error)
}

// Omit drops command Index — the §V "forget an action" class at trace
// granularity.
type Omit struct{ Index int }

func (o Omit) String() string { return fmt.Sprintf("omit:%d", o.Index) }

func (o Omit) apply(tr command.Trace) (command.Trace, error) {
	if o.Index < 0 || o.Index >= len(tr.Commands) {
		return tr, fmt.Errorf("errmodel: omit index %d out of range [0,%d)", o.Index, len(tr.Commands))
	}
	tr.Commands = append(tr.Commands[:o.Index], tr.Commands[o.Index+1:]...)
	return tr, nil
}

// Swap exchanges commands Index and Index+1 — the §V "reorder actions"
// class confined to adjacent commands.
type Swap struct{ Index int }

func (s Swap) String() string { return fmt.Sprintf("swap:%d", s.Index) }

func (s Swap) apply(tr command.Trace) (command.Trace, error) {
	if s.Index < 0 || s.Index >= len(tr.Commands)-1 {
		return tr, fmt.Errorf("errmodel: swap index %d out of range [0,%d)", s.Index, len(tr.Commands)-1)
	}
	tr.Commands[s.Index], tr.Commands[s.Index+1] = tr.Commands[s.Index+1], tr.Commands[s.Index]
	return tr, nil
}

// Double repeats command Index immediately — the impatient
// double-submit. It only applies to submit-like commands (clicks,
// double-clicks, Enter keystrokes); doubling a plain keystroke is a
// Typo insertion, not a double-submit.
type Double struct{ Index int }

func (d Double) String() string { return fmt.Sprintf("double:%d", d.Index) }

func (d Double) apply(tr command.Trace) (command.Trace, error) {
	if d.Index < 0 || d.Index >= len(tr.Commands) {
		return tr, fmt.Errorf("errmodel: double index %d out of range [0,%d)", d.Index, len(tr.Commands))
	}
	if !submitLike(tr.Commands[d.Index]) {
		return tr, fmt.Errorf("errmodel: double index %d is not a submit-like command", d.Index)
	}
	tr.Commands = append(tr.Commands, command.Command{})
	copy(tr.Commands[d.Index+1:], tr.Commands[d.Index:])
	return tr, nil
}

// submitLike reports whether doubling c models a double-submit.
func submitLike(c command.Command) bool {
	switch c.Action {
	case command.Click, command.DoubleClick:
		return true
	case command.Type:
		return c.Key == "Enter"
	}
	return false
}

// Typo injects one keyboard slip (humanerr's four models) into the
// Word'th typed word of the trace. Alt deterministically selects the
// keystroke position and — for substitution/insertion — the adjacent
// key, so a Typo value fully determines the mutated trace; the Mutator
// enumerates Alt values and ranks them against the spell dictionary
// the search engines correct with.
type Typo struct {
	Word int
	Kind humanerr.TypoKind
	Alt  int
}

func (t Typo) String() string { return fmt.Sprintf("typo:%d:%s:%d", t.Word, t.Kind, t.Alt) }

func (t Typo) apply(tr command.Trace) (command.Trace, error) {
	ws := words(tr)
	if t.Word < 0 || t.Word >= len(ws) {
		return tr, fmt.Errorf("errmodel: typo word %d out of range [0,%d)", t.Word, len(ws))
	}
	if t.Alt < 0 {
		return tr, fmt.Errorf("errmodel: negative typo alt %d", t.Alt)
	}
	w := ws[t.Word]
	pos, nb := typoPlan(len(w.indexes), t.Alt)
	ci := w.indexes[pos]
	cur := tr.Commands[ci].Key[0]
	switch t.Kind {
	case humanerr.Substitution:
		adj := adjacentCased(cur, nb)
		tr.Commands[ci].Key = string(adj)
		tr.Commands[ci].Code = int(adj &^ 0x20)
	case humanerr.Omission:
		tr.Commands = append(tr.Commands[:ci], tr.Commands[ci+1:]...)
	case humanerr.Insertion:
		adj := adjacentCased(cur, nb)
		tr.Commands = append(tr.Commands, command.Command{})
		copy(tr.Commands[ci+1:], tr.Commands[ci:])
		ins := tr.Commands[ci]
		ins.Key = string(adj)
		ins.Code = int(adj &^ 0x20)
		tr.Commands[ci+1] = ins
	case humanerr.Transposition:
		if pos == len(w.indexes)-1 {
			pos--
		}
		a, b := w.indexes[pos], w.indexes[pos+1]
		tr.Commands[a].Key, tr.Commands[b].Key = tr.Commands[b].Key, tr.Commands[a].Key
		tr.Commands[a].Code, tr.Commands[b].Code = tr.Commands[b].Code, tr.Commands[a].Code
	default:
		return tr, fmt.Errorf("errmodel: unknown typo kind %d", int(t.Kind))
	}
	return tr, nil
}

// typoPlan derives the keystroke position (first character kept, as in
// humanerr) and neighbor selector from an Alt value, for a word of L
// keystrokes. Total function: any Alt >= 0 maps into range.
func typoPlan(L, alt int) (pos, nb int) {
	return 1 + (alt/4)%(L-1), alt % 4
}

// adjacentCased picks the nb'th QWERTY neighbor of cur, preserving the
// original keystroke's case.
func adjacentCased(cur byte, nb int) byte {
	lower := cur | 0x20
	keys := humanerr.AdjacentKeys(lower)
	adj := keys[nb%len(keys)]
	if cur >= 'A' && cur <= 'Z' {
		adj &^= 0x20
	}
	return adj
}

// Pace rescales every inter-command delay by Num/Den on the virtual
// clock — the §V timing-error class generalized from "no wait" to any
// rational speedup or slowdown. Num 0 strips delays entirely (the
// paper's impatient user).
type Pace struct{ Num, Den int }

func (p Pace) String() string { return fmt.Sprintf("pace:%d/%d", p.Num, p.Den) }

func (p Pace) apply(tr command.Trace) (command.Trace, error) {
	if p.Num < 0 || p.Num > maxPace || p.Den < 1 || p.Den > maxPace {
		return tr, fmt.Errorf("errmodel: pace %d/%d out of range", p.Num, p.Den)
	}
	if p.Num == 0 {
		return humanerr.StripDelays(tr), nil
	}
	for i := range tr.Commands {
		tr.Commands[i].Elapsed = tr.Commands[i].Elapsed * p.Num / p.Den
	}
	return tr, nil
}

// Program is an ordered op composition. The zero value is the identity
// program: it yields the correct trace, the root every mutation chain
// grows from.
type Program []Op

// String renders the program in the strict codec Parse accepts. The
// identity program renders as "id".
func (p Program) String() string {
	if len(p) == 0 {
		return "id"
	}
	parts := make([]string, len(p))
	for i, op := range p {
		parts[i] = op.String()
	}
	return strings.Join(parts, ";")
}

// Apply runs the program over a copy of base, each op seeing the
// previous op's output. base is never mutated, even on error.
func (p Program) Apply(base command.Trace) (command.Trace, error) {
	if len(p) > MaxOps {
		return command.Trace{}, fmt.Errorf("errmodel: program has %d ops, max %d", len(p), MaxOps)
	}
	tr := base.Clone()
	for _, op := range p {
		var err error
		if tr, err = op.apply(tr); err != nil {
			return command.Trace{}, err
		}
	}
	return tr, nil
}

// Pacing returns the replay pacing the mutated trace should run under:
// PaceNone when the program strips delays (mirroring WebErr's timing
// campaign), zero otherwise — inherit the campaign default.
func (p Program) Pacing() replayer.Pacing {
	for _, op := range p {
		if pc, ok := op.(Pace); ok && pc.Num == 0 {
			return replayer.PaceNone
		}
	}
	return 0
}

// wordRun is one maximal run of single-letter keystrokes typed into the
// same element — a "word" for typo purposes. Runs shorter than 3
// keystrokes are not collected (humanerr's threshold: users rarely
// mistype them).
type wordRun struct {
	indexes []int
	letters []byte
}

// words extracts the typo-able words of a trace, in trace order. A run
// breaks on any non-Type command, multi-character key, non-letter
// character, or target change.
func words(tr command.Trace) []wordRun {
	var out []wordRun
	var cur wordRun
	var curXPath string
	flush := func() {
		if len(cur.indexes) >= 3 {
			out = append(out, cur)
		}
		cur = wordRun{}
	}
	for i, c := range tr.Commands {
		if c.Action != command.Type || len(c.Key) != 1 || !isLetter(c.Key[0]) {
			flush()
			continue
		}
		if len(cur.indexes) > 0 && c.XPath != curXPath {
			flush()
		}
		curXPath = c.XPath
		cur.indexes = append(cur.indexes, i)
		cur.letters = append(cur.letters, c.Key[0])
	}
	flush()
	return out
}

func isLetter(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}
