package errmodel

import (
	"math/rand"

	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/humanerr"
	"github.com/dslab-epfl/warr/internal/spell"
)

// maxTypoAlts caps how many Alt values the universe keeps per
// (word, kind): ranked dictionary-escaping slips first, the rest only
// as filler. The full Alt space is explored by mutation, not
// enumeration.
const maxTypoAlts = 2

// Mutator generates candidate programs over one base trace: a
// deterministic enumeration of every single-op error (the seeds), plus
// seeded random recombination growing programs from coverage-novel
// corpus entries. Same base, seed, and call sequence ⇒ byte-identical
// candidate stream — the determinism the fuzz campaign's reproducible
// findings rest on.
//
// The typo ops are dictionary-aware: Alt values whose mistyped word
// escapes the given spell dictionary (the one internal/apps' search
// engines correct against) rank first, because an in-dictionary slip
// is exactly what the engines silently repair. A nil dictionary
// disables the ranking, nothing else.
//
// Mutator implements campaign.FuzzSource.
type Mutator struct {
	base     command.Trace
	rng      *rand.Rand
	universe []Op
}

// NewMutator returns a mutator over base, seeded for a deterministic
// stream. dict may be nil.
func NewMutator(base command.Trace, seed int64, dict *spell.Dictionary) *Mutator {
	return &Mutator{
		base:     base,
		rng:      rand.New(rand.NewSource(seed)),
		universe: buildUniverse(base, dict),
	}
}

// Universe returns the enumerated single-op error space, in the fixed
// order seeds are drawn from.
func (m *Mutator) Universe() []Op { return append([]Op(nil), m.universe...) }

// buildUniverse enumerates every single-op mutation of base, in a
// fixed order: timing perturbations first (cheap, and the paper's
// §V-C no-wait bug lives there), then omissions, reorderings,
// double-submits, and ranked typos.
func buildUniverse(base command.Trace, dict *spell.Dictionary) []Op {
	n := len(base.Commands)
	var u []Op
	for _, p := range []Pace{{0, 1}, {1, 2}, {1, 4}, {2, 1}} {
		u = append(u, p)
	}
	for i := 0; i < n; i++ {
		u = append(u, Omit{Index: i})
	}
	for i := 0; i+1 < n; i++ {
		u = append(u, Swap{Index: i})
	}
	for i := 0; i < n; i++ {
		if submitLike(base.Commands[i]) {
			u = append(u, Double{Index: i})
		}
	}
	for wi, w := range words(base) {
		for _, kind := range []humanerr.TypoKind{
			humanerr.Substitution, humanerr.Omission, humanerr.Insertion, humanerr.Transposition,
		} {
			for _, alt := range rankAlts(w.letters, kind, dict) {
				u = append(u, Typo{Word: wi, Kind: kind, Alt: alt})
			}
		}
	}
	return u
}

// rankAlts orders the Alt space of one (word, kind) by dictionary
// escape — alts whose result the dictionary does not contain first,
// ascending within each class — and keeps the top maxTypoAlts distinct
// results.
func rankAlts(letters []byte, kind humanerr.TypoKind, dict *spell.Dictionary) []int {
	L := len(letters)
	space := 4 * (L - 1)
	var escaping, corrected []int
	seen := make(map[string]struct{}, space)
	for alt := 0; alt < space; alt++ {
		res := typoWord(letters, kind, alt)
		if res == string(letters) {
			continue
		}
		if _, dup := seen[res]; dup {
			continue
		}
		seen[res] = struct{}{}
		if dict != nil && dict.Contains(lowerWord(res)) {
			corrected = append(corrected, alt)
		} else {
			escaping = append(escaping, alt)
		}
	}
	ranked := append(escaping, corrected...)
	if len(ranked) > maxTypoAlts {
		ranked = ranked[:maxTypoAlts]
	}
	return ranked
}

// typoWord simulates the word a Typo op with the given kind and alt
// produces, mirroring Typo.apply exactly.
func typoWord(letters []byte, kind humanerr.TypoKind, alt int) string {
	pos, nb := typoPlan(len(letters), alt)
	switch kind {
	case humanerr.Substitution:
		out := append([]byte(nil), letters...)
		out[pos] = adjacentCased(letters[pos], nb)
		return string(out)
	case humanerr.Omission:
		out := append([]byte(nil), letters[:pos]...)
		return string(append(out, letters[pos+1:]...))
	case humanerr.Insertion:
		out := append([]byte(nil), letters[:pos+1]...)
		out = append(out, adjacentCased(letters[pos], nb))
		return string(append(out, letters[pos+1:]...))
	case humanerr.Transposition:
		if pos == len(letters)-1 {
			pos--
		}
		out := append([]byte(nil), letters...)
		out[pos], out[pos+1] = out[pos+1], out[pos]
		return string(out)
	}
	return string(letters)
}

func lowerWord(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] |= 0x20
		}
	}
	return string(b)
}

// Seeds implements campaign.FuzzSource: the identity program first
// (the correct trace — baseline coverage and mutation root), then one
// candidate per enumerated single-op error, capped at limit (0 = all).
func (m *Mutator) Seeds(limit int) []campaign.FuzzCandidate {
	out := make([]campaign.FuzzCandidate, 0, len(m.universe)+1)
	if c, ok := m.render(Program{}); ok {
		out = append(out, c)
	}
	for _, op := range m.universe {
		if limit > 0 && len(out) >= limit {
			break
		}
		if c, ok := m.render(Program{op}); ok {
			out = append(out, c)
		}
	}
	return out
}

// Mutate implements campaign.FuzzSource: it grows (or, at MaxOps,
// rewrites) the candidate's program by one op drawn from the universe.
// A composition that no longer fits the trace reports !ok; the caller
// simply draws again from another corpus entry.
func (m *Mutator) Mutate(from campaign.FuzzCandidate) (campaign.FuzzCandidate, bool) {
	if len(m.universe) == 0 {
		return campaign.FuzzCandidate{}, false
	}
	p, err := Parse(from.Program)
	if err != nil {
		return campaign.FuzzCandidate{}, false
	}
	child := append(Program(nil), p...)
	op := m.universe[m.rng.Intn(len(m.universe))]
	if len(child) >= MaxOps {
		child[m.rng.Intn(len(child))] = op
	} else {
		child = append(child, op)
	}
	return m.render(child)
}

// render materializes a program into a schedulable candidate.
func (m *Mutator) render(p Program) (campaign.FuzzCandidate, bool) {
	tr, err := p.Apply(m.base)
	if err != nil {
		return campaign.FuzzCandidate{}, false
	}
	return campaign.FuzzCandidate{Program: p.String(), Trace: tr, Pacing: p.Pacing()}, true
}
