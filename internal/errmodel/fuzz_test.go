package errmodel_test

import (
	"bytes"
	"os"
	"testing"

	// Register the paper's applications: the fuzz harness replays
	// mutated traces against the same simulated worlds the campaigns
	// test.
	_ "github.com/dslab-epfl/warr/internal/apps"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/errmodel"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/trace"
)

// loadCorpusTrace reads a committed correct trace from the repository's
// trace corpus.
func loadCorpusTrace(tb testing.TB, name string) command.Trace {
	tb.Helper()
	data, err := os.ReadFile("../../testdata/corpus/" + name)
	if err != nil {
		tb.Fatalf("reading corpus trace: %v", err)
	}
	rd, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		tb.Fatalf("opening corpus trace %s: %v", name, err)
	}
	tr, err := rd.Trace()
	if err != nil {
		tb.Fatalf("decoding corpus trace %s: %v", name, err)
	}
	return tr
}

// FuzzErrorModel drives arbitrary mutation programs through the full
// error-model stack: parse, apply to the committed correct edit-site
// trace, replay the mutated trace against the simulated application,
// and fingerprint coverage. The invariants are the ones the fuzzing
// campaign's determinism rests on:
//
//   - any accepted program round-trips byte-identically through String
//   - Apply never mutates the base trace and is itself deterministic
//   - replay coverage is a fixed-width fingerprint, and the end-state
//     snapshot never contains bits the step-granular collector missed
//
// The committed seeds under testdata/fuzz are the interesting programs
// a coverage-guided campaign discovered — including the pace programs
// that reproduce the §V-C Google Sites bug.
func FuzzErrorModel(f *testing.F) {
	base := loadCorpusTrace(f, "edit-site.warr")
	for _, seed := range []string{
		"id",
		"pace:0/1",
		"pace:1/4",
		"omit:3",
		"swap:0",
		"double:0",
		"typo:0:substitution:1",
		"typo:0:transposition:0",
		"omit:1;swap:2;pace:1/2",
		"omit:+1", // rejected: non-canonical
		"bogus:9",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, prog string) {
		p, err := errmodel.Parse(prog)
		if err != nil {
			return // rejected program: nothing to run
		}
		s := p.String()
		p2, err := errmodel.Parse(s)
		if err != nil {
			t.Fatalf("errmodel.Parse accepted %q, but its String %q does not re-parse: %v", prog, s, err)
		}
		if p2.String() != s {
			t.Fatalf("program round trip changed: %q -> %q", s, p2.String())
		}

		baseText := base.Text()
		tr, err := p.Apply(base)
		if got := base.Text(); got != baseText {
			t.Fatalf("Apply(%q) mutated the base trace", s)
		}
		if err != nil {
			return // the program does not fit this trace
		}
		if len(tr.Commands) > len(base.Commands)+errmodel.MaxOps {
			t.Fatalf("Apply(%q) grew the trace to %d commands from %d", s, len(tr.Commands), len(base.Commands))
		}
		tr2, err := p.Apply(base)
		if err != nil || tr2.Text() != tr.Text() {
			t.Fatalf("Apply(%q) is not deterministic: %v", s, err)
		}

		pacing := replayer.PaceRecorded
		if p.Pacing() != 0 {
			pacing = p.Pacing()
		}
		var col errmodel.Collector
		b := registry.BrowserFactory(browser.DeveloperMode)()
		r := replayer.New(b, replayer.Options{
			Pacing: pacing,
			Hooks:  []replayer.Hooks{col.Hooks()},
		})
		res, tab, err := r.Replay(tr)
		if err != nil || res == nil || res.Cancelled || tab == nil {
			return // the erroneous trace did not replay to an observable world
		}
		cov := errmodel.CampaignCoverage(res, tab)
		if len(cov) != errmodel.BitmapSize {
			t.Fatalf("coverage fingerprint is %d bytes, want %d", len(cov), errmodel.BitmapSize)
		}
		if !bytes.Equal(errmodel.Snapshot(tab).Bytes(), cov) {
			t.Fatalf("two snapshots of the same world differ (program %q)", s)
		}
		// The step collector observed the world after every command; the
		// end state is the last of those worlds, so its fingerprint must
		// be a subset of the accumulated one.
		acc := *col.Bitmap()
		if acc.Merge(cov) {
			t.Fatalf("end-state coverage has bits the step collector never saw (program %q)", s)
		}
	})
}
