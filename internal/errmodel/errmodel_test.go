package errmodel

import (
	"reflect"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/humanerr"
	"github.com/dslab-epfl/warr/internal/spell"
)

// testTrace is a synthetic session: open, type "cat", submit with
// Enter, save. It exercises every op class — clicks for double-submit,
// a three-keystroke word for typos, and delays for pacing.
func testTrace() command.Trace {
	return command.Trace{
		StartURL: "http://app.example/",
		Commands: []command.Command{
			{Action: command.Click, XPath: `//button[@id="open"]`, X: 1, Y: 2, Elapsed: 5},
			{Action: command.Type, XPath: `//input[@id="q"]`, Key: "c", Code: 'C', Elapsed: 2},
			{Action: command.Type, XPath: `//input[@id="q"]`, Key: "a", Code: 'A', Elapsed: 1},
			{Action: command.Type, XPath: `//input[@id="q"]`, Key: "t", Code: 'T', Elapsed: 1},
			{Action: command.Type, XPath: `//input[@id="q"]`, Key: "Enter", Code: 13, Elapsed: 3},
			{Action: command.Click, XPath: `//button[@id="save"]`, X: 3, Y: 4, Elapsed: 10},
		},
	}
}

func mustApply(t *testing.T, p Program, base command.Trace) command.Trace {
	t.Helper()
	tr, err := p.Apply(base)
	if err != nil {
		t.Fatalf("Apply(%s): %v", p, err)
	}
	return tr
}

func TestOmitApply(t *testing.T) {
	base := testTrace()
	tr := mustApply(t, Program{Omit{Index: 0}}, base)
	if len(tr.Commands) != 5 {
		t.Fatalf("omit:0 left %d commands, want 5", len(tr.Commands))
	}
	if tr.Commands[0].Key != "c" {
		t.Fatalf("omit:0 first command = %v, want the 'c' keystroke", tr.Commands[0])
	}
	if _, err := (Program{Omit{Index: 6}}).Apply(base); err == nil {
		t.Fatal("omit:6 on a 6-command trace should not apply")
	}
}

func TestSwapApply(t *testing.T) {
	base := testTrace()
	tr := mustApply(t, Program{Swap{Index: 0}}, base)
	if tr.Commands[0].Action != command.Type || tr.Commands[1].Action != command.Click {
		t.Fatalf("swap:0 did not exchange commands 0 and 1: %v / %v", tr.Commands[0], tr.Commands[1])
	}
	// The last valid swap index is len-2.
	if _, err := (Program{Swap{Index: 5}}).Apply(base); err == nil {
		t.Fatal("swap:5 on a 6-command trace should not apply")
	}
}

func TestDoubleApply(t *testing.T) {
	base := testTrace()
	tr := mustApply(t, Program{Double{Index: 5}}, base)
	if len(tr.Commands) != 7 {
		t.Fatalf("double:5 left %d commands, want 7", len(tr.Commands))
	}
	if tr.Commands[5] != tr.Commands[6] {
		t.Fatalf("double:5 did not duplicate the save click: %v / %v", tr.Commands[5], tr.Commands[6])
	}
	// Enter is submit-like; a plain keystroke is not (that slip is a
	// Typo insertion, not a double-submit).
	if _, err := (Program{Double{Index: 4}}).Apply(base); err != nil {
		t.Fatalf("double:4 (Enter) should apply: %v", err)
	}
	if _, err := (Program{Double{Index: 1}}).Apply(base); err == nil {
		t.Fatal("double:1 (plain keystroke) should not apply")
	}
}

func TestTypoApply(t *testing.T) {
	base := testTrace()
	word := func(tr command.Trace) string {
		var b strings.Builder
		for _, c := range tr.Commands {
			if c.Action == command.Type && len(c.Key) == 1 {
				b.WriteString(c.Key)
			}
		}
		return b.String()
	}
	for _, tc := range []struct {
		kind    humanerr.TypoKind
		wantLen int
	}{
		{humanerr.Substitution, 3},
		{humanerr.Omission, 2},
		{humanerr.Insertion, 4},
		{humanerr.Transposition, 3},
	} {
		op := Typo{Word: 0, Kind: tc.kind, Alt: 0}
		tr := mustApply(t, Program{op}, base)
		got := word(tr)
		if len(got) != tc.wantLen {
			t.Errorf("%s: typed word %q, want %d letters", op, got, tc.wantLen)
		}
		if got == "cat" {
			t.Errorf("%s: word unchanged", op)
		}
		// The enumeration-side simulator must agree with the trace-side
		// mutation — rankAlts depends on this mirror being exact.
		if sim := typoWord([]byte("cat"), tc.kind, 0); sim != got {
			t.Errorf("%s: typoWord simulated %q, apply produced %q", op, sim, got)
		}
	}
	if _, err := (Program{Typo{Word: 1, Kind: humanerr.Substitution, Alt: 0}}).Apply(base); err == nil {
		t.Fatal("typo on word 1 should not apply: the trace types one word")
	}
}

func TestPaceApply(t *testing.T) {
	base := testTrace()
	tr := mustApply(t, Program{Pace{Num: 0, Den: 1}}, base)
	for i, c := range tr.Commands {
		if c.Elapsed != 0 {
			t.Fatalf("pace:0/1 left command %d with elapsed %d", i, c.Elapsed)
		}
	}
	tr = mustApply(t, Program{Pace{Num: 1, Den: 2}}, base)
	if tr.Commands[0].Elapsed != 2 || tr.Commands[5].Elapsed != 5 {
		t.Fatalf("pace:1/2 elapsed = %d, %d; want 2, 5", tr.Commands[0].Elapsed, tr.Commands[5].Elapsed)
	}
	tr = mustApply(t, Program{Pace{Num: 2, Den: 1}}, base)
	if tr.Commands[0].Elapsed != 10 {
		t.Fatalf("pace:2/1 elapsed = %d, want 10", tr.Commands[0].Elapsed)
	}
}

func TestPacingStripsOnlyForNoWait(t *testing.T) {
	if p := (Program{Pace{Num: 0, Den: 1}}).Pacing(); p == 0 {
		t.Fatal("pace:0/1 program should request no-wait pacing")
	}
	if p := (Program{Pace{Num: 1, Den: 2}}).Pacing(); p != 0 {
		t.Fatal("pace:1/2 program should inherit the campaign default pacing")
	}
}

func TestApplyDoesNotMutateBase(t *testing.T) {
	base := testTrace()
	want := base.Text()
	progs := []Program{
		{Omit{Index: 0}},
		{Swap{Index: 2}},
		{Double{Index: 0}},
		{Typo{Word: 0, Kind: humanerr.Omission, Alt: 1}},
		{Pace{Num: 0, Den: 1}},
		{Omit{Index: 0}, Omit{Index: 0}, Swap{Index: 0}},
		{Omit{Index: 99}}, // errors must not mutate either
	}
	for _, p := range progs {
		_, _ = p.Apply(base)
		if got := base.Text(); got != want {
			t.Fatalf("Apply(%s) mutated the base trace:\n%s", p, got)
		}
	}
}

func TestProgramStringParseRoundTrip(t *testing.T) {
	base := testTrace()
	m := NewMutator(base, 1, nil)
	progs := []Program{
		{}, // identity renders as "id"
		{Omit{Index: 3}},
		{Pace{Num: 1, Den: 4}},
		{Typo{Word: 0, Kind: humanerr.Transposition, Alt: 2}},
		{Omit{Index: 1}, Swap{Index: 0}, Double{Index: 2}, Pace{Num: 2, Den: 1}},
	}
	for _, op := range m.Universe() {
		progs = append(progs, Program{op})
	}
	for _, p := range progs {
		s := p.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if back.String() != s {
			t.Fatalf("round trip %q -> %q", s, back.String())
		}
	}
}

func TestParseStrict(t *testing.T) {
	for _, bad := range []string{
		"",                // the identity spells "id"
		"omit",            // missing operand
		"omit:",           // empty operand
		"omit:+1",         // non-canonical number
		"omit:007",        // non-canonical number
		"omit:-1",         // negative
		"omit:99999",      // beyond maxIndex
		"swap:1;bogus:2",  // unknown op mid-program
		"pace:1",          // missing denominator
		"pace:1/0",        // zero denominator
		"pace:17/1",       // beyond maxPace
		"typo:0:zap:0",    // unknown typo kind
		"typo:0:omission", // missing alt
		"omit:1;;omit:2",  // empty op
		strings.Repeat("omit:0;", MaxOps) + "omit:0", // overlong
	} {
		if p, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted as %q, want error", bad, p)
		}
	}
	if p, err := Parse("id"); err != nil || len(p) != 0 {
		t.Fatalf("Parse(id) = %v, %v; want identity", p, err)
	}
}

func TestUniverseOrder(t *testing.T) {
	base := testTrace()
	u := NewMutator(base, 1, nil).Universe()
	wantHead := []string{"pace:0/1", "pace:1/2", "pace:1/4", "pace:2/1"}
	for i, w := range wantHead {
		if u[i].String() != w {
			t.Fatalf("universe[%d] = %s, want %s", i, u[i], w)
		}
	}
	// Then omissions for every command, adjacent swaps, double-submits
	// only at submit-like commands, then typos.
	i := len(wantHead)
	for k := 0; k < 6; k++ {
		if got, want := u[i].String(), (Omit{Index: k}).String(); got != want {
			t.Fatalf("universe[%d] = %s, want %s", i, got, want)
		}
		i++
	}
	for k := 0; k < 5; k++ {
		if got, want := u[i].String(), (Swap{Index: k}).String(); got != want {
			t.Fatalf("universe[%d] = %s, want %s", i, got, want)
		}
		i++
	}
	for _, k := range []int{0, 4, 5} { // clicks at 0 and 5, Enter at 4
		if got, want := u[i].String(), (Double{Index: k}).String(); got != want {
			t.Fatalf("universe[%d] = %s, want %s", i, got, want)
		}
		i++
	}
	for ; i < len(u); i++ {
		if _, ok := u[i].(Typo); !ok {
			t.Fatalf("universe[%d] = %s, want a typo op", i, u[i])
		}
	}
}

func TestRankAltsPrefersDictionaryEscapes(t *testing.T) {
	// Every distinct substitution slip of "cat" that lands back in the
	// dictionary ("cut" via a->u? no — adjacency is physical) is ranked
	// after the slips the search engines cannot silently correct. Build
	// a dictionary containing one reachable slip and verify it sinks.
	letters := []byte("cat")
	free := rankAlts(letters, humanerr.Substitution, nil)
	if len(free) == 0 {
		t.Fatal("substitution alts of a 3-letter word should not be empty")
	}
	// Put the first free alt's result in the dictionary; it must no
	// longer rank first.
	snared := typoWord(letters, humanerr.Substitution, free[0])
	dict := spell.NewDictionary([]string{snared})
	ranked := rankAlts(letters, humanerr.Substitution, dict)
	if len(ranked) == 0 {
		t.Fatal("ranking with a dictionary emptied the alt list")
	}
	if got := typoWord(letters, humanerr.Substitution, ranked[0]); got == snared {
		t.Fatalf("alt producing in-dictionary %q still ranks first", snared)
	}
}

func TestMutatorDeterministicStream(t *testing.T) {
	base := testTrace()
	dict := spell.NewDictionary([]string{"cat", "cart", "act"})
	a := NewMutator(base, 42, dict)
	b := NewMutator(base, 42, dict)

	sa, sb := a.Seeds(0), b.Seeds(0)
	if len(sa) == 0 || len(sa) != len(sb) {
		t.Fatalf("seed streams differ in length: %d vs %d", len(sa), len(sb))
	}
	if sa[0].Program != "id" {
		t.Fatalf("first seed = %q, want the identity program", sa[0].Program)
	}
	for i := range sa {
		if sa[i].Program != sb[i].Program || sa[i].Pacing != sb[i].Pacing ||
			sa[i].Trace.Text() != sb[i].Trace.Text() {
			t.Fatalf("seed %d differs: %q vs %q", i, sa[i].Program, sb[i].Program)
		}
	}

	// Same call sequence ⇒ byte-identical mutation stream.
	ca, cb := sa[0], sb[0]
	for i := 0; i < 300; i++ {
		na, oka := a.Mutate(ca)
		nb, okb := b.Mutate(cb)
		if oka != okb {
			t.Fatalf("step %d: ok diverged: %v vs %v", i, oka, okb)
		}
		if !oka {
			continue
		}
		if na.Program != nb.Program || na.Trace.Text() != nb.Trace.Text() || na.Pacing != nb.Pacing {
			t.Fatalf("step %d: candidates diverged: %q vs %q", i, na.Program, nb.Program)
		}
		ca, cb = na, nb
		if i%7 == 0 { // periodically restart the chain from a seed
			ca, cb = sa[i%len(sa)], sb[i%len(sb)]
		}
	}

	// A different seed must diverge somewhere — the stream is seeded,
	// not constant.
	c := NewMutator(base, 43, dict)
	diverged := false
	cc := c.Seeds(0)[0]
	d := NewMutator(base, 42, dict)
	cd := d.Seeds(0)[0]
	for i := 0; i < 50 && !diverged; i++ {
		nc, okc := c.Mutate(cc)
		nd, okd := d.Mutate(cd)
		if okc != okd || (okc && nc.Program != nd.Program) {
			diverged = true
		}
		if okc {
			cc = nc
		}
		if okd {
			cd = nd
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical 50-step mutation streams")
	}
}

func TestMutateRespectsMaxOps(t *testing.T) {
	base := testTrace()
	m := NewMutator(base, 7, nil)
	c := m.Seeds(1)[0]
	for i := 0; i < 500; i++ {
		n, ok := m.Mutate(c)
		if !ok {
			continue
		}
		p, err := Parse(n.Program)
		if err != nil {
			t.Fatalf("mutated program %q does not parse: %v", n.Program, err)
		}
		if len(p) > MaxOps {
			t.Fatalf("mutated program %q has %d ops, max %d", n.Program, len(p), MaxOps)
		}
		c = n
	}
}

func TestWordsExtraction(t *testing.T) {
	base := testTrace()
	ws := words(base)
	if len(ws) != 1 {
		t.Fatalf("words = %d runs, want 1", len(ws))
	}
	if !reflect.DeepEqual(ws[0].indexes, []int{1, 2, 3}) {
		t.Fatalf("word run indexes = %v, want [1 2 3]", ws[0].indexes)
	}
	if string(ws[0].letters) != "cat" {
		t.Fatalf("word run letters = %q, want cat", ws[0].letters)
	}
	// Runs under 3 keystrokes, target changes, and non-letter keys all
	// break words.
	short := command.Trace{Commands: []command.Command{
		{Action: command.Type, XPath: "//a", Key: "h", Code: 'H'},
		{Action: command.Type, XPath: "//a", Key: "i", Code: 'I'},
		{Action: command.Type, XPath: "//b", Key: "x", Code: 'X'},
		{Action: command.Type, XPath: "//b", Key: "1", Code: '1'},
	}}
	if ws := words(short); len(ws) != 0 {
		t.Fatalf("short/broken runs produced %d words, want 0", len(ws))
	}
}
