package errmodel

import (
	"math/bits"
	"strconv"
	"strings"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/fnv1a"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// BitmapSize is the coverage fingerprint width in bytes (1024 bits).
// Fixed-size so fingerprints travel as opaque blobs — over the distrib
// wire, through campaign outcomes — and merge by plain OR.
const BitmapSize = 128

// Bitmap is the compact replay-coverage fingerprint: three lanes of
// marks — DOM-node touches, event-handler dispatches, per-app state
// transitions — folded into a fixed bit set. Collisions are benign:
// they only make the corpus admit slightly fewer candidates.
type Bitmap [BitmapSize]byte

// Set folds one mark into the bitmap.
func (b *Bitmap) Set(mark uint64) {
	bit := mark % (BitmapSize * 8)
	b[bit/8] |= 1 << (bit % 8)
}

// Merge ORs src (a Bytes() blob) into b and reports whether any bit
// was new. Blobs of the wrong width are ignored.
func (b *Bitmap) Merge(src []byte) bool {
	if len(src) != BitmapSize {
		return false
	}
	novel := false
	for i, v := range src {
		if v&^b[i] != 0 {
			novel = true
		}
		b[i] |= v
	}
	return novel
}

// Bits returns the population count.
func (b *Bitmap) Bits() int {
	n := 0
	for _, v := range b {
		n += bits.OnesCount8(v)
	}
	return n
}

// Bytes returns a copy of the raw fingerprint.
func (b *Bitmap) Bytes() []byte {
	out := make([]byte, BitmapSize)
	copy(out, b[:])
	return out
}

// Fingerprint renders a short stable digest of the bitmap for logs.
func (b *Bitmap) Fingerprint() string {
	h := fnv1a.Offset
	for _, v := range b {
		h = fnv1a.AddByte(h, v)
	}
	return strconv.FormatUint(h, 16)
}

// Snapshot fingerprints a tab's current world: every frame's DOM
// shape, the accumulated event-dispatch counters, and — for hosted
// applications implementing registry.CoverageSource — the app-state
// marks. A pure function of world state, so a forked session's
// snapshot equals a flat replay's.
func Snapshot(tab *browser.Tab) *Bitmap {
	var bm Bitmap
	if tab == nil {
		return &bm
	}
	for fi, frame := range tab.MainFrame().Descendants() {
		doc := frame.Doc()
		if doc == nil {
			continue
		}
		fmark := fnv1a.AddUint64(fnv1a.AddString(fnv1a.Offset, "frame"), uint64(fi))
		doc.Root().Walk(func(n *dom.Node) bool {
			if n.Type == dom.ElementNode {
				h := fnv1a.AddString(fmark, n.Tag)
				h = fnv1a.AddByte(h, 0)
				h = fnv1a.AddString(h, stableID(n.AttrOr("id", "")))
				h = fnv1a.AddByte(h, 0)
				h = fnv1a.AddString(h, n.AttrOr("name", ""))
				h = fnv1a.AddUint64(h, uint64(n.Depth()))
				bm.Set(h)
			}
			return true
		})
		if ix := doc.Index(); ix != nil {
			ix.VisitEvents(func(k dom.EventKey, count uint64) {
				h := fnv1a.AddString(fmark, "event")
				h = fnv1a.AddString(h, k.Type)
				h = fnv1a.AddByte(h, 0)
				h = fnv1a.AddString(h, k.Tag)
				h = fnv1a.AddByte(h, 0)
				h = fnv1a.AddString(h, stableID(k.ID))
				h = fnv1a.AddUint64(h, uint64(bits.Len64(count)))
				bm.Set(h)
			})
		}
	}
	if env, ok := tab.Browser().World().(*registry.Env); ok && env != nil {
		for _, name := range env.AppNames() {
			st, ok := env.State(name)
			if !ok {
				continue
			}
			cs, ok := st.(registry.CoverageSource)
			if !ok {
				continue
			}
			amark := fnv1a.AddString(fnv1a.AddString(fnv1a.Offset, "app"), name)
			for _, m := range cs.CoverageMarks() {
				bm.Set(fnv1a.AddUint64(amark, m))
			}
		}
	}
	return &bm
}

// stableID normalizes session-volatile element ids out of coverage
// marks. GMail-style machine-minted ids (":17", fresh on every render
// — §IV-C) would otherwise make fingerprints differ across identical
// replays and poison corpus-admission determinism.
func stableID(id string) string {
	if strings.HasPrefix(id, ":") {
		return ":volatile"
	}
	return id
}

// CampaignCoverage is the campaign executor's Coverage callback: it
// fingerprints the end-of-replay world. Cancelled replays report no
// coverage — a half-observed world must not steer corpus admission.
func CampaignCoverage(res *replayer.Result, tab *browser.Tab) []byte {
	if tab == nil || (res != nil && res.Cancelled) {
		return nil
	}
	return Snapshot(tab).Bytes()
}

// Collector accumulates step-granular coverage through replay hooks —
// the AfterStep bridge the native-fuzz harness drives, observing the
// intermediate worlds a trace passes through, not just its end state.
type Collector struct {
	bm Bitmap
}

// Hooks returns the replayer hooks that feed the collector.
func (c *Collector) Hooks() replayer.Hooks {
	return replayer.Hooks{
		AfterStep: func(step replayer.Step, tab *browser.Tab) { c.Observe(tab) },
	}
}

// Observe folds the tab's current snapshot into the collected bitmap.
func (c *Collector) Observe(tab *browser.Tab) {
	s := Snapshot(tab)
	c.bm.Merge(s.Bytes())
}

// Bitmap returns the accumulated fingerprint.
func (c *Collector) Bitmap() *Bitmap { return &c.bm }
