package image

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// record runs a scenario in a fresh user-mode environment with the
// recorder attached and returns the trace.
func record(t *testing.T, sc apps.Scenario) command.Trace {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatalf("Navigate: %v", err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	if err := sc.Run(env, tab); err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	return rec.Trace()
}

// stepKey reduces a Step to its comparable outcome; errors compare by
// message, which an image round trip preserves exactly.
func stepKey(s replayer.Step) string {
	msg := ""
	if s.Err != nil {
		msg = s.Err.Error()
	}
	return fmt.Sprintf("%d %s %v %q %q err=%q", s.Index, s.Cmd, s.Status, s.UsedXPath, s.Heuristic, msg)
}

func resultKey(res *replayer.Result) []string {
	out := []string{fmt.Sprintf("played=%d failed=%d halted=%v cancelled=%v",
		res.Played, res.Failed, res.Halted, res.Cancelled)}
	for _, s := range res.Steps {
		out = append(out, stepKey(s))
	}
	return out
}

func compareResults(t *testing.T, label string, want, got *replayer.Result) {
	t.Helper()
	w, g := resultKey(want), resultKey(got)
	if len(w) != len(g) {
		t.Fatalf("%s: %d result lines, want %d\nwant: %v\ngot:  %v", label, len(g), len(w), w, g)
	}
	for i := range w {
		if w[i] != g[i] {
			t.Errorf("%s: line %d:\nwant %s\ngot  %s", label, i, w[i], g[i])
		}
	}
}

// TestImageRoundTripEquivalenceEveryScenario is the durable-image
// counterpart of the fork-equivalence contract: for every registered
// scenario and every fork point k, replaying k commands, forking,
// imaging the forked world, round-tripping the image through bytes,
// and resuming the restored session must be indistinguishable from
// finishing the in-memory fork — same step outcomes, same final page,
// same console, a server state the scenario's own oracle accepts, and
// a second capture of the untouched world producing the identical
// digest.
func TestImageRoundTripEquivalenceEveryScenario(t *testing.T) {
	for _, name := range registry.ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			sc, err := registry.LookupScenario(name)
			if err != nil {
				t.Fatal(err)
			}
			tr := record(t, sc)

			for k := 0; k <= len(tr.Commands); k++ {
				env := registry.MustNewEnv(browser.DeveloperMode)
				s, err := replayer.New(env.Browser, replayer.Options{}).NewSession(nil, tr)
				if err != nil {
					t.Fatalf("NewSession: %v", err)
				}
				for i := 0; i < k; i++ {
					if _, ok := s.Next(); !ok {
						t.Fatalf("session ended early at command %d", i)
					}
				}
				fork, err := s.Fork()
				if err != nil {
					t.Fatalf("Fork at %d: %v", k, err)
				}
				forkEnv := fork.Tab().Browser().World().(*registry.Env)

				img, err := Capture(forkEnv, fork, Header{Scenario: name})
				if err != nil {
					t.Fatalf("Capture at %d: %v", k, err)
				}
				data, digest, err := Encode(img)
				if err != nil {
					t.Fatalf("Encode at %d: %v", k, err)
				}
				img2, digest2, err := Decode(data)
				if err != nil {
					t.Fatalf("Decode at %d: %v", k, err)
				}
				if digest2 != digest {
					t.Fatalf("at %d: decode verified digest %s, encode said %s", k, digest2, digest)
				}

				// Capturing the untouched world again must produce the
				// identical digest — images are content-addressed.
				if again, err := Capture(forkEnv, fork, Header{Scenario: name}); err != nil {
					t.Fatalf("re-Capture at %d: %v", k, err)
				} else if d, err := again.Digest(); err != nil || d != digest {
					t.Fatalf("at %d: second capture digest %s (%v), want %s", k, d, err, digest)
				}

				restoredEnv, restored, err := LoadSession(img2, nil, nil)
				if err != nil {
					t.Fatalf("LoadSession at %d: %v", k, err)
				}

				forkRes := fork.Run()
				restoredRes := restored.Run()
				compareResults(t, fmt.Sprintf("fork point %d", k), forkRes, restoredRes)

				ft, rt := fork.Tab(), restored.Tab()
				if rt.URL() != ft.URL() || rt.Title() != ft.Title() {
					t.Errorf("fork point %d: final page %q (%q), want %q (%q)",
						k, rt.URL(), rt.Title(), ft.URL(), ft.Title())
				}
				if w, g := len(ft.Console()), len(rt.Console()); w != g {
					t.Errorf("fork point %d: %d console entries, want %d", k, g, w)
				}
				if err := sc.Verify(restoredEnv, rt); err != nil {
					t.Errorf("fork point %d: scenario oracle rejected the restored replay: %v", k, err)
				}
			}
		})
	}
}

// TestImageWithPendingAJAX pins the hard case: imaging a world while
// the Sites editor fetch is in flight. The pending AJAX must fire in
// the restored world exactly as in the imaged one.
func TestImageWithPendingAJAX(t *testing.T) {
	sc := apps.EditSiteScenario()
	tr := record(t, sc)

	env := apps.NewEnv(browser.DeveloperMode)
	s, err := replayer.New(env.Browser, replayer.Options{}).NewSession(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	imaged := false
	for i := 0; i < len(tr.Commands); i++ {
		if env.Clock.PendingTimers() > 0 && !imaged {
			imaged = true
			img, err := Capture(env, s, Header{Scenario: "Edit site"})
			if err != nil {
				t.Fatalf("Capture with pending AJAX: %v", err)
			}
			data, _, err := Encode(img)
			if err != nil {
				t.Fatal(err)
			}
			img2, _, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			restoredEnv, restored, err := LoadSession(img2, nil, nil)
			if err != nil {
				t.Fatalf("LoadSession: %v", err)
			}
			if got := restoredEnv.Clock.PendingTimers(); got != env.Clock.PendingTimers() {
				t.Fatalf("restored world has %d pending timers, imaged one %d", got, env.Clock.PendingTimers())
			}
			if res := restored.Run(); !res.Complete() {
				t.Fatalf("restored replay incomplete: %+v", res)
			}
			if err := sc.Verify(restoredEnv, restored.Tab()); err != nil {
				t.Errorf("restored replay with pending AJAX failed the oracle: %v", err)
			}
		}
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if !imaged {
		t.Fatal("no command left AJAX pending; scenario no longer covers the case")
	}
	// The imaged world is untouched: the original session still finishes.
	if res := s.Result(); !res.Complete() {
		t.Fatalf("original replay incomplete after imaging: %+v", res)
	}
	if err := sc.Verify(env, s.Tab()); err != nil {
		t.Errorf("original session failed its oracle after imaging: %v", err)
	}
}

// smallImage builds a compact pristine image (the Yahoo authenticate
// world at fork point 0) for the corruption sweeps.
func smallImage(t *testing.T) []byte {
	t.Helper()
	tr := record(t, apps.AuthenticateScenario())
	env := registry.MustNewEnv(browser.DeveloperMode)
	s, err := replayer.New(env.Browser, replayer.Options{}).NewSession(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Capture(env, s, Header{Scenario: "Authenticate", Creator: "test"})
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestImageRejectsCorruption mirrors the trace-archive flip test: a
// single-byte flip anywhere in the compressed region must either be
// rejected or be semantically inert (gzip's few uncheck-summed header
// bits); what must never happen is a flip that reads back as different
// content. Truncations must always be rejected.
func TestImageRejectsCorruption(t *testing.T) {
	pristine := smallImage(t)
	wantImg, wantDigest, err := Decode(pristine)
	if err != nil {
		t.Fatal(err)
	}
	_ = wantImg

	bodyStart := bytes.Index(pristine, []byte("\n\n")) + 2
	detected := 0
	for off := bodyStart; off < len(pristine); off++ {
		corrupt := append([]byte(nil), pristine...)
		corrupt[off] ^= 0x40
		_, digest, err := Decode(corrupt)
		if err != nil {
			detected++
			continue
		}
		if digest != wantDigest {
			t.Fatalf("corruption at byte %d read back as different content", off)
		}
	}
	if flips := len(pristine) - bodyStart; detected < flips*9/10 {
		t.Errorf("only %d/%d compressed-region flips were detected", detected, flips)
	}

	for _, cut := range []int{1, bodyStart / 2, bodyStart, len(pristine) / 2, len(pristine) - 1} {
		if _, _, err := Decode(pristine[:cut]); err == nil {
			t.Errorf("truncation at %d bytes was not detected", cut)
		}
	}
}

// forgeImage wraps a handwritten body in a valid file envelope.
func forgeImage(t *testing.T, body string) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("WARR-IMAGE v1\n\n")
	gz := gzip.NewWriter(&buf)
	if _, err := io.WriteString(gz, body); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestImageBodyValidation(t *testing.T) {
	// A tiny valid section to build forged bodies around.
	payload := `{}`
	sec := func(name string) string {
		return fmt.Sprintf("-- section %s bytes=%d fnv1a=%s\n%s\n", name, len(payload), fnv1aHex([]byte(payload)), payload)
	}
	footer := func(n int, secs ...section) string {
		return fmt.Sprintf("-- end sections=%d sha256=%s\n", n, digestSections(secs))
	}
	envSec := section{name: "env", payload: []byte(payload)}
	browserSec := section{name: "browser", payload: []byte(payload)}

	cases := []struct {
		name string
		body string
	}{
		{"missing body magic", sec("env") + sec("browser") + footer(2, envSec, browserSec)},
		{"missing footer", "# warr-image v1\n" + sec("env") + sec("browser")},
		{"section count mismatch", "# warr-image v1\n" + sec("env") + sec("browser") + footer(3, envSec, browserSec)},
		{"digest mismatch", "# warr-image v1\n" + sec("env") + sec("browser") + strings.Replace(footer(2, envSec, browserSec), "sha256=", "sha256=0", 1)},
		{"content past footer", "# warr-image v1\n" + sec("env") + sec("browser") + footer(2, envSec, browserSec) + "trailing\n"},
		{"duplicate section", "# warr-image v1\n" + sec("env") + sec("env") + footer(2, envSec, envSec)},
		{"unknown section", "# warr-image v1\n" + sec("env") + sec("browser") + sec("mystery") + footer(3, envSec, browserSec, section{name: "mystery", payload: []byte(payload)})},
		{"missing required section", "# warr-image v1\n" + sec("env") + footer(1, envSec)},
		{"checksum mismatch", "# warr-image v1\n" + strings.Replace(sec("env"), "fnv1a=", "fnv1a=0", 1) + sec("browser") + footer(2, envSec, browserSec)},
		{"malformed section header", "# warr-image v1\n-- section env bytes=x fnv1a=0\n" + footer(0)},
	}
	for _, tc := range cases {
		if _, _, err := Decode(forgeImage(t, tc.body)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// The checksum failure must be the typed error.
	var cse *CorruptSectionError
	_, _, err := Decode(forgeImage(t, "# warr-image v1\n"+strings.Replace(sec("env"), "fnv1a=", "fnv1a=0", 1)))
	if !errors.As(err, &cse) || cse.Section != "env" {
		t.Errorf("section checksum failure = %v, want *CorruptSectionError for env", err)
	}
}

func TestImageFutureVersionRefused(t *testing.T) {
	data := []byte("WARR-IMAGE v2\n\nanything")
	_, _, err := Decode(data)
	var fve *FutureVersionError
	if !errors.As(err, &fve) {
		t.Fatalf("v2 image read error = %v, want *FutureVersionError", err)
	}
	if fve.Version != 2 {
		t.Errorf("reported version %d, want 2", fve.Version)
	}
}

func TestImageHeaderRoundTrip(t *testing.T) {
	tr := record(t, apps.AuthenticateScenario())
	env := registry.MustNewEnv(browser.DeveloperMode)
	s, err := replayer.New(env.Browser, replayer.Options{}).NewSession(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Capture(env, s, Header{
		Scenario: "Authenticate",
		App:      "Yahoo",
		Creator:  "weberr",
		Extra:    map[string]string{"shard": "3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	h := got.Header
	if h.Version != Version || h.Scenario != "Authenticate" || h.App != "Yahoo" || h.Creator != "weberr" {
		t.Errorf("header round trip = %+v", h)
	}
	if h.Extra["shard"] != "3" {
		t.Errorf("extra header keys lost: %+v", h.Extra)
	}
	// The plain-text header is readable before the gzip body.
	if !strings.HasPrefix(string(data), "WARR-IMAGE v1\nscenario: Authenticate\napp: Yahoo\ncreator: weberr\nshard: 3\n\n") {
		t.Errorf("file does not open with the expected plain-text header:\n%q", string(data[:80]))
	}
}

// plusApp is an application registered in the restoring process but
// absent from the imaged world — the shape of a warr-worker linking a
// plugin the coordinator that captured the image does not.
type plusApp struct{}

func (plusApp) Name() string                { return "Plus" }
func (plusApp) Host() string                { return "plus.test" }
func (plusApp) StartURL() string            { return "http://plus.test/" }
func (plusApp) NewState() registry.AppState { return &plusState{} }

type plusState struct{}

func (*plusState) Handler() netsim.Handler {
	return netsim.HandlerFunc(func(*netsim.Request) *netsim.Response {
		return netsim.OK("<html><head><title>Plus</title></head><body></body></html>")
	})
}

func (*plusState) Reset() {}

// TestImageRestoreAcrossRegistries pins the closed-world restore rule:
// the image decides what the restored environment hosts. A restoring
// process with a wider registry (extra plugins linked) must restore
// faithfully — exactly the imaged apps, nothing more — and a process
// missing an imaged app must refuse, not improvise.
func TestImageRestoreAcrossRegistries(t *testing.T) {
	pristine := smallImage(t)
	img, _, err := Decode(pristine)
	if err != nil {
		t.Fatal(err)
	}

	wide := registry.New()
	for _, a := range registry.Default.Apps() {
		wide.MustRegisterApp(a)
	}
	wide.MustRegisterApp(plusApp{})
	env, sess, err := LoadSession(img, nil, nil, registry.WithRegistry(wide))
	if err != nil {
		t.Fatalf("restore with a wider registry: %v", err)
	}
	var want []string
	for _, ai := range img.Env.Apps {
		want = append(want, ai.Name)
	}
	got := env.AppNames()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("restored world hosts %v, imaged world hosts %v", got, want)
	}
	if res := sess.Run(); res.Failed > 0 {
		t.Errorf("restored session failed %d steps", res.Failed)
	}

	narrow := registry.New()
	narrow.MustRegisterApp(plusApp{})
	if _, _, err := LoadSession(img, nil, nil, registry.WithRegistry(narrow)); err == nil {
		t.Error("restored an image whose apps are not registered")
	} else if !strings.Contains(err.Error(), "not registered") {
		t.Errorf("missing-app restore error = %v", err)
	}
}

func TestImageStore(t *testing.T) {
	pristine := smallImage(t)
	st := NewStore()

	d1, err := st.AddBytes(pristine)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := st.AddBytes(pristine)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || st.Len() != 1 {
		t.Errorf("identical bytes stored as %s and %s across %d entries, want dedup", d1, d2, st.Len())
	}
	if data, ok := st.Bytes(d1); !ok || !bytes.Equal(data, pristine) {
		t.Error("stored bytes do not round trip")
	}
	if _, err := st.Get(d1); err != nil {
		t.Errorf("Get(%s): %v", d1, err)
	}
	if _, ok := st.Bytes("deadbeef"); ok {
		t.Error("unknown digest resolved")
	}

	corrupt := append([]byte(nil), pristine...)
	corrupt[len(corrupt)/2] ^= 0xff
	if _, err := st.AddBytes(corrupt); err == nil {
		t.Error("corrupt image accepted into the store")
	}
}
