// Package image persists forked WaRR worlds as versioned, content-
// addressed WARR-IMAGE files — the durable counterpart of Env.Fork and
// the transport of the distributed campaign executor.
//
// A fork copies a world within one process; an image is the same world
// as bytes: the environment half (virtual instant, network latency,
// every hosted application's server state), the whole browser stack
// (cookies, tabs, frame trees, DOM, script interpreter state, the
// event-listener registration log, pending timers and AJAX), the
// webdriver master state, and — optionally — the replay session parked
// at its current command. Ship the file to another process, load it,
// and replay continues from the imaged instant exactly as a same-
// process fork would have.
//
// The file layout follows the WARR-ARCHIVE idiom (internal/trace): a
// plain-text `key: value` header a developer can read with head(1),
// then a gzip-compressed body of named sections:
//
//	WARR-IMAGE v1
//	scenario: Edit site
//	<blank line>
//	<gzip of:>
//	# warr-image v1
//	-- section env bytes=214 fnv1a=8c93d0a1e5b2f471
//	{...}
//	-- section browser bytes=48112 fnv1a=...
//	{...}
//	-- section session bytes=1832 fnv1a=...
//	{...}
//	-- end sections=3 sha256=<hex>
//
// Validation is strict and versioning is forward-compatible, exactly
// like trace archives: a newer format version is refused with a
// *FutureVersionError rather than misread, every section carries an
// FNV-1a checksum caught before its JSON is even parsed, the footer
// pins the section count and the SHA-256 content digest, and nothing
// may follow the footer. The digest is computed over the uncompressed
// section contents — identical worlds produce identical digests, which
// is what lets the Store deduplicate images by content and the
// distributed executor name them on the wire.
package image

import (
	"bufio"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// Version is the image format version this package writes.
const Version = 1

// magicPrefix opens every image file; the full magic line is
// "WARR-IMAGE v<version>".
const magicPrefix = "WARR-IMAGE v"

// bodyMagic is the required first line of the decompressed body.
const bodyMagic = "# warr-image v1"

// Section framing.
const (
	sectionPrefix = "-- section "
	footerPrefix  = "-- end "
)

// Section names, in serialization order.
const (
	sectionEnv     = "env"
	sectionBrowser = "browser"
	sectionSession = "session"
)

// maxSectionLen bounds one section payload (the browser section of a
// deep world is large, but not unbounded); maxHeaderLen bounds one
// plain-text header line.
const (
	maxSectionLen = 1 << 28
	maxHeaderLen  = 1 << 16
)

// Header is the plaintext metadata block of an image file.
type Header struct {
	// Version is the format version. Zero means "current" when writing;
	// readers set it to the version of the file they read.
	Version int

	// Scenario names the workload the imaged world was executing.
	Scenario string

	// App names the application under test, when there is a single one.
	App string

	// Creator identifies what produced the image ("weberr",
	// "warr-worker").
	Creator string

	// Extra holds unknown header keys, preserved across a read/write
	// round trip.
	Extra map[string]string
}

const (
	keyScenario = "scenario"
	keyApp      = "app"
	keyCreator  = "creator"
)

// FutureVersionError reports an image written by a newer format version
// than this package understands.
type FutureVersionError struct {
	Version int
}

func (e *FutureVersionError) Error() string {
	return fmt.Sprintf("image: format v%d is newer than supported v%d; upgrade warr to read it",
		e.Version, Version)
}

// CorruptSectionError reports a section whose bytes do not match their
// recorded checksum.
type CorruptSectionError struct {
	Section string
}

func (e *CorruptSectionError) Error() string {
	return fmt.Sprintf("image: section %q fails its checksum (corrupt or tampered)", e.Section)
}

// Image is a world image in memory: the three section payloads plus the
// file header. Session may be nil — a world image need not carry a
// parked replay.
type Image struct {
	Header  Header
	Env     *registry.EnvImage
	Browser *browser.Image
	Session *replayer.Image
}

// ---- capture ----

// Capture images a live world: the environment half through
// registry.Env.EncodeImage, the browser through browser.EncodeImage,
// and — when sess is non-nil — the replay session named by the browser
// image's tab/frame numbering. The world must be imageable: every
// hosted application implements ImageMarshaler and the browser holds no
// state outside the image vocabulary (fails with browser.ErrNotImageable
// wrapped otherwise).
func Capture(env *registry.Env, sess *replayer.Session, h Header) (*Image, error) {
	ei, err := env.EncodeImage()
	if err != nil {
		return nil, err
	}
	bi, refs, err := env.Browser.EncodeImage()
	if err != nil {
		return nil, err
	}
	img := &Image{Header: h, Env: ei, Browser: bi}
	if sess != nil {
		si, err := sess.EncodeImage(refs.TabID, refs.FrameID)
		if err != nil {
			return nil, err
		}
		img.Session = si
	}
	return img, nil
}

// CaptureSession images the live world a replay session runs in,
// resolving the environment from the session itself: its tab's browser
// must be hosted by a registry environment — the shape every session
// built through the engine or the CLIs has.
func CaptureSession(sess *replayer.Session, h Header) (*Image, error) {
	env, ok := sess.Tab().Browser().World().(*registry.Env)
	if !ok {
		return nil, fmt.Errorf("image: session world is not a registry environment")
	}
	return Capture(env, sess, h)
}

// ---- restore ----

// LoadEnv rebuilds the imaged world: an environment with its clock at
// the imaged instant, restored application states, and the decoded
// browser attached. The application selection works like
// registry.NewEnv and must match the imaged set.
func LoadEnv(img *Image, opts ...registry.EnvOption) (*registry.Env, *browser.DecodedImage, error) {
	if img.Env == nil || img.Browser == nil {
		return nil, nil, fmt.Errorf("image: incomplete image (env and browser sections are required)")
	}
	return registry.RestoreEnv(img.Env, img.Browser, opts...)
}

// LoadSession rebuilds the imaged world and the replay session parked
// in it. Hooks are code, not state: the restored session runs with the
// given hook chain (typically nil).
func LoadSession(img *Image, ctx context.Context, hooks []replayer.Hooks, opts ...registry.EnvOption) (*registry.Env, *replayer.Session, error) {
	if img.Session == nil {
		return nil, nil, fmt.Errorf("image: image carries no replay session")
	}
	env, dec, err := LoadEnv(img, opts...)
	if err != nil {
		return nil, nil, err
	}
	sess, err := replayer.DecodeImage(img.Session, ctx, env.Browser, hooks, dec.Tab, dec.Frame)
	if err != nil {
		return nil, nil, err
	}
	return env, sess, nil
}

// ---- writing ----

func fnv1aHex(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

type section struct {
	name    string
	payload []byte
}

func (img *Image) sections() ([]section, error) {
	if img.Env == nil || img.Browser == nil {
		return nil, fmt.Errorf("image: incomplete image (env and browser sections are required)")
	}
	var out []section
	add := func(name string, v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("image: marshaling section %q: %w", name, err)
		}
		if len(data) > maxSectionLen {
			return fmt.Errorf("image: section %q exceeds %d bytes", name, maxSectionLen)
		}
		out = append(out, section{name: name, payload: data})
		return nil
	}
	if err := add(sectionEnv, img.Env); err != nil {
		return nil, err
	}
	if err := add(sectionBrowser, img.Browser); err != nil {
		return nil, err
	}
	if img.Session != nil {
		if err := add(sectionSession, img.Session); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// digestSections computes the content digest: SHA-256 over each
// section's name, a NUL byte, its payload, and a newline, in order.
// The digest covers the uncompressed content only, so it is a pure
// function of the imaged world.
func digestSections(secs []section) string {
	h := sha256.New()
	for _, s := range secs {
		digestSection(h, s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func digestSection(h hash.Hash, s section) {
	io.WriteString(h, s.name)
	h.Write([]byte{0})
	h.Write(s.payload)
	h.Write([]byte{'\n'})
}

// Digest returns the image's content digest without writing it
// anywhere — the identity the Store and the distributed executor key
// images by.
func (img *Image) Digest() (string, error) {
	secs, err := img.sections()
	if err != nil {
		return "", err
	}
	return digestSections(secs), nil
}

// Write serializes the image to w and returns its content digest.
func Write(w io.Writer, img *Image) (digest string, err error) {
	h := img.Header
	if h.Version == 0 {
		h.Version = Version
	}
	if h.Version != Version {
		return "", fmt.Errorf("image: cannot write format v%d (this package writes v%d)", h.Version, Version)
	}
	secs, err := img.sections()
	if err != nil {
		return "", err
	}
	digest = digestSections(secs)

	var b strings.Builder
	fmt.Fprintf(&b, "%s%d\n", magicPrefix, h.Version)
	writeKey := func(k, v string) error {
		if v == "" {
			return nil
		}
		if strings.ContainsAny(v, "\n\r") {
			return fmt.Errorf("image: header %s contains a newline", k)
		}
		if len(k)+len(": ")+len(v) > maxHeaderLen {
			return fmt.Errorf("image: header %s exceeds %d bytes", k, maxHeaderLen)
		}
		fmt.Fprintf(&b, "%s: %s\n", k, v)
		return nil
	}
	for _, kv := range []struct{ k, v string }{
		{keyScenario, h.Scenario},
		{keyApp, h.App},
		{keyCreator, h.Creator},
	} {
		if err := writeKey(kv.k, kv.v); err != nil {
			return "", err
		}
	}
	extras := make([]string, 0, len(h.Extra))
	for k := range h.Extra {
		extras = append(extras, k)
	}
	sort.Strings(extras)
	for _, k := range extras {
		switch k {
		case keyScenario, keyApp, keyCreator:
			return "", fmt.Errorf("image: extra header key %q shadows a well-known key", k)
		}
		if k == "" || strings.ContainsAny(k, ":\n\r ") {
			return "", fmt.Errorf("image: invalid extra header key %q", k)
		}
		if err := writeKey(k, h.Extra[k]); err != nil {
			return "", err
		}
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return "", fmt.Errorf("image: writing header: %w", err)
	}

	gz := gzip.NewWriter(w)
	bw := bufio.NewWriter(gz)
	write := func(s string) error {
		_, err := bw.WriteString(s)
		return err
	}
	if err := write(bodyMagic + "\n"); err != nil {
		return "", err
	}
	for _, s := range secs {
		if err := write(fmt.Sprintf("%s%s bytes=%d fnv1a=%s\n", sectionPrefix, s.name, len(s.payload), fnv1aHex(s.payload))); err != nil {
			return "", err
		}
		if _, err := bw.Write(s.payload); err != nil {
			return "", err
		}
		if err := write("\n"); err != nil {
			return "", err
		}
	}
	if err := write(fmt.Sprintf("%ssections=%d sha256=%s\n", footerPrefix, len(secs), digest)); err != nil {
		return "", err
	}
	if err := bw.Flush(); err != nil {
		return "", err
	}
	if err := gz.Close(); err != nil {
		return "", err
	}
	return digest, nil
}

// Encode serializes the image to bytes and returns them with the
// content digest.
func Encode(img *Image) (data []byte, digest string, err error) {
	var b strings.Builder
	digest, err = Write(&b, img)
	if err != nil {
		return nil, "", err
	}
	return []byte(b.String()), digest, nil
}

// WriteFile serializes the image to path and returns its content
// digest.
func WriteFile(path string, img *Image) (string, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	digest, err := Write(f, img)
	if err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return digest, nil
}

// ---- reading ----

// Read parses and validates a whole image from r, returning it with
// its verified content digest.
func Read(r io.Reader) (*Image, string, error) {
	br := byteLineReader{r: r}
	magic, err := br.line()
	if err != nil {
		return nil, "", fmt.Errorf("image: reading magic: %w", err)
	}
	vs, ok := strings.CutPrefix(magic, magicPrefix)
	if !ok {
		return nil, "", fmt.Errorf("image: not a WaRR world image (magic %q)", magic)
	}
	v, err := strconv.Atoi(vs)
	if err != nil || v < 1 {
		return nil, "", fmt.Errorf("image: malformed version %q", vs)
	}
	if v > Version {
		return nil, "", &FutureVersionError{Version: v}
	}
	h := Header{Version: v}
	seen := make(map[string]bool)
	for {
		line, err := br.line()
		if err != nil {
			return nil, "", fmt.Errorf("image: reading header: %w", err)
		}
		if line == "" {
			break
		}
		k, val, ok := strings.Cut(line, ": ")
		if !ok || k == "" || strings.ContainsRune(k, ' ') {
			return nil, "", fmt.Errorf("image: malformed header line %q", line)
		}
		if seen[k] {
			return nil, "", fmt.Errorf("image: duplicate header key %q", k)
		}
		seen[k] = true
		switch k {
		case keyScenario:
			h.Scenario = val
		case keyApp:
			h.App = val
		case keyCreator:
			h.Creator = val
		default:
			if h.Extra == nil {
				h.Extra = make(map[string]string)
			}
			h.Extra[k] = val
		}
	}

	gz, err := gzip.NewReader(br.r)
	if err != nil {
		return nil, "", fmt.Errorf("image: opening body: %w", err)
	}
	body := bufio.NewReader(gz)
	first, err := bodyLine(body)
	if err != nil {
		return nil, "", err
	}
	if first != bodyMagic {
		return nil, "", fmt.Errorf("image: body does not open with %q (got %q)", bodyMagic, first)
	}

	var secs []section
	byName := make(map[string][]byte)
	for {
		line, err := bodyLine(body)
		if err != nil {
			return nil, "", err
		}
		if rest, ok := strings.CutPrefix(line, footerPrefix); ok {
			var n int
			var sum string
			if _, err := fmt.Sscanf(rest, "sections=%d sha256=%s", &n, &sum); err != nil {
				return nil, "", fmt.Errorf("image: malformed footer %q", line)
			}
			if n != len(secs) {
				return nil, "", fmt.Errorf("image: footer declares %d sections, body has %d", n, len(secs))
			}
			if got := digestSections(secs); got != sum {
				return nil, "", fmt.Errorf("image: content digest mismatch (footer %s, content %s)", sum, got)
			}
			// Nothing may follow the footer.
			if extra, err := body.ReadByte(); err == nil {
				return nil, "", fmt.Errorf("image: body continues past its footer (0x%02x)", extra)
			} else if err != io.EOF {
				return nil, "", fmt.Errorf("image: reading past footer: %w", err)
			}
			img, err := assemble(h, byName)
			if err != nil {
				return nil, "", err
			}
			return img, sum, nil
		}
		rest, ok := strings.CutPrefix(line, sectionPrefix)
		if !ok {
			return nil, "", fmt.Errorf("image: unexpected body line %q", line)
		}
		var name, sum string
		var size int
		if _, err := fmt.Sscanf(rest, "%s bytes=%d fnv1a=%s", &name, &size, &sum); err != nil {
			return nil, "", fmt.Errorf("image: malformed section header %q", line)
		}
		if size < 0 || size > maxSectionLen {
			return nil, "", fmt.Errorf("image: section %q declares %d bytes", name, size)
		}
		if _, dup := byName[name]; dup {
			return nil, "", fmt.Errorf("image: duplicate section %q", name)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(body, payload); err != nil {
			return nil, "", fmt.Errorf("image: section %q truncated: %w", name, err)
		}
		if nl, err := body.ReadByte(); err != nil || nl != '\n' {
			return nil, "", fmt.Errorf("image: section %q is not newline-terminated", name)
		}
		if fnv1aHex(payload) != sum {
			return nil, "", &CorruptSectionError{Section: name}
		}
		secs = append(secs, section{name: name, payload: payload})
		byName[name] = payload
	}
}

func assemble(h Header, byName map[string][]byte) (*Image, error) {
	img := &Image{Header: h}
	envData, ok := byName[sectionEnv]
	if !ok {
		return nil, fmt.Errorf("image: missing required section %q", sectionEnv)
	}
	if err := json.Unmarshal(envData, &img.Env); err != nil {
		return nil, fmt.Errorf("image: parsing section %q: %w", sectionEnv, err)
	}
	browserData, ok := byName[sectionBrowser]
	if !ok {
		return nil, fmt.Errorf("image: missing required section %q", sectionBrowser)
	}
	if err := json.Unmarshal(browserData, &img.Browser); err != nil {
		return nil, fmt.Errorf("image: parsing section %q: %w", sectionBrowser, err)
	}
	if sessData, ok := byName[sectionSession]; ok {
		if err := json.Unmarshal(sessData, &img.Session); err != nil {
			return nil, fmt.Errorf("image: parsing section %q: %w", sectionSession, err)
		}
	}
	for name := range byName {
		switch name {
		case sectionEnv, sectionBrowser, sectionSession:
		default:
			// A v1 reader only knows the three v1 sections; an unknown
			// one means a v1.x writer extended the format, which the
			// checksummed framing lets us skip safely — but a restored
			// world missing part of its state would be silently wrong,
			// so refuse instead.
			return nil, fmt.Errorf("image: unknown section %q", name)
		}
	}
	return img, nil
}

// Decode parses a whole image from bytes.
func Decode(data []byte) (*Image, string, error) {
	return Read(strings.NewReader(string(data)))
}

// ReadFile reads the image at path.
func ReadFile(path string) (*Image, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

// IsImage reports whether data opens like an image file.
func IsImage(data []byte) bool {
	return strings.HasPrefix(string(data), magicPrefix)
}

// ---- plumbing ----

// byteLineReader reads newline-terminated lines one byte at a time, so
// the plain-text header can be consumed from an unbuffered reader
// without swallowing the start of the gzip stream (same idiom as trace
// archives).
type byteLineReader struct {
	r io.Reader
}

func (b byteLineReader) line() (string, error) {
	var sb strings.Builder
	var one [1]byte
	for {
		n, err := b.r.Read(one[:])
		if n == 1 {
			if one[0] == '\n' {
				return sb.String(), nil
			}
			sb.WriteByte(one[0])
			if sb.Len() > maxHeaderLen {
				return "", fmt.Errorf("image: header line too long")
			}
			continue
		}
		if err == io.EOF {
			return "", io.ErrUnexpectedEOF
		}
		if err != nil {
			return "", err
		}
	}
}

func bodyLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err == io.EOF {
		return "", fmt.Errorf("image: body truncated (no footer)")
	}
	if err != nil {
		return "", fmt.Errorf("image: reading body: %w", err)
	}
	return strings.TrimSuffix(line, "\n"), nil
}
