package image

import (
	"fmt"
	"sync"
)

// Store is an in-memory content-addressed image store: serialized
// images keyed by their SHA-256 content digest. The distributed
// campaign coordinator holds one — a worker parking a subtree uploads
// its branch-point image once, every worker resuming a shard of that
// subtree downloads it by digest, and identical world states (the
// common case when many branch points share a prefix) deduplicate to a
// single entry. Store is safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	data map[string][]byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Add serializes the image into the store and returns its digest.
func (s *Store) Add(img *Image) (string, error) {
	data, digest, err := Encode(img)
	if err != nil {
		return "", err
	}
	s.put(digest, data)
	return digest, nil
}

// AddBytes validates an already-serialized image and stores it under
// its verified digest. The bytes are parsed in full — a corrupt or
// truncated image is rejected here, not when a worker later loads it.
func (s *Store) AddBytes(data []byte) (string, error) {
	_, digest, err := Decode(data)
	if err != nil {
		return "", err
	}
	s.put(digest, data)
	return digest, nil
}

func (s *Store) put(digest string, data []byte) {
	s.mu.Lock()
	if _, ok := s.data[digest]; !ok {
		s.data[digest] = data
	}
	s.mu.Unlock()
}

// Bytes returns the serialized image stored under digest.
func (s *Store) Bytes(digest string) ([]byte, bool) {
	s.mu.Lock()
	data, ok := s.data[digest]
	s.mu.Unlock()
	return data, ok
}

// Get parses the image stored under digest.
func (s *Store) Get(digest string) (*Image, error) {
	data, ok := s.Bytes(digest)
	if !ok {
		return nil, fmt.Errorf("image: store has no image %s", digest)
	}
	img, _, err := Decode(data)
	return img, err
}

// Len returns the number of distinct images stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Digests returns the stored digests, in no particular order.
func (s *Store) Digests() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for d := range s.data {
		out = append(out, d)
	}
	return out
}
