package browser

import (
	"fmt"
	"net/url"
	"runtime"
	"strings"

	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/event"
)

// RecorderHook receives every user action at the engine layer, before
// event dispatch. The WaRR Recorder implements this interface; installing
// it here — inside the engine's three input methods — is the paper's core
// design decision (§IV-A: "adding calls to the recorder's logging
// functions in three methods of the WebCore::EventHandler class:
// handleMousePressEvent, handleDrag, and keyEvent").
type RecorderHook interface {
	// OnMousePress fires for every mouse press; clickCount is 2 for the
	// second press of a double click.
	OnMousePress(frame *Frame, target *dom.Node, x, y, clickCount int)
	// OnKey fires for every keystroke arriving at the engine.
	OnKey(frame *Frame, target *dom.Node, key string, code int, mods KeyMods)
	// OnDrag fires for every completed drag, with the position delta.
	OnDrag(frame *Frame, target *dom.Node, dx, dy int)
}

// EventHandler is the engine-layer input dispatcher —
// WebCore::EventHandler in the paper's Fig. 3 stack trace.
type EventHandler struct {
	tab      *Tab
	recorder RecorderHook

	// captureStack, when set, records the Go call stack on the next
	// mouse press — used to regenerate Fig. 3.
	captureStack bool
	lastStack    []string
}

func newEventHandler(tab *Tab) *EventHandler {
	return &EventHandler{tab: tab}
}

// SetRecorder installs (or, with nil, removes) the recorder hook.
func (h *EventHandler) SetRecorder(r RecorderHook) { h.recorder = r }

// Recorder returns the installed hook, nil when recording is off.
func (h *EventHandler) Recorder() RecorderHook { return h.recorder }

// CaptureStackOnNextPress arms one-shot stack capture (Fig. 3 harness).
func (h *EventHandler) CaptureStackOnNextPress() { h.captureStack = true }

// LastStack returns the most recently captured call stack.
func (h *EventHandler) LastStack() []string { return h.lastStack }

// HandleMousePressEvent handles a mouse press at window coordinates
// (x, y). This is the analog of
// WebCore::EventHandler::handleMousePressEvent.
func (h *EventHandler) HandleMousePressEvent(x, y, clickCount int) {
	if h.captureStack {
		h.captureStack = false
		h.lastStack = captureStack()
	}
	frame, target := h.tab.HitTest(x, y)
	if target == nil {
		return
	}
	if h.recorder != nil {
		h.recorder.OnMousePress(frame, target, x, y, clickCount)
	}

	h.tab.setFocus(frame, target)

	mouse := event.MouseData{X: x, Y: y}
	fire := func(typ string) bool {
		e := event.New(typ, target)
		e.SetMouseData(mouse)
		return event.Dispatch(e)
	}
	fire(event.TypeMouseDown)
	fire(event.TypeMouseUp)
	allowDefault := fire(event.TypeClick)
	if clickCount == 2 {
		allowDefault = fire(event.TypeDblClick) && allowDefault
	}
	if allowDefault {
		h.clickDefaultAction(frame, target)
	}
	h.tab.pump()
}

// clickDefaultAction implements the browser's built-in click behaviour:
// link navigation and form submission.
func (h *EventHandler) clickDefaultAction(frame *Frame, target *dom.Node) {
	for cur := target; cur != nil; cur = cur.Parent() {
		if cur.Type != dom.ElementNode {
			continue
		}
		if cur.Tag == "a" {
			if href, ok := cur.Attr("href"); ok && href != "" {
				h.tab.scheduleNavigate(frame.resolveURL(href))
				return
			}
		}
		isSubmit := (cur.Tag == "input" || cur.Tag == "button") &&
			strings.EqualFold(cur.AttrOr("type", ""), "submit")
		if isSubmit {
			if form := enclosingForm(cur); form != nil {
				h.submitForm(frame, form)
			}
			return
		}
	}
}

// KeyEvent handles one keystroke — WebCore::EventHandler::keyEvent.
func (h *EventHandler) KeyEvent(key string, code int, mods KeyMods) {
	frame := h.tab.focusedFrame()
	target := frame.Focused()
	if target == nil {
		if body := frame.Doc().Body(); body != nil {
			target = body
		} else {
			return
		}
	}
	if h.recorder != nil {
		h.recorder.OnKey(frame, target, key, code, mods)
	}

	keyData := event.KeyData{Key: key, Code: code, Shift: mods.Shift, Ctrl: mods.Ctrl, Alt: mods.Alt}
	down := event.New(event.TypeKeyDown, target)
	mustSetKey(down, keyData)
	allowDefault := event.Dispatch(down)

	if allowDefault && !IsControlKey(key) {
		press := event.New(event.TypeKeyPress, target)
		mustSetKey(press, keyData)
		allowDefault = event.Dispatch(press)
	}

	if allowDefault {
		h.keyDefaultAction(frame, target, key, keyData)
	}

	up := event.New(event.TypeKeyUp, target)
	mustSetKey(up, keyData)
	event.Dispatch(up)
	h.tab.pump()
}

// mustSetKey sets key data on a trusted event; trusted events never
// refuse.
func mustSetKey(e *event.Event, k event.KeyData) {
	if err := e.SetKeyData(k); err != nil {
		panic(fmt.Sprintf("browser: trusted event refused key data: %v", err))
	}
}

// keyDefaultAction performs text insertion / deletion and Enter-submit.
func (h *EventHandler) keyDefaultAction(frame *Frame, target *dom.Node, key string, kd event.KeyData) {
	switch {
	case key == KeyEnter:
		if target.Tag == "input" {
			if form := enclosingForm(target); form != nil {
				h.submitForm(frame, form)
				return
			}
		}
		if target.IsEditable() && target.Tag != "input" {
			insertText(target, "\n")
			h.fireInput(target)
		}
	case key == KeyBackspace:
		if target.IsEditable() {
			deleteLastChar(target)
			h.fireInput(target)
		}
	case !IsControlKey(key):
		if target.IsEditable() {
			insertText(target, key)
			h.fireInput(target)
		}
	}
}

func (h *EventHandler) fireInput(target *dom.Node) {
	event.Dispatch(event.New(event.TypeInput, target))
}

// insertText types text into an editable element: input/textarea elements
// receive it in their value property; contenteditable elements receive a
// text node. The distinction is exactly the one ChromeDriver got wrong
// and WaRR fixes (§IV-C: "setting the correct property (e.g., textContent
// for div elements)").
func insertText(target *dom.Node, text string) {
	if target.Tag == "input" || target.Tag == "textarea" {
		target.AppendValue(text)
		return
	}
	if last := target.LastChild(); last != nil && last.Type == dom.TextNode {
		last.AppendData(text)
		return
	}
	target.AppendChild(dom.NewText(text))
}

func deleteLastChar(target *dom.Node) {
	if target.Tag == "input" || target.Tag == "textarea" {
		if len(target.Value) > 0 {
			target.SetValue(target.Value[:len(target.Value)-1])
		}
		return
	}
	if last := target.LastChild(); last != nil && last.Type == dom.TextNode && len(last.Data) > 0 {
		last.SetData(last.Data[:len(last.Data)-1])
		if last.Data == "" {
			last.Detach()
		}
	}
}

// HandleDrag handles a drag of the element under (x, y) by (dx, dy) —
// WebCore::EventHandler::handleDrag.
func (h *EventHandler) HandleDrag(x, y, dx, dy int) {
	frame, target := h.tab.HitTest(x, y)
	if target == nil {
		return
	}
	if h.recorder != nil {
		h.recorder.OnDrag(frame, target, dx, dy)
	}
	drag := event.DragData{DX: dx, DY: dy}
	for _, typ := range []string{event.TypeDragStart, event.TypeDrag, event.TypeDragEnd} {
		e := event.New(typ, target)
		e.SetDragData(drag)
		event.Dispatch(e)
	}
	h.tab.pump()
}

// submitForm collects named controls and navigates to the form's action.
func (h *EventHandler) submitForm(frame *Frame, form *dom.Node) {
	submit := event.New(event.TypeSubmit, form)
	if !event.Dispatch(submit) {
		return
	}
	values := url.Values{}
	form.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		name, ok := n.Attr("name")
		if !ok || name == "" {
			return true
		}
		switch n.Tag {
		case "input", "textarea":
			if !strings.EqualFold(n.AttrOr("type", ""), "submit") {
				values.Set(name, n.Value)
			}
		case "select":
			for _, opt := range n.ElementsByTag("option") {
				if opt.HasAttr("selected") {
					values.Set(name, opt.AttrOr("value", strings.TrimSpace(opt.TextContent())))
				}
			}
		}
		return true
	})
	action := frame.resolveURL(form.AttrOr("action", frame.Doc().URL))
	method := strings.ToUpper(form.AttrOr("method", "GET"))
	if method == "POST" {
		h.tab.scheduleNavigatePost(action, values.Encode())
		return
	}
	sep := "?"
	if strings.Contains(action, "?") {
		sep = "&"
	}
	h.tab.scheduleNavigate(action + sep + values.Encode())
}

// enclosingForm returns the nearest form ancestor, or nil.
func enclosingForm(n *dom.Node) *dom.Node {
	for cur := n; cur != nil; cur = cur.Parent() {
		if cur.Type == dom.ElementNode && cur.Tag == "form" {
			return cur
		}
	}
	return nil
}

// captureStack renders the current call stack as function names, topmost
// frame first — the Fig. 3 reproduction.
func captureStack() []string {
	pcs := make([]uintptr, 32)
	n := runtime.Callers(2, pcs)
	frames := runtime.CallersFrames(pcs[:n])
	var out []string
	for {
		f, more := frames.Next()
		out = append(out, f.Function)
		if !more {
			break
		}
	}
	return out
}
