package browser

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"time"

	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/event"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/script"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// This file serializes the browser half of a world for durable images
// (WARR-IMAGE, internal/image): everything CloneOnto deep-copies —
// cookies, tabs, frame trees, DOM documents, script interpreter state,
// the event-listener registration log, and pending async work — encoded
// as data instead of cloned as live structure. The encode/decode pair
// follows CloneOnto's four phases exactly, so an image round trip and an
// in-memory fork produce the same world:
//
//	1. structure: tab shells, frame trees, documents, fresh interpreters;
//	2. pending async shells, so timer handles met during value encoding
//	   resolve to their slot;
//	3. state: script globals (filtered against pristine builtins),
//	   listener-log replay, focus;
//	4. pending async re-arm, in registration order.
//
// Host values are encoded as tokens naming what they were bound to —
// a frame's builtin by name, an element by document position, a pending
// timer by slot — and decoded against the rebuilt world. What a fork
// deliberately shares with the parent (stale handles of dead frames,
// callbacks of dead-frame timers) an image deliberately drops: the
// dropped values are unreachable by execution (fireAsync refuses dead
// frames), so replay behaviour is unchanged.

// ErrNotImageable reports browser state a durable image cannot carry.
// The one source is a script variable holding a freshly minted method
// closure (e.g. a stored element.setAttribute): such a closure has no
// stable identity to name in a token. The paper applications never do
// this; the image round-trip tests prove it scenario by scenario.
var ErrNotImageable = errors.New("browser: state not representable in a durable image")

// NodeRef names one DOM node across the image boundary: the pre-order
// position N inside either frame F's document, or — for nodes held only
// by script values — detached tree D (F == -1).
type NodeRef struct {
	F int `json:"f"`
	D int `json:"d,omitempty"`
	N int `json:"n"`
}

// Image is the serialized form of a whole browser.
type Image struct {
	Mode     Mode                         `json:"mode"`
	Cookies  map[string]map[string]string `json:"cookies,omitempty"`
	Tabs     []*TabImage                  `json:"tabs"`
	Detached []*dom.EncodedNode           `json:"detached,omitempty"`
	Asyncs   []*AsyncImage                `json:"asyncs,omitempty"`
	Heap     []*script.HeapRecord         `json:"heap,omitempty"`
	Scopes   []*script.ScopeRecord        `json:"scopes,omitempty"`
}

// TabImage is one serialized tab.
type TabImage struct {
	Main       *FrameImage    `json:"main"`
	Console    []ConsoleEntry `json:"console,omitempty"`
	Popup      *Popup         `json:"popup,omitempty"`
	Pending    []NavImage     `json:"pendingNavs,omitempty"`
	ViewportW  int            `json:"viewportW"`
	FocusFrame int            `json:"focusFrame"`
}

// NavImage is one queued navigation.
type NavImage struct {
	URL    string `json:"url"`
	Method string `json:"method,omitempty"`
	Body   string `json:"body,omitempty"`
}

// FrameImage is one serialized frame: its document, its non-pristine
// script globals in sorted name order, and its listener registration
// log. Children appear in document order.
type FrameImage struct {
	Name      string           `json:"name,omitempty"`
	HasSrc    bool             `json:"hasSrc,omitempty"`
	Alive     bool             `json:"alive"`
	URL       string           `json:"url"`
	Element   *NodeRef         `json:"element,omitempty"`
	Doc       *dom.EncodedNode `json:"doc"`
	MaxSteps  int              `json:"maxSteps,omitempty"`
	Globals   []GlobalImage    `json:"globals,omitempty"`
	Listeners []ListenerImage  `json:"listeners,omitempty"`
	Focused   *NodeRef         `json:"focused,omitempty"`
	Children  []*FrameImage    `json:"children,omitempty"`
}

// GlobalImage is one frame global still bound to user state (globals
// bound to their pristine builtin are omitted; the decoded frame's
// fresh binding wins, exactly as in a fork).
type GlobalImage struct {
	Name string              `json:"name"`
	Val  script.EncodedValue `json:"val"`
}

// ListenerImage is one entry of a frame's listener registration log.
type ListenerImage struct {
	Node    NodeRef              `json:"node"`
	Type    string               `json:"type"`
	Capture bool                 `json:"capture,omitempty"`
	Inline  bool                 `json:"inline,omitempty"`
	Src     string               `json:"src,omitempty"`
	Fn      *script.EncodedValue `json:"fn,omitempty"`
}

// AsyncImage is one pending async record: a setTimeout callback or an
// in-flight httpGet, with its remaining delay. Records appear in
// registration order and are re-armed in it, so same-deadline firing
// order survives. A record whose frame died keeps its timer slot (clock
// parity) but drops its callbacks — they can never run.
type AsyncImage struct {
	Frame   int                  `json:"frame"`
	Kind    int                  `json:"kind"`
	DelayNS int64                `json:"delayNS"`
	RawURL  string               `json:"rawURL,omitempty"`
	Fn      *script.EncodedValue `json:"fn,omitempty"`
	Cb      *script.EncodedValue `json:"cb,omitempty"`
	Req     *RequestImage        `json:"req,omitempty"`
}

// RequestImage is a serialized pending AJAX request.
type RequestImage struct {
	Method string            `json:"method"`
	URL    string            `json:"url"`
	Body   string            `json:"body,omitempty"`
	Header map[string]string `json:"header,omitempty"`
	Form   url.Values        `json:"form,omitempty"`
}

// hostToken names one host value across the image boundary.
type hostToken struct {
	K     string      `json:"k"` // builtin, elem, doc, win, loc, timer, event
	F     int         `json:"f"`
	Name  string      `json:"n,omitempty"`
	Node  *NodeRef    `json:"node,omitempty"`
	Async int         `json:"a,omitempty"` // timer slot; -1 = already fired (inert)
	Ev    *eventToken `json:"ev,omitempty"`
}

// eventToken carries a script-visible event: its state plus its node
// references, translated separately because event.State cannot name
// nodes.
type eventToken struct {
	State   event.State `json:"state"`
	Target  *NodeRef    `json:"target,omitempty"`
	Current *NodeRef    `json:"current,omitempty"`
}

// ImageRefs exposes the frame and tab numbering an image was encoded
// with, so companion codecs (the webdriver's) can name frames by index.
type ImageRefs struct {
	frameIDs map[*Frame]int
	tabIDs   map[*Tab]int
}

// FrameID returns the image index of f.
func (r *ImageRefs) FrameID(f *Frame) (int, bool) {
	id, ok := r.frameIDs[f]
	return id, ok
}

// TabID returns the image index of t.
func (r *ImageRefs) TabID(t *Tab) (int, bool) {
	id, ok := r.tabIDs[t]
	return id, ok
}

// DecodedImage exposes the rebuilt world by the same numbering, so
// companion codecs can resolve their stored indices.
type DecodedImage struct {
	browser *Browser
	tabs    []*Tab
	frames  []*Frame
}

// Browser returns the rebuilt browser.
func (d *DecodedImage) Browser() *Browser { return d.browser }

// Tab returns the tab at image index i, or nil.
func (d *DecodedImage) Tab(i int) *Tab {
	if i < 0 || i >= len(d.tabs) {
		return nil
	}
	return d.tabs[i]
}

// Frame returns the frame at image index i, or nil.
func (d *DecodedImage) Frame(i int) *Frame {
	if i < 0 || i >= len(d.frames) {
		return nil
	}
	return d.frames[i]
}

// NumTabs returns the number of decoded tabs.
func (d *DecodedImage) NumTabs() int { return len(d.tabs) }

// ---- encoding ----

type imageEnc struct {
	b   *Browser
	img *Image

	frames   []*Frame
	frameImg []*FrameImage
	frameIDs map[*Frame]int
	tabIDs   map[*Tab]int

	refs     map[*dom.Node]NodeRef
	owners   map[script.Value]builtinOwner
	asyncIdx map[*asyncRec]int
	enc      *script.ValueEncoder
}

// EncodeImage serializes the browser. Like CloneOnto it requires every
// pending clock timer to be owned by the browser's async records.
func (b *Browser) EncodeImage() (*Image, *ImageRefs, error) {
	pending := b.pendingAsyncs()
	if n := b.clock.PendingTimers(); n != len(pending) {
		return nil, nil, fmt.Errorf("%w: %d pending timer(s), %d owned record(s)",
			ErrForeignPendingWork, n, len(pending))
	}

	st := &imageEnc{
		b:        b,
		img:      &Image{Mode: b.mode},
		frameIDs: make(map[*Frame]int),
		tabIDs:   make(map[*Tab]int),
		refs:     make(map[*dom.Node]NodeRef),
		owners:   make(map[script.Value]builtinOwner),
		asyncIdx: make(map[*asyncRec]int),
	}
	st.enc = script.NewValueEncoder(st.encodeHost)

	b.mu.Lock()
	st.img.Cookies = make(map[string]map[string]string, len(b.cookies))
	for host, jar := range b.cookies {
		dup := make(map[string]string, len(jar))
		for k, v := range jar {
			dup[k] = v
		}
		st.img.Cookies[host] = dup
	}
	tabs := append([]*Tab(nil), b.tabs...)
	b.mu.Unlock()

	// Phase 1: structure — frame numbering, documents, builtin owners,
	// scope tags.
	for _, t := range tabs {
		st.tabIDs[t] = len(st.img.Tabs)
		ti := &TabImage{ViewportW: t.viewportW}
		ti.Main = st.encodeFrameStructure(t.main)
		ti.Console = append([]ConsoleEntry(nil), t.console...)
		if t.popup != nil {
			p := *t.popup
			ti.Popup = &p
		}
		for _, nav := range t.pendingNavs {
			ti.Pending = append(ti.Pending, NavImage{URL: nav.url, Method: nav.method, Body: nav.body})
		}
		if id, ok := st.frameIDs[t.focusFrame]; ok {
			ti.FocusFrame = id
		} else {
			ti.FocusFrame = -1
		}
		st.img.Tabs = append(st.img.Tabs, ti)
	}

	// Phase 2: pending async slots, so TimerHandle values met during
	// value encoding resolve to them.
	for i, rec := range pending {
		st.asyncIdx[rec] = i
	}

	// Phase 3: state — globals, listener logs, focus.
	for i, f := range st.frames {
		if err := st.encodeFrameState(f, st.frameImg[i]); err != nil {
			return nil, nil, err
		}
	}

	// Phase 4: pending async payloads, in registration order.
	now := b.clock.Now()
	for _, rec := range pending {
		ai := &AsyncImage{Kind: int(rec.kind), DelayNS: int64(rec.deadline.Sub(now)), RawURL: rec.rawURL}
		id, live := st.frameIDs[rec.frame]
		if rec.frame != nil && rec.frame.alive && live {
			ai.Frame = id
			var err error
			if ai.Fn, err = st.encodeValue(rec.fn); err != nil {
				return nil, nil, err
			}
			if ai.Cb, err = st.encodeValue(rec.cb); err != nil {
				return nil, nil, err
			}
			ai.Req = encodeRequest(rec.req)
		} else {
			// The frame died: the record can never run its callbacks, so
			// only the timer slot is kept (clock parity, deadline order).
			ai.Frame = -1
		}
		st.img.Asyncs = append(st.img.Asyncs, ai)
	}

	st.img.Heap = st.enc.Heap()
	st.img.Scopes = st.enc.Scopes()
	return st.img, &ImageRefs{frameIDs: st.frameIDs, tabIDs: st.tabIDs}, nil
}

func (st *imageEnc) encodeFrameStructure(f *Frame) *FrameImage {
	id := len(st.frames)
	st.frameIDs[f] = id
	fi := &FrameImage{
		Name:     f.name,
		HasSrc:   f.hasSrc,
		Alive:    f.alive,
		URL:      f.doc.URL,
		MaxSteps: f.interp.MaxSteps,
	}
	st.frames = append(st.frames, f)
	st.frameImg = append(st.frameImg, fi)

	if f.element != nil {
		ref := st.nodeRef(f.element)
		fi.Element = &ref
	}
	var ids map[*dom.Node]int
	fi.Doc, ids = dom.EncodeTree(f.doc.Root())
	for n, i := range ids {
		st.refs[n] = NodeRef{F: id, N: i}
	}
	for name, v := range f.builtins {
		st.owners[v] = builtinOwner{frame: f, name: name}
	}
	st.enc.TagScope(f.interp.Global, fmt.Sprintf("g:%d", id))

	for _, c := range f.children {
		fi.Children = append(fi.Children, st.encodeFrameStructure(c))
	}
	return fi
}

func (st *imageEnc) encodeFrameState(f *Frame, fi *FrameImage) error {
	for _, name := range f.interp.Global.Names() {
		v, _ := f.interp.Global.OwnLookup(name)
		if orig, ok := f.builtins[name]; ok && orig == v {
			continue
		}
		ev, err := st.enc.Encode(v)
		if err != nil {
			return st.imageErr(err)
		}
		fi.Globals = append(fi.Globals, GlobalImage{Name: name, Val: ev})
	}
	for _, rec := range f.listenerLog {
		li := ListenerImage{Node: st.nodeRef(rec.node), Type: rec.typ, Capture: rec.capture, Inline: rec.inline, Src: rec.src}
		if !rec.inline {
			fn, err := st.encodeValue(rec.fn)
			if err != nil {
				return err
			}
			li.Fn = fn
		}
		fi.Listeners = append(fi.Listeners, li)
	}
	if f.focused != nil {
		ref := st.nodeRef(f.focused)
		fi.Focused = &ref
	}
	return nil
}

// encodeValue encodes a possibly-nil script value to a possibly-nil
// encoded value.
func (st *imageEnc) encodeValue(v script.Value) (*script.EncodedValue, error) {
	if v == nil {
		return nil, nil
	}
	ev, err := st.enc.Encode(v)
	if err != nil {
		return nil, st.imageErr(err)
	}
	return &ev, nil
}

func (st *imageEnc) imageErr(err error) error {
	var ue *script.UnsupportedValueError
	if errors.As(err, &ue) {
		return fmt.Errorf("%w: %v", ErrNotImageable, err)
	}
	return err
}

// nodeRef names a node, encoding the whole detached tree holding it on
// first sight (so aliases into one detached tree stay aliases, exactly
// as mapNode clones whole roots).
func (st *imageEnc) nodeRef(n *dom.Node) NodeRef {
	if ref, ok := st.refs[n]; ok {
		return ref
	}
	en, ids := dom.EncodeTree(n.Root())
	d := len(st.img.Detached)
	st.img.Detached = append(st.img.Detached, en)
	for m, i := range ids {
		st.refs[m] = NodeRef{F: -1, D: d, N: i}
	}
	return st.refs[n]
}

// encodeHost is the value encoder's hook: installed builtins are named
// by owner, frame-bound handles by frame and node, pending timers by
// slot. Anything else — a freshly minted method closure — is refused,
// which surfaces as ErrNotImageable.
func (st *imageEnc) encodeHost(v script.Value) (any, bool) {
	if owner, ok := st.owners[v]; ok {
		return hostToken{K: "builtin", F: st.frameIDs[owner.frame], Name: owner.name}, true
	}
	switch x := v.(type) {
	case *ElementHandle:
		id, ok := st.frameIDs[x.frame]
		if !ok {
			return nil, false
		}
		ref := st.nodeRef(x.node)
		return hostToken{K: "elem", F: id, Node: &ref}, true
	case *DocHandle:
		if id, ok := st.frameIDs[x.frame]; ok {
			return hostToken{K: "doc", F: id}, true
		}
		return nil, false
	case *WindowHandle:
		if id, ok := st.frameIDs[x.frame]; ok {
			return hostToken{K: "win", F: id}, true
		}
		return nil, false
	case *LocationHandle:
		if id, ok := st.frameIDs[x.frame]; ok {
			return hostToken{K: "loc", F: id}, true
		}
		return nil, false
	case *TimerHandle:
		slot := -1
		if i, ok := st.asyncIdx[x.rec]; ok {
			slot = i
		}
		return hostToken{K: "timer", Async: slot}, true
	case *EventBinding:
		id, ok := st.frameIDs[x.frame]
		if !ok {
			return nil, false
		}
		tok := hostToken{K: "event", F: id, Ev: &eventToken{State: x.ev.State()}}
		if x.ev.Target != nil {
			ref := st.nodeRef(x.ev.Target)
			tok.Ev.Target = &ref
		}
		if x.ev.CurrentTarget != nil {
			ref := st.nodeRef(x.ev.CurrentTarget)
			tok.Ev.Current = &ref
		}
		return tok, true
	}
	return nil, false
}

func encodeRequest(req *netsim.Request) *RequestImage {
	if req == nil {
		return nil
	}
	ri := &RequestImage{Method: req.Method, URL: req.URL, Body: req.Body}
	if len(req.Header) > 0 {
		ri.Header = make(map[string]string, len(req.Header))
		for k, v := range req.Header {
			ri.Header[k] = v
		}
	}
	if req.Form != nil {
		ri.Form = make(url.Values, len(req.Form))
		for k, vs := range req.Form {
			ri.Form[k] = append([]string(nil), vs...)
		}
	}
	return ri
}

// ---- decoding ----

type imageDec struct {
	img *Image
	nb  *Browser

	frames     []*Frame
	frameNodes [][]*dom.Node
	detached   [][]*dom.Node
	recs       []*asyncRec
	dec        *script.ValueDecoder
}

// DecodeImage rebuilds a browser from its image onto a fresh clock and
// network. The network must already serve the imaged world's
// application state; the clock instant is the caller's — pending work
// is re-armed by its remaining delay.
func DecodeImage(img *Image, clock *vclock.Clock, network *netsim.Network) (*DecodedImage, error) {
	switch img.Mode {
	case UserMode, DeveloperMode:
	default:
		return nil, fmt.Errorf("browser: image has unknown mode %d", int(img.Mode))
	}
	nb := New(clock, network, img.Mode)
	for host, jar := range img.Cookies {
		dup := make(map[string]string, len(jar))
		for k, v := range jar {
			dup[k] = v
		}
		nb.cookies[host] = dup
	}

	st := &imageDec{img: img, nb: nb}

	// Phase 1: structure — tabs, frames, documents, detached trees.
	out := &DecodedImage{browser: nb}
	for i, ti := range img.Tabs {
		if ti == nil || ti.Main == nil {
			return nil, fmt.Errorf("browser: image tab %d has no main frame", i)
		}
		t := &Tab{browser: nb, viewportW: ti.ViewportW}
		t.renderer = newRenderer(t)
		main, err := st.decodeFrameStructure(ti.Main, t, nil)
		if err != nil {
			return nil, err
		}
		t.main = main
		t.console = append([]ConsoleEntry(nil), ti.Console...)
		if ti.Popup != nil {
			p := *ti.Popup
			t.popup = &p
		}
		for _, nav := range ti.Pending {
			t.pendingNavs = append(t.pendingNavs, pendingNav{url: nav.URL, method: nav.Method, body: nav.Body})
		}
		nb.tabs = append(nb.tabs, t)
		out.tabs = append(out.tabs, t)
	}
	for _, en := range img.Detached {
		_, nodes, err := dom.DecodeTree(en)
		if err != nil {
			return nil, err
		}
		st.detached = append(st.detached, nodes)
	}

	// Phase 2: pending async shells.
	for _, ai := range img.Asyncs {
		var f *Frame
		if ai.Frame >= 0 {
			if ai.Frame >= len(st.frames) {
				return nil, fmt.Errorf("browser: async record names frame %d of %d", ai.Frame, len(st.frames))
			}
			f = st.frames[ai.Frame]
		}
		st.recs = append(st.recs, &asyncRec{frame: f, kind: asyncKind(ai.Kind), rawURL: ai.RawURL})
	}

	// Phase 3: state — resolve the value graph, fill globals, replay
	// listener logs, restore focus.
	st.dec = script.NewValueDecoder(img.Heap, img.Scopes, st.decodeHost)
	for i, f := range st.frames {
		st.dec.BindScope(fmt.Sprintf("g:%d", i), f.interp.Global)
	}
	if err := st.dec.Resolve(); err != nil {
		return nil, err
	}
	flat := 0
	for ti_i, ti := range img.Tabs {
		t := out.tabs[ti_i]
		if err := st.decodeFrameStates(ti.Main, &flat); err != nil {
			return nil, err
		}
		if ff := out.frameAt(st, ti.FocusFrame); ff != nil && ff.tab == t {
			t.focusFrame = ff
		} else {
			t.focusFrame = t.main
		}
	}

	// Phase 4: re-arm pending work in registration order.
	for i, ai := range img.Asyncs {
		rec := st.recs[i]
		var err error
		if rec.fn, err = st.decodeValue(ai.Fn); err != nil {
			return nil, err
		}
		if rec.cb, err = st.decodeValue(ai.Cb); err != nil {
			return nil, err
		}
		rec.req = decodeRequest(ai.Req)
		nb.scheduleAsync(rec, time.Duration(ai.DelayNS))
	}

	out.frames = st.frames
	return out, nil
}

func (d *DecodedImage) frameAt(st *imageDec, i int) *Frame {
	if i < 0 || i >= len(st.frames) {
		return nil
	}
	return st.frames[i]
}

func (st *imageDec) decodeFrameStructure(fi *FrameImage, tab *Tab, parent *Frame) (*Frame, error) {
	var element *dom.Node
	if fi.Element != nil {
		n, err := st.nodeFromRef(*fi.Element)
		if err != nil {
			return nil, err
		}
		element = n
	}
	nf := newFrame(tab, parent, element)
	nf.name = fi.Name
	nf.hasSrc = fi.HasSrc
	nf.alive = fi.Alive
	st.frames = append(st.frames, nf)

	root, nodes, err := dom.DecodeTree(fi.Doc)
	if err != nil {
		return nil, err
	}
	if root.Type != dom.DocumentNode {
		return nil, fmt.Errorf("browser: frame document decodes to a %v root", root.Type)
	}
	st.frameNodes = append(st.frameNodes, nodes)
	nf.doc = dom.WrapDocument(root, fi.URL)
	nf.interp = newFrameInterp(nf)
	if fi.MaxSteps != 0 {
		nf.interp.MaxSteps = fi.MaxSteps
	}

	for _, ci := range fi.Children {
		c, err := st.decodeFrameStructure(ci, tab, nf)
		if err != nil {
			return nil, err
		}
		nf.children = append(nf.children, c)
	}
	return nf, nil
}

// decodeFrameStates walks the frame images in the same flattened order
// the structure pass produced, filling script state.
func (st *imageDec) decodeFrameStates(fi *FrameImage, flat *int) error {
	nf := st.frames[*flat]
	*flat++
	for _, g := range fi.Globals {
		v, err := st.dec.Decode(g.Val)
		if err != nil {
			return err
		}
		nf.interp.Global.Define(g.Name, v)
	}
	for _, li := range fi.Listeners {
		n, err := st.nodeFromRef(li.Node)
		if err != nil {
			return err
		}
		if li.Inline {
			nf.addInlineListener(n, li.Type, li.Src)
		} else {
			if li.Fn == nil {
				return fmt.Errorf("browser: script listener image has no function")
			}
			fn, err := st.dec.Decode(*li.Fn)
			if err != nil {
				return err
			}
			nf.addScriptListener(n, li.Type, li.Capture, fn)
		}
	}
	if fi.Focused != nil {
		n, err := st.nodeFromRef(*fi.Focused)
		if err != nil {
			return err
		}
		nf.focused = n
	}
	for _, ci := range fi.Children {
		if err := st.decodeFrameStates(ci, flat); err != nil {
			return err
		}
	}
	return nil
}

func (st *imageDec) decodeValue(ev *script.EncodedValue) (script.Value, error) {
	if ev == nil {
		return nil, nil
	}
	return st.dec.Decode(*ev)
}

func (st *imageDec) nodeFromRef(ref NodeRef) (*dom.Node, error) {
	var nodes []*dom.Node
	switch {
	case ref.F >= 0 && ref.F < len(st.frameNodes):
		nodes = st.frameNodes[ref.F]
	case ref.F == -1 && ref.D >= 0 && ref.D < len(st.detached):
		nodes = st.detached[ref.D]
	default:
		return nil, fmt.Errorf("browser: node reference into unknown tree (frame %d, detached %d)", ref.F, ref.D)
	}
	if ref.N < 0 || ref.N >= len(nodes) {
		return nil, fmt.Errorf("browser: node reference %d outside tree of %d nodes", ref.N, len(nodes))
	}
	return nodes[ref.N], nil
}

func (st *imageDec) frameFromToken(tok hostToken) (*Frame, error) {
	if tok.F < 0 || tok.F >= len(st.frames) {
		return nil, fmt.Errorf("browser: host token names frame %d of %d", tok.F, len(st.frames))
	}
	return st.frames[tok.F], nil
}

// decodeHost rebuilds a host value from its token against the decoded
// world.
func (st *imageDec) decodeHost(raw json.RawMessage) (script.Value, error) {
	var tok hostToken
	if err := json.Unmarshal(raw, &tok); err != nil {
		return nil, fmt.Errorf("browser: bad host token: %w", err)
	}
	switch tok.K {
	case "builtin":
		f, err := st.frameFromToken(tok)
		if err != nil {
			return nil, err
		}
		v, ok := f.builtins[tok.Name]
		if !ok {
			return nil, fmt.Errorf("browser: host token names unknown builtin %q", tok.Name)
		}
		return v, nil
	case "elem":
		f, err := st.frameFromToken(tok)
		if err != nil {
			return nil, err
		}
		if tok.Node == nil {
			return nil, fmt.Errorf("browser: element token has no node")
		}
		n, err := st.nodeFromRef(*tok.Node)
		if err != nil {
			return nil, err
		}
		return f.handleFor(n), nil
	case "doc":
		f, err := st.frameFromToken(tok)
		if err != nil {
			return nil, err
		}
		return &DocHandle{frame: f}, nil
	case "win":
		f, err := st.frameFromToken(tok)
		if err != nil {
			return nil, err
		}
		return &WindowHandle{frame: f}, nil
	case "loc":
		f, err := st.frameFromToken(tok)
		if err != nil {
			return nil, err
		}
		return &LocationHandle{frame: f}, nil
	case "timer":
		var rec *asyncRec
		if tok.Async >= 0 {
			if tok.Async >= len(st.recs) {
				return nil, fmt.Errorf("browser: timer token names slot %d of %d", tok.Async, len(st.recs))
			}
			rec = st.recs[tok.Async]
		}
		return &TimerHandle{browser: st.nb, rec: rec}, nil
	case "event":
		f, err := st.frameFromToken(tok)
		if err != nil {
			return nil, err
		}
		if tok.Ev == nil {
			return nil, fmt.Errorf("browser: event token has no state")
		}
		var target, current *dom.Node
		if tok.Ev.Target != nil {
			if target, err = st.nodeFromRef(*tok.Ev.Target); err != nil {
				return nil, err
			}
		}
		if tok.Ev.Current != nil {
			if current, err = st.nodeFromRef(*tok.Ev.Current); err != nil {
				return nil, err
			}
		}
		return &EventBinding{frame: f, ev: event.FromState(tok.Ev.State, target, current)}, nil
	default:
		return nil, fmt.Errorf("browser: unknown host token kind %q", tok.K)
	}
}

func decodeRequest(ri *RequestImage) *netsim.Request {
	if ri == nil {
		return nil
	}
	req := &netsim.Request{Method: ri.Method, URL: ri.URL, Body: ri.Body}
	req.Header = make(map[string]string, len(ri.Header))
	for k, v := range ri.Header {
		req.Header[k] = v
	}
	if ri.Form != nil {
		req.Form = make(url.Values, len(ri.Form))
		for k, vs := range ri.Form {
			req.Form[k] = append([]string(nil), vs...)
		}
	}
	return req
}
