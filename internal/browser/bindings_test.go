package browser

import (
	"strings"
	"testing"
	"time"
)

// runScript executes src in the tab's main frame and fails on error.
func runScript(t *testing.T, tab *Tab, src string) {
	t.Helper()
	if _, err := tab.MainFrame().RunScript(src); err != nil {
		t.Fatalf("RunScript(%q): %v", src, err)
	}
}

// textOf returns the text of #out.
func textOf(t *testing.T, tab *Tab, id string) string {
	t.Helper()
	n := tab.MainFrame().Doc().GetElementByID(id)
	if n == nil {
		t.Fatalf("no element #%s", id)
	}
	return n.TextContent()
}

func bindEnv(t *testing.T, body string) *testEnv {
	t.Helper()
	env := newEnv(t, UserMode, map[string]string{
		"/": `<html><head><title>Bind</title></head><body>` + body + `</body></html>`,
	})
	env.navigate(t, "http://app.test/")
	return env
}

func TestDocumentProperties(t *testing.T) {
	env := bindEnv(t, `<div id="out"></div>`)
	runScript(t, env.tab, `
		var out = document.getElementById("out");
		out.textContent = document.title + "|" + document.URL;
	`)
	if got := textOf(t, env.tab, "out"); got != "Bind|http://app.test/" {
		t.Errorf("out = %q", got)
	}
}

func TestDocumentCreateAndAppend(t *testing.T) {
	env := bindEnv(t, `<div id="host"></div>`)
	runScript(t, env.tab, `
		var host = document.getElementById("host");
		var child = document.createElement("span");
		child.id = "kid";
		child.appendChild(document.createTextNode("made"));
		host.appendChild(child);
	`)
	if got := textOf(t, env.tab, "kid"); got != "made" {
		t.Errorf("kid = %q", got)
	}
}

func TestElementNavigationProperties(t *testing.T) {
	env := bindEnv(t, `<div id="p" class="box"><b id="c">x</b><i>y</i></div><div id="out"></div>`)
	runScript(t, env.tab, `
		var c = document.getElementById("c");
		var p = c.parentNode;
		document.getElementById("out").textContent =
			p.id + "|" + p.tagName + "|" + p.className + "|" + p.childCount +
			"|" + (p.firstChild == c);
	`)
	if got := textOf(t, env.tab, "out"); got != "p|DIV|box|2|true" {
		t.Errorf("out = %q", got)
	}
}

func TestElementAttributesFromScript(t *testing.T) {
	env := bindEnv(t, `<div id="d" data-x="1"></div><div id="out"></div>`)
	runScript(t, env.tab, `
		var d = document.getElementById("d");
		var had = d.getAttribute("data-x");
		d.setAttribute("data-y", "2");
		d.removeAttribute("data-x");
		var gone = d.getAttribute("data-x");
		document.getElementById("out").textContent =
			had + "|" + d.getAttribute("data-y") + "|" + (gone == null);
	`)
	if got := textOf(t, env.tab, "out"); got != "1|2|true" {
		t.Errorf("out = %q", got)
	}
}

func TestElementRemoveAndRemoveChild(t *testing.T) {
	env := bindEnv(t, `<div id="host"><span id="a">a</span><span id="b">b</span></div>`)
	runScript(t, env.tab, `
		var host = document.getElementById("host");
		host.removeChild(document.getElementById("a"));
		document.getElementById("b").remove();
	`)
	doc := env.tab.MainFrame().Doc()
	if doc.GetElementByID("a") != nil || doc.GetElementByID("b") != nil {
		t.Error("children not removed")
	}
}

func TestInnerHTMLRoundTrip(t *testing.T) {
	env := bindEnv(t, `<div id="d"><b>old</b></div><div id="out"></div>`)
	runScript(t, env.tab, `
		var d = document.getElementById("d");
		var before = d.innerHTML;
		d.innerHTML = "<i id='new'>fresh</i>";
		document.getElementById("out").textContent = before;
	`)
	if got := textOf(t, env.tab, "out"); got != "<b>old</b>" {
		t.Errorf("innerHTML read = %q", got)
	}
	if env.tab.MainFrame().Doc().GetElementByID("new") == nil {
		t.Error("innerHTML write did not parse new content")
	}
}

func TestStyleAndValueProperties(t *testing.T) {
	env := bindEnv(t, `<div id="d" style="display:none"></div><input id="in"><div id="out"></div>`)
	runScript(t, env.tab, `
		var d = document.getElementById("d");
		var had = d.style;
		d.style = "";
		var in = document.getElementById("in");
		in.value = "typed";
		document.getElementById("out").textContent = had + "|" + in.value;
	`)
	if got := textOf(t, env.tab, "out"); got != "display:none|typed" {
		t.Errorf("out = %q", got)
	}
}

func TestWindowProperties(t *testing.T) {
	env := bindEnv(t, `<div id="out"></div>`)
	runScript(t, env.tab, `
		document.getElementById("out").textContent =
			window.document.title + "|" + window.location.href;
	`)
	if got := textOf(t, env.tab, "out"); got != "Bind|http://app.test/" {
		t.Errorf("out = %q", got)
	}
}

func TestWindowLocationAssignmentNavigates(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/":      `<button id="go" onclick="window.location = '/there'">go</button>`,
		"/there": `<html><head><title>There</title></head><body>arrived</body></html>`,
	})
	env.navigate(t, "http://app.test/")
	n := env.tab.MainFrame().Doc().GetElementByID("go")
	x, y := env.tab.Layout().Center(n)
	env.tab.Click(x, y)
	if got := env.tab.Title(); got != "There" {
		t.Errorf("title = %q; location assignment should navigate", got)
	}
}

func TestLocationHrefAssignmentNavigates(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/":  `<button id="go" onclick="window.location.href = '/x'">go</button>`,
		"/x": `<html><head><title>X</title></head><body>x</body></html>`,
	})
	env.navigate(t, "http://app.test/")
	n := env.tab.MainFrame().Doc().GetElementByID("go")
	x, y := env.tab.Layout().Center(n)
	env.tab.Click(x, y)
	if got := env.tab.Title(); got != "X" {
		t.Errorf("title = %q", got)
	}
}

func TestSetTimeoutAndClearTimeout(t *testing.T) {
	env := bindEnv(t, `<div id="out">none</div>`)
	runScript(t, env.tab, `
		var fired = setTimeout(function() {
			document.getElementById("out").textContent = "fired";
		}, 100);
		var cancelled = setTimeout(function() {
			document.getElementById("out").textContent = "cancelled-ran";
		}, 100);
		clearTimeout(cancelled);
	`)
	env.tab.AdvanceTime(200 * time.Millisecond)
	if got := textOf(t, env.tab, "out"); got != "fired" {
		t.Errorf("out = %q (cancelled timer must not run)", got)
	}
}

func TestWindowSetTimeout(t *testing.T) {
	env := bindEnv(t, `<div id="out"></div>`)
	runScript(t, env.tab, `
		window.setTimeout(function() {
			document.getElementById("out").textContent = "w";
		}, 50);
	`)
	env.tab.AdvanceTime(100 * time.Millisecond)
	if got := textOf(t, env.tab, "out"); got != "w" {
		t.Errorf("out = %q", got)
	}
}

func TestHTTPGetErrorPathLogsConsole(t *testing.T) {
	env := bindEnv(t, `<div id="out"></div>`)
	runScript(t, env.tab, `
		httpGet("http://nowhere.test/x", function(body, status) {
			document.getElementById("out").textContent = "status:" + status;
		});
	`)
	env.tab.AdvanceTime(time.Second)
	if got := textOf(t, env.tab, "out"); got != "status:0" {
		t.Errorf("out = %q (unroutable host should deliver status 0)", got)
	}
	if len(env.tab.ConsoleErrors()) == 0 {
		t.Error("fetch failure should log a console error")
	}
}

func TestHTTPGetAbandonedOnNavigation(t *testing.T) {
	pages := map[string]string{
		"/":     `<div id="out"></div><script>httpGet("/slow", function(b, s) { document.getElementById("out").textContent = "late"; });</script>`,
		"/next": `<html><head><title>Next</title></head><body><div id="out">clean</div></body></html>`,
		"/slow": `payload`,
	}
	env := newEnv(t, UserMode, pages)
	env.network.SetLatency(500 * time.Millisecond)
	env.navigate(t, "http://app.test/")
	env.navigate(t, "http://app.test/next")
	env.tab.AdvanceTime(time.Second) // the stale callback fires into a dead frame
	if got := textOf(t, env.tab, "out"); got != "clean" {
		t.Errorf("out = %q; stale AJAX callback mutated the new page", got)
	}
}

func TestAlertOpensPopup(t *testing.T) {
	env := bindEnv(t, `<div></div>`)
	runScript(t, env.tab, `alert("warning!")`)
	text, open := env.tab.PopupText()
	if !open || text != "warning!" {
		t.Errorf("popup = %q, %v", text, open)
	}
	env.tab.DismissPopup()
	if _, open := env.tab.PopupText(); open {
		t.Error("popup survived dismissal")
	}
}

func TestConsoleErrorBinding(t *testing.T) {
	env := bindEnv(t, `<div></div>`)
	runScript(t, env.tab, `console.error("bad", 42)`)
	errs := env.tab.ConsoleErrors()
	if len(errs) != 1 || errs[0].Message != "bad 42" {
		t.Errorf("console errors = %+v", errs)
	}
}

func TestEventBindingProperties(t *testing.T) {
	env := bindEnv(t, `<div id="outer"><button id="b">hit</button></div><div id="out"></div>`)
	runScript(t, env.tab, `
		document.getElementById("outer").addEventListener("click", function(e) {
			document.getElementById("out").textContent =
				e.type + "|" + e.target.id + "|" + e.currentTarget.id +
				"|" + e.isTrusted + "|" + e.clientX + "," + e.clientY;
		});
	`)
	n := env.tab.MainFrame().Doc().GetElementByID("b")
	x, y := env.tab.Layout().Center(n)
	env.tab.Click(x, y)
	got := textOf(t, env.tab, "out")
	if !strings.HasPrefix(got, "click|b|outer|true|") {
		t.Errorf("event binding = %q", got)
	}
}

func TestEventModifierProperties(t *testing.T) {
	env := bindEnv(t, `<input id="in"><div id="out"></div>`)
	runScript(t, env.tab, `
		document.getElementById("in").addEventListener("keydown", function(e) {
			document.getElementById("out").textContent =
				e.key + "|" + e.keyCode + "|" + e.shiftKey + "|" + e.ctrlKey + "|" + e.altKey;
		});
	`)
	n := env.tab.MainFrame().Doc().GetElementByID("in")
	x, y := env.tab.Layout().Center(n)
	env.tab.Click(x, y)
	env.tab.PressKey("A", 65, KeyMods{Shift: true})
	if got := textOf(t, env.tab, "out"); got != "A|65|true|false|false" {
		t.Errorf("out = %q", got)
	}
}

func TestEventKeyCodeWriteRespectsMode(t *testing.T) {
	page := `<input id="in"><div id="out"></div><script>
		document.getElementById("in").addEventListener("keydown", function(e) {
			e.keyCode = 99;
			document.getElementById("out").textContent = "" + e.keyCode;
		});
	</script>`

	// Trusted (hardware) events accept writes in any mode.
	env := newEnv(t, UserMode, map[string]string{"/": page})
	env.navigate(t, "http://app.test/")
	n := env.tab.MainFrame().Doc().GetElementByID("in")
	x, y := env.tab.Layout().Center(n)
	env.tab.Click(x, y)
	env.tab.PressKey("a", 65, KeyMods{})
	if got := textOf(t, env.tab, "out"); got != "99" {
		t.Errorf("trusted event keyCode write: out = %q", got)
	}
}

func TestBrowserAccessors(t *testing.T) {
	env := bindEnv(t, `<div></div>`)
	b := env.tab.Browser()
	if b.Clock() != env.clock || b.Network() != env.network {
		t.Error("browser accessors disagree with construction")
	}
	if len(b.Tabs()) != 1 || b.Tabs()[0] != env.tab {
		t.Errorf("tabs = %v", b.Tabs())
	}
	if env.tab.EventHandler().Recorder() != nil {
		t.Error("fresh tab has a recorder")
	}
	f := env.tab.MainFrame()
	if f.Tab() != env.tab || f.Parent() != nil || f.Element() != nil || !f.Alive() || f.Interp() == nil {
		t.Error("frame accessors inconsistent for the main frame")
	}
}

func TestFocusMethodMovesFocus(t *testing.T) {
	env := bindEnv(t, `<input id="a"><input id="b">`)
	runScript(t, env.tab, `document.getElementById("b").focus()`)
	if got := env.tab.MainFrame().Focused(); got == nil || got.ID() != "b" {
		t.Errorf("focused = %v", got)
	}
	env.tab.TypeText("q")
	if got := env.tab.MainFrame().Doc().GetElementByID("b").Value; got != "q" {
		t.Errorf("typed text went to %q", got)
	}
}
