package browser

import (
	"fmt"
	"net/url"
	"strings"
	"time"

	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/layout"
	"github.com/dslab-epfl/warr/internal/netsim"
)

// ConsoleLevel classifies console entries.
type ConsoleLevel int

// Console levels.
const (
	ConsoleLog ConsoleLevel = iota + 1
	ConsoleError
)

func (l ConsoleLevel) String() string {
	switch l {
	case ConsoleLog:
		return "log"
	case ConsoleError:
		return "error"
	default:
		return "unknown"
	}
}

// ConsoleEntry is one line of browser console output.
type ConsoleEntry struct {
	Level   ConsoleLevel
	Message string
	Time    time.Time
}

// FrameObserver is notified of frame lifecycle changes. The webdriver's
// ChromeDriver-style master uses these notifications to manage its
// per-frame clients; the deliberately scrambled ordering during
// navigation reproduces the unload bug the paper fixes (§IV-C).
type FrameObserver interface {
	FrameLoaded(f *Frame)
	FrameUnloaded(f *Frame)
}

// Popup is a browser-level dialog (window.alert). Interaction with it is
// NOT routed through the engine's EventHandler — the recorder limitation
// the paper documents in §IV-D.
type Popup struct {
	Text string
}

// maxRedirects bounds redirect chains during navigation.
const maxRedirects = 5

// Tab is one browser tab ("Tab contents" in Fig. 2).
type Tab struct {
	browser  *Browser
	renderer *Renderer
	main     *Frame

	console   []ConsoleEntry
	observers []FrameObserver
	popup     *Popup

	viewportW int

	// pendingNavs holds navigations requested during event dispatch
	// (link clicks, form submits, location.href writes); they run when
	// the tab pumps its event loop.
	pendingNavs []pendingNav

	// focused tracks which frame holds keyboard focus.
	focusFrame *Frame
}

type pendingNav struct {
	url    string
	method string
	body   string
}

func newTab(b *Browser) *Tab {
	t := &Tab{browser: b, viewportW: layout.DefaultViewportWidth}
	t.renderer = newRenderer(t)
	t.main = newFrame(t, nil, nil)
	t.main.doc = dom.NewDocument("about:blank")
	t.main.interp = newFrameInterp(t.main)
	t.focusFrame = t.main
	return t
}

// Browser returns the owning browser.
func (t *Tab) Browser() *Browser { return t.browser }

// Renderer returns the tab's renderer (the IPC layer of Fig. 2/3).
func (t *Tab) Renderer() *Renderer { return t.renderer }

// EventHandler returns the engine-level event handler, where recorder
// hooks live.
func (t *Tab) EventHandler() *EventHandler { return t.renderer.EventHandler() }

// MainFrame returns the tab's top-level frame.
func (t *Tab) MainFrame() *Frame { return t.main }

// URL returns the main document's URL.
func (t *Tab) URL() string { return t.main.doc.URL }

// Title returns the main document's title.
func (t *Tab) Title() string { return t.main.doc.Title() }

// SetViewportWidth changes the layout viewport.
func (t *Tab) SetViewportWidth(w int) {
	if w > 0 {
		t.viewportW = w
	}
}

// AddFrameObserver attaches a lifecycle observer.
func (t *Tab) AddFrameObserver(o FrameObserver) {
	t.observers = append(t.observers, o)
}

// Console returns a copy of the console log.
func (t *Tab) Console() []ConsoleEntry {
	out := make([]ConsoleEntry, len(t.console))
	copy(out, t.console)
	return out
}

// ConsoleErrors returns only the error-level console entries.
func (t *Tab) ConsoleErrors() []ConsoleEntry {
	var out []ConsoleEntry
	for _, e := range t.console {
		if e.Level == ConsoleError {
			out = append(out, e)
		}
	}
	return out
}

// ClearConsole drops accumulated console output.
func (t *Tab) ClearConsole() { t.console = nil }

func (t *Tab) logConsole(level ConsoleLevel, msg string) {
	t.console = append(t.console, ConsoleEntry{
		Level:   level,
		Message: msg,
		Time:    t.browser.clock.Now(),
	})
}

// ---- navigation ----

// Navigate loads url into the tab's main frame, replacing the current
// page. Scripts run during load; asynchronous work (timers, AJAX)
// proceeds as the virtual clock advances.
func (t *Tab) Navigate(rawURL string) error {
	return t.navigate(rawURL, "GET", "")
}

func (t *Tab) navigate(rawURL, method, body string) error {
	resp, finalURL, err := t.fetchFollowingRedirects(rawURL, method, body)
	if err != nil {
		return fmt.Errorf("browser: navigating to %q: %w", rawURL, err)
	}

	// Tear down the old frame tree. The unload notifications are
	// interleaved after the new frame's load notification below,
	// reproducing Chrome's lack of load/unload ordering guarantees
	// (paper §IV-C: "Chrome does not ensure this order").
	old := t.main
	old.kill()

	t.main = newFrame(t, nil, nil)
	t.focusFrame = t.main
	t.buildFrame(t.main, resp.Body, finalURL, 0)

	for _, f := range old.Descendants() {
		for _, o := range t.observers {
			o.FrameUnloaded(f)
		}
	}
	t.pump()
	return nil
}

func (t *Tab) fetchFollowingRedirects(rawURL, method, body string) (*netsim.Response, string, error) {
	cur := rawURL
	for i := 0; i <= maxRedirects; i++ {
		req := netsim.NewRequest(method, cur)
		req.Body = body
		if c := t.browser.cookieHeader(req.Host()); c != "" {
			req.SetHeader("Cookie", c)
		}
		resp, err := t.browser.network.Fetch(req)
		if err != nil {
			return nil, "", err
		}
		if sc := resp.Header["Set-Cookie"]; sc != "" {
			t.browser.storeCookie(req.Host(), sc)
		}
		if resp.Status == 302 {
			loc := resp.Header["Location"]
			if loc == "" {
				return nil, "", fmt.Errorf("redirect without Location from %q", cur)
			}
			cur = resolveAgainst(cur, loc)
			method, body = "GET", ""
			continue
		}
		return resp, cur, nil
	}
	return nil, "", fmt.Errorf("too many redirects starting at %q", rawURL)
}

// resolveAgainst resolves a possibly-relative redirect Location against
// the URL it was served from.
func resolveAgainst(base, ref string) string {
	b, err := url.Parse(base)
	if err != nil {
		return ref
	}
	r, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return b.ResolveReference(r).String()
}

// maxFrameDepth bounds iframe nesting.
const maxFrameDepth = 5

// buildFrame parses html into the frame (through the page-template
// cache), runs its scripts, and loads child iframes.
func (t *Tab) buildFrame(f *Frame, html, url string, depth int) {
	f.doc = parsePage(html, url)
	f.interp = newFrameInterp(f)

	for _, o := range t.observers {
		o.FrameLoaded(f)
	}

	// Execute scripts in document order.
	for _, s := range f.doc.Root().ElementsByTag("script") {
		src := s.TextContent()
		if strings.TrimSpace(src) == "" {
			continue
		}
		_, _ = f.RunScript(src) // errors already logged to the console
	}

	// Wire inline on* handlers (onclick, oninput, ...).
	wireInlineHandlers(f)

	// Load iframes.
	if depth >= maxFrameDepth {
		return
	}
	for _, el := range f.doc.Root().ElementsByTag("iframe") {
		child := newFrame(t, f, el)
		child.name = el.AttrOr("name", "")
		f.children = append(f.children, child)
		if src := el.AttrOr("src", ""); src != "" {
			child.hasSrc = true
			abs := f.resolveURL(src)
			resp, finalURL, err := t.fetchFollowingRedirects(abs, "GET", "")
			if err != nil {
				t.logConsole(ConsoleError, fmt.Sprintf("iframe load %q: %v", abs, err))
				child.doc = dom.NewDocument(abs)
				child.interp = newFrameInterp(child)
				continue
			}
			t.buildFrame(child, resp.Body, finalURL, depth+1)
			continue
		}
		// A src-less iframe: its inline children become the child
		// document's body content. Chrome loads no ChromeDriver client
		// for these frames (§IV-C).
		child.hasSrc = false
		child.doc = dom.NewDocument(url + "#srcless")
		child.interp = newFrameInterp(child)
		for _, c := range el.Children() {
			child.doc.Body().AppendChild(c)
		}
		for _, o := range t.observers {
			o.FrameLoaded(child)
		}
		for _, s := range child.doc.Root().ElementsByTag("script") {
			if strings.TrimSpace(s.TextContent()) != "" {
				_, _ = child.RunScript(s.TextContent())
			}
		}
		wireInlineHandlers(child)
	}
}

// scheduleNavigate queues a navigation to run at the next pump, so that
// navigation triggered inside event dispatch does not tear down the frame
// mid-dispatch.
func (t *Tab) scheduleNavigate(url string) {
	t.pendingNavs = append(t.pendingNavs, pendingNav{url: url, method: "GET"})
}

func (t *Tab) scheduleNavigatePost(url, body string) {
	t.pendingNavs = append(t.pendingNavs, pendingNav{url: url, method: "POST", body: body})
}

// Pump runs one turn of the browser event loop: deferred navigations and
// due timers. The engine pumps automatically after hardware input; tools
// that dispatch synthetic events directly (the webdriver) must pump
// explicitly so that navigations their event handlers schedule actually
// run.
func (t *Tab) Pump() { t.pump() }

// pump runs deferred navigations and due zero-delay timers — one turn of
// the browser event loop.
func (t *Tab) pump() {
	for len(t.pendingNavs) > 0 {
		nav := t.pendingNavs[0]
		t.pendingNavs = t.pendingNavs[1:]
		if err := t.navigate(nav.url, nav.method, nav.body); err != nil {
			t.logConsole(ConsoleError, err.Error())
		}
	}
	t.browser.clock.RunDue()
}

// ---- layout & hit testing ----

// Layout returns the main frame's current layout (cached between DOM
// mutations; see Frame.Layout).
func (t *Tab) Layout() *layout.Layout {
	return t.main.Layout(t.viewportW)
}

// HitTest maps window coordinates to the frame and deepest element under
// them, descending through iframes.
func (t *Tab) HitTest(x, y int) (*Frame, *dom.Node) {
	return t.hitTestFrame(t.main, x, y, t.viewportW)
}

func (t *Tab) hitTestFrame(f *Frame, x, y, width int) (*Frame, *dom.Node) {
	l := f.Layout(width)
	n := l.HitTest(x, y)
	if n == nil {
		return f, nil
	}
	if n.Tag == "iframe" {
		if child := t.childFrameOf(f, n); child != nil {
			box, ok := l.BoxOf(n)
			if ok {
				cf, cn := t.hitTestFrame(child, x-box.X, y-box.Y, box.W)
				if cn != nil {
					return cf, cn
				}
			}
			return child, childBodyOf(child)
		}
	}
	return f, n
}

func childBodyOf(f *Frame) *dom.Node {
	if f.doc == nil {
		return nil
	}
	return f.doc.Body()
}

func (t *Tab) childFrameOf(f *Frame, iframeEl *dom.Node) *Frame {
	for _, c := range f.children {
		if c.element == iframeEl {
			return c
		}
	}
	return nil
}

// AbsoluteCenter returns window coordinates of the center of n, which
// lives in frame f, accounting for iframe offsets. ok is false when the
// element has no box.
func (t *Tab) AbsoluteCenter(f *Frame, n *dom.Node) (x, y int, ok bool) {
	// Offset chain from the main frame down to f.
	offX, offY := 0, 0
	width := t.viewportW
	chain := frameChain(f)
	for _, step := range chain {
		if step.element == nil {
			continue
		}
		parentLayout := step.parent.Layout(width)
		box, found := parentLayout.BoxOf(step.element)
		if !found {
			return 0, 0, false
		}
		offX += box.X
		offY += box.Y
		width = box.W
	}
	l := f.Layout(width)
	box, found := l.BoxOf(n)
	if !found {
		return 0, 0, false
	}
	cx, cy := box.Center()
	return offX + cx, offY + cy, true
}

// frameChain lists ancestors from the main frame down to f (inclusive),
// filled back to front in one allocation — this sits on the replayer's
// per-command element-targeting path.
func frameChain(f *Frame) []*Frame {
	depth := 0
	for cur := f; cur != nil; cur = cur.parent {
		depth++
	}
	chain := make([]*Frame, depth)
	for cur := f; cur != nil; cur = cur.parent {
		depth--
		chain[depth] = cur
	}
	return chain
}

// ---- focus ----

func (t *Tab) focusedFrame() *Frame {
	if t.focusFrame != nil && t.focusFrame.alive {
		return t.focusFrame
	}
	return t.main
}

// setFocus moves focus to the nearest focusable ancestor of target.
func (t *Tab) setFocus(f *Frame, target *dom.Node) {
	focusable := target
	for cur := target; cur != nil; cur = cur.Parent() {
		if cur.Type != dom.ElementNode {
			continue
		}
		if cur.IsEditable() || cur.Tag == "button" || cur.Tag == "a" || cur.Tag == "select" {
			focusable = cur
			break
		}
	}
	t.focusFrame = f
	if f.focused == focusable {
		return
	}
	prev := f.focused
	f.focused = focusable
	if prev != nil {
		dispatchFocusEvent(prev, "blur")
	}
	if focusable != nil {
		dispatchFocusEvent(focusable, "focus")
	}
}

// ---- user input API (hardware level) ----

// Click simulates a user mouse click at window coordinates. If a popup is
// open, the click lands on the popup and never reaches the engine — the
// recorder cannot see it (paper §IV-D).
func (t *Tab) Click(x, y int) {
	if t.popup != nil {
		t.popup = nil // any click dismisses the popup
		return
	}
	t.renderer.OnMessageReceived(InputMessage{Kind: MousePressInput, X: x, Y: y, ClickCount: 1})
}

// DoubleClick simulates a double click at window coordinates.
func (t *Tab) DoubleClick(x, y int) {
	if t.popup != nil {
		t.popup = nil
		return
	}
	t.renderer.OnMessageReceived(InputMessage{Kind: MousePressInput, X: x, Y: y, ClickCount: 2})
}

// PressKey simulates one hardware keystroke.
func (t *Tab) PressKey(key string, code int, mods KeyMods) {
	if t.popup != nil {
		return
	}
	t.renderer.OnMessageReceived(InputMessage{Kind: KeyInput, Key: key, Code: code, Mods: mods})
}

// TypeText simulates typing s character by character. As in Chrome,
// typing a capital letter or shifted symbol first registers a Shift
// keystroke and then the printable keystroke with the shift modifier set
// (the paper's §IV-B Shift-combining discussion).
func (t *Tab) TypeText(s string) {
	for _, ch := range s {
		code, needsShift := KeyCodeFor(ch)
		if needsShift {
			t.PressKey(KeyShift, CodeShift, KeyMods{})
			t.PressKey(string(ch), code, KeyMods{Shift: true})
			continue
		}
		t.PressKey(string(ch), code, KeyMods{})
	}
}

// Drag simulates dragging the element under (x, y) by (dx, dy).
func (t *Tab) Drag(x, y, dx, dy int) {
	if t.popup != nil {
		return
	}
	t.renderer.OnMessageReceived(InputMessage{Kind: DragInput, X: x, Y: y, DX: dx, DY: dy})
}

// ---- popups ----

// ShowPopup opens a browser-level dialog (used by window.alert).
func (t *Tab) ShowPopup(text string) { t.popup = &Popup{Text: text} }

// PopupText returns the open popup's text and whether one is open.
func (t *Tab) PopupText() (string, bool) {
	if t.popup == nil {
		return "", false
	}
	return t.popup.Text, true
}

// DismissPopup closes the popup without going through the engine.
func (t *Tab) DismissPopup() { t.popup = nil }

// AdvanceTime advances the browser's virtual clock (timers and AJAX
// deliveries fire as their deadlines pass).
func (t *Tab) AdvanceTime(d time.Duration) {
	t.browser.clock.Advance(d)
}
