package browser

import (
	"strings"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/event"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// testEnv wires a clock, network, and browser around a set of pages.
type testEnv struct {
	clock   *vclock.Clock
	network *netsim.Network
	browser *Browser
	tab     *Tab
}

func newEnv(t *testing.T, mode Mode, pages map[string]string) *testEnv {
	t.Helper()
	clock := vclock.New()
	network := netsim.New(clock)
	network.Register("app.test", netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		if body, ok := pages[req.Path()]; ok {
			return netsim.OK(body)
		}
		return netsim.NotFound()
	}))
	b := New(clock, network, mode)
	return &testEnv{clock: clock, network: network, browser: b, tab: b.NewTab()}
}

func (e *testEnv) navigate(t *testing.T, url string) {
	t.Helper()
	if err := e.tab.Navigate(url); err != nil {
		t.Fatalf("Navigate(%q): %v", url, err)
	}
}

func TestNavigateLoadsDocument(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<html><head><title>Home</title></head><body><div id="x">hi</div></body></html>`,
	})
	env.navigate(t, "http://app.test/")
	if got := env.tab.Title(); got != "Home" {
		t.Errorf("Title = %q", got)
	}
	if env.tab.MainFrame().Doc().GetElementByID("x") == nil {
		t.Error("document content missing")
	}
	if got := env.tab.URL(); got != "http://app.test/" {
		t.Errorf("URL = %q", got)
	}
}

func TestScriptsRunAtLoad(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<div id="out">before</div><script>
			document.getElementById("out").textContent = "after";
		</script>`,
	})
	env.navigate(t, "http://app.test/")
	if got := env.tab.MainFrame().Doc().GetElementByID("out").TextContent(); got != "after" {
		t.Errorf("script did not run: %q", got)
	}
}

func TestScriptErrorGoesToConsole(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<div></div><script>var broken; broken.use();</script>`,
	})
	env.navigate(t, "http://app.test/")
	errs := env.tab.ConsoleErrors()
	if len(errs) != 1 || !strings.Contains(errs[0].Message, "TypeError") {
		t.Fatalf("console errors = %+v", errs)
	}
}

func TestClickRunsListener(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<button id="b">Go</button><div id="out"></div><script>
			document.getElementById("b").addEventListener("click", function(e) {
				document.getElementById("out").textContent = "clicked:" + e.type;
			});
		</script>`,
	})
	env.navigate(t, "http://app.test/")
	btn := env.tab.MainFrame().Doc().GetElementByID("b")
	x, y := env.tab.Layout().Center(btn)
	env.tab.Click(x, y)
	if got := env.tab.MainFrame().Doc().GetElementByID("out").TextContent(); got != "clicked:click" {
		t.Errorf("out = %q", got)
	}
}

func TestInlineOnclick(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<button id="b" onclick="document.getElementById('out').textContent = 'inline'">Go</button><div id="out"></div>`,
	})
	env.navigate(t, "http://app.test/")
	btn := env.tab.MainFrame().Doc().GetElementByID("b")
	x, y := env.tab.Layout().Center(btn)
	env.tab.Click(x, y)
	if got := env.tab.MainFrame().Doc().GetElementByID("out").TextContent(); got != "inline" {
		t.Errorf("out = %q", got)
	}
}

func TestTypeIntoInput(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<form action="/s"><input type="text" id="q" name="q"></form>`,
	})
	env.navigate(t, "http://app.test/")
	in := env.tab.MainFrame().Doc().GetElementByID("q")
	x, y := env.tab.Layout().Center(in)
	env.tab.Click(x, y)
	env.tab.TypeText("hello")
	if in.Value != "hello" {
		t.Errorf("input value = %q", in.Value)
	}
}

func TestTypeIntoContentEditable(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<div id="ed" contenteditable="true"></div>`,
	})
	env.navigate(t, "http://app.test/")
	ed := env.tab.MainFrame().Doc().GetElementByID("ed")
	x, y := env.tab.Layout().Center(ed)
	env.tab.Click(x, y)
	env.tab.TypeText("Hello world!")
	if got := ed.TextContent(); got != "Hello world!" {
		t.Errorf("contenteditable text = %q", got)
	}
}

func TestShiftProducesTwoKeystrokes(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<div id="ed" contenteditable="true"></div><script>
			var codes = [];
			document.getElementById("ed").addEventListener("keydown", function(e) {
				codes.push(e.keyCode);
				document.getElementById("ed").setAttribute("data-codes", codes.join(","));
			});
		</script>`,
	})
	env.navigate(t, "http://app.test/")
	ed := env.tab.MainFrame().Doc().GetElementByID("ed")
	x, y := env.tab.Layout().Center(ed)
	env.tab.Click(x, y)
	env.tab.TypeText("H")
	got, _ := ed.Attr("data-codes")
	// Chrome registers Shift (16) and then the printable key (72).
	if got != "16,72" {
		t.Errorf("keydown codes = %q, want \"16,72\"", got)
	}
	if ed.TextContent() != "H" {
		t.Errorf("text = %q", ed.TextContent())
	}
}

func TestBackspaceDeletes(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<input type="text" id="q">`,
	})
	env.navigate(t, "http://app.test/")
	in := env.tab.MainFrame().Doc().GetElementByID("q")
	x, y := env.tab.Layout().Center(in)
	env.tab.Click(x, y)
	env.tab.TypeText("ab")
	env.tab.PressKey(KeyBackspace, CodeBackspace, KeyMods{})
	if in.Value != "a" {
		t.Errorf("value = %q, want a", in.Value)
	}
}

func TestLinkNavigation(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/":     `<a id="go" href="/next">next</a>`,
		"/next": `<html><head><title>Next</title></head><body>arrived</body></html>`,
	})
	env.navigate(t, "http://app.test/")
	a := env.tab.MainFrame().Doc().GetElementByID("go")
	x, y := env.tab.Layout().Center(a)
	env.tab.Click(x, y)
	if got := env.tab.Title(); got != "Next" {
		t.Errorf("Title = %q, want Next", got)
	}
	if got := env.tab.URL(); got != "http://app.test/next" {
		t.Errorf("URL = %q", got)
	}
}

func TestFormSubmitViaButton(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/":       `<form action="/search"><input type="text" name="q" id="q"><input type="submit" id="go" value="Search"></form>`,
		"/search": `<html><head><title>Results</title></head><body>ok</body></html>`,
	})
	env.navigate(t, "http://app.test/")
	doc := env.tab.MainFrame().Doc()
	q := doc.GetElementByID("q")
	x, y := env.tab.Layout().Center(q)
	env.tab.Click(x, y)
	env.tab.TypeText("warr")
	go_, _ := doc.GetElementByID("go"), 0
	x, y = env.tab.Layout().Center(go_)
	env.tab.Click(x, y)
	if got := env.tab.URL(); got != "http://app.test/search?q=warr" {
		t.Errorf("URL = %q", got)
	}
}

func TestFormSubmitViaEnter(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/":       `<form action="/search"><input type="text" name="q" id="q"></form>`,
		"/search": `<body>ok</body>`,
	})
	env.navigate(t, "http://app.test/")
	in := env.tab.MainFrame().Doc().GetElementByID("q")
	x, y := env.tab.Layout().Center(in)
	env.tab.Click(x, y)
	env.tab.TypeText("go")
	env.tab.PressKey(KeyEnter, CodeEnter, KeyMods{})
	if got := env.tab.URL(); got != "http://app.test/search?q=go" {
		t.Errorf("URL = %q", got)
	}
}

func TestSetTimeoutFiresOnClockAdvance(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<div id="out">waiting</div><script>
			setTimeout(function() {
				document.getElementById("out").textContent = "done";
			}, 1000);
		</script>`,
	})
	env.navigate(t, "http://app.test/")
	out := env.tab.MainFrame().Doc().GetElementByID("out")
	if out.TextContent() != "waiting" {
		t.Fatal("timer fired prematurely")
	}
	env.tab.AdvanceTime(999 * time.Millisecond)
	if out.TextContent() != "waiting" {
		t.Fatal("timer fired early")
	}
	env.tab.AdvanceTime(time.Millisecond)
	if got := out.TextContent(); got != "done" {
		t.Errorf("out = %q", got)
	}
}

func TestTimersOfUnloadedPageDoNotRun(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/":     `<script>setTimeout(function() { console.log("ghost"); }, 1000);</script>`,
		"/next": `<body>next</body>`,
	})
	env.navigate(t, "http://app.test/")
	env.navigate(t, "http://app.test/next")
	env.tab.AdvanceTime(2 * time.Second)
	for _, e := range env.tab.Console() {
		if strings.Contains(e.Message, "ghost") {
			t.Fatal("unloaded frame's timer ran")
		}
	}
}

func TestHTTPGetAJAX(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<div id="out"></div><script>
			httpGet("/data", function(body, status) {
				document.getElementById("out").textContent = body + ":" + status;
			});
		</script>`,
		"/data": `payload`,
	})
	env.network.SetLatency(500 * time.Millisecond)
	env.navigate(t, "http://app.test/")
	out := env.tab.MainFrame().Doc().GetElementByID("out")
	if out.TextContent() != "" {
		t.Fatal("AJAX delivered synchronously")
	}
	env.tab.AdvanceTime(time.Second)
	if got := out.TextContent(); got != "payload:200" {
		t.Errorf("out = %q", got)
	}
}

func TestConsoleLogBinding(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<script>console.log("a", 1, true);</script>`,
	})
	env.navigate(t, "http://app.test/")
	logs := env.tab.Console()
	if len(logs) != 1 || logs[0].Message != "a 1 true" || logs[0].Level != ConsoleLog {
		t.Fatalf("console = %+v", logs)
	}
}

func TestAlertOpensPopupAndBlocksEngine(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<button id="b" onclick="alert('warning!')">Go</button><div id="out"></div>`,
	})
	env.navigate(t, "http://app.test/")
	doc := env.tab.MainFrame().Doc()
	btn := doc.GetElementByID("b")
	x, y := env.tab.Layout().Center(btn)
	env.tab.Click(x, y)
	if text, open := env.tab.PopupText(); !open || text != "warning!" {
		t.Fatalf("popup = %q,%v", text, open)
	}
	// A click while the popup is open dismisses it without reaching the
	// engine (the §IV-D recorder limitation).
	var sawEngineEvent bool
	env.tab.EventHandler().SetRecorder(recorderFunc(func() { sawEngineEvent = true }))
	env.tab.Click(x, y)
	if _, open := env.tab.PopupText(); open {
		t.Fatal("popup not dismissed")
	}
	if sawEngineEvent {
		t.Fatal("popup click leaked into the engine")
	}
}

// recorderFunc adapts a func to RecorderHook for popup testing.
type recorderFunc func()

func (f recorderFunc) OnMousePress(*Frame, *dom.Node, int, int, int) { f() }
func (f recorderFunc) OnKey(*Frame, *dom.Node, string, int, KeyMods) { f() }
func (f recorderFunc) OnDrag(*Frame, *dom.Node, int, int)            { f() }

func TestIframeWithSrcLoads(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/":      `<div>parent</div><iframe src="/inner" name="child"></iframe>`,
		"/inner": `<div id="deep">inner content</div>`,
	})
	env.navigate(t, "http://app.test/")
	main := env.tab.MainFrame()
	if len(main.Children()) != 1 {
		t.Fatalf("child frames = %d", len(main.Children()))
	}
	child := main.Children()[0]
	if !child.HasSrc() || child.Name() != "child" {
		t.Errorf("child frame meta: hasSrc=%v name=%q", child.HasSrc(), child.Name())
	}
	if child.Doc().GetElementByID("deep") == nil {
		t.Error("iframe content missing")
	}
	if main.FrameByName("child") != child {
		t.Error("FrameByName failed")
	}
}

func TestSrclessIframeContent(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<iframe id="f"><div id="compose" contenteditable="true"></div></iframe>`,
	})
	env.navigate(t, "http://app.test/")
	child := env.tab.MainFrame().Children()[0]
	if child.HasSrc() {
		t.Error("src-less frame marked hasSrc")
	}
	if child.Doc().GetElementByID("compose") == nil {
		t.Error("inline iframe content not adopted")
	}
}

func TestTypingInsideIframe(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/":      `<div>top</div><iframe src="/inner" name="body"></iframe>`,
		"/inner": `<div id="ed" contenteditable="true"></div>`,
	})
	env.navigate(t, "http://app.test/")
	child := env.tab.MainFrame().Children()[0]
	ed := child.Doc().GetElementByID("ed")
	x, y, ok := env.tab.AbsoluteCenter(child, ed)
	if !ok {
		t.Fatal("no absolute center for iframe element")
	}
	env.tab.Click(x, y)
	env.tab.TypeText("hi")
	if got := ed.TextContent(); got != "hi" {
		t.Errorf("iframe text = %q", got)
	}
}

func TestHitTestDescendsIntoIframe(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/":      `<iframe src="/inner"></iframe>`,
		"/inner": `<button id="deepbtn">Deep</button>`,
	})
	env.navigate(t, "http://app.test/")
	child := env.tab.MainFrame().Children()[0]
	btn := child.Doc().GetElementByID("deepbtn")
	x, y, _ := env.tab.AbsoluteCenter(child, btn)
	frame, target := env.tab.HitTest(x, y)
	if frame != child || target != btn {
		t.Fatalf("HitTest = (%v, %v), want child frame button", frame, target)
	}
}

func TestFrameObserverScrambledOrdering(t *testing.T) {
	// Navigation must emit the NEW frame's load before the OLD frames'
	// unloads — the ordering Chrome does not guarantee and that broke
	// ChromeDriver's active-client selection (paper §IV-C).
	env := newEnv(t, UserMode, map[string]string{
		"/a": `<body>a</body>`,
		"/b": `<body>b</body>`,
	})
	var events []string
	env.tab.AddFrameObserver(observerFunc{
		loaded:   func(f *Frame) { events = append(events, "load:"+f.Doc().URL) },
		unloaded: func(f *Frame) { events = append(events, "unload:"+f.Doc().URL) },
	})
	env.navigate(t, "http://app.test/a")
	env.navigate(t, "http://app.test/b")
	var loadB, unloadA int = -1, -1
	for i, e := range events {
		if e == "load:http://app.test/b" {
			loadB = i
		}
		if e == "unload:http://app.test/a" {
			unloadA = i
		}
	}
	if loadB == -1 || unloadA == -1 {
		t.Fatalf("events = %v", events)
	}
	if loadB > unloadA {
		t.Fatalf("expected load-before-unload scrambling, events = %v", events)
	}
}

type observerFunc struct {
	loaded   func(*Frame)
	unloaded func(*Frame)
}

func (o observerFunc) FrameLoaded(f *Frame)   { o.loaded(f) }
func (o observerFunc) FrameUnloaded(f *Frame) { o.unloaded(f) }

func TestLocationHrefNavigation(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/":     `<button id="go" onclick="window.location.href = '/dest'">go</button>`,
		"/dest": `<html><head><title>Dest</title></head><body></body></html>`,
	})
	env.navigate(t, "http://app.test/")
	btn := env.tab.MainFrame().Doc().GetElementByID("go")
	x, y := env.tab.Layout().Center(btn)
	env.tab.Click(x, y)
	if env.tab.Title() != "Dest" {
		t.Errorf("Title = %q", env.tab.Title())
	}
}

func TestRedirectFollowed(t *testing.T) {
	clock := vclock.New()
	network := netsim.New(clock)
	network.Register("app.test", netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		switch req.Path() {
		case "/":
			return &netsim.Response{Status: 302, Header: map[string]string{"Location": "http://app.test/final"}}
		case "/final":
			return netsim.OK(`<html><head><title>Final</title></head><body></body></html>`)
		}
		return netsim.NotFound()
	}))
	b := New(clock, network, UserMode)
	tab := b.NewTab()
	if err := tab.Navigate("http://app.test/"); err != nil {
		t.Fatal(err)
	}
	if tab.Title() != "Final" || tab.URL() != "http://app.test/final" {
		t.Fatalf("title=%q url=%q", tab.Title(), tab.URL())
	}
}

func TestRedirectLoopFails(t *testing.T) {
	clock := vclock.New()
	network := netsim.New(clock)
	network.Register("app.test", netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		return &netsim.Response{Status: 302, Header: map[string]string{"Location": "http://app.test/"}}
	}))
	b := New(clock, network, UserMode)
	if err := b.NewTab().Navigate("http://app.test/"); err == nil {
		t.Fatal("redirect loop did not fail")
	}
}

func TestCookiesPersistAcrossNavigations(t *testing.T) {
	clock := vclock.New()
	network := netsim.New(clock)
	network.Register("app.test", netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		if req.Path() == "/set" {
			r := netsim.OK("<body>set</body>")
			r.Header["Set-Cookie"] = "sid=abc123"
			return r
		}
		return netsim.OK("<body>cookie=" + req.Header["Cookie"] + "</body>")
	}))
	b := New(clock, network, UserMode)
	tab := b.NewTab()
	if err := tab.Navigate("http://app.test/set"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Navigate("http://app.test/check"); err != nil {
		t.Fatal(err)
	}
	if got := tab.MainFrame().Doc().Body().TextContent(); !strings.Contains(got, "sid=abc123") {
		t.Fatalf("cookie not sent: %q", got)
	}
}

func TestDoubleClickFiresDblclick(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<div id="cell">v</div><script>
			document.getElementById("cell").addEventListener("dblclick", function(e) {
				e.target.textContent = "editing";
			});
		</script>`,
	})
	env.navigate(t, "http://app.test/")
	cell := env.tab.MainFrame().Doc().GetElementByID("cell")
	x, y := env.tab.Layout().Center(cell)
	env.tab.DoubleClick(x, y)
	if got := cell.TextContent(); got != "editing" {
		t.Errorf("cell = %q", got)
	}
}

func TestStackCaptureShowsEventPath(t *testing.T) {
	// Fig. 3 reproduction: the call chain through the layers must be
	// visible in a stack captured inside HandleMousePressEvent.
	env := newEnv(t, UserMode, map[string]string{
		"/": `<button id="b">x</button>`,
	})
	env.navigate(t, "http://app.test/")
	env.tab.EventHandler().CaptureStackOnNextPress()
	btn := env.tab.MainFrame().Doc().GetElementByID("b")
	x, y := env.tab.Layout().Center(btn)
	env.tab.Click(x, y)
	stack := strings.Join(env.tab.EventHandler().LastStack(), "\n")
	for _, fn := range []string{"HandleMousePressEvent", "HandleInputEvent", "OnMessageReceived"} {
		if !strings.Contains(stack, fn) {
			t.Errorf("stack missing %s:\n%s", fn, stack)
		}
	}
}

func TestSyntheticKeyEventModePolicy(t *testing.T) {
	page := map[string]string{"/": `<input id="i" type="text">`}

	// User mode: synthetic keyboard events cannot carry key data.
	user := newEnv(t, UserMode, page)
	user.navigate(t, "http://app.test/")
	e := event.NewSynthetic(event.TypeKeyPress, user.tab.MainFrame().Doc().GetElementByID("i"), user.browser.Mode() == DeveloperMode)
	if err := e.SetKeyData(event.KeyData{Code: 72}); err == nil {
		t.Fatal("user-mode synthetic key data was settable")
	}

	// Developer mode (the WaRR Replayer's browser): settable.
	dev := newEnv(t, DeveloperMode, page)
	dev.navigate(t, "http://app.test/")
	e2 := event.NewSynthetic(event.TypeKeyPress, dev.tab.MainFrame().Doc().GetElementByID("i"), dev.browser.Mode() == DeveloperMode)
	if err := e2.SetKeyData(event.KeyData{Code: 72}); err != nil {
		t.Fatalf("developer-mode synthetic key data refused: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if UserMode.String() != "user" || DeveloperMode.String() != "developer" || Mode(0).String() != "unknown" {
		t.Fatal("Mode.String broken")
	}
}

func TestKeyCodeFor(t *testing.T) {
	cases := []struct {
		ch    rune
		code  int
		shift bool
	}{
		{'a', 65, false}, {'z', 90, false}, {'A', 65, true},
		{'H', 72, true}, {'e', 69, false}, {'!', 49, true},
		{'1', 49, false}, {' ', 32, false}, {'.', 190, false},
		{'?', 191, true}, {'\n', 13, false},
	}
	for _, c := range cases {
		code, shift := KeyCodeFor(c.ch)
		if code != c.code || shift != c.shift {
			t.Errorf("KeyCodeFor(%q) = %d,%v want %d,%v", c.ch, code, shift, c.code, c.shift)
		}
	}
}

func TestNamedKeyCode(t *testing.T) {
	if NamedKeyCode(KeyEnter) != 13 || NamedKeyCode(KeyShift) != 16 || NamedKeyCode("Nope") != 0 {
		t.Fatal("NamedKeyCode broken")
	}
	if !IsControlKey("Enter") || IsControlKey("a") {
		t.Fatal("IsControlKey broken")
	}
}

func TestUnknownHostNavigationError(t *testing.T) {
	env := newEnv(t, UserMode, nil)
	if err := env.tab.Navigate("http://ghost.test/"); err == nil {
		t.Fatal("expected navigation error")
	}
}

func TestScriptElementIdentity(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<div id="x"></div><script>
			var a = document.getElementById("x");
			var b = document.getElementById("x");
			a.textContent = (a == b) ? "same" : "different";
		</script>`,
	})
	env.navigate(t, "http://app.test/")
	if got := env.tab.MainFrame().Doc().GetElementByID("x").TextContent(); got != "same" {
		t.Errorf("identity = %q, want same", got)
	}
}

func TestScriptDOMConstruction(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<ul id="list"></ul><script>
			var list = document.getElementById("list");
			for (var i = 1; i <= 3; i++) {
				var li = document.createElement("li");
				li.textContent = "item " + i;
				list.appendChild(li);
			}
		</script>`,
	})
	env.navigate(t, "http://app.test/")
	list := env.tab.MainFrame().Doc().GetElementByID("list")
	items := list.ElementsByTag("li")
	if len(items) != 3 || items[2].TextContent() != "item 3" {
		t.Fatalf("list = %q", list.OuterHTML())
	}
}

func TestInnerHTMLAssignment(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<div id="x"></div><script>
			document.getElementById("x").innerHTML = "<span id='gen'>made</span>";
		</script>`,
	})
	env.navigate(t, "http://app.test/")
	if env.tab.MainFrame().Doc().GetElementByID("gen") == nil {
		t.Fatal("innerHTML content not parsed")
	}
}

func TestStopPropagationHidesEventFromAncestors(t *testing.T) {
	// The behaviour that page-level recorders depend on and that breaks
	// them: an app handler stopping propagation keeps document-level
	// listeners blind.
	env := newEnv(t, UserMode, map[string]string{
		"/": `<div id="outer"><button id="b">x</button></div><script>
			document.getElementById("b").addEventListener("click", function(e) {
				e.stopPropagation();
			});
			document.getElementById("outer").addEventListener("click", function(e) {
				document.getElementById("outer").setAttribute("data-saw", "1");
			});
		</script>`,
	})
	env.navigate(t, "http://app.test/")
	btn := env.tab.MainFrame().Doc().GetElementByID("b")
	x, y := env.tab.Layout().Center(btn)
	env.tab.Click(x, y)
	if env.tab.MainFrame().Doc().GetElementByID("outer").HasAttr("data-saw") {
		t.Fatal("stopPropagation did not hide the event")
	}
}

func TestFocusEventsFire(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<input id="a" type="text"><input id="b" type="text"><script>
			document.getElementById("a").addEventListener("blur", function(e) {
				e.target.setAttribute("data-blurred", "1");
			});
			document.getElementById("b").addEventListener("focus", function(e) {
				e.target.setAttribute("data-focused", "1");
			});
		</script>`,
	})
	env.navigate(t, "http://app.test/")
	doc := env.tab.MainFrame().Doc()
	ax, ay := env.tab.Layout().Center(doc.GetElementByID("a"))
	env.tab.Click(ax, ay)
	bx, by := env.tab.Layout().Center(doc.GetElementByID("b"))
	env.tab.Click(bx, by)
	if !doc.GetElementByID("a").HasAttr("data-blurred") {
		t.Error("blur did not fire")
	}
	if !doc.GetElementByID("b").HasAttr("data-focused") {
		t.Error("focus did not fire")
	}
}

func TestDragDispatchesDragEvents(t *testing.T) {
	env := newEnv(t, UserMode, map[string]string{
		"/": `<div id="box">drag me</div><script>
			document.getElementById("box").addEventListener("drag", function(e) {
				e.target.setAttribute("data-delta", e.dx + "," + e.dy);
			});
		</script>`,
	})
	env.navigate(t, "http://app.test/")
	box := env.tab.MainFrame().Doc().GetElementByID("box")
	x, y := env.tab.Layout().Center(box)
	env.tab.Drag(x, y, 30, -10)
	if got, _ := box.Attr("data-delta"); got != "30,-10" {
		t.Errorf("delta = %q", got)
	}
}
