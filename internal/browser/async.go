package browser

import (
	"fmt"
	"net/url"
	"time"

	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/script"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// This file keeps the browser's pending asynchronous work — script
// timeouts and in-flight AJAX fetches — as data owned by the Browser,
// instead of opaque closures buried in the virtual clock. The records
// are what make an environment checkpointable: a fork re-creates each
// pending record against the forked world's clock, frames, and script
// values, something a captured Go closure could never offer.

// asyncKind discriminates pending asynchronous work.
type asyncKind int

const (
	// asyncTimeout is a setTimeout callback.
	asyncTimeout asyncKind = iota + 1
	// asyncAJAX is an httpGet fetch awaiting network latency.
	asyncAJAX
)

// asyncRec is one pending piece of asynchronous work. Everything needed
// to fire it — and to clone it into a forked world — is explicit: the
// owning frame, the deadline on the virtual clock, and the script-level
// callback (plus the request, for AJAX).
type asyncRec struct {
	seq      uint64
	frame    *Frame
	kind     asyncKind
	deadline time.Time

	// fn is the setTimeout callback.
	fn script.Value

	// req, rawURL, cb describe a pending httpGet: the fetch resolves at
	// the deadline and cb(body, status) runs in the owning frame.
	req    *netsim.Request
	rawURL string
	cb     script.Value

	timer *vclock.Timer
}

// scheduleAsync registers rec and arms its clock timer delay from now.
// Records fire in (deadline, registration) order — the clock's own
// ordering — and the browser keeps them in registration order so a fork
// can re-arm them with the same relative ordering.
func (b *Browser) scheduleAsync(rec *asyncRec, delay time.Duration) {
	if delay < 0 {
		delay = 0
	}
	rec.deadline = b.clock.Now().Add(delay)
	b.mu.Lock()
	rec.seq = b.asyncSeq
	b.asyncSeq++
	b.asyncs = append(b.asyncs, rec)
	b.mu.Unlock()
	rec.timer = b.clock.AfterFunc(delay, func() { b.fireAsync(rec) })
}

// fireAsync runs one due record. A record whose frame was unloaded in
// the meantime is dropped without effect, matching the alive checks the
// closures used to carry.
func (b *Browser) fireAsync(rec *asyncRec) {
	b.removeAsync(rec)
	f := rec.frame
	if f == nil || !f.alive {
		return
	}
	switch rec.kind {
	case asyncTimeout:
		f.CallHandler(rec.fn)
	case asyncAJAX:
		resp, err := b.network.Fetch(rec.req)
		if err != nil {
			f.tab.logConsole(ConsoleError, fmt.Sprintf("httpGet %s: %v", rec.rawURL, err))
			f.CallHandler(rec.cb, "", float64(0))
			return
		}
		f.CallHandler(rec.cb, resp.Body, float64(resp.Status))
	}
}

// cancelAsync stops a pending record (clearTimeout). Cancelling a
// record that already fired is a no-op.
func (b *Browser) cancelAsync(rec *asyncRec) {
	if rec == nil {
		return
	}
	b.clock.Stop(rec.timer)
	b.removeAsync(rec)
}

func (b *Browser) removeAsync(rec *asyncRec) {
	b.mu.Lock()
	for i, r := range b.asyncs {
		if r == rec {
			b.asyncs = append(b.asyncs[:i], b.asyncs[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
}

// pendingAsyncs returns the pending records in registration order.
func (b *Browser) pendingAsyncs() []*asyncRec {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*asyncRec(nil), b.asyncs...)
}

// newTimeoutRec builds (but does not schedule) a setTimeout record.
func newTimeoutRec(f *Frame, fn script.Value) *asyncRec {
	return &asyncRec{frame: f, kind: asyncTimeout, fn: fn}
}

// newAJAXRec builds (but does not schedule) an httpGet record.
func newAJAXRec(f *Frame, req *netsim.Request, rawURL string, cb script.Value) *asyncRec {
	return &asyncRec{frame: f, kind: asyncAJAX, req: req, rawURL: rawURL, cb: cb}
}

// cloneRequest deep-copies a pending AJAX request so the fork's fetch
// cannot share mutable state (headers, parsed form) with the original.
func cloneRequest(req *netsim.Request) *netsim.Request {
	if req == nil {
		return nil
	}
	dup := &netsim.Request{Method: req.Method, URL: req.URL, Body: req.Body}
	dup.Header = make(map[string]string, len(req.Header))
	for k, v := range req.Header {
		dup.Header[k] = v
	}
	if req.Form != nil {
		dup.Form = make(url.Values, len(req.Form))
		for k, vs := range req.Form {
			dup.Form[k] = append([]string(nil), vs...)
		}
	}
	return dup
}
