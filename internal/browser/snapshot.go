package browser

import (
	"errors"
	"fmt"

	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/script"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// This file implements environment checkpointing at the browser layer:
// a Fork is a deep, independent copy of the browser — cookies, tabs,
// frame trees, DOM documents (query indexes cloned by translation, not
// rebuilt), script interpreter state, event listeners, and pending
// asynchronous work — re-rooted on a forked world's clock and network.
// The campaign trie scheduler checkpoints a replay at trace branch
// points and forks one copy per divergent suffix, so a shared prefix
// executes exactly once.
//
// What a fork deliberately does not carry:
//
//   - frame observers and recorder hooks: tools re-attach to the fork
//     (the replayer's driver clones itself via webdriver.CloneFor);
//   - clock fire observers and network traffic observers: they belong
//     to the parent world's instruments;
//   - native functions captured into script variables under new names
//     beyond the installed bindings (e.g. a stored document.getElementById):
//     these keep operating on the parent world. The installed bindings
//     themselves (document, window, console, setTimeout, ...) are
//     rebound to the fork wherever they are referenced.

// World is the environment surrounding a browser: the thing that owns
// the server-side application state. Browser.Fork delegates to it so
// forking clones the whole world; registry.Env implements it.
type World interface {
	// ForkBrowser clones b's entire environment — application server
	// state onto a fresh network, clock at the same instant — and
	// returns the browser fork living in it.
	ForkBrowser(b *Browser) (*Fork, error)
}

// ErrNotForkable reports a browser with no attached world: there is no
// owner able to clone the server side.
var ErrNotForkable = errors.New("browser: environment does not support forking (no world attached)")

// ErrForeignPendingWork reports pending clock timers that the browser's
// structured async records do not cover — work scheduled directly on
// the clock that a fork could not reproduce.
var ErrForeignPendingWork = errors.New("browser: pending timers not owned by the script bindings")

// Fork is the result of forking a browser: the copy plus the tab and
// frame correspondence, which callers (the replayer) use to re-attach
// drivers to the cloned page.
type Fork struct {
	Browser *Browser
	tabs    map[*Tab]*Tab
	frames  map[*Frame]*Frame
}

// Tab maps a parent-world tab to its fork (nil if unknown).
func (fk *Fork) Tab(old *Tab) *Tab { return fk.tabs[old] }

// Frame maps a parent-world frame to its fork (nil if unknown).
func (fk *Fork) Frame(old *Frame) *Frame { return fk.frames[old] }

// Fork clones the browser's whole world through the attached World.
func (b *Browser) Fork() (*Fork, error) {
	if b.world == nil {
		return nil, ErrNotForkable
	}
	return b.world.ForkBrowser(b)
}

// CloneOnto deep-copies the browser onto a forked world's clock and
// network. The clock must stand at the same instant as the browser's
// own; the network must already serve the forked application state.
// Environment owners (registry.Env.Fork) call this — tools fork through
// Browser.Fork.
func (b *Browser) CloneOnto(clock *vclock.Clock, network *netsim.Network) (*Fork, error) {
	if !clock.Now().Equal(b.clock.Now()) {
		return nil, fmt.Errorf("browser: fork clock stands at %v, parent at %v", clock.Now(), b.clock.Now())
	}
	pending := b.pendingAsyncs()
	if n := b.clock.PendingTimers(); n != len(pending) {
		return nil, fmt.Errorf("%w: %d pending timer(s), %d owned record(s)",
			ErrForeignPendingWork, n, len(pending))
	}

	nb := &Browser{clock: clock, network: network, mode: b.mode}
	b.mu.Lock()
	nb.cookies = make(map[string]map[string]string, len(b.cookies))
	for host, jar := range b.cookies {
		dup := make(map[string]string, len(jar))
		for k, v := range jar {
			dup[k] = v
		}
		nb.cookies[host] = dup
	}
	tabs := append([]*Tab(nil), b.tabs...)
	b.mu.Unlock()

	st := &cloneState{
		fork:   &Fork{Browser: nb, tabs: make(map[*Tab]*Tab), frames: make(map[*Frame]*Frame)},
		nodes:  make(map[*dom.Node]*dom.Node),
		recs:   make(map[*asyncRec]*asyncRec),
		owners: make(map[script.Value]builtinOwner),
	}
	st.cloner = script.NewCloner(st.mapHost)

	// Phase 1: structure. Clone every tab's frame tree and documents,
	// create fresh interpreters (pristine bindings), and index which
	// builtin each original frame installed under which name.
	for _, t := range tabs {
		nb.tabs = append(nb.tabs, st.cloneTabStructure(t, nb))
	}

	// Phase 2: pending async records get fork-side shells up front, so
	// TimerHandle values met during value cloning resolve to them.
	clones := make([]*asyncRec, len(pending))
	for i, rec := range pending {
		clones[i] = &asyncRec{frame: st.fork.frames[rec.frame], kind: rec.kind, rawURL: rec.rawURL}
		st.recs[rec] = clones[i]
	}

	// Phase 3: state. With every frame, node, and builtin mapped, copy
	// the script worlds, replay listener registrations, and restore
	// per-tab focus.
	for _, t := range tabs {
		st.cloneTabState(t)
	}

	// Phase 4: re-arm pending async work in registration order, so
	// same-deadline records keep firing in the parent's order.
	for i, rec := range pending {
		dup := clones[i]
		dup.fn = st.cloner.Value(rec.fn)
		dup.cb = st.cloner.Value(rec.cb)
		dup.req = cloneRequest(rec.req)
		nb.scheduleAsync(dup, rec.deadline.Sub(clock.Now()))
	}
	return st.fork, nil
}

// builtinOwner locates one installed binding: which frame installed it,
// under which global name.
type builtinOwner struct {
	frame *Frame
	name  string
}

// cloneState carries the correspondence tables of one fork.
type cloneState struct {
	fork   *Fork
	nodes  map[*dom.Node]*dom.Node
	recs   map[*asyncRec]*asyncRec
	owners map[script.Value]builtinOwner
	cloner *script.Cloner
}

// cloneTabStructure clones the tab shell and its frame tree (phase 1).
func (st *cloneState) cloneTabStructure(old *Tab, nb *Browser) *Tab {
	t := &Tab{browser: nb, viewportW: old.viewportW}
	t.renderer = newRenderer(t)
	st.fork.tabs[old] = t
	t.main = st.cloneFrameStructure(old.main, t, nil)
	t.console = append([]ConsoleEntry(nil), old.console...)
	if old.popup != nil {
		p := *old.popup
		t.popup = &p
	}
	t.pendingNavs = append([]pendingNav(nil), old.pendingNavs...)
	return t
}

// cloneFrameStructure clones one frame, its document (index included),
// and its children, and builds a fresh interpreter with pristine
// bindings. Script state is copied later, in phase 3.
func (st *cloneState) cloneFrameStructure(old *Frame, tab *Tab, parent *Frame) *Frame {
	nf := newFrame(tab, parent, st.nodes[old.element])
	nf.name = old.name
	nf.hasSrc = old.hasSrc
	nf.alive = old.alive
	st.fork.frames[old] = nf

	doc, nodeMap := old.doc.CloneWithIndex()
	for o, n := range nodeMap {
		st.nodes[o] = n
	}
	nf.doc = doc
	nf.interp = newFrameInterp(nf)
	for name, v := range old.builtins {
		st.owners[v] = builtinOwner{frame: old, name: name}
	}
	// The old global scope maps to the fresh interpreter's global, so
	// cloned closures re-root there.
	st.cloner.MapScope(old.interp.Global, nf.interp.Global)

	for _, c := range old.children {
		nf.children = append(nf.children, st.cloneFrameStructure(c, tab, nf))
	}
	return nf
}

// cloneTabState copies script state, listeners, and focus (phase 3).
func (st *cloneState) cloneTabState(old *Tab) {
	t := st.fork.tabs[old]
	for oldF, newF := range framePairs(old.main, st) {
		st.cloneFrameState(oldF, newF)
	}
	if ff := st.fork.frames[old.focusFrame]; ff != nil {
		t.focusFrame = ff
	} else {
		t.focusFrame = t.main
	}
}

// framePairs yields (old, new) frame pairs of a tab, depth first.
func framePairs(old *Frame, st *cloneState) map[*Frame]*Frame {
	out := make(map[*Frame]*Frame)
	var walk func(f *Frame)
	walk = func(f *Frame) {
		out[f] = st.fork.frames[f]
		for _, c := range f.children {
			walk(c)
		}
	}
	walk(old)
	return out
}

func (st *cloneState) cloneFrameState(old, nf *Frame) {
	nf.interp.MaxSteps = old.interp.MaxSteps

	// Copy globals. A name still bound to the pristine builtin that was
	// installed under it keeps the fork's fresh binding; everything else
	// — user variables, user overrides of builtin names — is cloned.
	for _, name := range old.interp.Global.Names() {
		v, _ := old.interp.Global.OwnLookup(name)
		if orig, ok := old.builtins[name]; ok && orig == v {
			continue
		}
		nf.interp.Global.Define(name, st.cloner.Value(v))
	}

	// Replay listener registrations in order, so per-node firing order
	// survives the fork.
	for _, rec := range old.listenerLog {
		n := st.mapNode(rec.node)
		if rec.inline {
			nf.addInlineListener(n, rec.typ, rec.src)
		} else {
			nf.addScriptListener(n, rec.typ, rec.capture, st.cloner.Value(rec.fn))
		}
	}

	nf.focused = st.mapNode(old.focused)
}

// mapNode translates a node into the fork. Nodes outside every cloned
// document — detached subtrees held only by script variables — are
// cloned on first sight, whole subtree at once, so aliases into the
// same detached tree stay aliases.
func (st *cloneState) mapNode(n *dom.Node) *dom.Node {
	if n == nil {
		return nil
	}
	if dup, ok := st.nodes[n]; ok {
		return dup
	}
	dom.CloneMapped(n.Root(), st.nodes)
	return st.nodes[n]
}

// mapHost is the cloner's hook for host values: frame-bound handles are
// re-bound to the forked frames, installed builtins are swapped for the
// fork's equivalents, and anything else is kept (documented sharing).
func (st *cloneState) mapHost(v script.Value) (script.Value, bool) {
	if owner, ok := st.owners[v]; ok {
		if nf := st.fork.frames[owner.frame]; nf != nil {
			if dup, ok := nf.builtins[owner.name]; ok {
				return dup, true
			}
		}
	}
	switch x := v.(type) {
	case *ElementHandle:
		nf := st.fork.frames[x.frame]
		if nf == nil {
			return v, true
		}
		return nf.handleFor(st.mapNode(x.node)), true
	case *DocHandle:
		if nf := st.fork.frames[x.frame]; nf != nil {
			return &DocHandle{frame: nf}, true
		}
		return v, true
	case *WindowHandle:
		if nf := st.fork.frames[x.frame]; nf != nil {
			return &WindowHandle{frame: nf}, true
		}
		return v, true
	case *LocationHandle:
		if nf := st.fork.frames[x.frame]; nf != nil {
			return &LocationHandle{frame: nf}, true
		}
		return v, true
	case *TimerHandle:
		// A live pending timer maps to its fork-side record; a handle
		// whose timer already fired or was stopped becomes inert.
		return &TimerHandle{browser: st.fork.Browser, rec: st.recs[x.rec]}, true
	case *EventBinding:
		if nf := st.fork.frames[x.frame]; nf != nil {
			return &EventBinding{frame: nf, ev: x.ev}, true
		}
		return v, true
	}
	return nil, false
}
