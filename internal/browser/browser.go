// Package browser implements the simulated web browser that hosts both
// halves of WaRR. Its layering mirrors Chrome's architecture as the paper
// presents it (Fig. 2): a Browser window contains Tabs, a Tab's content is
// managed by a Renderer, and the Renderer forwards input to the engine
// layer (WebKit in the paper) where the EventHandler dispatches events to
// HTML elements. The WaRR Recorder hooks exactly that EventHandler
// (paper §IV-A), and the WaRR Replayer drives a developer-mode build of
// this browser in which JavaScript event properties are settable
// (paper §IV-C).
package browser

import (
	"strings"
	"sync"

	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// Mode selects the browser build: users run UserMode; the WaRR Replayer
// requires DeveloperMode, which lifts the read-only restriction on
// KeyboardEvent properties.
type Mode int

// Browser build modes.
const (
	UserMode Mode = iota + 1
	DeveloperMode
)

func (m Mode) String() string {
	switch m {
	case UserMode:
		return "user"
	case DeveloperMode:
		return "developer"
	default:
		return "unknown"
	}
}

// Browser is the top-level browser window.
type Browser struct {
	clock   *vclock.Clock
	network *netsim.Network
	mode    Mode

	// world, when set, is the environment this browser lives in; Fork
	// delegates to it so a checkpoint clones the whole world (server
	// state included), not just the browser.
	world World

	mu      sync.Mutex
	tabs    []*Tab
	cookies map[string]map[string]string // host → name → value

	// asyncs are the pending script timeouts and AJAX fetches, in
	// registration order (see async.go); asyncSeq numbers them.
	asyncs   []*asyncRec
	asyncSeq uint64
}

// New returns a browser in the given mode, connected to the network and
// driven by the clock.
func New(clock *vclock.Clock, network *netsim.Network, mode Mode) *Browser {
	return &Browser{
		clock:   clock,
		network: network,
		mode:    mode,
		cookies: make(map[string]map[string]string),
	}
}

// Clock returns the browser's virtual clock.
func (b *Browser) Clock() *vclock.Clock { return b.clock }

// Network returns the network the browser fetches over.
func (b *Browser) Network() *netsim.Network { return b.network }

// Mode returns the browser build mode.
func (b *Browser) Mode() Mode { return b.mode }

// SetWorld attaches the environment the browser lives in; Fork
// delegates to it. registry.NewEnv wires this automatically.
func (b *Browser) SetWorld(w World) { b.world = w }

// World returns the attached environment (nil when the browser was
// built bare, outside an environment).
func (b *Browser) World() World { return b.world }

// NewTab opens an empty tab.
func (b *Browser) NewTab() *Tab {
	t := newTab(b)
	b.mu.Lock()
	b.tabs = append(b.tabs, t)
	b.mu.Unlock()
	return t
}

// Tabs returns the open tabs.
func (b *Browser) Tabs() []*Tab {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Tab, len(b.tabs))
	copy(out, b.tabs)
	return out
}

// cookieHeader renders the Cookie header for a host ("" when none).
func (b *Browser) cookieHeader(host string) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	jar := b.cookies[host]
	if len(jar) == 0 {
		return ""
	}
	parts := make([]string, 0, len(jar))
	for name, v := range jar {
		parts = append(parts, name+"="+v)
	}
	// Single-cookie jars dominate in practice; ordering of multiple
	// cookies is not significant to the simulated servers.
	return strings.Join(parts, "; ")
}

// storeCookie records a Set-Cookie header value for a host.
func (b *Browser) storeCookie(host, setCookie string) {
	if setCookie == "" {
		return
	}
	// Only the name=value pair is honored; attributes like Path are not
	// needed by the simulated applications.
	nv, _, _ := strings.Cut(setCookie, ";")
	name, value, ok := strings.Cut(strings.TrimSpace(nv), "=")
	if !ok {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	jar := b.cookies[host]
	if jar == nil {
		jar = make(map[string]string)
		b.cookies[host] = jar
	}
	jar[name] = value
}
