package browser

// This file models the IPC path an input event takes through Chrome
// before reaching WebKit, preserving the call chain the paper shows in
// Fig. 3:
//
//	RenderView::OnMessageReceived
//	WebKit::WebViewImpl::handleInputEvent
//	WebCore::EventHandler::handleMousePressEvent
//
// The layering is functional, not decorative: the WaRR Recorder sits
// below it (in the EventHandler), which is what gives it access to every
// click and keystroke regardless of what the page's own code does above.

// InputKind discriminates hardware-level input messages.
type InputKind int

// Input message kinds.
const (
	MousePressInput InputKind = iota + 1
	KeyInput
	DragInput
)

// InputMessage is the IPC message a Tab sends to its Renderer for one
// hardware input event.
type InputMessage struct {
	Kind InputKind

	// Mouse press fields.
	X, Y       int
	ClickCount int // 1 = single click, 2 = double click

	// Key fields.
	Key  string // printable character or named control key
	Code int    // virtual key code
	Mods KeyMods

	// Drag fields (X, Y locate the grab point).
	DX, DY int
}

// Renderer proxies messages across the (simulated) process boundary
// between the browser and the web content — RenderView in Chrome.
type Renderer struct {
	view *WebViewImpl
}

func newRenderer(tab *Tab) *Renderer {
	return &Renderer{view: &WebViewImpl{handler: newEventHandler(tab)}}
}

// OnMessageReceived accepts an input IPC message and forwards it to the
// web view (RenderView::OnMessageReceived in Fig. 3).
func (r *Renderer) OnMessageReceived(msg InputMessage) {
	r.view.HandleInputEvent(msg)
}

// EventHandler exposes the engine-layer event handler, where the WaRR
// Recorder installs its hooks.
func (r *Renderer) EventHandler() *EventHandler { return r.view.handler }

// WebViewImpl routes input events to the engine's event handler
// (WebKit::WebViewImpl::handleInputEvent in Fig. 3).
type WebViewImpl struct {
	handler *EventHandler
}

// HandleInputEvent demultiplexes the input message to the EventHandler
// method responsible for its kind.
func (v *WebViewImpl) HandleInputEvent(msg InputMessage) {
	switch msg.Kind {
	case MousePressInput:
		v.handler.HandleMousePressEvent(msg.X, msg.Y, msg.ClickCount)
	case KeyInput:
		v.handler.KeyEvent(msg.Key, msg.Code, msg.Mods)
	case DragInput:
		v.handler.HandleDrag(msg.X, msg.Y, msg.DX, msg.DY)
	}
}
