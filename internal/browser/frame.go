package browser

import (
	"net/url"

	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/layout"
	"github.com/dslab-epfl/warr/internal/script"
)

// Frame is one browsing context: the main frame of a tab or an iframe.
// Each frame owns a document and a script interpreter (its JavaScript
// global environment).
type Frame struct {
	tab      *Tab
	parent   *Frame
	children []*Frame

	// element is the owning <iframe> element in the parent document
	// (nil for the main frame).
	element *dom.Node

	doc     *dom.Document
	interp  *script.Interp
	focused *dom.Node

	// name is the iframe's name attribute; the webdriver switches frames
	// by name (paper §IV-C).
	name string

	// hasSrc records whether the frame was loaded from a src URL.
	// Chrome loads ChromeDriver clients only for such frames — the
	// src-less iframe limitation WaRR works around (§IV-C).
	hasSrc bool

	// alive is cleared on unload so pending timers and AJAX callbacks
	// from a previous page become no-ops.
	alive bool

	// handles interns ElementHandle values so script-level identity
	// comparisons (e.target == el) hold.
	handles map[*dom.Node]*ElementHandle

	// layoutCache memoizes the frame's computed layout, keyed by the
	// document's query-index generation and the viewport width it was
	// computed for. Every DOM mutation (structure, attributes, text,
	// input values) bumps the generation, so a hit is never stale.
	layoutCache *layout.Layout
	layoutGen   uint64
	layoutW     int

	// docMethods interns document method bindings (getElementById,
	// createElement, ...) so repeated property accesses do not allocate
	// fresh closures on the replay hot path.
	docMethods map[string]*script.NativeFunc

	// builtins snapshots the frame's original global bindings right
	// after newFrameInterp installed them, keyed by name. Forking uses
	// it two ways: a global still bound to its pristine builtin is
	// skipped (the fork's fresh binding wins), and a builtin stored
	// under another name is rebound to the fork's equivalent.
	builtins map[string]script.Value

	// listenerLog records every event-listener registration (inline
	// on* handlers and script addEventListener calls) in order, as
	// data. Cloned frames replay the log so listener sets — and their
	// per-node firing order — survive a fork. The live listeners still
	// hang off the DOM nodes themselves.
	listenerLog []listenerRec
}

// listenerRec is one recorded listener registration.
type listenerRec struct {
	node    *dom.Node
	typ     string
	capture bool
	// inline handlers re-evaluate src with `event` bound; script
	// listeners invoke fn.
	inline bool
	src    string
	fn     script.Value
}

func newFrame(tab *Tab, parent *Frame, element *dom.Node) *Frame {
	return &Frame{
		tab:     tab,
		parent:  parent,
		element: element,
		alive:   true,
		handles: make(map[*dom.Node]*ElementHandle),
	}
}

// Tab returns the owning tab.
func (f *Frame) Tab() *Tab { return f.tab }

// Parent returns the parent frame (nil for the main frame).
func (f *Frame) Parent() *Frame { return f.parent }

// Children returns the child frames in document order.
func (f *Frame) Children() []*Frame {
	out := make([]*Frame, len(f.children))
	copy(out, f.children)
	return out
}

// Descendants returns the frame and all frames below it, depth-first.
func (f *Frame) Descendants() []*Frame {
	out := []*Frame{f}
	for _, c := range f.children {
		out = append(out, c.Descendants()...)
	}
	return out
}

// Doc returns the frame's document.
func (f *Frame) Doc() *dom.Document { return f.doc }

// Interp returns the frame's script interpreter.
func (f *Frame) Interp() *script.Interp { return f.interp }

// Name returns the frame's name ("" for the main frame and anonymous
// iframes).
func (f *Frame) Name() string { return f.name }

// HasSrc reports whether the frame was loaded from an iframe src URL.
func (f *Frame) HasSrc() bool { return f.hasSrc }

// Element returns the owning iframe element (nil for the main frame).
func (f *Frame) Element() *dom.Node { return f.element }

// Alive reports whether the frame is still the live content of its tab.
func (f *Frame) Alive() bool { return f.alive }

// Focused returns the element holding keyboard focus in this frame.
func (f *Frame) Focused() *dom.Node { return f.focused }

// SetFocused moves keyboard focus within the frame without firing focus
// events (used by the webdriver's element targeting).
func (f *Frame) SetFocused(n *dom.Node) { f.focused = n }

// RunScript executes src in the frame's global environment. Runtime
// errors are logged to the tab console — exactly where the Google Sites
// uninitialized-variable bug becomes visible (§V-C) — and returned.
func (f *Frame) RunScript(src string) (script.Value, error) {
	v, err := f.interp.Run(src)
	if err != nil {
		f.tab.logConsole(ConsoleError, err.Error())
		return nil, err
	}
	return v, nil
}

// CallHandler invokes a script function value with the given arguments,
// logging runtime errors to the console.
func (f *Frame) CallHandler(fn script.Value, args ...script.Value) {
	if _, err := f.tab.browser.callScript(f, fn, args...); err != nil {
		f.tab.logConsole(ConsoleError, err.Error())
	}
}

// callScript exists on Browser so handler invocation is mockable in
// tests; it simply delegates to the frame's interpreter.
func (b *Browser) callScript(f *Frame, fn script.Value, args ...script.Value) (script.Value, error) {
	return f.interp.Call(fn, args...)
}

// resolveURL resolves a possibly-relative reference against the frame's
// document URL.
func (f *Frame) resolveURL(ref string) string {
	if f.doc == nil {
		return ref
	}
	base, err := url.Parse(f.doc.URL)
	if err != nil {
		return ref
	}
	u, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return base.ResolveReference(u).String()
}

// FrameByName finds a descendant frame by iframe name ("" finds f
// itself). It returns nil when no frame matches.
func (f *Frame) FrameByName(name string) *Frame {
	if name == "" {
		return f
	}
	for _, d := range f.Descendants() {
		if d.name == name {
			return d
		}
	}
	return nil
}

// Layout returns the frame's layout for the given viewport width,
// recomputing only when the document mutated (or the width changed) since
// the cached computation. Unindexed documents are computed fresh every
// time — without a generation counter there is no staleness signal.
func (f *Frame) Layout(width int) *layout.Layout {
	ix := f.doc.Index()
	if ix == nil {
		return layout.Compute(f.doc, width)
	}
	if gen := ix.Generation(); f.layoutCache != nil && f.layoutGen == gen && f.layoutW == width {
		return f.layoutCache
	}
	l := layout.Compute(f.doc, width)
	f.layoutCache, f.layoutGen, f.layoutW = l, ix.Generation(), width
	return l
}

// kill marks the frame tree dead (navigation replaced it).
func (f *Frame) kill() {
	for _, d := range f.Descendants() {
		d.alive = false
	}
}
