package browser

import (
	"fmt"
	"net/url"
	"strings"
	"time"

	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/event"
	"github.com/dslab-epfl/warr/internal/htmlparse"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/script"
)

// This file implements the JavaScript host bindings of the simulated
// browser: document, elements, events, window, console, timers, and AJAX.
// Together with the script interpreter they form the client-side code
// substrate the paper's applications run on.

// encodeURIComponentBuiltin is stateless, so one instance serves every
// frame (frames are created per page load and per fork).
var encodeURIComponentBuiltin = &script.NativeFunc{Name: "encodeURIComponent", Fn: func(args []script.Value) (script.Value, error) {
	if len(args) == 0 {
		return "", nil
	}
	return url.QueryEscape(script.ToString(args[0])), nil
}}

// newFrameInterp builds the global environment for a frame.
func newFrameInterp(f *Frame) *script.Interp {
	in := script.New()
	script.InstallBuiltins(in)

	in.Define("document", &DocHandle{frame: f})
	in.Define("window", &WindowHandle{frame: f})
	in.Define("console", consoleObject(f))
	in.Define("alert", &script.NativeFunc{Name: "alert", Fn: func(args []script.Value) (script.Value, error) {
		msg := ""
		if len(args) > 0 {
			msg = script.ToString(args[0])
		}
		f.tab.ShowPopup(msg)
		return script.Undefined, nil
	}})
	in.Define("setTimeout", setTimeoutFunc(f))
	in.Define("clearTimeout", clearTimeoutFunc(f))
	in.Define("httpGet", httpGetFunc(f))
	in.Define("encodeURIComponent", encodeURIComponentBuiltin)

	// Snapshot the pristine global bindings (the host bindings above
	// plus the script builtins) so a fork can tell user state apart
	// from installed machinery — see snapshot.go. Frames are created on
	// every page load, so this stays a single map copy, unsorted.
	f.builtins = make(map[string]script.Value, 12)
	in.Global.ForEachOwn(func(name string, v script.Value) {
		f.builtins[name] = v
	})
	return in
}

func consoleObject(f *Frame) *script.Object {
	obj := script.NewObject()
	log := func(level ConsoleLevel) *script.NativeFunc {
		return &script.NativeFunc{Name: "log", Fn: func(args []script.Value) (script.Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = script.ToString(a)
			}
			f.tab.logConsole(level, strings.Join(parts, " "))
			return script.Undefined, nil
		}}
	}
	if err := obj.SetProp("log", log(ConsoleLog)); err != nil {
		panic(err)
	}
	if err := obj.SetProp("error", log(ConsoleError)); err != nil {
		panic(err)
	}
	return obj
}

func setTimeoutFunc(f *Frame) *script.NativeFunc {
	return &script.NativeFunc{Name: "setTimeout", Fn: func(args []script.Value) (script.Value, error) {
		if len(args) < 1 {
			return script.Undefined, fmt.Errorf("setTimeout: missing callback")
		}
		fn := args[0]
		var ms float64
		if len(args) > 1 {
			n, err := script.ToNumber(args[1])
			if err != nil {
				return nil, err
			}
			ms = n
		}
		b := f.tab.browser
		rec := newTimeoutRec(f, fn)
		b.scheduleAsync(rec, msToDuration(ms))
		return &TimerHandle{browser: b, rec: rec}, nil
	}}
}

func clearTimeoutFunc(f *Frame) *script.NativeFunc {
	return &script.NativeFunc{Name: "clearTimeout", Fn: func(args []script.Value) (script.Value, error) {
		if len(args) > 0 {
			if th, ok := args[0].(*TimerHandle); ok {
				th.browser.cancelAsync(th.rec)
			}
		}
		return script.Undefined, nil
	}}
}

// httpGetFunc implements the AJAX binding: httpGet(url, callback) fetches
// asynchronously over the network (with its configured latency) and
// invokes callback(responseBody, status). This is the mechanism the
// simulated applications use for dynamic loading — the behaviour that
// makes them "more vulnerable to timing errors" (paper §V-B). The
// pending fetch lives as an async record on the browser (async.go), so
// a checkpoint taken mid-flight clones it, callback and all.
func httpGetFunc(f *Frame) *script.NativeFunc {
	return &script.NativeFunc{Name: "httpGet", Fn: func(args []script.Value) (script.Value, error) {
		if len(args) < 2 {
			return script.Undefined, fmt.Errorf("httpGet: need url and callback")
		}
		rawURL := f.resolveURL(script.ToString(args[0]))
		cb := args[1]
		req := netsim.NewRequest("GET", rawURL)
		b := f.tab.browser
		if c := b.cookieHeader(req.Host()); c != "" {
			req.SetHeader("Cookie", c)
		}
		b.scheduleAsync(newAJAXRec(f, req, rawURL, cb), b.network.Latency())
		return script.Undefined, nil
	}}
}

func msToDuration(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// TimerHandle is the script-visible value returned by setTimeout. A
// handle cloned into a fork whose timer already fired carries a nil
// record; clearTimeout on it is a no-op.
type TimerHandle struct {
	browser *Browser
	rec     *asyncRec
}

// ---- document ----

// DocHandle exposes a frame's document to scripts.
type DocHandle struct {
	frame *Frame
}

var _ script.PropHolder = (*DocHandle)(nil)

// GetProp implements script.PropHolder.
func (d *DocHandle) GetProp(name string) (script.Value, bool) {
	f := d.frame
	switch name {
	case "body":
		if b := f.doc.Body(); b != nil {
			return f.handleFor(b), true
		}
		return nil, true
	case "title":
		return f.doc.Title(), true
	case "URL":
		return f.doc.URL, true
	case "getElementById":
		return f.docMethod(name, func(args []script.Value) (script.Value, error) {
			if len(args) < 1 {
				return nil, nil
			}
			n := f.doc.GetElementByID(script.ToString(args[0]))
			if n == nil {
				return nil, nil // JavaScript returns null
			}
			return f.handleFor(n), nil
		}), true
	case "createElement":
		return f.docMethod(name, func(args []script.Value) (script.Value, error) {
			if len(args) < 1 {
				return nil, fmt.Errorf("createElement: missing tag")
			}
			return f.handleFor(dom.NewElement(script.ToString(args[0]))), nil
		}), true
	case "createTextNode":
		return f.docMethod(name, func(args []script.Value) (script.Value, error) {
			text := ""
			if len(args) > 0 {
				text = script.ToString(args[0])
			}
			return f.handleFor(dom.NewText(text)), nil
		}), true
	default:
		return script.Undefined, false
	}
}

// docMethod interns document method bindings per frame: scripts call
// document.getElementById on nearly every handled event, and minting a
// fresh closure per property access kept the replay hot path
// allocating. Interning also makes method identity stable, as in real
// DOM implementations.
func (f *Frame) docMethod(name string, fn func(args []script.Value) (script.Value, error)) *script.NativeFunc {
	if m, ok := f.docMethods[name]; ok {
		return m
	}
	if f.docMethods == nil {
		f.docMethods = make(map[string]*script.NativeFunc, 4)
	}
	m := &script.NativeFunc{Name: name, Fn: fn}
	f.docMethods[name] = m
	return m
}

// SetProp implements script.PropHolder; document properties are not
// assignable.
func (d *DocHandle) SetProp(name string, v script.Value) error {
	return fmt.Errorf("document.%s is not assignable", name)
}

// ---- window ----

// WindowHandle exposes the window object.
type WindowHandle struct {
	frame *Frame
}

var _ script.PropHolder = (*WindowHandle)(nil)

// GetProp implements script.PropHolder.
func (w *WindowHandle) GetProp(name string) (script.Value, bool) {
	switch name {
	case "document":
		return &DocHandle{frame: w.frame}, true
	case "location":
		return &LocationHandle{frame: w.frame}, true
	case "setTimeout":
		return setTimeoutFunc(w.frame), true
	default:
		return script.Undefined, false
	}
}

// SetProp implements script.PropHolder.
func (w *WindowHandle) SetProp(name string, v script.Value) error {
	if name == "location" {
		w.frame.tab.scheduleNavigate(w.frame.resolveURL(script.ToString(v)))
		return nil
	}
	return fmt.Errorf("window.%s is not assignable", name)
}

// LocationHandle exposes window.location.
type LocationHandle struct {
	frame *Frame
}

var _ script.PropHolder = (*LocationHandle)(nil)

// GetProp implements script.PropHolder.
func (l *LocationHandle) GetProp(name string) (script.Value, bool) {
	if name == "href" {
		return l.frame.doc.URL, true
	}
	return script.Undefined, false
}

// SetProp implements script.PropHolder; assigning href navigates.
func (l *LocationHandle) SetProp(name string, v script.Value) error {
	if name == "href" {
		l.frame.tab.scheduleNavigate(l.frame.resolveURL(script.ToString(v)))
		return nil
	}
	return fmt.Errorf("location.%s is not assignable", name)
}

// ---- elements ----

// handleFor interns the ElementHandle for a node so script identity
// comparisons work.
func (f *Frame) handleFor(n *dom.Node) *ElementHandle {
	if h, ok := f.handles[n]; ok {
		return h
	}
	h := &ElementHandle{frame: f, node: n}
	f.handles[n] = h
	return h
}

// ElementHandle exposes a DOM node to scripts.
type ElementHandle struct {
	frame *Frame
	node  *dom.Node
}

var _ script.PropHolder = (*ElementHandle)(nil)

// Node returns the wrapped DOM node (used by the webdriver).
func (h *ElementHandle) Node() *dom.Node { return h.node }

// String implements fmt.Stringer for console output.
func (h *ElementHandle) String() string {
	return "[object HTMLElement <" + h.node.Tag + ">]"
}

// GetProp implements script.PropHolder.
func (h *ElementHandle) GetProp(name string) (script.Value, bool) {
	n := h.node
	f := h.frame
	switch name {
	case "id":
		return n.ID(), true
	case "tagName":
		return strings.ToUpper(n.Tag), true
	case "className":
		return n.AttrOr("class", ""), true
	case "textContent":
		return n.TextContent(), true
	case "value":
		return n.Value, true
	case "innerHTML":
		return n.InnerHTML(), true
	case "parentNode":
		if p := n.Parent(); p != nil {
			return f.handleFor(p), true
		}
		return nil, true
	case "firstChild":
		if c := n.FirstChild(); c != nil {
			return f.handleFor(c), true
		}
		return nil, true
	case "childCount":
		return float64(n.NumChildren()), true
	case "style":
		return n.AttrOr("style", ""), true
	case "getAttribute":
		return &script.NativeFunc{Name: "getAttribute", Fn: func(args []script.Value) (script.Value, error) {
			if len(args) < 1 {
				return nil, nil
			}
			v, ok := n.Attr(script.ToString(args[0]))
			if !ok {
				return nil, nil
			}
			return v, nil
		}}, true
	case "setAttribute":
		return &script.NativeFunc{Name: "setAttribute", Fn: func(args []script.Value) (script.Value, error) {
			if len(args) < 2 {
				return script.Undefined, fmt.Errorf("setAttribute: need name and value")
			}
			n.SetAttr(script.ToString(args[0]), script.ToString(args[1]))
			return script.Undefined, nil
		}}, true
	case "removeAttribute":
		return &script.NativeFunc{Name: "removeAttribute", Fn: func(args []script.Value) (script.Value, error) {
			if len(args) > 0 {
				n.RemoveAttr(script.ToString(args[0]))
			}
			return script.Undefined, nil
		}}, true
	case "appendChild":
		return &script.NativeFunc{Name: "appendChild", Fn: func(args []script.Value) (script.Value, error) {
			child, ok := argHandle(args)
			if !ok {
				return script.Undefined, fmt.Errorf("appendChild: argument is not a node")
			}
			n.AppendChild(child.node)
			return child, nil
		}}, true
	case "removeChild":
		return &script.NativeFunc{Name: "removeChild", Fn: func(args []script.Value) (script.Value, error) {
			child, ok := argHandle(args)
			if !ok {
				return script.Undefined, fmt.Errorf("removeChild: argument is not a node")
			}
			n.RemoveChild(child.node)
			return child, nil
		}}, true
	case "remove":
		return &script.NativeFunc{Name: "remove", Fn: func(args []script.Value) (script.Value, error) {
			n.Detach()
			return script.Undefined, nil
		}}, true
	case "addEventListener":
		return &script.NativeFunc{Name: "addEventListener", Fn: func(args []script.Value) (script.Value, error) {
			if len(args) < 2 {
				return script.Undefined, fmt.Errorf("addEventListener: need type and listener")
			}
			typ := script.ToString(args[0])
			fn := args[1]
			capture := len(args) > 2 && script.Truthy(args[2])
			f.addScriptListener(n, typ, capture, fn)
			return script.Undefined, nil
		}}, true
	case "focus":
		return &script.NativeFunc{Name: "focus", Fn: func(args []script.Value) (script.Value, error) {
			f.focused = n
			f.tab.focusFrame = f
			return script.Undefined, nil
		}}, true
	default:
		return script.Undefined, false
	}
}

// SetProp implements script.PropHolder.
func (h *ElementHandle) SetProp(name string, v script.Value) error {
	n := h.node
	switch name {
	case "textContent":
		n.SetTextContent(script.ToString(v))
		return nil
	case "value":
		n.SetValue(script.ToString(v))
		return nil
	case "innerHTML":
		n.RemoveChildren()
		for _, c := range htmlparse.ParseFragment(script.ToString(v)) {
			n.AppendChild(c)
		}
		return nil
	case "id":
		n.SetAttr("id", script.ToString(v))
		return nil
	case "className":
		n.SetAttr("class", script.ToString(v))
		return nil
	case "style":
		n.SetAttr("style", script.ToString(v))
		return nil
	default:
		return fmt.Errorf("cannot set property %q of element", name)
	}
}

func argHandle(args []script.Value) (*ElementHandle, bool) {
	if len(args) < 1 {
		return nil, false
	}
	h, ok := args[0].(*ElementHandle)
	return h, ok
}

// scriptEventHandler wraps a script function as an engine event.Handler.
func (f *Frame) scriptEventHandler(fn script.Value) event.Handler {
	return func(e *event.Event) {
		f.CallHandler(fn, &EventBinding{frame: f, ev: e})
	}
}

// EventBinding exposes a DOM event to scripts.
type EventBinding struct {
	frame *Frame
	ev    *event.Event
}

var _ script.PropHolder = (*EventBinding)(nil)

// GetProp implements script.PropHolder.
func (b *EventBinding) GetProp(name string) (script.Value, bool) {
	e := b.ev
	switch name {
	case "type":
		return e.Type, true
	case "target":
		if e.Target != nil {
			return b.frame.handleFor(e.Target), true
		}
		return nil, true
	case "currentTarget":
		if e.CurrentTarget != nil {
			return b.frame.handleFor(e.CurrentTarget), true
		}
		return nil, true
	case "isTrusted":
		return e.Trusted, true
	case "keyCode", "which":
		if e.Key != nil {
			return float64(e.Key.Code), true
		}
		return float64(0), true
	case "key":
		if e.Key != nil {
			return e.Key.Key, true
		}
		return "", true
	case "shiftKey":
		return e.Key != nil && e.Key.Shift, true
	case "ctrlKey":
		return e.Key != nil && e.Key.Ctrl, true
	case "altKey":
		return e.Key != nil && e.Key.Alt, true
	case "clientX":
		if e.Mouse != nil {
			return float64(e.Mouse.X), true
		}
		return float64(0), true
	case "clientY":
		if e.Mouse != nil {
			return float64(e.Mouse.Y), true
		}
		return float64(0), true
	case "dx":
		if e.Drag != nil {
			return float64(e.Drag.DX), true
		}
		return float64(0), true
	case "dy":
		if e.Drag != nil {
			return float64(e.Drag.DY), true
		}
		return float64(0), true
	case "preventDefault":
		return &script.NativeFunc{Name: "preventDefault", Fn: func(args []script.Value) (script.Value, error) {
			e.PreventDefault()
			return script.Undefined, nil
		}}, true
	case "stopPropagation":
		return &script.NativeFunc{Name: "stopPropagation", Fn: func(args []script.Value) (script.Value, error) {
			e.StopPropagation()
			return script.Undefined, nil
		}}, true
	default:
		return script.Undefined, false
	}
}

// SetProp implements script.PropHolder. Setting keyCode on a synthetic
// event enforces the browser-mode policy: read-only for user builds,
// settable for the developer build the WaRR Replayer uses (§IV-C).
func (b *EventBinding) SetProp(name string, v script.Value) error {
	switch name {
	case "keyCode", "which":
		n, err := script.ToNumber(v)
		if err != nil {
			return err
		}
		kd := event.KeyData{Code: int(n)}
		if b.ev.Key != nil {
			kd = *b.ev.Key
			kd.Code = int(n)
		}
		return b.ev.SetKeyData(kd)
	case "key":
		kd := event.KeyData{Key: script.ToString(v)}
		if b.ev.Key != nil {
			kd = *b.ev.Key
			kd.Key = script.ToString(v)
		}
		return b.ev.SetKeyData(kd)
	default:
		return fmt.Errorf("cannot set event property %q", name)
	}
}

// ---- inline handlers & focus events ----

// inlineHandlerAttrs lists the on* attributes wired at load time.
var inlineHandlerAttrs = []string{
	"onclick", "ondblclick", "oninput", "onchange", "onkeydown",
	"onkeypress", "onkeyup", "onfocus", "onblur", "onsubmit", "ondrag",
}

// wireInlineHandlers registers listeners for on* attributes. The
// attribute value is evaluated as a script with `event` bound.
func wireInlineHandlers(f *Frame) {
	f.doc.Root().Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		for _, attr := range inlineHandlerAttrs {
			src, ok := n.Attr(attr)
			if !ok || strings.TrimSpace(src) == "" {
				continue
			}
			f.addInlineListener(n, strings.TrimPrefix(attr, "on"), src)
		}
		return true
	})
}

// addScriptListener registers a script-function listener and logs the
// registration so forks can replay it (frame.go).
func (f *Frame) addScriptListener(n *dom.Node, typ string, capture bool, fn script.Value) {
	f.listenerLog = append(f.listenerLog, listenerRec{node: n, typ: typ, capture: capture, fn: fn})
	event.Listen(n, typ, capture, f.scriptEventHandler(fn))
}

// addInlineListener registers an inline on*-attribute handler and logs
// the registration. The handler re-evaluates src with `event` bound.
func (f *Frame) addInlineListener(n *dom.Node, typ, src string) {
	f.listenerLog = append(f.listenerLog, listenerRec{node: n, typ: typ, inline: true, src: src})
	event.Listen(n, typ, false, func(e *event.Event) {
		f.interp.Define("event", &EventBinding{frame: f, ev: e})
		if _, err := f.interp.Run(src); err != nil {
			f.tab.logConsole(ConsoleError, err.Error())
		}
	})
}

// dispatchFocusEvent fires a focus or blur event on n.
func dispatchFocusEvent(n *dom.Node, typ string) {
	event.Dispatch(event.New(typ, n))
}
