package browser

import "unicode"

// KeyMods captures modifier state accompanying a keystroke.
type KeyMods struct {
	Shift, Ctrl, Alt bool
}

// Named control keys and their virtual key codes.
const (
	KeyEnter     = "Enter"
	KeyBackspace = "Backspace"
	KeyTab       = "Tab"
	KeyEscape    = "Escape"
	KeyShift     = "Shift"
	KeyControl   = "Control"
	KeyAlt       = "Alt"

	CodeBackspace = 8
	CodeTab       = 9
	CodeEnter     = 13
	CodeShift     = 16
	CodeControl   = 17
	CodeAlt       = 18
	CodeEscape    = 27
	CodeSpace     = 32
)

// shiftedSymbols maps US-keyboard shifted symbols to the digit/punctuation
// key that produces them. The paper's Fig. 4 trace shows '!' logged with
// code 49 — the '1' key.
var shiftedSymbols = map[rune]int{
	'!': 49, '@': 50, '#': 51, '$': 52, '%': 53,
	'^': 54, '&': 55, '*': 56, '(': 57, ')': 48,
	'_': 189, '+': 187, ':': 186, '"': 222, '<': 188,
	'>': 190, '?': 191, '~': 192, '{': 219, '}': 221, '|': 220,
}

// unshiftedSymbols maps unshifted punctuation to its virtual key code.
var unshiftedSymbols = map[rune]int{
	'-': 189, '=': 187, ';': 186, '\'': 222, ',': 188,
	'.': 190, '/': 191, '`': 192, '[': 219, ']': 221, '\\': 220,
}

// KeyCodeFor returns the virtual key code for a printable character and
// whether typing it requires Shift. Letters map to the uppercase ASCII
// code of the key (e → 69, as in the paper's trace), digits map to
// themselves, and symbols map to their US-keyboard key.
func KeyCodeFor(ch rune) (code int, needsShift bool) {
	switch {
	case ch >= 'a' && ch <= 'z':
		return int(unicode.ToUpper(ch)), false
	case ch >= 'A' && ch <= 'Z':
		return int(ch), true
	case ch >= '0' && ch <= '9':
		return int(ch), false
	case ch == ' ':
		return CodeSpace, false
	case ch == '\n':
		return CodeEnter, false
	case ch == '\t':
		return CodeTab, false
	}
	if code, ok := shiftedSymbols[ch]; ok {
		return code, true
	}
	if code, ok := unshiftedSymbols[ch]; ok {
		return code, false
	}
	return int(ch), false
}

// NamedKeyCode returns the virtual key code for a named control key, or 0
// for unknown names.
func NamedKeyCode(name string) int {
	switch name {
	case KeyEnter:
		return CodeEnter
	case KeyBackspace:
		return CodeBackspace
	case KeyTab:
		return CodeTab
	case KeyEscape:
		return CodeEscape
	case KeyShift:
		return CodeShift
	case KeyControl:
		return CodeControl
	case KeyAlt:
		return CodeAlt
	default:
		return 0
	}
}

// IsControlKey reports whether the key name denotes a non-printing key.
func IsControlKey(key string) bool {
	return len(key) > 1
}
