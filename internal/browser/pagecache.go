package browser

import (
	"sync"

	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/fnv1a"
	"github.com/dslab-epfl/warr/internal/htmlparse"
)

// Process-wide page-template cache. Campaign replays load the same
// pages over and over — every job of an edit-site campaign starts on
// the same served HTML — and parsing plus index construction per load
// was a top cost of the replay hot path. Instead, HTML seen repeatedly
// is parsed once into an immutable template document, and each load
// clones the template (dom.CloneWithIndex: arena node copy, index
// translated, no rebuild), which is cheaper than tokenizing.
//
// Like the script parse cache, templates are stored only from a
// source's second sighting — pages generated uniquely per load (GMail
// embeds fresh element ids) would otherwise fill the cache with
// one-shot trees — and both tables are bounded by two generations with
// hot-entry promotion.
//
// Templates are keyed by HTML alone; the document URL is stamped onto
// the clone (the tree's shape does not depend on it).
const pageCacheGen = 256

var (
	pageMu   sync.RWMutex
	pageCur  = make(map[string]*dom.Document)
	pagePrev map[string]*dom.Document
	pageSeen = make(map[uint64]struct{})
	pageOld  map[uint64]struct{}
)

// parsePage returns a fresh, mutable document for the HTML, through
// the template cache.
func parsePage(html, url string) *dom.Document {
	pageMu.RLock()
	tmpl, hot := pageCur[html]
	if !hot {
		tmpl = pagePrev[html]
	}
	pageMu.RUnlock()
	if tmpl != nil {
		doc, _ := tmpl.CloneWithIndex()
		doc.URL = url
		if !hot {
			storeTemplate(html, tmpl)
		}
		return doc
	}

	doc := htmlparse.Parse(html, url)
	h := fnv1a.String(html)
	pageMu.Lock()
	_, seen := pageSeen[h]
	if !seen {
		_, seen = pageOld[h]
	}
	if !seen {
		if len(pageSeen) >= pageCacheGen {
			pageOld, pageSeen = pageSeen, make(map[uint64]struct{}, pageCacheGen)
		}
		pageSeen[h] = struct{}{}
		pageMu.Unlock()
		return doc
	}
	pageMu.Unlock()

	// Second sighting: park an immutable template and hand the caller
	// an independent clone. The template is never given out, so nothing
	// can mutate it.
	tmpl, _ = doc.CloneWithIndex()
	storeTemplate(html, tmpl)
	return doc
}

// storeTemplate inserts (or promotes) a template under the bounded
// two-generation scheme.
func storeTemplate(html string, tmpl *dom.Document) {
	pageMu.Lock()
	if _, hot := pageCur[html]; !hot {
		if len(pageCur) >= pageCacheGen {
			pagePrev, pageCur = pageCur, make(map[string]*dom.Document, pageCacheGen)
		}
		pageCur[html] = tmpl
	}
	pageMu.Unlock()
}
