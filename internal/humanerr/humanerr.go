// Package humanerr implements the human-error models WebErr injects into
// WaRR traces (paper §V). It follows the error taxonomy the paper adopts
// from human-factors studies [30], [31]: navigation errors (typos,
// forgetting, reordering, and substitution of steps) and timing errors
// (interacting with an application "at a bad time").
//
// This package provides the primitive error operators; the weberr package
// applies them through the interaction grammar.
package humanerr

import (
	"math/rand"
	"strings"

	"github.com/dslab-epfl/warr/internal/command"
)

// TypoKind enumerates the single-keystroke typo models.
type TypoKind int

// Typo kinds.
const (
	// Substitution replaces a character with a keyboard-adjacent one
	// (fat-finger model).
	Substitution TypoKind = iota + 1
	// Omission drops a character.
	Omission
	// Insertion inserts a keyboard-adjacent character.
	Insertion
	// Transposition swaps two adjacent characters. Note its Levenshtein
	// distance is 2, which is why distance-1 correctors miss it.
	Transposition
)

func (k TypoKind) String() string {
	switch k {
	case Substitution:
		return "substitution"
	case Omission:
		return "omission"
	case Insertion:
		return "insertion"
	case Transposition:
		return "transposition"
	default:
		return "unknown"
	}
}

// typoMix is the sampling distribution over typo kinds. Transpositions
// are the most common typing slip in transcription studies, and the mix
// determines the Table I spread between distance-1 and distance-2
// correctors.
var typoMix = []struct {
	kind   TypoKind
	weight int
}{
	{Substitution, 30},
	{Omission, 20},
	{Insertion, 10},
	{Transposition, 40},
}

// SampleTypoKind draws a typo kind from the mix.
func SampleTypoKind(rng *rand.Rand) TypoKind {
	total := 0
	for _, m := range typoMix {
		total += m.weight
	}
	n := rng.Intn(total)
	for _, m := range typoMix {
		if n < m.weight {
			return m.kind
		}
		n -= m.weight
	}
	return Substitution
}

// keyboardRows model a US QWERTY layout for adjacency.
var keyboardRows = []string{
	"qwertyuiop",
	"asdfghjkl",
	"zxcvbnm",
}

// AdjacentKeys returns the keys physically adjacent to ch on a QWERTY
// keyboard, in a fixed order (row left, row right, row above, row
// below). Characters outside the letter rows degrade to the fixed slip
// 'x', so the result is never empty — an enumerator can index into it
// deterministically.
func AdjacentKeys(ch byte) []byte {
	for r, row := range keyboardRows {
		i := strings.IndexByte(row, ch)
		if i < 0 {
			continue
		}
		var neighbors []byte
		if i > 0 {
			neighbors = append(neighbors, row[i-1])
		}
		if i < len(row)-1 {
			neighbors = append(neighbors, row[i+1])
		}
		if r > 0 && i < len(keyboardRows[r-1]) {
			neighbors = append(neighbors, keyboardRows[r-1][i])
		}
		if r < len(keyboardRows)-1 && i < len(keyboardRows[r+1]) {
			neighbors = append(neighbors, keyboardRows[r+1][i])
		}
		if len(neighbors) > 0 {
			return neighbors
		}
		break
	}
	// Non-letter characters degrade to a fixed slip.
	return []byte{'x'}
}

// AdjacentKey returns a key physically adjacent to ch on a QWERTY
// keyboard (deterministic given the rng).
func AdjacentKey(rng *rand.Rand, ch byte) byte {
	keys := AdjacentKeys(ch)
	return keys[rng.Intn(len(keys))]
}

// InjectTypoWord applies a typo of the given kind to word at a
// deterministic position drawn from rng. Words shorter than 3 characters
// are returned unchanged (users rarely mistype them, and typos in them
// are not correctable even in principle).
func InjectTypoWord(rng *rand.Rand, word string, kind TypoKind) string {
	if len(word) < 3 {
		return word
	}
	// Keep the first character intact: first-letter typos are rare and
	// disproportionately hard to correct.
	pos := 1 + rng.Intn(len(word)-1)
	switch kind {
	case Substitution:
		return word[:pos] + string(AdjacentKey(rng, word[pos])) + word[pos+1:]
	case Omission:
		return word[:pos] + word[pos+1:]
	case Insertion:
		return word[:pos] + string(AdjacentKey(rng, word[pos])) + word[pos:]
	case Transposition:
		if pos == len(word)-1 {
			pos--
		}
		if pos < 1 {
			return word
		}
		b := []byte(word)
		b[pos], b[pos+1] = b[pos+1], b[pos]
		return string(b)
	default:
		return word
	}
}

// TypoQuery is a query with one injected typo.
type TypoQuery struct {
	Original string
	Typoed   string
	Kind     TypoKind
	// Word is the index of the mistyped word.
	Word int
}

// InjectTypoQuery injects one typo into the longest word of the query
// (ties break toward the earliest), drawing the typo kind from the mix.
// Long words carry the query's meaning, so that is where a typo both
// plausibly lands and measurably matters.
func InjectTypoQuery(rng *rand.Rand, query string) TypoQuery {
	words := strings.Fields(query)
	target := 0
	for i, w := range words {
		if len(w) > len(words[target]) {
			target = i
		}
	}
	kind := SampleTypoKind(rng)
	typoed := InjectTypoWord(rng, words[target], kind)
	// Guarantee the query actually changed; retry with a substitution if
	// the operator degenerated (e.g. transposition of equal letters).
	if typoed == words[target] {
		kind = Substitution
		typoed = InjectTypoWord(rng, words[target], kind)
	}
	out := append([]string(nil), words...)
	out[target] = typoed
	return TypoQuery{
		Original: query,
		Typoed:   strings.Join(out, " "),
		Kind:     kind,
		Word:     target,
	}
}

// ---- trace-level timing errors (paper §V-B) ----

// StripDelays returns a copy of the trace with every elapsed field set to
// zero — the "impatient user" stress mode: commands replay with no wait
// time.
func StripDelays(tr command.Trace) command.Trace {
	out := tr.Clone()
	for i := range out.Commands {
		out.Commands[i].Elapsed = 0
	}
	return out
}

// ScaleDelays multiplies every elapsed field by factor (rounded down),
// modeling users who act faster (factor < 1) or slower (factor > 1).
func ScaleDelays(tr command.Trace, factor float64) command.Trace {
	out := tr.Clone()
	for i := range out.Commands {
		out.Commands[i].Elapsed = int(float64(out.Commands[i].Elapsed) * factor)
	}
	return out
}

// TypoTrace rewrites the typed text of a trace: the sequence of type
// commands targeting the same element has one keystroke perturbed
// according to the typo model. It returns the modified trace and whether
// a typo was injected.
func TypoTrace(rng *rand.Rand, tr command.Trace) (command.Trace, bool) {
	out := tr.Clone()
	// Collect indices of printable type commands.
	var typed []int
	for i, c := range out.Commands {
		if c.Action == command.Type && len(c.Key) == 1 {
			typed = append(typed, i)
		}
	}
	if len(typed) < 3 {
		return out, false
	}
	kind := SampleTypoKind(rng)
	pos := 1 + rng.Intn(len(typed)-1)
	switch kind {
	case Substitution:
		i := typed[pos]
		adj := AdjacentKey(rng, out.Commands[i].Key[0])
		out.Commands[i].Key = string(adj)
		out.Commands[i].Code = int(adj &^ 0x20) // uppercase ASCII as key code
	case Omission:
		i := typed[pos]
		out.Commands = append(out.Commands[:i], out.Commands[i+1:]...)
	case Insertion:
		i := typed[pos]
		dup := out.Commands[i]
		out.Commands = append(out.Commands[:i+1], append([]command.Command{dup}, out.Commands[i+1:]...)...)
	case Transposition:
		if pos == len(typed)-1 {
			pos--
		}
		i, j := typed[pos], typed[pos+1]
		out.Commands[i].Key, out.Commands[j].Key = out.Commands[j].Key, out.Commands[i].Key
		out.Commands[i].Code, out.Commands[j].Code = out.Commands[j].Code, out.Commands[i].Code
	}
	return out, true
}
