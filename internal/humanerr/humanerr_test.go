package humanerr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/dslab-epfl/warr/internal/command"
)

func TestQueries186HasExactly186(t *testing.T) {
	if got := len(Queries186); got != 186 {
		t.Fatalf("corpus has %d queries, want 186 (the paper's workload size)", got)
	}
	seen := map[string]bool{}
	for _, q := range Queries186 {
		if q == "" || strings.TrimSpace(q) != q {
			t.Errorf("malformed query %q", q)
		}
		if seen[q] {
			t.Errorf("duplicate query %q", q)
		}
		seen[q] = true
		if len(strings.Fields(q)) < 2 {
			t.Errorf("query %q has fewer than 2 words; frequent queries are multi-word", q)
		}
	}
}

func TestSampleTypoKindCoversAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := map[TypoKind]int{}
	for i := 0; i < 2000; i++ {
		counts[SampleTypoKind(rng)]++
	}
	for _, k := range []TypoKind{Substitution, Omission, Insertion, Transposition} {
		if counts[k] == 0 {
			t.Errorf("kind %v never sampled", k)
		}
	}
	// Transposition carries the largest weight in the mix.
	if counts[Transposition] <= counts[Insertion] {
		t.Errorf("transposition (%d) should dominate insertion (%d)",
			counts[Transposition], counts[Insertion])
	}
}

func TestAdjacentKeyIsNeighbor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := []string{"qwertyuiop", "asdfghjkl", "zxcvbnm"}
	pos := map[byte][2]int{}
	for r, row := range rows {
		for c := 0; c < len(row); c++ {
			pos[row[c]] = [2]int{r, c}
		}
	}
	for _, ch := range []byte("qwertyuiopasdfghjklzxcvbnm") {
		for i := 0; i < 20; i++ {
			adj := AdjacentKey(rng, ch)
			p, q := pos[ch], pos[adj]
			dr, dc := p[0]-q[0], p[1]-q[1]
			if dr < 0 {
				dr = -dr
			}
			if dc < 0 {
				dc = -dc
			}
			if dr+dc == 0 || dr > 1 || dc > 1 {
				t.Fatalf("AdjacentKey(%c) = %c: not adjacent", ch, adj)
			}
		}
	}
}

func TestInjectTypoWordKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const w = "privacy"
	for i := 0; i < 50; i++ {
		if got := InjectTypoWord(rng, w, Omission); len(got) != len(w)-1 {
			t.Errorf("omission %q -> %q", w, got)
		}
		if got := InjectTypoWord(rng, w, Insertion); len(got) != len(w)+1 {
			t.Errorf("insertion %q -> %q", w, got)
		}
		if got := InjectTypoWord(rng, w, Substitution); len(got) != len(w) {
			t.Errorf("substitution %q -> %q", w, got)
		}
		got := InjectTypoWord(rng, w, Transposition)
		if len(got) != len(w) {
			t.Errorf("transposition %q -> %q", w, got)
		}
	}
}

func TestInjectTypoWordKeepsFirstChar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		kind := SampleTypoKind(rng)
		got := InjectTypoWord(rng, "settings", kind)
		if got[0] != 's' {
			t.Fatalf("first character mutated: %q (kind %v)", got, kind)
		}
	}
}

func TestInjectTypoWordShortWordsUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, w := range []string{"a", "of", ""} {
		if got := InjectTypoWord(rng, w, Substitution); got != w {
			t.Errorf("short word %q mutated to %q", w, got)
		}
	}
}

func TestInjectTypoQueryAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, q := range Queries186 {
		tq := InjectTypoQuery(rng, q)
		if tq.Typoed == tq.Original {
			t.Errorf("no typo injected into %q", q)
		}
		if tq.Original != q {
			t.Errorf("original mangled: %q -> %q", q, tq.Original)
		}
	}
}

func TestInjectTypoQueryTargetsLongestWord(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tq := InjectTypoQuery(rng, "a comparison up")
	if tq.Word != 1 {
		t.Errorf("typo landed on word %d, want the longest (1)", tq.Word)
	}
	words := strings.Fields(tq.Typoed)
	if words[0] != "a" || words[2] != "up" {
		t.Errorf("other words mutated: %q", tq.Typoed)
	}
}

// sampleTrace builds a trace with n printable keystrokes.
func sampleTrace(n int) command.Trace {
	tr := command.Trace{StartURL: "http://app.test/"}
	tr.Commands = append(tr.Commands, command.Command{
		Action: command.Click, XPath: `//input[@id="q"]`, X: 1, Y: 2, Elapsed: 1,
	})
	for i := 0; i < n; i++ {
		ch := byte('a' + i%26)
		tr.Commands = append(tr.Commands, command.Command{
			Action: command.Type, XPath: `//input[@id="q"]`,
			Key: string(ch), Code: int(ch &^ 0x20), Elapsed: 2,
		})
	}
	return tr
}

func TestStripDelaysZeroesEverything(t *testing.T) {
	tr := sampleTrace(5)
	out := StripDelays(tr)
	for i, c := range out.Commands {
		if c.Elapsed != 0 {
			t.Errorf("command %d elapsed = %d", i, c.Elapsed)
		}
	}
	// Original untouched.
	if tr.Commands[0].Elapsed != 1 {
		t.Error("StripDelays mutated its input")
	}
}

func TestScaleDelays(t *testing.T) {
	tr := sampleTrace(3)
	half := ScaleDelays(tr, 0.5)
	for i, c := range half.Commands {
		if c.Elapsed != tr.Commands[i].Elapsed/2 {
			t.Errorf("command %d elapsed = %d, want %d", i, c.Elapsed, tr.Commands[i].Elapsed/2)
		}
	}
	double := ScaleDelays(tr, 2)
	for i, c := range double.Commands {
		if c.Elapsed != tr.Commands[i].Elapsed*2 {
			t.Errorf("command %d elapsed = %d", i, c.Elapsed)
		}
	}
}

func TestTypoTraceChangesKeystrokes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := sampleTrace(10)
	injected := 0
	for i := 0; i < 50; i++ {
		out, ok := TypoTrace(rng, tr)
		if !ok {
			t.Fatal("typo not injected into a 10-keystroke trace")
		}
		injected++
		// The typoed trace differs from the original in content or length.
		if len(out.Commands) == len(tr.Commands) {
			same := true
			for j := range out.Commands {
				if out.Commands[j] != tr.Commands[j] {
					same = false
					break
				}
			}
			if same {
				t.Fatal("TypoTrace returned an identical trace")
			}
		}
	}
	if injected == 0 {
		t.Fatal("no typos injected")
	}
}

func TestTypoTraceTooShort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, ok := TypoTrace(rng, sampleTrace(2)); ok {
		t.Error("typo injected into a 2-keystroke trace")
	}
}

func TestInjectTypoWordProperty(t *testing.T) {
	// Property: for any word and seed, the typoed word differs by at
	// most a bounded edit and keeps the first character.
	f := func(seed int64, raw string) bool {
		word := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' {
				return r
			}
			return 'a' + (r&0xff)%26
		}, raw)
		if len(word) < 3 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		kind := SampleTypoKind(rng)
		got := InjectTypoWord(rng, word, kind)
		if got[0] != word[0] {
			return false
		}
		diff := len(got) - len(word)
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
