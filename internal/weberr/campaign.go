package weberr

import (
	"context"
	"fmt"
	"strings"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/campaign"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// Oracle concludes whether the application behaved correctly under an
// erroneous trace (§V-A: "Our approach requires an oracle ... a common
// practice in automated testing"). It returns nil for correct behaviour
// and a describing error for a bug. With Parallelism > 1 the oracle is
// invoked from worker goroutines, each with a tab private to its own
// environment, so any oracle that only inspects its arguments is safe.
type Oracle func(tab *browser.Tab, res *replayer.Result) error

// ConsoleOracle flags any error-level console output — the signal that
// exposed the Google Sites uninitialized-variable bug (§V-C).
func ConsoleOracle(tab *browser.Tab, res *replayer.Result) error {
	if errs := tab.ConsoleErrors(); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Message
		}
		return fmt.Errorf("console errors: %s", strings.Join(msgs, "; "))
	}
	return nil
}

// Finding is one bug exposed by an injected error: the injection, the
// erroneous trace, and what the oracle observed.
type Finding struct {
	Injection Injection
	Trace     command.Trace
	Observed  error
}

// Report summarizes an error-injection campaign.
type Report struct {
	// Generated counts erroneous traces produced from the grammar.
	Generated int
	// Replayed counts traces actually replayed.
	Replayed int
	// Pruned counts traces skipped by prefix-failure pruning.
	Pruned int
	// Skipped counts traces the campaign's context cancelled: never
	// started, or stopped mid-replay before a judgeable end.
	Skipped int
	// ReplayFailures counts traces whose replay could not complete
	// (commands unresolvable after the injected error).
	ReplayFailures int
	// Findings are the oracle-detected bugs, in trace-generation order.
	Findings []Finding
}

// CampaignOptions configure RunNavigationCampaign and RunTimingCampaign.
type CampaignOptions struct {
	Inject InjectOptions
	// Oracle defaults to ConsoleOracle.
	Oracle Oracle
	// Replayer options for each replay; Pacing defaults to PaceRecorded.
	Replayer replayer.Options
	// DisablePruning turns off prefix-failure pruning (ablation; §V-A
	// heuristic 1).
	DisablePruning bool
	// DisablePrefixSharing turns off the executor's trace-trie
	// scheduler and replays every erroneous trace from command zero in
	// its own environment (ablation; sharing preserves campaign
	// results exactly, so this only trades speed).
	DisablePrefixSharing bool
	// MaxTraces bounds the campaign (0 = unlimited).
	MaxTraces int
	// Parallelism is the number of erroneous traces replayed
	// concurrently, each in its own isolated environment; 0 or 1 runs
	// the classic sequential campaign. Because a pruned trace can never
	// produce a finding (its replay would fail at the shared prefix),
	// the set of Findings is the same at any parallelism — only the
	// Replayed/Pruned split may differ.
	Parallelism int
}

// NavigationPlan derives the navigation campaign's work list from the
// grammar: every single-error mutant expanded into an erroneous trace,
// in mutant-generation order, bounded by MaxTraces. The plan is
// deterministic for a given grammar, which is what lets a cancelled
// campaign job resume: the remaining traces are re-derived (or stored)
// and merged with the outcomes already reached.
func NavigationPlan(g *Grammar, opts CampaignOptions) []campaign.Job {
	mutants := Mutants(g, opts.Inject)
	if opts.MaxTraces > 0 && len(mutants) > opts.MaxTraces {
		mutants = mutants[:opts.MaxTraces]
	}
	jobs := make([]campaign.Job, len(mutants))
	for i, m := range mutants {
		jobs[i] = campaign.Job{Trace: m.Trace(), Meta: m.Injection}
	}
	return jobs
}

// NavigationExecutor builds the executor a navigation campaign runs on:
// the oracle applies only to traces that replayed completely — a trace
// broken by its own injected error is a replay failure, not a bug in
// the application, and a context-cancelled partial replay must not be
// judged at all: a half-replayed page could yield findings a completed
// replay would not, breaking the findings-identical-at-any-parallelism
// contract.
func NavigationExecutor(newEnv EnvFactory, opts CampaignOptions) *campaign.Executor {
	oracle := opts.Oracle
	if oracle == nil {
		oracle = ConsoleOracle
	}
	return campaign.New(newEnv, campaign.Options{
		Parallelism:          opts.Parallelism,
		Replayer:             opts.Replayer,
		DisablePruning:       opts.DisablePruning,
		DisablePrefixSharing: opts.DisablePrefixSharing,
		Inspect: func(job campaign.Job, res *replayer.Result, tab *browser.Tab) error {
			if res.Failed > 0 || res.Cancelled {
				return nil
			}
			return oracle(tab, res)
		},
	})
}

// RunNavigationCampaign tests an application against navigation errors:
// it derives every single-error mutant of the grammar, expands each into
// an erroneous trace, replays the traces in fresh environments, and
// applies the oracle (Fig. 5, steps 2-4).
//
// Prefix-failure pruning: when a trace fails to replay at command k, all
// remaining traces sharing that k+1-command prefix are discarded without
// replay — "neither them can be successfully replayed".
func RunNavigationCampaign(newEnv EnvFactory, g *Grammar, opts CampaignOptions) *Report {
	return RunNavigationCampaignContext(context.Background(), newEnv, g, opts)
}

// RunNavigationCampaignContext is RunNavigationCampaign under a context:
// cancelling ctx stops in-flight replays at their next command boundary
// and reports not-yet-started traces as Skipped. It is plan → executor
// → report — exactly the path the jobs engine drives, so there is one
// campaign execution path however it is invoked.
func RunNavigationCampaignContext(ctx context.Context, newEnv EnvFactory, g *Grammar, opts CampaignOptions) *Report {
	exec := NavigationExecutor(newEnv, opts)
	return ReportOutcomes(exec.Execute(ctx, NavigationPlan(g, opts)))
}

// TimingPlan derives the timing campaign's work list: the correct
// trace with no wait time, then at increasingly impatient speeds
// (§V-B).
func TimingPlan(tr command.Trace) []campaign.Job {
	zero, zeroInj := TimingTrace(tr)
	jobs := []campaign.Job{{Trace: zero, Pacing: replayer.PaceNone, Meta: zeroInj}}
	for _, f := range []float64{0.5, 0.25} {
		scaled, inj := ScaledTimingTrace(tr, f)
		jobs = append(jobs, campaign.Job{Trace: scaled, Pacing: replayer.PaceRecorded, Meta: inj})
	}
	return jobs
}

// TimingExecutor builds the executor a timing campaign runs on. Pruning
// is always off: timing variants intentionally replay the same command
// sequence at different speeds, and prefix pruning would let the
// zero-wait variant's failure veto the slower ones. A timing error
// manifests through the oracle even when every command still resolved,
// so the oracle applies to every replay that ran to its end — but never
// to cancelled partial ones.
func TimingExecutor(newEnv EnvFactory, opts CampaignOptions) *campaign.Executor {
	oracle := opts.Oracle
	if oracle == nil {
		oracle = ConsoleOracle
	}
	return campaign.New(newEnv, campaign.Options{
		Parallelism:          opts.Parallelism,
		Replayer:             opts.Replayer,
		DisablePrefixSharing: opts.DisablePrefixSharing,
		DisablePruning:       true,
		Inspect: func(job campaign.Job, res *replayer.Result, tab *browser.Tab) error {
			if res.Cancelled {
				return nil
			}
			return oracle(tab, res)
		},
	})
}

// RunTimingCampaign tests an application against timing errors: the
// correct trace replayed with no wait time and at increasingly impatient
// speeds (§V-B).
func RunTimingCampaign(newEnv EnvFactory, tr command.Trace, opts CampaignOptions) *Report {
	return RunTimingCampaignContext(context.Background(), newEnv, tr, opts)
}

// RunTimingCampaignContext is RunTimingCampaign under a context. Like
// the navigation campaign it is plan → executor → report, the one
// execution path the jobs engine shares.
func RunTimingCampaignContext(ctx context.Context, newEnv EnvFactory, tr command.Trace, opts CampaignOptions) *Report {
	exec := TimingExecutor(newEnv, opts)
	return ReportOutcomes(exec.Execute(ctx, TimingPlan(tr)))
}

// ReportOutcomes aggregates executor outcomes into a campaign report,
// in trace-generation order.
func ReportOutcomes(outcomes []campaign.Outcome) *Report {
	rep := &Report{Generated: len(outcomes)}
	for _, out := range outcomes {
		switch {
		case out.Skipped:
			rep.Skipped++
			continue
		case out.Pruned:
			rep.Pruned++
			continue
		case out.Result.Cancelled:
			// The campaign's context fired mid-session: the trace did
			// not replay to a judgeable end.
			rep.Skipped++
			continue
		}
		rep.Replayed++
		if out.Result.Failed > 0 {
			rep.ReplayFailures++
		}
		if out.Verdict != nil {
			rep.Findings = append(rep.Findings, Finding{
				Injection: out.Job.Meta.(Injection),
				Trace:     out.Job.Trace,
				Observed:  out.Verdict,
			})
		}
	}
	return rep
}
