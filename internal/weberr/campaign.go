package weberr

import (
	"fmt"
	"strings"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// Oracle concludes whether the application behaved correctly under an
// erroneous trace (§V-A: "Our approach requires an oracle ... a common
// practice in automated testing"). It returns nil for correct behaviour
// and a describing error for a bug.
type Oracle func(tab *browser.Tab, res *replayer.Result) error

// ConsoleOracle flags any error-level console output — the signal that
// exposed the Google Sites uninitialized-variable bug (§V-C).
func ConsoleOracle(tab *browser.Tab, res *replayer.Result) error {
	if errs := tab.ConsoleErrors(); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Message
		}
		return fmt.Errorf("console errors: %s", strings.Join(msgs, "; "))
	}
	return nil
}

// Finding is one bug exposed by an injected error: the injection, the
// erroneous trace, and what the oracle observed.
type Finding struct {
	Injection Injection
	Trace     command.Trace
	Observed  error
}

// Report summarizes an error-injection campaign.
type Report struct {
	// Generated counts erroneous traces produced from the grammar.
	Generated int
	// Replayed counts traces actually replayed.
	Replayed int
	// Pruned counts traces skipped by prefix-failure pruning.
	Pruned int
	// ReplayFailures counts traces whose replay could not complete
	// (commands unresolvable after the injected error).
	ReplayFailures int
	// Findings are the oracle-detected bugs.
	Findings []Finding
}

// CampaignOptions configure RunNavigationCampaign.
type CampaignOptions struct {
	Inject InjectOptions
	// Oracle defaults to ConsoleOracle.
	Oracle Oracle
	// Replayer options for each replay; Pacing defaults to PaceRecorded.
	Replayer replayer.Options
	// DisablePruning turns off prefix-failure pruning (ablation; §V-A
	// heuristic 1).
	DisablePruning bool
	// MaxTraces bounds the campaign (0 = unlimited).
	MaxTraces int
}

// RunNavigationCampaign tests an application against navigation errors:
// it derives every single-error mutant of the grammar, expands each into
// an erroneous trace, replays the traces in fresh environments, and
// applies the oracle (Fig. 5, steps 2-4).
//
// Prefix-failure pruning: when a trace fails to replay at command k, all
// remaining traces sharing that k+1-command prefix are discarded without
// replay — "neither them can be successfully replayed".
func RunNavigationCampaign(newEnv EnvFactory, g *Grammar, opts CampaignOptions) *Report {
	oracle := opts.Oracle
	if oracle == nil {
		oracle = ConsoleOracle
	}

	mutants := Mutants(g, opts.Inject)
	rep := &Report{}
	failedPrefixes := make(map[string]bool)

	for _, m := range mutants {
		if opts.MaxTraces > 0 && rep.Generated >= opts.MaxTraces {
			break
		}
		tr := m.Trace()
		rep.Generated++

		if !opts.DisablePruning && hasFailedPrefix(tr, failedPrefixes) {
			rep.Pruned++
			continue
		}

		res, tab := replayOnce(newEnv, tr, opts.Replayer)
		rep.Replayed++

		if res.Failed > 0 {
			rep.ReplayFailures++
			if !opts.DisablePruning {
				if k := firstFailure(res); k >= 0 {
					failedPrefixes[prefixKey(tr, k+1)] = true
				}
			}
			continue
		}
		if err := oracle(tab, res); err != nil {
			rep.Findings = append(rep.Findings, Finding{
				Injection: m.Injection,
				Trace:     tr,
				Observed:  err,
			})
		}
	}
	return rep
}

// RunTimingCampaign tests an application against timing errors: the
// correct trace replayed with no wait time and at increasingly impatient
// speeds (§V-B).
func RunTimingCampaign(newEnv EnvFactory, tr command.Trace, opts CampaignOptions) *Report {
	oracle := opts.Oracle
	if oracle == nil {
		oracle = ConsoleOracle
	}
	rep := &Report{}

	type timingVariant struct {
		trace command.Trace
		inj   Injection
		pace  replayer.Pacing
	}
	zero, zeroInj := TimingTrace(tr)
	variants := []timingVariant{{zero, zeroInj, replayer.PaceNone}}
	for _, f := range []float64{0.5, 0.25} {
		scaled, inj := ScaledTimingTrace(tr, f)
		variants = append(variants, timingVariant{scaled, inj, replayer.PaceRecorded})
	}

	for _, v := range variants {
		rep.Generated++
		ropts := opts.Replayer
		ropts.Pacing = v.pace
		res, tab := replayOnce(newEnv, v.trace, ropts)
		rep.Replayed++
		if err := oracle(tab, res); err != nil {
			rep.Findings = append(rep.Findings, Finding{
				Injection: v.inj,
				Trace:     v.trace,
				Observed:  err,
			})
		}
	}
	return rep
}

// replayOnce replays a trace in a fresh environment.
func replayOnce(newEnv EnvFactory, tr command.Trace, opts replayer.Options) (*replayer.Result, *browser.Tab) {
	b := newEnv()
	r := replayer.New(b, opts)
	res, tab, err := r.Replay(tr)
	if err != nil {
		// Navigation to the start page failed; treat as a total replay
		// failure.
		return &replayer.Result{Failed: len(tr.Commands)}, tab
	}
	return res, tab
}

// firstFailure returns the index of the first failed step (-1 if none).
func firstFailure(res *replayer.Result) int {
	for _, s := range res.Steps {
		if s.Status == replayer.StepFailed {
			return s.Index
		}
	}
	return -1
}

// prefixKey serializes the first n commands of a trace.
func prefixKey(tr command.Trace, n int) string {
	if n > len(tr.Commands) {
		n = len(tr.Commands)
	}
	var b strings.Builder
	for _, c := range tr.Commands[:n] {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// hasFailedPrefix reports whether any known-failed prefix is a prefix of
// tr.
func hasFailedPrefix(tr command.Trace, failed map[string]bool) bool {
	if len(failed) == 0 {
		return false
	}
	var b strings.Builder
	for _, c := range tr.Commands {
		b.WriteString(c.String())
		b.WriteByte('\n')
		if failed[b.String()] {
			return true
		}
	}
	return false
}
