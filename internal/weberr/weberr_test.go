package weberr

import (
	"fmt"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// freshBrowser is the EnvFactory over the simulated applications.
func freshBrowser() *browser.Browser {
	return apps.NewEnv(browser.DeveloperMode).Browser
}

// recordEditSite records the Fig. 4 session.
func recordEditSite(t *testing.T) command.Trace {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	sc := apps.EditSiteScenario()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	if err := sc.Run(env, tab); err != nil {
		t.Fatal(err)
	}
	return rec.Trace()
}

func inferTree(t *testing.T, tr command.Trace) *TaskTree {
	t.Helper()
	tree, err := InferTaskTree(freshBrowser, tr)
	if err != nil {
		t.Fatalf("InferTaskTree: %v", err)
	}
	return tree
}

func TestTaskTreeCoversEveryCommandOnce(t *testing.T) {
	tr := recordEditSite(t)
	tree := inferTree(t, tr)
	leaves := tree.Leaves()
	if len(leaves) != len(tr.Commands) {
		t.Fatalf("tree has %d commands, trace has %d", len(leaves), len(tr.Commands))
	}
	for i, idx := range leaves {
		if idx != i {
			t.Fatalf("depth-first order %v does not match chronological order", leaves)
		}
	}
}

func TestTaskTreeGroupsKeystrokeRuns(t *testing.T) {
	tr := recordEditSite(t)
	tree := inferTree(t, tr)
	// The 12 keystrokes into #content form one element run: a single
	// subtree under the run's first keystroke.
	var runLeader *TaskNode
	tree.Walk(func(n *TaskNode, d int) {
		if n.IsRoot() || tr.Commands[n.Index].Action != command.Type {
			return
		}
		if runLeader == nil || len(n.Children) > len(runLeader.Children) {
			runLeader = n
		}
	})
	if runLeader == nil {
		t.Fatal("no type commands in tree")
	}
	if got := len(runLeader.Children); got != len("Hello world!")-1 {
		t.Errorf("keystroke run has %d followers, want %d", got, len("Hello world!")-1)
	}
}

func TestTaskTreeHasDepth(t *testing.T) {
	tr := recordEditSite(t)
	tree := inferTree(t, tr)
	if d := tree.Depth(); d < 3 {
		t.Errorf("tree depth = %d, want >= 3 (root, subtasks, commands):\n%s", d, tree)
	}
}

func TestGrammarExpansionReproducesTrace(t *testing.T) {
	tr := recordEditSite(t)
	g := FromTaskTree(inferTree(t, tr))
	got := g.Expand()
	if got.StartURL != tr.StartURL {
		t.Errorf("StartURL = %q, want %q", got.StartURL, tr.StartURL)
	}
	if len(got.Commands) != len(tr.Commands) {
		t.Fatalf("expansion has %d commands, want %d", len(got.Commands), len(tr.Commands))
	}
	for i := range got.Commands {
		if got.Commands[i] != tr.Commands[i] {
			t.Fatalf("command %d differs:\n got %s\nwant %s", i, got.Commands[i], tr.Commands[i])
		}
	}
}

func TestMutantsAreSingleError(t *testing.T) {
	tr := recordEditSite(t)
	g := FromTaskTree(inferTree(t, tr))
	mutants := Mutants(g, InjectOptions{})
	if len(mutants) == 0 {
		t.Fatal("no mutants generated")
	}
	for _, m := range mutants {
		// Exactly one rule may differ from the original grammar.
		diff := 0
		for name, r := range m.Grammar.Rules {
			orig := g.Rules[name]
			if len(r.RHS) != len(orig.RHS) {
				diff++
				continue
			}
			for i := range r.RHS {
				if r.RHS[i] != orig.RHS[i] {
					diff++
					break
				}
			}
		}
		if diff != 1 {
			t.Errorf("mutant %s touches %d rules, want exactly 1", m.Injection, diff)
		}
	}
}

func TestMutantCountFarBelowExhaustive(t *testing.T) {
	tr := recordEditSite(t)
	g := FromTaskTree(inferTree(t, tr))
	mutants := Mutants(g, InjectOptions{})
	exhaustive := ExhaustiveReorderCount(len(tr.Commands))
	if exhaustive.IsInt64() && int64(len(mutants)) >= exhaustive.Int64() {
		t.Errorf("grammar-confined injection (%d) not below exhaustive (%s)",
			len(mutants), exhaustive)
	}
	// A 14-command trace alone gives 14! > 87 billion reorderings.
	if exhaustive.Cmp(ExhaustiveReorderCount(13)) <= 0 {
		t.Error("exhaustive count must grow factorially")
	}
}

func TestFocusRulesConfineInjection(t *testing.T) {
	tr := recordEditSite(t)
	g := FromTaskTree(inferTree(t, tr))
	all := Mutants(g, InjectOptions{})
	focused := Mutants(g, InjectOptions{FocusRules: []string{"task"}})
	if len(focused) == 0 || len(focused) >= len(all) {
		t.Errorf("focused = %d, all = %d; focusing must reduce the count", len(focused), len(all))
	}
	for _, m := range focused {
		if m.Injection.Rule != "task" {
			t.Errorf("injection escaped focus: %s", m.Injection)
		}
	}
}

func TestNavigationCampaignRuns(t *testing.T) {
	tr := recordEditSite(t)
	g := FromTaskTree(inferTree(t, tr))
	rep := RunNavigationCampaign(freshBrowser, g, CampaignOptions{
		Inject:    InjectOptions{Kinds: []ErrorKind{Forget, Reorder}},
		MaxTraces: 40,
	})
	if rep.Generated == 0 || rep.Replayed == 0 {
		t.Fatalf("campaign did not run: %+v", rep)
	}
	// Reordering Save before the editor loads, or forgetting the edit
	// click, must surface at least one finding (the §V-C bug class) or a
	// replay failure.
	if len(rep.Findings) == 0 && rep.ReplayFailures == 0 {
		t.Errorf("campaign found nothing: %+v", rep)
	}
}

func TestPruningSkipsSharedFailedPrefixes(t *testing.T) {
	tr := recordEditSite(t)
	g := FromTaskTree(inferTree(t, tr))
	// Substitution errors produce many traces sharing broken prefixes.
	with := RunNavigationCampaign(freshBrowser, g, CampaignOptions{
		Inject: InjectOptions{Kinds: []ErrorKind{Substitute, Forget}},
	})
	without := RunNavigationCampaign(freshBrowser, g, CampaignOptions{
		Inject:         InjectOptions{Kinds: []ErrorKind{Substitute, Forget}},
		DisablePruning: true,
	})
	if with.Generated != without.Generated {
		t.Fatalf("same mutants expected: %d vs %d", with.Generated, without.Generated)
	}
	if with.Pruned == 0 {
		t.Skip("no shared failed prefixes in this grammar; pruning had nothing to do")
	}
	if with.Replayed >= without.Replayed {
		t.Errorf("pruning saved no replays: with=%d without=%d", with.Replayed, without.Replayed)
	}
}

func TestTimingCampaignFindsSitesBug(t *testing.T) {
	tr := recordEditSite(t)
	rep := RunTimingCampaign(freshBrowser, tr, CampaignOptions{})
	if len(rep.Findings) == 0 {
		t.Fatal("timing campaign missed the Google Sites uninitialized-variable bug")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Injection.Kind == Timing && strings.Contains(f.Observed.Error(), "TypeError") {
			found = true
		}
	}
	if !found {
		t.Errorf("findings do not include the TypeError: %+v", rep.Findings)
	}
}

func TestTimingCampaignCleanOnRobustApp(t *testing.T) {
	// Yahoo authentication has no asynchronous window; timing errors
	// must not produce findings.
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	sc := apps.AuthenticateScenario()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	if err := sc.Run(env, tab); err != nil {
		t.Fatal(err)
	}
	rep := RunTimingCampaign(freshBrowser, rec.Trace(), CampaignOptions{})
	if len(rep.Findings) != 0 {
		t.Errorf("robust app produced findings: %+v", rep.Findings)
	}
}

func TestConsoleOracle(t *testing.T) {
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := ConsoleOracle(tab, &replayer.Result{}); err != nil {
		t.Errorf("clean tab flagged: %v", err)
	}
}

func TestTreeStringShowsCommands(t *testing.T) {
	tr := recordEditSite(t)
	tree := inferTree(t, tr)
	s := tree.String()
	if !strings.Contains(s, "click") || !strings.Contains(s, "type") {
		t.Errorf("tree rendering missing commands:\n%s", s)
	}
}

func TestGrammarString(t *testing.T) {
	tr := recordEditSite(t)
	g := FromTaskTree(inferTree(t, tr))
	s := g.String()
	if !strings.Contains(s, "task ->") {
		t.Errorf("grammar rendering missing start rule:\n%s", s)
	}
}

// TestDOMStateOracle drives a campaign with an application-specific
// oracle that inspects the final page instead of the console: after a
// correct edit-site session the view must show the typed text. Timing
// errors break that invariant even in runs where no console error fires
// (e.g. the keystrokes landed in a not-yet-editable editor).
func TestDOMStateOracle(t *testing.T) {
	tr := recordEditSite(t)
	pageSaved := func(tab *browser.Tab, res *replayer.Result) error {
		view := tab.MainFrame().Doc().GetElementByID("view")
		if view == nil {
			return fmt.Errorf("no #view on the final page (url %s)", tab.URL())
		}
		if got := strings.TrimSpace(view.TextContent()); got != "Hello world!" {
			return fmt.Errorf("final page shows %q, want the edited text", got)
		}
		return nil
	}

	// Sanity: the correct trace passes the oracle.
	b := freshBrowser()
	res, tab, err := replayer.New(b, replayer.Options{}).Replay(tr)
	if err != nil || !res.Complete() {
		t.Fatalf("correct replay failed: %v / %+v", err, res)
	}
	if err := pageSaved(tab, res); err != nil {
		t.Fatalf("oracle rejects the correct session: %v", err)
	}

	// The timing campaign with the DOM oracle finds the same bug class.
	rep := RunTimingCampaign(freshBrowser, tr, CampaignOptions{Oracle: pageSaved})
	if len(rep.Findings) == 0 {
		t.Fatal("DOM-state oracle found nothing under timing errors")
	}
}
