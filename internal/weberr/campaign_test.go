package weberr

import (
	"context"
	"sort"
	"sync/atomic"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// recordScenario records any scenario's correct session.
func recordScenario(t *testing.T, sc apps.Scenario) command.Trace {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	if err := sc.Run(env, tab); err != nil {
		t.Fatal(err)
	}
	rec.Detach()
	return rec.Trace()
}

// findingKeys canonicalizes a report's findings for set comparison.
func findingKeys(rep *Report) []string {
	keys := make([]string, len(rep.Findings))
	for i, f := range rep.Findings {
		keys[i] = f.Injection.String() + " => " + f.Observed.Error()
	}
	sort.Strings(keys)
	return keys
}

// TestParallelNavigationCampaignMatchesSequentialOnTableII is the
// determinism contract of the concurrent executor: on every Table II
// scenario, a navigation campaign at Parallelism 8 flags exactly the
// bugs the sequential run flags. The erroneous traces replay with no
// wait time so the timing-bug class produces a non-trivial finding set
// on at least one scenario.
func TestParallelNavigationCampaignMatchesSequentialOnTableII(t *testing.T) {
	totalFindings := 0
	for _, sc := range apps.TableIIScenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			tr := recordScenario(t, sc)
			tree, err := InferTaskTree(freshBrowser, tr)
			if err != nil {
				t.Fatalf("InferTaskTree: %v", err)
			}
			g := FromTaskTree(tree)
			opts := CampaignOptions{
				Replayer: replayer.Options{Pacing: replayer.PaceNone},
			}

			seqOpts := opts
			seqOpts.Parallelism = 1
			seq := RunNavigationCampaign(freshBrowser, g, seqOpts)

			parOpts := opts
			parOpts.Parallelism = 8
			par := RunNavigationCampaign(freshBrowser, g, parOpts)

			if seq.Generated != par.Generated {
				t.Fatalf("generated %d sequential vs %d parallel", seq.Generated, par.Generated)
			}
			sk, pk := findingKeys(seq), findingKeys(par)
			if len(sk) != len(pk) {
				t.Fatalf("findings diverge: %d sequential vs %d parallel\nseq: %v\npar: %v",
					len(sk), len(pk), sk, pk)
			}
			for i := range sk {
				if sk[i] != pk[i] {
					t.Fatalf("finding %d diverges:\nseq: %s\npar: %s", i, sk[i], pk[i])
				}
			}
			// Pruning races may shift the replayed/pruned split, but
			// every generated trace must be accounted for.
			for _, rep := range []*Report{seq, par} {
				if rep.Replayed+rep.Pruned+rep.Skipped != rep.Generated {
					t.Errorf("report does not add up: %+v", rep)
				}
			}
			totalFindings += len(sk)
		})
	}
	if totalFindings == 0 {
		t.Error("no scenario produced findings; the equivalence check is vacuous")
	}
}

func TestParallelTimingCampaignMatchesSequential(t *testing.T) {
	tr := recordScenario(t, apps.EditSiteScenario())
	seq := RunTimingCampaign(freshBrowser, tr, CampaignOptions{Parallelism: 1})
	par := RunTimingCampaign(freshBrowser, tr, CampaignOptions{Parallelism: 3})
	sk, pk := findingKeys(seq), findingKeys(par)
	if len(sk) == 0 {
		t.Fatal("timing campaign missed the Sites bug")
	}
	if len(sk) != len(pk) {
		t.Fatalf("findings diverge: seq %v vs par %v", sk, pk)
	}
	for i := range sk {
		if sk[i] != pk[i] {
			t.Fatalf("finding %d diverges:\nseq: %s\npar: %s", i, sk[i], pk[i])
		}
	}
}

// TestNavigationCampaignCancelledMidReplay cancels the campaign from
// inside a replay session (via an AfterStep hook), so some sessions end
// as cancelled partial replays: they must count as Skipped, never as
// Replayed, and must not be judged by the oracle.
func TestNavigationCampaignCancelledMidReplay(t *testing.T) {
	tr := recordScenario(t, apps.EditSiteScenario())
	g := FromTaskTree(inferTree(t, tr))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var steps atomic.Int32
	opts := CampaignOptions{
		Replayer: replayer.Options{
			Pacing: replayer.PaceNone,
			Hooks: []replayer.Hooks{{
				AfterStep: func(step replayer.Step, tab *browser.Tab) {
					// Let a few traces finish, then pull the plug.
					if steps.Add(1) == 30 {
						cancel()
					}
				},
			}},
		},
	}
	rep := RunNavigationCampaignContext(ctx, freshBrowser, g, opts)
	if rep.Skipped == 0 {
		t.Skip("campaign finished before the cancellation landed")
	}
	if rep.Replayed+rep.Pruned+rep.Skipped != rep.Generated {
		t.Errorf("report does not add up: %+v", rep)
	}
	// Every finding must come from a fully replayed trace: with the
	// oracle guarded, a finding count above the sequential run's total
	// would betray a judged partial replay.
	full := RunNavigationCampaign(freshBrowser, g, CampaignOptions{
		Replayer: replayer.Options{Pacing: replayer.PaceNone},
	})
	if len(rep.Findings) > len(full.Findings) {
		t.Errorf("cancelled campaign flagged %d findings, full campaign only %d",
			len(rep.Findings), len(full.Findings))
	}
}

func TestNavigationCampaignContextCancelled(t *testing.T) {
	tr := recordScenario(t, apps.EditSiteScenario())
	g := FromTaskTree(inferTree(t, tr))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := RunNavigationCampaignContext(ctx, freshBrowser, g, CampaignOptions{Parallelism: 4})
	if rep.Generated == 0 {
		t.Fatal("no traces generated")
	}
	if rep.Skipped != rep.Generated {
		t.Errorf("cancelled campaign: %d skipped of %d generated; %+v", rep.Skipped, rep.Generated, rep)
	}
	if rep.Replayed != 0 || len(rep.Findings) != 0 {
		t.Errorf("cancelled campaign still replayed: %+v", rep)
	}
}
