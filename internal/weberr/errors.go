package weberr

import (
	"fmt"

	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/humanerr"
)

// ErrorKind enumerates the navigation-error operators (§V-A: "the errors
// we are interested in are: forgetting, reordering, and substitution of
// steps") plus the timing-error operator (§V-B).
type ErrorKind int

// Error kinds.
const (
	// Forget makes a rule have no productions (a step is skipped).
	Forget ErrorKind = iota + 1
	// Reorder reorders a rule's right-hand-side productions.
	Reorder
	// Substitute replaces a rule's right-hand-side productions with
	// another rule's (the user performs the wrong step).
	Substitute
	// Timing replays the correct trace with no wait time (§V-B).
	Timing
	// Fuzz marks a finding discovered by the coverage-guided error-model
	// fuzzer (internal/errmodel); Detail carries the serialized mutation
	// program that produced the erroneous trace.
	Fuzz
	// Interleave marks a contention finding discovered by the multi-user
	// interleaving explorer (internal/multiuser); Detail carries the
	// schedule (in its codec form) that reproduces the interleaving.
	Interleave
)

func (k ErrorKind) String() string {
	switch k {
	case Forget:
		return "forget"
	case Reorder:
		return "reorder"
	case Substitute:
		return "substitute"
	case Timing:
		return "timing"
	case Fuzz:
		return "fuzz"
	case Interleave:
		return "interleave"
	default:
		return "unknown"
	}
}

// Injection describes one injected human error.
type Injection struct {
	Kind ErrorKind
	// Rule is the grammar rule the error was confined to ("" for timing
	// errors, which are trace-global).
	Rule string
	// Detail describes the specific mutation, e.g. "swap 1,2".
	Detail string
}

func (in Injection) String() string {
	if in.Rule == "" {
		return in.Kind.String() + ": " + in.Detail
	}
	return fmt.Sprintf("%s@%s: %s", in.Kind, in.Rule, in.Detail)
}

// Mutant is one erroneous grammar, carrying the injection that produced
// it.
type Mutant struct {
	Injection Injection
	Grammar   *Grammar
}

// Trace expands the mutant into an erroneous user-interaction trace.
func (m Mutant) Trace() command.Trace { return m.Grammar.Expand() }

// InjectOptions confine error injection (§V-A: "confines error injection
// to a reduced number of this grammar's rules, and never performs
// cross-rule error injection").
type InjectOptions struct {
	// FocusRules restricts injection to the named rules (nil = all).
	FocusRules []string
	// Kinds restricts the error operators applied (nil = all navigation
	// operators).
	Kinds []ErrorKind
}

func (o InjectOptions) wantsRule(name string) bool {
	if len(o.FocusRules) == 0 {
		return true
	}
	for _, r := range o.FocusRules {
		if r == name {
			return true
		}
	}
	return false
}

func (o InjectOptions) wantsKind(k ErrorKind) bool {
	if len(o.Kinds) == 0 {
		return k != Timing
	}
	for _, w := range o.Kinds {
		if w == k {
			return true
		}
	}
	return false
}

// Mutants enumerates single-error grammars: every error operator applied
// to every (selected) rule, one error per mutant, never across rules.
func Mutants(g *Grammar, opts InjectOptions) []Mutant {
	var out []Mutant
	for _, name := range g.RuleNames() {
		if !opts.wantsRule(name) {
			continue
		}
		rhs := g.Rules[name].RHS

		if opts.wantsKind(Forget) && len(rhs) > 0 {
			m := g.Clone()
			m.Rules[name].RHS = nil
			out = append(out, Mutant{
				Injection: Injection{Kind: Forget, Rule: name, Detail: "drop all productions"},
				Grammar:   m,
			})
		}

		if opts.wantsKind(Reorder) {
			// Adjacent transpositions model a user performing two steps
			// in the wrong order — the dominant reordering slip — and
			// keep the mutant count linear in the rule size.
			for i := 0; i+1 < len(rhs); i++ {
				m := g.Clone()
				mr := m.Rules[name].RHS
				mr[i], mr[i+1] = mr[i+1], mr[i]
				out = append(out, Mutant{
					Injection: Injection{Kind: Reorder, Rule: name,
						Detail: fmt.Sprintf("swap %d,%d", i, i+1)},
					Grammar: m,
				})
			}
		}

		if opts.wantsKind(Substitute) {
			// Replace this rule's productions with each other rule's —
			// the user performs a different step than intended.
			for _, other := range g.RuleNames() {
				if other == name || !opts.wantsRule(other) {
					continue
				}
				m := g.Clone()
				m.Rules[name].RHS = append([]Symbol(nil), g.Rules[other].RHS...)
				out = append(out, Mutant{
					Injection: Injection{Kind: Substitute, Rule: name,
						Detail: "replace productions with " + other + "'s"},
					Grammar: m,
				})
			}
		}
	}
	return out
}

// TimingTrace returns the zero-wait variant of a trace — the "impatient
// user" stress test (§V-B: "We stress test web applications by replaying
// commands with no wait time").
func TimingTrace(tr command.Trace) (command.Trace, Injection) {
	return humanerr.StripDelays(tr), Injection{Kind: Timing, Detail: "no wait time"}
}

// ScaledTimingTrace returns a variant with every delay scaled by factor
// (impatient users at factor < 1).
func ScaledTimingTrace(tr command.Trace, factor float64) (command.Trace, Injection) {
	return humanerr.ScaleDelays(tr, factor), Injection{
		Kind: Timing, Detail: fmt.Sprintf("delays x%g", factor),
	}
}
