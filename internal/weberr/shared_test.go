package weberr

import (
	"fmt"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// reportKey canonicalizes a full campaign report — counts and findings
// in order — for byte-exact comparison between execution strategies.
func reportKey(rep *Report) string {
	key := fmt.Sprintf("generated=%d replayed=%d pruned=%d skipped=%d failures=%d\n",
		rep.Generated, rep.Replayed, rep.Pruned, rep.Skipped, rep.ReplayFailures)
	for _, f := range rep.Findings {
		key += f.Injection.String() + " | " + f.Trace.CommandsText() + " | " + f.Observed.Error() + "\n"
	}
	return key
}

// TestSharedPrefixCampaignMatchesFlatOnTableII is the equivalence
// contract of the trace-trie scheduler: on every Table II scenario,
// for both campaign classes and both pruning settings, the shared-
// prefix execution must produce a byte-identical report — same
// replayed/pruned/failure counts, same findings in the same order —
// as flat execution, which replays every trace from command zero.
func TestSharedPrefixCampaignMatchesFlatOnTableII(t *testing.T) {
	for _, sc := range apps.TableIIScenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			tr := recordScenario(t, sc)
			tree, err := InferTaskTree(freshBrowser, tr)
			if err != nil {
				t.Fatalf("InferTaskTree: %v", err)
			}
			g := FromTaskTree(tree)

			for _, pruning := range []bool{false, true} {
				flat := RunNavigationCampaign(freshBrowser, g, CampaignOptions{
					Replayer:             replayer.Options{Pacing: replayer.PaceNone},
					DisablePruning:       !pruning,
					DisablePrefixSharing: true,
				})
				shared := RunNavigationCampaign(freshBrowser, g, CampaignOptions{
					Replayer:       replayer.Options{Pacing: replayer.PaceNone},
					DisablePruning: !pruning,
				})
				if got, want := reportKey(shared), reportKey(flat); got != want {
					t.Errorf("navigation campaign (pruning=%v): shared-prefix report diverges from flat:\nflat:\n%s\nshared:\n%s",
						pruning, want, got)
				}
			}

			flatTiming := RunTimingCampaign(freshBrowser, tr, CampaignOptions{DisablePrefixSharing: true})
			sharedTiming := RunTimingCampaign(freshBrowser, tr, CampaignOptions{})
			if got, want := reportKey(sharedTiming), reportKey(flatTiming); got != want {
				t.Errorf("timing campaign: shared-prefix report diverges from flat:\nflat:\n%s\nshared:\n%s", want, got)
			}
		})
	}
}

// TestSharedPrefixCampaignParallelWorkersAgree runs the trie scheduler
// with concurrent workers cooperating on one trie — forks handed
// across goroutines, one shared PruneTable — and requires the findings
// to match the sequential trie run. The race detector (CI's race job)
// watches the handoffs.
func TestSharedPrefixCampaignParallelWorkersAgree(t *testing.T) {
	sc := apps.EditSiteScenario()
	tr := recordScenario(t, sc)
	tree, err := InferTaskTree(freshBrowser, tr)
	if err != nil {
		t.Fatalf("InferTaskTree: %v", err)
	}
	g := FromTaskTree(tree)

	seq := RunNavigationCampaign(freshBrowser, g, CampaignOptions{
		Replayer: replayer.Options{Pacing: replayer.PaceNone},
	})
	par := RunNavigationCampaign(freshBrowser, g, CampaignOptions{
		Replayer:    replayer.Options{Pacing: replayer.PaceNone},
		Parallelism: 8,
	})
	if got, want := findingKeys(par), findingKeys(seq); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("parallel trie findings %v, sequential %v", got, want)
	}
	if par.Generated != seq.Generated {
		t.Errorf("parallel generated %d, sequential %d", par.Generated, seq.Generated)
	}
}
