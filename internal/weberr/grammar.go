package weberr

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"github.com/dslab-epfl/warr/internal/command"
)

// Symbol is one right-hand-side element of a grammar rule: either a
// reference to another rule (Rule != "") or a terminal WaRR command
// (identified by its index into the grammar's base trace).
type Symbol struct {
	Rule string
	Cmd  int
}

// IsTerminal reports whether the symbol is a WaRR command.
func (s Symbol) IsTerminal() bool { return s.Rule == "" }

func (s Symbol) String() string {
	if s.IsTerminal() {
		return fmt.Sprintf("cmd%d", s.Cmd)
	}
	return s.Rule
}

// Rule is one production of the user-interaction grammar: an interaction
// step and the ordered sub-steps it expands to (§V-A: "We view an
// interaction step as a grammar rule").
type Rule struct {
	Name string
	RHS  []Symbol
}

// Grammar expresses a correct pattern of interaction with a web
// application. Expanding it recursively from the start rule regenerates
// a user-interaction trace.
type Grammar struct {
	Start string
	Rules map[string]*Rule
	// Trace is the base trace terminals index into.
	Trace command.Trace
}

// FromTaskTree converts an inferred task tree into a grammar: every
// internal node becomes a rule whose right-hand side lists its children
// in order; leaves are terminals.
func FromTaskTree(t *TaskTree) *Grammar {
	g := &Grammar{Start: "task", Rules: map[string]*Rule{}, Trace: t.Trace.Clone()}
	var build func(n *TaskNode) Symbol
	build = func(n *TaskNode) Symbol {
		if len(n.Children) == 0 && !n.IsRoot() {
			return Symbol{Cmd: n.Index}
		}
		name := "task"
		if !n.IsRoot() {
			name = fmt.Sprintf("step%d", n.Index)
		}
		r := &Rule{Name: name}
		if !n.IsRoot() {
			// An internal node is itself a command; it executes before
			// its sub-steps.
			r.RHS = append(r.RHS, Symbol{Cmd: n.Index})
		}
		for _, c := range n.Children {
			r.RHS = append(r.RHS, build(c))
		}
		g.Rules[name] = r
		return Symbol{Rule: name}
	}
	build(t.Root)
	return g
}

// Clone deep-copies the grammar (error injection mutates copies).
func (g *Grammar) Clone() *Grammar {
	out := &Grammar{Start: g.Start, Rules: make(map[string]*Rule, len(g.Rules)), Trace: g.Trace.Clone()}
	for name, r := range g.Rules {
		out.Rules[name] = &Rule{Name: r.Name, RHS: append([]Symbol(nil), r.RHS...)}
	}
	return out
}

// RuleNames returns the rule names in deterministic order.
func (g *Grammar) RuleNames() []string {
	names := make([]string, 0, len(g.Rules))
	for n := range g.Rules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// maxExpansionDepth guards against cycles introduced by substitution
// errors (a rule substituted into itself would otherwise loop forever).
const maxExpansionDepth = 64

// Expand regenerates a user-interaction trace by recursively applying
// the grammar's rules from the start rule.
func (g *Grammar) Expand() command.Trace {
	out := command.Trace{StartURL: g.Trace.StartURL}
	var rec func(sym Symbol, depth int)
	rec = func(sym Symbol, depth int) {
		if depth > maxExpansionDepth {
			return
		}
		if sym.IsTerminal() {
			if sym.Cmd >= 0 && sym.Cmd < len(g.Trace.Commands) {
				out.Commands = append(out.Commands, g.Trace.Commands[sym.Cmd])
			}
			return
		}
		r, ok := g.Rules[sym.Rule]
		if !ok {
			return
		}
		for _, s := range r.RHS {
			rec(s, depth+1)
		}
	}
	rec(Symbol{Rule: g.Start}, 0)
	return out
}

// String renders the grammar, one rule per line.
func (g *Grammar) String() string {
	var b strings.Builder
	for _, name := range g.RuleNames() {
		r := g.Rules[name]
		parts := make([]string, len(r.RHS))
		for i, s := range r.RHS {
			parts[i] = s.String()
		}
		fmt.Fprintf(&b, "%s -> %s\n", name, strings.Join(parts, " "))
	}
	return b.String()
}

// ExhaustiveReorderCount returns n! — the number of traces the naive
// approach ("apply all possible combinations of the above errors to a
// trace") would generate from an n-command trace considering only
// step-reordering errors. The paper's example: a 100-command trace
// yields permutations(100) = 100! tests. Grammar-confined injection
// replaces this with a per-rule enumeration.
func ExhaustiveReorderCount(n int) *big.Int {
	return new(big.Int).MulRange(1, int64(n))
}
