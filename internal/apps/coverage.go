package apps

import (
	"sort"
	"strconv"

	"github.com/dslab-epfl/warr/internal/fnv1a"
	"github.com/dslab-epfl/warr/internal/spell"
	"github.com/dslab-epfl/warr/internal/webapp"
)

// This file implements registry.CoverageSource for the five paper
// applications: the per-app state-transition lane of the replay
// coverage signal. Each state derives one 64-bit mark per distinct
// observable fact — a stored page, a sent mail, a served query, a
// bucketed counter — purely from its current contents, so a forked or
// image-restored world reports exactly the marks of the original.

// coverMark hashes a labelled tuple of strings into one coverage mark.
// A NUL separator between parts keeps ("ab","c") distinct from
// ("a","bc").
func coverMark(parts ...string) uint64 {
	h := fnv1a.Offset
	for _, p := range parts {
		h = fnv1a.AddString(h, p)
		h = fnv1a.AddByte(h, 0)
	}
	return h
}

// countBucket collapses a counter into its power-of-two bucket, so a
// counter contributes O(log n) distinct marks instead of one per value.
func countBucket(n int) string {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return strconv.Itoa(b)
}

// CoverageMarks reports one mark per stored page (name and content)
// plus the bucketed save counter.
func (s *Sites) CoverageMarks() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	marks := make([]uint64, 0, len(s.pages)+1)
	for name, content := range s.pages {
		marks = append(marks, coverMark("sites.page", name, content))
	}
	marks = append(marks, coverMark("sites.saves", countBucket(s.saves)))
	// Note marks only exist once notes do, so worlds that never touch
	// the shared notes list report exactly the marks they always have.
	for i, n := range s.notes {
		marks = append(marks, coverMark("sites.note", strconv.Itoa(i), n))
	}
	return marks
}

// CoverageMarks reports one mark per sent mail.
func (g *GMail) CoverageMarks() []uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	marks := make([]uint64, 0, len(g.sent)+1)
	for _, m := range g.sent {
		marks = append(marks, coverMark("gmail.sent", m.To, m.Subject, m.Body))
	}
	marks = append(marks, coverMark("gmail.count", countBucket(len(g.sent))))
	return marks
}

// CoverageMarks reports the bucketed login counter.
func (y *Yahoo) CoverageMarks() []uint64 {
	y.mu.Lock()
	defer y.mu.Unlock()
	marks := []uint64{coverMark("yahoo.logins", countBucket(y.logins))}
	if y.lastName != "" {
		marks = append(marks, coverMark("yahoo.presence", y.lastName))
	}
	return marks
}

// CoverageMarks reports one mark per spreadsheet cell.
func (d *Docs) CoverageMarks() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	marks := make([]uint64, 0, len(d.cells))
	for name, value := range d.cells {
		marks = append(marks, coverMark("docs.cell", name, value))
	}
	if d.tally > 0 {
		marks = append(marks, coverMark("docs.tally", countBucket(d.tally)))
	}
	return marks
}

// CoverageMarks reports one mark per distinct served query (as typed,
// pre-correction) plus the bucketed query counter, namespaced by the
// engine so Google/Bing/Yahoo! states never collide.
func (e *SearchEngine) CoverageMarks() []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	distinct := make(map[string]struct{}, len(e.queries))
	for _, q := range e.queries {
		distinct[q] = struct{}{}
	}
	qs := make([]string, 0, len(distinct))
	for q := range distinct {
		qs = append(qs, q)
	}
	sort.Strings(qs)
	marks := make([]uint64, 0, len(qs)+1)
	for _, q := range qs {
		marks = append(marks, coverMark("search.query", e.EngineName, q))
	}
	marks = append(marks, coverMark("search.count", e.EngineName, countBucket(len(e.queries))))
	return marks
}

// sessionMarks hashes every live server-side session into one mark —
// id plus sorted values — implementing the per-session coverage lane
// (registry.SessionCoverageSource) for the webapp-based applications.
// Session ids are minted in request order, so the marks are a pure
// function of the request history the world has served.
func sessionMarks(app string, srv *webapp.Server) []uint64 {
	snaps := srv.SessionSnapshots()
	marks := make([]uint64, 0, len(snaps))
	for _, sn := range snaps {
		parts := make([]string, 0, len(sn.Values)+2)
		parts = append(parts, app+".session", sn.ID)
		parts = append(parts, sn.Values...)
		marks = append(marks, coverMark(parts...))
	}
	return marks
}

// SessionCoverageMarks implements registry.SessionCoverageSource.
func (s *Sites) SessionCoverageMarks() []uint64 { return sessionMarks("sites", s.srv) }

// SessionCoverageMarks implements registry.SessionCoverageSource.
func (g *GMail) SessionCoverageMarks() []uint64 { return sessionMarks("gmail", g.srv) }

// SessionCoverageMarks implements registry.SessionCoverageSource.
func (y *Yahoo) SessionCoverageMarks() []uint64 { return sessionMarks("yahoo", y.srv) }

// SessionCoverageMarks implements registry.SessionCoverageSource.
func (d *Docs) SessionCoverageMarks() []uint64 { return sessionMarks("docs", d.srv) }

// SessionCoverageMarks implements registry.SessionCoverageSource.
func (e *SearchEngine) SessionCoverageMarks() []uint64 {
	return sessionMarks("search."+e.EngineName, e.srv)
}

// QueryDictionary exposes the memoized full-corpus spell dictionary the
// search engines correct against. The error-model fuzzer ranks typo
// candidates by whether the mistyped word escapes this dictionary —
// an in-dictionary typo is exactly what the engines auto-correct, so
// out-of-dictionary results explore further.
func QueryDictionary() *spell.Dictionary {
	full, _ := corpusDictionaries()
	return full
}
