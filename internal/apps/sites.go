package apps

import (
	"fmt"
	"net/url"
	"strings"
	"sync"

	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/webapp"
)

// sitesApp is the Google Sites plugin; per-environment state is a
// fresh *Sites.
type sitesApp struct{}

func (sitesApp) Name() string                { return SitesName }
func (sitesApp) Host() string                { return SitesHost }
func (sitesApp) StartURL() string            { return SitesURL }
func (sitesApp) NewState() registry.AppState { return NewSites() }

// SitesApp returns the Google Sites plugin.
func SitesApp() registry.App { return sitesApp{} }

func init() { registry.MustRegisterApp(sitesApp{}) }

// Sites simulates Google Sites: a web hosting application whose pages are
// edited through a rich in-page editor. The editor's functionality loads
// asynchronously after the user clicks "Edit page" — exactly the behaviour
// the paper exploited to find a real bug: "we simulated impatient users
// who do not wait long enough and perform their changes right away. In
// doing so, we caused Google Sites to use an uninitialized JavaScript
// variable" (§V-C).
//
// The page structure matches the Fig. 4 trace: the edit control is
// //div/span[@id="start"], the editable area is //td/div[@id="content"],
// and the save control is //td/div[text()="Save"].
type Sites struct {
	srv *webapp.Server

	mu    sync.Mutex
	pages map[string]string
	saves int
	notes []string
}

// NewSites returns a Sites application with one empty page, "home".
func NewSites() *Sites {
	s := &Sites{pages: map[string]string{"home": ""}}
	srv := webapp.NewServer("sites")
	srv.Handle("/", s.view)
	srv.Handle("/content", s.content)
	srv.Handle("/save", s.save)
	srv.Handle("/notes", s.notesView)
	srv.Handle("/notes/save", s.notesSave)
	s.srv = srv
	return s
}

// Server returns the application's HTTP handler.
func (s *Sites) Server() *webapp.Server { return s.srv }

// Handler implements registry.AppState.
func (s *Sites) Handler() netsim.Handler { return s.srv }

// Snapshot implements registry.Snapshotter: a deep copy carrying the
// same pages, save count, and issued sessions.
func (s *Sites) Snapshot() registry.AppState {
	dup := NewSites()
	s.mu.Lock()
	dup.pages = make(map[string]string, len(s.pages))
	for k, v := range s.pages {
		dup.pages[k] = v
	}
	dup.saves = s.saves
	dup.notes = append([]string(nil), s.notes...)
	s.mu.Unlock()
	dup.srv.CopySessionsFrom(s.srv)
	return dup
}

// Reset restores the one empty "home" page of a fresh instance.
func (s *Sites) Reset() {
	s.mu.Lock()
	s.pages = map[string]string{"home": ""}
	s.saves = 0
	s.notes = nil
	s.mu.Unlock()
	s.srv.ResetSessions()
}

// PageContent returns the stored content of the named page.
func (s *Sites) PageContent(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages[name]
}

// SetPageContent seeds a page (test setup).
func (s *Sites) SetPageContent(name, content string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages[name] = content
}

// Saves returns how many successful saves the server has handled.
func (s *Sites) Saves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saves
}

// view renders the page with its edit chrome. The editor table exists in
// the initial HTML but is hidden and inert: its content area only becomes
// editable once the asynchronously fetched editor module arrives and
// initializes the global `editor` variable.
func (s *Sites) view(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	page := pageName(req)
	s.mu.Lock()
	content := s.pages[page]
	s.mu.Unlock()

	display := content
	if display == "" {
		display = "This page is empty."
	}

	body := fmt.Sprintf(`
<div id="sitehdr"><span id="start">Edit page</span></div>
<div id="view">%s</div>
<table id="editor" style="display:none"><tbody><tr>
<td><div id="content"></div></td>
<td><div>Save</div></td>
</tr></tbody></table>`, htmlEscape(display))

	script := fmt.Sprintf(`
var editor;
function saveNow() {
	var text = editor.textContent;
	window.location = "/save?page=%s&content=" + encodeURIComponent(text);
}
document.getElementById("start").addEventListener("click", function(e) {
	document.getElementById("view").style = "display:none";
	document.getElementById("editor").style = "";
	httpGet("/content?page=%s", function(body, status) {
		var c = document.getElementById("content");
		c.setAttribute("contenteditable", "true");
		c.textContent = body;
		c.focus();
		editor = c;
	});
});
`, page, page)

	html := webapp.Page("My Site - Google Sites", body, script)
	// Wire the Save control. It deliberately has no id — the Fig. 4 trace
	// identifies it by text: //td/div[text()="Save"].
	html = injectSaveHandler(html)
	return netsim.OK(html)
}

// injectSaveHandler adds the inline onclick to the Save div. Kept out of
// the Sprintf template so the markup above stays readable.
func injectSaveHandler(html string) string {
	return replaceOnce(html, "<td><div>Save</div></td>",
		`<td><div onclick="saveNow()">Save</div></td>`)
}

// content serves the raw page text the editor module seeds itself with.
// This is the asynchronous fetch (AJAX over netsim latency) that makes the
// application "more vulnerable to timing errors" (§V-B).
func (s *Sites) content(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	page := pageName(req)
	s.mu.Lock()
	defer s.mu.Unlock()
	return &netsim.Response{Status: 200, ContentType: "text/plain",
		Header: map[string]string{}, Body: s.pages[page]}
}

// save stores the edited content and redirects back to the view.
func (s *Sites) save(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	page := pageName(req)
	content := req.Form.Get("content")
	s.mu.Lock()
	s.pages[page] = content
	s.saves++
	s.mu.Unlock()
	return webapp.Redirect("/?page=" + page)
}

// Notes returns the shared notes list in stored order.
func (s *Sites) Notes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.notes...)
}

// notesView renders the shared notes list of the site. The "Add note"
// control is wired the way many early AJAX apps wired collection
// edits: the server composes the save URL at render time, baking the
// list AS READ NOW into the link — a read-modify-write whose read
// happens when the page renders and whose write happens when the user
// clicks. With one user that is indistinguishable from correct; with
// concurrent users, two renders of the same list make the second save
// overwrite the first user's note (a lost update).
func (s *Sites) notesView(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	me := req.Form.Get("me")
	s.mu.Lock()
	notes := append([]string(nil), s.notes...)
	s.mu.Unlock()

	var list strings.Builder
	if len(notes) == 0 {
		list.WriteString(`<div class="note">No notes yet.</div>`)
	}
	for _, n := range notes {
		fmt.Fprintf(&list, `<div class="note">%s</div>`, htmlEscape(n))
	}

	body := fmt.Sprintf(`
<div id="sitehdr">Site notes</div>
<div id="notes">%s</div>
<div id="addnote" onclick="addNote()">Add note</div>`, list.String())

	saveURL := "/notes/save?me=" + url.QueryEscape(me) +
		"&list=" + url.QueryEscape(strings.Join(notes, ","))
	script := fmt.Sprintf(`
function addNote() {
	window.location = %q;
}
`, saveURL)

	return netsim.OK(webapp.Page("Site notes - Google Sites", body, script))
}

// notesSave stores the submitted list plus the submitter's note —
// trusting the list the page read at render time (the seeded
// lost-update bug; see notesView).
func (s *Sites) notesSave(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	var notes []string
	for _, n := range strings.Split(req.Form.Get("list"), ",") {
		if n != "" {
			notes = append(notes, n)
		}
	}
	if me := req.Form.Get("me"); me != "" {
		notes = append(notes, me)
	}
	s.mu.Lock()
	s.notes = notes
	s.saves++
	s.mu.Unlock()
	return webapp.Redirect("/notes?me=" + url.QueryEscape(req.Form.Get("me")))
}

func pageName(req *netsim.Request) string {
	if p := req.Form.Get("page"); p != "" {
		return p
	}
	return "home"
}
