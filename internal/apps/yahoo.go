package apps

import (
	"fmt"
	"sync"

	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/webapp"
)

// yahooApp is the Yahoo! portal plugin; per-environment state is a
// fresh *Yahoo.
type yahooApp struct{}

func (yahooApp) Name() string                { return YahooName }
func (yahooApp) Host() string                { return YahooHost }
func (yahooApp) StartURL() string            { return YahooURL }
func (yahooApp) NewState() registry.AppState { return NewYahoo() }

// YahooApp returns the Yahoo! portal plugin.
func YahooApp() registry.App { return yahooApp{} }

func init() { registry.MustRegisterApp(yahooApp{}) }

// Yahoo simulates the Yahoo! web portal. Its authentication scenario is a
// plain HTML form — stable ids, standard input elements, a submit button.
// This is the one Table II scenario that even the page-level
// Selenium-IDE-style recorder captures completely (row "Yahoo /
// Authenticate: C, C"), because every user action lands on a form control.
type Yahoo struct {
	srv *webapp.Server

	mu       sync.Mutex
	logins   int
	lastName string
}

// NewYahoo returns a fresh portal.
func NewYahoo() *Yahoo {
	y := &Yahoo{}
	srv := webapp.NewServer("yahoo")
	srv.Handle("/", y.home)
	srv.Handle("/login", y.login)
	srv.Handle("/presence/hello", y.presenceHello)
	srv.Handle("/presence", y.presence)
	y.srv = srv
	return y
}

// Server returns the application's HTTP handler.
func (y *Yahoo) Server() *webapp.Server { return y.srv }

// Handler implements registry.AppState.
func (y *Yahoo) Handler() netsim.Handler { return y.srv }

// Snapshot implements registry.Snapshotter: a deep copy carrying the
// same login count and signed-in sessions.
func (y *Yahoo) Snapshot() registry.AppState {
	dup := NewYahoo()
	y.mu.Lock()
	dup.logins = y.logins
	dup.lastName = y.lastName
	y.mu.Unlock()
	dup.srv.CopySessionsFrom(y.srv)
	return dup
}

// Reset signs every user out and forgets the login count.
func (y *Yahoo) Reset() {
	y.mu.Lock()
	y.logins = 0
	y.lastName = ""
	y.mu.Unlock()
	y.srv.ResetSessions()
}

// Logins returns how many successful sign-ins the portal has handled.
func (y *Yahoo) Logins() int {
	y.mu.Lock()
	defer y.mu.Unlock()
	return y.logins
}

func (y *Yahoo) home(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	user := sess.Get("user")

	var account string
	if user != "" {
		account = fmt.Sprintf(`<div id="welcome">Welcome, %s</div>`, htmlEscape(user))
	} else {
		errMsg := ""
		if req.Form.Get("err") != "" {
			errMsg = `<div id="loginerr">Invalid ID or password.</div>`
		}
		account = fmt.Sprintf(`%s
<form id="login" action="/login" method="POST">
<div>Yahoo! ID <input id="u" name="user"></div>
<div>Password <input id="p" name="pass" type="password"></div>
<input type="submit" name="signin" value="Sign In">
</form>`, errMsg)
	}

	body := fmt.Sprintf(`
<div id="masthead">Yahoo!</div>
<div id="news">
<div class="headline">Markets rally on tech earnings</div>
<div class="headline">World Cup qualifiers begin</div>
<div class="headline">New tablet review roundup</div>
</div>
%s`, account)

	return netsim.OK(webapp.Page("Yahoo!", body, ""))
}

// LastPresence returns the portal-global last-arrival slot (test
// introspection for the seeded session-collision bug).
func (y *Yahoo) LastPresence() string {
	y.mu.Lock()
	defer y.mu.Unlock()
	return y.lastName
}

// presenceHello announces a user. The name is stored in the session —
// and also in a portal-global "last arrival" slot, a classic shortcut
// from the single-user test environment where the two are always the
// same user.
func (y *Yahoo) presenceHello(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	name := req.Form.Get("name")
	sess.Set("pname", name)
	y.mu.Lock()
	y.lastName = name
	y.mu.Unlock()
	return webapp.Redirect("/presence")
}

// presence greets the visitor. The greeting should read the session's
// pname — instead it reads the portal-global slot (the seeded
// session-collision bug): correct whenever the visitor was the last
// arrival, i.e. always in single-user runs, and wrong exactly when
// another user said hello in between.
func (y *Yahoo) presence(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	y.mu.Lock()
	name := y.lastName
	y.mu.Unlock()

	body := fmt.Sprintf(`
<div id="masthead">Yahoo!</div>
<div id="who">Hello, %s</div>`, htmlEscape(name))

	return netsim.OK(webapp.Page("Yahoo! Presence", body, ""))
}

// login accepts any account with a non-empty ID and password.
func (y *Yahoo) login(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	user := req.Form.Get("user")
	pass := req.Form.Get("pass")
	if user == "" || pass == "" {
		return webapp.Redirect("/?err=1")
	}
	sess.Set("user", user)
	y.mu.Lock()
	y.logins++
	y.mu.Unlock()
	return webapp.Redirect("/")
}
