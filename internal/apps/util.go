package apps

import (
	"strings"

	"github.com/dslab-epfl/warr/internal/webapp"
)

// htmlEscape escapes text for safe inclusion in HTML content.
func htmlEscape(s string) string { return webapp.HTMLEscape(s) }

// replaceOnce replaces the first occurrence of old with new and panics if
// old is absent — the templates in this package are static, so a miss is a
// programming error, not input-dependent.
func replaceOnce(s, old, new string) string {
	if !strings.Contains(s, old) {
		panic("apps: template fragment not found: " + old)
	}
	return strings.Replace(s, old, new, 1)
}
