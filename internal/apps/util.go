package apps

import "strings"

var htmlEscaper = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
)

// htmlEscape escapes text for safe inclusion in HTML content.
func htmlEscape(s string) string { return htmlEscaper.Replace(s) }

// replaceOnce replaces the first occurrence of old with new and panics if
// old is absent — the templates in this package are static, so a miss is a
// programming error, not input-dependent.
func replaceOnce(s, old, new string) string {
	if !strings.Contains(s, old) {
		panic("apps: template fragment not found: " + old)
	}
	return strings.Replace(s, old, new, 1)
}
