package apps

import (
	"fmt"
	"hash/fnv"
	"sync"

	"github.com/dslab-epfl/warr/internal/humanerr"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/spell"
	"github.com/dslab-epfl/warr/internal/webapp"
)

// searchApp is one Table I engine plugin; the three engines share the
// *SearchEngine state type and differ in corrector construction.
type searchApp struct {
	name, host, url string
	newState        func() *SearchEngine
}

func (a searchApp) Name() string                { return a.name }
func (a searchApp) Host() string                { return a.host }
func (a searchApp) StartURL() string            { return a.url }
func (a searchApp) NewState() registry.AppState { return a.newState() }

// GoogleSearchApp returns the Google-shaped engine plugin.
func GoogleSearchApp() registry.App {
	return searchApp{GoogleName, GoogleHost, GoogleURL, NewGoogleSearch}
}

// BingSearchApp returns the Bing-shaped engine plugin.
func BingSearchApp() registry.App {
	return searchApp{BingName, BingHost, BingURL, NewBingSearch}
}

// YahooSearchApp returns the Yahoo-shaped engine plugin.
func YahooSearchApp() registry.App {
	return searchApp{YSearchName, YSearchHost, YSearchURL, NewYahooSearch}
}

func init() {
	registry.MustRegisterApp(GoogleSearchApp())
	registry.MustRegisterApp(BingSearchApp())
	registry.MustRegisterApp(YahooSearchApp())
}

// Correcting is the spelling-correction strategy a search engine plugs
// in. Both spell.Corrector (word-level) and spell.QueryCorrector
// (query-level) satisfy it.
type Correcting interface {
	Correct(query string) (corrected string, changed bool)
}

// SearchEngine simulates one of the three Table I web search engines: a
// query form, a results page, and a spelling corrector whose power
// determines how many injected typos the engine detects and fixes.
//
// The three engines differ exactly where real ones do:
//
//   - Google corrects whole queries against its query logs (here, the 186
//     frequent-query corpus), so any single typo snaps back to the
//     original query — 100% in Table I;
//   - Yahoo corrects word-by-word within edit distance 2, but its
//     dictionary misses a slice of rarer terms — 84.4% in the paper;
//   - Bing corrects word-by-word within edit distance 1, so transposition
//     typos (Levenshtein distance 2) escape it — 59.1% in the paper.
type SearchEngine struct {
	// EngineName is the engine's display name ("Google", "Bing", "Yahoo!").
	EngineName string

	srv       *webapp.Server
	corrector Correcting

	mu      sync.Mutex
	queries []string
}

// queryCorpus is the shared frequent-query corpus the engines' language
// models are built from.
var queryCorpus = humanerr.Queries186

// The dictionaries are deterministic functions of the fixed corpus and
// read-only after construction, so they are built once per process and
// shared by every Env. Per-request engine state (served queries) stays
// per-Env; only the immutable language model is shared. Building them
// fresh used to dominate NewEnv — ~40% of a whole replay benchmark
// iteration went into re-sorting the same word list three times.
var (
	dictOnce   sync.Once
	fullDict   *spell.Dictionary
	prunedDict *spell.Dictionary
)

func corpusDictionaries() (full, pruned *spell.Dictionary) {
	dictOnce.Do(func() {
		fullDict = spell.NewDictionary(queryCorpus)
		prunedDict = fullDict.WithoutTail(15)
	})
	return fullDict, prunedDict
}

// NewGoogleSearch returns the Google-shaped engine: query-level
// correction over the full query corpus with a word-level fallback.
func NewGoogleSearch() *SearchEngine {
	dict, _ := corpusDictionaries()
	word := spell.NewCorrector("google-words", dict, 2)
	return newSearchEngine("Google",
		spell.NewQueryCorrector("google", queryCorpus, 4, word))
}

// NewBingSearch returns the Bing-shaped engine: word-level correction
// limited to edit distance 1.
func NewBingSearch() *SearchEngine {
	dict, _ := corpusDictionaries()
	return newSearchEngine("Bing", spell.NewCorrector("bing", dict, 1))
}

// NewYahooSearch returns the Yahoo-shaped engine: word-level correction
// to edit distance 2 over a dictionary missing roughly one word in
// fifteen — the coverage that lands its detection rate in the paper's
// 84.4% band (the calibration is recorded in EXPERIMENTS.md).
func NewYahooSearch() *SearchEngine {
	_, pruned := corpusDictionaries()
	return newSearchEngine("Yahoo!", spell.NewCorrector("yahoo", pruned, 2))
}

func newSearchEngine(name string, c Correcting) *SearchEngine {
	e := &SearchEngine{EngineName: name, corrector: c}
	srv := webapp.NewServer(name)
	srv.Handle("/", e.home)
	srv.Handle("/search", e.search)
	e.srv = srv
	return e
}

// Server returns the engine's HTTP handler.
func (e *SearchEngine) Server() *webapp.Server { return e.srv }

// Handler implements registry.AppState.
func (e *SearchEngine) Handler() netsim.Handler { return e.srv }

// Snapshot implements registry.Snapshotter: a deep copy carrying the
// same served queries and sessions. The corrector is immutable and
// shared, exactly as it already is between environments.
func (e *SearchEngine) Snapshot() registry.AppState {
	dup := newSearchEngine(e.EngineName, e.corrector)
	e.mu.Lock()
	dup.queries = append([]string(nil), e.queries...)
	e.mu.Unlock()
	dup.srv.CopySessionsFrom(e.srv)
	return dup
}

// Reset forgets the served queries; the immutable language model is
// shared process-wide and needs no resetting.
func (e *SearchEngine) Reset() {
	e.mu.Lock()
	e.queries = nil
	e.mu.Unlock()
	e.srv.ResetSessions()
}

// Queries returns the queries the engine has served, in order.
func (e *SearchEngine) Queries() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.queries...)
}

// Correct exposes the engine's corrector (used by fast-path harnesses
// that bypass the browser).
func (e *SearchEngine) Correct(query string) (string, bool) {
	return e.corrector.Correct(query)
}

func (e *SearchEngine) home(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	body := fmt.Sprintf(`
<div id="logo">%s</div>
<form id="sf" action="/search" method="GET">
<input id="q" name="q">
<input type="submit" name="btn" value="Search">
</form>`, htmlEscape(e.EngineName))
	return netsim.OK(webapp.Page(e.EngineName, body, ""))
}

// search renders the results page. When the corrector changed the query,
// the page carries a "Showing results for ..." banner in #corrected — the
// signal the Table I oracle reads.
func (e *SearchEngine) search(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	q := req.Form.Get("q")
	e.mu.Lock()
	e.queries = append(e.queries, q)
	e.mu.Unlock()

	corrected, changed := e.corrector.Correct(q)
	effective := q
	banner := ""
	if changed {
		effective = corrected
		banner = fmt.Sprintf(`<div id="corrected">%s</div>`, htmlEscape(corrected))
	}

	body := fmt.Sprintf(`
<div id="logo">%s</div>
<div id="query">%s</div>
%s
<div id="results">About %d results for %s</div>`,
		htmlEscape(e.EngineName), htmlEscape(q), banner,
		resultCount(effective), htmlEscape(effective))
	return netsim.OK(webapp.Page(e.EngineName+" Search", body, ""))
}

// resultCount is a deterministic pseudo-count so result pages are stable
// across runs.
func resultCount(q string) int {
	h := fnv.New32a()
	// hash.Hash32 Write never fails.
	_, _ = h.Write([]byte(q))
	return int(h.Sum32()%9_000_000) + 1_000_000
}
