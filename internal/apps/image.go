package apps

import (
	"encoding/json"

	"github.com/dslab-epfl/warr/internal/webapp"
)

// Durable-image marshalers (registry.ImageMarshaler) for the five
// evaluation applications. Each serializes exactly what its Snapshot
// copies — the mutable fields plus the issued sessions — as JSON, which
// encodes map keys sorted, so identical states marshal to identical
// bytes (the determinism image digests rely on). GMail's process-global
// id counter is deliberately absent, for the same reason Snapshot
// shares it: real GMail's minted ids never repeat across any two page
// loads, in any process.

type sitesImage struct {
	Pages    map[string]string     `json:"pages"`
	Saves    int                   `json:"saves"`
	Sessions *webapp.SessionsImage `json:"sessions"`
}

// MarshalImage implements registry.ImageMarshaler.
func (s *Sites) MarshalImage() ([]byte, error) {
	s.mu.Lock()
	pages := make(map[string]string, len(s.pages))
	for k, v := range s.pages {
		pages[k] = v
	}
	saves := s.saves
	s.mu.Unlock()
	return json.Marshal(sitesImage{Pages: pages, Saves: saves, Sessions: s.srv.ExportSessions()})
}

// UnmarshalImage implements registry.ImageMarshaler.
func (s *Sites) UnmarshalImage(data []byte) error {
	var img sitesImage
	if err := json.Unmarshal(data, &img); err != nil {
		return err
	}
	s.mu.Lock()
	s.pages = img.Pages
	if s.pages == nil {
		s.pages = map[string]string{}
	}
	s.saves = img.Saves
	s.mu.Unlock()
	if img.Sessions != nil {
		s.srv.ImportSessions(img.Sessions)
	}
	return nil
}

type gmailImage struct {
	Sent     []Mail                `json:"sent"`
	Sessions *webapp.SessionsImage `json:"sessions"`
}

// MarshalImage implements registry.ImageMarshaler.
func (g *GMail) MarshalImage() ([]byte, error) {
	g.mu.Lock()
	sent := append([]Mail(nil), g.sent...)
	g.mu.Unlock()
	return json.Marshal(gmailImage{Sent: sent, Sessions: g.srv.ExportSessions()})
}

// UnmarshalImage implements registry.ImageMarshaler.
func (g *GMail) UnmarshalImage(data []byte) error {
	var img gmailImage
	if err := json.Unmarshal(data, &img); err != nil {
		return err
	}
	g.mu.Lock()
	g.sent = img.Sent
	g.mu.Unlock()
	if img.Sessions != nil {
		g.srv.ImportSessions(img.Sessions)
	}
	return nil
}

type docsImage struct {
	Cells    map[string]string     `json:"cells"`
	Sessions *webapp.SessionsImage `json:"sessions"`
}

// MarshalImage implements registry.ImageMarshaler.
func (d *Docs) MarshalImage() ([]byte, error) {
	d.mu.Lock()
	cells := make(map[string]string, len(d.cells))
	for k, v := range d.cells {
		cells[k] = v
	}
	d.mu.Unlock()
	return json.Marshal(docsImage{Cells: cells, Sessions: d.srv.ExportSessions()})
}

// UnmarshalImage implements registry.ImageMarshaler.
func (d *Docs) UnmarshalImage(data []byte) error {
	var img docsImage
	if err := json.Unmarshal(data, &img); err != nil {
		return err
	}
	d.mu.Lock()
	d.cells = img.Cells
	if d.cells == nil {
		d.cells = map[string]string{}
	}
	d.mu.Unlock()
	if img.Sessions != nil {
		d.srv.ImportSessions(img.Sessions)
	}
	return nil
}

type yahooImage struct {
	Logins   int                   `json:"logins"`
	Sessions *webapp.SessionsImage `json:"sessions"`
}

// MarshalImage implements registry.ImageMarshaler.
func (y *Yahoo) MarshalImage() ([]byte, error) {
	y.mu.Lock()
	logins := y.logins
	y.mu.Unlock()
	return json.Marshal(yahooImage{Logins: logins, Sessions: y.srv.ExportSessions()})
}

// UnmarshalImage implements registry.ImageMarshaler.
func (y *Yahoo) UnmarshalImage(data []byte) error {
	var img yahooImage
	if err := json.Unmarshal(data, &img); err != nil {
		return err
	}
	y.mu.Lock()
	y.logins = img.Logins
	y.mu.Unlock()
	if img.Sessions != nil {
		y.srv.ImportSessions(img.Sessions)
	}
	return nil
}

type searchImage struct {
	Queries  []string              `json:"queries"`
	Sessions *webapp.SessionsImage `json:"sessions"`
}

// MarshalImage implements registry.ImageMarshaler. The corrector is not
// serialized: it is an immutable, deterministic function of the engine
// name, rebuilt by NewState on the restoring side.
func (e *SearchEngine) MarshalImage() ([]byte, error) {
	e.mu.Lock()
	queries := append([]string(nil), e.queries...)
	e.mu.Unlock()
	return json.Marshal(searchImage{Queries: queries, Sessions: e.srv.ExportSessions()})
}

// UnmarshalImage implements registry.ImageMarshaler.
func (e *SearchEngine) UnmarshalImage(data []byte) error {
	var img searchImage
	if err := json.Unmarshal(data, &img); err != nil {
		return err
	}
	e.mu.Lock()
	e.queries = img.Queries
	e.mu.Unlock()
	if img.Sessions != nil {
		e.srv.ImportSessions(img.Sessions)
	}
	return nil
}
