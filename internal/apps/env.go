// Package apps implements the five simulated web applications the
// paper's evaluation runs against: Google Sites (edit a site, §V-C and
// Fig. 4), GMail (compose an email, §VI), the Yahoo! portal
// (authenticate), Google Docs (edit a spreadsheet), and the three web
// search engines of Table I (Google-, Bing-, and Yahoo-shaped typo
// correctors).
//
// Each application is written against the webapp server framework and
// runs real client-side code in the simulated browser. Every application
// reproduces the specific property its experiment needs:
//
//   - Sites loads its editor asynchronously, so an impatient user hits an
//     uninitialized JavaScript variable — the bug the paper found (§V-C);
//   - GMail regenerates element ids on every page load, which is what
//     forces the replayer's progressive XPath relaxation (§IV-C), and its
//     compose flow includes a window drag and contenteditable typing that
//     page-level recorders miss (Table II);
//   - Yahoo authenticates through a plain form, the one scenario both
//     WaRR and the Selenium-IDE-style baseline record completely;
//   - Docs requires a double click to edit a cell and an Enter keystroke
//     whose keyCode the commit handler inspects — replay fidelity
//     therefore depends on the developer-mode browser (§IV-C);
//   - the search engines differ in spelling-correction power, producing
//     the Table I spread.
package apps

import (
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/vclock"
)

// Application hosts. GMail is served over HTTPS, so a Fiddler-style proxy
// observer sees only connection metadata for it (§II).
const (
	SitesHost   = "sites.test"
	GMailHost   = "gmail.test"
	YahooHost   = "yahoo.test"
	DocsHost    = "docs.test"
	GoogleHost  = "google.test"
	BingHost    = "bing.test"
	YSearchHost = "search.yahoo.test"
)

// Start URLs for the recorded scenarios.
const (
	SitesURL   = "http://" + SitesHost + "/"
	GMailURL   = "https://" + GMailHost + "/mail"
	YahooURL   = "http://" + YahooHost + "/"
	DocsURL    = "http://" + DocsHost + "/"
	GoogleURL  = "http://" + GoogleHost + "/"
	BingURL    = "http://" + BingHost + "/"
	YSearchURL = "http://" + YSearchHost + "/"
)

// DefaultAJAXLatency is the one-way network latency for asynchronous
// loads. The Sites editor takes this long to become usable after the Edit
// click — the window in which timing errors strike (§V-B).
const DefaultAJAXLatency = 150 * time.Millisecond

// Env bundles a fresh virtual clock, network, browser, and one instance
// of every simulated application. Each Env is fully isolated; replaying a
// trace in a new Env starts every application from its initial state.
type Env struct {
	Clock   *vclock.Clock
	Network *netsim.Network
	Browser *browser.Browser

	Sites   *Sites
	GMail   *GMail
	Yahoo   *Yahoo
	Docs    *Docs
	Google  *SearchEngine
	Bing    *SearchEngine
	YSearch *SearchEngine
}

// NewEnv builds an isolated environment with all applications registered
// on the network and a browser of the given mode.
func NewEnv(mode browser.Mode) *Env {
	clock := vclock.New()
	network := netsim.New(clock)
	network.SetLatency(DefaultAJAXLatency)

	e := &Env{
		Clock:   clock,
		Network: network,
		Sites:   NewSites(),
		GMail:   NewGMail(),
		Yahoo:   NewYahoo(),
		Docs:    NewDocs(),
		Google:  NewGoogleSearch(),
		Bing:    NewBingSearch(),
		YSearch: NewYahooSearch(),
	}
	network.Register(SitesHost, e.Sites.Server())
	network.Register(GMailHost, e.GMail.Server())
	network.Register(YahooHost, e.Yahoo.Server())
	network.Register(DocsHost, e.Docs.Server())
	network.Register(GoogleHost, e.Google.Server())
	network.Register(BingHost, e.Bing.Server())
	network.Register(YSearchHost, e.YSearch.Server())

	e.Browser = browser.New(clock, network, mode)
	return e
}

// SearchEngines returns the three Table I engines in presentation order.
func (e *Env) SearchEngines() []*SearchEngine {
	return []*SearchEngine{e.Google, e.Bing, e.YSearch}
}
