// Package apps implements the five simulated web applications the
// paper's evaluation runs against: Google Sites (edit a site, §V-C and
// Fig. 4), GMail (compose an email, §VI), the Yahoo! portal
// (authenticate), Google Docs (edit a spreadsheet), and the three web
// search engines of Table I (Google-, Bing-, and Yahoo-shaped typo
// correctors).
//
// Each application is a self-contained registry.App plugin: it
// registers itself into the default registry at init time, and every
// environment instantiates fresh per-Env server state through the
// plugin's NewState factory. Every application reproduces the specific
// property its experiment needs:
//
//   - Sites loads its editor asynchronously, so an impatient user hits an
//     uninitialized JavaScript variable — the bug the paper found (§V-C);
//   - GMail regenerates element ids on every page load, which is what
//     forces the replayer's progressive XPath relaxation (§IV-C), and its
//     compose flow includes a window drag and contenteditable typing that
//     page-level recorders miss (Table II);
//   - Yahoo authenticates through a plain form, the one scenario both
//     WaRR and the Selenium-IDE-style baseline record completely;
//   - Docs requires a double click to edit a cell and an Enter keystroke
//     whose keyCode the commit handler inspects — replay fidelity
//     therefore depends on the developer-mode browser (§IV-C);
//   - the search engines differ in spelling-correction power, producing
//     the Table I spread.
package apps

import (
	"fmt"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/registry"
)

// Application hosts. GMail is served over HTTPS, so a Fiddler-style proxy
// observer sees only connection metadata for it (§II).
const (
	SitesHost   = "sites.test"
	GMailHost   = "gmail.test"
	YahooHost   = "yahoo.test"
	DocsHost    = "docs.test"
	GoogleHost  = "google.test"
	BingHost    = "bing.test"
	YSearchHost = "search.yahoo.test"
)

// Start URLs for the recorded scenarios.
const (
	SitesURL   = "http://" + SitesHost + "/"
	GMailURL   = "https://" + GMailHost + "/mail"
	YahooURL   = "http://" + YahooHost + "/"
	DocsURL    = "http://" + DocsHost + "/"
	GoogleURL  = "http://" + GoogleHost + "/"
	BingURL    = "http://" + BingHost + "/"
	YSearchURL = "http://" + YSearchHost + "/"
)

// DefaultAJAXLatency is the one-way network latency for asynchronous
// loads. The Sites editor takes this long to become usable after the Edit
// click — the window in which timing errors strike (§V-B).
const DefaultAJAXLatency = registry.DefaultAJAXLatency

// Registered application names — the keys scenario oracles resolve
// per-environment state by.
const (
	SitesName   = "Google Sites"
	GMailName   = "GMail"
	YahooName   = "Yahoo"
	DocsName    = "Google Docs"
	GoogleName  = "Google"
	BingName    = "Bing"
	YSearchName = "Yahoo!"
)

// Env is an isolated simulated world hosting registered applications; a
// default environment carries every plugin of the default registry —
// the demo applications above plus anything the process registered.
type Env = registry.Env

// Scenario is one scripted user session against a registered
// application.
type Scenario = registry.Scenario

// NewEnv builds an isolated environment with every registered
// application on the network and a browser of the given mode.
func NewEnv(mode browser.Mode) *Env {
	return registry.MustNewEnv(mode)
}

// BrowserFactory returns a campaign EnvFactory over fresh default
// environments of the given mode — the registry-backed form of
// `func() *browser.Browser { return NewEnv(mode).Browser }`.
func BrowserFactory(mode browser.Mode) func() *browser.Browser {
	return registry.BrowserFactory(mode)
}

// stateIn resolves the typed per-environment state of a registered
// application; demo oracles and experiments use the typed accessors
// below.
func stateIn[T registry.AppState](e *Env, name string) T {
	st := e.MustState(name)
	t, ok := st.(T)
	if !ok {
		panic(fmt.Sprintf("apps: state of %q is %T, not the expected type", name, st))
	}
	return t
}

// SitesIn returns the environment's Google Sites instance.
func SitesIn(e *Env) *Sites { return stateIn[*Sites](e, SitesName) }

// GMailIn returns the environment's GMail instance.
func GMailIn(e *Env) *GMail { return stateIn[*GMail](e, GMailName) }

// YahooIn returns the environment's Yahoo! portal instance.
func YahooIn(e *Env) *Yahoo { return stateIn[*Yahoo](e, YahooName) }

// DocsIn returns the environment's Google Docs instance.
func DocsIn(e *Env) *Docs { return stateIn[*Docs](e, DocsName) }

// GoogleIn returns the environment's Google-shaped search engine.
func GoogleIn(e *Env) *SearchEngine { return stateIn[*SearchEngine](e, GoogleName) }

// BingIn returns the environment's Bing-shaped search engine.
func BingIn(e *Env) *SearchEngine { return stateIn[*SearchEngine](e, BingName) }

// YSearchIn returns the environment's Yahoo-shaped search engine.
func YSearchIn(e *Env) *SearchEngine { return stateIn[*SearchEngine](e, YSearchName) }

// SearchEnginesIn returns the three Table I engines in presentation
// order.
func SearchEnginesIn(e *Env) []*SearchEngine {
	return []*SearchEngine{GoogleIn(e), BingIn(e), YSearchIn(e)}
}
