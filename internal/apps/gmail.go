package apps

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/webapp"
)

// gmailApp is the GMail plugin; per-environment state is a fresh
// *GMail. The id counter stays process-global by design — that is the
// stale-id property itself.
type gmailApp struct{}

func (gmailApp) Name() string                { return GMailName }
func (gmailApp) Host() string                { return GMailHost }
func (gmailApp) StartURL() string            { return GMailURL }
func (gmailApp) NewState() registry.AppState { return NewGMail() }

// GMailApp returns the GMail plugin.
func GMailApp() registry.App { return gmailApp{} }

func init() { registry.MustRegisterApp(gmailApp{}) }

// Mail is one sent email.
type Mail struct {
	To      string
	Subject string
	Body    string
}

// GMail simulates the GMail compose flow. It reproduces the two GMail
// behaviours the paper leans on:
//
//   - "whenever GMail loaded, it generated new id properties for HTML
//     elements" (§IV-C) — every render of /mail mints fresh ids for the
//     interactive elements, so a recorded XPath like
//     //div/div[@id=":17"] is stale at replay time and the replayer must
//     fall back to its keep-only-name relaxation;
//   - composing an email exercises exactly the action mix that separates
//     engine-level from page-level recording in Table II: clicks, typing
//     into a contenteditable message body, and a drag of the compose
//     window header.
//
// GMail is served over HTTPS; a Fiddler-style network observer sees none
// of its request or response bodies (§II).
type GMail struct {
	srv *webapp.Server

	mu   sync.Mutex
	sent []Mail
}

// gmailIDCounter is process-global: like the real GMail's id generator,
// it never repeats — so a page rendered in a replay environment never
// carries the ids recorded in the recording environment, even though both
// environments are otherwise deterministic.
var gmailIDCounter atomic.Int64

func init() { gmailIDCounter.Store(16) } // first minted id is ":17", GMail-style

// NewGMail returns a fresh GMail application.
func NewGMail() *GMail {
	g := &GMail{}
	srv := webapp.NewServer("gmail")
	srv.Handle("/", g.redirectInbox)
	srv.Handle("/mail", g.inbox)
	srv.Handle("/ads", g.ads)
	srv.Handle("/send", g.send)
	g.srv = srv
	return g
}

// Server returns the application's HTTP handler.
func (g *GMail) Server() *webapp.Server { return g.srv }

// Handler implements registry.AppState.
func (g *GMail) Handler() netsim.Handler { return g.srv }

// Snapshot implements registry.Snapshotter: a deep copy carrying the
// same sent mail and issued sessions. The global id counter stays
// shared on purpose — it is process-global precisely because real
// GMail's minted ids never repeat across any two page loads.
func (g *GMail) Snapshot() registry.AppState {
	dup := NewGMail()
	g.mu.Lock()
	dup.sent = append([]Mail(nil), g.sent...)
	g.mu.Unlock()
	dup.srv.CopySessionsFrom(g.srv)
	return dup
}

// Reset drops all sent mail. The global id counter is deliberately not
// reset — real GMail's generated ids never repeat either (§IV-C).
func (g *GMail) Reset() {
	g.mu.Lock()
	g.sent = nil
	g.mu.Unlock()
	g.srv.ResetSessions()
}

// Sent returns a copy of all sent mails.
func (g *GMail) Sent() []Mail {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Mail(nil), g.sent...)
}

// LastSent returns the most recently sent mail and whether one exists.
func (g *GMail) LastSent() (Mail, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.sent) == 0 {
		return Mail{}, false
	}
	return g.sent[len(g.sent)-1], true
}

// nextID mints a fresh element id — the property that invalidates
// recorded XPath expressions at replay time (§IV-C).
func (g *GMail) nextID() string {
	return fmt.Sprintf(":%d", gmailIDCounter.Add(1))
}

func (g *GMail) redirectInbox(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	return webapp.Redirect("/mail")
}

// inbox renders the mailbox with the compose chrome. Interactive elements
// carry freshly minted ids plus stable name attributes; the generated
// script references the minted ids directly, the way GMail's generated
// code does.
func (g *GMail) inbox(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	idCompose := g.nextID()
	idHeader := g.nextID()
	idTo := g.nextID()
	idSubject := g.nextID()
	idBody := g.nextID()
	idSend := g.nextID()

	g.mu.Lock()
	nSent := len(g.sent)
	g.mu.Unlock()

	body := fmt.Sprintf(`
<div id="hdr"><div id="%s" name="compose">Compose</div></div>
<div id="composer" style="display:none">
<div id="%s" name="composehdr" ondrag="event.target.setAttribute('data-dx', '' + event.dx); event.target.setAttribute('data-dy', '' + event.dy)">New Message</div>
<table><tbody>
<tr><td>To</td><td><input id="%s" name="to"></td></tr>
<tr><td>Subject</td><td><input id="%s" name="subject"></td></tr>
</tbody></table>
<div id="%s" name="body" contenteditable="true"></div>
<div id="%s" name="send">Send</div>
</div>
<div id="inbox"><div class="msg">Welcome to GMail</div><div class="msg">Sent mail: %d</div></div>
<iframe src="/ads" name="ads"></iframe>`,
		idCompose, idHeader, idTo, idSubject, idBody, idSend, nSent)

	script := fmt.Sprintf(`
document.getElementById("%s").addEventListener("click", function(e) {
	document.getElementById("composer").style = "";
	document.getElementById("%s").focus();
});
document.getElementById("%s").addEventListener("click", function(e) {
	var to = document.getElementById("%s").value;
	var subj = document.getElementById("%s").value;
	var body = document.getElementById("%s").textContent;
	window.location = "/send?to=" + encodeURIComponent(to) +
		"&subject=" + encodeURIComponent(subj) +
		"&body=" + encodeURIComponent(body);
});
`, idCompose, idTo, idSend, idTo, idSubject, idBody)

	return netsim.OK(webapp.Page("Inbox - GMail", body, script))
}

// ads serves the sidebar iframe (a src-bearing frame, so the webdriver
// master maintains a dedicated client for it).
func (g *GMail) ads(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	return netsim.OK(webapp.Page("Ads", `<div id="ad">Try WaRR today</div>`, ""))
}

// send records the composed mail and returns to the inbox.
func (g *GMail) send(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	m := Mail{
		To:      req.Form.Get("to"),
		Subject: req.Form.Get("subject"),
		Body:    req.Form.Get("body"),
	}
	g.mu.Lock()
	g.sent = append(g.sent, m)
	g.mu.Unlock()
	return webapp.Redirect("/mail")
}
