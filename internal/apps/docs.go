package apps

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/webapp"
)

// docsApp is the Google Docs plugin; per-environment state is a fresh
// *Docs.
type docsApp struct{}

func (docsApp) Name() string                { return DocsName }
func (docsApp) Host() string                { return DocsHost }
func (docsApp) StartURL() string            { return DocsURL }
func (docsApp) NewState() registry.AppState { return NewDocs() }

// DocsApp returns the Google Docs plugin.
func DocsApp() registry.App { return docsApp{} }

func init() { registry.MustRegisterApp(docsApp{}) }

// Docs rows and columns of the simulated spreadsheet.
const (
	DocsRows = 3
	DocsCols = 3
)

// Docs simulates a Google Docs spreadsheet. Editing a cell requires a
// double click (the reason WaRR adds double-click support to
// ChromeDriver, §IV-C: "web applications that use them, such as Google
// Docs, are increasingly popular"), and committing the edit requires an
// Enter keystroke whose keyCode the handler inspects — so replay fidelity
// depends on the developer-mode browser's settable KeyboardEvent
// properties.
type Docs struct {
	srv *webapp.Server

	mu    sync.Mutex
	cells map[string]string
	tally int
}

// docsSeed is the initial sheet: first-column labels only.
func docsSeed() map[string]string {
	return map[string]string{
		"r1c1": "Item",
		"r2c1": "Travel",
		"r3c1": "Office",
	}
}

// NewDocs returns a spreadsheet with seeded first-column labels.
func NewDocs() *Docs {
	d := &Docs{cells: docsSeed()}
	srv := webapp.NewServer("docs")
	srv.Handle("/", d.sheet)
	srv.Handle("/set", d.set)
	srv.Handle("/tally", d.tallyView)
	srv.Handle("/tally/bump", d.tallyBump)
	d.srv = srv
	return d
}

// Server returns the application's HTTP handler.
func (d *Docs) Server() *webapp.Server { return d.srv }

// Handler implements registry.AppState.
func (d *Docs) Handler() netsim.Handler { return d.srv }

// Snapshot implements registry.Snapshotter: a deep copy carrying the
// same cells and issued sessions.
func (d *Docs) Snapshot() registry.AppState {
	dup := NewDocs()
	d.mu.Lock()
	dup.cells = make(map[string]string, len(d.cells))
	for k, v := range d.cells {
		dup.cells[k] = v
	}
	dup.tally = d.tally
	d.mu.Unlock()
	dup.srv.CopySessionsFrom(d.srv)
	return dup
}

// Reset restores the seeded first-column labels of a fresh sheet.
func (d *Docs) Reset() {
	d.mu.Lock()
	d.cells = docsSeed()
	d.tally = 0
	d.mu.Unlock()
	d.srv.ResetSessions()
}

// Cell returns the stored value of the cell named e.g. "r1c2".
func (d *Docs) Cell(name string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cells[name]
}

// Cells returns a sorted snapshot of all non-empty cells as "name=value".
func (d *Docs) Cells() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.cells))
	for k, v := range d.cells {
		out = append(out, k+"="+v)
	}
	sort.Strings(out)
	return out
}

// sheet renders the spreadsheet grid. Each cell is a div (not a form
// control): double-clicking makes it editable, and Enter commits.
func (d *Docs) sheet(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	d.mu.Lock()
	snapshot := make(map[string]string, len(d.cells))
	for k, v := range d.cells {
		snapshot[k] = v
	}
	d.mu.Unlock()

	var rows strings.Builder
	for r := 1; r <= DocsRows; r++ {
		rows.WriteString("<tr>")
		for c := 1; c <= DocsCols; c++ {
			name := fmt.Sprintf("r%dc%d", r, c)
			fmt.Fprintf(&rows,
				`<td><div class="cell" id="%s" ondblclick="editCell('%s')" onkeydown="cellKey(event, '%s')">%s</div></td>`,
				name, name, name, htmlEscape(snapshot[name]))
		}
		rows.WriteString("</tr>")
	}

	body := fmt.Sprintf(`
<div id="title">Budget - Google Docs</div>
<table id="sheet"><tbody>%s</tbody></table>
<div id="hint">Double-click a cell to edit; Enter commits.</div>`, rows.String())

	script := `
function editCell(id) {
	var c = document.getElementById(id);
	c.setAttribute("contenteditable", "true");
	c.textContent = "";
	c.focus();
}
function cellKey(event, id) {
	if (event.keyCode == 13) {
		event.preventDefault();
		var c = document.getElementById(id);
		window.location = "/set?cell=" + id + "&v=" + encodeURIComponent(c.textContent);
	}
}
`
	return netsim.OK(webapp.Page("Budget - Google Docs", body, script))
}

// Tally returns the shared sheet counter.
func (d *Docs) Tally() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tally
}

// tallyView renders the shared sheet counter with a "+1" control. The
// control carries the successor value computed at render time: the
// page reads tally=N and bakes N+1 into the bump URL, so the eventual
// write stores an absolute value derived from a possibly stale read.
// Single-user flows never notice; two users who both render N commit
// N+1 twice and one increment vanishes (the seeded stale-read bug).
func (d *Docs) tallyView(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	d.mu.Lock()
	n := d.tally
	d.mu.Unlock()

	body := fmt.Sprintf(`
<div id="title">Edit tally - Google Docs</div>
<div id="tally">%d</div>
<div id="bump" onclick="bumpTally()">+1</div>`, n)

	script := fmt.Sprintf(`
function bumpTally() {
	window.location = "/tally/bump?v=%d";
}
`, n+1)

	return netsim.OK(webapp.Page("Edit tally - Google Docs", body, script))
}

// tallyBump stores the absolute successor the page computed at render
// time (the seeded stale-read bug; see tallyView).
func (d *Docs) tallyBump(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	v, err := strconv.Atoi(req.Form.Get("v"))
	if err != nil {
		return netsim.NotFound()
	}
	d.mu.Lock()
	d.tally = v
	d.mu.Unlock()
	return webapp.Redirect("/tally")
}

// set commits one cell value and re-renders the sheet.
func (d *Docs) set(req *netsim.Request, sess *webapp.Session) *netsim.Response {
	cell := req.Form.Get("cell")
	if cell == "" {
		return netsim.NotFound()
	}
	d.mu.Lock()
	d.cells[cell] = req.Form.Get("v")
	d.mu.Unlock()
	return webapp.Redirect("/")
}
