package apps

import (
	"fmt"
	"strings"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/dom"
)

// Scenario pacing: users act a few hundred milliseconds apart, matching
// the elapsed-tick magnitudes of the paper's Fig. 4 trace. ActionGap must
// exceed DefaultAJAXLatency so patient users find asynchronously loaded
// functionality ready.
const (
	ActionGap = 300 * time.Millisecond
	KeyGap    = 200 * time.Millisecond
)

// Scenario is one scripted user session: the workloads of Table II and
// the §VI overhead experiment. Run drives hardware-level input against a
// tab already on StartURL; Verify is the test oracle deciding whether the
// session's observable effect happened (it is applied to the recording
// environment and again to any environment a trace was replayed in).
type Scenario struct {
	// Name is the interaction, e.g. "Edit site" (Table II's Scenario column).
	Name string
	// App is the application, e.g. "Google Sites" (Table II's Application column).
	App string
	// StartURL is the page the session starts on.
	StartURL string
	// Run performs the user actions.
	Run func(env *Env, tab *browser.Tab) error
	// Verify checks the session's effect on the application.
	Verify func(env *Env, tab *browser.Tab) error
}

// ScenarioByName resolves a command-line scenario name.
func ScenarioByName(name string) (Scenario, bool) {
	switch name {
	case "edit-site":
		return EditSiteScenario(), true
	case "compose-email":
		return ComposeEmailScenario(), true
	case "authenticate":
		return AuthenticateScenario(), true
	case "edit-spreadsheet":
		return EditSpreadsheetScenario(), true
	default:
		return Scenario{}, false
	}
}

// ScenarioNames lists the names ScenarioByName accepts.
func ScenarioNames() []string {
	return []string{"edit-site", "compose-email", "authenticate", "edit-spreadsheet"}
}

// TableIIScenarios returns the four recording-fidelity scenarios in the
// paper's row order: Google Sites / Edit site, GMail / Compose email,
// Yahoo / Authenticate, Google Docs / Edit spreadsheet.
func TableIIScenarios() []Scenario {
	return []Scenario{
		EditSiteScenario(),
		ComposeEmailScenario(),
		AuthenticateScenario(),
		EditSpreadsheetScenario(),
	}
}

// EditSiteScenario is the Fig. 4 session: open the Google Sites editor,
// wait for it to load, type "Hello world!", and save.
func EditSiteScenario() Scenario {
	const text = "Hello world!"
	return Scenario{
		Name:     "Edit site",
		App:      "Google Sites",
		StartURL: SitesURL,
		Run: func(env *Env, tab *browser.Tab) error {
			if err := clickID(tab, "start"); err != nil {
				return err
			}
			// A patient user waits for the editor to load (ActionGap >
			// the AJAX latency); the editor focuses itself when ready.
			tab.AdvanceTime(ActionGap)
			typeSlow(tab, text, KeyGap)
			tab.AdvanceTime(ActionGap)
			return clickText(tab, "div", "Save")
		},
		Verify: func(env *Env, tab *browser.Tab) error {
			if got := env.Sites.PageContent("home"); got != text {
				return fmt.Errorf("sites page content = %q, want %q", got, text)
			}
			return nil
		},
	}
}

// ComposeEmailScenario composes and sends a GMail message: open the
// composer, fill To and Subject, type the body into the contenteditable
// message area, drag the compose window header aside, and send.
func ComposeEmailScenario() Scenario {
	want := Mail{To: "alice", Subject: "Hi", Body: "Lunch?"}
	return Scenario{
		Name:     "Compose email",
		App:      "GMail",
		StartURL: GMailURL,
		Run: func(env *Env, tab *browser.Tab) error {
			if err := clickName(tab, "compose"); err != nil {
				return err
			}
			tab.AdvanceTime(ActionGap)
			if err := clickName(tab, "to"); err != nil {
				return err
			}
			typeSlow(tab, want.To, KeyGap)
			tab.AdvanceTime(ActionGap)
			if err := clickName(tab, "subject"); err != nil {
				return err
			}
			typeSlow(tab, want.Subject, KeyGap)
			tab.AdvanceTime(ActionGap)
			if err := clickName(tab, "body"); err != nil {
				return err
			}
			typeSlow(tab, want.Body, KeyGap)
			tab.AdvanceTime(ActionGap)
			if err := dragName(tab, "composehdr", 30, 20); err != nil {
				return err
			}
			tab.AdvanceTime(ActionGap)
			return clickName(tab, "send")
		},
		Verify: func(env *Env, tab *browser.Tab) error {
			got, ok := env.GMail.LastSent()
			if !ok {
				return fmt.Errorf("no mail was sent")
			}
			if got != want {
				return fmt.Errorf("sent mail = %+v, want %+v", got, want)
			}
			return nil
		},
	}
}

// AuthenticateScenario signs in to the Yahoo! portal through its login
// form — plain form controls throughout.
func AuthenticateScenario() Scenario {
	const user, pass = "silviu", "epfl2011"
	return Scenario{
		Name:     "Authenticate",
		App:      "Yahoo",
		StartURL: YahooURL,
		Run: func(env *Env, tab *browser.Tab) error {
			if err := clickID(tab, "u"); err != nil {
				return err
			}
			typeSlow(tab, user, KeyGap)
			tab.AdvanceTime(ActionGap)
			if err := clickID(tab, "p"); err != nil {
				return err
			}
			typeSlow(tab, pass, KeyGap)
			tab.AdvanceTime(ActionGap)
			return clickName(tab, "signin")
		},
		Verify: func(env *Env, tab *browser.Tab) error {
			if got := env.Yahoo.Logins(); got != 1 {
				return fmt.Errorf("logins = %d, want 1", got)
			}
			return nil
		},
	}
}

// EditSpreadsheetScenario edits two Google Docs cells: double-click to
// open the cell editor, type the value, commit with Enter.
func EditSpreadsheetScenario() Scenario {
	edits := []struct{ cell, value string }{
		{"r2c2", "42"},
		{"r3c2", "350"},
	}
	return Scenario{
		Name:     "Edit spreadsheet",
		App:      "Google Docs",
		StartURL: DocsURL,
		Run: func(env *Env, tab *browser.Tab) error {
			for _, e := range edits {
				if err := doubleClickID(tab, e.cell); err != nil {
					return err
				}
				tab.AdvanceTime(ActionGap)
				typeSlow(tab, e.value, KeyGap)
				tab.AdvanceTime(KeyGap)
				pressEnter(tab)
				tab.AdvanceTime(ActionGap)
			}
			return nil
		},
		Verify: func(env *Env, tab *browser.Tab) error {
			for _, e := range edits {
				if got := env.Docs.Cell(e.cell); got != e.value {
					return fmt.Errorf("cell %s = %q, want %q", e.cell, got, e.value)
				}
			}
			return nil
		},
	}
}

// SearchScenario types a query into the engine at startURL and submits
// the search — the Table I workload.
func SearchScenario(startURL, query string) Scenario {
	return Scenario{
		Name:     "Search",
		App:      "Search engine",
		StartURL: startURL,
		Run: func(env *Env, tab *browser.Tab) error {
			if err := clickID(tab, "q"); err != nil {
				return err
			}
			typeSlow(tab, query, KeyGap)
			tab.AdvanceTime(KeyGap)
			return clickName(tab, "btn")
		},
		Verify: func(env *Env, tab *browser.Tab) error {
			if el := findFirst(tab, byID("query")); el == nil {
				return fmt.Errorf("no results page rendered")
			}
			return nil
		},
	}
}

// ---- input helpers (hardware-level, so the engine recorder sees them) ----

// nodePredicate selects a target element.
type nodePredicate func(*dom.Node) bool

func byID(id string) nodePredicate {
	return func(n *dom.Node) bool { return n.Type == dom.ElementNode && n.ID() == id }
}

func byName(name string) nodePredicate {
	return func(n *dom.Node) bool {
		return n.Type == dom.ElementNode && n.AttrOr("name", "") == name
	}
}

func byTagText(tag, text string) nodePredicate {
	return func(n *dom.Node) bool {
		return n.Type == dom.ElementNode && n.Tag == tag &&
			strings.TrimSpace(n.TextContent()) == text
	}
}

// locate finds the first matching element across all frames, returning
// its frame.
func locate(tab *browser.Tab, pred nodePredicate) (*browser.Frame, *dom.Node) {
	for _, f := range tab.MainFrame().Descendants() {
		if f.Doc() == nil {
			continue
		}
		if n := f.Doc().Root().Find(pred); n != nil {
			return f, n
		}
	}
	return nil, nil
}

func findFirst(tab *browser.Tab, pred nodePredicate) *dom.Node {
	_, n := locate(tab, pred)
	return n
}

// clickAt clicks the center of the located element through the tab's
// hardware input path.
func clickAt(tab *browser.Tab, pred nodePredicate, what string, double bool) error {
	frame, n := locate(tab, pred)
	if n == nil {
		return fmt.Errorf("apps: no element %s on %s", what, tab.URL())
	}
	x, y, ok := tab.AbsoluteCenter(frame, n)
	if !ok {
		return fmt.Errorf("apps: element %s has no layout box", what)
	}
	if double {
		tab.DoubleClick(x, y)
	} else {
		tab.Click(x, y)
	}
	return nil
}

func clickID(tab *browser.Tab, id string) error {
	return clickAt(tab, byID(id), "#"+id, false)
}

func clickName(tab *browser.Tab, name string) error {
	return clickAt(tab, byName(name), "[name="+name+"]", false)
}

func clickText(tab *browser.Tab, tag, text string) error {
	return clickAt(tab, byTagText(tag, text), tag+"["+text+"]", false)
}

func doubleClickID(tab *browser.Tab, id string) error {
	return clickAt(tab, byID(id), "#"+id, true)
}

// dragName drags the located element by (dx, dy).
func dragName(tab *browser.Tab, name string, dx, dy int) error {
	frame, n := locate(tab, byName(name))
	if n == nil {
		return fmt.Errorf("apps: no element [name=%s] on %s", name, tab.URL())
	}
	x, y, ok := tab.AbsoluteCenter(frame, n)
	if !ok {
		return fmt.Errorf("apps: element [name=%s] has no layout box", name)
	}
	tab.Drag(x, y, dx, dy)
	return nil
}

// typeSlow types text one keystroke per gap of virtual time, giving the
// recorded trace realistic per-key elapsed ticks.
func typeSlow(tab *browser.Tab, text string, gap time.Duration) {
	for _, ch := range text {
		tab.AdvanceTime(gap)
		tab.TypeText(string(ch))
	}
}

func pressEnter(tab *browser.Tab) {
	tab.PressKey(browser.KeyEnter, browser.NamedKeyCode(browser.KeyEnter), browser.KeyMods{})
}
