package apps

import (
	"fmt"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/dom"
	"github.com/dslab-epfl/warr/internal/registry"
)

// Scenario pacing, re-exported from the registry: users act a few
// hundred milliseconds apart, matching the elapsed-tick magnitudes of
// the paper's Fig. 4 trace. ActionGap must exceed DefaultAJAXLatency so
// patient users find asynchronously loaded functionality ready.
const (
	ActionGap = registry.ActionGap
	KeyGap    = registry.KeyGap
)

func init() {
	// The Table II workloads, in the paper's row order. Registered
	// names are what warr-record, warr-replay, and weberr accept.
	registry.MustRegisterScenario("edit-site", EditSiteScenario)
	registry.MustRegisterScenario("compose-email", ComposeEmailScenario)
	registry.MustRegisterScenario("authenticate", AuthenticateScenario)
	registry.MustRegisterScenario("edit-spreadsheet", EditSpreadsheetScenario)
}

// ScenarioByName resolves a command-line scenario name against the
// default registry.
func ScenarioByName(name string) (Scenario, bool) {
	sc, err := registry.LookupScenario(name)
	return sc, err == nil
}

// ScenarioNames lists the registered scenario names.
func ScenarioNames() []string { return registry.ScenarioNames() }

// TableIIScenarios returns the four recording-fidelity scenarios in the
// paper's row order: Google Sites / Edit site, GMail / Compose email,
// Yahoo / Authenticate, Google Docs / Edit spreadsheet.
func TableIIScenarios() []Scenario {
	return []Scenario{
		EditSiteScenario(),
		ComposeEmailScenario(),
		AuthenticateScenario(),
		EditSpreadsheetScenario(),
	}
}

// EditSiteScenario is the Fig. 4 session: open the Google Sites editor,
// wait for it to load, type "Hello world!", and save. The Pause after
// the Edit click is the patient user's wait (ActionGap > the AJAX
// latency); the editor focuses itself when ready.
func EditSiteScenario() Scenario {
	const text = "Hello world!"
	return registry.NewScenario(SitesApp(), "Edit site").
		ClickID("start").
		Pause().
		Type(text).
		Pause().
		ClickText("div", "Save").
		Verify(func(env *Env, tab *browser.Tab) error {
			if got := SitesIn(env).PageContent("home"); got != text {
				return fmt.Errorf("sites page content = %q, want %q", got, text)
			}
			return nil
		}).
		MustBuild()
}

// ComposeEmailScenario composes and sends a GMail message: open the
// composer, fill To and Subject, type the body into the contenteditable
// message area, drag the compose window header aside, and send.
func ComposeEmailScenario() Scenario {
	want := Mail{To: "alice", Subject: "Hi", Body: "Lunch?"}
	return registry.NewScenario(GMailApp(), "Compose email").
		ClickName("compose").
		Pause().
		ClickName("to").
		Type(want.To).
		Pause().
		ClickName("subject").
		Type(want.Subject).
		Pause().
		ClickName("body").
		Type(want.Body).
		Pause().
		DragName("composehdr", 30, 20).
		Pause().
		ClickName("send").
		Verify(func(env *Env, tab *browser.Tab) error {
			got, ok := GMailIn(env).LastSent()
			if !ok {
				return fmt.Errorf("no mail was sent")
			}
			if got != want {
				return fmt.Errorf("sent mail = %+v, want %+v", got, want)
			}
			return nil
		}).
		MustBuild()
}

// AuthenticateScenario signs in to the Yahoo! portal through its login
// form — plain form controls throughout.
func AuthenticateScenario() Scenario {
	const user, pass = "silviu", "epfl2011"
	return registry.NewScenario(YahooApp(), "Authenticate").
		ClickID("u").
		Type(user).
		Pause().
		ClickID("p").
		Type(pass).
		Pause().
		ClickName("signin").
		Verify(func(env *Env, tab *browser.Tab) error {
			if got := YahooIn(env).Logins(); got != 1 {
				return fmt.Errorf("logins = %d, want 1", got)
			}
			return nil
		}).
		MustBuild()
}

// EditSpreadsheetScenario edits two Google Docs cells: double-click to
// open the cell editor, type the value, commit with Enter.
func EditSpreadsheetScenario() Scenario {
	edits := []struct{ cell, value string }{
		{"r2c2", "42"},
		{"r3c2", "350"},
	}
	b := registry.NewScenario(DocsApp(), "Edit spreadsheet")
	for _, e := range edits {
		b.DoubleClickID(e.cell).
			Pause().
			Type(e.value).
			Wait(KeyGap).
			PressEnter().
			Pause()
	}
	return b.Verify(func(env *Env, tab *browser.Tab) error {
		for _, e := range edits {
			if got := DocsIn(env).Cell(e.cell); got != e.value {
				return fmt.Errorf("cell %s = %q, want %q", e.cell, got, e.value)
			}
		}
		return nil
	}).MustBuild()
}

// SearchScenario types a query into the engine at startURL and submits
// the search — the Table I workload, instantiated per engine.
func SearchScenario(startURL, query string) Scenario {
	return registry.NewScenarioAt("Search engine", "Search", startURL).
		ClickID("q").
		Type(query).
		Wait(KeyGap).
		ClickName("btn").
		Verify(func(env *Env, tab *browser.Tab) error {
			if el := findFirst(tab, byID("query")); el == nil {
				return fmt.Errorf("no results page rendered")
			}
			return nil
		}).
		MustBuild()
}

// ---- input helpers over the registry's locators and steps ----
//
// These drive the tab's hardware input path directly (so the engine
// recorder sees them) without going through a Scenario; the package's
// tests use them to script partial or deliberately erroneous sessions.

func byID(id string) registry.Locator     { return registry.ByID(id) }
func byName(name string) registry.Locator { return registry.ByName(name) }

// locate finds the first matching element across all frames, returning
// its frame.
func locate(tab *browser.Tab, l registry.Locator) (*browser.Frame, *dom.Node) {
	return registry.Locate(tab, l)
}

func findFirst(tab *browser.Tab, l registry.Locator) *dom.Node {
	return registry.Find(tab, l)
}

func clickID(tab *browser.Tab, id string) error {
	return registry.ClickStep{Target: registry.ByID(id)}.Do(nil, tab)
}

func clickName(tab *browser.Tab, name string) error {
	return registry.ClickStep{Target: registry.ByName(name)}.Do(nil, tab)
}

func clickText(tab *browser.Tab, tag, text string) error {
	return registry.ClickStep{Target: registry.ByTagText(tag, text)}.Do(nil, tab)
}

// dragName drags the located element by (dx, dy).
func dragName(tab *browser.Tab, name string, dx, dy int) error {
	return registry.DragStep{Target: registry.ByName(name), DX: dx, DY: dy}.Do(nil, tab)
}

func pressEnter(tab *browser.Tab) {
	// KeyStep.Do cannot fail for a known key.
	_ = registry.KeyStep{Key: browser.KeyEnter}.Do(nil, tab)
}
