package apps

import (
	"strings"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
)

// runScenario navigates a fresh tab to the scenario's start page, runs
// it, and applies its oracle.
func runScenario(t *testing.T, sc Scenario) (*Env, *browser.Tab) {
	t.Helper()
	env := NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatalf("Navigate(%q): %v", sc.StartURL, err)
	}
	if err := sc.Run(env, tab); err != nil {
		t.Fatalf("scenario %q run: %v", sc.Name, err)
	}
	if err := sc.Verify(env, tab); err != nil {
		t.Fatalf("scenario %q verify: %v", sc.Name, err)
	}
	return env, tab
}

func TestEditSiteScenario(t *testing.T) {
	env, tab := runScenario(t, EditSiteScenario())
	if got := SitesIn(env).Saves(); got != 1 {
		t.Errorf("saves = %d, want 1", got)
	}
	// After the save redirect the view shows the new content.
	view := findFirst(tab, byID("view"))
	if view == nil || strings.TrimSpace(view.TextContent()) != "Hello world!" {
		t.Errorf("view shows %q", view.TextContent())
	}
	if errs := tab.ConsoleErrors(); len(errs) != 0 {
		t.Errorf("console errors: %+v", errs)
	}
}

func TestEditSiteImpatientUserHitsUninitializedVariable(t *testing.T) {
	// The §V-C bug: clicking Save before the asynchronously loaded editor
	// initializes the `editor` variable raises a TypeError.
	env := NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(SitesURL); err != nil {
		t.Fatal(err)
	}
	if err := clickID(tab, "start"); err != nil {
		t.Fatal(err)
	}
	// No wait: the editor module (DefaultAJAXLatency away) has not
	// arrived when the user saves.
	if err := clickText(tab, "div", "Save"); err != nil {
		t.Fatal(err)
	}
	errs := tab.ConsoleErrors()
	if len(errs) == 0 {
		t.Fatal("expected a console error from the uninitialized editor variable")
	}
	if !strings.Contains(errs[0].Message, "TypeError") {
		t.Errorf("console error = %q, want a TypeError", errs[0].Message)
	}
	if got := SitesIn(env).Saves(); got != 0 {
		t.Errorf("saves = %d, want 0 (the save must fail)", got)
	}
}

func TestEditSitePatientUserSucceeds(t *testing.T) {
	env := NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(SitesURL); err != nil {
		t.Fatal(err)
	}
	if err := clickID(tab, "start"); err != nil {
		t.Fatal(err)
	}
	tab.AdvanceTime(2 * DefaultAJAXLatency)
	// The loaded editor is seeded and focused; typing goes to #content.
	tab.TypeText("ok")
	if err := clickText(tab, "div", "Save"); err != nil {
		t.Fatal(err)
	}
	if got := SitesIn(env).PageContent("home"); got != "ok" {
		t.Errorf("content = %q, want %q", got, "ok")
	}
}

func TestSitesEditorSeedsExistingContent(t *testing.T) {
	env := NewEnv(browser.UserMode)
	SitesIn(env).SetPageContent("home", "old text")
	tab := env.Browser.NewTab()
	if err := tab.Navigate(SitesURL); err != nil {
		t.Fatal(err)
	}
	if err := clickID(tab, "start"); err != nil {
		t.Fatal(err)
	}
	tab.AdvanceTime(2 * DefaultAJAXLatency)
	content := findFirst(tab, byID("content"))
	if content == nil || content.TextContent() != "old text" {
		t.Fatalf("editor seeded with %q", content.TextContent())
	}
}

func TestComposeEmailScenario(t *testing.T) {
	env, _ := runScenario(t, ComposeEmailScenario())
	mails := GMailIn(env).Sent()
	if len(mails) != 1 {
		t.Fatalf("sent %d mails, want 1", len(mails))
	}
}

func TestGMailRegeneratesIDs(t *testing.T) {
	env := NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(GMailURL); err != nil {
		t.Fatal(err)
	}
	_, first := locate(tab, byName("compose"))
	if first == nil {
		t.Fatal("no compose button")
	}
	firstID := first.ID()

	tab2 := env.Browser.NewTab()
	if err := tab2.Navigate(GMailURL); err != nil {
		t.Fatal(err)
	}
	_, second := locate(tab2, byName("compose"))
	if second == nil {
		t.Fatal("no compose button on second load")
	}
	if firstID == second.ID() {
		t.Errorf("compose button id stable across loads (%q); GMail must regenerate ids", firstID)
	}
}

func TestGMailDragMarksHeader(t *testing.T) {
	env := NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(GMailURL); err != nil {
		t.Fatal(err)
	}
	if err := clickName(tab, "compose"); err != nil {
		t.Fatal(err)
	}
	if err := dragName(tab, "composehdr", 30, 20); err != nil {
		t.Fatal(err)
	}
	_, hdr := locate(tab, byName("composehdr"))
	if got := hdr.AttrOr("data-dx", ""); got != "30" {
		t.Errorf("data-dx = %q, want 30", got)
	}
	if got := hdr.AttrOr("data-dy", ""); got != "20" {
		t.Errorf("data-dy = %q, want 20", got)
	}
}

func TestAuthenticateScenario(t *testing.T) {
	_, tab := runScenario(t, AuthenticateScenario())
	welcome := findFirst(tab, byID("welcome"))
	if welcome == nil {
		t.Fatal("no welcome banner after sign-in")
	}
	if got := strings.TrimSpace(welcome.TextContent()); got != "Welcome, silviu" {
		t.Errorf("welcome = %q", got)
	}
}

func TestYahooRejectsEmptyPassword(t *testing.T) {
	env := NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(YahooURL); err != nil {
		t.Fatal(err)
	}
	if err := clickID(tab, "u"); err != nil {
		t.Fatal(err)
	}
	tab.TypeText("silviu")
	if err := clickName(tab, "signin"); err != nil {
		t.Fatal(err)
	}
	if YahooIn(env).Logins() != 0 {
		t.Error("login accepted with empty password")
	}
	if findFirst(tab, byID("loginerr")) == nil {
		t.Error("no error banner shown")
	}
}

func TestEditSpreadsheetScenario(t *testing.T) {
	env, _ := runScenario(t, EditSpreadsheetScenario())
	if got := DocsIn(env).Cell("r2c2"); got != "42" {
		t.Errorf("r2c2 = %q", got)
	}
}

func TestDocsSingleClickDoesNotEdit(t *testing.T) {
	env := NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(DocsURL); err != nil {
		t.Fatal(err)
	}
	if err := clickID(tab, "r2c2"); err != nil { // single click only
		t.Fatal(err)
	}
	tab.TypeText("99")
	pressEnter(tab)
	if got := DocsIn(env).Cell("r2c2"); got != "" {
		t.Errorf("r2c2 = %q, want unchanged empty value", got)
	}
}

func TestDocsKeepsOtherCells(t *testing.T) {
	env, _ := runScenario(t, EditSpreadsheetScenario())
	if got := DocsIn(env).Cell("r1c1"); got != "Item" {
		t.Errorf("r1c1 = %q, want seeded label", got)
	}
	if got := len(DocsIn(env).Cells()); got < 5 {
		t.Errorf("cells = %d, want seeded + edited", got)
	}
}

func TestSearchEnginesCorrectTypos(t *testing.T) {
	env := NewEnv(browser.UserMode)
	const original = "facebook privacy settings"
	const typoed = "facebook pricavy settings" // transposition, distance 2

	cases := []struct {
		engine    *SearchEngine
		wantFixed bool
	}{
		{GoogleIn(env), true},  // query-level correction
		{BingIn(env), false},   // distance-1 corrector misses transpositions
		{YSearchIn(env), true}, // distance-2 word corrector
	}
	for _, c := range cases {
		got, changed := c.engine.Correct(typoed)
		fixed := changed && got == original
		if fixed != c.wantFixed {
			t.Errorf("%s.Correct(%q) = %q (changed=%v), want fixed=%v",
				c.engine.EngineName, typoed, got, changed, c.wantFixed)
		}
	}
}

func TestSearchScenarioRendersCorrectionBanner(t *testing.T) {
	env := NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	sc := SearchScenario(GoogleURL, "facebook pricavy settings")
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatal(err)
	}
	if err := sc.Run(env, tab); err != nil {
		t.Fatal(err)
	}
	banner := findFirst(tab, byID("corrected"))
	if banner == nil {
		t.Fatal("no correction banner")
	}
	if got := strings.TrimSpace(banner.TextContent()); got != "facebook privacy settings" {
		t.Errorf("banner = %q", got)
	}
	if qs := GoogleIn(env).Queries(); len(qs) != 1 || qs[0] != "facebook pricavy settings" {
		t.Errorf("served queries = %v", qs)
	}
}

func TestSearchKnownQueryNotChanged(t *testing.T) {
	env := NewEnv(browser.UserMode)
	for _, e := range SearchEnginesIn(env) {
		got, changed := e.Correct("facebook privacy settings")
		if changed {
			t.Errorf("%s changed a correct query to %q", e.EngineName, got)
		}
	}
}

func TestEnvIsolation(t *testing.T) {
	a := NewEnv(browser.UserMode)
	b := NewEnv(browser.UserMode)
	SitesIn(a).SetPageContent("home", "A")
	if got := SitesIn(b).PageContent("home"); got != "" {
		t.Errorf("env B sees env A's state: %q", got)
	}
	a.Clock.Advance(time.Hour)
	if !b.Clock.Now().Before(a.Clock.Now()) {
		t.Error("clocks are shared between envs")
	}
}
