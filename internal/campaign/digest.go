package campaign

import (
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/fnv1a"
)

// Incremental per-command digests, chained FNV-1a over two independent
// 64-bit lanes. One digest value identifies one trace prefix; chaining
// the next command into a prefix digest costs no allocation — the
// command's fields are hashed in place, never serialized to a string.
// The PruneTable keys its failed prefixes on these digests, and the
// trie scheduler keys its nodes on the very same values, so the two
// agree by construction on what "the same prefix" means.
//
// Two lanes because pruning acts on digest equality alone: a collision
// would silently prune a healthy trace, which can never become a
// finding. One 64-bit lane makes that a 2^-64 event per pair; the
// second independent lane (different offset, reversed field order)
// pushes it to 2^-128 — beyond any campaign size. The trie itself
// never trusts digests: node matching compares full commands.

// prefixDigest identifies one trace prefix.
type prefixDigest struct {
	h1, h2 uint64
}

// digestSeed is the digest of the empty prefix. The second lane starts
// from a distinct basis so the lanes never coincide by construction.
func digestSeed() prefixDigest {
	return prefixDigest{h1: fnv1a.Offset, h2: fnv1a.AddByte(fnv1a.Offset, 0x9e)}
}

// hashString chains a field with a terminator, so "ab"+"c" and
// "a"+"bc" chain differently.
func hashString(h uint64, s string) uint64 {
	return fnv1a.AddByte(fnv1a.AddString(h, s), 0xff)
}

func hashInt(h uint64, v int) uint64 {
	return fnv1a.AddUint64(h, uint64(int64(v)))
}

// commandDigest chains one command into a prefix digest. Every field
// that Command.String() serializes participates, so two commands digest
// equal exactly when their serializations are equal.
func commandDigest(d prefixDigest, c command.Command) prefixDigest {
	return prefixDigest{
		h1: commandLane(d.h1, c, false),
		h2: commandLane(d.h2, c, true),
	}
}

// commandLane hashes the command's fields into one lane; the second
// lane visits them in reverse so the lanes stay independent.
func commandLane(h uint64, c command.Command, reverse bool) uint64 {
	if reverse {
		h = hashInt(h, c.Elapsed)
	} else {
		h = hashInt(h, int(c.Action))
		h = hashString(h, c.XPath)
	}
	switch c.Action {
	case command.Click, command.DoubleClick:
		h = hashInt(h, c.X)
		h = hashInt(h, c.Y)
	case command.Drag:
		h = hashInt(h, c.DX)
		h = hashInt(h, c.DY)
	case command.Type:
		h = hashString(h, c.Key)
		h = hashInt(h, c.Code)
	}
	if reverse {
		h = hashString(h, c.XPath)
		h = hashInt(h, int(c.Action))
	} else {
		h = hashInt(h, c.Elapsed)
	}
	return h
}

// tracePrefixDigest digests the first n commands of tr (all of them
// when n exceeds the trace).
func tracePrefixDigest(tr command.Trace, n int) prefixDigest {
	if n > len(tr.Commands) {
		n = len(tr.Commands)
	}
	d := digestSeed()
	for _, c := range tr.Commands[:n] {
		d = commandDigest(d, c)
	}
	return d
}
