package campaign

import (
	"context"
	"sync"

	"github.com/dslab-epfl/warr/internal/replayer"
)

// The shared-prefix scheduler: instead of replaying every job's trace
// from command zero in its own environment, it walks the trace trie
// (trie.go), executing each shared prefix exactly once. At a branch
// point it checkpoints the live replay — Session.Fork deep-copies the
// whole environment, server state included — and continues each
// divergent suffix from the checkpoint.
//
// Outcomes are engineered to match flat sequential execution exactly:
//
//   - a job whose trace ends mid-path is finalized with a snapshot of
//     the results so far, and its oracle inspects the page at that
//     instant — the same page a lone replay of that trace ends on;
//   - when a command fails with pruning enabled, the minimum-index job
//     through that prefix replays to its end (as the first flat job to
//     hit the failure would) and every other job sharing the failed
//     prefix is pruned, which is precisely what the PruneTable would
//     have done to them one by one;
//   - a halted prefix (lost active client) finalizes every job through
//     it with the identical partial result a lone replay would produce.
//
// When forking is unavailable — an EnvFactory that hands out browsers
// with no world attached, or an application state without a
// Snapshotter — each divergent subtree falls back to the classic flat
// path: a fresh environment and a full replay per job (the documented
// Reset+replay fallback of the Snapshotter contract).
type sharedRun struct {
	e        *Executor
	ctx      context.Context
	jobs     []Job
	outcomes []Outcome

	// sem bounds concurrently running sessions beyond the caller's own
	// goroutine; nil means fully sequential.
	sem chan struct{}
	wg  sync.WaitGroup
}

// tryExecuteShared runs the jobs through the trie scheduler when it
// can help. ok == false means the caller should use the flat path:
// sharing is disabled, nothing overlaps, or replay hooks are attached
// (hooks observe every step of every job in flat mode; a shared prefix
// would fire them once instead of once per job).
func (e *Executor) tryExecuteShared(ctx context.Context, jobs []Job) ([]Outcome, bool) {
	if e.opts.DisablePrefixSharing || len(jobs) < 2 || len(e.opts.Replayer.Hooks) > 0 {
		return nil, false
	}
	defaultPacing := e.opts.Replayer.Pacing
	if defaultPacing == 0 {
		defaultPacing = replayer.PaceRecorded
	}
	roots := buildTrie(jobs, defaultPacing)
	if sharedCommands(roots, jobs) == 0 {
		return nil, false
	}

	r := &sharedRun{e: e, ctx: ctx, jobs: jobs, outcomes: make([]Outcome, len(jobs))}
	if e.opts.Parallelism > 1 {
		r.sem = make(chan struct{}, e.opts.Parallelism-1)
	}
	var inline []*trieRoot
	for _, root := range roots {
		root := root
		if !r.trySpawn(func() { r.runRoot(root) }) {
			inline = append(inline, root)
		}
	}
	for _, root := range inline {
		r.runRoot(root)
	}
	r.wg.Wait()
	return r.outcomes, true
}

// trySpawn runs fn on a worker goroutine if a parallelism slot is
// free; it reports whether fn was taken.
func (r *sharedRun) trySpawn(fn func()) bool {
	if r.sem == nil {
		return false
	}
	select {
	case r.sem <- struct{}{}:
	default:
		return false
	}
	r.wg.Add(1)
	go func() {
		defer func() {
			<-r.sem
			r.wg.Done()
		}()
		fn()
	}()
	return true
}

// runRoot opens a fresh environment for one trie root and executes its
// subtree.
func (r *sharedRun) runRoot(root *trieRoot) {
	if r.ctx.Err() != nil {
		r.skipSubtree(root.node)
		return
	}
	ropts := r.e.opts.Replayer
	ropts.Pacing = root.key.pacing
	b := r.e.newEnv()
	s, err := replayer.New(b, ropts).NewSession(r.ctx, r.jobs[root.node.minJob()].Trace)
	if err != nil {
		// The start page failed to load. Every job of this root starts
		// on the same page, so each gets the same total-failure outcome
		// a flat run would produce in its own environment.
		for _, ji := range root.node.collectJobs(nil) {
			out := Outcome{Index: ji, Job: r.jobs[ji], Err: err,
				Result: &replayer.Result{Failed: len(r.jobs[ji].Trace.Commands)}}
			if r.e.opts.Inspect != nil {
				out.Verdict = r.e.opts.Inspect(out.Job, out.Result, s.Tab())
			}
			if r.e.opts.Coverage != nil {
				out.Coverage = r.e.opts.Coverage(out.Result, s.Tab())
			}
			r.outcomes[ji] = out
		}
		return
	}
	r.runSubtree(s, root.node, root.node.minJob(), false)
}

// runSubtree consumes sess — positioned right after node's command —
// finalizing jobs that end at node and descending into its children.
// curJob is the job whose trace the session currently carries (the
// scheduler retargets only when the subtree minimum changes, because
// a per-edge prefix re-validation would turn long mutant traces
// quadratic). failed records whether a command already failed on this
// path (only possible with pruning disabled; with pruning on, a
// failure ends trie descent immediately).
func (r *sharedRun) runSubtree(sess *replayer.Session, node *trieNode, curJob int, failed bool) {
	units := branchUnits(node)
	n := len(units)
	for i, ji := range node.terminal {
		// The last job finalized on a session that ends here owns the
		// session's live result; everyone else gets a snapshot (the
		// session keeps appending for them).
		last := n == 0 && i == len(node.terminal)-1
		r.finalizeShared(ji, sess, !last)
	}
	if n == 0 {
		return
	}
	// Checkpoint: units beyond the first get forks of the current
	// state (taken before unit 0 mutates it); unit 0 continues in the
	// live session, so a branch with n divergent continuations costs
	// n-1 forks.
	forks := make([]*replayer.Session, n)
	forks[0] = sess
	for i := 1; i < n; i++ {
		f, err := sess.ForkFor(r.jobs[units[i].min()].Trace)
		if err != nil {
			// Unforkable world: this subtree replays flat — fresh
			// environment, full trace — job by job.
			r.flatUnit(units[i])
			continue
		}
		forks[i] = f
	}
	for i := 1; i < n; i++ {
		if forks[i] == nil {
			continue
		}
		f := forks[i]
		u := units[i]
		if r.trySpawn(func() { r.runUnit(f, node, u, u.min(), failed) }) {
			forks[i] = nil
		}
	}
	r.runUnit(sess, node, units[0], curJob, failed)
	for i := 1; i < n; i++ {
		if forks[i] != nil {
			r.runUnit(forks[i], node, units[i], units[i].min(), failed)
		}
	}
}

// branchUnit is one divergent continuation below a node: a materialized
// child subtree, or a parked single-job tail.
type branchUnit struct {
	child *trieNode // nil for a tail
	tail  int
}

func (u branchUnit) min() int {
	if u.child != nil {
		return u.child.minJob()
	}
	return u.tail
}

// branchUnits merges a node's children and tails in minimum-job order —
// the order flat sequential execution would first reach each divergent
// continuation. Both inputs are already sorted by minimum.
func branchUnits(node *trieNode) []branchUnit {
	if len(node.children) == 0 && len(node.tails) == 0 {
		return nil
	}
	units := make([]branchUnit, 0, len(node.children)+len(node.tails))
	ci, ti := 0, 0
	for ci < len(node.children) || ti < len(node.tails) {
		switch {
		case ci == len(node.children):
			units = append(units, branchUnit{tail: node.tails[ti]})
			ti++
		case ti == len(node.tails) || node.children[ci].minJob() < node.tails[ti]:
			units = append(units, branchUnit{child: node.children[ci]})
			ci++
		default:
			units = append(units, branchUnit{tail: node.tails[ti]})
			ti++
		}
	}
	return units
}

// runUnit dispatches one divergent continuation.
func (r *sharedRun) runUnit(sess *replayer.Session, node *trieNode, u branchUnit, curJob int, failed bool) {
	if u.child != nil {
		r.descend(sess, u.child, curJob, failed)
		return
	}
	r.runTail(sess, node, u.tail, curJob, failed)
}

// runTail replays a parked tail: job t's remaining commands below node,
// shared with nobody. Prefix digests chain incrementally for the same
// pruning checks and failure recording the node walk performs — the
// flat path's Prunable over the whole trace, probed as each prefix is
// about to execute.
func (r *sharedRun) runTail(sess *replayer.Session, node *trieNode, t int, curJob int, failed bool) {
	r.runTailFrom(sess, node.digest, node.depth, t, curJob, failed)
}

// runTailFrom is runTail starting from an explicit prefix position: h
// is the chained digest of the first startDepth commands of job t's
// trace, which sess has already replayed. Distributed shards use it
// directly — a single-job shard resumes from a branch-point image with
// no trie node to anchor to.
func (r *sharedRun) runTailFrom(sess *replayer.Session, h prefixDigest, startDepth int, t int, curJob int, failed bool) {
	if t != curJob {
		if err := sess.Retarget(r.jobs[t].Trace); err != nil {
			r.outcomes[t] = r.e.runJob(r.ctx, t, r.jobs[t])
			return
		}
	}
	for _, cmd := range r.jobs[t].Trace.Commands[startDepth:] {
		h = commandDigest(h, cmd)
		if !r.e.opts.DisablePruning && !failed && r.e.prune.prunableDigest(h) {
			r.outcomes[t] = Outcome{Index: t, Job: r.jobs[t], Pruned: true}
			return
		}
		step, ok := sess.Next()
		if !ok {
			// Cancelled mid-tail (the trace cannot be exhausted here):
			// the job keeps its partial result, as a flat in-flight job
			// would.
			r.finalizeShared(t, sess, false)
			return
		}
		if step.Status == replayer.StepFailed {
			if !r.e.opts.DisablePruning {
				if !failed {
					r.e.prune.recordDigest(h)
				}
				sess.Run()
				r.finalizeShared(t, sess, false)
				return
			}
			if sess.Result().Halted {
				r.finalizeShared(t, sess, false)
				return
			}
			failed = true
		}
	}
	r.finalizeShared(t, sess, false)
}

// descend executes child's command on sess and continues into child's
// subtree.
func (r *sharedRun) descend(sess *replayer.Session, child *trieNode, curJob int, failed bool) {
	if !r.e.opts.DisablePruning && r.e.prune.prunableDigest(child.digest) {
		// A recorded failed prefix: every job through this node shares
		// it, exactly the set Prunable would discard one by one.
		r.pruneSubtree(child, -1)
		return
	}
	min := child.minJob()
	if min != curJob {
		// The subtree minimum changed (a lower-indexed job ended at an
		// ancestor): point the session at the new minimum's trace. The
		// trie construction guarantees the replayed prefix matches, so
		// this validates at most once per minimum change rather than
		// per edge.
		if err := sess.Retarget(r.jobs[min].Trace); err != nil {
			// Cannot happen; fall back to flat execution rather than
			// lose the jobs.
			r.flatSubtree(child)
			return
		}
	}

	step, ok := sess.Next()
	if !ok {
		if sess.Result().Cancelled {
			// Mid-campaign cancellation: the executing job keeps its
			// partial result (as an in-flight flat job would); the
			// rest of the subtree never started.
			r.finalize(min, sess)
			r.skipSubtreeExcept(child, min)
			return
		}
		// Defensive: the trie never descends past the minimum job's
		// trace, and halts surface through a failed step below.
		r.skipSubtree(child)
		return
	}

	if step.Status == replayer.StepFailed {
		if !r.e.opts.DisablePruning {
			// First failure on this path. The minimum-index job is the
			// first flat job to reach it: it records the failed prefix
			// and still replays to its end; every other job in the
			// subtree shares the failed prefix and is pruned.
			if !failed {
				r.e.prune.recordDigest(child.digest)
			}
			sess.Run()
			r.finalizeShared(min, sess, false)
			r.pruneSubtree(child, min)
			return
		}
		if sess.Result().Halted {
			// The driver lost its active client: a lone replay of any
			// job through this prefix would halt with exactly this
			// partial result.
			r.finalizeSubtree(child, sess)
			return
		}
		failed = true
	}
	r.runSubtree(sess, child, min, failed)
}

// flatUnit replays one unforkable divergent continuation flat.
func (r *sharedRun) flatUnit(u branchUnit) {
	if u.child != nil {
		r.flatSubtree(u.child)
		return
	}
	r.outcomes[u.tail] = r.e.runJob(r.ctx, u.tail, r.jobs[u.tail])
}

// finalize snapshots sess's result as job ji's outcome and runs the
// campaign oracle on the session's page.
func (r *sharedRun) finalize(ji int, sess *replayer.Session) {
	r.finalizeShared(ji, sess, true)
}

// finalizeShared is finalize with control over result ownership: the
// last job finalized on a session takes the live Result without a deep
// copy — the majority of jobs end exactly where their session ends.
func (r *sharedRun) finalizeShared(ji int, sess *replayer.Session, snapshot bool) {
	r.outcomes[ji] = r.e.finalizeOutcome(ji, r.jobs[ji], sess, snapshot)
}

// finalizeOutcome builds a job's outcome from sess's result — a deep
// copy when snapshot is set, the live Result otherwise — and runs the
// campaign oracle on the session's page. The shard planner shares it
// with the trie scheduler so spine-finalized jobs get outcomes of the
// exact same shape.
func (e *Executor) finalizeOutcome(ji int, job Job, sess *replayer.Session, snapshot bool) Outcome {
	res := sess.Result()
	if snapshot {
		res = res.Clone()
	}
	out := Outcome{Index: ji, Job: job, Result: res}
	if e.opts.Inspect != nil {
		out.Verdict = e.opts.Inspect(out.Job, out.Result, sess.Tab())
	}
	if e.opts.Coverage != nil {
		out.Coverage = e.opts.Coverage(out.Result, sess.Tab())
	}
	return out
}

// finalizeSubtree gives every not-yet-finalized job of the subtree a
// copy of sess's (halted) result.
func (r *sharedRun) finalizeSubtree(node *trieNode, sess *replayer.Session) {
	for _, ji := range node.collectJobs(nil) {
		r.finalize(ji, sess)
	}
}

// pruneSubtree marks the subtree's jobs pruned, except the one that
// replayed the failure (-1 prunes all).
func (r *sharedRun) pruneSubtree(node *trieNode, except int) {
	for _, ji := range node.collectJobs(nil) {
		if ji == except {
			continue
		}
		r.outcomes[ji] = Outcome{Index: ji, Job: r.jobs[ji], Pruned: true}
	}
}

// skipSubtree marks the subtree's jobs as never started.
func (r *sharedRun) skipSubtree(node *trieNode) {
	r.skipSubtreeExcept(node, -1)
}

func (r *sharedRun) skipSubtreeExcept(node *trieNode, except int) {
	for _, ji := range node.collectJobs(nil) {
		if ji == except {
			continue
		}
		r.outcomes[ji] = Outcome{Index: ji, Job: r.jobs[ji], Skipped: true}
	}
}

// flatSubtree replays every job of the subtree through the classic
// flat path — fresh environment, full trace, shared PruneTable — the
// documented fallback when the environment cannot fork.
func (r *sharedRun) flatSubtree(node *trieNode) {
	for _, ji := range node.collectJobs(nil) {
		r.outcomes[ji] = r.e.runJob(r.ctx, ji, r.jobs[ji])
	}
}
