package campaign

import (
	"fmt"
	"testing"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/image"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// storeImager returns an Imager writing branch-point images into store,
// keyed by content digest — the same wiring the distrib coordinator
// uses.
func storeImager(store *image.Store) Imager {
	return func(sess *replayer.Session) (string, error) {
		env, ok := sess.Tab().Browser().World().(*registry.Env)
		if !ok {
			return "", fmt.Errorf("session browser has no registry world")
		}
		img, err := image.Capture(env, sess, image.Header{})
		if err != nil {
			return "", err
		}
		return store.Add(img)
	}
}

// runShardsLocally simulates a worker fleet: every shard restores its
// branch-point image into a brand-new executor (fresh environment
// factory, fresh prune table — exactly what a separate process gets)
// and the outcomes merge back into the plan. Meta is stripped from the
// shard's jobs first, as the wire protocol strips it.
func runShardsLocally(t *testing.T, plan *ShardPlan, jobs []Job, store *image.Store, opts Options) {
	t.Helper()
	for _, sh := range plan.Shards {
		img, err := store.Get(sh.Image)
		if err != nil {
			t.Fatalf("fetching shard image: %v", err)
		}
		_, sess, err := image.LoadSession(img, nil, nil)
		if err != nil {
			t.Fatalf("restoring shard image: %v", err)
		}
		shardJobs := make([]Job, len(sh.Jobs))
		for i, ji := range sh.Jobs {
			shardJobs[i] = Job{Trace: jobs[ji].Trace, Pacing: jobs[ji].Pacing}
		}
		worker := New(freshBrowser, opts)
		outs := worker.ExecuteSubtree(nil, shardJobs, sess, sh.Depth)
		if err := plan.Merge(sh, outs); err != nil {
			t.Fatalf("merging shard outcomes: %v", err)
		}
	}
}

// pageOracle is a deterministic per-job verdict: every completed
// replay "finds" its final page, so any divergence between distributed
// and flat execution — wrong page, wrong prefix, lost command —
// surfaces as a verdict mismatch.
func pageOracle(job Job, res *replayer.Result, tab *browser.Tab) error {
	if res.Failed > 0 || res.Cancelled {
		return nil
	}
	return fmt.Errorf("page %s %q", tab.URL(), tab.Title())
}

// TestShardedExecutionMatchesFlat: plan → restore-from-image →
// ExecuteSubtree → merge reproduces flat execution for mutant-shaped
// jobs, at several shard granularities. With pruning disabled the full
// outcome — step lists included — must match; with pruning enabled the
// Replayed/Pruned split may shift across shard boundaries (each worker
// prunes locally) but every verdict must be identical, which is the
// findings-byte-identical contract distributed campaigns promise.
func TestShardedExecutionMatchesFlat(t *testing.T) {
	jobs := editJobs(t)
	for _, pruning := range []bool{false, true} {
		opts := Options{
			DisablePruning: !pruning,
			Replayer:       replayer.Options{Pacing: replayer.PaceNone},
			Inspect:        pageOracle,
		}
		flatOpts := opts
		flatOpts.DisablePrefixSharing = true
		flat := New(freshBrowser, flatOpts).Execute(nil, jobs)

		for _, maxJobs := range []int{0, 3, 1} {
			store := image.NewStore()
			coord := New(freshBrowser, opts)
			plan, ok := coord.PlanShards(nil, jobs, maxJobs, storeImager(store))
			if !ok {
				t.Fatalf("pruning=%v maxJobs=%d: campaign not distributable", pruning, maxJobs)
			}
			// Every job is in exactly one shard or already finalized.
			seen := make(map[int]int)
			for _, sh := range plan.Shards {
				if len(sh.Jobs) == 0 {
					t.Fatalf("maxJobs=%d: empty shard", maxJobs)
				}
				if maxJobs > 0 && len(sh.Jobs) > maxJobs {
					t.Errorf("maxJobs=%d: shard with %d jobs", maxJobs, len(sh.Jobs))
				}
				for _, ji := range sh.Jobs {
					seen[ji]++
				}
			}
			for ji := range jobs {
				if n := seen[ji]; n > 1 {
					t.Errorf("job %d in %d shards", ji, n)
				} else if n == 0 && plan.Outcomes[ji].Result == nil && !plan.Outcomes[ji].Pruned {
					t.Errorf("job %d neither sharded nor finalized on a spine", ji)
				}
			}

			runShardsLocally(t, plan, jobs, store, opts)

			for i := range jobs {
				got, want := plan.Outcomes[i], flat[i]
				if !pruning {
					if g, w := outcomeKey(got), outcomeKey(want); g != w {
						t.Errorf("maxJobs=%d job %d:\nflat:    %s\nsharded: %s", maxJobs, i, w, g)
					}
					continue
				}
				gv, wv := fmt.Sprint(got.Verdict), fmt.Sprint(want.Verdict)
				if gv != wv {
					t.Errorf("pruning maxJobs=%d job %d: verdict %q, flat %q", maxJobs, i, gv, wv)
				}
			}
		}
	}
}

// TestPlanShardsRefusals pins when planning must hand the campaign
// back to local execution.
func TestPlanShardsRefusals(t *testing.T) {
	tr := recordEditSite(t)
	jobs := []Job{{Trace: tr}, {Trace: tr.Clone()}}
	jobs[1].Trace.Commands[len(tr.Commands)-1].XPath = `//div[@id="elsewhere"]`
	imager := storeImager(image.NewStore())

	if _, ok := New(freshBrowser, Options{}).PlanShards(nil, jobs, 0, nil); ok {
		t.Error("planned without an imager")
	}
	if _, ok := New(freshBrowser, Options{DisablePrefixSharing: true}).PlanShards(nil, jobs, 0, imager); ok {
		t.Error("planned with prefix sharing disabled")
	}
	if _, ok := New(freshBrowser, Options{}).PlanShards(nil, jobs[:1], 0, imager); ok {
		t.Error("planned a single-job campaign")
	}
	hooked := Options{Replayer: replayer.Options{Hooks: []replayer.Hooks{{}}}}
	if _, ok := New(freshBrowser, hooked).PlanShards(nil, jobs, 0, imager); ok {
		t.Error("planned with replay hooks attached")
	}

	// A failing command on a shared spine coarsens the plan instead of
	// refusing it: descending with maxJobs=1 makes the planner execute
	// the bogus shared prefix, fail, and ship the whole subtree as one
	// over-sized shard off the pre-descent image — the workers replay
	// (and prune) the failure themselves.
	bad := command.Trace{StartURL: tr.StartURL, Commands: []command.Command{
		{Action: command.Click, XPath: `//div[@id="no-such-element"]`, Elapsed: 1},
		tr.Commands[0],
	}}
	badJobs := []Job{{Trace: bad}, {Trace: bad.Clone()}}
	badJobs[1].Trace.Commands[1] = tr.Commands[1]
	// Strict resolution, or the coordinate fallback rescues the bogus
	// click and the spine never fails.
	strict := Options{Replayer: replayer.Options{
		DisableRelaxation: true, DisableCoordinateFallback: true,
	}}
	plan, ok := New(freshBrowser, strict).PlanShards(nil, badJobs, 1, imager)
	if !ok {
		t.Fatal("failing shared spine refused the plan instead of coarsening it")
	}
	both := false
	for _, sh := range plan.Shards {
		if len(sh.Jobs) == 2 && sh.Depth == 0 {
			both = true
		}
	}
	if !both {
		t.Fatalf("failing spine not shipped whole: shards %+v", plan.Shards)
	}
	// At single-level granularity the same jobs shard fine: the spine
	// is never executed, the failure surfaces on workers.
	plan, ok = New(freshBrowser, strict).PlanShards(nil, badJobs, 0, imager)
	if !ok {
		t.Fatal("single-level plan refused")
	}
	if len(plan.Shards) == 0 {
		t.Fatal("single-level plan produced no shards")
	}
}
