package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/replayer"
)

func freshBrowser() *browser.Browser {
	return apps.NewEnv(browser.DeveloperMode).Browser
}

// recordEditSite records the Fig. 4 session.
func recordEditSite(t *testing.T) command.Trace {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	sc := apps.EditSiteScenario()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	if err := sc.Run(env, tab); err != nil {
		t.Fatal(err)
	}
	rec.Detach()
	return rec.Trace()
}

func TestExecutorReplaysEveryJobInIsolation(t *testing.T) {
	tr := recordEditSite(t)
	const n = 12
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Trace: tr, Meta: i}
	}
	for _, parallelism := range []int{1, 4} {
		exec := New(freshBrowser, Options{Parallelism: parallelism})
		outcomes := exec.Execute(context.Background(), jobs)
		if len(outcomes) != n {
			t.Fatalf("parallelism %d: %d outcomes, want %d", parallelism, len(outcomes), n)
		}
		for i, out := range outcomes {
			if out.Index != i || out.Job.Meta.(int) != i {
				t.Fatalf("parallelism %d: outcome %d carries job %v", parallelism, i, out.Job.Meta)
			}
			if out.Pruned || out.Skipped {
				t.Fatalf("parallelism %d: job %d not replayed: %+v", parallelism, i, out)
			}
			// Each replica runs in a fresh environment, so every replay
			// of the correct trace completes identically.
			if !out.Result.Complete() {
				t.Errorf("parallelism %d: job %d incomplete: %+v", parallelism, i, out.Result)
			}
		}
	}
}

// failingTrace is a trace whose first command can never resolve.
func failingTrace(extra int) command.Trace {
	tr := command.Trace{
		StartURL: apps.SitesURL,
		Commands: []command.Command{{
			Action: command.Type, XPath: `//canvas[@id="nonexistent"]`, Key: "a", Code: 65,
		}},
	}
	for i := 0; i < extra; i++ {
		tr.Commands = append(tr.Commands, command.Command{
			Action: command.Type, XPath: fmt.Sprintf(`//canvas[@id="later-%d"]`, i), Key: "b", Code: 66,
		})
	}
	return tr
}

func TestExecutorPrunesSharedFailedPrefixes(t *testing.T) {
	jobs := []Job{
		{Trace: failingTrace(0)}, // fails at command 0
		{Trace: failingTrace(1)}, // shares the 1-command failed prefix
		{Trace: failingTrace(2)},
	}
	exec := New(freshBrowser, Options{})
	outcomes := exec.Execute(context.Background(), jobs)

	if outcomes[0].Pruned || outcomes[0].Result == nil || outcomes[0].Result.Failed == 0 {
		t.Fatalf("first job should replay and fail: %+v", outcomes[0])
	}
	for _, out := range outcomes[1:] {
		if !out.Pruned {
			t.Errorf("job %d sharing the failed prefix was not pruned: %+v", out.Index, out)
		}
	}
	if exec.PruneTable().Len() == 0 {
		t.Error("failure not recorded in the prune table")
	}
}

func TestExecutorPruningDisabled(t *testing.T) {
	jobs := []Job{{Trace: failingTrace(0)}, {Trace: failingTrace(1)}}
	exec := New(freshBrowser, Options{DisablePruning: true})
	for _, out := range exec.Execute(context.Background(), jobs) {
		if out.Pruned {
			t.Errorf("job %d pruned despite DisablePruning", out.Index)
		}
	}
}

func TestExecutorSharedPruneTableAcrossExecutes(t *testing.T) {
	table := NewPruneTable()
	first := New(freshBrowser, Options{Prune: table})
	first.Execute(context.Background(), []Job{{Trace: failingTrace(0)}})
	if table.Len() == 0 {
		t.Fatal("no failure recorded")
	}
	second := New(freshBrowser, Options{Prune: table})
	outcomes := second.Execute(context.Background(), []Job{{Trace: failingTrace(1)}})
	if !outcomes[0].Pruned {
		t.Error("second executor ignored the shared prune table")
	}
}

func TestExecutorInspectRunsPerJob(t *testing.T) {
	tr := recordEditSite(t)
	verdict := errors.New("oracle flagged it")
	var calls atomic.Int32
	exec := New(freshBrowser, Options{
		Parallelism: 3,
		Inspect: func(job Job, res *replayer.Result, tab *browser.Tab) error {
			calls.Add(1)
			if tab == nil || res == nil {
				t.Error("Inspect called without result/tab")
			}
			if job.Meta.(int)%2 == 0 {
				return verdict
			}
			return nil
		},
	})
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{Trace: tr, Meta: i}
	}
	outcomes := exec.Execute(context.Background(), jobs)
	if got := int(calls.Load()); got != len(jobs) {
		t.Fatalf("Inspect ran %d times, want %d", got, len(jobs))
	}
	for i, out := range outcomes {
		want := error(nil)
		if i%2 == 0 {
			want = verdict
		}
		if !errors.Is(out.Verdict, want) && !(want == nil && out.Verdict == nil) {
			t.Errorf("job %d verdict %v, want %v", i, out.Verdict, want)
		}
	}
}

func TestExecutorCancelledContextSkipsJobs(t *testing.T) {
	tr := recordEditSite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{Trace: tr}
	}
	for _, parallelism := range []int{1, 4} {
		outcomes := New(freshBrowser, Options{Parallelism: parallelism}).Execute(ctx, jobs)
		for i, out := range outcomes {
			if !out.Skipped {
				t.Errorf("parallelism %d: job %d ran under a cancelled context: %+v", parallelism, i, out)
			}
		}
	}
}

func TestExecutorJobPacingOverride(t *testing.T) {
	tr := recordEditSite(t)
	// PaceNone on the edit-site trace triggers the §V-C timing bug; the
	// per-job override must take effect over the executor default.
	var sawConsoleError atomic.Bool
	exec := New(freshBrowser, Options{
		Replayer: replayer.Options{Pacing: replayer.PaceRecorded},
		Inspect: func(job Job, res *replayer.Result, tab *browser.Tab) error {
			if job.Pacing == replayer.PaceNone && len(tab.ConsoleErrors()) > 0 {
				sawConsoleError.Store(true)
			}
			return nil
		},
	})
	exec.Execute(context.Background(), []Job{
		{Trace: tr, Pacing: replayer.PaceNone},
		{Trace: tr},
	})
	if !sawConsoleError.Load() {
		t.Error("PaceNone job did not behave impatiently; pacing override ignored")
	}
}
