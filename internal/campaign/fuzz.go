package campaign

import (
	"context"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// The coverage-guided fuzzing loop over the campaign executor: a
// FuzzSource enumerates and mutates candidate erroneous traces, the
// executor replays them in batches through the shared-prefix trie
// scheduler, and a corpus of coverage-novel candidates feeds the next
// round of mutation. Candidates dedupe through the chained trace
// digests and the §V-A prefix-failure table before a replay is ever
// spent.
//
// Determinism contract: with a fixed source (seed) and budget, the
// findings report is byte-identical across runs at any Parallelism and
// with prefix sharing on or off. The loop achieves this by disabling
// the inner executor's own pruning (whose replayed/pruned split is
// scheduling-dependent) and doing all campaign bookkeeping — failure
// recording, corpus admission, finding collection — itself, serially,
// in outcome-index order after each batch.

// FuzzCandidate is one candidate erroneous trace: the serialized
// mutation program that produced it (its corpus identity and the
// native-fuzz input format), the rendered trace, and its pacing.
type FuzzCandidate struct {
	Program string
	Trace   command.Trace
	Pacing  replayer.Pacing
}

// FuzzSource generates candidates. errmodel.Mutator is the canonical
// implementation; the interface lives here so the executor stays
// error-model-agnostic.
type FuzzSource interface {
	// Seeds enumerates the initial candidates (limit 0 = all). The
	// correct trace itself should come first: it roots the corpus and
	// establishes baseline coverage.
	Seeds(limit int) []FuzzCandidate
	// Mutate derives a new candidate from a corpus entry. ok == false
	// means this entry yielded nothing; the loop draws from another.
	// Successive calls may return different results (seeded rng), but
	// the same call sequence must reproduce the same stream.
	Mutate(from FuzzCandidate) (FuzzCandidate, bool)
}

// FuzzOptions configure a FuzzExecutor.
type FuzzOptions struct {
	// Budget bounds how many replays the campaign spends; dedupe and
	// prune hits are free. 0 means DefaultFuzzBudget.
	Budget int
	// BatchSize is how many candidates are scheduled per executor
	// batch (0 = 16). Larger batches share more prefixes; smaller ones
	// feed coverage back into mutation sooner.
	BatchSize int
	// Parallelism, Replayer, and DisablePrefixSharing configure the
	// inner executor (campaign.Options semantics).
	Parallelism          int
	Replayer             replayer.Options
	DisablePrefixSharing bool
	// Inspect is the campaign oracle (campaign.Options.Inspect); a
	// non-nil verdict on a replayed candidate becomes a finding.
	Inspect func(job Job, res *replayer.Result, tab *browser.Tab) error
	// Coverage fingerprints each replay (campaign.Options.Coverage);
	// nil disables corpus growth — the campaign degrades to replaying
	// the enumerated seeds through digest dedup only.
	Coverage func(res *replayer.Result, tab *browser.Tab) []byte
	// Execute, when set, replaces the inner executor's batch execution
	// — the distribution hook: the jobs layer routes batches through a
	// worker pool here, falling back to exec.Execute itself. Outcomes
	// must come back in job order, campaign.Executor.Execute-shaped.
	Execute func(ctx context.Context, exec *Executor, batch []Job) []Outcome
}

// DefaultFuzzBudget is the replay budget when FuzzOptions.Budget is 0.
const DefaultFuzzBudget = 64

// FuzzFinding is one oracle hit.
type FuzzFinding struct {
	// Program is the mutation program that produced the trace.
	Program string
	// Trace is the rendered erroneous trace.
	Trace command.Trace
	// Observed is the oracle's verdict text.
	Observed string
}

// FuzzStats is the campaign's aggregate outcome.
type FuzzStats struct {
	// Generated counts candidates drawn from the source.
	Generated int
	// Deduped counts candidates dropped by the chained-digest dedupe
	// before scheduling.
	Deduped int
	// Pruned counts candidates dropped by the prefix-failure table
	// before scheduling (§V-A heuristic 1).
	Pruned int
	// Replayed counts candidates that ran to a result.
	Replayed int
	// ReplayFailures counts replays with at least one failed command.
	ReplayFailures int
	// Skipped counts candidates scheduled but cancelled before or
	// during their replay.
	Skipped int
	// Novel counts replays whose coverage fingerprint set a new bit;
	// each admitted its candidate to the corpus.
	Novel int
	// CorpusSize and CoverageBits describe the final corpus.
	CorpusSize   int
	CoverageBits int
	// Findings are the oracle hits, in discovery order.
	Findings []FuzzFinding
}

// Spent returns how much budget the campaign consumed.
func (s *FuzzStats) Spent() int { return s.Replayed + s.Skipped }

// FuzzExecutor drives the loop. Not safe for concurrent use; the
// parallelism lives inside each batch.
type FuzzExecutor struct {
	exec *Executor
	opts FuzzOptions

	prune    *PruneTable
	seen     map[prefixDigest]struct{}
	global   []byte
	corpus   []FuzzCandidate
	outcomes []Outcome
	stats    FuzzStats

	// OnBatch, when set, observes the running stats after each
	// absorbed batch (SSE progress publishing).
	OnBatch func(stats FuzzStats)
}

// NewFuzzExecutor builds the loop over fresh executor state. The inner
// executor runs with pruning disabled — see the determinism contract
// above; the fuzz loop owns the prune table.
func NewFuzzExecutor(newEnv EnvFactory, opts FuzzOptions) *FuzzExecutor {
	if opts.Budget <= 0 {
		opts.Budget = DefaultFuzzBudget
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 16
	}
	exec := New(newEnv, Options{
		Parallelism:          opts.Parallelism,
		Replayer:             opts.Replayer,
		DisablePruning:       true,
		DisablePrefixSharing: opts.DisablePrefixSharing,
		Inspect:              opts.Inspect,
		Coverage:             opts.Coverage,
	})
	return &FuzzExecutor{
		exec:  exec,
		opts:  opts,
		prune: NewPruneTable(),
		seen:  make(map[prefixDigest]struct{}),
	}
}

// Executor exposes the inner batch executor (the distribution hook
// plans shards against it).
func (f *FuzzExecutor) Executor() *Executor { return f.exec }

// Outcomes returns every scheduled or pre-schedule-pruned candidate's
// outcome, in schedule order.
func (f *FuzzExecutor) Outcomes() []Outcome { return f.outcomes }

// Corpus returns the admitted coverage-novel candidates, in admission
// order.
func (f *FuzzExecutor) Corpus() []FuzzCandidate { return append([]FuzzCandidate(nil), f.corpus...) }

// Run executes the fuzzing loop until the budget is spent, the source
// dries up, or ctx is cancelled. It returns the aggregate stats.
func (f *FuzzExecutor) Run(ctx context.Context, src FuzzSource) *FuzzStats {
	if ctx == nil {
		ctx = context.Background()
	}
	seeds := src.Seeds(0)
	nextSeed, mutIdx := 0, 0
	for f.stats.Spent() < f.opts.Budget && ctx.Err() == nil {
		batch := f.fillBatch(src, seeds, &nextSeed, &mutIdx)
		if len(batch) == 0 {
			break // the source is exhausted (or yields only duplicates)
		}
		outs := f.executeBatch(ctx, batch)
		f.absorb(outs)
		if f.OnBatch != nil {
			f.OnBatch(f.stats)
		}
	}
	f.stats.CorpusSize = len(f.corpus)
	return &f.stats
}

// fillBatch draws candidates — enumerated seeds first, then mutations
// of corpus entries round-robin — deduping and §V-A-pruning each
// before it costs a replay slot.
func (f *FuzzExecutor) fillBatch(src FuzzSource, seeds []FuzzCandidate, nextSeed, mutIdx *int) []Job {
	var batch []Job
	room := func() int { return f.opts.Budget - f.stats.Spent() - len(batch) }
	misses := 0
	for len(batch) < f.opts.BatchSize && room() > 0 {
		var c FuzzCandidate
		switch {
		case *nextSeed < len(seeds):
			c = seeds[*nextSeed]
			*nextSeed++
		case len(f.corpus) > 0 && misses <= 8*f.opts.BatchSize:
			var ok bool
			c, ok = src.Mutate(f.corpus[*mutIdx%len(f.corpus)])
			*mutIdx++
			if !ok {
				misses++
				continue
			}
		default:
			return batch
		}
		f.stats.Generated++
		if len(c.Trace.Commands) == 0 {
			f.stats.Deduped++
			misses++
			continue
		}
		d := tracePrefixDigest(c.Trace, len(c.Trace.Commands))
		if _, dup := f.seen[d]; dup {
			f.stats.Deduped++
			misses++
			continue
		}
		f.seen[d] = struct{}{}
		if f.prune.Prunable(c.Trace) {
			// A recorded failed prefix covers this candidate: account
			// it without spending a replay, like the enumerated
			// campaigns do.
			f.stats.Pruned++
			f.outcomes = append(f.outcomes, Outcome{
				Index:  len(f.outcomes),
				Job:    Job{Trace: c.Trace, Pacing: c.Pacing, Meta: c},
				Pruned: true,
			})
			misses++
			continue
		}
		batch = append(batch, Job{Trace: c.Trace, Pacing: c.Pacing, Meta: c})
		misses = 0
	}
	return batch
}

// executeBatch schedules one batch through the trie scheduler (or the
// distribution hook).
func (f *FuzzExecutor) executeBatch(ctx context.Context, batch []Job) []Outcome {
	if f.opts.Execute != nil {
		return f.opts.Execute(ctx, f.exec, batch)
	}
	return f.exec.Execute(ctx, batch)
}

// absorb performs the serial post-batch pass, in outcome-index order:
// stats, §V-A failure recording into the loop's prune table, coverage
// merging, corpus admission, and finding collection.
func (f *FuzzExecutor) absorb(outs []Outcome) {
	for _, out := range outs {
		c, _ := out.Job.Meta.(FuzzCandidate)
		out.Index = len(f.outcomes)
		f.outcomes = append(f.outcomes, out)
		switch {
		case out.Skipped || out.Result == nil || out.Result.Cancelled:
			f.stats.Skipped++
			continue
		default:
			f.stats.Replayed++
		}
		if out.Result.Failed > 0 {
			f.stats.ReplayFailures++
			if k := firstFailure(out.Result); k >= 0 {
				f.prune.RecordFailure(out.Job.Trace, k)
			}
		}
		if out.Verdict != nil {
			f.stats.Findings = append(f.stats.Findings, FuzzFinding{
				Program:  c.Program,
				Trace:    out.Job.Trace,
				Observed: out.Verdict.Error(),
			})
		}
		if len(out.Coverage) > 0 && f.mergeCoverage(out.Coverage) {
			f.stats.Novel++
			f.corpus = append(f.corpus, c)
		}
	}
	f.stats.CorpusSize = len(f.corpus)
}

// mergeCoverage ORs a fingerprint into the global map and reports
// whether any bit was new. The first non-empty fingerprint defines the
// map's width; blobs of any other width are ignored.
func (f *FuzzExecutor) mergeCoverage(cov []byte) bool {
	if f.global == nil {
		f.global = append([]byte(nil), cov...)
		f.stats.CoverageBits = popcount(f.global)
		return f.stats.CoverageBits > 0
	}
	if len(cov) != len(f.global) {
		return false
	}
	novel := false
	for i, v := range cov {
		if v&^f.global[i] != 0 {
			novel = true
		}
		f.global[i] |= v
	}
	if novel {
		f.stats.CoverageBits = popcount(f.global)
	}
	return novel
}

func popcount(b []byte) int {
	n := 0
	for _, v := range b {
		for ; v != 0; v &= v - 1 {
			n++
		}
	}
	return n
}
