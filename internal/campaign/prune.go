package campaign

import (
	"sync"

	"github.com/dslab-epfl/warr/internal/command"
)

// PruneTable is the shared prefix-failure-pruning state of a campaign
// (§V-A heuristic 1): when a trace fails to replay at command k, every
// trace sharing that k+1-command prefix is discarded without replay —
// "neither them can be successfully replayed". It is safe for
// concurrent use, so the executor's workers share one table.
//
// Prefixes are keyed by chained per-command FNV-1a digests (digest.go,
// two independent 64-bit lanes, collision odds 2^-128) instead of
// serialized command text: a lookup walks the trace once, chaining
// each command into the running digest and probing the set — no
// serialization, no allocation. The trie scheduler's node keys are the
// same digests, so trie-mode and flat-mode pruning observe the same
// table identically.
type PruneTable struct {
	mu     sync.RWMutex
	failed map[prefixDigest]struct{}
}

// NewPruneTable returns an empty table.
func NewPruneTable() *PruneTable {
	return &PruneTable{failed: make(map[prefixDigest]struct{})}
}

// RecordFailure marks the prefix ending at the failed command: the
// first failedAt+1 commands of tr.
func (p *PruneTable) RecordFailure(tr command.Trace, failedAt int) {
	p.recordDigest(tracePrefixDigest(tr, failedAt+1))
}

// recordDigest marks an already-digested failed prefix (trie mode).
func (p *PruneTable) recordDigest(d prefixDigest) {
	p.mu.Lock()
	p.failed[d] = struct{}{}
	p.mu.Unlock()
}

// Prunable reports whether any recorded failed prefix is a prefix of
// tr. The lookup path is allocation-free.
func (p *PruneTable) Prunable(tr command.Trace) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.failed) == 0 {
		return false
	}
	d := digestSeed()
	for _, c := range tr.Commands {
		d = commandDigest(d, c)
		if _, ok := p.failed[d]; ok {
			return true
		}
	}
	return false
}

// prunableDigest reports whether the prefix with this digest was
// recorded as failed (trie mode: the scheduler probes node by node as
// it descends).
func (p *PruneTable) prunableDigest(d prefixDigest) bool {
	p.mu.RLock()
	_, ok := p.failed[d]
	p.mu.RUnlock()
	return ok
}

// Len returns the number of recorded failed prefixes.
func (p *PruneTable) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.failed)
}
