package campaign

import (
	"strings"
	"sync"

	"github.com/dslab-epfl/warr/internal/command"
)

// PruneTable is the shared prefix-failure-pruning state of a campaign
// (§V-A heuristic 1): when a trace fails to replay at command k, every
// trace sharing that k+1-command prefix is discarded without replay —
// "neither them can be successfully replayed". It is safe for
// concurrent use, so the executor's workers share one table.
type PruneTable struct {
	mu     sync.RWMutex
	failed map[string]struct{}
}

// NewPruneTable returns an empty table.
func NewPruneTable() *PruneTable {
	return &PruneTable{failed: make(map[string]struct{})}
}

// RecordFailure marks the prefix ending at the failed command: the
// first failedAt+1 commands of tr.
func (p *PruneTable) RecordFailure(tr command.Trace, failedAt int) {
	key := prefixKey(tr, failedAt+1)
	p.mu.Lock()
	p.failed[key] = struct{}{}
	p.mu.Unlock()
}

// Prunable reports whether any recorded failed prefix is a prefix of tr.
func (p *PruneTable) Prunable(tr command.Trace) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.failed) == 0 {
		return false
	}
	var b strings.Builder
	for _, c := range tr.Commands {
		b.WriteString(c.String())
		b.WriteByte('\n')
		if _, ok := p.failed[b.String()]; ok {
			return true
		}
	}
	return false
}

// Len returns the number of recorded failed prefixes.
func (p *PruneTable) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.failed)
}

// prefixKey serializes the first n commands of a trace.
func prefixKey(tr command.Trace, n int) string {
	if n > len(tr.Commands) {
		n = len(tr.Commands)
	}
	var b strings.Builder
	for _, c := range tr.Commands[:n] {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
