// Package campaign implements the concurrent campaign executor: it
// replays many traces as independent replay sessions over a worker pool
// of isolated environments. WebErr's error-injection campaigns (paper
// §V — "hundreds of erroneous traces" per application) run on it, but
// the executor is tool-agnostic: a job is just a trace plus caller
// metadata, and the caller inspects each finished session through a
// per-job callback.
//
// The executor owns the two campaign-wide concerns the paper's
// heuristics require:
//
//   - isolation: every job replays in a fresh environment from the
//     EnvFactory, so server state never leaks between erroneous traces;
//   - prefix-failure pruning (§V-A heuristic 1): a concurrency-safe
//     table of failed trace prefixes shared by all workers, so a trace
//     whose prefix already failed is skipped without replay.
package campaign

import (
	"context"
	"sync"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// EnvFactory creates a fresh, isolated browser (with the application
// under test reachable on its network). It is called once per job, from
// worker goroutines, and must therefore be safe for concurrent use —
// which it is by construction when every call builds a new environment.
// registry.BrowserFactory derives one from any app selection; callers
// no longer hand-roll closures over package-level application vars.
type EnvFactory func() *browser.Browser

// Job is one unit of campaign work: a trace to replay plus caller
// context carried through to the Outcome.
type Job struct {
	// Trace is the trace to replay.
	Trace command.Trace
	// Pacing, when non-zero, overrides the executor's replayer pacing
	// for this job (timing campaigns mix paced and unpaced variants).
	Pacing replayer.Pacing
	// Meta is opaque caller context (e.g. WebErr's Injection).
	Meta any
}

// Outcome is the result of one job.
type Outcome struct {
	// Index is the job's position in the Execute slice; Execute returns
	// outcomes in that order regardless of completion order.
	Index int
	Job   Job
	// Pruned is set when the job was skipped by prefix-failure pruning;
	// the trace was not replayed and Result is nil.
	Pruned bool
	// Skipped is set when the context was cancelled before the job ran.
	Skipped bool
	// Result is the replay result (partial if the context was cancelled
	// mid-session). It is nil for pruned and skipped jobs; when the
	// start page failed to load it is a synthetic all-failed result and
	// Err records why.
	Result *replayer.Result
	// Verdict is whatever Options.Inspect returned for this job.
	Verdict error
	// Coverage is whatever Options.Coverage returned for this job — an
	// opaque fingerprint blob. Nil for pruned and skipped jobs, or when
	// no Coverage callback is configured.
	Coverage []byte
	// Err is the session-level error (start-page navigation failure).
	Err error
}

// Options configure an Executor.
type Options struct {
	// Parallelism is the number of concurrent replay sessions; 0 or 1
	// replays jobs sequentially in submission order, reproducing the
	// classic single-threaded campaign exactly.
	Parallelism int
	// Replayer configures each session; Pacing defaults to PaceRecorded
	// and may be overridden per job.
	Replayer replayer.Options
	// DisablePruning turns off prefix-failure pruning (ablation; §V-A
	// heuristic 1).
	DisablePruning bool
	// Inspect, when set, runs in the worker goroutine as soon as a
	// job's session finishes, with the session's tab still private to
	// that worker — campaign oracles belong here. Its return value is
	// stored in the job's Outcome.Verdict. It must not retain the tab
	// past the call.
	Inspect func(job Job, res *replayer.Result, tab *browser.Tab) error
	// Coverage, when set, runs wherever Inspect runs — in the worker
	// goroutine, with the finished session's tab — and its return value
	// is stored in Outcome.Coverage. Fuzzing campaigns fingerprint the
	// end-of-replay world here; like Inspect, it must not retain the
	// tab past the call.
	Coverage func(res *replayer.Result, tab *browser.Tab) []byte
	// Prune, when set, is the shared pruning table; campaigns that span
	// several Execute calls pass the same table. Nil means a fresh
	// table per Executor.
	Prune *PruneTable
	// DisablePrefixSharing turns off the trace-trie scheduler
	// (shared.go) and replays every job from command zero in its own
	// environment — the classic flat path. Sharing changes no outcome
	// (the equivalence is property-tested against flat execution);
	// this switch exists for ablation and for pinning down the flat
	// path in tests. Sharing also disables itself when it cannot help:
	// fewer than two jobs, no overlapping prefixes, replay hooks
	// attached, or an environment that cannot fork.
	DisablePrefixSharing bool
}

// Executor replays campaign jobs over a pool of isolated environments.
type Executor struct {
	newEnv EnvFactory
	opts   Options
	prune  *PruneTable
}

// New returns an executor creating one fresh environment per job from
// newEnv.
func New(newEnv EnvFactory, opts Options) *Executor {
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	prune := opts.Prune
	if prune == nil {
		prune = NewPruneTable()
	}
	return &Executor{newEnv: newEnv, opts: opts, prune: prune}
}

// PruneTable returns the executor's shared pruning table.
func (e *Executor) PruneTable() *PruneTable { return e.prune }

// Execute replays the jobs over Parallelism concurrent workers and
// returns one outcome per job, in job order. Cancelling ctx stops
// in-flight sessions at their next command boundary (their partial
// results are returned) and marks not-yet-started jobs Skipped.
func (e *Executor) Execute(ctx context.Context, jobs []Job) []Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	if outcomes, ok := e.tryExecuteShared(ctx, jobs); ok {
		return outcomes
	}
	outcomes := make([]Outcome, len(jobs))

	if e.opts.Parallelism == 1 {
		for i, job := range jobs {
			outcomes[i] = e.runJob(ctx, i, job)
		}
		return outcomes
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < e.opts.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				outcomes[i] = e.runJob(ctx, i, jobs[i])
			}
		}()
	}
	for i := range jobs {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return outcomes
}

// runJob replays one job in a fresh environment.
func (e *Executor) runJob(ctx context.Context, idx int, job Job) Outcome {
	out := Outcome{Index: idx, Job: job}
	if ctx.Err() != nil {
		out.Skipped = true
		return out
	}
	if !e.opts.DisablePruning && e.prune.Prunable(job.Trace) {
		out.Pruned = true
		return out
	}

	ropts := e.opts.Replayer
	if job.Pacing != 0 {
		ropts.Pacing = job.Pacing
	}
	b := e.newEnv()
	s, err := replayer.New(b, ropts).NewSession(ctx, job.Trace)
	if err != nil {
		// The start page failed to load; treat as a total replay
		// failure so the caller's bookkeeping sees every command lost.
		out.Err = err
		out.Result = &replayer.Result{Failed: len(job.Trace.Commands)}
	} else {
		out.Result = s.Run()
	}

	if !e.opts.DisablePruning && out.Result.Failed > 0 {
		if k := firstFailure(out.Result); k >= 0 {
			e.prune.RecordFailure(job.Trace, k)
		}
	}
	if e.opts.Inspect != nil {
		out.Verdict = e.opts.Inspect(job, out.Result, s.Tab())
	}
	if e.opts.Coverage != nil {
		out.Coverage = e.opts.Coverage(out.Result, s.Tab())
	}
	return out
}

// firstFailure returns the index of the first failed step (-1 if none).
func firstFailure(res *replayer.Result) int {
	for _, s := range res.Steps {
		if s.Status == replayer.StepFailed {
			return s.Index
		}
	}
	return -1
}
