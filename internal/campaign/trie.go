package campaign

import (
	"sort"

	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// The trace trie groups campaign jobs by shared command prefixes.
// Grammar-generated erroneous traces are, by construction, one base
// trace mutated at a single position, so their prefixes overlap almost
// completely; the trie makes the overlap explicit, and the shared-
// prefix scheduler (shared.go) executes every trie edge exactly once.
//
// Nodes are keyed by the same chained command digests the PruneTable
// uses, so "two jobs share a prefix" in the trie means precisely "the
// prefix the PruneTable would prune by".

// trieNode is one command in the trie. The virtual root of each
// rootKey carries no command and the empty-prefix digest.
type trieNode struct {
	cmd    command.Command
	depth  int          // number of commands on the path including this node
	digest prefixDigest // chained digest of the path's commands

	// children in first-job order; because jobs are inserted in index
	// order, children are ordered by their minimum job index.
	children []*trieNode

	// terminal lists jobs whose trace ends exactly here, ascending.
	terminal []int
	// tails lists jobs whose traces diverge here and share their
	// remaining suffix with nobody: the suffix is left implicit in the
	// job's own trace (path compression). Materializing a node chain
	// per unique suffix would allocate one node per command per job —
	// the overwhelming majority of a mutant trie.
	tails []int
	// min is the smallest job index in the subtree (jobs insert in
	// index order, so the first insert to touch a node sets it). The
	// full subtree job list is not materialized — collectJobs derives
	// it on the cold paths (prune, halt, skip) that need it; keeping a
	// per-node list would cost one slice append per command per job at
	// trie build time.
	min int
}

// minJob returns the smallest job index in the subtree.
func (n *trieNode) minJob() int { return n.min }

// collectJobs appends every job index in the subtree (terminal, tail,
// or deeper) to dst, in no particular order.
func (n *trieNode) collectJobs(dst []int) []int {
	dst = append(dst, n.terminal...)
	dst = append(dst, n.tails...)
	for _, c := range n.children {
		dst = c.collectJobs(dst)
	}
	return dst
}

// rootKey separates jobs that can never share execution: different
// start pages, or different pacing (pacing changes how the clock
// advances between commands, so equal command prefixes still produce
// different worlds).
type rootKey struct {
	startURL string
	pacing   replayer.Pacing
}

// trieRoot is the trie over one rootKey's jobs.
type trieRoot struct {
	key  rootKey
	node *trieNode
}

// buildTrie groups jobs into tries. Roots are returned in first-job
// order; defaultPacing resolves a job's effective pacing when the job
// does not override it.
func buildTrie(jobs []Job, defaultPacing replayer.Pacing) []*trieRoot {
	var roots []*trieRoot
	byKey := make(map[rootKey]*trieRoot)
	for i, job := range jobs {
		pacing := job.Pacing
		if pacing == 0 {
			pacing = defaultPacing
		}
		key := rootKey{startURL: job.Trace.StartURL, pacing: pacing}
		root := byKey[key]
		if root == nil {
			root = &trieRoot{key: key, node: &trieNode{digest: digestSeed(), min: i}}
			byKey[key] = root
			roots = append(roots, root)
		}
		insertJob(root.node, jobs, i)
	}
	// Tail splitting can materialize a child for an early job after a
	// later job already added one, so re-establish the minimum-index
	// ordering the scheduler's flat-sequential equivalence rests on.
	for _, r := range roots {
		sortChildren(r.node)
	}
	return roots
}

func sortChildren(n *trieNode) {
	sort.Slice(n.children, func(i, j int) bool {
		return n.children[i].min < n.children[j].min
	})
	for _, c := range n.children {
		sortChildren(c)
	}
}

// insertJob threads job i's trace into the trie (jobs is the full job
// slice, needed to split parked tails).
func insertJob(node *trieNode, jobs []Job, i int) {
	cmds := jobs[i].Trace.Commands
	for d := 0; d < len(cmds); d++ {
		cmd := cmds[d]
		var child *trieNode
		for _, c := range node.children {
			// Exact command equality, not digest equality: a digest
			// collision must not merge two different suffixes.
			if c.cmd == cmd {
				child = c
				break
			}
		}
		if child == nil {
			// No materialized child. A parked tail sharing this next
			// command must be split one step down before the new job
			// can park or continue.
			child = splitTail(node, jobs, cmd)
		}
		if child == nil {
			// The remaining suffix is uncontested: park it.
			node.tails = append(node.tails, i)
			return
		}
		node = child
	}
	node.terminal = append(node.terminal, i)
}

// splitTail materializes one node for a parked tail whose next command
// is cmd, re-parking the tail's remainder below it. It returns nil when
// no tail continues with cmd.
func splitTail(node *trieNode, jobs []Job, cmd command.Command) *trieNode {
	for ti, t := range node.tails {
		tc := jobs[t].Trace.Commands
		if tc[node.depth] != cmd {
			continue
		}
		child := &trieNode{cmd: cmd, depth: node.depth + 1, digest: commandDigest(node.digest, cmd), min: t}
		node.children = append(node.children, child)
		node.tails = append(node.tails[:ti], node.tails[ti+1:]...)
		if len(tc) == child.depth {
			child.terminal = append(child.terminal, t)
		} else {
			child.tails = append(child.tails, t)
		}
		return child
	}
	return nil
}

// sharedCommands counts the commands trie execution saves versus flat
// execution: total commands across jobs minus the commands the trie
// actually executes (materialized edges plus every parked tail's
// remaining suffix). Zero means no prefix is shared and the trie adds
// nothing over the flat path.
func sharedCommands(roots []*trieRoot, jobs []Job) int {
	total := 0
	for _, j := range jobs {
		total += len(j.Trace.Commands)
	}
	executed := 0
	for _, r := range roots {
		var count func(n *trieNode) int
		count = func(n *trieNode) int {
			sum := len(n.children)
			for _, t := range n.tails {
				sum += len(jobs[t].Trace.Commands) - n.depth
			}
			for _, c := range n.children {
				sum += count(c)
			}
			return sum
		}
		executed += count(r.node)
	}
	return total - executed
}
