package campaign

import (
	"fmt"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// TestPrunableAllocationFree pins the PruneTable satellite: the lookup
// path must not allocate, however long the trace or full the table.
func TestPrunableAllocationFree(t *testing.T) {
	table := NewPruneTable()
	var traces []command.Trace
	for i := 0; i < 50; i++ {
		tr := command.Trace{StartURL: "http://sites.test/"}
		for j := 0; j <= i%10; j++ {
			tr.Commands = append(tr.Commands, command.Command{
				Action: command.Click,
				XPath:  fmt.Sprintf(`//div/span[@id="el-%d-%d"]`, i, j),
				X:      i, Y: j, Elapsed: j,
			})
		}
		traces = append(traces, tr)
		if i%3 == 0 {
			table.RecordFailure(tr, len(tr.Commands)-1)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, tr := range traces {
			table.Prunable(tr)
		}
	})
	if allocs != 0 {
		t.Fatalf("Prunable allocated %.1f objects per run, want 0", allocs)
	}
}

// TestDigestMatchesSerialization: two commands digest equal exactly
// when their serializations are equal, and the chained trace digest
// distinguishes permutations and prefix lengths.
func TestDigestMatchesSerialization(t *testing.T) {
	cmds := []command.Command{
		{Action: command.Click, XPath: `//div[@id="a"]`, X: 1, Y: 2, Elapsed: 3},
		{Action: command.Click, XPath: `//div[@id="a"]`, X: 1, Y: 2, Elapsed: 4},
		{Action: command.DoubleClick, XPath: `//div[@id="a"]`, X: 1, Y: 2, Elapsed: 3},
		{Action: command.Drag, XPath: `//div[@id="a"]`, DX: 1, DY: 2, Elapsed: 3},
		{Action: command.Type, XPath: `//td/div`, Key: "H", Code: 72, Elapsed: 1},
		{Action: command.Type, XPath: `//td/div`, Key: "H,7", Code: 2, Elapsed: 1},
	}
	seen := make(map[prefixDigest]string)
	for _, c := range cmds {
		d := commandDigest(digestSeed(), c)
		if prev, ok := seen[d]; ok && prev != c.String() {
			t.Errorf("digest collision between %q and %q", prev, c.String())
		}
		seen[d] = c.String()
	}
	// Same commands, different order → different digests.
	ab := commandDigest(commandDigest(digestSeed(), cmds[0]), cmds[1])
	ba := commandDigest(commandDigest(digestSeed(), cmds[1]), cmds[0])
	if ab == ba {
		t.Error("chained digest ignores command order")
	}
	// A prefix digests differently from the full trace.
	if commandDigest(digestSeed(), cmds[0]) == ab {
		t.Error("prefix digest equals extended digest")
	}
}

// TestTrieGroupsSharedPrefixes: jobs derived from one base trace by
// single-position mutation share the expected trie structure, and the
// job accounting is exact.
func TestTrieGroupsSharedPrefixes(t *testing.T) {
	base := command.Trace{StartURL: "http://sites.test/"}
	for j := 0; j < 5; j++ {
		base.Commands = append(base.Commands, command.Command{
			Action: command.Click, XPath: fmt.Sprintf(`//div[@id="c%d"]`, j), Elapsed: 1,
		})
	}
	var jobs []Job
	jobs = append(jobs, Job{Trace: base})
	for j := 0; j < 5; j++ {
		mutant := base.Clone()
		mutant.Commands[j].XPath = `//div[@id="mut"]`
		jobs = append(jobs, Job{Trace: mutant})
	}
	roots := buildTrie(jobs, replayer.PaceNone)
	if len(roots) != 1 {
		t.Fatalf("%d roots, want 1 (same start URL and pacing)", len(roots))
	}
	root := roots[0].node
	if got := len(root.collectJobs(nil)); got != len(jobs) {
		t.Fatalf("root accounts %d jobs, want %d", got, len(jobs))
	}
	if root.minJob() != 0 {
		t.Fatalf("root minJob = %d, want 0", root.minJob())
	}
	if shared := sharedCommands(roots, jobs); shared <= 0 {
		t.Fatalf("sharedCommands = %d, want > 0 for overlapping prefixes", shared)
	}
	// Divergent pacing splits roots.
	jobs[1].Pacing = replayer.PaceRecorded
	if got := len(buildTrie(jobs, replayer.PaceNone)); got != 2 {
		t.Fatalf("%d roots after pacing split, want 2", got)
	}
}

// editJobs builds navigation-mutant-shaped jobs over the edit-site
// trace: the base trace plus one substituted command per position.
func editJobs(t *testing.T) []Job {
	t.Helper()
	tr := recordEditSite(t)
	jobs := []Job{{Trace: tr}}
	for j := range tr.Commands {
		mutant := tr.Clone()
		// Substitute each command with an earlier one — the §V-A
		// substitution error shape.
		mutant.Commands[j] = tr.Commands[(j+3)%len(tr.Commands)]
		jobs = append(jobs, Job{Trace: mutant})
	}
	return jobs
}

// outcomeKey canonicalizes an outcome for equality checks.
func outcomeKey(out Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d pruned=%v skipped=%v err=%v", out.Index, out.Pruned, out.Skipped, out.Err != nil)
	if out.Result != nil {
		fmt.Fprintf(&b, " played=%d failed=%d halted=%v", out.Result.Played, out.Result.Failed, out.Result.Halted)
		for _, s := range out.Result.Steps {
			fmt.Fprintf(&b, " [%d %v %q]", s.Index, s.Status, s.UsedXPath)
		}
	}
	if out.Verdict != nil {
		fmt.Fprintf(&b, " verdict=%q", out.Verdict.Error())
	}
	return b.String()
}

// TestSharedExecutionMatchesFlatPerOutcome compares trie and flat
// execution outcome by outcome — statuses, step lists, prune/skip
// flags — for both pruning settings, at the executor level.
func TestSharedExecutionMatchesFlatPerOutcome(t *testing.T) {
	jobs := editJobs(t)
	for _, pruning := range []bool{true, false} {
		flatExec := New(freshBrowser, Options{DisablePruning: !pruning, DisablePrefixSharing: true,
			Replayer: replayer.Options{Pacing: replayer.PaceNone}})
		sharedExec := New(freshBrowser, Options{DisablePruning: !pruning,
			Replayer: replayer.Options{Pacing: replayer.PaceNone}})
		flat := flatExec.Execute(nil, jobs)
		shared := sharedExec.Execute(nil, jobs)
		for i := range jobs {
			if got, want := outcomeKey(shared[i]), outcomeKey(flat[i]); got != want {
				t.Errorf("pruning=%v job %d:\nflat:   %s\nshared: %s", pruning, i, want, got)
			}
		}
	}
}

// TestSharedExecutionConcurrentWorkers exercises the trie scheduler's
// worker cooperation — forks handed across goroutines under one shared
// PruneTable — and checks index-exact outcome placement. CI's race job
// runs this under the race detector.
func TestSharedExecutionConcurrentWorkers(t *testing.T) {
	jobs := editJobs(t)
	seq := New(freshBrowser, Options{Replayer: replayer.Options{Pacing: replayer.PaceNone}}).Execute(nil, jobs)
	par := New(freshBrowser, Options{Parallelism: 8,
		Replayer: replayer.Options{Pacing: replayer.PaceNone}}).Execute(nil, jobs)
	if len(par) != len(jobs) {
		t.Fatalf("%d outcomes, want %d", len(par), len(jobs))
	}
	for i := range jobs {
		if par[i].Index != i {
			t.Fatalf("outcome %d carries index %d", i, par[i].Index)
		}
		// Replayed results must agree with the sequential run.
		if (par[i].Result == nil) != (seq[i].Result == nil) {
			continue // pruned/replayed split may shift under parallelism
		}
		if par[i].Result != nil && seq[i].Result != nil {
			if par[i].Result.Failed != seq[i].Result.Failed {
				t.Errorf("job %d: parallel failed=%d, sequential failed=%d",
					i, par[i].Result.Failed, seq[i].Result.Failed)
			}
		}
	}
}
