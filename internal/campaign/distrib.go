package campaign

import (
	"context"
	"fmt"
	"sort"

	"github.com/dslab-epfl/warr/internal/replayer"
)

// Distributed campaign support: the trace-trie scheduler (shared.go)
// split across processes. A coordinator replays each root's shared
// spine exactly once, captures the world at branch points as durable
// images (internal/image), and hands out shards — disjoint subsets of
// jobs plus the image they resume from — to workers. A worker restores
// the image into a fresh process and continues the subtree with the
// very same scheduler, so distributed execution is the in-process
// shared path with process boundaries at branch points.
//
// Findings are identical to flat single-process execution under any
// sharding: a pruned trace can never produce a finding (its replay
// would fail at the shared prefix, and oracles skip failed replays),
// so per-shard prune tables only shift the Replayed/Pruned split,
// never the verdicts.

// Imager captures a live replay session's whole world — browser,
// page, pending work, and server-side application state — into a
// durable image and returns a key (typically the image's content
// digest) under which workers can fetch the serialized bytes. The
// campaign package stays ignorant of the image format; internal/image
// provides the canonical implementation.
type Imager func(sess *replayer.Session) (key string, err error)

// Shard is one unit of distributable campaign work: a subset of the
// plan's jobs that share their first Depth commands, resumed from the
// branch-point image stored under Image. Jobs are ascending original
// job indices; a worker executes the shard with ExecuteSubtree and
// returns one outcome per job, in Jobs order.
type Shard struct {
	Jobs  []int
	Depth int
	Image string
}

// ShardPlan is the coordinator's side of a distributed campaign:
// shards to hand out, plus the outcomes the planning walk already
// finalized locally (jobs whose traces end on a shared spine — their
// oracle ran on the coordinator's live session, exactly as the
// in-process scheduler would). Every job index appears in exactly one
// shard or carries a finalized outcome; Merge fills the rest in as
// workers report back.
type ShardPlan struct {
	Shards   []Shard
	Outcomes []Outcome

	jobs []Job
}

// Merge copies a shard's worker outcomes into the plan. Worker
// outcomes are indexed by position in the shard and their Job carries
// only what crossed the wire; Merge rebinds each to its original index
// and the coordinator's job — restoring Meta, which never leaves the
// coordinator.
func (pl *ShardPlan) Merge(sh Shard, outcomes []Outcome) error {
	if len(outcomes) != len(sh.Jobs) {
		return fmt.Errorf("campaign: shard has %d jobs, merge got %d outcomes", len(sh.Jobs), len(outcomes))
	}
	for i, out := range outcomes {
		ji := sh.Jobs[i]
		if ji < 0 || ji >= len(pl.Outcomes) {
			return fmt.Errorf("campaign: shard job index %d out of range [0,%d)", ji, len(pl.Outcomes))
		}
		out.Index = ji
		out.Job = pl.jobs[ji]
		pl.Outcomes[ji] = out
	}
	return nil
}

// PlanShards partitions a campaign for distributed execution. The
// coordinator replays each trie root's shared spine once; at every
// branch point it images the world and emits one shard per divergent
// continuation small enough (at most maxJobs jobs — 0 means a single
// level of sharding), descending into larger continuations to split
// them further. Jobs whose traces end on a spine are finalized
// locally, oracle included.
//
// maxJobs is a target, not a guarantee: when a spine command fails (an
// injected error sitting on a shared prefix) or a world refuses to
// fork, the planner stops descending there and ships that whole
// subtree as one shard off the last good branch-point image — graceful
// degradation to a coarser split rather than refusing the campaign.
//
// ok == false means the campaign is not distributable — sharing is
// disabled, hooks are attached, too few jobs, or the world cannot be
// imaged — and the caller should Execute locally. Planning has no side
// effects a local Execute cannot repeat: oracles only inspect, and
// nothing is recorded in the prune table.
func (e *Executor) PlanShards(ctx context.Context, jobs []Job, maxJobs int, imager Imager) (*ShardPlan, bool) {
	if imager == nil || e.opts.DisablePrefixSharing || len(jobs) < 2 || len(e.opts.Replayer.Hooks) > 0 {
		return nil, false
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if maxJobs < 1 {
		maxJobs = len(jobs)
	}
	defaultPacing := e.opts.Replayer.Pacing
	if defaultPacing == 0 {
		defaultPacing = replayer.PaceRecorded
	}
	p := &shardPlanner{
		e: e, ctx: ctx, jobs: jobs, imager: imager, maxJobs: maxJobs,
		plan: &ShardPlan{Outcomes: make([]Outcome, len(jobs)), jobs: jobs},
	}
	for _, root := range buildTrie(jobs, defaultPacing) {
		if !p.planRoot(root) {
			return nil, false
		}
	}
	return p.plan, true
}

// shardPlanner walks trie spines on live sessions, imaging branch
// points and emitting shards.
type shardPlanner struct {
	e       *Executor
	ctx     context.Context
	jobs    []Job
	imager  Imager
	maxJobs int
	plan    *ShardPlan
	// abort marks a hard planning failure — context cancellation or an
	// imager error — that unwinds the whole plan. Soft failures (a
	// failed spine command, an unforkable world) only coarsen the split.
	abort bool
}

// planRoot opens a fresh environment on one trie root and plans its
// subtree.
func (p *shardPlanner) planRoot(root *trieRoot) bool {
	if p.ctx.Err() != nil {
		return false
	}
	ropts := p.e.opts.Replayer
	ropts.Pacing = root.key.pacing
	b := p.e.newEnv()
	sess, err := replayer.New(b, ropts).NewSession(p.ctx, p.jobs[root.node.minJob()].Trace)
	if err != nil {
		return false
	}
	return p.planNode(sess, root.node, root.node.minJob())
}

// planNode consumes sess — positioned right after node's command —
// finalizing jobs that end here, sharding small divergent
// continuations off the imaged world, and descending into large ones.
// It returns false only for hard failures (p.abort is then set).
func (p *shardPlanner) planNode(sess *replayer.Session, node *trieNode, curJob int) bool {
	for _, ji := range node.terminal {
		p.plan.Outcomes[ji] = p.e.finalizeOutcome(ji, p.jobs[ji], sess, true)
	}
	units := branchUnits(node)
	if len(units) == 0 {
		return true
	}
	// A parked tail is one job; a child subtree within maxJobs ships
	// whole. Larger subtrees are descended into and split at their own
	// branch points. The image is captured before any descent — it is
	// both the small units' resume point and the fallback for big units
	// the planner cannot descend into.
	var small, big []branchUnit
	for _, u := range units {
		if u.child != nil && len(u.child.collectJobs(nil)) > p.maxJobs {
			big = append(big, u)
		} else {
			small = append(small, u)
		}
	}
	key, err := p.imager(sess)
	if err != nil {
		p.abort = true
		return false
	}
	shard := func(u branchUnit) {
		var sj []int
		if u.child != nil {
			sj = u.child.collectJobs(nil)
			sort.Ints(sj)
		} else {
			sj = []int{u.tail}
		}
		p.plan.Shards = append(p.plan.Shards, Shard{Jobs: sj, Depth: node.depth, Image: key})
	}
	for _, u := range small {
		shard(u)
	}
	if len(big) == 0 {
		return true
	}
	// As in runSubtree: continuations beyond the first get forks taken
	// before the live session mutates; the first keeps the session. A
	// world that refuses to fork ships that subtree whole instead.
	forks := make([]*replayer.Session, len(big))
	forks[0] = sess
	for i := 1; i < len(big); i++ {
		if f, err := sess.ForkFor(p.jobs[big[i].child.minJob()].Trace); err == nil {
			forks[i] = f
		}
	}
	for i, u := range big {
		if forks[i] == nil {
			shard(u)
			continue
		}
		cur := curJob
		if i > 0 {
			// ForkFor already retargeted the fork to its subtree's
			// minimum trace.
			cur = u.child.minJob()
		}
		if !p.descend(forks[i], u.child, cur) {
			if p.abort {
				return false
			}
			// The subtree's spine failed mid-descent: its shared prefix
			// carries an injected error. Ship it whole off this node's
			// image — the workers will replay (and prune) the failure
			// themselves, exactly as local execution would.
			shard(u)
		}
	}
	return true
}

// descend executes child's command on sess and continues planning in
// child's subtree. A failed or refused command reports false so the
// caller can ship the subtree unplanned; cancellation is a hard abort.
func (p *shardPlanner) descend(sess *replayer.Session, child *trieNode, curJob int) bool {
	if p.ctx.Err() != nil {
		p.abort = true
		return false
	}
	min := child.minJob()
	if min != curJob {
		if err := sess.Retarget(p.jobs[min].Trace); err != nil {
			return false
		}
	}
	step, ok := sess.Next()
	if !ok || step.Status == replayer.StepFailed {
		if p.ctx.Err() != nil {
			p.abort = true
		}
		return false
	}
	return p.planNode(sess, child, min)
}

// ExecuteSubtree replays one shard of a distributed campaign: jobs are
// the shard's jobs (outcomes are indexed by position in this slice,
// not by the coordinator's indices — ShardPlan.Merge rebinds them),
// sess is a session restored from the shard's branch-point image,
// positioned right after command depth-1 of a trace every shard job
// agrees with on that prefix. The shard continues through the same
// trie scheduler in-process branches use, including the executor's
// pruning, parallelism, and Inspect oracle; jobs that cannot ride the
// restored session fall back to full flat replays in fresh local
// environments.
func (e *Executor) ExecuteSubtree(ctx context.Context, jobs []Job, sess *replayer.Session, depth int) []Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	r := &sharedRun{e: e, ctx: ctx, jobs: jobs, outcomes: make([]Outcome, len(jobs))}
	if e.opts.Parallelism > 1 {
		r.sem = make(chan struct{}, e.opts.Parallelism-1)
	}
	r.execSubtreeAt(sess, depth)
	r.wg.Wait()
	return r.outcomes
}

// execSubtreeAt positions the shard's trie under the restored session
// and hands the subtree to the shared scheduler.
func (r *sharedRun) execSubtreeAt(sess *replayer.Session, depth int) {
	if len(r.jobs) == 0 {
		return
	}
	for _, j := range r.jobs {
		if len(j.Trace.Commands) < depth {
			// Not a prefix of the imaged world: the shard is malformed.
			// Replay everything flat rather than lose jobs.
			r.flatAll()
			return
		}
	}
	if len(r.jobs) == 1 {
		// A single parked tail: no trie needed. curJob -1 forces the
		// retarget from the imaged trace onto the job's own.
		r.runTailFrom(sess, tracePrefixDigest(r.jobs[0].Trace, depth), depth, 0, -1, false)
		return
	}
	defaultPacing := r.e.opts.Replayer.Pacing
	if defaultPacing == 0 {
		defaultPacing = replayer.PaceRecorded
	}
	roots := buildTrie(r.jobs, defaultPacing)
	if len(roots) != 1 {
		// Shard jobs share a start URL and pacing by construction.
		r.flatAll()
		return
	}
	// With two or more jobs sharing at least depth commands, the trie
	// spine to depth is fully materialized (tail splitting creates one
	// node per shared command); walk it without executing — the
	// restored session already replayed those commands.
	node := roots[0].node
	for node.depth < depth {
		if len(node.children) != 1 || len(node.terminal) > 0 || len(node.tails) > 0 {
			r.flatAll()
			return
		}
		node = node.children[0]
	}
	min := node.minJob()
	if err := sess.Retarget(r.jobs[min].Trace); err != nil {
		r.flatAll()
		return
	}
	r.runSubtree(sess, node, min, false)
}

// flatAll replays every shard job through the classic flat path.
func (r *sharedRun) flatAll() {
	for ji := range r.jobs {
		r.outcomes[ji] = r.e.runJob(r.ctx, ji, r.jobs[ji])
	}
}
