package experiments

import (
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// TestTimingSensitivityCrossover sweeps the application's asynchronous
// load latency against a trace recorded at the default latency and
// locates the crossover where timing-accurate replay stops reproducing
// the session.
//
// The paper's §IV-D limitation says WaRR "cannot ensure that event
// handlers triggered by user actions finish in the same amount of time,
// during replay, as they did during recording, possibly hurting replay
// accuracy". The trace's recorded think time between the Edit click and
// the first keystroke is ActionGap + one KeyGap; as long as the editor
// module arrives within that window the replay succeeds, and beyond it
// the replayed keystrokes hit a not-yet-editable editor — the same
// failure mode as the timing-error campaign, but caused by the
// environment instead of the user.
func TestTimingSensitivityCrossover(t *testing.T) {
	rec, err := RecordScenario(apps.EditSiteScenario())
	if err != nil {
		t.Fatal(err)
	}
	window := apps.ActionGap + apps.KeyGap

	cases := []struct {
		latency time.Duration
		wantOK  bool
	}{
		{50 * time.Millisecond, true},
		{apps.DefaultAJAXLatency, true}, // as recorded
		{window - 100*time.Millisecond, true},
		{window + 100*time.Millisecond, false},
		{2 * time.Second, false},
	}
	for _, c := range cases {
		env := apps.NewEnv(browser.DeveloperMode)
		env.Network.SetLatency(c.latency)
		r := replayer.New(env.Browser, replayer.Options{Pacing: replayer.PaceRecorded})
		res, tab, err := r.Replay(rec.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete() {
			t.Fatalf("latency %v: replay did not complete: %+v", c.latency, res.Steps)
		}
		ok := apps.EditSiteScenario().Verify(env, tab) == nil
		if ok != c.wantOK {
			t.Errorf("latency %v: session reproduced = %v, want %v (crossover near %v)",
				c.latency, ok, c.wantOK, window)
		}
	}
}
