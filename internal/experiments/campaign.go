package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// CampaignRow compares one scenario's navigation-error campaign run
// sequentially and at the requested parallelism — the WebErr workload
// (§V: hundreds of erroneous traces per application) over the
// concurrent campaign executor.
type CampaignRow struct {
	Scenario    string
	Mutants     int
	Parallelism int
	// Flat is the wall-clock time of the ablated run: prefix sharing
	// off, every erroneous trace replayed from command zero in its own
	// environment (the pre-trie executor).
	Flat time.Duration
	// Sequential and Parallel are the wall-clock times of the two
	// shared-prefix runs.
	Sequential time.Duration
	Parallel   time.Duration
	// FlatFindings, SequentialFindings and ParallelFindings are the
	// oracle-detected bug sets; they must all be equal (the trie
	// scheduler preserves campaign results exactly, and pruning races
	// only shift the Replayed/Pruned split).
	FlatFindings       []string
	SequentialFindings []string
	ParallelFindings   []string
}

// SharingSpeedup is the flat/sequential wall-clock ratio — what the
// trace-trie scheduler alone buys at Parallelism 1.
func (r CampaignRow) SharingSpeedup() float64 {
	if r.Sequential == 0 {
		return 0
	}
	return float64(r.Flat) / float64(r.Sequential)
}

// Speedup is the sequential/parallel wall-clock ratio.
func (r CampaignRow) Speedup() float64 {
	if r.Parallel == 0 {
		return 0
	}
	return float64(r.Sequential) / float64(r.Parallel)
}

// FindingsMatch reports whether all runs flagged the same injections.
func (r CampaignRow) FindingsMatch() bool {
	for _, other := range [][]string{r.FlatFindings, r.ParallelFindings} {
		if len(r.SequentialFindings) != len(other) {
			return false
		}
		for i := range r.SequentialFindings {
			if r.SequentialFindings[i] != other[i] {
				return false
			}
		}
	}
	return true
}

// FindingKeys canonicalizes a report's findings for set comparison:
// sorted "injection => observation" strings.
func FindingKeys(rep *weberr.Report) []string {
	keys := make([]string, len(rep.Findings))
	for i, f := range rep.Findings {
		keys[i] = fmt.Sprintf("%s => %v", f.Injection, f.Observed)
	}
	sort.Strings(keys)
	return keys
}

// Campaign records the scenario, infers its grammar, and runs the
// navigation-error campaign twice — Parallelism 1 and parallelism — in
// fresh pruning state each time.
func Campaign(sc apps.Scenario, parallelism int) (CampaignRow, error) {
	row := CampaignRow{Scenario: sc.Name, Parallelism: parallelism}

	rec, err := RecordScenario(sc)
	if err != nil {
		return row, err
	}
	fresh := apps.BrowserFactory(browser.DeveloperMode)
	tree, err := weberr.InferTaskTree(fresh, rec.Trace)
	if err != nil {
		return row, fmt.Errorf("experiments: campaign %s: %w", sc.Name, err)
	}
	g := weberr.FromTaskTree(tree)
	row.Mutants = len(weberr.Mutants(g, weberr.InjectOptions{}))

	// The three runs are jobs on the shared engine (one worker keeps
	// them sequential); per-run wall clock is the job's own
	// started→finished interval, so queueing is excluded.
	engine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 3})
	defer engine.Close()
	runJob := func(spec jobs.Spec) (*weberr.Report, time.Duration, error) {
		job, err := engine.Submit(spec)
		if err != nil {
			return nil, 0, fmt.Errorf("experiments: campaign %s: %w", sc.Name, err)
		}
		_ = job.Wait(nil)
		if err := job.Err(); err != nil {
			return nil, 0, fmt.Errorf("experiments: campaign %s: %w", sc.Name, err)
		}
		return job.Report(), job.Finished().Sub(job.Started()), nil
	}

	flat, d, err := runJob(jobs.Spec{
		Kind: jobs.KindNavigationCampaign, Trace: rec.Trace, Grammar: g,
		Parallelism: 1, DisablePrefixSharing: true,
	})
	if err != nil {
		return row, err
	}
	row.Flat = d
	row.FlatFindings = FindingKeys(flat)

	seq, d, err := runJob(jobs.Spec{
		Kind: jobs.KindNavigationCampaign, Trace: rec.Trace, Grammar: g,
		Parallelism: 1,
	})
	if err != nil {
		return row, err
	}
	row.Sequential = d
	row.SequentialFindings = FindingKeys(seq)

	par, d, err := runJob(jobs.Spec{
		Kind: jobs.KindNavigationCampaign, Trace: rec.Trace, Grammar: g,
		Parallelism: parallelism,
	})
	if err != nil {
		return row, err
	}
	row.Parallel = d
	row.ParallelFindings = FindingKeys(par)
	return row, nil
}

// CampaignAll runs Campaign over every Table II scenario.
func CampaignAll(parallelism int) ([]CampaignRow, error) {
	var rows []CampaignRow
	for _, sc := range apps.TableIIScenarios() {
		row, err := Campaign(sc, parallelism)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatCampaign renders the comparison.
func FormatCampaign(rows []CampaignRow) string {
	var b strings.Builder
	b.WriteString("Navigation campaigns: flat vs shared-prefix (trie) vs concurrent executor\n")
	fmt.Fprintf(&b, "%-18s %8s %10s %10s %8s %10s %8s %s\n",
		"scenario", "mutants", "flat", "shared", "sharing", "parallel", "speedup", "findings")
	for _, r := range rows {
		verdict := "equal"
		if !r.FindingsMatch() {
			verdict = "DIVERGED"
		}
		fmt.Fprintf(&b, "%-18s %8d %10s %10s %7.2fx %10s %7.2fx %d %s\n",
			r.Scenario, r.Mutants,
			r.Flat.Round(time.Millisecond), r.Sequential.Round(time.Millisecond),
			r.SharingSpeedup(),
			r.Parallel.Round(time.Millisecond), r.Speedup(),
			len(r.SequentialFindings), verdict)
	}
	return b.String()
}
