package experiments

import (
	"fmt"
	"strings"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/baseline"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// Completeness is a Table II cell: C (complete) or P (partial).
type Completeness bool

// Completeness values.
const (
	Complete Completeness = true
	Partial  Completeness = false
)

func (c Completeness) String() string {
	if c {
		return "C"
	}
	return "P"
}

// Table2Row is one row of Table II: the completeness of recording user
// actions with the WaRR Recorder and with the Selenium-IDE-style
// baseline, for one application scenario.
type Table2Row struct {
	App      string
	Scenario string
	WaRR     Completeness
	Selenium Completeness
}

// Table2 regenerates Table II. Each scenario is performed once in a
// fresh environment with BOTH recorders attached — WaRR at the engine
// layer, the baseline at the page layer — so they observe the same
// session. A recorder's trace is judged Complete when replaying it in a
// brand-new environment reproduces the session's observable effect
// (the scenario's oracle passes).
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, sc := range apps.TableIIScenarios() {
		row, err := table2Row(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 %s: %w", sc.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table2Row(sc apps.Scenario) (Table2Row, error) {
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(sc.StartURL); err != nil {
		return Table2Row{}, err
	}
	warr := core.New(env.Clock)
	warr.Attach(tab)
	// Detach on every path: neither recorder may keep logging into its
	// returned trace/script while the replays below drive new sessions.
	defer warr.Detach()
	sel := baseline.NewSeleniumIDE()
	sel.Attach(tab)
	defer sel.Detach()

	if err := sc.Run(env, tab); err != nil {
		return Table2Row{}, err
	}
	if err := sc.Verify(env, tab); err != nil {
		return Table2Row{}, fmt.Errorf("live session failed: %w", err)
	}
	warr.Detach()
	sel.Detach()

	row := Table2Row{App: sc.App, Scenario: sc.Name}

	// WaRR: replay through the developer-mode browser.
	res, replayEnv, replayTab, err := ReplayTrace(warr.Trace(), browser.DeveloperMode, replayer.Options{})
	if err != nil {
		return Table2Row{}, err
	}
	row.WaRR = Completeness(res.Complete() && sc.Verify(replayEnv, replayTab) == nil)

	// Baseline: replay the Selenese script with the Selenium-IDE player.
	selEnv := apps.NewEnv(browser.UserMode)
	_, selTab, err := baseline.Replay(selEnv.Browser, sel.Script())
	if err != nil {
		return Table2Row{}, err
	}
	row.Selenium = Completeness(sc.Verify(selEnv, selTab) == nil)

	return row, nil
}

// FormatTable2 renders the rows the way the paper presents them.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II: completeness of recording user actions (C=complete, P=partial)\n")
	fmt.Fprintf(&b, "%-14s %-18s %-14s %s\n", "Application", "Scenario", "WaRR Recorder", "Selenium IDE")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-18s %-14s %s\n", r.App, r.Scenario, r.WaRR, r.Selenium)
	}
	return b.String()
}
