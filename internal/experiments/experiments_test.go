package experiments

import (
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/humanerr"
)

func TestFig3StackShowsEngineLayering(t *testing.T) {
	stack, err := Fig3Stack()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(stack, "\n")
	// The paper's Fig. 3 layers, in our packages: the engine event
	// handler, the web view, and the renderer's IPC entry point.
	for _, frame := range []string{"HandleMousePressEvent", "HandleInputEvent", "OnMessageReceived"} {
		if !strings.Contains(joined, frame) {
			t.Errorf("stack misses %s:\n%s", frame, joined)
		}
	}
	// The engine frame must be above (before) the renderer frame.
	if strings.Index(joined, "HandleMousePressEvent") > strings.Index(joined, "OnMessageReceived") {
		t.Errorf("engine frame below renderer frame:\n%s", joined)
	}
}

func TestFig4TraceShape(t *testing.T) {
	tr, err := Fig4Trace()
	if err != nil {
		t.Fatal(err)
	}
	cmds := tr.Commands
	if len(cmds) != 14 {
		t.Fatalf("trace has %d commands, Fig. 4 has 14:\n%s", len(cmds), tr.CommandsText())
	}
	// Fig. 4 shape: click //div/span[@id="start"], 12 type commands into
	// //td/div[@id="content"], click //td/div[text()="Save"].
	if cmds[0].Action != command.Click || cmds[0].XPath != `//div/span[@id="start"]` {
		t.Errorf("first command = %s", cmds[0])
	}
	text := ""
	for _, c := range cmds[1:13] {
		if c.Action != command.Type || c.XPath != `//td/div[@id="content"]` {
			t.Errorf("middle command = %s", c)
		}
		text += c.Key
	}
	if text != "Hello world!" {
		t.Errorf("typed text = %q", text)
	}
	last := cmds[13]
	if last.Action != command.Click || last.XPath != `//td/div[text()="Save"]` {
		t.Errorf("last command = %s", last)
	}
	// Paper: "H" logs with code 72 (combined Shift effect), "!" with the
	// code of its key (49, the 1 key).
	if cmds[1].Key != "H" || cmds[1].Code != 72 {
		t.Errorf("H logged as %s", cmds[1])
	}
	if cmds[12].Key != "!" || cmds[12].Code != 49 {
		t.Errorf("! logged as %s", cmds[12])
	}
	// Elapsed fields are nonzero (paced typing).
	for i, c := range cmds {
		if i > 0 && c.Elapsed == 0 {
			t.Errorf("command %d has zero elapsed time", i)
		}
	}
}

func TestFig6TreeShape(t *testing.T) {
	tree, err := Fig6Tree()
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d < 3 {
		t.Errorf("task tree depth = %d, want >= 3:\n%s", d, tree)
	}
	if got := len(tree.Leaves()); got != 14 {
		t.Errorf("tree covers %d commands, want 14", got)
	}
}

func TestFig6GrammarRoundTrip(t *testing.T) {
	g, err := Fig6Grammar()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Expand().Commands); got != 14 {
		t.Errorf("grammar expansion has %d commands, want 14", got)
	}
}

// table1Subset keeps unit-test latency reasonable; the bench and
// warr-bench run all 186.
func table1Subset(n int) []string {
	return humanerr.Queries186[:n]
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(Table1Options{Queries: table1Subset(60), Seed: 2011})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Engine] = r
	}
	google, bing, yahoo := byName["Google"], byName["Bing"], byName["Yahoo!"]

	// The paper's ordering: Google 100% > Yahoo 84.4% > Bing 59.1%.
	if google.Percent() != 100 {
		t.Errorf("Google = %.1f%%, want 100%%", google.Percent())
	}
	if !(yahoo.Percent() > bing.Percent()) {
		t.Errorf("Yahoo (%.1f%%) should beat Bing (%.1f%%)", yahoo.Percent(), bing.Percent())
	}
	if !(google.Percent() > yahoo.Percent()) {
		t.Errorf("Google (%.1f%%) should beat Yahoo (%.1f%%)", google.Percent(), yahoo.Percent())
	}
	// Bing's distance-1 corrector must miss a substantial share
	// (transpositions are distance 2) but not everything.
	if bing.Percent() < 30 || bing.Percent() > 90 {
		t.Errorf("Bing = %.1f%%, outside plausible band", bing.Percent())
	}
}

func TestTable1FullPipelineMatchesFastPath(t *testing.T) {
	queries := table1Subset(12)
	fast, err := Table1(Table1Options{Queries: queries, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Table1(Table1Options{Queries: queries, Seed: 7, FullPipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		if fast[i] != full[i] {
			t.Errorf("row %d differs: fast=%+v full=%+v", i, fast[i], full[i])
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// Paper's Table II: WaRR complete on all four; Selenium IDE partial
	// on all but Yahoo/Authenticate.
	want := map[string]struct{ warr, sel Completeness }{
		"Edit site":        {Complete, Partial},
		"Compose email":    {Complete, Partial},
		"Authenticate":     {Complete, Complete},
		"Edit spreadsheet": {Complete, Partial},
	}
	for _, r := range rows {
		w, ok := want[r.Scenario]
		if !ok {
			t.Errorf("unexpected scenario %q", r.Scenario)
			continue
		}
		if r.WaRR != w.warr || r.Selenium != w.sel {
			t.Errorf("%s: WaRR=%s Selenium=%s, want WaRR=%s Selenium=%s",
				r.Scenario, r.WaRR, r.Selenium, w.warr, w.sel)
		}
	}
}

func TestOverheadBelowPerception(t *testing.T) {
	r, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if r.Actions == 0 {
		t.Fatal("no actions recorded")
	}
	if !r.BelowPerception {
		t.Errorf("per-action logging %s exceeds the 100 ms perception threshold", r.PerAction)
	}
}

func TestSitesBugFound(t *testing.T) {
	r, err := SitesBug()
	if err != nil {
		t.Fatal(err)
	}
	if !r.BugFound {
		t.Fatalf("the §V-C bug was not found: %+v", r.Report)
	}
	if !strings.Contains(r.Signal, "TypeError") {
		t.Errorf("signal = %q", r.Signal)
	}
}

func TestFormatters(t *testing.T) {
	rows := []Table1Row{{Engine: "Google", Queries: 186, Detected: 186}}
	if s := FormatTable1(rows); !strings.Contains(s, "100.0%") {
		t.Errorf("FormatTable1:\n%s", s)
	}
	t2 := []Table2Row{{App: "GMail", Scenario: "Compose email", WaRR: Complete, Selenium: Partial}}
	if s := FormatTable2(t2); !strings.Contains(s, "C") || !strings.Contains(s, "P") {
		t.Errorf("FormatTable2:\n%s", s)
	}
}
