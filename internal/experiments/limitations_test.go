package experiments

import (
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// editAs performs an edit-site session typing text, in an existing
// environment through its own browser (one user = one browser), with a
// recorder attached. Returns the user's trace.
func editAs(t *testing.T, env *apps.Env, text string) command.Trace {
	t.Helper()
	b := browser.New(env.Clock, env.Network, browser.UserMode)
	tab := b.NewTab()
	if err := tab.Navigate(apps.SitesURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)

	doc := tab.MainFrame().Doc()
	x, y := tab.Layout().Center(doc.GetElementByID("start"))
	tab.Click(x, y)
	tab.AdvanceTime(2 * apps.DefaultAJAXLatency)
	// The editor seeds itself with the current page text; this user's
	// text is appended, so the final content records the save order.
	tab.TypeText(text)
	for _, d := range doc.Root().ElementsByTag("div") {
		if strings.TrimSpace(d.TextContent()) == "Save" {
			sx, sy := tab.Layout().Center(d)
			tab.Click(sx, sy)
			break
		}
	}
	return rec.Trace()
}

// TestSingleUserPerspectiveLimitation reproduces the §IV-D limitation:
// "WaRR offers a single user's perspective ... the traces do not
// contain the timing dependencies between various users' actions."
//
// Two users edit the same Google Sites page in one shared environment;
// the final page content is decided by who saved last. Each user's
// trace is individually complete, but nothing in either trace records
// the cross-user ordering — so replaying the two traces in the two
// possible orders produces different final states, and a developer
// cannot tell from the traces alone which one the users actually saw.
func TestSingleUserPerspectiveLimitation(t *testing.T) {
	// Live session: Alice saves, then Bob (whose editor was seeded with
	// Alice's text) appends and saves.
	live := apps.NewEnv(browser.UserMode)
	aliceTrace := editAs(t, live, "+alice")
	bobTrace := editAs(t, live, "+bob")
	if got := apps.SitesIn(live).PageContent("home"); got != "+alice+bob" {
		t.Fatalf("live content = %q, want %q", got, "+alice+bob")
	}

	// Neither trace mentions the other user in any way.
	for _, tr := range []command.Trace{aliceTrace, bobTrace} {
		text := tr.Text()
		if strings.Contains(text, "alice") && strings.Contains(text, "bob") {
			t.Fatal("a single-user trace should not contain both users' actions")
		}
	}

	// Replaying in either order is internally consistent — and the two
	// orders disagree, which is exactly the missing information.
	replayBoth := func(first, second command.Trace) string {
		env := apps.NewEnv(browser.DeveloperMode)
		for _, tr := range []command.Trace{first, second} {
			r := replayer.New(env.Browser, replayer.Options{})
			res, _, err := r.Replay(tr)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete() {
				t.Fatalf("replay incomplete: %+v", res.Steps)
			}
		}
		return apps.SitesIn(env).PageContent("home")
	}
	ab := replayBoth(aliceTrace, bobTrace)
	ba := replayBoth(bobTrace, aliceTrace)
	if ab == ba {
		t.Fatalf("both interleavings converge to %q; expected order-dependent outcomes", ab)
	}
	if ab != "+alice+bob" || ba != "+bob+alice" {
		t.Errorf("interleavings: a-then-b=%q, b-then-a=%q", ab, ba)
	}
}
