package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/humanerr"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// Table1Row is one row of Table I: how many injected query typos a
// search engine detected and fixed.
type Table1Row struct {
	Engine   string
	Queries  int
	Detected int
}

// Percent returns the detection rate (the paper reports Google 100%,
// Bing 59.1%, Yahoo 84.4%).
func (r Table1Row) Percent() float64 {
	if r.Queries == 0 {
		return 0
	}
	return 100 * float64(r.Detected) / float64(r.Queries)
}

// Table1Options tune the experiment.
type Table1Options struct {
	// Queries overrides the workload (default: the 186 frequent queries).
	Queries []string
	// Seed drives typo injection; every engine sees the same typo stream.
	Seed int64
	// FullPipeline routes every query through record-and-replay (the
	// Fig. 5 flow). When false, the typoed query is typed directly in a
	// live session — same application behaviour, ~2x faster. Tests use
	// the fast path for breadth and the full pipeline for depth.
	FullPipeline bool
}

// table1Engines pairs the engines with their start URLs in presentation
// order.
func table1Engines() []struct {
	name string
	url  string
} {
	return []struct {
		name string
		url  string
	}{
		{apps.GoogleName, apps.GoogleURL},
		{apps.BingName, apps.BingURL},
		{apps.YSearchName, apps.YSearchURL},
	}
}

// Table1 regenerates Table I. For each of the 186 frequent queries a
// typo is injected (WebErr's substitution-style navigation error applied
// to the typed text), the search is performed against each engine, and
// the oracle checks whether the engine's results page shows the original
// query — i.e. the typo was both detected and fixed.
func Table1(opts Table1Options) ([]Table1Row, error) {
	queries := opts.Queries
	if len(queries) == 0 {
		queries = humanerr.Queries186
	}

	var rows []Table1Row
	for _, eng := range table1Engines() {
		rng := rand.New(rand.NewSource(opts.Seed))
		row := Table1Row{Engine: eng.name, Queries: len(queries)}
		for _, q := range queries {
			tq := humanerr.InjectTypoQuery(rng, q)
			fixed, err := searchDetects(eng.url, tq, opts.FullPipeline)
			if err != nil {
				return nil, fmt.Errorf("experiments: table1 %s %q: %w", eng.name, q, err)
			}
			if fixed {
				row.Detected++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// searchDetects performs one typoed search and reports whether the
// engine detected and fixed the typo (its results page shows the
// original query).
func searchDetects(startURL string, tq humanerr.TypoQuery, fullPipeline bool) (bool, error) {
	sc := apps.SearchScenario(startURL, tq.Typoed)

	var tab *browser.Tab
	if fullPipeline {
		rec, err := RecordScenario(sc)
		if err != nil {
			return false, err
		}
		res, _, replayTab, err := ReplayTrace(rec.Trace, browser.DeveloperMode, replayer.Options{})
		if err != nil {
			return false, err
		}
		if !res.Complete() {
			return false, fmt.Errorf("replay incomplete (%d failed)", res.Failed)
		}
		tab = replayTab
	} else {
		env := apps.NewEnv(browser.UserMode)
		tab = env.Browser.NewTab()
		if err := tab.Navigate(sc.StartURL); err != nil {
			return false, err
		}
		if err := sc.Run(env, tab); err != nil {
			return false, err
		}
	}

	banner := tab.MainFrame().Doc().GetElementByID("corrected")
	if banner == nil {
		return false, nil // no correction offered
	}
	return strings.TrimSpace(banner.TextContent()) == tq.Original, nil
}

// FormatTable1 renders the rows the way the paper presents them.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table I: query typos detected and fixed\n")
	fmt.Fprintf(&b, "%-12s %-8s %-9s %s\n", "Engine", "Queries", "Detected", "Percentage")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-8d %-9d %.1f%%\n", r.Engine, r.Queries, r.Detected, r.Percent())
	}
	return b.String()
}
