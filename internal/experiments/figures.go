package experiments

import (
	"fmt"
	"strings"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// Fig3Stack regenerates Fig. 3: the fragment of the call stack active
// when a mouse click is handled, from the engine's event handler down to
// main. The paper's frames (WebCore::EventHandler::handleMousePressEvent,
// WebKit::WebViewImpl::handleInputEvent, RenderView::OnMessageReceived,
// ...) correspond to this browser's HandleMousePressEvent,
// HandleInputEvent, and OnMessageReceived.
func Fig3Stack() ([]string, error) {
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.SitesURL); err != nil {
		return nil, err
	}
	tab.EventHandler().CaptureStackOnNextPress()
	n := tab.MainFrame().Doc().GetElementByID("start")
	x, y := tab.Layout().Center(n)
	tab.Click(x, y)
	stack := tab.EventHandler().LastStack()
	if len(stack) == 0 {
		return nil, fmt.Errorf("experiments: no stack captured")
	}
	// Trim to the browser-relevant fragment, like the paper's figure.
	var out []string
	for _, fn := range stack {
		if i := strings.LastIndex(fn, "/"); i >= 0 {
			fn = fn[i+1:]
		}
		out = append(out, fn)
	}
	return out, nil
}

// Fig4Trace regenerates Fig. 4: the sequence of WaRR Commands recorded
// while editing a Google Sites web page ("Hello world!" typed into the
// content area, then saved).
func Fig4Trace() (command.Trace, error) {
	rec, err := RecordScenario(apps.EditSiteScenario())
	if err != nil {
		return command.Trace{}, err
	}
	return rec.Trace, nil
}

// Fig6Tree regenerates Fig. 6: the task tree WebErr infers for the
// edit-a-website session.
func Fig6Tree() (*weberr.TaskTree, error) {
	rec, err := RecordScenario(apps.EditSiteScenario())
	if err != nil {
		return nil, err
	}
	return weberr.InferTaskTree(apps.BrowserFactory(browser.DeveloperMode), rec.Trace)
}

// Fig6Grammar returns the user-interaction grammar derived from the
// Fig. 6 task tree.
func Fig6Grammar() (*weberr.Grammar, error) {
	tree, err := Fig6Tree()
	if err != nil {
		return nil, err
	}
	return weberr.FromTaskTree(tree), nil
}
