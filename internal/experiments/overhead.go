package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// PerceptionThreshold is the 100 ms human perception threshold the §VI
// experiment compares the recorder's overhead against.
const PerceptionThreshold = 100 * time.Millisecond

// OverheadResult is the §VI measurement: the wall-clock time the WaRR
// Recorder spends logging each user action while an email is composed in
// GMail.
type OverheadResult struct {
	Actions         int
	TotalLogging    time.Duration
	PerAction       time.Duration
	BelowPerception bool
}

// Overhead regenerates the §VI experiment: "We run an experiment,
// consisting of writing an email in GMail, to compute the time required
// by the WaRR Recorder to log each user action."
func Overhead() (OverheadResult, error) {
	rec, err := RecordScenario(apps.ComposeEmailScenario())
	if err != nil {
		return OverheadResult{}, err
	}
	s := rec.Stats
	return OverheadResult{
		Actions:         s.Actions,
		TotalLogging:    s.LoggingTime,
		PerAction:       s.PerAction(),
		BelowPerception: s.PerAction() < PerceptionThreshold,
	}, nil
}

// FormatOverhead renders the measurement.
func FormatOverhead(r OverheadResult) string {
	return fmt.Sprintf(
		"Recorder overhead (compose email in GMail):\n"+
			"  actions logged:   %d\n"+
			"  total logging:    %s\n"+
			"  per action:       %s\n"+
			"  below 100 ms human perception threshold: %v\n",
		r.Actions, r.TotalLogging, r.PerAction, r.BelowPerception)
}

// SitesBugResult is the §V-C case study outcome.
type SitesBugResult struct {
	// Report is the WebErr timing campaign's report.
	Report *weberr.Report
	// BugFound is true when the uninitialized-variable TypeError was
	// observed under an injected timing error.
	BugFound bool
	// Signal is the console error that exposed the bug.
	Signal string
}

// SitesBug regenerates the §V-C case study: WebErr injects timing errors
// into the recorded edit-site session; the impatient-user replay makes
// Google Sites "use an uninitialized JavaScript variable, an obvious
// bug."
func SitesBug() (SitesBugResult, error) {
	rec, err := RecordScenario(apps.EditSiteScenario())
	if err != nil {
		return SitesBugResult{}, err
	}
	rep := weberr.RunTimingCampaign(apps.BrowserFactory(browser.DeveloperMode), rec.Trace, weberr.CampaignOptions{})

	out := SitesBugResult{Report: rep}
	for _, f := range rep.Findings {
		if strings.Contains(f.Observed.Error(), "TypeError") {
			out.BugFound = true
			out.Signal = f.Observed.Error()
			break
		}
	}
	return out, nil
}

// FormatSitesBug renders the case study outcome.
func FormatSitesBug(r SitesBugResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Google Sites timing-error case study (§V-C):\n")
	fmt.Fprintf(&b, "  erroneous traces generated: %d\n", r.Report.Generated)
	fmt.Fprintf(&b, "  findings: %d\n", len(r.Report.Findings))
	fmt.Fprintf(&b, "  uninitialized-variable bug found: %v\n", r.BugFound)
	if r.BugFound {
		fmt.Fprintf(&b, "  signal: %s\n", r.Signal)
	}
	return b.String()
}
