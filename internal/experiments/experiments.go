// Package experiments implements the harnesses that regenerate every
// table and figure of the paper's evaluation:
//
//   - Fig. 3: the engine-layer stack trace of a mouse click;
//   - Fig. 4: the WaRR Command trace of editing a Google Sites page;
//   - Fig. 6: the task tree inferred from that trace;
//   - Table I: the percentage of query typos detected and fixed by the
//     Google-, Bing-, and Yahoo-shaped search engines;
//   - Table II: recording completeness of the WaRR Recorder vs the
//     Selenium-IDE-style baseline on four applications;
//   - §VI: the recorder's per-action logging overhead;
//   - §V-C: the Google Sites timing bug found by WebErr.
//
// The same harnesses back the integration tests, the benchmarks in
// bench_test.go, and the warr-bench executable, so the numbers a user
// sees always come from one code path.
package experiments

import (
	"fmt"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/record"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// Recorded is the outcome of recording one scenario: the trace,
// recorder stats, and the live recording environment (for oracles that
// inspect the original session).
type Recorded = record.Recorded

// RecordScenario runs a scenario in a fresh user-mode environment with
// the WaRR Recorder attached — the shared record path, with the live
// session's oracle required to pass — and returns the trace plus
// recorder stats.
func RecordScenario(sc apps.Scenario) (*Recorded, error) {
	rec, err := record.Record(sc, record.Options{VerifyLive: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return rec, nil
}

// ReplayTrace replays a trace in a fresh environment of the given mode
// and returns the replay result plus the environment for oracle checks.
func ReplayTrace(tr command.Trace, mode browser.Mode, opts replayer.Options) (*replayer.Result, *apps.Env, *browser.Tab, error) {
	env := apps.NewEnv(mode)
	r := replayer.New(env.Browser, opts)
	res, tab, err := r.Replay(tr)
	if err != nil {
		return nil, env, tab, fmt.Errorf("experiments: replay: %w", err)
	}
	return res, env, tab, nil
}
