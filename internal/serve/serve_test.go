package serve

// HTTP-face tests: upload → submit → SSE stream round-trips, HTTP
// cancellation producing exactly the partial result a direct context
// cancellation produces, backpressure as 503, sealed and plain AUsER
// ingestion, and — the service-parity contract — campaign findings over
// HTTP byte-identical to the direct weberr calls the one-shot CLI makes,
// on every Table II scenario.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/auser"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/registry"
	"github.com/dslab-epfl/warr/internal/replayer"
	"github.com/dslab-epfl/warr/internal/trace"
	"github.com/dslab-epfl/warr/internal/weberr"
)

// recordScenario records a scenario's correct session.
func recordScenario(t *testing.T, sc apps.Scenario) command.Trace {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	if err := sc.Run(env, tab); err != nil {
		t.Fatal(err)
	}
	rec.Detach()
	return rec.Trace()
}

// archiveBytes serializes a trace as a versioned archive, the wire
// format POST /api/traces accepts.
func archiveBytes(t *testing.T, sc apps.Scenario, tr command.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.Header{Scenario: sc.Name, App: sc.App, Recorder: "warr"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTrace(tr); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testServer boots a Server over its own engine behind httptest.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Engine == nil {
		opts.Engine = jobs.New(jobs.Options{Workers: 1, QueueDepth: 8})
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Engine().Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

// uploadTrace uploads an archive and returns the stored name.
func uploadTrace(t *testing.T, base string, archive []byte) string {
	t.Helper()
	resp, err := http.Post(base+"/api/traces", "application/octet-stream", bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("trace upload: HTTP %d: %s", resp.StatusCode, body)
	}
	var view struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view.Name
}

// waitTerminal polls a job over HTTP until it leaves queued/running.
func waitTerminal(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var view JobView
		if code := getJSON(t, base+"/api/jobs/"+id, &view); code != http.StatusOK {
			t.Fatalf("GET job %s: HTTP %d", id, code)
		}
		if view.State != "queued" && view.State != "running" {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, view.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	Event string
	Data  []byte
}

// readSSE consumes a /events stream to completion.
func readSSE(t *testing.T, url string) []sseFrame {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.Event != "" || cur.Data != nil {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return frames
}

func TestHealthzDrainingAndMetrics(t *testing.T) {
	s, ts := testServer(t, Options{})
	sc := apps.AuthenticateScenario()
	name := uploadTrace(t, ts.URL, archiveBytes(t, sc, recordScenario(t, sc)))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz said %q", body)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"warr_queue_capacity", "warr_jobs_total", "warr_engine_draining 0"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if err := s.Engine().Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "draining" {
		t.Errorf("healthz on a draining engine said %q", body)
	}
	// Submissions now map to 503.
	resp, out := postJSON(t, ts.URL+"/api/jobs", JobRequest{Kind: "replay", Trace: name})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: HTTP %d: %s", resp.StatusCode, out)
	}
}

func TestTraceUploadListAndSubmitValidation(t *testing.T) {
	_, ts := testServer(t, Options{})
	sc := apps.AuthenticateScenario()
	tr := recordScenario(t, sc)
	name := uploadTrace(t, ts.URL, archiveBytes(t, sc, tr))
	if name != sc.Name {
		t.Errorf("stored trace name %q, want scenario name %q", name, sc.Name)
	}

	var listed []struct {
		Name     string `json:"name"`
		Commands int    `json:"commands"`
	}
	if code := getJSON(t, ts.URL+"/api/traces", &listed); code != http.StatusOK {
		t.Fatalf("list traces: HTTP %d", code)
	}
	if len(listed) != 1 || listed[0].Name != name || listed[0].Commands != len(tr.Commands) {
		t.Errorf("trace listing %+v", listed)
	}

	// Garbage uploads are rejected.
	resp, err := http.Post(ts.URL+"/api/traces", "application/octet-stream", strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload: HTTP %d", resp.StatusCode)
	}

	// Submission validation: malformed body, unknown kind, unknown trace.
	for _, c := range []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{"kind":"martian","trace":"` + name + `"}`, http.StatusBadRequest},
		{`{"kind":"replay","trace":"never-uploaded"}`, http.StatusBadRequest},
		{`{"kind":"replay","trace":"` + name + `","unknownField":1}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/api/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("submit %s: HTTP %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
	if code := getJSON(t, ts.URL+"/api/jobs/no-such-job", new(map[string]any)); code != http.StatusNotFound {
		t.Errorf("GET unknown job: HTTP %d", code)
	}
}

func TestReplayJobOverHTTPStreamsSSE(t *testing.T) {
	_, ts := testServer(t, Options{})
	sc := apps.AuthenticateScenario()
	tr := recordScenario(t, sc)
	name := uploadTrace(t, ts.URL, archiveBytes(t, sc, tr))

	resp, out := postJSON(t, ts.URL+"/api/jobs", JobRequest{Kind: "replay", Trace: name})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, out)
	}
	var created JobView
	if err := json.Unmarshal(out, &created); err != nil {
		t.Fatal(err)
	}

	// The SSE stream replays the whole history and follows to the end.
	frames := readSSE(t, ts.URL+"/api/jobs/"+created.ID+"/events")
	var steps, summaries int
	var lastState string
	for _, f := range frames {
		ev, err := jobs.DecodeEvent(f.Data)
		if err != nil {
			t.Fatalf("frame %q undecodable: %v", f.Data, err)
		}
		if ev.EventType() != f.Event {
			t.Errorf("frame event %q carries a %q payload", f.Event, ev.EventType())
		}
		// The data line is exactly the jobs encoder's line — the SSE
		// stream and the CLI's -json stdout share one encoder.
		line, err := jobs.EncodeEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bytes.TrimSuffix(line, []byte("\n")), f.Data) {
			t.Errorf("SSE data %s is not the canonical event line %s", f.Data, line)
		}
		switch v := ev.(type) {
		case jobs.StepEvent:
			steps++
		case jobs.SummaryEvent:
			summaries++
		case jobs.StateEvent:
			lastState = v.State
		}
	}
	if steps != len(tr.Commands) || summaries != 1 {
		t.Errorf("stream carried %d steps, %d summaries; want %d, 1", steps, summaries, len(tr.Commands))
	}
	if lastState != "done" {
		t.Errorf("stream ended in state %q", lastState)
	}

	final := waitTerminal(t, ts.URL, created.ID)
	if final.State != "done" || final.Played != len(tr.Commands) || final.Failed != 0 {
		t.Errorf("final job view %+v", final)
	}
}

// TestHTTPCancelMatchesContextCancel is the cancellation-parity
// contract: stopping a job with POST /api/jobs/{id}/cancel produces
// exactly the partial result cancelling the context of a direct session
// produces — same steps, same counts.
func TestHTTPCancelMatchesContextCancel(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	const stopAfter = 2

	// Direct path: plain session, context cancelled after step 2.
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	direct, err := replayer.New(registry.BrowserFactory(browser.DeveloperMode)(), replayer.Options{
		Hooks: []replayer.Hooks{{
			AfterStep: func(step replayer.Step, tab *browser.Tab) {
				if step.Index == stopAfter {
					cancel(errors.New("stop"))
				}
			},
		}},
	}).NewSession(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	directRes := direct.Run()
	if !directRes.Cancelled {
		t.Fatal("direct session was not cancelled")
	}

	// HTTP path: the same hook issues the cancel over the API. The hook
	// blocks the replay goroutine until the POST returns, so the cancel
	// lands at the same command boundary.
	engine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 2})
	_, ts := testServer(t, Options{Engine: engine})
	var jobID string
	var mu sync.Mutex
	spec := jobs.Spec{Kind: jobs.KindReplay, Trace: tr, Replayer: replayer.Options{
		Hooks: []replayer.Hooks{{
			AfterStep: func(step replayer.Step, tab *browser.Tab) {
				if step.Index != stopAfter {
					return
				}
				mu.Lock()
				id := jobID
				mu.Unlock()
				resp, err := http.Post(ts.URL+"/api/jobs/"+id+"/cancel", "application/json", nil)
				if err != nil {
					t.Errorf("cancel POST: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("cancel POST: HTTP %d", resp.StatusCode)
				}
			},
		}},
	}}
	mu.Lock()
	job, err := engine.Submit(spec)
	jobID = job.ID
	mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer wcancel()
	if err := job.Wait(wctx); err != nil {
		t.Fatal(err)
	}

	view := waitTerminal(t, ts.URL, job.ID)
	if view.State != "cancelled" {
		t.Fatalf("job state %q, want cancelled", view.State)
	}
	res := job.Result()
	if res.Played != directRes.Played || res.Failed != directRes.Failed || len(res.Steps) != len(directRes.Steps) {
		t.Fatalf("HTTP-cancelled partial (%d/%d, %d steps) diverged from context-cancelled partial (%d/%d, %d steps)",
			res.Played, res.Failed, len(res.Steps),
			directRes.Played, directRes.Failed, len(directRes.Steps))
	}
	for i := range res.Steps {
		if res.Steps[i].Status != directRes.Steps[i].Status {
			t.Errorf("step %d: HTTP %v, direct %v", i, res.Steps[i].Status, directRes.Steps[i].Status)
		}
	}

	// Cancelling it again: 409, the job is finished.
	resp, err := http.Post(ts.URL+"/api/jobs/"+job.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("double cancel: HTTP %d, want 409", resp.StatusCode)
	}

	// Resume over HTTP: a new job that completes the replay.
	resp, err = http.Post(ts.URL+"/api/jobs/"+job.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var resumed JobView
	if err := json.NewDecoder(resp.Body).Decode(&resumed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("resume: HTTP %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts.URL, resumed.ID)
	if final.State != "done" || final.Played != len(tr.Commands) {
		t.Errorf("resumed job %+v, want done with %d played", final, len(tr.Commands))
	}
	// Resuming a done job: 409.
	resp, err = http.Post(ts.URL+"/api/jobs/"+resumed.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("resume of a done job: HTTP %d, want 409", resp.StatusCode)
	}
}

func TestQueueBackpressureMapsTo503(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	engine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 1})
	_, ts := testServer(t, Options{Engine: engine})
	name := uploadTrace(t, ts.URL, archiveBytes(t, apps.AuthenticateScenario(), tr))

	// Occupy the worker with a blocked job, then fill the queue.
	release := make(chan struct{})
	var once sync.Once
	blocked, err := engine.Submit(jobs.Spec{Kind: jobs.KindReplay, Trace: tr, Replayer: replayer.Options{
		Hooks: []replayer.Hooks{{
			BeforeStep: func(idx int, cmd command.Command, tab *browser.Tab) {
				once.Do(func() { <-release })
			},
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for blocked.State() == jobs.StateQueued {
		time.Sleep(time.Millisecond)
	}
	resp, out := postJSON(t, ts.URL+"/api/jobs", JobRequest{Kind: "replay", Trace: name})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: HTTP %d: %s", resp.StatusCode, out)
	}
	resp, out = postJSON(t, ts.URL+"/api/jobs", JobRequest{Kind: "replay", Trace: name})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on a full queue: HTTP %d: %s — backpressure must be 503", resp.StatusCode, out)
	}
	close(release)
}

func TestReportIngestionSealedAndPlain(t *testing.T) {
	// Record the Sites timing bug the way cmd/auser does.
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.SitesURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	doc := tab.MainFrame().Doc()
	x, y := tab.Layout().Center(doc.GetElementByID("start"))
	tab.Click(x, y)
	for _, d := range doc.Root().ElementsByTag("div") {
		if strings.TrimSpace(d.TextContent()) == "Save" {
			sx, sy := tab.Layout().Center(d)
			tab.Click(sx, sy)
			break
		}
	}
	rec.Detach()
	report, err := auser.New("save did nothing", rec.Trace(), tab, auser.Options{})
	if err != nil {
		t.Fatal(err)
	}

	key, err := auser.GenerateDeveloperKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Options{DeveloperKey: key})

	// Sealed envelope: opened with the developer key, job enqueued.
	envelope, err := auser.Seal(report, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := envelope.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/reports", "application/json", bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	var created JobView
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.Kind != "report" {
		t.Fatalf("sealed ingestion: HTTP %d, job %+v", resp.StatusCode, created)
	}
	final := waitTerminal(t, ts.URL, created.ID)
	if final.State != "done" || final.Verdict != "console-error" {
		t.Errorf("sealed ingestion finished %+v, want done with console-error verdict", final)
	}

	// Plain report: accepted without the key.
	_, tsPlain := testServer(t, Options{})
	plain, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(tsPlain.URL+"/api/reports", "application/json", bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("plain ingestion: HTTP %d", resp.StatusCode)
	}
	final = waitTerminal(t, tsPlain.URL, created.ID)
	if final.State != "done" || final.Verdict != "console-error" {
		t.Errorf("plain ingestion finished %+v", final)
	}

	// A sealed envelope hitting a keyless server is rejected, as is junk.
	resp, err = http.Post(tsPlain.URL+"/api/reports", "application/json", bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("sealed report on keyless server: HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(tsPlain.URL+"/api/reports", "application/json", strings.NewReader(`{"Description":"no trace"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("traceless report: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestCampaignFindingsMatchWeberrCLIOnTableII is the acceptance
// contract of replay-as-a-service: on every Table II scenario, the
// navigation and timing campaign findings produced through warr-serve's
// HTTP API are byte-identical to the findings the direct weberr calls
// (the one-shot CLI path) produce.
func TestCampaignFindingsMatchWeberrCLIOnTableII(t *testing.T) {
	for _, sc := range apps.TableIIScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			tr := recordScenario(t, sc)
			fresh := registry.BrowserFactory(browser.DeveloperMode)

			// The one-shot path, exactly as cmd/weberr wires it.
			tree, err := weberr.InferTaskTree(fresh, tr)
			if err != nil {
				t.Fatal(err)
			}
			g := weberr.FromTaskTree(tree)
			directNav := weberr.RunNavigationCampaign(fresh, g, weberr.CampaignOptions{})
			directTim := weberr.RunTimingCampaign(fresh, tr, weberr.CampaignOptions{})

			// The service path.
			_, ts := testServer(t, Options{})
			name := uploadTrace(t, ts.URL, archiveBytes(t, sc, tr))
			for _, c := range []struct {
				kind   string
				direct *weberr.Report
			}{
				{"navigation-campaign", directNav},
				{"timing-campaign", directTim},
			} {
				resp, out := postJSON(t, ts.URL+"/api/jobs", JobRequest{Kind: c.kind, Trace: name})
				if resp.StatusCode != http.StatusCreated {
					t.Fatalf("%s submit: HTTP %d: %s", c.kind, resp.StatusCode, out)
				}
				var created JobView
				if err := json.Unmarshal(out, &created); err != nil {
					t.Fatal(err)
				}
				final := waitTerminal(t, ts.URL, created.ID)
				if final.State != "done" {
					t.Fatalf("%s ended %s: %s", c.kind, final.State, final.Error)
				}

				// Pull the report off the SSE stream — what a service
				// client sees — and compare byte-for-byte against the
				// direct report rendered through the same event shape.
				var served *jobs.ReportEvent
				for _, f := range readSSE(t, ts.URL+"/api/jobs/"+created.ID+"/events") {
					if f.Event != "report" {
						continue
					}
					ev, err := jobs.DecodeEvent(f.Data)
					if err != nil {
						t.Fatal(err)
					}
					rep := ev.(jobs.ReportEvent)
					served = &rep
				}
				if served == nil {
					t.Fatalf("%s stream carried no report event", c.kind)
				}
				var wantFindings []jobs.FindingRecord
				for _, f := range c.direct.Findings {
					wantFindings = append(wantFindings, jobs.FindingRecord{
						Injection: f.Injection.String(),
						Observed:  f.Observed.Error(),
					})
				}
				got, err := json.Marshal(served.Findings)
				if err != nil {
					t.Fatal(err)
				}
				want, err := json.Marshal(wantFindings)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s findings over HTTP diverged from the one-shot weberr path:\n got %s\nwant %s",
						c.kind, got, want)
				}
				if served.Generated != c.direct.Generated {
					t.Errorf("%s generated %d over HTTP, %d direct", c.kind, served.Generated, c.direct.Generated)
				}
				if len(served.Findings) != len(c.direct.Findings) {
					t.Errorf("%s finding count %d over HTTP, %d direct", c.kind, len(served.Findings), len(c.direct.Findings))
				}
			}
		})
	}
}

func TestJobListOrdering(t *testing.T) {
	tr := recordScenario(t, apps.AuthenticateScenario())
	engine := jobs.New(jobs.Options{Workers: 1, QueueDepth: 8})
	_, ts := testServer(t, Options{Engine: engine})
	name := uploadTrace(t, ts.URL, archiveBytes(t, apps.AuthenticateScenario(), tr))
	var ids []string
	for i := 0; i < 3; i++ {
		resp, out := postJSON(t, ts.URL+"/api/jobs", JobRequest{Kind: "replay", Trace: name, Pacing: "none"})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: HTTP %d: %s", i, resp.StatusCode, out)
		}
		var v JobView
		if err := json.Unmarshal(out, &v); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		waitTerminal(t, ts.URL, id)
	}
	var listed []JobView
	if code := getJSON(t, ts.URL+"/api/jobs", &listed); code != http.StatusOK {
		t.Fatalf("list jobs: HTTP %d", code)
	}
	if len(listed) != len(ids) {
		t.Fatalf("listed %d jobs, want %d", len(listed), len(ids))
	}
	for i, v := range listed {
		if v.ID != ids[i] {
			t.Errorf("listing position %d holds %s, want %s (submission order)", i, v.ID, ids[i])
		}
	}
}

// TestFuzzCampaignJobOverHTTP drives a fuzz campaign as a first-class
// service job: submit with a budget and seed, watch the SSE stream's
// fuzz-progress lane, and check the final report. Validation bounds on
// the budget are exercised alongside.
func TestFuzzCampaignJobOverHTTP(t *testing.T) {
	_, ts := testServer(t, Options{})
	sc := apps.EditSiteScenario()
	tr := recordScenario(t, sc)
	name := uploadTrace(t, ts.URL, archiveBytes(t, sc, tr))

	// Budget validation: negative and absurd budgets are rejected
	// before a job is created.
	for _, body := range []string{
		`{"kind":"fuzz-campaign","trace":"` + name + `","fuzzBudget":-1}`,
		`{"kind":"fuzz-campaign","trace":"` + name + `","fuzzBudget":1000000}`,
	} {
		resp, err := http.Post(ts.URL+"/api/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: HTTP %d, want 400", body, resp.StatusCode)
		}
	}

	resp, out := postJSON(t, ts.URL+"/api/jobs", JobRequest{
		Kind: "fuzz-campaign", Trace: name, FuzzBudget: 24, FuzzSeed: 1,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, out)
	}
	var created JobView
	if err := json.Unmarshal(out, &created); err != nil {
		t.Fatal(err)
	}
	if created.Kind != "fuzz-campaign" {
		t.Errorf("created job kind %q", created.Kind)
	}

	frames := readSSE(t, ts.URL+"/api/jobs/"+created.ID+"/events")
	var fuzzEvents, outcomes int
	var last jobs.FuzzEvent
	var report *jobs.ReportEvent
	for _, f := range frames {
		ev, err := jobs.DecodeEvent(f.Data)
		if err != nil {
			t.Fatalf("frame %q undecodable: %v", f.Data, err)
		}
		switch v := ev.(type) {
		case jobs.FuzzEvent:
			fuzzEvents++
			if v.Spent < last.Spent || v.Generated < last.Generated {
				t.Errorf("fuzz progress went backwards: %+v after %+v", v, last)
			}
			last = v
		case jobs.OutcomeEvent:
			outcomes++
			if v.Injection == "" || !strings.HasPrefix(v.Injection, "fuzz: ") {
				t.Errorf("outcome injection %q does not name its program", v.Injection)
			}
			if v.Status == "replayed" && v.Coverage == "" {
				t.Errorf("replayed outcome %d carries no coverage fingerprint", v.Index)
			}
		case jobs.ReportEvent:
			report = &v
		}
	}
	if fuzzEvents < 2 { // at least one per-batch event plus the final one
		t.Fatalf("stream carried %d fuzz events, want >= 2", fuzzEvents)
	}
	if last.Budget != 24 || last.Spent > 24 {
		t.Errorf("final fuzz event budget=%d spent=%d", last.Budget, last.Spent)
	}
	if outcomes != last.Generated-last.Deduped {
		t.Errorf("stream carried %d outcomes; stats say %d scheduled or pruned",
			outcomes, last.Generated-last.Deduped)
	}
	if report == nil || report.Campaign != "fuzz" {
		t.Fatalf("stream carried no fuzz report: %+v", report)
	}
	if len(report.Findings) == 0 {
		t.Error("fuzz campaign on edit-site found nothing; the §V-C timing bug should fall out of the pace seeds")
	}
	for _, f := range report.Findings {
		if !strings.HasPrefix(f.Injection, "fuzz: ") {
			t.Errorf("finding injection %q not in fuzz form", f.Injection)
		}
	}

	final := waitTerminal(t, ts.URL, created.ID)
	if final.State != "done" || final.Findings != len(report.Findings) {
		t.Errorf("final job view %+v, want done with %d findings", final, len(report.Findings))
	}
}
