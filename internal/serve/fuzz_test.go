package serve

// Fuzzing the HTTP job-submission decoder: whatever bytes arrive on
// POST /api/jobs, DecodeJobRequest must never panic, and anything it
// accepts must satisfy every invariant the validator promises —
// otherwise a hostile body could reach the engine with an out-of-range
// spec.

import (
	"encoding/json"
	"testing"

	"github.com/dslab-epfl/warr/internal/jobs"
)

func FuzzDecodeJobRequest(f *testing.F) {
	seeds := []string{
		`{"kind":"replay","trace":"authenticate"}`,
		`{"kind":"navigation-campaign","trace":"edit-site","parallelism":8,"maxTraces":100}`,
		`{"kind":"timing-campaign","trace":"compose","pacing":"none"}`,
		`{"kind":"report","trace":"report","description":"it broke"}`,
		`{"kind":"replay","trace":"t","mode":"user","replicas":4}`,
		`{"kind":"replay","trace":"t","disablePruning":true,"disablePrefixSharing":true}`,
		`{"kind":"replay"}`,
		`{"trace":"t"}`,
		`{"kind":"martian","trace":"t"}`,
		`{"kind":"replay","trace":"t","replicas":-1}`,
		`{"kind":"replay","trace":"t","replicas":99999}`,
		`{"kind":"replay","trace":"t","mode":"root"}`,
		`{"kind":"replay","trace":"t","extra":"field"}`,
		`{"kind":"replay","trace":"t"}{"kind":"replay","trace":"t"}`,
		`[]`,
		`null`,
		`{`,
		``,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeJobRequest(data)
		if err != nil {
			if req != nil {
				t.Fatal("error with a non-nil request")
			}
			return
		}
		// Accepted: every validated invariant must hold.
		if jobs.ParseKind(req.Kind) == 0 {
			t.Fatalf("accepted unknown kind %q", req.Kind)
		}
		if req.Trace == "" {
			t.Fatal("accepted empty trace")
		}
		switch req.Mode {
		case "", "developer", "user":
		default:
			t.Fatalf("accepted mode %q", req.Mode)
		}
		switch req.Pacing {
		case "", "recorded", "none":
		default:
			t.Fatalf("accepted pacing %q", req.Pacing)
		}
		if req.Replicas < 0 || req.Replicas > 1024 {
			t.Fatalf("accepted replicas %d", req.Replicas)
		}
		if req.Parallelism < 0 || req.Parallelism > 1024 {
			t.Fatalf("accepted parallelism %d", req.Parallelism)
		}
		if req.MaxTraces < 0 {
			t.Fatalf("accepted maxTraces %d", req.MaxTraces)
		}
		// An accepted request re-marshals losslessly — the wire shape is
		// closed under decode/encode.
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-marshal: %v", err)
		}
		again, err := DecodeJobRequest(out)
		if err != nil {
			t.Fatalf("re-marshaled request rejected: %v", err)
		}
		if *again != *req {
			t.Fatalf("decode/encode not stable: %+v vs %+v", req, again)
		}
	})
}
