package serve

// The job-submission wire format and its decoder. The decoder is
// strict — unknown fields, trailing garbage, out-of-range numbers and
// unknown enum names are all rejected with a diagnostic, never a panic
// (it is fuzzed; see FuzzDecodeJobRequest).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/multiuser"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// JobRequest is the POST /api/jobs body.
type JobRequest struct {
	// Kind is replay, navigation-campaign, timing-campaign, report,
	// fuzz-campaign, or load-campaign.
	Kind string `json:"kind"`
	// Trace names an uploaded trace (see POST /api/traces). Load
	// campaigns run registered workloads instead and must omit it.
	Trace string `json:"trace,omitempty"`
	// Mode is the execution browser build: "developer" (default) or
	// "user".
	Mode string `json:"mode,omitempty"`
	// Pacing is "recorded" (default) or "none".
	Pacing string `json:"pacing,omitempty"`
	// Replicas, for replay jobs, replays the trace N times concurrently.
	Replicas int `json:"replicas,omitempty"`
	// Parallelism is the campaign executor's concurrency.
	Parallelism int `json:"parallelism,omitempty"`
	// MaxTraces bounds a navigation campaign (0 = all mutants).
	MaxTraces int `json:"maxTraces,omitempty"`
	// DisablePruning and DisablePrefixSharing are the campaign
	// ablations.
	DisablePruning       bool `json:"disablePruning,omitempty"`
	DisablePrefixSharing bool `json:"disablePrefixSharing,omitempty"`
	// FuzzBudget bounds a fuzz campaign's replay spend (0 = the engine
	// default); FuzzSeed seeds its deterministic mutation stream.
	FuzzBudget int   `json:"fuzzBudget,omitempty"`
	FuzzSeed   int64 `json:"fuzzSeed,omitempty"`
	// Description annotates report jobs.
	Description string `json:"description,omitempty"`
	// Workload names the registered multi-user workload of a load
	// campaign (required for load-campaign, rejected elsewhere).
	Workload string `json:"workload,omitempty"`
	// Users and Cohort size a load campaign: total virtual users, users
	// per shared world.
	Users  int `json:"users,omitempty"`
	Cohort int `json:"cohort,omitempty"`
	// ScheduleBudget bounds the interleavings explored per world size;
	// ScheduleSeed drives the deterministic explorer.
	ScheduleBudget int   `json:"scheduleBudget,omitempty"`
	ScheduleSeed   int64 `json:"scheduleSeed,omitempty"`
	// Duration is each world's virtual time budget ("10m"; empty = one
	// action gap per schedule slot).
	Duration string `json:"duration,omitempty"`
	// DisableLoadSharing is the schedule-result-sharing ablation.
	DisableLoadSharing bool `json:"disableLoadSharing,omitempty"`
}

// bounds a submission may not exceed; far above any sensible run, they
// exist so a hostile request cannot make the engine allocate per-unit
// state without limit.
const (
	maxReplicas       = 1024
	maxParallelism    = 1024
	maxFuzzBudget     = 65536
	maxUsers          = 1 << 21
	maxCohort         = 64
	maxScheduleBudget = 4096
	maxDuration       = 24 * time.Hour
)

// DecodeJobRequest parses and validates a job-submission body.
func DecodeJobRequest(data []byte) (*JobRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: decoding job request: %w", err)
	}
	// One JSON value only: trailing non-space content is a malformed
	// request, not an extra job.
	if dec.More() {
		return nil, errors.New("serve: decoding job request: trailing data after JSON object")
	}
	if req.Kind == "" {
		return nil, errors.New("serve: job request missing kind")
	}
	kind := jobs.ParseKind(req.Kind)
	if kind == 0 {
		return nil, fmt.Errorf("serve: unknown job kind %q", req.Kind)
	}
	if kind == jobs.KindLoadCampaign {
		if req.Trace != "" {
			return nil, errors.New("serve: load-campaign jobs run workloads, not traces")
		}
		if req.Workload == "" {
			return nil, errors.New("serve: load-campaign job missing workload")
		}
		if _, err := multiuser.LookupWorkload(req.Workload); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	} else {
		if req.Trace == "" {
			return nil, errors.New("serve: job request missing trace")
		}
		if req.Workload != "" || req.Users != 0 || req.Cohort != 0 ||
			req.ScheduleBudget != 0 || req.ScheduleSeed != 0 || req.Duration != "" || req.DisableLoadSharing {
			return nil, fmt.Errorf("serve: load-campaign fields are not valid on a %s job", req.Kind)
		}
	}
	switch req.Mode {
	case "", "developer", "user":
	default:
		return nil, fmt.Errorf("serve: unknown mode %q (want developer or user)", req.Mode)
	}
	switch req.Pacing {
	case "", "recorded", "none":
	default:
		return nil, fmt.Errorf("serve: unknown pacing %q (want recorded or none)", req.Pacing)
	}
	if req.Replicas < 0 || req.Replicas > maxReplicas {
		return nil, fmt.Errorf("serve: replicas %d out of range [0, %d]", req.Replicas, maxReplicas)
	}
	if req.Parallelism < 0 || req.Parallelism > maxParallelism {
		return nil, fmt.Errorf("serve: parallelism %d out of range [0, %d]", req.Parallelism, maxParallelism)
	}
	if req.MaxTraces < 0 {
		return nil, fmt.Errorf("serve: maxTraces %d negative", req.MaxTraces)
	}
	if req.FuzzBudget < 0 || req.FuzzBudget > maxFuzzBudget {
		return nil, fmt.Errorf("serve: fuzzBudget %d out of range [0, %d]", req.FuzzBudget, maxFuzzBudget)
	}
	if req.Users < 0 || req.Users > maxUsers {
		return nil, fmt.Errorf("serve: users %d out of range [0, %d]", req.Users, maxUsers)
	}
	if req.Cohort < 0 || req.Cohort > maxCohort {
		return nil, fmt.Errorf("serve: cohort %d out of range [0, %d]", req.Cohort, maxCohort)
	}
	if req.ScheduleBudget < 0 || req.ScheduleBudget > maxScheduleBudget {
		return nil, fmt.Errorf("serve: scheduleBudget %d out of range [0, %d]", req.ScheduleBudget, maxScheduleBudget)
	}
	if req.Duration != "" {
		d, err := time.ParseDuration(req.Duration)
		if err != nil {
			return nil, fmt.Errorf("serve: parsing duration: %w", err)
		}
		if d < 0 || d > maxDuration {
			return nil, fmt.Errorf("serve: duration %s out of range [0, %s]", d, maxDuration)
		}
	}
	return &req, nil
}

// specFor resolves a validated request into an engine spec.
func (s *Server) specFor(req *JobRequest) (jobs.Spec, error) {
	if jobs.ParseKind(req.Kind) == jobs.KindLoadCampaign {
		// Load campaigns are self-contained: the workload name stands in
		// for the trace, and the duration string was validated already.
		d, _ := time.ParseDuration(req.Duration)
		return jobs.Spec{
			Kind:               jobs.KindLoadCampaign,
			Workload:           req.Workload,
			Users:              req.Users,
			Cohort:             req.Cohort,
			ScheduleBudget:     req.ScheduleBudget,
			ScheduleSeed:       req.ScheduleSeed,
			Duration:           d,
			Parallelism:        req.Parallelism,
			DisableLoadSharing: req.DisableLoadSharing,
			Mode:               modeFor(req.Mode),
		}, nil
	}
	st, ok := s.Trace(req.Trace)
	if !ok {
		return jobs.Spec{}, fmt.Errorf("serve: unknown trace %q (upload it first)", req.Trace)
	}
	spec := jobs.Spec{
		Kind:                 jobs.ParseKind(req.Kind),
		Trace:                st.Trace,
		TraceName:            st.Name,
		Replicas:             req.Replicas,
		Parallelism:          req.Parallelism,
		MaxTraces:            req.MaxTraces,
		DisablePruning:       req.DisablePruning,
		DisablePrefixSharing: req.DisablePrefixSharing,
		FuzzBudget:           req.FuzzBudget,
		FuzzSeed:             req.FuzzSeed,
		Description:          req.Description,
	}
	spec.Mode = modeFor(req.Mode)
	if req.Pacing == "none" {
		spec.Replayer.Pacing = replayer.PaceNone
	}
	return spec, nil
}

// modeFor maps a validated mode name to the browser build it selects.
func modeFor(name string) browser.Mode {
	if name == "user" {
		return browser.UserMode
	}
	return 0 // engine default: developer
}
