package serve

// The job-submission wire format and its decoder. The decoder is
// strict — unknown fields, trailing garbage, out-of-range numbers and
// unknown enum names are all rejected with a diagnostic, never a panic
// (it is fuzzed; see FuzzDecodeJobRequest).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// JobRequest is the POST /api/jobs body.
type JobRequest struct {
	// Kind is replay, navigation-campaign, timing-campaign, report, or
	// fuzz-campaign.
	Kind string `json:"kind"`
	// Trace names an uploaded trace (see POST /api/traces).
	Trace string `json:"trace"`
	// Mode is the execution browser build: "developer" (default) or
	// "user".
	Mode string `json:"mode,omitempty"`
	// Pacing is "recorded" (default) or "none".
	Pacing string `json:"pacing,omitempty"`
	// Replicas, for replay jobs, replays the trace N times concurrently.
	Replicas int `json:"replicas,omitempty"`
	// Parallelism is the campaign executor's concurrency.
	Parallelism int `json:"parallelism,omitempty"`
	// MaxTraces bounds a navigation campaign (0 = all mutants).
	MaxTraces int `json:"maxTraces,omitempty"`
	// DisablePruning and DisablePrefixSharing are the campaign
	// ablations.
	DisablePruning       bool `json:"disablePruning,omitempty"`
	DisablePrefixSharing bool `json:"disablePrefixSharing,omitempty"`
	// FuzzBudget bounds a fuzz campaign's replay spend (0 = the engine
	// default); FuzzSeed seeds its deterministic mutation stream.
	FuzzBudget int   `json:"fuzzBudget,omitempty"`
	FuzzSeed   int64 `json:"fuzzSeed,omitempty"`
	// Description annotates report jobs.
	Description string `json:"description,omitempty"`
}

// bounds a submission may not exceed; far above any sensible run, they
// exist so a hostile request cannot make the engine allocate per-unit
// state without limit.
const (
	maxReplicas    = 1024
	maxParallelism = 1024
	maxFuzzBudget  = 65536
)

// DecodeJobRequest parses and validates a job-submission body.
func DecodeJobRequest(data []byte) (*JobRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: decoding job request: %w", err)
	}
	// One JSON value only: trailing non-space content is a malformed
	// request, not an extra job.
	if dec.More() {
		return nil, errors.New("serve: decoding job request: trailing data after JSON object")
	}
	if req.Kind == "" {
		return nil, errors.New("serve: job request missing kind")
	}
	if jobs.ParseKind(req.Kind) == 0 {
		return nil, fmt.Errorf("serve: unknown job kind %q", req.Kind)
	}
	if req.Trace == "" {
		return nil, errors.New("serve: job request missing trace")
	}
	switch req.Mode {
	case "", "developer", "user":
	default:
		return nil, fmt.Errorf("serve: unknown mode %q (want developer or user)", req.Mode)
	}
	switch req.Pacing {
	case "", "recorded", "none":
	default:
		return nil, fmt.Errorf("serve: unknown pacing %q (want recorded or none)", req.Pacing)
	}
	if req.Replicas < 0 || req.Replicas > maxReplicas {
		return nil, fmt.Errorf("serve: replicas %d out of range [0, %d]", req.Replicas, maxReplicas)
	}
	if req.Parallelism < 0 || req.Parallelism > maxParallelism {
		return nil, fmt.Errorf("serve: parallelism %d out of range [0, %d]", req.Parallelism, maxParallelism)
	}
	if req.MaxTraces < 0 {
		return nil, fmt.Errorf("serve: maxTraces %d negative", req.MaxTraces)
	}
	if req.FuzzBudget < 0 || req.FuzzBudget > maxFuzzBudget {
		return nil, fmt.Errorf("serve: fuzzBudget %d out of range [0, %d]", req.FuzzBudget, maxFuzzBudget)
	}
	return &req, nil
}

// specFor resolves a validated request into an engine spec.
func (s *Server) specFor(req *JobRequest) (jobs.Spec, error) {
	st, ok := s.Trace(req.Trace)
	if !ok {
		return jobs.Spec{}, fmt.Errorf("serve: unknown trace %q (upload it first)", req.Trace)
	}
	spec := jobs.Spec{
		Kind:                 jobs.ParseKind(req.Kind),
		Trace:                st.Trace,
		TraceName:            st.Name,
		Replicas:             req.Replicas,
		Parallelism:          req.Parallelism,
		MaxTraces:            req.MaxTraces,
		DisablePruning:       req.DisablePruning,
		DisablePrefixSharing: req.DisablePrefixSharing,
		FuzzBudget:           req.FuzzBudget,
		FuzzSeed:             req.FuzzSeed,
		Description:          req.Description,
	}
	if req.Mode == "user" {
		spec.Mode = browser.UserMode
	}
	if req.Pacing == "none" {
		spec.Replayer.Pacing = replayer.PaceNone
	}
	return spec, nil
}
