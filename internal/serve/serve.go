// Package serve exposes the shared job engine over HTTP: replay as a
// service. A Server wraps one jobs.Engine behind a JSON API — trace
// upload, job submission with queue backpressure, step-by-step SSE
// streaming, cancel/resume, AUsER report ingestion, Prometheus-style
// metrics — and warr-serve keeps one alive behind net/http with
// signal-driven graceful drain. The handlers hold no execution logic of
// their own: every job runs on the same engine path the one-shot CLIs
// use.
package serve

import (
	"bytes"
	"crypto/rsa"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/dslab-epfl/warr/internal/auser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/distrib"
	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/trace"
)

// maxBodyBytes bounds request bodies (traces, reports): 16 MiB, far
// above any Table II archive.
const maxBodyBytes = 16 << 20

// Options configure a Server.
type Options struct {
	// Engine is the job engine to serve; nil builds a default one.
	Engine *jobs.Engine
	// DeveloperKey, when set, lets /api/reports accept sealed AUsER
	// envelopes (§IV-D): reports encrypted to the developers' public key
	// are opened with this private key. Plain reports are always
	// accepted.
	DeveloperKey *rsa.PrivateKey
	// Distrib, when set, mounts the distributed-campaign coordinator
	// under /api/distrib/ (lease polls, image downloads, completions,
	// heartbeats for warr-worker processes) and appends its worker-pool
	// gauges to /metrics. Pass the same pool to the engine as its
	// Distributor, or campaigns will never be offered to the workers.
	Distrib *distrib.Pool
}

// Server is the HTTP face of a job engine.
type Server struct {
	engine  *jobs.Engine
	key     *rsa.PrivateKey
	distrib *distrib.Pool
	mux     *http.ServeMux

	mu     sync.Mutex
	traces map[string]StoredTrace
	order  []string
	nextID int
}

// StoredTrace is one uploaded trace.
type StoredTrace struct {
	// Name is the handle job submissions reference.
	Name string
	// Header is the archive metadata the trace arrived with.
	Header trace.Header
	// Trace is the decoded command trace.
	Trace command.Trace
}

// New builds a server over the engine.
func New(opts Options) *Server {
	if opts.Engine == nil {
		opts.Engine = jobs.New(jobs.Options{})
	}
	s := &Server{
		engine:  opts.Engine,
		key:     opts.DeveloperKey,
		distrib: opts.Distrib,
		mux:     http.NewServeMux(),
		traces:  make(map[string]StoredTrace),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /api/traces", s.handleUploadTrace)
	s.mux.HandleFunc("GET /api/traces", s.handleListTraces)
	s.mux.HandleFunc("POST /api/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /api/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /api/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /api/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("POST /api/jobs/{id}/cancel", s.handleCancelJob)
	s.mux.HandleFunc("POST /api/jobs/{id}/resume", s.handleResumeJob)
	s.mux.HandleFunc("POST /api/reports", s.handleIngestReport)
	if s.distrib != nil {
		s.mux.Handle("/api/distrib/", http.StripPrefix("/api/distrib", s.distrib.Handler()))
	}
	return s
}

// Engine returns the engine the server fronts (for drain on shutdown).
func (s *Server) Engine() *jobs.Engine { return s.engine }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// AddTrace stores a trace under a name, making it submittable by
// reference; an empty name derives one from the header (scenario name,
// else "trace-N"). It returns the stored handle.
func (s *Server) AddTrace(name string, h trace.Header, tr command.Trace) StoredTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		name = h.Scenario
	}
	if name == "" {
		s.nextID++
		name = fmt.Sprintf("trace-%d", s.nextID)
	}
	st := StoredTrace{Name: name, Header: h, Trace: tr}
	if _, exists := s.traces[name]; !exists {
		s.order = append(s.order, name)
	}
	s.traces[name] = st
	return st
}

// Trace looks a stored trace up by name.
func (s *Server) Trace(name string) (StoredTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.traces[name]
	return st, ok
}

// Traces lists stored traces in upload order.
func (s *Server) Traces() []StoredTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoredTrace, len(s.order))
	for i, name := range s.order {
		out[i] = s.traces[name]
	}
	return out
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.engine.Draining() {
		// Draining is still healthy — in-flight work is finishing — but
		// load balancers should stop routing new submissions here.
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.engine.WriteMetrics(w)
	if s.distrib != nil {
		s.distrib.WriteMetrics(w)
	}
}

// traceView is the JSON shape traces list/upload responses use.
type traceView struct {
	Name     string `json:"name"`
	App      string `json:"app,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	StartURL string `json:"startURL"`
	Commands int    `json:"commands"`
}

func viewTrace(st StoredTrace) traceView {
	return traceView{
		Name:     st.Name,
		App:      st.Header.App,
		Scenario: st.Header.Scenario,
		StartURL: st.Trace.StartURL,
		Commands: len(st.Trace.Commands),
	}
}

func (s *Server) handleUploadTrace(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, errors.New("trace too large"))
		return
	}
	h, tr, err := trace.ReadAuto(bytes.NewReader(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st := s.AddTrace(r.URL.Query().Get("name"), h, tr)
	writeJSON(w, http.StatusCreated, viewTrace(st))
}

func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	stored := s.Traces()
	views := make([]traceView, len(stored))
	for i, st := range stored {
		views[i] = viewTrace(st)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	req, err := DecodeJobRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := s.specFor(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.submit(w, spec)
}

// submit enqueues a spec, mapping backpressure to 503.
func (s *Server) submit(w http.ResponseWriter, spec jobs.Spec) {
	job, err := s.engine.Submit(spec)
	if err != nil {
		if errors.Is(err, jobs.ErrQueueFull) || errors.Is(err, jobs.ErrDraining) {
			// Backpressure, never silent dropping: the client retries.
			httpUnavailable(w, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, viewJob(job))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	all := s.engine.Jobs()
	views := make([]JobView, len(all))
	for i, job := range all {
		views[i] = viewJob(job)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.engine.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, viewJob(job))
}

// handleJobEvents streams the job's event bus as server-sent events:
// the full history first (late subscribers see every step), then live
// events, one SSE frame per JSON event line, until the job's stream
// completes or the client goes away.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, err := s.engine.Get(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch, stop := job.Events().Subscribe(0)
	defer stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // stream complete
			}
			line, err := jobs.EncodeEvent(ev)
			if err != nil {
				return
			}
			// line ends with '\n'; the extra newline closes the frame.
			fmt.Fprintf(w, "event: %s\ndata: %s\n", ev.EventType(), line)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.engine.Cancel(id, nil)
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		httpError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, jobs.ErrJobFinished):
		httpError(w, http.StatusConflict, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	job, err := s.engine.Get(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, viewJob(job))
}

func (s *Server) handleResumeJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.engine.Resume(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		httpError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, jobs.ErrNotResumable):
		httpError(w, http.StatusConflict, err)
		return
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrDraining):
		httpUnavailable(w, err)
		return
	case err != nil:
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, viewJob(job))
}

// handleIngestReport is the AUsER endpoint (the paper's Fig. 1 server
// side): a user experience report arrives — sealed to the developers'
// key or in the clear — its trace is stored, and a report-ingestion job
// (replay → minimize → classify) is enqueued.
func (s *Server) handleIngestReport(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	rep, err := s.decodeReport(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st := s.AddTrace("", trace.Header{Scenario: "report", Recorder: "auser"}, rep.Trace)
	s.submit(w, jobs.Spec{
		Kind:        jobs.KindReport,
		Trace:       rep.Trace,
		TraceName:   st.Name,
		Description: rep.Description,
	})
}

// decodeReport parses an ingestion body: a sealed auser.Envelope (when
// the server holds the developers' key) or a plain JSON report.
func (s *Server) decodeReport(body []byte) (*auser.Report, error) {
	var probe struct {
		WrappedKey []byte `json:"wrapped_key"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return nil, fmt.Errorf("serve: decoding report: %w", err)
	}
	if len(probe.WrappedKey) > 0 {
		if s.key == nil {
			return nil, errors.New("serve: sealed report but no developer key configured")
		}
		env, err := auser.DecodeEnvelope(body)
		if err != nil {
			return nil, err
		}
		return auser.Open(env, s.key)
	}
	var rep auser.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		return nil, fmt.Errorf("serve: decoding report: %w", err)
	}
	if len(rep.Trace.Commands) == 0 && rep.Trace.StartURL == "" {
		return nil, errors.New("serve: report carries no trace")
	}
	return &rep, nil
}

// ---- JSON plumbing ----

// JobView is the JSON shape of a job in API responses.
type JobView struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	Trace string `json:"trace,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	Error     string `json:"error,omitempty"`
	Cause     string `json:"cause,omitempty"`
	ResumedBy string `json:"resumedBy,omitempty"`

	// Played/Failed summarize a (possibly partial) replay result.
	Played int `json:"played,omitempty"`
	Failed int `json:"failed,omitempty"`
	// Findings counts a finished campaign's findings.
	Findings int `json:"findings,omitempty"`
	// Verdict is a finished report-ingestion job's classification.
	Verdict string `json:"verdict,omitempty"`
}

func viewJob(job *jobs.Job) JobView {
	v := JobView{
		ID:        job.ID,
		Kind:      job.Spec.Kind.String(),
		State:     job.State().String(),
		Trace:     job.Spec.TraceName,
		Created:   job.Created(),
		ResumedBy: job.ResumedBy(),
	}
	if t := job.Started(); !t.IsZero() {
		v.Started = &t
	}
	if t := job.Finished(); !t.IsZero() {
		v.Finished = &t
	}
	if err := job.Err(); err != nil {
		v.Error = err.Error()
	}
	if cause := job.CancelCause(); cause != nil {
		v.Cause = cause.Error()
	}
	if res := job.Result(); res != nil {
		v.Played = res.Played
		v.Failed = res.Failed
	}
	if rep := job.Report(); rep != nil {
		v.Findings = len(rep.Findings)
	}
	if cls := job.Classification(); cls != nil {
		v.Verdict = cls.Verdict
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// httpUnavailable answers backpressure with 503 plus a Retry-After
// hint, so well-behaved clients pace their retries instead of hammering
// a full queue.
func httpUnavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable, err)
}
