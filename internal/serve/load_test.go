package serve

// Load campaigns over HTTP: the warr-serve face of internal/multiuser.
// The parity contract under test — a load-campaign job submitted over
// the API produces, on its SSE stream, exactly the findings a direct
// in-process run (what warr-load prints) produces: same injection
// strings, same schedules, same coverage, for the same (seed, budget).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/jobs"
	"github.com/dslab-epfl/warr/internal/multiuser"
	"github.com/dslab-epfl/warr/internal/weberr"
)

func TestLoadCampaignOverHTTPMatchesDirectRun(t *testing.T) {
	direct, err := multiuser.Run(context.Background(), multiuser.Options{
		Workload: "sites-notes", Users: 2, Cohort: 2, Budget: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Findings) == 0 {
		t.Fatal("the reference run surfaced no findings; the test needs a contention bug")
	}

	_, ts := testServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/api/jobs", map[string]any{
		"kind":           "load-campaign",
		"workload":       "sites-notes",
		"users":          2,
		"cohort":         2,
		"scheduleBudget": 4,
		"scheduleSeed":   1,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Kind != "load-campaign" {
		t.Errorf("job kind = %q, want load-campaign", view.Kind)
	}

	final := waitTerminal(t, ts.URL, view.ID)
	if final.State != "done" {
		t.Fatalf("job state = %s (error %q), want done", final.State, final.Error)
	}
	if final.Findings != len(direct.Findings) {
		t.Errorf("job view findings = %d, want %d", final.Findings, len(direct.Findings))
	}

	var loads []jobs.LoadEvent
	var reports []jobs.ReportEvent
	for _, fr := range readSSE(t, ts.URL+"/api/jobs/"+view.ID+"/events") {
		ev, err := jobs.DecodeEvent(fr.Data)
		if err != nil {
			t.Fatalf("decoding %s frame: %v", fr.Event, err)
		}
		switch v := ev.(type) {
		case jobs.LoadEvent:
			loads = append(loads, v)
		case jobs.ReportEvent:
			reports = append(reports, v)
		}
	}
	if len(loads) == 0 {
		t.Fatal("no load frames on the SSE stream")
	}
	closing := loads[len(loads)-1]
	if closing.CoverageBits != direct.CoverageBits || closing.Findings != len(direct.Findings) ||
		closing.Users != direct.Users || closing.Worlds != direct.Worlds {
		t.Errorf("closing frame %+v does not match direct report %+v", closing, direct)
	}
	if len(reports) != 1 || reports[0].Campaign != "load" {
		t.Fatalf("report frames = %+v, want one load report", reports)
	}
	if len(reports[0].Findings) != len(direct.Findings) {
		t.Fatalf("SSE findings = %d, want %d", len(reports[0].Findings), len(direct.Findings))
	}
	for i, f := range direct.Findings {
		wantInj := weberr.Injection{Kind: weberr.Interleave, Detail: f.Schedule}.String()
		wantObs := fmt.Sprintf("[%s] %s", f.Kind, f.Detail)
		got := reports[0].Findings[i]
		if got.Injection != wantInj || got.Observed != wantObs {
			t.Errorf("finding %d = %+v, want injection %q observed %q", i, got, wantInj, wantObs)
		}
	}

	// The campaign's counters surfaced on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"warr_load_users_total 2",
		"warr_load_last_users 2",
		fmt.Sprintf("warr_load_findings_total %d", len(direct.Findings)),
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

func TestLoadCampaignRequestValidation(t *testing.T) {
	_, ts := testServer(t, Options{})
	cases := []struct {
		name string
		body map[string]any
		want string
	}{
		{"missing workload", map[string]any{"kind": "load-campaign"}, "missing workload"},
		{"unknown workload", map[string]any{"kind": "load-campaign", "workload": "nope"}, "unknown workload"},
		{"trace on load job", map[string]any{"kind": "load-campaign", "workload": "mixed", "trace": "t"}, "not traces"},
		{"load fields on replay", map[string]any{"kind": "replay", "trace": "t", "users": 4}, "not valid"},
		{"users out of range", map[string]any{"kind": "load-campaign", "workload": "mixed", "users": 1 << 30}, "out of range"},
		{"cohort out of range", map[string]any{"kind": "load-campaign", "workload": "mixed", "cohort": 65}, "out of range"},
		{"budget out of range", map[string]any{"kind": "load-campaign", "workload": "mixed", "scheduleBudget": 4097}, "out of range"},
		{"bad duration", map[string]any{"kind": "load-campaign", "workload": "mixed", "duration": "fast"}, "parsing duration"},
		{"excessive duration", map[string]any{"kind": "load-campaign", "workload": "mixed", "duration": "25h"}, "out of range"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/api/jobs", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400 (%s)", c.name, resp.StatusCode, body)
			continue
		}
		if !strings.Contains(string(body), c.want) {
			t.Errorf("%s: error %s lacks %q", c.name, body, c.want)
		}
	}
}
