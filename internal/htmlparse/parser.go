package htmlparse

import (
	"strings"

	"github.com/dslab-epfl/warr/internal/dom"
)

// autoClose maps a tag to the set of open tags it implicitly closes when
// it starts. This covers the recovery cases real pages depend on.
var autoClose = map[string][]string{
	"li":    {"li"},
	"p":     {"p"},
	"td":    {"td", "th"},
	"th":    {"td", "th"},
	"tr":    {"tr", "td", "th"},
	"thead": {"tr", "td", "th"},
	"tbody": {"tr", "td", "th", "thead"},
	"option": {
		"option",
	},
}

// headOnly tags belong in <head>; everything else forces <body>.
var headOnly = map[string]bool{
	"title": true, "meta": true, "link": true, "base": true,
	"style": true, "script": true,
}

// Parse parses HTML source into a Document. It never fails: malformed
// input produces a best-effort tree, as in a real browser.
func Parse(src, url string) *dom.Document {
	p := &parser{z: NewTokenizer(src)}
	p.run()
	return dom.WrapDocument(p.doc, url)
}

// ParseFragment parses src as a sequence of nodes without the implicit
// html/head/body skeleton. It is used for innerHTML-style assignment from
// scripts.
func ParseFragment(src string) []*dom.Node {
	root := dom.NewElement("#fragment")
	p := &parser{fragment: root}
	p.z = NewTokenizer(src)
	p.stack = []*dom.Node{root}
	for {
		tok, ok := p.z.Next()
		if !ok {
			break
		}
		p.fragmentToken(tok)
	}
	return root.Children()
}

type parser struct {
	z        *Tokenizer
	doc      *dom.Node
	html     *dom.Node
	head     *dom.Node
	body     *dom.Node
	stack    []*dom.Node // open elements; stack[0] is html or fragment root
	inHead   bool
	fragment *dom.Node
}

func (p *parser) run() {
	p.doc = dom.NewDocumentNode()
	p.html = dom.NewElement("html")
	p.head = dom.NewElement("head")
	p.body = dom.NewElement("body")
	p.doc.AppendChild(p.html)
	p.html.AppendChild(p.head)
	p.html.AppendChild(p.body)
	p.stack = []*dom.Node{p.body}
	p.inHead = true

	for {
		tok, ok := p.z.Next()
		if !ok {
			return
		}
		p.token(tok)
	}
}

func (p *parser) top() *dom.Node { return p.stack[len(p.stack)-1] }

func (p *parser) token(tok Token) {
	switch tok.Type {
	case DoctypeToken:
		// Recorded for completeness; the simulated browser renders in a
		// single mode, so the doctype carries no behaviour.
	case CommentToken:
		p.top().AppendChild(dom.NewComment(tok.Data))
	case TextToken:
		p.textToken(tok)
	case StartTagToken, SelfClosingTagToken:
		p.startToken(tok)
	case EndTagToken:
		p.endToken(tok)
	}
}

func (p *parser) textToken(tok Token) {
	if strings.TrimSpace(tok.Data) == "" && p.top() == p.body && p.body.NumChildren() == 0 {
		return // drop leading whitespace before any body content
	}
	p.top().AppendChild(dom.NewText(tok.Data))
}

func (p *parser) startToken(tok Token) {
	name := tok.Data
	switch name {
	case "html":
		for _, a := range tok.Attrs {
			p.html.SetAttr(a.Name, a.Value)
		}
		return
	case "head":
		p.inHead = true
		return
	case "body":
		p.inHead = false
		for _, a := range tok.Attrs {
			p.body.SetAttr(a.Name, a.Value)
		}
		return
	}

	el := dom.NewElement(name)
	for _, a := range tok.Attrs {
		el.SetAttr(a.Name, a.Value)
	}

	parent := p.top()
	if p.inHead && headOnly[name] && parent == p.body {
		p.head.AppendChild(el)
	} else {
		p.inHead = false
		p.closeImplied(name)
		p.top().AppendChild(el)
	}

	if tok.Type == StartTagToken && !dom.IsVoidElement(name) {
		p.stack = append(p.stack, el)
	}
}

// closeImplied pops open elements that the incoming tag auto-closes.
func (p *parser) closeImplied(name string) {
	closers, ok := autoClose[name]
	if !ok {
		return
	}
	for len(p.stack) > 1 {
		t := p.top().Tag
		closed := false
		for _, c := range closers {
			if t == c {
				p.stack = p.stack[:len(p.stack)-1]
				closed = true
				break
			}
		}
		if !closed {
			return
		}
	}
}

func (p *parser) endToken(tok Token) {
	name := tok.Data
	if name == "html" || name == "body" || name == "head" {
		p.inHead = false
		return
	}
	// Pop to the nearest matching open element; ignore stray end tags.
	for i := len(p.stack) - 1; i >= 1; i-- {
		if p.stack[i].Tag == name {
			p.stack = p.stack[:i]
			return
		}
	}
}

func (p *parser) fragmentToken(tok Token) {
	switch tok.Type {
	case DoctypeToken:
	case CommentToken:
		p.top().AppendChild(dom.NewComment(tok.Data))
	case TextToken:
		p.top().AppendChild(dom.NewText(tok.Data))
	case StartTagToken, SelfClosingTagToken:
		el := dom.NewElement(tok.Data)
		for _, a := range tok.Attrs {
			el.SetAttr(a.Name, a.Value)
		}
		p.closeImplied(tok.Data)
		p.top().AppendChild(el)
		if tok.Type == StartTagToken && !dom.IsVoidElement(tok.Data) {
			p.stack = append(p.stack, el)
		}
	case EndTagToken:
		for i := len(p.stack) - 1; i >= 1; i-- {
			if p.stack[i].Tag == tok.Data {
				p.stack = p.stack[:i]
				return
			}
		}
	}
}
