package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/dslab-epfl/warr/internal/dom"
)

func TestParseBasicDocument(t *testing.T) {
	d := Parse(`<html><head><title>T</title></head><body><div id="x">hi</div></body></html>`, "u")
	if d.Title() != "T" {
		t.Errorf("Title = %q", d.Title())
	}
	el := d.GetElementByID("x")
	if el == nil || el.TextContent() != "hi" {
		t.Fatalf("div#x missing or wrong text")
	}
	if d.URL != "u" {
		t.Errorf("URL = %q", d.URL)
	}
}

func TestImplicitSkeleton(t *testing.T) {
	d := Parse(`<div>loose</div>`, "u")
	if d.DocumentElement() == nil || d.Head() == nil || d.Body() == nil {
		t.Fatal("skeleton not synthesized")
	}
	if got := d.Body().TextContent(); got != "loose" {
		t.Fatalf("body text = %q", got)
	}
}

func TestAttributes(t *testing.T) {
	d := Parse(`<input type="text" id=q disabled value='a b'>`, "u")
	in := d.GetElementByID("q")
	if in == nil {
		t.Fatal("input not found")
	}
	if v, _ := in.Attr("type"); v != "text" {
		t.Errorf("type = %q", v)
	}
	if v, _ := in.Attr("value"); v != "a b" {
		t.Errorf("value = %q", v)
	}
	if !in.HasAttr("disabled") {
		t.Error("boolean attribute lost")
	}
}

func TestVoidElements(t *testing.T) {
	d := Parse(`<div><br><img src="a.png"><span>after</span></div>`, "u")
	div := d.Body().FirstChild()
	if div.NumChildren() != 3 {
		t.Fatalf("children = %d, want 3 (void elements must not nest)", div.NumChildren())
	}
}

func TestSelfClosingTag(t *testing.T) {
	d := Parse(`<div><span/><b>x</b></div>`, "u")
	div := d.Body().FirstChild()
	spans := div.ElementsByTag("span")
	if len(spans) != 1 || spans[0].NumChildren() != 0 {
		t.Fatal("self-closing span mishandled")
	}
	if len(div.ElementsByTag("b")) != 1 {
		t.Fatal("element after self-closing tag lost")
	}
}

func TestScriptRawText(t *testing.T) {
	src := `<script>if (a < b && c > d) { x = "</div>"; }</script>`
	// Note: a real tokenizer stops raw text at "</script" only.
	d := Parse(`<html><head>`+src+`</head><body></body></html>`, "u")
	scripts := d.Root().ElementsByTag("script")
	if len(scripts) != 1 {
		t.Fatalf("scripts = %d, want 1", len(scripts))
	}
	got := scripts[0].TextContent()
	if !strings.Contains(got, "a < b && c > d") || !strings.Contains(got, "</div>") {
		t.Fatalf("script text = %q", got)
	}
}

func TestHeadElementsGoToHead(t *testing.T) {
	d := Parse(`<title>T</title><meta charset="utf8"><div>body stuff</div>`, "u")
	if len(d.Head().ElementsByTag("title")) != 1 {
		t.Error("title not in head")
	}
	if len(d.Head().ElementsByTag("meta")) != 1 {
		t.Error("meta not in head")
	}
	if len(d.Body().ElementsByTag("div")) != 1 {
		t.Error("div not in body")
	}
}

func TestAutoCloseLi(t *testing.T) {
	d := Parse(`<ul><li>one<li>two<li>three</ul>`, "u")
	lis := d.Root().ElementsByTag("li")
	if len(lis) != 3 {
		t.Fatalf("li count = %d, want 3", len(lis))
	}
	for _, li := range lis {
		if len(li.ElementsByTag("li")) != 0 {
			t.Fatal("li elements nested instead of siblings")
		}
	}
}

func TestAutoCloseTableCells(t *testing.T) {
	d := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`, "u")
	if got := len(d.Root().ElementsByTag("tr")); got != 2 {
		t.Fatalf("tr count = %d, want 2", got)
	}
	if got := len(d.Root().ElementsByTag("td")); got != 3 {
		t.Fatalf("td count = %d, want 3", got)
	}
}

func TestStrayEndTagIgnored(t *testing.T) {
	d := Parse(`<div>a</span>b</div>`, "u")
	if got := d.Body().TextContent(); got != "ab" {
		t.Fatalf("text = %q, want ab", got)
	}
}

func TestUnclosedElements(t *testing.T) {
	d := Parse(`<div><span>never closed`, "u")
	span := d.Root().ElementsByTag("span")
	if len(span) != 1 || span[0].TextContent() != "never closed" {
		t.Fatal("unclosed elements mishandled")
	}
}

func TestComments(t *testing.T) {
	d := Parse(`<div><!-- hidden --></div>`, "u")
	div := d.Body().FirstChild()
	if div.NumChildren() != 1 || div.FirstChild().Type != dom.CommentNode {
		t.Fatal("comment not parsed")
	}
	if div.FirstChild().Data != " hidden " {
		t.Fatalf("comment body = %q", div.FirstChild().Data)
	}
}

func TestDoctypeSkipped(t *testing.T) {
	d := Parse("<!DOCTYPE html><html><body>x</body></html>", "u")
	if got := d.Body().TextContent(); got != "x" {
		t.Fatalf("text = %q", got)
	}
}

func TestEntities(t *testing.T) {
	d := Parse(`<div title="a&quot;b">1 &lt; 2 &amp;&amp; 3 &gt; 2&#33; &#x41;</div>`, "u")
	div := d.Body().FirstChild()
	if got := div.TextContent(); got != "1 < 2 && 3 > 2! A" {
		t.Fatalf("text = %q", got)
	}
	if got, _ := div.Attr("title"); got != `a"b` {
		t.Fatalf("title = %q", got)
	}
}

func TestBareAmpersandLiteral(t *testing.T) {
	d := Parse(`<div>fish & chips</div>`, "u")
	if got := d.Body().TextContent(); got != "fish & chips" {
		t.Fatalf("text = %q", got)
	}
}

func TestLoneLessThanIsText(t *testing.T) {
	d := Parse(`<div>a < b</div>`, "u")
	if got := d.Body().TextContent(); got != "a < b" {
		t.Fatalf("text = %q", got)
	}
}

func TestNestedStructure(t *testing.T) {
	d := Parse(`<table><tr><td><div id="content">cell</div></td></tr></table>`, "u")
	el := d.GetElementByID("content")
	if el == nil {
		t.Fatal("nested element not found")
	}
	if el.Parent().Tag != "td" {
		t.Fatalf("parent = %q, want td", el.Parent().Tag)
	}
}

func TestParseFragment(t *testing.T) {
	nodes := ParseFragment(`<span id="a">x</span><b>y</b>`)
	if len(nodes) != 2 {
		t.Fatalf("fragment nodes = %d, want 2", len(nodes))
	}
	if nodes[0].Tag != "span" || nodes[1].Tag != "b" {
		t.Fatalf("tags = %s,%s", nodes[0].Tag, nodes[1].Tag)
	}
}

func TestParseFragmentText(t *testing.T) {
	nodes := ParseFragment(`just text`)
	if len(nodes) != 1 || nodes[0].Type != dom.TextNode {
		t.Fatal("text fragment mishandled")
	}
}

func TestTokenTypeString(t *testing.T) {
	types := []TokenType{TextToken, StartTagToken, EndTagToken, SelfClosingTagToken, CommentToken, DoctypeToken, TokenType(0)}
	for _, tt := range types {
		if tt.String() == "" {
			t.Errorf("empty String for %d", tt)
		}
	}
}

func TestMalformedAttributeRecovers(t *testing.T) {
	d := Parse(`<div ="oops" id="ok">x</div>`, "u")
	if d.GetElementByID("ok") == nil {
		t.Fatal("parser did not recover from malformed attribute")
	}
}

// Property: parse→serialize→parse is a fixpoint (serialization of the
// reparsed tree equals the first serialization).
func TestParseSerializeFixpoint(t *testing.T) {
	f := func(texts []string) bool {
		var b strings.Builder
		b.WriteString("<div id=\"root\">")
		for i, s := range texts {
			if i%2 == 0 {
				b.WriteString("<span>")
				b.WriteString(dom.EscapeText(s))
				b.WriteString("</span>")
			} else {
				b.WriteString(dom.EscapeText(s))
			}
		}
		b.WriteString("</div>")
		d1 := Parse(b.String(), "u")
		h1 := d1.HTML()
		d2 := Parse(h1, "u")
		return d2.HTML() == h1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on arbitrary input.
func TestParserRobustness(t *testing.T) {
	f := func(src string) bool {
		_ = Parse(src, "u")
		_ = ParseFragment(src)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParserRobustnessCorpus(t *testing.T) {
	corpus := []string{
		"", "<", "<>", "</", "</>", "<!", "<!--", "<!-- unterminated",
		"<div", `<div id="unterminated`, "<div id=>", "&", "&amp", "&#;",
		"&#x;", "&#xZZ;", "<script>never closed", "<<<>>>", "</////>",
		"<a <b <c>", "text&#1114112;more", // out-of-range code point
	}
	for _, src := range corpus {
		_ = Parse(src, "u") // must not panic
	}
}
