// Package htmlparse implements an HTML tokenizer and tree builder that
// produce dom trees. It is the reproduction's stand-in for WebKit's HTML
// parser: the WaRR Recorder's key advantage over proxy-based tools is that
// it sees "the actual HTML code that will be rendered, after code has been
// dynamically loaded" (paper §I) — which requires the browser substrate to
// parse server responses into live DOM trees.
//
// The parser handles the constructs the simulated applications use:
// doctype, comments, quoted/unquoted attributes, void elements, raw-text
// elements (script/style), character references, and light error recovery
// (implicit html/head/body, auto-closing li/p/td/tr, ignoring stray end
// tags).
package htmlparse

import (
	"strings"
	"unicode"
)

// TokenType identifies a lexical token in an HTML byte stream.
type TokenType int

// Token types.
const (
	TextToken TokenType = iota + 1
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
)

func (t TokenType) String() string {
	switch t {
	case TextToken:
		return "text"
	case StartTagToken:
		return "start-tag"
	case EndTagToken:
		return "end-tag"
	case SelfClosingTagToken:
		return "self-closing-tag"
	case CommentToken:
		return "comment"
	case DoctypeToken:
		return "doctype"
	default:
		return "unknown"
	}
}

// TokenAttr is an attribute on a start tag, in source order.
type TokenAttr struct {
	Name  string
	Value string
}

// Token is one lexical token.
type Token struct {
	Type  TokenType
	Data  string // tag name (lowercased), text content, or comment body
	Attrs []TokenAttr
}

// Tokenizer splits an HTML string into tokens.
type Tokenizer struct {
	src string
	pos int
	// rawTag, when non-empty, means the tokenizer is inside a raw-text
	// element (script/style) and consumes text until the matching end tag.
	rawTag string
}

// NewTokenizer returns a tokenizer over src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token and whether one was produced (false at EOF).
func (z *Tokenizer) Next() (Token, bool) {
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.rawTag != "" {
		return z.rawText(), true
	}
	if z.src[z.pos] == '<' {
		if tok, ok := z.tag(); ok {
			return tok, true
		}
		// A lone '<' that does not open a valid tag is literal text.
	}
	return z.text(), true
}

func (z *Tokenizer) rawText() Token {
	closer := "</" + z.rawTag
	rest := z.src[z.pos:]
	idx := indexFold(rest, closer)
	if idx < 0 {
		z.pos = len(z.src)
		tag := z.rawTag
		z.rawTag = ""
		_ = tag
		return Token{Type: TextToken, Data: rest}
	}
	text := rest[:idx]
	z.pos += idx
	z.rawTag = ""
	if text == "" {
		// Empty raw text: fall through to the end tag immediately.
		tok, _ := z.Next()
		return tok
	}
	return Token{Type: TextToken, Data: text}
}

// indexFold is a case-insensitive strings.Index for ASCII needles.
func indexFold(s, needle string) int {
	n := len(needle)
	for i := 0; i+n <= len(s); i++ {
		if strings.EqualFold(s[i:i+n], needle) {
			return i
		}
	}
	return -1
}

func (z *Tokenizer) text() Token {
	start := z.pos
	for z.pos < len(z.src) {
		if z.src[z.pos] == '<' && z.looksLikeTag(z.pos) {
			break
		}
		z.pos++
	}
	return Token{Type: TextToken, Data: unescape(z.src[start:z.pos])}
}

// looksLikeTag reports whether the '<' at index i plausibly starts markup.
func (z *Tokenizer) looksLikeTag(i int) bool {
	if i+1 >= len(z.src) {
		return false
	}
	c := z.src[i+1]
	return c == '/' || c == '!' || c == '?' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (z *Tokenizer) tag() (Token, bool) {
	if !z.looksLikeTag(z.pos) {
		return Token{}, false
	}
	rest := z.src[z.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		return z.comment(), true
	case strings.HasPrefix(rest, "<!") || strings.HasPrefix(rest, "<?"):
		return z.doctype(), true
	case strings.HasPrefix(rest, "</"):
		return z.endTag(), true
	default:
		return z.startTag(), true
	}
}

func (z *Tokenizer) comment() Token {
	z.pos += len("<!--")
	end := strings.Index(z.src[z.pos:], "-->")
	var body string
	if end < 0 {
		body = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		body = z.src[z.pos : z.pos+end]
		z.pos += end + len("-->")
	}
	return Token{Type: CommentToken, Data: body}
}

func (z *Tokenizer) doctype() Token {
	z.pos += 2 // consume "<!" or "<?"
	end := strings.IndexByte(z.src[z.pos:], '>')
	var body string
	if end < 0 {
		body = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		body = z.src[z.pos : z.pos+end]
		z.pos += end + 1
	}
	return Token{Type: DoctypeToken, Data: strings.TrimSpace(body)}
}

func (z *Tokenizer) endTag() Token {
	z.pos += 2 // consume "</"
	name := z.tagName()
	// Skip anything up to '>'.
	for z.pos < len(z.src) && z.src[z.pos] != '>' {
		z.pos++
	}
	if z.pos < len(z.src) {
		z.pos++ // consume '>'
	}
	return Token{Type: EndTagToken, Data: name}
}

func (z *Tokenizer) startTag() Token {
	z.pos++ // consume '<'
	name := z.tagName()
	tok := Token{Type: StartTagToken, Data: name}
	for {
		z.skipSpace()
		if z.pos >= len(z.src) {
			break
		}
		c := z.src[z.pos]
		if c == '>' {
			z.pos++
			break
		}
		if c == '/' {
			z.pos++
			z.skipSpace()
			if z.pos < len(z.src) && z.src[z.pos] == '>' {
				z.pos++
				tok.Type = SelfClosingTagToken
			}
			break
		}
		attr, ok := z.attribute()
		if !ok {
			break
		}
		tok.Attrs = append(tok.Attrs, attr)
	}
	if tok.Type == StartTagToken && (name == "script" || name == "style") {
		z.rawTag = name
	}
	return tok
}

func (z *Tokenizer) tagName() string {
	start := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '>' || c == '/' {
			break
		}
		z.pos++
	}
	return strings.ToLower(z.src[start:z.pos])
}

func (z *Tokenizer) skipSpace() {
	for z.pos < len(z.src) && unicode.IsSpace(rune(z.src[z.pos])) {
		z.pos++
	}
}

func (z *Tokenizer) attribute() (TokenAttr, bool) {
	start := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if c == '=' || c == '>' || c == '/' || unicode.IsSpace(rune(c)) {
			break
		}
		z.pos++
	}
	name := strings.ToLower(z.src[start:z.pos])
	if name == "" {
		// Malformed input such as "<div ="x">"; skip one byte to make
		// progress and drop the pseudo-attribute.
		z.pos++
		return TokenAttr{}, z.pos < len(z.src)
	}
	attr := TokenAttr{Name: name}
	z.skipSpace()
	if z.pos >= len(z.src) || z.src[z.pos] != '=' {
		return attr, true // boolean attribute
	}
	z.pos++ // consume '='
	z.skipSpace()
	if z.pos >= len(z.src) {
		return attr, true
	}
	switch q := z.src[z.pos]; q {
	case '"', '\'':
		z.pos++
		vstart := z.pos
		for z.pos < len(z.src) && z.src[z.pos] != q {
			z.pos++
		}
		attr.Value = unescape(z.src[vstart:z.pos])
		if z.pos < len(z.src) {
			z.pos++ // consume closing quote
		}
	default:
		vstart := z.pos
		for z.pos < len(z.src) {
			c := z.src[z.pos]
			if c == '>' || unicode.IsSpace(rune(c)) {
				break
			}
			z.pos++
		}
		attr.Value = unescape(z.src[vstart:z.pos])
	}
	return attr, true
}

// unescape resolves the named and numeric character references the
// simulated applications use.
func unescape(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(s[i])
			i++
			continue
		}
		ref := s[i+1 : i+semi]
		repl, ok := namedRef(ref)
		if !ok {
			b.WriteByte(s[i])
			i++
			continue
		}
		b.WriteString(repl)
		i += semi + 1
	}
	return b.String()
}

func namedRef(ref string) (string, bool) {
	switch ref {
	case "amp":
		return "&", true
	case "lt":
		return "<", true
	case "gt":
		return ">", true
	case "quot":
		return `"`, true
	case "apos":
		return "'", true
	case "nbsp":
		return " ", true
	}
	if strings.HasPrefix(ref, "#") {
		return numericRef(ref[1:])
	}
	return "", false
}

func numericRef(digits string) (string, bool) {
	base := 10
	if strings.HasPrefix(digits, "x") || strings.HasPrefix(digits, "X") {
		base = 16
		digits = digits[1:]
	}
	if digits == "" {
		return "", false
	}
	var n int
	for _, r := range digits {
		var d int
		switch {
		case r >= '0' && r <= '9':
			d = int(r - '0')
		case base == 16 && r >= 'a' && r <= 'f':
			d = int(r-'a') + 10
		case base == 16 && r >= 'A' && r <= 'F':
			d = int(r-'A') + 10
		default:
			return "", false
		}
		n = n*base + d
		if n > 0x10FFFF {
			return "", false
		}
	}
	return string(rune(n)), true
}
