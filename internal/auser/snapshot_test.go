package auser

import (
	"context"
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/replayer"
)

func recordEditSite(t *testing.T) command.Trace {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	sc := apps.EditSiteScenario()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	if err := sc.Run(env, tab); err != nil {
		t.Fatal(err)
	}
	rec.Detach()
	return rec.Trace()
}

func TestSnapshotterReportsFromCancelledSession(t *testing.T) {
	tr := recordEditSite(t)
	env := apps.NewEnv(browser.DeveloperMode)
	ctx, cancel := context.WithCancel(context.Background())

	snap := NewSnapshotter(Options{})
	s, err := replayer.New(env.Browser, replayer.Options{
		Hooks: []replayer.Hooks{snap.Hooks()},
	}).NewSession(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	const before = 2
	for i := 0; i < before; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("session ended early at step %d", i)
		}
	}
	cancel()
	s.Run()
	if !s.Result().Cancelled {
		t.Fatal("session not cancelled")
	}

	if snap.Steps() != before {
		t.Errorf("snapshotter captured %d steps, want %d", snap.Steps(), before)
	}
	rep, err := snap.Report("it broke mid-way", tr)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if rep.URL == "" || rep.Snapshot == "" {
		t.Errorf("report missing page state: url %q, %d snapshot bytes", rep.URL, len(rep.Snapshot))
	}
	if !strings.Contains(rep.Text(), "it broke mid-way") {
		t.Error("report text missing the description")
	}
}

func TestSnapshotterEmptySessionRefusesReport(t *testing.T) {
	snap := NewSnapshotter(Options{})
	if _, err := snap.Report("nothing happened", command.Trace{}); err == nil {
		t.Error("report from zero captured steps should fail")
	}
}

func TestSnapshotterAppliesRedaction(t *testing.T) {
	tr := recordEditSite(t)
	env := apps.NewEnv(browser.DeveloperMode)
	snap := NewSnapshotter(Options{Redact: RedactAllTyped})
	s, err := replayer.New(env.Browser, replayer.Options{
		Hooks: []replayer.Hooks{snap.Hooks()},
	}).NewSession(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	rep, err := snap.Report("redact me", tr)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep.Trace.Text(), "[H,72]") {
		t.Error("typed keystrokes not redacted from the report trace")
	}
}
