package auser

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

// This file implements the §IV-D trace-protection scheme: "To prevent
// traces from being used to exploit an application's vulnerabilities,
// one can encrypt them with the developers' public key, so that only
// developers can access the traces." Reports are sealed with hybrid
// encryption: a fresh AES-256-GCM key encrypts the JSON-encoded report,
// and RSA-OAEP wraps that key for the developers.

// Envelope is an encrypted report in transit.
type Envelope struct {
	// WrappedKey is the AES key, RSA-OAEP-encrypted to the developers.
	WrappedKey []byte `json:"wrapped_key"`
	// Nonce is the GCM nonce.
	Nonce []byte `json:"nonce"`
	// Ciphertext is the GCM-sealed JSON report.
	Ciphertext []byte `json:"ciphertext"`
}

// oaepLabel binds ciphertexts to this use.
var oaepLabel = []byte("warr-auser-report-v1")

// GenerateDeveloperKey creates the developers' RSA key pair. 2048 bits
// is the floor; tests may use it directly for speed.
func GenerateDeveloperKey(bits int) (*rsa.PrivateKey, error) {
	if bits < 2048 {
		return nil, fmt.Errorf("auser: key size %d below 2048-bit floor", bits)
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("auser: generating developer key: %w", err)
	}
	return key, nil
}

// Seal encrypts a report to the developers' public key.
func Seal(r *Report, pub *rsa.PublicKey) (*Envelope, error) {
	plaintext, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("auser: encoding report: %w", err)
	}

	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("auser: generating session key: %w", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("auser: aes: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("auser: gcm: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("auser: generating nonce: %w", err)
	}

	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pub, key, oaepLabel)
	if err != nil {
		return nil, fmt.Errorf("auser: wrapping session key: %w", err)
	}
	return &Envelope{
		WrappedKey: wrapped,
		Nonce:      nonce,
		Ciphertext: gcm.Seal(nil, nonce, plaintext, nil),
	}, nil
}

// Open decrypts an envelope with the developers' private key.
func Open(env *Envelope, priv *rsa.PrivateKey) (*Report, error) {
	key, err := rsa.DecryptOAEP(sha256.New(), nil, priv, env.WrappedKey, oaepLabel)
	if err != nil {
		return nil, fmt.Errorf("auser: unwrapping session key: %w", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("auser: aes: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("auser: gcm: %w", err)
	}
	plaintext, err := gcm.Open(nil, env.Nonce, env.Ciphertext, nil)
	if err != nil {
		return nil, fmt.Errorf("auser: opening report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(plaintext, &r); err != nil {
		return nil, fmt.Errorf("auser: decoding report: %w", err)
	}
	return &r, nil
}

// Encode serializes an envelope for transport.
func (e *Envelope) Encode() ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("auser: encoding envelope: %w", err)
	}
	return b, nil
}

// DecodeEnvelope parses a serialized envelope.
func DecodeEnvelope(b []byte) (*Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, fmt.Errorf("auser: decoding envelope: %w", err)
	}
	return &e, nil
}
