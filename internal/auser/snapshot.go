package auser

import (
	"fmt"
	"sync"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/replayer"
)

// Snapshotter captures AUsER report material progressively, as a replay
// session hook: after every replayed command it stores the page
// snapshot, URL, and console output of that moment. A report can then
// be assembled even when the session never finishes — replay halted,
// context cancelled, or commands failed — realizing the paper's
// "possibly partial snapshot of the final web page" (§VI) for partial
// replays too.
//
// It is safe for concurrent use, so one Snapshotter can be shared
// across sessions when only the latest state matters; typically each
// session gets its own.
type Snapshotter struct {
	opts Options

	mu      sync.Mutex
	steps   int
	url     string
	at      time.Time
	console []string
	snap    string
	partial bool
	snapErr error
}

// NewSnapshotter returns a snapshotter applying the given report
// options (snapshot clipping, omission) to every capture.
func NewSnapshotter(opts Options) *Snapshotter {
	return &Snapshotter{opts: opts}
}

// Hooks returns the replay hook set that performs the per-step capture;
// register it in replayer.Options.Hooks or with Session.AddHooks.
func (s *Snapshotter) Hooks() replayer.Hooks {
	return replayer.Hooks{AfterStep: func(step replayer.Step, tab *browser.Tab) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.steps++
		s.url = tab.URL()
		s.at = tab.Browser().Clock().Now()
		s.console = s.console[:0]
		for _, e := range tab.Console() {
			s.console = append(s.console, fmt.Sprintf("[%s] %s", e.Level, e.Message))
		}
		s.snap, s.partial, s.snapErr = "", false, nil
		if !s.opts.OmitSnapshot {
			s.snap, s.partial, s.snapErr = snapshot(tab, s.opts.SnapshotXPath)
		}
	}}
}

// Steps reports how many steps have been captured.
func (s *Snapshotter) Steps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steps
}

// Report assembles a user experience report from the last captured
// state, without needing the (possibly dead) session's tab. It errors
// when no step was captured yet; callers with a live tab and a finished
// session can use New instead.
func (s *Snapshotter) Report(description string, tr command.Trace) (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.steps == 0 {
		return nil, fmt.Errorf("auser: no steps captured; nothing to report")
	}
	if s.snapErr != nil {
		return nil, s.snapErr
	}
	if s.opts.Redact != nil {
		tr = s.opts.Redact(tr)
	}
	return &Report{
		Description:     description,
		URL:             s.url,
		Time:            s.at,
		Trace:           tr,
		Snapshot:        s.snap,
		SnapshotPartial: s.partial,
		Console:         append([]string(nil), s.console...),
	}, nil
}
