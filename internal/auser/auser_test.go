package auser

import (
	"crypto/rsa"
	"strings"
	"sync"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
)

// devKey is generated once; RSA keygen dominates test time otherwise.
var (
	devKeyOnce sync.Once
	devKey     *rsa.PrivateKey
)

func testKey(t *testing.T) *rsa.PrivateKey {
	t.Helper()
	devKeyOnce.Do(func() {
		k, err := GenerateDeveloperKey(2048)
		if err != nil {
			t.Fatalf("GenerateDeveloperKey: %v", err)
		}
		devKey = k
	})
	return devKey
}

// buggySession reproduces the Sites timing bug and returns the trace and
// the tab showing it.
func buggySession(t *testing.T) (command.Trace, *browser.Tab) {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.SitesURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	// Impatient user: edit then save immediately.
	start := tab.MainFrame().Doc().GetElementByID("start")
	x, y := tab.Layout().Center(start)
	tab.Click(x, y)
	for _, n := range tab.MainFrame().Doc().Root().ElementsByTag("div") {
		if strings.TrimSpace(n.TextContent()) == "Save" {
			x, y := tab.Layout().Center(n)
			tab.Click(x, y)
			break
		}
	}
	return rec.Trace(), tab
}

// authSession records typing a password on the Yahoo portal.
func authSession(t *testing.T) (command.Trace, *browser.Tab) {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	sc := apps.AuthenticateScenario()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatal(err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	if err := sc.Run(env, tab); err != nil {
		t.Fatal(err)
	}
	return rec.Trace(), tab
}

func TestReportCarriesConsoleErrors(t *testing.T) {
	tr, tab := buggySession(t)
	r, err := New("save button does nothing", tr, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.Console, "\n")
	if !strings.Contains(joined, "TypeError") {
		t.Errorf("report console misses the bug signal: %q", joined)
	}
	if len(r.Trace.Commands) != len(tr.Commands) {
		t.Errorf("trace truncated: %d vs %d", len(r.Trace.Commands), len(tr.Commands))
	}
	if !strings.Contains(r.Text(), "save button does nothing") {
		t.Error("rendered report misses the description")
	}
}

func TestReportPartialSnapshot(t *testing.T) {
	tr, tab := buggySession(t)
	r, err := New("bug", tr, tab, Options{SnapshotXPath: `//span[@id="start"]`})
	if err != nil {
		t.Fatal(err)
	}
	if !r.SnapshotPartial {
		t.Error("snapshot should be marked partial")
	}
	if !strings.Contains(r.Snapshot, "Edit page") {
		t.Errorf("snapshot = %q", r.Snapshot)
	}
	if strings.Contains(r.Snapshot, "This page is empty") {
		t.Error("partial snapshot leaked the rest of the page")
	}
}

func TestReportSnapshotXPathMissing(t *testing.T) {
	tr, tab := buggySession(t)
	if _, err := New("bug", tr, tab, Options{SnapshotXPath: `//canvas[@id="nope"]`}); err == nil {
		t.Error("expected error for unmatched snapshot xpath")
	}
}

func TestRedactMatchingStripsPasswordOnly(t *testing.T) {
	tr, _ := authSession(t)
	red := RedactMatching("pass")(tr)
	var sawRedacted, sawUser bool
	for _, c := range red.Commands {
		if c.Action != command.Type {
			continue
		}
		if strings.Contains(c.XPath, "pass") {
			if c.Key != RedactedKey {
				t.Errorf("password keystroke not redacted: %s", c)
			}
			sawRedacted = true
		}
		if strings.Contains(c.XPath, `@name="user"`) && c.Key != RedactedKey {
			sawUser = true
		}
	}
	if !sawRedacted {
		t.Error("no password keystrokes found")
	}
	if !sawUser {
		t.Error("user-name keystrokes should survive selective redaction")
	}
	// Original trace untouched.
	for _, c := range tr.Commands {
		if c.Key == RedactedKey {
			t.Fatal("redaction mutated the original trace")
		}
	}
}

func TestRedactAllTypedKeepsStructure(t *testing.T) {
	tr, _ := authSession(t)
	red := RedactAllTyped(tr)
	if len(red.Commands) != len(tr.Commands) {
		t.Fatal("redaction changed command count")
	}
	for i, c := range red.Commands {
		if c.XPath != tr.Commands[i].XPath || c.Elapsed != tr.Commands[i].Elapsed {
			t.Errorf("command %d structure changed", i)
		}
		if c.Action == command.Type && len(tr.Commands[i].Key) == 1 && c.Key != RedactedKey {
			t.Errorf("printable key survived: %s", c)
		}
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	tr, tab := buggySession(t)
	key := testKey(t)
	r, err := New("bug", tr, tab, Options{Redact: RedactAllTyped})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Seal(r, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(env.Ciphertext), "TypeError") {
		t.Error("ciphertext leaks plaintext")
	}
	got, err := Open(env, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Description != r.Description || got.URL != r.URL {
		t.Errorf("round trip mangled report: %+v", got)
	}
	if len(got.Trace.Commands) != len(r.Trace.Commands) {
		t.Error("round trip mangled trace")
	}
}

func TestOpenWithWrongKeyFails(t *testing.T) {
	tr, tab := buggySession(t)
	key := testKey(t)
	r, err := New("bug", tr, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env, err := Seal(r, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	other, err := GenerateDeveloperKey(2048)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(env, other); err == nil {
		t.Error("envelope opened with the wrong private key")
	}
}

func TestTamperedEnvelopeFails(t *testing.T) {
	tr, tab := buggySession(t)
	key := testKey(t)
	r, _ := New("bug", tr, tab, Options{})
	env, err := Seal(r, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	env.Ciphertext[0] ^= 0xff
	if _, err := Open(env, key); err == nil {
		t.Error("tampered ciphertext accepted")
	}
}

func TestEnvelopeEncodeDecode(t *testing.T) {
	tr, tab := buggySession(t)
	key := testKey(t)
	r, _ := New("bug", tr, tab, Options{})
	env, err := Seal(r, &key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dec, key); err != nil {
		t.Errorf("decoded envelope does not open: %v", err)
	}
}

func TestWeakKeyRejected(t *testing.T) {
	if _, err := GenerateDeveloperKey(1024); err == nil {
		t.Error("1024-bit key accepted")
	}
}

func TestReportOmitSnapshot(t *testing.T) {
	tr, tab := buggySession(t)
	r, err := New("bug", tr, tab, Options{OmitSnapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Snapshot != "" {
		t.Error("snapshot present despite OmitSnapshot")
	}
}
