// Package auser implements AUsER, the paper's second tool built on WaRR
// (§VI): automatic user experience reports. When a user experiences a
// bug, she presses a button and the application's developers receive the
// sequence of WaRR Commands she performed, a textual description of the
// bug, and a (possibly partial) snapshot of the final web page.
//
// The package also implements the privacy mitigations of §IV-D: typed
// keystrokes can be redacted before sharing, the snapshot can be clipped
// to a single element ("such as the button that has the wrong name,
// leaving out private details"), and reports can be encrypted with the
// developers' public key "so that only developers can access the
// traces".
package auser

import (
	"fmt"
	"strings"
	"time"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/xpath"
)

// Report is one user experience report.
type Report struct {
	// Description is the user's textual description of the bug.
	Description string
	// URL is the page the bug manifested on.
	URL string
	// Time is when the report was filed (virtual time).
	Time time.Time
	// Trace is the recorded interaction (possibly redacted).
	Trace command.Trace
	// Snapshot is the HTML snapshot of the final page, possibly clipped
	// to one element.
	Snapshot string
	// SnapshotPartial reports whether Snapshot is a clipped fragment.
	SnapshotPartial bool
	// Console carries the browser console output, errors included —
	// the developer's first debugging signal.
	Console []string
}

// Options configure report generation.
type Options struct {
	// SnapshotXPath, when non-empty, clips the snapshot to the first
	// element matching the expression.
	SnapshotXPath string
	// OmitSnapshot drops the page snapshot entirely.
	OmitSnapshot bool
	// Redact applies a trace redaction before the trace enters the
	// report (see RedactAllTyped, RedactMatching).
	Redact func(command.Trace) command.Trace
}

// New assembles a report from the user's description, the recorded
// trace, and the tab showing the bug.
func New(description string, tr command.Trace, tab *browser.Tab, opts Options) (*Report, error) {
	if opts.Redact != nil {
		tr = opts.Redact(tr)
	}
	r := &Report{
		Description: description,
		URL:         tab.URL(),
		Time:        tab.Browser().Clock().Now(),
		Trace:       tr,
	}
	for _, e := range tab.Console() {
		r.Console = append(r.Console, fmt.Sprintf("[%s] %s", e.Level, e.Message))
	}
	if !opts.OmitSnapshot {
		snap, partial, err := snapshot(tab, opts.SnapshotXPath)
		if err != nil {
			return nil, err
		}
		r.Snapshot, r.SnapshotPartial = snap, partial
	}
	return r, nil
}

// snapshot renders the page, or just the element SnapshotXPath selects.
func snapshot(tab *browser.Tab, expr string) (html string, partial bool, err error) {
	doc := tab.MainFrame().Doc()
	if expr == "" {
		return doc.HTML(), false, nil
	}
	p, err := xpath.Parse(expr)
	if err != nil {
		return "", false, fmt.Errorf("auser: snapshot xpath: %w", err)
	}
	n := xpath.First(p, doc.Root())
	if n == nil {
		return "", false, fmt.Errorf("auser: snapshot xpath %q matches nothing", expr)
	}
	return n.OuterHTML(), true, nil
}

// Text renders the report for human reading.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "User experience report — %s\n", r.Time.Format(time.RFC3339))
	fmt.Fprintf(&b, "Page: %s\n", r.URL)
	fmt.Fprintf(&b, "Description: %s\n", r.Description)
	b.WriteString("\n-- interaction trace --\n")
	b.WriteString(r.Trace.Text())
	if len(r.Console) > 0 {
		b.WriteString("\n-- console --\n")
		for _, line := range r.Console {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	if r.Snapshot != "" {
		if r.SnapshotPartial {
			b.WriteString("\n-- page snapshot (partial) --\n")
		} else {
			b.WriteString("\n-- page snapshot --\n")
		}
		b.WriteString(r.Snapshot)
		b.WriteByte('\n')
	}
	return b.String()
}

// RedactedKey replaces redacted keystrokes in a shared trace.
const RedactedKey = "*"

// RedactAllTyped replaces every printable keystroke in the trace with
// RedactedKey, keeping the interaction structure (element targets,
// timing, control keys) intact so the trace still drives the application
// down the same path.
func RedactAllTyped(tr command.Trace) command.Trace {
	return redact(tr, func(command.Command) bool { return true })
}

// RedactMatching redacts printable keystrokes typed into elements whose
// XPath contains any of the substrings — e.g. "pass" to strip passwords.
func RedactMatching(substrings ...string) func(command.Trace) command.Trace {
	return func(tr command.Trace) command.Trace {
		return redact(tr, func(c command.Command) bool {
			for _, s := range substrings {
				if strings.Contains(c.XPath, s) {
					return true
				}
			}
			return false
		})
	}
}

func redact(tr command.Trace, match func(command.Command) bool) command.Trace {
	out := tr.Clone()
	for i, c := range out.Commands {
		if c.Action != command.Type || len(c.Key) != 1 {
			continue // control keys carry no content
		}
		if match(c) {
			out.Commands[i].Key = RedactedKey
			out.Commands[i].Code = 0
		}
	}
	return out
}
