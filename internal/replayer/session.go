package replayer

// This file implements the session-based replay surface: instead of the
// one-shot Replay call, a Session replays a trace incrementally — one
// command per Next call, or streamed through the Steps iterator — with
// context cancellation checked between commands and a chain of hooks
// observing resolution and execution. The higher-level tools are built
// on it: WebErr's grammar inference and AUsER's progressive snapshotting
// are hooks, and the campaign executor drives many sessions concurrently
// over isolated environments.

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/webdriver"
)

// Hooks is one observer in a session's hook chain. Every field is
// optional; hooks are invoked in registration order (Options.Hooks
// first, then hooks added with Session.AddHooks).
type Hooks struct {
	// BeforeStep runs before command idx is resolved.
	BeforeStep func(idx int, cmd command.Command, tab *browser.Tab)
	// OnResolve runs after element resolution and before the action
	// executes. The step carries the resolution outcome: Status,
	// UsedXPath and Heuristic are set; Err is set when no strategy
	// found the element (the step will be reported failed).
	OnResolve func(step Step, tab *browser.Tab)
	// AfterStep runs after the command executed (or failed), with the
	// final step outcome. WebErr's grammar inference captures the page
	// state each command produced here (§V-A).
	AfterStep func(step Step, tab *browser.Tab)
}

// Session replays one trace incrementally in its own tab. A Session is
// not safe for concurrent use; run concurrent replays as separate
// sessions over isolated environments (see internal/campaign).
type Session struct {
	replayer *Replayer
	ctx      context.Context
	trace    command.Trace
	tab      *browser.Tab
	driver   *webdriver.Driver
	hooks    []Hooks
	next     int
	res      *Result
	done     bool
}

// NewSession opens a replay session for the trace: it creates a fresh
// tab, attaches the interaction driver, and loads the trace's start
// page. Commands are not replayed until Next (or Steps) is called, and
// ctx is checked between commands — cancelling it stops the session at
// the next command boundary with a partial Result.
func (r *Replayer) NewSession(ctx context.Context, tr command.Trace) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tab := r.browser.NewTab()
	s := &Session{
		replayer: r,
		ctx:      ctx,
		trace:    tr,
		tab:      tab,
		driver:   webdriver.New(tab, r.opts.Driver),
		// Copied, not aliased: AddHooks on one session must never leak
		// into sessions sharing this replayer's Options.Hooks slice.
		hooks: append([]Hooks(nil), r.opts.Hooks...),
		res:   &Result{},
	}
	if tr.StartURL != "" {
		if err := tab.Navigate(tr.StartURL); err != nil {
			s.done = true
			return s, fmt.Errorf("replayer: loading start page: %w", err)
		}
	}
	return s, nil
}

// AddHooks appends a hook set to this session's chain, after any hooks
// configured in Options. It must be called before the first Next.
func (s *Session) AddHooks(h Hooks) { s.hooks = append(s.hooks, h) }

// Fork checkpoints the session at its current command position: the
// whole environment (browser, page, script state, pending timers, and
// — through the registry — server-side application state) is deep-
// copied, and the returned session continues from command Next in the
// copy while this session keeps running in the original. Results so
// far are carried over, so a forked session's final Result is the same
// shape a full-trace replay produces; hooks are shared with the parent.
//
// Forking requires a forkable environment: a browser with a world
// attached (registry.NewEnv does this) whose applications implement
// registry.Snapshotter. Otherwise Fork fails — typically with
// browser.ErrNotForkable or *registry.NotSnapshottableError — and the
// caller falls back to replaying the prefix in a fresh environment.
func (s *Session) Fork() (*Session, error) {
	return s.ForkFor(s.trace)
}

// ForkFor is Fork with a retarget: the forked session replays tr, a
// trace that must agree with this session's trace on the already-
// replayed prefix. The campaign trie scheduler uses it to branch one
// checkpoint into many divergent suffixes.
func (s *Session) ForkFor(tr command.Trace) (*Session, error) {
	if err := s.checkPrefix(tr); err != nil {
		return nil, err
	}
	fk, err := s.replayer.browser.Fork()
	if err != nil {
		return nil, err
	}
	tab := fk.Tab(s.tab)
	ns := &Session{
		replayer: New(fk.Browser, s.replayer.opts),
		ctx:      s.ctx,
		trace:    tr,
		tab:      tab,
		driver:   s.driver.CloneFor(tab, fk.Frame),
		hooks:    append([]Hooks(nil), s.hooks...),
		next:     s.next,
		res:      s.res.Clone(),
		done:     s.done,
	}
	return ns, nil
}

// Resume continues a cancelled session under a fresh context: the
// whole environment is forked at the command boundary the cancellation
// stopped at, and the returned session picks up at the next unreplayed
// command in the copy. The cancelled session's steps are carried over
// with the Cancelled mark cleared, so the resumed session's final
// Result has exactly the shape an uninterrupted full replay produces.
// The original session stays final — resuming it twice forks the same
// checkpoint twice.
//
// Like Fork, resuming requires a forkable environment; otherwise the
// caller falls back to replaying the whole trace in a fresh world.
// Halted sessions cannot resume: the replay ended because the driver
// lost its client, not because anyone asked it to stop.
func (s *Session) Resume(ctx context.Context) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.res.Halted {
		return nil, fmt.Errorf("replayer: a halted session cannot resume")
	}
	if !s.res.Cancelled {
		return nil, fmt.Errorf("replayer: only a cancelled session can resume")
	}
	fk, err := s.replayer.browser.Fork()
	if err != nil {
		return nil, err
	}
	tab := fk.Tab(s.tab)
	res := s.res.Clone()
	res.Cancelled = false
	res.CancelCause = nil
	return &Session{
		replayer: New(fk.Browser, s.replayer.opts),
		ctx:      ctx,
		trace:    s.trace,
		tab:      tab,
		driver:   s.driver.CloneFor(tab, fk.Frame),
		hooks:    append([]Hooks(nil), s.hooks...),
		next:     s.next,
		res:      res,
		done:     s.next >= len(s.trace.Commands),
	}, nil
}

// Retarget swaps the session's trace for tr, which must agree with the
// current trace on the already-replayed prefix. Replay continues from
// the same position into tr's remaining commands. The campaign trie
// scheduler retargets a live session when descending into a subtree
// whose minimum job differs from the one the session was opened for.
func (s *Session) Retarget(tr command.Trace) error {
	if err := s.checkPrefix(tr); err != nil {
		return err
	}
	s.trace = tr
	// A session that exhausted its old trace may have more commands to
	// replay in the new one (and vice versa). Exhaustion is re-derived;
	// halted and cancelled states stay final.
	if s.done && !s.res.Halted && !s.res.Cancelled {
		s.done = s.next >= len(tr.Commands)
	}
	return nil
}

// checkPrefix verifies tr shares the already-replayed prefix.
func (s *Session) checkPrefix(tr command.Trace) error {
	if tr.StartURL != s.trace.StartURL {
		return fmt.Errorf("replayer: retarget trace starts at %q, session at %q", tr.StartURL, s.trace.StartURL)
	}
	if len(tr.Commands) < s.next {
		return fmt.Errorf("replayer: retarget trace has %d commands, session already replayed %d", len(tr.Commands), s.next)
	}
	for i := 0; i < s.next; i++ {
		if tr.Commands[i] != s.trace.Commands[i] {
			return fmt.Errorf("replayer: retarget trace diverges at already-replayed command %d", i)
		}
	}
	return nil
}

// Clone deep-copies a result: snapshots of a live session's Result
// (which the session keeps appending to) and fork bookkeeping both
// need an independent copy.
func (r *Result) Clone() *Result {
	dup := *r
	dup.Steps = append([]Step(nil), r.Steps...)
	return &dup
}

// Tab returns the tab the session replays into; its page state is live
// and may be inspected between steps or after the session ends.
func (s *Session) Tab() *browser.Tab { return s.tab }

// Trace returns the trace being replayed.
func (s *Session) Trace() command.Trace { return s.trace }

// Done reports whether the session has ended: trace exhausted, replay
// halted, or context cancelled.
func (s *Session) Done() bool { return s.done }

// Err returns the context error that stopped the session, or nil if it
// ran (or is still running) normally.
func (s *Session) Err() error {
	if s.res.Cancelled {
		return s.res.CancelCause
	}
	return nil
}

// Result returns the session's result so far: partial while the session
// is running, final once Done. The returned value is live — it is the
// same Result the session appends to.
func (s *Session) Result() *Result { return s.res }

// Next replays the next command and returns its step outcome. It
// returns ok == false — without replaying anything — once the trace is
// exhausted, the replay has halted (§IV-C), or the session's context is
// cancelled or past its deadline; the partial Result remains available.
func (s *Session) Next() (step Step, ok bool) {
	if s.done {
		return Step{}, false
	}
	// Exhaustion is checked before cancellation: a session whose every
	// command already replayed is complete, not cancelled, even if the
	// context fired after the last command.
	if s.next >= len(s.trace.Commands) {
		s.done = true
		return Step{}, false
	}
	if err := context.Cause(s.ctx); err != nil {
		s.res.Cancelled = true
		s.res.CancelCause = err
		s.done = true
		return Step{}, false
	}
	idx := s.next
	cmd := s.trace.Commands[idx]
	s.next++

	if s.replayer.opts.Pacing == PaceRecorded {
		s.replayer.browser.Clock().Advance(cmd.ElapsedDuration())
	}
	for _, h := range s.hooks {
		if h.BeforeStep != nil {
			h.BeforeStep(idx, cmd, s.tab)
		}
	}
	step = s.replayer.playCommand(s.driver, idx, cmd, func(resolved Step) {
		for _, h := range s.hooks {
			if h.OnResolve != nil {
				h.OnResolve(resolved, s.tab)
			}
		}
	})
	s.res.Steps = append(s.res.Steps, step)
	if step.Status == StepFailed {
		s.res.Failed++
		if errors.Is(step.Err, webdriver.ErrNoActiveClient) {
			// The master has no client to execute commands: the replay
			// halts (§IV-C). Remaining commands are not attempted.
			s.res.Halted = true
			s.done = true
		}
	} else {
		s.res.Played++
	}
	for _, h := range s.hooks {
		if h.AfterStep != nil {
			h.AfterStep(step, s.tab)
		}
	}
	return step, true
}

// Steps returns a single-use iterator that replays the remaining
// commands one step per iteration:
//
//	for step := range session.Steps() {
//	    ...
//	}
//
// Breaking out of the loop leaves the session paused at the next
// command; iteration can resume with another Steps (or Next) call.
func (s *Session) Steps() iter.Seq[Step] {
	return func(yield func(Step) bool) {
		for {
			step, ok := s.Next()
			if !ok {
				return
			}
			if !yield(step) {
				return
			}
		}
	}
}

// Run replays every remaining command and returns the final Result.
func (s *Session) Run() *Result {
	for {
		if _, ok := s.Next(); !ok {
			return s.res
		}
	}
}
