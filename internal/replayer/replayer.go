// Package replayer implements the WaRR Replayer (paper §III-B, §IV-C):
// it reads WaRR Commands and simulates the recorded user interaction
// through the webdriver against a (normally developer-mode) browser.
//
// Its distinctive mechanism is progressive XPath relaxation: the replayer
// first assumes the application's HTML structure is constant and uses the
// recorded expression — giving timing-accurate replay — and only when
// that expression no longer matches does it progressively simplify the
// expression (drop attributes, keep only name, discard prefixes) until an
// element is found. Click commands additionally carry window coordinates
// as a last-resort identification fallback.
package replayer

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/webdriver"
	"github.com/dslab-epfl/warr/internal/xpath"
)

// Pacing selects how the replayer spaces commands in virtual time.
type Pacing int

// Pacing modes.
const (
	// PaceRecorded advances the clock by each command's recorded elapsed
	// time — timing-accurate interaction replay.
	PaceRecorded Pacing = iota + 1
	// PaceNone replays commands with no wait time — WebErr's timing-
	// error stress mode (§V-B).
	PaceNone
)

// Options configure a Replayer.
type Options struct {
	// Pacing defaults to PaceRecorded.
	Pacing Pacing
	// DisableRelaxation turns off XPath relaxation (ablation).
	DisableRelaxation bool
	// DisableCoordinateFallback turns off the click-coordinate backup
	// identification (ablation).
	DisableCoordinateFallback bool
	// Driver selects webdriver behaviour (the ChromeDriver defect
	// switches).
	Driver webdriver.Options
	// Hooks is the observer chain every session of this replayer starts
	// with, invoked in order around each command (BeforeStep, OnResolve,
	// AfterStep). WebErr's grammar inference and AUsER's progressive
	// snapshotting are hooks. Per-session hooks can be appended with
	// Session.AddHooks.
	Hooks []Hooks
}

// StepStatus describes how one command was resolved and executed.
type StepStatus int

// Step statuses.
const (
	// StepOK: the recorded XPath matched directly.
	StepOK StepStatus = iota + 1
	// StepRelaxed: a relaxation heuristic found the element.
	StepRelaxed
	// StepByCoordinates: the click-coordinate fallback found the element.
	StepByCoordinates
	// StepFailed: the command could not be replayed.
	StepFailed
)

func (s StepStatus) String() string {
	switch s {
	case StepOK:
		return "ok"
	case StepRelaxed:
		return "relaxed"
	case StepByCoordinates:
		return "by-coordinates"
	case StepFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Step is the outcome of replaying one command.
type Step struct {
	Index  int
	Cmd    command.Command
	Status StepStatus
	// UsedXPath is the expression that matched (original or relaxed). It
	// is empty when no expression matched — in particular when the
	// coordinate fallback resolved the element, including the case where
	// the recorded expression did not even parse.
	UsedXPath string
	Heuristic string // relaxation heuristic, "" for direct matches
	Err       error
}

// Result summarizes a replay. While a Session is running it is the
// partial result so far; cancelling the session's context leaves the
// steps replayed up to the cancellation point in place.
type Result struct {
	Steps  []Step
	Played int
	Failed int
	// Halted is set when the driver lost its active client and the
	// replay could not continue (ChromeDriver defect 4 without the fix).
	Halted bool
	// Cancelled is set when the session's context was cancelled (or its
	// deadline passed) between commands; CancelCause records why.
	// Remaining commands were not attempted.
	Cancelled   bool
	CancelCause error
}

// Complete reports whether every command replayed.
func (r *Result) Complete() bool { return r.Failed == 0 && !r.Halted && !r.Cancelled }

// Replayer replays WaRR command traces.
type Replayer struct {
	browser *browser.Browser
	opts    Options
}

// New returns a replayer driving the given browser. For full replay
// fidelity the browser should be a DeveloperMode build (§IV-C); a
// UserMode browser replays with degraded keyboard-event parameters.
func New(b *browser.Browser, opts Options) *Replayer {
	if opts.Pacing == 0 {
		opts.Pacing = PaceRecorded
	}
	return &Replayer{browser: b, opts: opts}
}

// The compile cache is process-global: a compiled path and its relaxation
// sequence are immutable, the same recorded expressions recur across
// every replay of a trace, and WebErr campaigns construct thousands of
// replayers over the same trace. Parse errors are cached too — a trace
// with an unparseable expression hits the coordinate fallback on every
// replay.
//
// The cache is bounded by two generations of at most compileCacheGen
// entries each. Inserts go to the current generation; when it fills, the
// previous generation is dropped and the current one takes its place.
// A hit in the previous generation re-inserts the entry into the current
// one, so expressions that stay hot survive rotation — a long campaign
// crossing the cap evicts only entries cold for a full generation,
// instead of cold-starting every hot expression at once.
const compileCacheGen = 4096

var (
	compileMu   sync.RWMutex
	compileCur  = make(map[string]compiledEntry)
	compilePrev map[string]compiledEntry
)

type compiledEntry struct {
	c   *xpath.Compiled
	err error
}

func compile(expr string) (*xpath.Compiled, error) {
	compileMu.RLock()
	if e, ok := compileCur[expr]; ok {
		// The common case — a current-generation hit — never takes the
		// write lock, so concurrent campaign workers don't serialize on
		// the hot path.
		compileMu.RUnlock()
		return e.c, e.err
	}
	e, ok := compilePrev[expr]
	compileMu.RUnlock()
	if !ok {
		e = compiledEntry{}
		var p xpath.Path
		if p, e.err = xpath.Parse(expr); e.err == nil {
			e.c = xpath.Compile(p)
		}
	}
	compileMu.Lock()
	if _, hot := compileCur[expr]; !hot {
		if len(compileCur) >= compileCacheGen {
			compilePrev, compileCur = compileCur, make(map[string]compiledEntry, compileCacheGen)
		}
		compileCur[expr] = e
	}
	compileMu.Unlock()
	return e.c, e.err
}

// compileCacheLen reports the number of cached entries across both
// generations (an expression promoted from the previous generation may
// momentarily be counted twice). Test hook.
func compileCacheLen() int {
	compileMu.RLock()
	defer compileMu.RUnlock()
	return len(compileCur) + len(compilePrev)
}

// resetCompileCache empties the cache. Test hook.
func resetCompileCache() {
	compileMu.Lock()
	defer compileMu.Unlock()
	compileCur = make(map[string]compiledEntry)
	compilePrev = nil
}

// Replay plays the trace in a fresh tab and returns the per-step outcomes
// together with the tab (whose final page state the caller's oracle
// inspects). It is a thin wrapper over a Session run to completion.
func (r *Replayer) Replay(tr command.Trace) (*Result, *browser.Tab, error) {
	return r.ReplayContext(context.Background(), tr)
}

// ReplayContext is Replay under a context: the session stops at the
// first command boundary after ctx is cancelled or its deadline passes,
// and the partial Result — with Cancelled set — is returned. The error
// return is non-nil only when the start page failed to load.
func (r *Replayer) ReplayContext(ctx context.Context, tr command.Trace) (*Result, *browser.Tab, error) {
	s, err := r.NewSession(ctx, tr)
	if err != nil {
		return nil, s.Tab(), err
	}
	return s.Run(), s.Tab(), nil
}

func (r *Replayer) playCommand(driver *webdriver.Driver, idx int, cmd command.Command, onResolve func(Step)) Step {
	step := Step{Index: idx, Cmd: cmd}
	el, used, heuristic, err := r.resolve(driver, cmd)
	if err != nil {
		step.Status = StepFailed
		step.Err = err
		if onResolve != nil {
			onResolve(step)
		}
		return step
	}
	step.UsedXPath = used
	step.Heuristic = heuristic
	switch {
	case heuristic == "coordinates":
		step.Status = StepByCoordinates
	case heuristic != "":
		step.Status = StepRelaxed
	default:
		step.Status = StepOK
	}
	if onResolve != nil {
		onResolve(step)
	}

	if err := r.execute(el, cmd); err != nil {
		step.Status = StepFailed
		step.Err = err
	}
	return step
}

// resolve finds the command's target element: recorded XPath first, then
// progressive relaxation, then the coordinate fallback for clicks.
func (r *Replayer) resolve(driver *webdriver.Driver, cmd command.Command) (el *webdriver.Element, used, heuristic string, err error) {
	c, parseErr := compile(cmd.XPath)
	if parseErr == nil {
		el, err = driver.FindElementPath(c.Path)
		if err == nil {
			return el, cmd.XPath, "", nil
		}
		if errors.Is(err, webdriver.ErrNoActiveClient) {
			return nil, "", "", err
		}
		if !r.opts.DisableRelaxation {
			for _, relax := range c.Relaxations() {
				rel, rerr := driver.FindElementPath(relax.Path)
				if rerr == nil {
					return rel, relax.Path.String(), relax.Heuristic, nil
				}
				if errors.Is(rerr, webdriver.ErrNoActiveClient) {
					return nil, "", "", rerr
				}
			}
		}
	} else {
		err = parseErr
	}

	if !r.opts.DisableCoordinateFallback &&
		(cmd.Action == command.Click || cmd.Action == command.DoubleClick) {
		cel, cerr := driver.FindByCoordinates(cmd.X, cmd.Y)
		if cerr == nil {
			// The recorded coordinates identified the element; no XPath
			// expression matched — cmd.XPath may not even have parsed —
			// so none is reported as used.
			return cel, "", "coordinates", nil
		}
		if errors.Is(cerr, webdriver.ErrNoActiveClient) {
			return nil, "", "", cerr
		}
	}
	if err == nil {
		err = fmt.Errorf("replayer: %w: %s", webdriver.ErrElementNotFound, cmd.XPath)
	}
	return nil, "", "", err
}

func (r *Replayer) execute(el *webdriver.Element, cmd command.Command) error {
	switch cmd.Action {
	case command.Click:
		return el.Click()
	case command.DoubleClick:
		return el.DoubleClick()
	case command.Drag:
		return el.Drag(cmd.DX, cmd.DY)
	case command.Type:
		return el.TypeKey(cmd.Key, cmd.Code)
	default:
		return fmt.Errorf("replayer: unknown action %v", cmd.Action)
	}
}
