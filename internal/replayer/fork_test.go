package replayer

import (
	"fmt"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/registry"
)

// stepKey reduces a Step to its comparable resolution outcome. Err is
// compared by presence only (error values are distinct pointers).
func stepKey(s Step) string {
	return fmt.Sprintf("%d %s %v %q %q failed=%v",
		s.Index, s.Cmd, s.Status, s.UsedXPath, s.Heuristic, s.Err != nil)
}

func resultKey(t *testing.T, res *Result) []string {
	t.Helper()
	out := []string{fmt.Sprintf("played=%d failed=%d halted=%v cancelled=%v",
		res.Played, res.Failed, res.Halted, res.Cancelled)}
	for _, s := range res.Steps {
		out = append(out, stepKey(s))
	}
	return out
}

func compareResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	w, g := resultKey(t, want), resultKey(t, got)
	if len(w) != len(g) {
		t.Fatalf("%s: %d result lines, want %d\nwant: %v\ngot:  %v", label, len(g), len(w), w, g)
	}
	for i := range w {
		if w[i] != g[i] {
			t.Errorf("%s: line %d:\nwant %s\ngot  %s", label, i, w[i], g[i])
		}
	}
}

// TestForkEquivalenceEveryScenario is the checkpoint-equivalence
// contract: for every registered scenario, replaying k commands in a
// fresh environment, forking, and finishing the trace in the fork must
// be indistinguishable from replaying the whole trace in one fresh
// environment — same step statuses and relaxations, same final page,
// same console, and a server state the scenario's own oracle accepts.
// Every fork point k is exercised, including k=0 (fork right after the
// start page loaded) and k=len (fork of a finished session).
func TestForkEquivalenceEveryScenario(t *testing.T) {
	for _, name := range registry.ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			sc, err := registry.LookupScenario(name)
			if err != nil {
				t.Fatal(err)
			}
			tr := record(t, sc)
			want, _, wantTab := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{})

			for k := 0; k <= len(tr.Commands); k++ {
				got, gotTab, env := forkedReplay(t, tr, k)
				compareResults(t, fmt.Sprintf("fork at %d", k), want, got)
				if gotTab.URL() != wantTab.URL() || gotTab.Title() != wantTab.Title() {
					t.Errorf("fork at %d: final page %q (%q), want %q (%q)",
						k, gotTab.URL(), gotTab.Title(), wantTab.URL(), wantTab.Title())
				}
				if w, g := len(wantTab.Console()), len(gotTab.Console()); w != g {
					t.Errorf("fork at %d: %d console entries, want %d", k, g, w)
				}
				if err := sc.Verify(env, gotTab); err != nil {
					t.Errorf("fork at %d: scenario oracle rejected the forked replay: %v", k, err)
				}
			}
		})
	}
}

// forkedReplay replays k commands fresh, forks, and finishes in the
// fork. It returns the fork's result, tab, and environment.
func forkedReplay(t *testing.T, tr command.Trace, k int) (*Result, *browser.Tab, *apps.Env) {
	t.Helper()
	env := apps.NewEnv(browser.DeveloperMode)
	s, err := New(env.Browser, Options{}).NewSession(nil, tr)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	for i := 0; i < k; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("session ended early at command %d", i)
		}
	}
	fork, err := s.Fork()
	if err != nil {
		t.Fatalf("Fork at %d: %v", k, err)
	}
	res := fork.Run()

	forkEnv, ok := fork.Tab().Browser().World().(*apps.Env)
	if !ok {
		t.Fatalf("forked browser has no Env world (got %T)", fork.Tab().Browser().World())
	}
	// The parent must be unaffected: it still finishes its own replay
	// with the same outcome.
	parentRes := s.Run()
	if parentRes.Failed != res.Failed || parentRes.Played != res.Played {
		t.Errorf("fork at %d: parent finished with played=%d failed=%d, fork with played=%d failed=%d",
			k, parentRes.Played, parentRes.Failed, res.Played, res.Failed)
	}
	return res, fork.Tab(), forkEnv
}

// TestForkIsolation: mutations in a fork must not leak into the parent
// world — server state, DOM, cookies, or pending timers.
func TestForkIsolation(t *testing.T) {
	sc := apps.EditSiteScenario()
	tr := record(t, sc)

	env := apps.NewEnv(browser.DeveloperMode)
	s, err := New(env.Browser, Options{}).NewSession(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Replay half the trace, fork, then run both to completion.
	for i := 0; i < len(tr.Commands)/2; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("session ended early at %d", i)
		}
	}
	fork, err := s.Fork()
	if err != nil {
		t.Fatal(err)
	}
	forkRes := fork.Run()
	parentRes := s.Run()
	if !forkRes.Complete() || !parentRes.Complete() {
		t.Fatalf("replays incomplete: fork %+v parent %+v", forkRes, parentRes)
	}

	forkEnv := fork.Tab().Browser().World().(*apps.Env)
	if apps.SitesIn(env) == apps.SitesIn(forkEnv) {
		t.Fatal("fork shares the Sites app state with the parent")
	}
	// Both worlds saved exactly once.
	if n := apps.SitesIn(env).Saves(); n != 1 {
		t.Errorf("parent saves = %d, want 1", n)
	}
	if n := apps.SitesIn(forkEnv).Saves(); n != 1 {
		t.Errorf("fork saves = %d, want 1", n)
	}
	// Mutating the fork's server afterwards must not touch the parent.
	apps.SitesIn(forkEnv).SetPageContent("home", "fork-only")
	if got := apps.SitesIn(env).PageContent("home"); got == "fork-only" {
		t.Error("fork server mutation leaked into the parent")
	}
}

// TestForkWithPendingAJAX pins the hard case: forking while the Sites
// editor fetch is still in flight. The pending AJAX must fire in both
// worlds, independently.
func TestForkWithPendingAJAX(t *testing.T) {
	sc := apps.EditSiteScenario()
	tr := record(t, sc)

	env := apps.NewEnv(browser.DeveloperMode)
	s, err := New(env.Browser, Options{}).NewSession(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Step until the editor fetch is pending.
	forked := false
	for i := 0; i < len(tr.Commands); i++ {
		if env.Clock.PendingTimers() > 0 && !forked {
			forked = true
			fork, err := s.Fork()
			if err != nil {
				t.Fatalf("Fork with pending AJAX: %v", err)
			}
			forkEnv := fork.Tab().Browser().World().(*apps.Env)
			if got := forkEnv.Clock.PendingTimers(); got != env.Clock.PendingTimers() {
				t.Fatalf("fork has %d pending timers, parent %d", got, env.Clock.PendingTimers())
			}
			if res := fork.Run(); !res.Complete() {
				t.Fatalf("forked replay incomplete: %+v", res)
			}
			if err := sc.Verify(forkEnv, fork.Tab()); err != nil {
				t.Errorf("forked replay with pending AJAX failed the oracle: %v", err)
			}
		}
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if !forked {
		t.Fatal("no command left AJAX pending; scenario no longer covers the case")
	}
	if res := s.Result(); !res.Complete() {
		t.Fatalf("parent replay incomplete after fork: %+v", res)
	}
}

// TestForkRequiresWorld: a bare browser (no environment attached)
// cannot fork.
func TestForkRequiresWorld(t *testing.T) {
	env := apps.NewEnv(browser.DeveloperMode)
	bare := browser.New(env.Clock, env.Network, browser.DeveloperMode)
	s, err := New(bare, Options{}).NewSession(nil, command.Trace{StartURL: apps.SitesURL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fork(); err == nil {
		t.Fatal("Fork on a world-less browser succeeded, want error")
	}
}
