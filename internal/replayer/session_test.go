package replayer

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/netsim"
	"github.com/dslab-epfl/warr/internal/vclock"
	"github.com/dslab-epfl/warr/internal/webdriver"
)

func TestSessionStepwiseMatchesOneShotReplay(t *testing.T) {
	sc := apps.EditSiteScenario()
	tr := record(t, sc)

	// One-shot replay as the reference.
	ref, _, _ := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{})

	env := apps.NewEnv(browser.DeveloperMode)
	s, err := New(env.Browser, Options{}).NewSession(context.Background(), tr)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	var steps []Step
	for {
		if s.Done() {
			t.Fatal("Done before the trace was exhausted")
		}
		st, ok := s.Next()
		if !ok {
			break
		}
		steps = append(steps, st)
		if got := len(s.Result().Steps); got != len(steps) {
			t.Fatalf("partial result has %d steps after %d Next calls", got, len(steps))
		}
	}
	if !s.Done() {
		t.Error("session not Done after Next returned false")
	}
	if len(steps) != len(ref.Steps) {
		t.Fatalf("session replayed %d steps, one-shot replayed %d", len(steps), len(ref.Steps))
	}
	for i := range steps {
		if steps[i].Status != ref.Steps[i].Status {
			t.Errorf("step %d: status %v vs one-shot %v", i, steps[i].Status, ref.Steps[i].Status)
		}
	}
	if err := sc.Verify(env, s.Tab()); err != nil {
		t.Errorf("stepwise replay did not reproduce the session: %v", err)
	}
	if s.Err() != nil {
		t.Errorf("Err = %v, want nil", s.Err())
	}
}

func TestSessionStepsIteratorResumesAfterBreak(t *testing.T) {
	tr := record(t, apps.EditSiteScenario())
	env := apps.NewEnv(browser.DeveloperMode)
	s, err := New(env.Browser, Options{}).NewSession(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for range s.Steps() {
		seen++
		if seen == 3 {
			break
		}
	}
	if s.Done() {
		t.Fatal("breaking out of Steps must pause, not end, the session")
	}
	for range s.Steps() {
		seen++
	}
	if seen != len(tr.Commands) {
		t.Errorf("replayed %d commands across two loops, want %d", seen, len(tr.Commands))
	}
	if !s.Result().Complete() {
		t.Errorf("result incomplete: %+v", s.Result())
	}
}

func TestSessionCancelledMidReplayReturnsPartialResult(t *testing.T) {
	tr := record(t, apps.EditSiteScenario())
	if len(tr.Commands) < 4 {
		t.Fatalf("trace too short: %d commands", len(tr.Commands))
	}
	env := apps.NewEnv(browser.DeveloperMode)
	ctx, cancel := context.WithCancelCause(context.Background())
	s, err := New(env.Browser, Options{}).NewSession(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("user pressed stop")
	const before = 3
	for i := 0; i < before; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("session ended early at step %d", i)
		}
	}
	cancel(boom)
	if _, ok := s.Next(); ok {
		t.Fatal("Next replayed a command after cancellation")
	}

	res := s.Result()
	if !res.Cancelled {
		t.Error("result not marked Cancelled")
	}
	if !errors.Is(res.CancelCause, boom) {
		t.Errorf("CancelCause = %v, want the cancel cause", res.CancelCause)
	}
	if len(res.Steps) != before {
		t.Errorf("partial result has %d steps, want %d", len(res.Steps), before)
	}
	if res.Complete() {
		t.Error("cancelled result must not be Complete")
	}
	if !errors.Is(s.Err(), boom) {
		t.Errorf("session Err = %v, want the cancel cause", s.Err())
	}
	// The session stays ended.
	if _, ok := s.Next(); ok || !s.Done() {
		t.Error("cancelled session must stay Done")
	}
}

func TestSessionCancelledAfterLastCommandIsComplete(t *testing.T) {
	// A context firing after the final command must not retroactively
	// mark a fully-replayed session as cancelled: exhaustion is checked
	// before cancellation, so Complete() holds and — downstream — a
	// context-bounded campaign keeps the job's oracle verdict instead
	// of routing it to Skipped.
	tr := record(t, apps.EditSiteScenario())
	env := apps.NewEnv(browser.DeveloperMode)
	ctx, cancel := context.WithCancelCause(context.Background())
	s, err := New(env.Browser, Options{}).NewSession(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tr.Commands); i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("session ended early at step %d", i)
		}
	}
	cancel(errors.New("deadline after the last command"))
	if _, ok := s.Next(); ok {
		t.Fatal("Next replayed past the trace end")
	}
	res := s.Result()
	if res.Cancelled {
		t.Error("fully-replayed session marked Cancelled")
	}
	if res.Played != len(tr.Commands) || !res.Complete() {
		t.Errorf("played %d/%d, Complete=%v; want a complete result",
			res.Played, len(tr.Commands), res.Complete())
	}
}

func TestReplayContextAlreadyCancelled(t *testing.T) {
	tr := record(t, apps.EditSiteScenario())
	env := apps.NewEnv(browser.DeveloperMode)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, tab, err := New(env.Browser, Options{}).ReplayContext(ctx, tr)
	if err != nil {
		t.Fatalf("ReplayContext: %v", err)
	}
	if tab == nil {
		t.Fatal("no tab returned")
	}
	if len(res.Steps) != 0 || !res.Cancelled {
		t.Errorf("cancelled-before-start replay: %+v", res)
	}
	if !errors.Is(res.CancelCause, context.Canceled) {
		t.Errorf("CancelCause = %v", res.CancelCause)
	}
}

func TestSessionDeadlineStopsBetweenCommands(t *testing.T) {
	// A deadline in the past: the first Next call must refuse to replay.
	tr := record(t, apps.EditSiteScenario())
	env := apps.NewEnv(browser.DeveloperMode)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	<-ctx.Done()
	s, err := New(env.Browser, Options{}).NewSession(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next replayed a command past the deadline")
	}
	if !errors.Is(s.Err(), context.DeadlineExceeded) {
		t.Errorf("Err = %v, want DeadlineExceeded", s.Err())
	}
}

// sessionHaltEnv builds a two-page world where a click navigates, so an
// unfixed ChromeDriver (defect 4) deterministically loses its active
// client on the unload.
func sessionHaltEnv(t *testing.T) *browser.Browser {
	t.Helper()
	clock := vclock.New()
	network := netsim.New(clock)
	pages := map[string]string{
		"/":  `<html><body><a id="go" href="/b">next</a></body></html>`,
		"/b": `<html><body><div id="done">arrived</div></body></html>`,
	}
	network.Register("app.test", netsim.HandlerFunc(func(req *netsim.Request) *netsim.Response {
		if body, ok := pages[req.Path()]; ok {
			return netsim.OK(body)
		}
		return netsim.NotFound()
	}))
	return browser.New(clock, network, browser.DeveloperMode)
}

func TestSessionHaltsOnNoActiveClient(t *testing.T) {
	tr := command.Trace{
		StartURL: "http://app.test/",
		Commands: []command.Command{
			{Action: command.Click, XPath: `//a[@id="go"]`},
			{Action: command.Click, XPath: `//div[@id="done"]`},
			{Action: command.Click, XPath: `//div[@id="done"]`},
		},
	}
	b := sessionHaltEnv(t)
	s, err := New(b, Options{
		// No coordinate fallback: the commands carry zero coordinates.
		DisableCoordinateFallback: true,
		Driver:                    webdriver.Options{DisableUnloadFix: true},
	}).NewSession(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()

	if !res.Halted {
		t.Fatalf("replay did not halt: %+v", res)
	}
	if res.Complete() {
		t.Error("halted replay must not be Complete")
	}
	// The driver attaches before the start page loads, so with the
	// defect the start-page unload already costs it the active client:
	// the first command halts the session and the rest are never
	// attempted.
	if len(res.Steps) != 1 {
		t.Fatalf("steps = %d, want 1 (halt stops the session)", len(res.Steps))
	}
	last := res.Steps[0]
	if last.Status != StepFailed || !errors.Is(last.Err, webdriver.ErrNoActiveClient) {
		t.Errorf("halting step: status %v err %v, want failed with ErrNoActiveClient", last.Status, last.Err)
	}
	if !s.Done() {
		t.Error("halted session must be Done")
	}
	if _, ok := s.Next(); ok {
		t.Error("Next must keep returning false after the halt")
	}
	if s.Err() != nil {
		t.Errorf("halt is not a context error; Err = %v", s.Err())
	}
}

func TestSessionFixedDriverDoesNotHalt(t *testing.T) {
	// The same trace with WaRR's fix replays end to end — the control
	// for TestSessionHaltsOnNoActiveClient.
	tr := command.Trace{
		StartURL: "http://app.test/",
		Commands: []command.Command{
			{Action: command.Click, XPath: `//a[@id="go"]`},
			{Action: command.Click, XPath: `//div[@id="done"]`},
		},
	}
	b := sessionHaltEnv(t)
	s, err := New(b, Options{DisableCoordinateFallback: true}).NewSession(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res := s.Run(); !res.Complete() {
		t.Errorf("fixed driver should replay completely: %+v", res)
	}
}

func TestHookChainOrderAndPayloads(t *testing.T) {
	tr := record(t, apps.EditSiteScenario())
	env := apps.NewEnv(browser.DeveloperMode)

	var events []string
	hook := func(name string) Hooks {
		return Hooks{
			BeforeStep: func(idx int, cmd command.Command, tab *browser.Tab) {
				events = append(events, fmt.Sprintf("%s:before:%d", name, idx))
			},
			OnResolve: func(step Step, tab *browser.Tab) {
				events = append(events, fmt.Sprintf("%s:resolve:%d", name, step.Index))
			},
			AfterStep: func(step Step, tab *browser.Tab) {
				events = append(events, fmt.Sprintf("%s:after:%d", name, step.Index))
			},
		}
	}
	s, err := New(env.Browser, Options{Hooks: []Hooks{hook("opts")}}).
		NewSession(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	s.AddHooks(hook("session"))
	s.Run()

	// Per command: opts.before, session.before, opts.resolve,
	// session.resolve, opts.after, session.after.
	perStep := 6
	if len(events) != perStep*len(tr.Commands) {
		t.Fatalf("%d hook events, want %d", len(events), perStep*len(tr.Commands))
	}
	for i := 0; i < len(tr.Commands); i++ {
		got := events[i*perStep : (i+1)*perStep]
		want := []string{
			fmt.Sprintf("opts:before:%d", i), fmt.Sprintf("session:before:%d", i),
			fmt.Sprintf("opts:resolve:%d", i), fmt.Sprintf("session:resolve:%d", i),
			fmt.Sprintf("opts:after:%d", i), fmt.Sprintf("session:after:%d", i),
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("step %d event %d = %q, want %q (all: %v)", i, j, got[j], want[j], got)
			}
		}
	}
}

func TestOnResolveSeesResolutionBeforeExecution(t *testing.T) {
	// A failing resolution still reaches OnResolve, with the error set.
	tr := command.Trace{
		StartURL: apps.SitesURL,
		Commands: []command.Command{{
			Action: command.Type, XPath: `//canvas[@id="nonexistent"]`, Key: "a", Code: 65,
		}},
	}
	env := apps.NewEnv(browser.DeveloperMode)
	var resolved []Step
	s, err := New(env.Browser, Options{Hooks: []Hooks{{
		OnResolve: func(step Step, tab *browser.Tab) { resolved = append(resolved, step) },
	}}}).NewSession(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(resolved) != 1 {
		t.Fatalf("OnResolve fired %d times, want 1", len(resolved))
	}
	if resolved[0].Status != StepFailed || resolved[0].Err == nil {
		t.Errorf("failed resolution not visible to OnResolve: %+v", resolved[0])
	}
}

func TestCompileCacheTwoGenerationEviction(t *testing.T) {
	resetCompileCache()
	t.Cleanup(resetCompileCache)

	hot := `//div[@id="hot"]`
	if _, err := compile(hot); err != nil {
		t.Fatal(err)
	}
	// Cross the generation cap twice, touching the hot expression
	// between fills so each rotation finds it recently used.
	for gen := 0; gen < 2; gen++ {
		for i := 0; i < compileCacheGen; i++ {
			compile(fmt.Sprintf(`//span[@id="cold-%d-%d"]`, gen, i))
		}
		compile(hot)
	}
	if n := compileCacheLen(); n > 2*compileCacheGen {
		t.Errorf("cache holds %d entries, want <= %d (two generations)", n, 2*compileCacheGen)
	}
	compileMu.RLock()
	_, cur := compileCur[hot]
	_, prev := compilePrev[hot]
	compileMu.RUnlock()
	if !cur && !prev {
		t.Error("hot expression evicted despite being touched every generation")
	}
}

func TestCompileCacheColdEntriesEventuallyEvicted(t *testing.T) {
	resetCompileCache()
	t.Cleanup(resetCompileCache)

	cold := `//div[@id="cold-once"]`
	compile(cold)
	// Two full generations of fresh expressions with no further touch:
	// the entry must age out.
	for i := 0; i < 2*compileCacheGen+1; i++ {
		compile(fmt.Sprintf(`//span[@id="filler-%d"]`, i))
	}
	compileMu.RLock()
	_, cur := compileCur[cold]
	_, prev := compilePrev[cold]
	compileMu.RUnlock()
	if cur || prev {
		t.Error("cold entry survived two full generations")
	}
}
