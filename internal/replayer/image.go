package replayer

import (
	"context"
	"errors"
	"fmt"

	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/webdriver"
)

// This file serializes a replay session for durable world images
// (internal/image). The image is the data form of ForkFor: the trace,
// the replay position, the partial Result, the replayer's options, and
// the driver image — everything the forked-session constructor carries
// over, named by the browser image's tab/frame numbering instead of
// live pointers. Hooks are code and are never serialized; a restored
// session starts with whatever hook chain the restoring side supplies
// (the distributed executor requires none, which is what makes a
// campaign shard shippable).

// OptionsImage is the serializable subset of Options (hooks excluded).
type OptionsImage struct {
	Pacing                    Pacing            `json:"pacing"`
	DisableRelaxation         bool              `json:"disableRelaxation,omitempty"`
	DisableCoordinateFallback bool              `json:"disableCoordinateFallback,omitempty"`
	Driver                    webdriver.Options `json:"driver"`
}

// StepImage is one serialized Step. Cmd is carried verbatim; Err
// survives as its message only and is rebuilt as an opaque error.
type StepImage struct {
	Index     int             `json:"index"`
	Cmd       command.Command `json:"cmd"`
	Status    StepStatus      `json:"status"`
	UsedXPath string          `json:"usedXPath,omitempty"`
	Heuristic string          `json:"heuristic,omitempty"`
	Err       string          `json:"err,omitempty"`
	HasErr    bool            `json:"hasErr,omitempty"`
}

// ResultImage is a serialized partial Result.
type ResultImage struct {
	Steps       []StepImage `json:"steps,omitempty"`
	Played      int         `json:"played"`
	Failed      int         `json:"failed"`
	Halted      bool        `json:"halted,omitempty"`
	Cancelled   bool        `json:"cancelled,omitempty"`
	CancelCause string      `json:"cancelCause,omitempty"`
	HasCause    bool        `json:"hasCause,omitempty"`
}

// TraceImage is a serialized trace.
type TraceImage struct {
	StartURL string            `json:"startURL,omitempty"`
	Commands []command.Command `json:"commands,omitempty"`
}

// Image is the serialized form of a Session.
type Image struct {
	Opts   OptionsImage     `json:"opts"`
	Trace  TraceImage       `json:"trace"`
	Tab    int              `json:"tab"`
	Driver *webdriver.Image `json:"driver"`
	Next   int              `json:"next"`
	Result ResultImage      `json:"result"`
	Done   bool             `json:"done,omitempty"`
}

// EncodeImage serializes the session, naming its tab and the driver's
// frames through the browser image's numbering.
func (s *Session) EncodeImage(tabID func(*browser.Tab) (int, bool), frameID func(*browser.Frame) (int, bool)) (*Image, error) {
	tid, ok := tabID(s.tab)
	if !ok {
		return nil, fmt.Errorf("replayer: session tab not present in the browser image")
	}
	di, err := s.driver.EncodeImage(frameID)
	if err != nil {
		return nil, err
	}
	o := s.replayer.opts
	img := &Image{
		Opts: OptionsImage{
			Pacing:                    o.Pacing,
			DisableRelaxation:         o.DisableRelaxation,
			DisableCoordinateFallback: o.DisableCoordinateFallback,
			Driver:                    o.Driver,
		},
		Trace: TraceImage{
			StartURL: s.trace.StartURL,
			Commands: append([]command.Command(nil), s.trace.Commands...),
		},
		Tab:    tid,
		Driver: di,
		Next:   s.next,
		Done:   s.done,
	}
	res := s.res
	img.Result = ResultImage{
		Played:    res.Played,
		Failed:    res.Failed,
		Halted:    res.Halted,
		Cancelled: res.Cancelled,
	}
	if res.CancelCause != nil {
		img.Result.CancelCause = res.CancelCause.Error()
		img.Result.HasCause = true
	}
	for _, st := range res.Steps {
		si := StepImage{
			Index:     st.Index,
			Cmd:       st.Cmd,
			Status:    st.Status,
			UsedXPath: st.UsedXPath,
			Heuristic: st.Heuristic,
		}
		if st.Err != nil {
			si.Err = st.Err.Error()
			si.HasErr = true
		}
		img.Result.Steps = append(img.Result.Steps, si)
	}
	return img, nil
}

// DecodeImage rebuilds a session over a decoded browser world. The tab
// and frame resolvers are the decoded browser image's numbering; hooks
// is the restored session's hook chain (typically empty — hooks are
// code, not state). Step and cancellation errors come back as opaque
// errors carrying the imaged message: errors.Is identities do not
// survive an image, only the report text does.
func DecodeImage(img *Image, ctx context.Context, b *browser.Browser, hooks []Hooks, tab func(int) *browser.Tab, frame func(int) *browser.Frame) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t := tab(img.Tab)
	if t == nil {
		return nil, fmt.Errorf("replayer: image names unknown tab %d", img.Tab)
	}
	if img.Driver == nil {
		return nil, fmt.Errorf("replayer: image has no driver")
	}
	d, err := webdriver.DecodeImage(img.Driver, t, frame)
	if err != nil {
		return nil, err
	}
	if img.Next < 0 || img.Next > len(img.Trace.Commands) {
		return nil, fmt.Errorf("replayer: image next %d outside trace of %d commands", img.Next, len(img.Trace.Commands))
	}
	opts := Options{
		Pacing:                    img.Opts.Pacing,
		DisableRelaxation:         img.Opts.DisableRelaxation,
		DisableCoordinateFallback: img.Opts.DisableCoordinateFallback,
		Driver:                    img.Opts.Driver,
		Hooks:                     hooks,
	}
	res := &Result{
		Played:    img.Result.Played,
		Failed:    img.Result.Failed,
		Halted:    img.Result.Halted,
		Cancelled: img.Result.Cancelled,
	}
	if img.Result.HasCause {
		res.CancelCause = errors.New(img.Result.CancelCause)
	}
	for _, si := range img.Result.Steps {
		st := Step{
			Index:     si.Index,
			Cmd:       si.Cmd,
			Status:    si.Status,
			UsedXPath: si.UsedXPath,
			Heuristic: si.Heuristic,
		}
		if si.HasErr {
			st.Err = errors.New(si.Err)
		}
		res.Steps = append(res.Steps, st)
	}
	return &Session{
		replayer: New(b, opts),
		ctx:      ctx,
		trace: command.Trace{
			StartURL: img.Trace.StartURL,
			Commands: append([]command.Command(nil), img.Trace.Commands...),
		},
		tab:    t,
		driver: d,
		hooks:  append([]Hooks(nil), opts.Hooks...),
		next:   img.Next,
		res:    res,
		done:   img.Done,
	}, nil
}
