package replayer

import (
	"strings"
	"testing"

	"github.com/dslab-epfl/warr/internal/apps"
	"github.com/dslab-epfl/warr/internal/browser"
	"github.com/dslab-epfl/warr/internal/command"
	"github.com/dslab-epfl/warr/internal/core"
	"github.com/dslab-epfl/warr/internal/webdriver"
)

// record runs a scenario in a fresh user-mode environment with the WaRR
// Recorder attached and returns the trace.
func record(t *testing.T, sc apps.Scenario) command.Trace {
	t.Helper()
	env := apps.NewEnv(browser.UserMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(sc.StartURL); err != nil {
		t.Fatalf("Navigate: %v", err)
	}
	rec := core.New(env.Clock)
	rec.Attach(tab)
	if err := sc.Run(env, tab); err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	if err := sc.Verify(env, tab); err != nil {
		t.Fatalf("live session failed: %v", err)
	}
	return rec.Trace()
}

// replayInFreshEnv replays tr against a brand-new environment.
func replayInFreshEnv(t *testing.T, tr command.Trace, mode browser.Mode, opts Options) (*Result, *apps.Env, *browser.Tab) {
	t.Helper()
	env := apps.NewEnv(mode)
	r := New(env.Browser, opts)
	res, tab, err := r.Replay(tr)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return res, env, tab
}

func TestReplayEditSiteRoundTrip(t *testing.T) {
	sc := apps.EditSiteScenario()
	tr := record(t, sc)
	if len(tr.Commands) == 0 {
		t.Fatal("empty trace")
	}
	res, env, tab := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{})
	if !res.Complete() {
		t.Fatalf("replay incomplete: %+v", res.Steps)
	}
	if err := sc.Verify(env, tab); err != nil {
		t.Errorf("replay did not reproduce the session: %v", err)
	}
	// Sites has stable ids, so every step should resolve directly.
	for _, s := range res.Steps {
		if s.Status != StepOK {
			t.Errorf("step %d: status %v (xpath %s)", s.Index, s.Status, s.Cmd.XPath)
		}
	}
}

func TestReplayGMailUsesRelaxation(t *testing.T) {
	sc := apps.ComposeEmailScenario()
	tr := record(t, sc)
	res, env, tab := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{})
	if !res.Complete() {
		t.Fatalf("replay incomplete: %+v", res.Steps)
	}
	if err := sc.Verify(env, tab); err != nil {
		t.Errorf("replay did not reproduce the session: %v", err)
	}
	relaxed := 0
	heuristics := map[string]int{}
	for _, s := range res.Steps {
		if s.Status == StepRelaxed {
			relaxed++
			heuristics[s.Heuristic]++
		}
	}
	if relaxed == 0 {
		t.Error("GMail regenerates ids; some steps must need relaxation")
	}
	if heuristics["keep-only-name"] == 0 {
		t.Errorf("expected the keep-only-name heuristic to fire; got %v", heuristics)
	}
}

func TestReplayGMailFailsWithoutRelaxation(t *testing.T) {
	tr := record(t, apps.ComposeEmailScenario())
	res, env, _ := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{
		DisableRelaxation:         true,
		DisableCoordinateFallback: true,
	})
	if res.Failed == 0 {
		t.Error("replay should fail when relaxation is disabled (stale ids)")
	}
	if _, ok := apps.GMailIn(env).LastSent(); ok {
		t.Error("mail should not have been sent by the failed replay")
	}
}

func TestReplayGMailCoordinateFallbackAlone(t *testing.T) {
	// With relaxation off but coordinates on, clicks still resolve via
	// the backup identification the commands carry (§IV-B); typed text
	// still fails (type commands carry no coordinates).
	tr := record(t, apps.ComposeEmailScenario())
	res, _, _ := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{
		DisableRelaxation: true,
	})
	byCoord := 0
	for _, s := range res.Steps {
		if s.Status == StepByCoordinates {
			byCoord++
		}
	}
	if byCoord == 0 {
		t.Error("expected clicks resolved by coordinates")
	}
}

func TestReplayAuthenticate(t *testing.T) {
	sc := apps.AuthenticateScenario()
	tr := record(t, sc)
	res, env, tab := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{})
	if !res.Complete() {
		t.Fatalf("replay incomplete: %+v", res.Steps)
	}
	if err := sc.Verify(env, tab); err != nil {
		t.Errorf("replay did not reproduce the session: %v", err)
	}
}

func TestReplayDocsNeedsDeveloperMode(t *testing.T) {
	sc := apps.EditSpreadsheetScenario()
	tr := record(t, sc)

	// Developer mode: KeyboardEvent properties settable, the Enter
	// handler sees keyCode 13 and commits.
	_, devEnv, devTab := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{})
	if err := sc.Verify(devEnv, devTab); err != nil {
		t.Errorf("developer-mode replay failed: %v", err)
	}

	// User mode: the synthetic events carry keyCode 0, the commit
	// handler never fires — the restriction the paper lifts (§IV-C).
	_, usrEnv, _ := replayInFreshEnv(t, tr, browser.UserMode, Options{})
	if got := apps.DocsIn(usrEnv).Cell("r2c2"); got == "42" {
		t.Error("user-mode replay unexpectedly committed the cell edit")
	}
}

func TestReplaySitesWithNoWaitTriggersBug(t *testing.T) {
	tr := record(t, apps.EditSiteScenario())
	_, env, tab := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{Pacing: PaceNone})
	found := false
	for _, e := range tab.ConsoleErrors() {
		if strings.Contains(e.Message, "TypeError") {
			found = true
		}
	}
	if !found {
		t.Error("zero-wait replay should hit the uninitialized-variable bug")
	}
	if apps.SitesIn(env).Saves() != 0 {
		t.Error("the buggy save should not reach the server")
	}
}

func TestReplaySitesWithRecordedPacingSucceeds(t *testing.T) {
	sc := apps.EditSiteScenario()
	tr := record(t, sc)
	_, env, tab := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{Pacing: PaceRecorded})
	if err := sc.Verify(env, tab); err != nil {
		t.Errorf("recorded-pacing replay failed: %v", err)
	}
}

func TestReplayHaltsWithUnloadDefect(t *testing.T) {
	// The Authenticate trace navigates (form submit). With ChromeDriver
	// defect 4 unfixed, the navigation's unload leaves the master without
	// an active client and the replay halts.
	tr := record(t, apps.AuthenticateScenario())
	res, _, _ := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{
		Driver: webdriver.Options{DisableUnloadFix: true},
	})
	if !res.Halted {
		t.Skip("trace finished before the unload defect could strike")
	}
	if res.Complete() {
		t.Error("halted replay must not be complete")
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	res, _, _ := replayInFreshEnv(t, command.Trace{StartURL: apps.SitesURL}, browser.DeveloperMode, Options{})
	if len(res.Steps) != 0 || !res.Complete() {
		t.Errorf("empty trace: %+v", res)
	}
}

func TestReplayUnknownXPathFails(t *testing.T) {
	tr := command.Trace{
		StartURL: apps.SitesURL,
		Commands: []command.Command{{
			// No element of this tag exists anywhere, so even the
			// weakest (tag-only) relaxation cannot find a match.
			Action: command.Type, XPath: `//canvas[@id="nonexistent"]`, Key: "a", Code: 65,
		}},
	}
	res, _, _ := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{})
	if res.Failed != 1 {
		t.Errorf("failed = %d, want 1", res.Failed)
	}
}

func TestCoordinateFallbackOnUnparseableXPathReportsNoExpression(t *testing.T) {
	// Find the recorded coordinates of a stable element; page layout is
	// deterministic, so they are valid in the replay environment too.
	env := apps.NewEnv(browser.DeveloperMode)
	tab := env.Browser.NewTab()
	if err := tab.Navigate(apps.SitesURL); err != nil {
		t.Fatal(err)
	}
	x, y := tab.Layout().Center(tab.MainFrame().Doc().GetElementByID("start"))

	tr := command.Trace{
		StartURL: apps.SitesURL,
		Commands: []command.Command{{
			Action: command.Click, XPath: `not an xpath [`, X: x, Y: y,
		}},
	}
	res, _, _ := replayInFreshEnv(t, tr, browser.DeveloperMode, Options{})
	step := res.Steps[0]
	if step.Status != StepByCoordinates {
		t.Fatalf("status = %v (err %v), want by-coordinates", step.Status, step.Err)
	}
	if step.UsedXPath != "" {
		t.Errorf("UsedXPath = %q, want empty: no expression matched — the recorded one did not even parse", step.UsedXPath)
	}
	if step.Heuristic != "coordinates" {
		t.Errorf("Heuristic = %q, want %q", step.Heuristic, "coordinates")
	}
}

func TestTraceSerializationRoundTripThroughReplay(t *testing.T) {
	sc := apps.EditSiteScenario()
	tr := record(t, sc)
	parsed, err := command.Parse(tr.Text())
	if err != nil {
		t.Fatalf("parsing serialized trace: %v", err)
	}
	res, env, tab := replayInFreshEnv(t, parsed, browser.DeveloperMode, Options{})
	if !res.Complete() {
		t.Fatalf("replay of parsed trace incomplete: %+v", res.Steps)
	}
	if err := sc.Verify(env, tab); err != nil {
		t.Errorf("parsed-trace replay failed: %v", err)
	}
}
